package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilJournalIsValidSink(t *testing.T) {
	var j *Journal
	if j.NumRanks() != 0 {
		t.Fatalf("nil journal NumRanks = %d", j.NumRanks())
	}
	rl := j.Rank(0)
	if rl != nil {
		t.Fatalf("nil journal Rank(0) = %v, want nil", rl)
	}
	// All of these must be no-ops, not panics.
	rl.Emit(Event{Phase: PhaseOther})
	if rl.Now() != 0 {
		t.Fatalf("nil log Now = %v, want 0", rl.Now())
	}
	if rl.Events() != nil {
		t.Fatalf("nil log Events = %v, want nil", rl.Events())
	}
}

func TestJournalRankIsolationAndOrder(t *testing.T) {
	j := NewJournal(3)
	if j.NumRanks() != 3 {
		t.Fatalf("NumRanks = %d, want 3", j.NumRanks())
	}
	j.Rank(1).Emit(Event{Phase: PhaseFindBestModule, Iter: 0, Start: 1, End: 2})
	j.Rank(1).Emit(Event{Phase: PhaseOther, Iter: 0, Start: 2, End: 5})
	j.Rank(2).Emit(Event{Phase: PhaseSwapBoundary, Iter: 0, Start: 1, End: 4})
	if n := len(j.Rank(0).Events()); n != 0 {
		t.Fatalf("rank 0 has %d events, want 0", n)
	}
	evs := j.Rank(1).Events()
	if len(evs) != 2 || evs[0].Phase != PhaseFindBestModule || evs[1].Phase != PhaseOther {
		t.Fatalf("rank 1 events out of order: %+v", evs)
	}
	if j.NumEvents() != 3 {
		t.Fatalf("NumEvents = %d, want 3", j.NumEvents())
	}
	if j.Rank(-1) != nil || j.Rank(3) != nil {
		t.Fatal("out-of-range Rank must return nil")
	}
}

func TestPhaseNames(t *testing.T) {
	names := PhaseNames()
	want := []string{
		"FindBestModule", "BroadcastDelegates", "SwapBoundaryInfo", "Other",
		"refresh-round1", "refresh-round2", "merge-shuffle", "outer-iteration",
		"async-drain",
	}
	if len(names) != len(want) {
		t.Fatalf("PhaseNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("PhaseNames[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if got := PhaseID(200).Name(); got != "Unknown" {
		t.Fatalf("invalid phase Name = %q", got)
	}
}

func TestPhaseWall(t *testing.T) {
	j := NewJournal(1)
	j.Rank(0).Emit(Event{Phase: PhaseFindBestModule, Start: 0, End: 3 * time.Millisecond})
	j.Rank(0).Emit(Event{Phase: PhaseFindBestModule, Start: 5 * time.Millisecond, End: 6 * time.Millisecond})
	j.Rank(0).Emit(Event{Phase: PhaseOther, Start: 6 * time.Millisecond, End: 7 * time.Millisecond})
	w := j.PhaseWall(0)
	if w["FindBestModule"] != 4*time.Millisecond {
		t.Fatalf("FindBestModule wall = %v, want 4ms", w["FindBestModule"])
	}
	if w["Other"] != time.Millisecond {
		t.Fatalf("Other wall = %v, want 1ms", w["Other"])
	}
}

// chromeDoc mirrors the trace-event envelope for test parsing.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTraceStructure(t *testing.T) {
	j := NewJournal(2)
	j.Rank(0).Emit(Event{Stage: 1, Iter: -1, Phase: PhaseOther, Start: 0, End: time.Millisecond})
	j.Rank(0).Emit(Event{Stage: 1, Iter: 0, Phase: PhaseFindBestModule,
		Start: time.Millisecond, End: 2 * time.Millisecond, Moves: 7, Ops: 40})
	j.Rank(1).Emit(Event{Stage: 2, Outer: 1, Iter: 0, Phase: PhaseSwapBoundary,
		Start: time.Millisecond, End: 3 * time.Millisecond, Msgs: 2, Bytes: 64})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, j); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}

	threads := map[int]bool{}
	spansPerTid := map[int]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threads[ev.Tid] = true
			}
		case "X":
			spansPerTid[ev.Tid]++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur in %+v", ev)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if !threads[0] || !threads[1] {
		t.Fatalf("missing thread_name rows: %v", threads)
	}
	if spansPerTid[0] != 2 || spansPerTid[1] != 1 {
		t.Fatalf("span counts per tid = %v", spansPerTid)
	}
	// Span args carry the counters.
	var sawMoves bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "FindBestModule" {
			if ev.Args["moves"] == float64(7) && ev.Args["ops"] == float64(40) {
				sawMoves = true
			}
		}
	}
	if !sawMoves {
		t.Fatalf("FindBestModule span lost its counters:\n%s", buf.String())
	}
}

func TestWriteChromeTraceNilJournal(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err == nil {
		t.Fatal("want error for nil journal")
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Schema: ReportSchema,
		Graph:  GraphInfo{Vertices: 100, Edges: 300, TotalWeight: 300},
		Config: ConfigInfo{P: 4, Seed: 7, Theta: 1e-10},
		Quality: QualityInfo{
			Codelength: 5.25, InitialCodelength: 7.5, NumModules: 12,
		},
		Convergence: ConvergenceInfo{
			MDLTrace:        []float64{6.0, 5.5, 5.25},
			MergeRate:       []float64{0.8, 0.1, 0.0},
			OuterIterations: 3, Stage1Sweeps: 9, Stage2Sweeps: 4,
		},
		Timing: TimingInfo{
			Stage1ModeledNs: 1000, Stage2ModeledNs: 400, TotalModeledNs: 1400,
			PhaseModeledNs: map[string]int64{"FindBestModule": 700},
		},
		Partition:        PartitionInfo{NumHubs: 3, MaxEdges: 90, EdgeImbalance: 1.2},
		MaxRankBytes:     4096,
		DeltaEvaluations: 12345,
		Ranks: []RankReport{{
			Rank: 0,
			Phases: map[string]PhaseCost{
				"FindBestModule":   {Ops: 100, Msgs: 0, Bytes: 0},
				"SwapBoundaryInfo": {Ops: 10, Msgs: 4, Bytes: 256},
			},
			Stage2:     PhaseCost{Ops: 20, Msgs: 2, Bytes: 64},
			DeltaEvals: 100,
			Comm:       CommTotals{MsgsSent: 6, BytesSent: 320},
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The wire format must expose the documented key names.
	for _, key := range []string{
		`"schema"`, `"mdl_trace"`, `"phase_modeled_ns"`, `"ops"`, `"msgs"`,
		`"bytes"`, `"wall1_ns"`, `"edge_imbalance"`, `"delta_evals"`,
	} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("serialized report missing %s:\n%s", key, buf.String())
		}
	}
	back, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("round trip changed the report:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestParseReportRejectsWrongSchema(t *testing.T) {
	if _, err := ParseReport([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("want schema error")
	}
	if _, err := ParseReport([]byte(`{garbage`)); err == nil {
		t.Fatal("want parse error")
	}
}

// A minimal metrics registry with Prometheus text-format exposition.
//
// This is deliberately not a client_library clone: the repo is
// stdlib-only, and the exposition has one consumer contract — stable
// output. Families are written in sorted name order and series in
// sorted label-value order, so the same registry state always renders
// byte-identically (golden-testable, diff-friendly scrapes).
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType is the Prometheus family type.
type MetricType int

// Supported family types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; updates
// take one mutex, which only observers and the tap-fed collector touch
// — never the simulated ranks.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histogram upper bounds, sorted, no +Inf
	series  map[string]*Series
}

// Vec is a handle to one metric family; With resolves a label-value
// combination to its Series.
type Vec struct {
	r *Registry
	f *family
}

// Series is one labeled time series within a family.
type Series struct {
	r           *Registry
	labelValues []string
	value       float64   // counter / gauge
	buckets     []float64 // histogram: the family's upper bounds
	bucketCount []float64 // histogram: cumulative per upper bound
	sum         float64
	count       float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, typ MetricType, buckets []float64, labels []string) *Vec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different type or labels", name))
		}
		return &Vec{r: r, f: f}
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*Series),
	}
	sort.Float64s(f.buckets)
	r.families[name] = f
	return &Vec{r: r, f: f}
}

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Vec {
	return r.family(name, help, TypeCounter, nil, labels)
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Vec {
	return r.family(name, help, TypeGauge, nil, labels)
}

// Histogram registers (or fetches) a histogram family with the given
// upper bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Vec {
	return r.family(name, help, TypeHistogram, buckets, labels)
}

// seriesKey joins label values unambiguously (values may contain any
// byte; 0x1f never appears in our label vocabulary but escape anyway).
func seriesKey(values []string) string {
	return strings.Join(values, "\x1f")
}

// With resolves the series for the given label values, creating it at
// zero on first use. The value count must match the family's label
// names.
func (v *Vec) With(values ...string) *Series {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d labels, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	key := seriesKey(values)
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	s, ok := v.f.series[key]
	if !ok {
		s = &Series{r: v.r, labelValues: append([]string(nil), values...)}
		if v.f.typ == TypeHistogram {
			s.buckets = v.f.buckets
			s.bucketCount = make([]float64, len(v.f.buckets))
		}
		v.f.series[key] = s
	}
	return s
}

// Add increments a counter or gauge by d.
func (s *Series) Add(d float64) {
	s.r.mu.Lock()
	s.value += d
	s.r.mu.Unlock()
}

// Set sets a gauge — or a counter whose source is itself a cumulative
// monotone value (scrape-time mirroring of mpi.Stats counters).
func (s *Series) Set(x float64) {
	s.r.mu.Lock()
	s.value = x
	s.r.mu.Unlock()
}

// Observe records one histogram observation.
func (s *Series) Observe(x float64) {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	for i, ub := range s.buckets {
		if x <= ub {
			s.bucketCount[i]++
		}
	}
	s.sum += x
	s.count++
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func formatValue(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func labelBlock(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extra[i], escapeLabel(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4). Families appear in sorted name order and series in
// sorted label-value order, so identical registry state always renders
// byte-identically.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		if len(f.series) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if f.typ == TypeHistogram {
				for i, ub := range f.buckets {
					lb := labelBlock(f.labels, s.labelValues, "le", formatValue(ub))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %s\n", f.name, lb, formatValue(s.bucketCount[i])); err != nil {
						return err
					}
				}
				lb := labelBlock(f.labels, s.labelValues, "le", "+Inf")
				if _, err := fmt.Fprintf(w, "%s_bucket%s %s\n", f.name, lb, formatValue(s.count)); err != nil {
					return err
				}
				plain := labelBlock(f.labels, s.labelValues)
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %s\n",
					f.name, plain, formatValue(s.sum), f.name, plain, formatValue(s.count)); err != nil {
					return err
				}
				continue
			}
			lb := labelBlock(f.labels, s.labelValues)
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, lb, formatValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

package obs

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"dinfomap/internal/mpi"
)

// TestStreamEventCodecRoundTrip pins the wire format: every field
// survives, including negative Iter (the setup-refresh sentinel) and
// the full range of the 64-bit counters.
func TestStreamEventCodecRoundTrip(t *testing.T) {
	in := StreamEvent{
		Rank: 3, Seq: 12345,
		Event: Event{
			Stage: 2, Outer: 7, Iter: -1, Phase: PhaseID(4),
			Start: 123456789 * time.Nanosecond, End: 987654321 * time.Nanosecond,
			Moves: -5, Deferred: 11, Stale: 3,
			Ops: 1 << 40, Msgs: 42, WaitNs: 7_000_000, Bytes: 1 << 33,
		},
	}
	b := EncodeStreamEvent(in)
	if len(b) != streamEventWire {
		t.Fatalf("encoded size = %d, want %d", len(b), streamEventWire)
	}
	out, err := DecodeStreamEvent(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the event:\n in: %+v\nout: %+v", in, out)
	}
	if _, err := DecodeStreamEvent(b[:streamEventWire-1]); err == nil {
		t.Error("short payload decoded without error")
	}
}

// TestRankJournalStatus: a rank-scoped journal (only one row allocated)
// must serve Status for all p ranks without panicking, with the foreign
// rows empty.
func TestRankJournalStatus(t *testing.T) {
	j := NewRankJournal(2, 4, time.Now())
	j.Rank(2).Emit(Event{Stage: 1, Phase: PhaseID(1), Start: 1, End: 2})
	st := j.Status()
	if len(st.Ranks) != 4 {
		t.Fatalf("status has %d ranks, want 4", len(st.Ranks))
	}
	for r, rs := range st.Ranks {
		if rs.Rank != r {
			t.Errorf("rank slot %d reports rank %d", r, rs.Rank)
		}
		want := int64(0)
		if r == 2 {
			want = 1
		}
		if rs.Events != want {
			t.Errorf("rank %d events = %d, want %d", r, rs.Events, want)
		}
	}
	// Emits to foreign rows are dropped, not crashes.
	j.Rank(0).Emit(Event{Stage: 1})
	if n := j.NumEvents(); n != 1 {
		t.Errorf("foreign-row emit was counted: %d events", n)
	}
}

// TestRelayCollectorEndToEnd wires a child journal to a parent
// collector over a real TCP uplink: live events must land in the
// parent's journal, the final section must arrive lossless, and Merge
// must rebuild the rank's events and recorder records.
func TestRelayCollectorEndToEnd(t *testing.T) {
	const p = 2
	epoch := time.Now()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	//dinfomap:close-ok test listener
	defer ln.Close()

	parentJ := NewJournalAt(p, epoch)
	coll := NewCollector(p, parentJ, nil)
	served := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			served <- err
			return
		}
		peer, err := mpi.AcceptUplink(conn, p, epoch, "", time.Second)
		if err != nil {
			served <- err
			return
		}
		err = peer.Serve(coll, time.Millisecond)
		peer.Close()
		served <- err
	}()

	// Child side: rank 1 journals a few events, records wait events,
	// then flushes the final section — the same sequence runChildRank
	// performs.
	childJ := NewRankJournal(1, p, epoch)
	rec := mpi.NewRecorder(p, epoch)
	up, err := mpi.DialUplink("tcp", ln.Addr().String(), mpi.UplinkConfig{
		Rank: 1, Size: p, Epoch: epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	relay := StartRelay(childJ, 1, up, nil, time.Millisecond)
	for i := 0; i < 5; i++ {
		childJ.Rank(1).Emit(Event{
			Stage: 1, Iter: int32(i), Phase: PhaseID(1),
			Start: time.Duration(i) * time.Millisecond,
			End:   time.Duration(i)*time.Millisecond + 500*time.Microsecond,
		})
	}
	rec.AddP2P(1, mpi.P2PEvent{Src: 0, Tag: 9, Bytes: 64, SentAt: 1 * time.Millisecond, RecvStart: 2 * time.Millisecond, RecvEnd: 3 * time.Millisecond})
	rec.AddBarrier(1, mpi.BarrierEvent{Arrive: 4 * time.Millisecond, Release: 5 * time.Millisecond})
	childJ.Finish()
	relay.Wait()
	tel := CaptureTelemetry(childJ, 1, rec, &mpi.TransportStats{Network: "tcp"}, up.Drops())
	if err := SendTelemetry(up, tel); err != nil {
		t.Fatalf("SendTelemetry: %v", err)
	}
	up.Close()
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// Live flow reached the parent journal (timestamps may be shifted by
	// the running clock estimate; the count is the live contract).
	if got := parentJ.Rank(1).Events(); len(got) != 5 {
		t.Errorf("parent journal holds %d live events, want 5", len(got))
	}
	secs := coll.Sections()
	if secs[1] == nil {
		t.Fatal("rank 1 section never arrived")
	}
	if secs[1].Transport == nil || secs[1].Transport.Network != "tcp" {
		t.Errorf("section transport = %+v", secs[1].Transport)
	}
	clocks := coll.Clocks()
	if clocks[1].Samples == 0 {
		t.Error("no clock samples for rank 1")
	}

	merged, mrec := coll.Merge(epoch)
	if !merged.Finished() {
		t.Error("merged journal is not finished")
	}
	if got := merged.Rank(1).Events(); len(got) != 5 {
		t.Errorf("merged journal holds %d events, want 5", len(got))
	}
	if got := mrec.P2P(1); len(got) != 1 {
		t.Errorf("merged recorder holds %d p2p events, want 1", len(got))
	}
	if got := mrec.Barriers(1); len(got) != 1 {
		t.Errorf("merged recorder holds %d barriers, want 1", len(got))
	}
}

// synthSection builds rank r's telemetry section with one event and one
// received p2p edge from rank src, all stamped on rank r's own skewed
// clock.
func synthSection(r, src int, skew time.Duration, srcSkew time.Duration) *RankTelemetry {
	base := time.Duration(10+r) * time.Millisecond
	return &RankTelemetry{
		Rank: r,
		Events: []Event{{
			Stage: 1, Phase: PhaseID(1),
			Start: base + skew, End: base + skew + time.Millisecond,
		}},
		P2P: []mpi.P2PEvent{{
			Src: src, Tag: 5, Bytes: 32,
			SentAt:    base + srcSkew - time.Millisecond, // stamped on the sender's clock
			RecvStart: base + skew,
			RecvEnd:   base + skew + 200*time.Microsecond,
		}},
		Barriers: []mpi.BarrierEvent{{
			Arrive:  base + skew + 2*time.Millisecond,
			Release: base + skew + 3*time.Millisecond,
		}},
	}
}

// TestMergeTelemetryAlignment: ranks with known synthetic clock skews
// (r ms for rank r) merge onto one timeline — every timestamp loses
// exactly its rank's offset, durations survive untouched, and a p2p
// SentAt is corrected by the sender's offset, not the receiver's.
func TestMergeTelemetryAlignment(t *testing.T) {
	const p = 4
	sections := make([]*RankTelemetry, p)
	clocks := make([]ClockEstimate, p)
	skew := func(r int) time.Duration { return time.Duration(r) * time.Millisecond }
	for r := 0; r < p; r++ {
		src := (r + 1) % p
		sections[r] = synthSection(r, src, skew(r), skew(src))
		clocks[r] = ClockEstimate{Rank: r, OffsetNs: skew(r).Nanoseconds(), Samples: 1}
	}
	j, rec := MergeTelemetry(p, time.Now(), sections, clocks)
	for r := 0; r < p; r++ {
		base := time.Duration(10+r) * time.Millisecond
		evs := j.Rank(r).Events()
		if len(evs) != 1 {
			t.Fatalf("rank %d: %d merged events", r, len(evs))
		}
		if evs[0].Start != base {
			t.Errorf("rank %d event start = %v, want %v (skew removed)", r, evs[0].Start, base)
		}
		if d := evs[0].Dur(); d != time.Millisecond {
			t.Errorf("rank %d event duration changed to %v", r, d)
		}
		pes := rec.P2P(r)
		if len(pes) != 1 {
			t.Fatalf("rank %d: %d merged p2p events", r, len(pes))
		}
		if want := base - time.Millisecond; pes[0].SentAt != want {
			t.Errorf("rank %d SentAt = %v, want %v (sender's offset removed)", r, pes[0].SentAt, want)
		}
		if pes[0].RecvStart != base {
			t.Errorf("rank %d RecvStart = %v, want %v", r, pes[0].RecvStart, base)
		}
		bes := rec.Barriers(r)
		if len(bes) != 1 || bes[0].Arrive != base+2*time.Millisecond {
			t.Errorf("rank %d barriers misaligned: %+v", r, bes)
		}
	}
	// A dead rank (nil section) leaves an empty row, not a crash.
	sections[2] = nil
	j2, _ := MergeTelemetry(p, time.Now(), sections, clocks)
	if got := j2.Rank(2).Events(); len(got) != 0 {
		t.Errorf("nil section produced %d events", len(got))
	}
}

// TestMergedTraceGolden renders a merged 4-rank telemetry set to a
// Chrome trace and checks the structural contract the acceptance
// criteria name: one thread row per rank and cross-process flow arrows
// (a start on the sender's row, a finish on the receiver's).
func TestMergedTraceGolden(t *testing.T) {
	const p = 4
	sections := make([]*RankTelemetry, p)
	clocks := make([]ClockEstimate, p)
	for r := 0; r < p; r++ {
		src := (r + 1) % p
		sections[r] = synthSection(r, src, 0, 0)
		clocks[r] = ClockEstimate{Rank: r, Samples: 1}
	}
	j, rec := MergeTelemetry(p, time.Now(), sections, clocks)
	var buf bytes.Buffer
	if err := WriteChromeTraceWith(&buf, j, rec); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			ID   string         `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	rows := map[int]string{}
	flowStartRows := map[int]bool{}
	flowFinishRows := map[int]bool{}
	starts, finishes := map[string]bool{}, map[string]bool{}
	spans := 0
	for _, e := range tr.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			rows[e.Tid], _ = e.Args["name"].(string)
		case e.Ph == "X":
			spans++
		case e.Ph == "s":
			starts[e.ID] = true
			flowStartRows[e.Tid] = true
		case e.Ph == "f":
			finishes[e.ID] = true
			flowFinishRows[e.Tid] = true
		}
	}
	if len(rows) != p {
		t.Fatalf("trace has %d thread rows, want %d: %v", len(rows), p, rows)
	}
	for r := 0; r < p; r++ {
		if rows[r] == "" {
			t.Errorf("rank %d has no named row", r)
		}
	}
	if spans != p {
		t.Errorf("trace has %d spans, want %d (one event per rank)", spans, p)
	}
	if len(starts) != p || len(finishes) != p {
		t.Fatalf("trace has %d flow starts / %d finishes, want %d each", len(starts), len(finishes), p)
	}
	for id := range starts {
		if !finishes[id] {
			t.Errorf("flow %s starts but never finishes", id)
		}
	}
	// Each rank receives from (r+1)%p, so every row both sends and
	// receives at least one arrow — the "cross-process" part.
	for r := 0; r < p; r++ {
		if !flowStartRows[r] {
			t.Errorf("rank %d row emits no flow start", r)
		}
		if !flowFinishRows[r] {
			t.Errorf("rank %d row receives no flow finish", r)
		}
	}
}

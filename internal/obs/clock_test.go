package obs

import (
	"testing"
	"time"

	"dinfomap/internal/mpi"
)

// synthSamples builds ping/pong samples for a child whose clock leads
// the parent's by skew, with per-sample one-way network delays. The
// measured offset of a sample is skew plus the asymmetry between the
// outbound and return delays (the midpoint interpolation's intrinsic
// error term).
func synthSamples(skew time.Duration, delays [][2]time.Duration) []mpi.ClockSample {
	out := make([]mpi.ClockSample, 0, len(delays))
	at := time.Duration(0)
	for _, d := range delays {
		rtt := d[0] + d[1]
		at += rtt
		out = append(out, mpi.ClockSample{
			Offset: skew + (d[0]-d[1])/2,
			RTT:    rtt,
			At:     at,
		})
	}
	return out
}

// TestEstimateClockConstantSkew pins the core accuracy property: with
// a constant true skew, the estimate's error is bounded by half the
// best sample's RTT — the asymmetry term the midpoint cannot see.
func TestEstimateClockConstantSkew(t *testing.T) {
	const skew = 3 * time.Millisecond
	samples := synthSamples(skew, [][2]time.Duration{
		{400 * time.Microsecond, 900 * time.Microsecond}, // asymmetric, slow
		{150 * time.Microsecond, 250 * time.Microsecond}, // fast
		{2 * time.Millisecond, 5 * time.Millisecond},     // queueing outlier
		{100 * time.Microsecond, 160 * time.Microsecond}, // best
		{900 * time.Microsecond, 300 * time.Microsecond},
	})
	est := EstimateClock(3, samples)
	if est.Rank != 3 || est.Samples != len(samples) {
		t.Fatalf("estimate bookkeeping wrong: %+v", est)
	}
	if est.RTTNs != (260 * time.Microsecond).Nanoseconds() {
		t.Errorf("best RTT = %v, want the minimum sample's 260µs", time.Duration(est.RTTNs))
	}
	err := time.Duration(est.OffsetNs) - skew
	if err < 0 {
		err = -err
	}
	if maxErr := time.Duration(est.RTTNs) / 2; err > maxErr {
		t.Errorf("offset error %v exceeds half best RTT %v", err, maxErr)
	}
}

// TestEstimateClockResidual separates the two ways samples disagree:
// RTT outliers (queueing) must not inflate the residual, but genuine
// offset spread among credible samples must.
func TestEstimateClockResidual(t *testing.T) {
	// Symmetric fast samples with identical offsets plus one slow
	// outlier whose asymmetry implies a wildly different offset: the
	// residual must stay zero because the outlier is not credible.
	clean := synthSamples(time.Millisecond, [][2]time.Duration{
		{100 * time.Microsecond, 100 * time.Microsecond},
		{120 * time.Microsecond, 120 * time.Microsecond},
		{4 * time.Millisecond, 100 * time.Microsecond}, // RTT > 2× best
	})
	if est := EstimateClock(0, clean); est.ResidualNs != 0 {
		t.Errorf("RTT outlier leaked into the residual: %v", time.Duration(est.ResidualNs))
	}

	// A drifting clock: credible samples whose offsets walk away from
	// each other. The residual must report the spread.
	drift := []mpi.ClockSample{
		{Offset: 1 * time.Millisecond, RTT: 200 * time.Microsecond, At: 0},
		{Offset: 1*time.Millisecond + 300*time.Microsecond, RTT: 210 * time.Microsecond, At: time.Second},
		{Offset: 1*time.Millisecond + 700*time.Microsecond, RTT: 220 * time.Microsecond, At: 2 * time.Second},
	}
	est := EstimateClock(0, drift)
	if got := time.Duration(est.ResidualNs); got != 700*time.Microsecond {
		t.Errorf("drift residual = %v, want 700µs (largest credible deviation from the best sample)", got)
	}
}

// TestEstimateClockEmpty: no samples yields the zero estimate (offset
// 0 is the only sane default — stamps pass through unshifted).
func TestEstimateClockEmpty(t *testing.T) {
	est := EstimateClock(5, nil)
	if est.Rank != 5 || est.OffsetNs != 0 || est.RTTNs != 0 || est.ResidualNs != 0 || est.Samples != 0 {
		t.Errorf("empty estimate = %+v, want zero values with the rank set", est)
	}
}

// Cross-rank critical path through the BSP superstep DAG.
//
// The DAG's nodes are (rank, inter-barrier interval) spans; its edges
// are the synchronization points every rank passes in identical order
// (each collective contributes its internal syncs) plus matched p2p
// receives. Because a barrier releases everyone the instant the last
// rank arrives, the chain that bounds wall clock is recovered by a
// backward walk: start at the rank that finishes the run last; at each
// synchronization generation, jump to the rank that arrived last (the
// gating rank) and extend the path backward through its preceding
// compute interval. Consecutive same-rank hops coalesce into one
// segment, and each segment's time is attributed to journal phases by
// overlap, so the result reads "rank 2's FindBestModule gated
// generations 14-38 for 1.2 ms".
//
// The walk needs the per-generation arrival times, i.e. a run recorded
// with mpi.WithRecorder; without one there is no DAG and CriticalPath
// returns nil.
package obs

import (
	"sort"
	"time"

	"dinfomap/internal/mpi"
)

// CritSegment is one maximal single-rank stretch of the critical path.
type CritSegment struct {
	Rank        int   `json:"rank"`
	StartWallNs int64 `json:"start_wall_ns"`
	EndWallNs   int64 `json:"end_wall_ns"`
	// Barrier is the synchronization generation whose arrival ends the
	// segment (this rank was its last arriver); -1 for the final segment,
	// which ends at run end.
	Barrier int `json:"barrier_seq"`
	// ByPhaseWallNs attributes the segment to journal phases by span
	// overlap; time outside any span (the mpi runtime itself) is omitted.
	ByPhaseWallNs map[string]int64 `json:"by_phase_wall_ns,omitempty"`
}

// DurNs returns the segment length in nanoseconds.
func (s CritSegment) DurNs() int64 { return s.EndWallNs - s.StartWallNs }

// CriticalPath walks the superstep DAG backward and returns the
// critical path as time-ordered, rank-coalesced segments. rec must come
// from the run that produced j (same epoch); a nil recorder, a nil
// journal, or a recorder with no synchronization events yields nil.
//
// The segment durations sum to the run wall minus the barrier release
// latencies between hops (the time between the gating rank's arrival
// and the blocked ranks observing the release), so coverage of the run
// wall is near 1 and is itself a useful health signal.
func CriticalPath(j *Journal, rec *mpi.Recorder) []CritSegment {
	if j == nil || rec == nil || rec.NumRanks() == 0 {
		return nil
	}
	p := rec.NumRanks()
	// Every rank passes synchronization points in the same order; the
	// min guards against a crashed run with ragged logs.
	gens := len(rec.Barriers(0))
	for r := 1; r < p; r++ {
		if n := len(rec.Barriers(r)); n < gens {
			gens = n
		}
	}
	if gens == 0 {
		return nil
	}

	// finish(r): when rank r left the measured run — its last journal
	// span end or last barrier release, whichever is later.
	finish := func(r int) time.Duration {
		var t time.Duration
		for _, ev := range j.Rank(r).Events() {
			if ev.End > t {
				t = ev.End
			}
		}
		if bars := rec.Barriers(r); len(bars) > 0 {
			if rel := bars[len(bars)-1].Release; rel > t {
				t = rel
			}
		}
		return t
	}
	cur, curEnd := 0, finish(0)
	for r := 1; r < p; r++ {
		if t := finish(r); t > curEnd {
			cur, curEnd = r, t
		}
	}

	// Backward walk: the segment [release(g), curEnd] on cur, then hop
	// to the gating (last-arriving) rank of generation g.
	var back []CritSegment
	endBar := -1
	for g := gens - 1; g >= 0; g-- {
		start := rec.Barriers(cur)[g].Release
		if start > curEnd {
			start = curEnd
		}
		back = append(back, CritSegment{
			Rank: cur, StartWallNs: start.Nanoseconds(), EndWallNs: curEnd.Nanoseconds(), Barrier: endBar,
		})
		gating, arrive := 0, rec.Barriers(0)[g].Arrive
		for r := 1; r < p; r++ {
			if a := rec.Barriers(r)[g].Arrive; a > arrive {
				gating, arrive = r, a
			}
		}
		cur, curEnd, endBar = gating, arrive, g
	}
	back = append(back, CritSegment{Rank: cur, StartWallNs: 0, EndWallNs: curEnd.Nanoseconds(), Barrier: endBar})

	// Reverse into time order and coalesce consecutive same-rank hops.
	path := make([]CritSegment, 0, len(back))
	for i := len(back) - 1; i >= 0; i-- {
		seg := back[i]
		if seg.DurNs() <= 0 && seg.Barrier != -1 && len(path) > 0 {
			// Zero-length hop (gating rank arrived exactly at its own
			// release): fold the barrier index into the previous segment.
			path[len(path)-1].Barrier = seg.Barrier
			continue
		}
		if n := len(path); n > 0 && path[n-1].Rank == seg.Rank {
			path[n-1].EndWallNs = seg.EndWallNs
			path[n-1].Barrier = seg.Barrier
			continue
		}
		path = append(path, seg)
	}

	attributePhases(j, path)
	return path
}

// attributePhases fills each segment's ByPhaseWallNs with the overlap
// between the segment and the segment rank's journal spans.
func attributePhases(j *Journal, path []CritSegment) {
	// Journal spans are emitted in time order per rank; binary search
	// for the first span that may overlap each segment.
	for i := range path {
		seg := &path[i]
		evs := j.Rank(seg.Rank).Events()
		lo := sort.Search(len(evs), func(k int) bool {
			return evs[k].End.Nanoseconds() > seg.StartWallNs
		})
		for _, ev := range evs[lo:] {
			if ev.Start.Nanoseconds() >= seg.EndWallNs {
				break
			}
			if ev.Phase == PhaseOuterIter {
				continue
			}
			start, end := ev.Start.Nanoseconds(), ev.End.Nanoseconds()
			if start < seg.StartWallNs {
				start = seg.StartWallNs
			}
			if end > seg.EndWallNs {
				end = seg.EndWallNs
			}
			if end <= start {
				continue
			}
			if seg.ByPhaseWallNs == nil {
				seg.ByPhaseWallNs = make(map[string]int64)
			}
			seg.ByPhaseWallNs[ev.Phase.Name()] += end - start
		}
	}
}

// Live Prometheus metrics for a running (or finished) distributed run.
//
// Two feeds, one registry:
//
//   - span counters stream in through the same non-blocking tap
//     machinery as the SSE endpoint — a background collector goroutine
//     consumes a Tap, so ranks never block on the metrics observer and
//     a stalled scraper can at worst lose tap events (counted);
//   - comm counters are mirrored at scrape time from each rank's
//     atomically-published cumulative mpi.Stats snapshot (PublishComm),
//     giving exact per-kind byte/message counters without the tap's
//     lossy ring in the path.
package obs

import (
	"net/http"
	"strconv"

	"dinfomap/internal/mpi"
)

// MetricsPath is the Prometheus text exposition endpoint registered by
// RegisterDebugHandlers.
const MetricsPath = "/debug/dinfomap/metrics"

// spanDurationBuckets covers sub-microsecond journal spans up to
// multi-second stalls (seconds, exponential).
var spanDurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// stalenessBuckets covers the useful range of the asynchronous-sweep
// staleness bound (epochs; the bound is small by design).
var stalenessBuckets = []float64{0, 1, 2, 4, 8}

// Metrics aggregates a journal's live event flow into a Registry and
// serves it in Prometheus text format.
type Metrics struct {
	j   *Journal
	reg *Registry

	spanEvents *Vec // {rank, phase}
	spanMoves  *Vec
	spanOps    *Vec
	spanMsgs   *Vec
	spanBytes  *Vec
	spanDur    *Vec // {phase} histogram, seconds
	outerIters *Vec // {rank}
	staleness  *Vec // {rank} histogram, epochs

	commKindBytes *Vec // {rank, kind, direction}
	commKindMsgs  *Vec // {rank, kind, direction}
	commKindColls *Vec // {rank, kind}
	commRankBytes *Vec // {rank, direction}
	commRankMsgs  *Vec // {rank, direction}
	commRankColls *Vec // {rank}
	commKindWait  *Vec // {rank, kind, state} seconds
	commRankWait  *Vec // {rank, state} seconds
	recvsBlocked  *Vec // {rank}
	barrierSyncs  *Vec // {rank}

	transportFrames    *Vec // {rank, peer, direction}
	transportBytes     *Vec // {rank, peer, direction}
	transportRetries   *Vec // {rank}
	transportHandshake *Vec // {rank} gauge, seconds
	transportPoisons   *Vec // {rank, direction}

	journalEvents      *Vec
	journalDropped     *Vec
	journalSubscribers *Vec
	runFinished        *Vec
	buildInfo          *Vec
	done               chan struct{}
}

// RunMetrics subscribes a tap on j, starts the collector goroutine, and
// returns the Metrics. The collector exits when the run finishes
// (Journal.Finish closes the tap); Done reports that. A nil journal
// yields a Metrics whose collector exits immediately and whose scrape
// output is empty.
func RunMetrics(j *Journal) *Metrics {
	reg := NewRegistry()
	m := &Metrics{
		j:   j,
		reg: reg,

		spanEvents: reg.Counter("dinfomap_span_events_total",
			"Journal span events recorded, by rank and phase.", "rank", "phase"),
		spanMoves: reg.Counter("dinfomap_span_moves_total",
			"Vertex moves applied, by rank and phase.", "rank", "phase"),
		spanOps: reg.Counter("dinfomap_span_ops_total",
			"Counted work (delta-L evals, candidates, ghosts, modules), by rank and phase.", "rank", "phase"),
		spanMsgs: reg.Counter("dinfomap_span_msgs_total",
			"Messages sent within spans (p2p + modeled collective steps), by rank and phase.", "rank", "phase"),
		spanBytes: reg.Counter("dinfomap_span_bytes_total",
			"Bytes sent within spans, by rank and phase.", "rank", "phase"),
		spanDur: reg.Histogram("dinfomap_span_duration_seconds",
			"Host wall-clock span durations by phase.", spanDurationBuckets, "phase"),
		outerIters: reg.Counter("dinfomap_outer_iterations_total",
			"Outer iterations completed, by rank.", "rank"),
		staleness: reg.Histogram("dinfomap_ghost_staleness",
			"Ghost-statistics staleness (epochs) of asynchronous sweep gates, by rank.",
			stalenessBuckets, "rank"),

		commKindBytes: reg.Counter("dinfomap_comm_kind_bytes_total",
			"Cumulative rank traffic bytes by message kind and direction (sent, recv, collective).", "rank", "kind", "direction"),
		commKindMsgs: reg.Counter("dinfomap_comm_kind_msgs_total",
			"Cumulative rank message counts by kind and direction (sent, recv, collective).", "rank", "kind", "direction"),
		commKindColls: reg.Counter("dinfomap_comm_kind_collectives_total",
			"Cumulative collective operations by rank and ambient kind.", "rank", "kind"),
		commRankBytes: reg.Counter("dinfomap_comm_rank_bytes_total",
			"Cumulative rank traffic bytes by direction; equals the per-kind sums.", "rank", "direction"),
		commRankMsgs: reg.Counter("dinfomap_comm_rank_msgs_total",
			"Cumulative rank message counts by direction; equals the per-kind sums.", "rank", "direction"),
		commRankColls: reg.Counter("dinfomap_comm_rank_collectives_total",
			"Cumulative collective operations by rank.", "rank"),
		commKindWait: reg.Counter("dinfomap_comm_wait_seconds_total",
			"Cumulative communication wait by rank, kind, and wait state (blocked: late sender; queued: inbox residency / late receiver; barrier: arrival-to-release skew).", "rank", "kind", "state"),
		commRankWait: reg.Counter("dinfomap_comm_rank_wait_seconds_total",
			"Cumulative communication wait by rank and wait state; equals the per-kind sums.", "rank", "state"),
		recvsBlocked: reg.Counter("dinfomap_comm_recvs_blocked_total",
			"Receives that blocked on a late sender, by rank.", "rank"),
		barrierSyncs: reg.Counter("dinfomap_comm_barrier_syncs_total",
			"Synchronization points entered (barriers and collective-internal syncs), by rank.", "rank"),

		transportFrames: reg.Counter("dinfomap_transport_frames_total",
			"Multi-process transport frames on the wire, by rank, peer rank, and direction (sent, recv).", "rank", "peer", "direction"),
		transportBytes: reg.Counter("dinfomap_transport_bytes_total",
			"Multi-process transport bytes on the wire (frame headers included), by rank, peer rank, and direction.", "rank", "peer", "direction"),
		transportRetries: reg.Counter("dinfomap_transport_connect_retries_total",
			"Mesh-establishment dial attempts beyond the first, by rank.", "rank"),
		transportHandshake: reg.Gauge("dinfomap_transport_handshake_seconds",
			"Full mesh-establishment time (all peers dialed/accepted and verified), by rank.", "rank"),
		transportPoisons: reg.Counter("dinfomap_transport_poison_events_total",
			"Poison frames observed on the mesh, by rank and direction (sent, recv).", "rank", "direction"),

		journalEvents: reg.Gauge("dinfomap_journal_events",
			"Total journal events emitted across ranks."),
		journalDropped: reg.Gauge("dinfomap_journal_dropped_events",
			"Events lost to slow live subscribers (tap ring overflow), journal lifetime."),
		journalSubscribers: reg.Gauge("dinfomap_journal_subscribers",
			"Live event-stream subscribers (taps) currently attached."),
		runFinished: reg.Gauge("dinfomap_run_finished",
			"1 once the run has completed, else 0."),
		buildInfo: reg.Gauge("dinfomap_build_info",
			"Build provenance; value is always 1, the labels carry module version and VCS revision.", "version", "revision", "modified"),
		done: make(chan struct{}),
	}
	b := ReadBuild()
	m.buildInfo.With(b.Version, b.Revision, strconv.FormatBool(b.Modified)).Set(1)
	tap := j.Subscribe(DefaultTapBuffer)
	go func() {
		defer close(m.done)
		for ev := range tap.Events() {
			m.observe(ev)
		}
	}()
	return m
}

// Done is closed when the collector goroutine has drained its tap
// (after Journal.Finish).
func (m *Metrics) Done() <-chan struct{} { return m.done }

// Registry exposes the underlying registry (tests, custom exposition).
func (m *Metrics) Registry() *Registry { return m.reg }

// observe folds one streamed journal event into the span counters.
// Outer-iteration boundary markers count as iterations, not spans:
// their Msgs/Bytes carry the iteration's cumulative traffic delta,
// which the phase spans already accounted for.
func (m *Metrics) observe(ev StreamEvent) {
	rank := strconv.Itoa(ev.Rank)
	if ev.Phase == PhaseOuterIter {
		m.outerIters.With(rank).Add(1)
		return
	}
	phase := ev.Phase.Name()
	if ev.Phase == PhaseAsyncDrain {
		m.staleness.With(rank).Observe(float64(ev.Stale))
	}
	m.spanEvents.With(rank, phase).Add(1)
	m.spanMoves.With(rank, phase).Add(float64(ev.Moves))
	m.spanOps.With(rank, phase).Add(float64(ev.Ops))
	m.spanMsgs.With(rank, phase).Add(float64(ev.Msgs))
	m.spanBytes.With(rank, phase).Add(float64(ev.Bytes))
	m.spanDur.With(phase).Observe(ev.Dur().Seconds())
}

// ObserveTransport mirrors one rank's cumulative transport-counter
// snapshot into the registry (Set semantics, like scrape: the source is
// itself a monotone counter set). Nil-safe on both receivers; safe from
// any goroutine — the launcher's uplink collector calls it once per
// periodic child snapshot.
func (m *Metrics) ObserveTransport(rank int, ts *mpi.TransportStats) {
	if m == nil || ts == nil {
		return
	}
	r := strconv.Itoa(rank)
	for p, pt := range ts.Peers {
		if pt == (mpi.PeerTraffic{}) {
			continue // self slot, or a peer never talked to
		}
		peer := strconv.Itoa(p)
		m.transportFrames.With(r, peer, "sent").Set(float64(pt.FramesSent))
		m.transportFrames.With(r, peer, "recv").Set(float64(pt.FramesRecv))
		m.transportBytes.With(r, peer, "sent").Set(float64(pt.BytesSent))
		m.transportBytes.With(r, peer, "recv").Set(float64(pt.BytesRecv))
	}
	m.transportRetries.With(r).Set(float64(ts.ConnectRetries))
	m.transportHandshake.With(r).Set(float64(ts.HandshakeWallNs) / 1e9)
	m.transportPoisons.With(r, "sent").Set(float64(ts.PoisonsSent))
	m.transportPoisons.With(r, "recv").Set(float64(ts.PoisonsRecv))
}

// scrape mirrors the scrape-time values into the registry: each rank's
// latest published cumulative comm snapshot (exact, per kind) and the
// journal's live status gauges. Counter families are Set, not Added —
// the sources are themselves cumulative monotone counters.
func (m *Metrics) scrape() {
	if m.j == nil {
		return
	}
	for r := 0; r < m.j.NumRanks(); r++ {
		s, ok := m.j.Rank(r).CommSnapshot()
		if !ok {
			continue
		}
		rank := strconv.Itoa(r)
		for k := 0; k < mpi.NumKinds; k++ {
			ks := s.ByKind[k]
			kind := mpi.Kind(k).String()
			m.commKindBytes.With(rank, kind, "sent").Set(float64(ks.BytesSent))
			m.commKindBytes.With(rank, kind, "recv").Set(float64(ks.BytesRecv))
			m.commKindBytes.With(rank, kind, "collective").Set(float64(ks.CollectiveBytes))
			m.commKindMsgs.With(rank, kind, "sent").Set(float64(ks.MsgsSent))
			m.commKindMsgs.With(rank, kind, "recv").Set(float64(ks.MsgsRecv))
			m.commKindMsgs.With(rank, kind, "collective").Set(float64(ks.CollectiveMsgs))
			m.commKindColls.With(rank, kind).Set(float64(ks.Collectives))
			m.commKindWait.With(rank, kind, "blocked").Set(float64(ks.RecvBlockedNs) / 1e9)
			m.commKindWait.With(rank, kind, "queued").Set(float64(ks.RecvQueueNs) / 1e9)
			m.commKindWait.With(rank, kind, "barrier").Set(float64(ks.BarrierWaitNs) / 1e9)
		}
		m.commRankBytes.With(rank, "sent").Set(float64(s.BytesSent))
		m.commRankBytes.With(rank, "recv").Set(float64(s.BytesRecv))
		m.commRankBytes.With(rank, "collective").Set(float64(s.CollectiveBytes))
		m.commRankMsgs.With(rank, "sent").Set(float64(s.MsgsSent))
		m.commRankMsgs.With(rank, "recv").Set(float64(s.MsgsRecv))
		m.commRankMsgs.With(rank, "collective").Set(float64(s.CollectiveMsgs))
		m.commRankColls.With(rank).Set(float64(s.Collectives))
		m.commRankWait.With(rank, "blocked").Set(float64(s.RecvBlockedNs) / 1e9)
		m.commRankWait.With(rank, "queued").Set(float64(s.RecvQueueNs) / 1e9)
		m.commRankWait.With(rank, "barrier").Set(float64(s.BarrierWaitNs) / 1e9)
		m.recvsBlocked.With(rank).Set(float64(s.RecvsBlocked))
		m.barrierSyncs.With(rank).Set(float64(s.BarrierSyncs))
	}
	st := m.j.Status()
	m.journalEvents.With().Set(float64(st.Events))
	m.journalDropped.With().Set(float64(st.DroppedEvents))
	m.journalSubscribers.With().Set(float64(st.Subscribers))
	if st.Finished {
		m.runFinished.With().Set(1)
	} else {
		m.runFinished.With().Set(0)
	}
}

// ServeHTTP serves the registry in Prometheus text exposition format.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	m.scrape()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = m.reg.WriteText(w)
}

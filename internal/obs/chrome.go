package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one record of the Chrome trace-event format
// (the "JSON Object Format" consumed by Perfetto and chrome://tracing).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace exports the journal as Chrome trace-event JSON: one
// timeline row (thread) per rank, one complete-event span per journal
// event, with the per-iteration counters attached as span args. Open the
// output in https://ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, j *Journal) error {
	if j == nil {
		return fmt.Errorf("obs: nil journal")
	}
	evs := make([]chromeEvent, 0, j.NumEvents()+2*j.NumRanks()+1)
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "dinfomap"},
	})
	for r := 0; r < j.NumRanks(); r++ {
		evs = append(evs,
			chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: r,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
			},
			chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: r,
				Args: map[string]any{"sort_index": r},
			},
		)
	}
	for r := 0; r < j.NumRanks(); r++ {
		for _, ev := range j.Rank(r).Events() {
			evs = append(evs, chromeEvent{
				Name: ev.Phase.Name(),
				Cat:  fmt.Sprintf("stage%d", ev.Stage),
				Ph:   "X",
				Pid:  0,
				Tid:  r,
				Ts:   usec(ev.Start),
				Dur:  usec(ev.Dur()),
				Args: map[string]any{
					"stage":    ev.Stage,
					"outer":    ev.Outer,
					"iter":     ev.Iter,
					"moves":    ev.Moves,
					"deferred": ev.Deferred,
					"ops":      ev.Ops,
					"msgs":     ev.Msgs,
					"bytes":    ev.Bytes,
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"dinfomap/internal/mpi"
)

// chromeEvent is one record of the Chrome trace-event format
// (the "JSON Object Format" consumed by Perfetto and chrome://tracing).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	ID   string         `json:"id,omitempty"`  // flow-event binding id
	BP   string         `json:"bp,omitempty"`  // flow binding point ("e": enclosing slice)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace exports the journal as Chrome trace-event JSON: one
// timeline row (thread) per rank, one complete-event span per journal
// event, with the per-iteration counters attached as span args. Open the
// output in https://ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, j *Journal) error {
	return WriteChromeTraceWith(w, j, nil)
}

// WriteChromeTraceWith additionally renders the wait-state events of a
// run recorded with mpi.WithRecorder (sharing j's epoch):
//
//   - one flow arrow per matched p2p pair, from the send stamp on the
//     sender's row to the receive completion on the receiver's row
//     (Perfetto draws these as arrows between the enclosing slices);
//   - a "blocked ranks" counter track stepping up while a rank sits in
//     a blocked receive or between barrier arrival and release, so
//     synchronization stalls are visible at a glance.
//
// rec may be nil, which reduces to WriteChromeTrace.
func WriteChromeTraceWith(w io.Writer, j *Journal, rec *mpi.Recorder) error {
	if j == nil {
		return fmt.Errorf("obs: nil journal")
	}
	evs := make([]chromeEvent, 0, j.NumEvents()+2*j.NumRanks()+1)
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "dinfomap"},
	})
	for r := 0; r < j.NumRanks(); r++ {
		evs = append(evs,
			chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: r,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
			},
			chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: r,
				Args: map[string]any{"sort_index": r},
			},
		)
	}
	for r := 0; r < j.NumRanks(); r++ {
		for _, ev := range j.Rank(r).Events() {
			evs = append(evs, chromeEvent{
				Name: ev.Phase.Name(),
				Cat:  fmt.Sprintf("stage%d", ev.Stage),
				Ph:   "X",
				Pid:  0,
				Tid:  r,
				Ts:   usec(ev.Start),
				Dur:  usec(ev.Dur()),
				Args: map[string]any{
					"stage":    ev.Stage,
					"outer":    ev.Outer,
					"iter":     ev.Iter,
					"moves":    ev.Moves,
					"deferred": ev.Deferred,
					"ops":      ev.Ops,
					"msgs":     ev.Msgs,
					"bytes":    ev.Bytes,
					"wait_ns":  ev.WaitNs,
				},
			})
		}
	}
	if rec != nil {
		evs = append(evs, flowEvents(rec)...)
		evs = append(evs, blockedCounterEvents(rec)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// flowEvents renders every recorded p2p match as a flow start on the
// sender's row and a flow finish on the receiver's row. The binding
// point "e" attaches each end to the slice enclosing its timestamp.
func flowEvents(rec *mpi.Recorder) []chromeEvent {
	var out []chromeEvent
	id := 0
	for r := 0; r < rec.NumRanks(); r++ {
		for _, e := range rec.P2P(r) {
			id++
			name := e.Kind.String()
			args := map[string]any{"bytes": e.Bytes, "tag": e.Tag, "blocked": e.Blocked()}
			out = append(out,
				chromeEvent{
					Name: name, Cat: "p2p", Ph: "s", Pid: 0, Tid: e.Src,
					Ts: usec(e.SentAt), ID: fmt.Sprintf("p2p%d", id), Args: args,
				},
				chromeEvent{
					Name: name, Cat: "p2p", Ph: "f", BP: "e", Pid: 0, Tid: r,
					Ts: usec(e.RecvEnd), ID: fmt.Sprintf("p2p%d", id), Args: args,
				},
			)
		}
	}
	return out
}

// blockedCounterEvents builds the "blocked ranks" counter track: +1
// while a rank waits between barrier arrival and release or inside a
// blocked receive, emitted as one counter sample per change point.
func blockedCounterEvents(rec *mpi.Recorder) []chromeEvent {
	type delta struct {
		at time.Duration
		d  int
	}
	var ds []delta
	for r := 0; r < rec.NumRanks(); r++ {
		for _, b := range rec.Barriers(r) {
			ds = append(ds, delta{b.Arrive, +1}, delta{b.Release, -1})
		}
		for _, e := range rec.P2P(r) {
			if e.Blocked() {
				ds = append(ds, delta{e.RecvStart, +1}, delta{e.RecvEnd, -1})
			}
		}
	}
	if len(ds) == 0 {
		return nil
	}
	// Deterministic order: by time, decrements before increments on ties
	// so the running count never over-counts an instantaneous handoff.
	sort.Slice(ds, func(i, k int) bool {
		if ds[i].at != ds[k].at {
			return ds[i].at < ds[k].at
		}
		return ds[i].d < ds[k].d
	})
	out := make([]chromeEvent, 0, len(ds))
	blocked := 0
	for _, d := range ds {
		blocked += d.d
		out = append(out, chromeEvent{
			Name: "blocked ranks", Ph: "C", Pid: 0, Ts: usec(d.at),
			Args: map[string]any{"blocked": blocked},
		})
	}
	return out
}

// Wait-state attribution (Scalasca-style): turn the mpi runtime's wait
// counters and the journal's phase spans into a lost-time table that
// says *why* a run is slow, not just where time went.
//
// Four categories per rank:
//
//   - late sender:   the rank asked Recv before the matching send
//     happened and sat blocked (mpi RecvBlockedNs);
//   - late receiver: messages addressed to the rank sat in its inbox
//     because it asked late (mpi RecvQueueNs) — time its *peers'* sends
//     spent unconsumed, a symptom that this rank is the straggler;
//   - barrier skew:  arrival-to-release wait at barrier/collective
//     synchronization points (mpi BarrierWaitNs) — in the collectives-
//     only BSP core this is where essentially all blocked time lives;
//   - imbalance:     the journal-derived work deficit — per phase, how
//     much less wall time this rank spent than the busiest rank. It is
//     the *explanation* of the skew measured on the other ranks: a rank
//     with high imbalance finished early and paid for it at the next
//     barrier.
//
// All fields here are measured host wall clock and therefore
// nondeterministic; their JSON names carry "wall" so the regression
// differ classifies them ignored.
package obs

import (
	"time"

	"dinfomap/internal/mpi"
)

// WaitTotals is the wait-state slice of mpi.Stats in report form. JSON
// names carry "wall": the values are measured times/classifications that
// vary run to run and must never gate a regression diff.
type WaitTotals struct {
	// RecvBlockedWallNs is blocked wait in Recv on late senders.
	RecvBlockedWallNs int64 `json:"recv_blocked_wall_ns,omitempty"`
	// RecvQueueWallNs is inbox residency of received messages (late
	// receiver).
	RecvQueueWallNs int64 `json:"recv_queue_wall_ns,omitempty"`
	// RecvsBlockedWall counts receives that blocked on a late sender
	// (a classification of measured timing, hence nondeterministic).
	RecvsBlockedWall int64 `json:"recvs_blocked_wall,omitempty"`
	// BarrierWaitWallNs is arrival-to-release skew at synchronization
	// points.
	BarrierWaitWallNs int64 `json:"barrier_wait_wall_ns,omitempty"`
	// BarrierSyncs counts synchronization points entered (deterministic,
	// kept here so the wait table is self-contained).
	BarrierSyncs int64 `json:"barrier_syncs,omitempty"`
}

// waitFromStats extracts the wait-state fields of one Stats snapshot.
func waitFromStats(s mpi.Stats) WaitTotals {
	return WaitTotals{
		RecvBlockedWallNs: s.RecvBlockedNs,
		RecvQueueWallNs:   s.RecvQueueNs,
		RecvsBlockedWall:  s.RecvsBlocked,
		BarrierWaitWallNs: s.BarrierWaitNs,
		BarrierSyncs:      s.BarrierSyncs,
	}
}

// waitFromKind extracts the wait-state fields of one kind bucket.
func waitFromKind(k mpi.KindStats) WaitTotals {
	return WaitTotals{
		RecvBlockedWallNs: k.RecvBlockedNs,
		RecvQueueWallNs:   k.RecvQueueNs,
		RecvsBlockedWall:  k.RecvsBlocked,
		BarrierWaitWallNs: k.BarrierWaitNs,
		BarrierSyncs:      k.BarrierSyncs,
	}
}

// add accumulates o into w field-wise.
func (w *WaitTotals) add(o WaitTotals) {
	w.RecvBlockedWallNs += o.RecvBlockedWallNs
	w.RecvQueueWallNs += o.RecvQueueWallNs
	w.RecvsBlockedWall += o.RecvsBlockedWall
	w.BarrierWaitWallNs += o.BarrierWaitWallNs
	w.BarrierSyncs += o.BarrierSyncs
}

// RankWaitStates is one rank's wait-state totals and per-kind split.
// The per-kind buckets satisfy the same conservation invariant as the
// traffic counters: summing ByKind over kinds reproduces the embedded
// totals field-for-field.
type RankWaitStates struct {
	Rank int `json:"rank"`
	WaitTotals
	ByKind map[string]WaitTotals `json:"by_kind,omitempty"`
}

// WaitStatesReport is the run-level wait-state table: per-rank wait
// totals with per-kind splits, plus the run wall the waits are measured
// against.
type WaitStatesReport struct {
	// RunWallNs is the journal-measured run wall (max span end over all
	// ranks); 0 when the run did not journal.
	RunWallNs int64 `json:"run_wall_ns"`
	// Totals sums the per-rank wait states.
	Totals WaitTotals `json:"totals"`
	// Ranks is indexed by rank.
	Ranks []RankWaitStates `json:"ranks"`
}

// runWall returns the journal-measured run wall: the max event end over
// all ranks; 0 without a journal.
func runWall(j *Journal) time.Duration {
	var max time.Duration
	for r := 0; r < j.NumRanks(); r++ {
		for _, ev := range j.Rank(r).Events() {
			if ev.End > max {
				max = ev.End
			}
		}
	}
	return max
}

// BuildWaitStates assembles the wait-state table from each rank's final
// cumulative Stats. j may be nil (RunWallNs stays 0). Returns nil when
// stats is empty.
func BuildWaitStates(stats []mpi.Stats, j *Journal) *WaitStatesReport {
	if len(stats) == 0 {
		return nil
	}
	w := &WaitStatesReport{
		RunWallNs: runWall(j).Nanoseconds(),
		Ranks:     make([]RankWaitStates, len(stats)),
	}
	for r, s := range stats {
		rw := RankWaitStates{Rank: r, WaitTotals: waitFromStats(s)}
		for k := 0; k < mpi.NumKinds; k++ {
			kw := waitFromKind(s.ByKind[k])
			if kw == (WaitTotals{}) {
				continue
			}
			if rw.ByKind == nil {
				rw.ByKind = make(map[string]WaitTotals)
			}
			rw.ByKind[mpi.Kind(k).String()] = kw
		}
		w.Totals.add(rw.WaitTotals)
		w.Ranks[r] = rw
	}
	return w
}

// RankLostTime is the lost-time attribution for one rank. LateSender
// and BarrierSkew are time this rank itself sat blocked; LateReceiver
// is its peers' messages aging in this rank's inbox; Imbalance is the
// journal-derived work deficit explaining why this rank reached
// synchronization points early.
type RankLostTime struct {
	Rank               int   `json:"rank"`
	LateSenderWallNs   int64 `json:"late_sender_wall_ns"`
	LateReceiverWallNs int64 `json:"late_receiver_wall_ns"`
	BarrierSkewWallNs  int64 `json:"barrier_skew_wall_ns"`
	ImbalanceWallNs    int64 `json:"imbalance_wall_ns"`
	// ByPhaseWallNs is the rank's blocked time (late sender + barrier
	// skew) per journal phase, from the span wait counters.
	ByPhaseWallNs map[string]int64 `json:"by_phase_wall_ns,omitempty"`
	// ByKindWallNs is the rank's blocked time per message kind.
	ByKindWallNs map[string]int64 `json:"by_kind_wall_ns,omitempty"`
}

// LostTimeReport is the run-level lost-time attribution table.
type LostTimeReport struct {
	Ranks []RankLostTime `json:"ranks"`
	// TotalLostWallNs sums the blocked time (late sender + barrier skew)
	// over ranks. Late-receiver and imbalance are excluded: the former
	// double-counts the peers' blocked time from the other side, the
	// latter is the explanation of the skew, not additional loss.
	TotalLostWallNs int64 `json:"total_lost_wall_ns"`
	// LostFractionWall is TotalLostWallNs over the total rank-time
	// p * RunWallNs; 0 when the run did not journal.
	LostFractionWall float64 `json:"lost_fraction_wall"`
}

// BuildLostTime assembles the lost-time table. j may be nil (phase and
// imbalance attribution need the journal and stay empty without it).
func BuildLostTime(stats []mpi.Stats, j *Journal) *LostTimeReport {
	if len(stats) == 0 {
		return nil
	}
	lt := &LostTimeReport{Ranks: make([]RankLostTime, len(stats))}

	// Per-phase wall per rank, and the per-phase max over ranks, for the
	// imbalance column. The outer-iteration marker is a zero-duration
	// boundary, not work; skip it.
	phaseWall := make([]map[string]time.Duration, len(stats))
	phaseMax := make(map[string]time.Duration)
	for r := range stats {
		if j == nil {
			break
		}
		pw := j.PhaseWall(r)
		delete(pw, PhaseOuterIter.Name())
		phaseWall[r] = pw
		for ph, d := range pw {
			if d > phaseMax[ph] {
				phaseMax[ph] = d
			}
		}
	}

	for r, s := range stats {
		rl := RankLostTime{
			Rank:               r,
			LateSenderWallNs:   s.RecvBlockedNs,
			LateReceiverWallNs: s.RecvQueueNs,
			BarrierSkewWallNs:  s.BarrierWaitNs,
		}
		for k := 0; k < mpi.NumKinds; k++ {
			if blocked := s.ByKind[k].RecvBlockedNs + s.ByKind[k].BarrierWaitNs; blocked != 0 {
				if rl.ByKindWallNs == nil {
					rl.ByKindWallNs = make(map[string]int64)
				}
				rl.ByKindWallNs[mpi.Kind(k).String()] = blocked
			}
		}
		if j != nil {
			for _, ev := range j.Rank(r).Events() {
				if ev.WaitNs == 0 || ev.Phase == PhaseOuterIter {
					continue
				}
				if rl.ByPhaseWallNs == nil {
					rl.ByPhaseWallNs = make(map[string]int64)
				}
				rl.ByPhaseWallNs[ev.Phase.Name()] += ev.WaitNs
			}
			for ph, max := range phaseMax {
				rl.ImbalanceWallNs += (max - phaseWall[r][ph]).Nanoseconds()
			}
		}
		lt.TotalLostWallNs += rl.LateSenderWallNs + rl.BarrierSkewWallNs
		lt.Ranks[r] = rl
	}
	if wall := runWall(j).Nanoseconds(); wall > 0 {
		lt.LostFractionWall = float64(lt.TotalLostWallNs) / (float64(len(stats)) * float64(wall))
	}
	return lt
}

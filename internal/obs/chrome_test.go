package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dinfomap/internal/mpi"
)

// decodeTrace parses WriteChromeTraceWith output back into its event
// list for structural assertions.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []chromeEvent {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return tr.TraceEvents
}

// TestChromeTraceWaitOverlays checks the recorder-fed additions: one
// flow start/finish pair per matched p2p event (bound by a shared id,
// sender row to receiver row) and a "blocked ranks" counter track that
// steps through the barrier windows and never goes negative.
func TestChromeTraceWaitOverlays(t *testing.T) {
	j := NewJournal(2)
	rec := mpi.NewRecorder(2, j.Epoch())
	j.Rank(0).Emit(Event{Phase: PhaseOther, Start: 0, End: 400})
	j.Rank(1).Emit(Event{Phase: PhaseOther, Start: 0, End: 400})

	// Rank 1 receives a message rank 0 sent at t=50; the receive blocks
	// from 30 to 120 (late sender). Both ranks then sync: rank 1 waits
	// from 150, rank 0 arrives at 200, release at 210.
	rec.AddP2P(1, mpi.P2PEvent{
		Src: 0, Tag: 7, Kind: mpi.KindGhostUpdate, Bytes: 64,
		SentAt: 50, RecvStart: 30, RecvEnd: 120,
	})
	rec.AddBarrier(0, mpi.BarrierEvent{Arrive: 200, Release: 210})
	rec.AddBarrier(1, mpi.BarrierEvent{Arrive: 150, Release: 210})

	var buf bytes.Buffer
	if err := WriteChromeTraceWith(&buf, j, rec); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, &buf)

	var starts, finishes []chromeEvent
	for _, e := range evs {
		switch e.Ph {
		case "s":
			starts = append(starts, e)
		case "f":
			finishes = append(finishes, e)
		}
	}
	if len(starts) != 1 || len(finishes) != 1 {
		t.Fatalf("flow events: %d starts, %d finishes, want 1 each", len(starts), len(finishes))
	}
	s, f := starts[0], finishes[0]
	if s.ID == "" || s.ID != f.ID {
		t.Errorf("flow ids not bound: start %q, finish %q", s.ID, f.ID)
	}
	if s.Tid != 0 || f.Tid != 1 {
		t.Errorf("flow rows: start tid %d (want sender 0), finish tid %d (want receiver 1)", s.Tid, f.Tid)
	}
	if s.Ts != usec(50) || f.Ts != usec(120) {
		t.Errorf("flow stamps: start %v finish %v, want send 0.05 / recv-end 0.12", s.Ts, f.Ts)
	}
	if f.BP != "e" {
		t.Errorf("flow finish binding point %q, want \"e\" (enclosing slice)", f.BP)
	}

	// Counter track: blocked recv [30,120) overlaps nothing, barrier
	// waits [150,210) and [200,210) overlap each other. The running
	// count must match at every change point and end at zero.
	type sample struct {
		ts      float64
		blocked int
	}
	var got []sample
	for _, e := range evs {
		if e.Ph != "C" {
			continue
		}
		if e.Name != "blocked ranks" {
			t.Fatalf("unexpected counter track %q", e.Name)
		}
		got = append(got, sample{e.Ts, int(e.Args["blocked"].(float64))})
	}
	want := []sample{
		{usec(30), 1}, {usec(120), 0}, {usec(150), 1},
		{usec(200), 2}, {usec(210), 1}, {usec(210), 0},
	}
	if len(got) != len(want) {
		t.Fatalf("counter samples = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counter sample %d = %+v, want %+v", i, got[i], want[i])
		}
		if got[i].blocked < 0 {
			t.Errorf("counter sample %d negative: %+v", i, got[i])
		}
	}
}

// TestChromeTraceNilRecorder: without a recorder the trace must carry
// no flow or counter events — the plain WriteChromeTrace shape.
func TestChromeTraceNilRecorder(t *testing.T) {
	j := NewJournal(1)
	j.Rank(0).Emit(Event{Phase: PhaseOther, Start: 0, End: time.Duration(100)})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, j); err != nil {
		t.Fatal(err)
	}
	for _, e := range decodeTrace(t, &buf) {
		if e.Ph == "s" || e.Ph == "f" || e.Ph == "C" {
			t.Errorf("unexpected overlay event without recorder: %+v", e)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"dinfomap/internal/mpi"
)

// ReportSchema identifies the run-report JSON schema. Bump the suffix
// when a field changes meaning or is removed; adding fields is
// backward-compatible and does not bump it.
const ReportSchema = "dinfomap-run-report/v1"

// PhaseCost is one rank's measured work and traffic for one phase.
type PhaseCost struct {
	Ops   int64 `json:"ops"`
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
}

// CommTotals mirrors mpi.Stats with stable JSON names. The wait-state
// fields (schema addition, v1-compatible) are measured host times whose
// JSON names carry "wall" so run-to-run diffs classify them ignored;
// omitempty keeps reports from runs without waits unchanged.
type CommTotals struct {
	BytesSent       int64 `json:"bytes_sent"`
	BytesRecv       int64 `json:"bytes_recv"`
	MsgsSent        int64 `json:"msgs_sent"`
	MsgsRecv        int64 `json:"msgs_recv"`
	Collectives     int64 `json:"collectives"`
	CollectiveBytes int64 `json:"collective_bytes"`
	CollectiveMsgs  int64 `json:"collective_msgs"`

	RecvBlockedWallNs int64 `json:"recv_blocked_wall_ns,omitempty"`
	RecvQueueWallNs   int64 `json:"recv_queue_wall_ns,omitempty"`
	RecvsBlockedWall  int64 `json:"recvs_blocked_wall,omitempty"`
	BarrierWaitWallNs int64 `json:"barrier_wait_wall_ns,omitempty"`
	BarrierSyncs      int64 `json:"barrier_syncs,omitempty"`
}

// CommFromStats converts an mpi.Stats snapshot to its report form.
func CommFromStats(s mpi.Stats) CommTotals {
	return CommTotals{
		BytesSent:       s.BytesSent,
		BytesRecv:       s.BytesRecv,
		MsgsSent:        s.MsgsSent,
		MsgsRecv:        s.MsgsRecv,
		Collectives:     s.Collectives,
		CollectiveBytes: s.CollectiveBytes,
		CollectiveMsgs:  s.CollectiveMsgs,

		RecvBlockedWallNs: s.RecvBlockedNs,
		RecvQueueWallNs:   s.RecvQueueNs,
		RecvsBlockedWall:  s.RecvsBlocked,
		BarrierWaitWallNs: s.BarrierWaitNs,
		BarrierSyncs:      s.BarrierSyncs,
	}
}

// commFromKind converts one kind bucket to report form.
func commFromKind(k mpi.KindStats) CommTotals {
	return CommTotals{
		BytesSent:       k.BytesSent,
		BytesRecv:       k.BytesRecv,
		MsgsSent:        k.MsgsSent,
		MsgsRecv:        k.MsgsRecv,
		Collectives:     k.Collectives,
		CollectiveBytes: k.CollectiveBytes,
		CollectiveMsgs:  k.CollectiveMsgs,

		RecvBlockedWallNs: k.RecvBlockedNs,
		RecvQueueWallNs:   k.RecvQueueNs,
		RecvsBlockedWall:  k.RecvsBlocked,
		BarrierWaitWallNs: k.BarrierWaitNs,
		BarrierSyncs:      k.BarrierSyncs,
	}
}

// Add accumulates o into c field-wise.
func (c *CommTotals) Add(o CommTotals) {
	c.BytesSent += o.BytesSent
	c.BytesRecv += o.BytesRecv
	c.MsgsSent += o.MsgsSent
	c.MsgsRecv += o.MsgsRecv
	c.Collectives += o.Collectives
	c.CollectiveBytes += o.CollectiveBytes
	c.CollectiveMsgs += o.CollectiveMsgs
	c.RecvBlockedWallNs += o.RecvBlockedWallNs
	c.RecvQueueWallNs += o.RecvQueueWallNs
	c.RecvsBlockedWall += o.RecvsBlockedWall
	c.BarrierWaitWallNs += o.BarrierWaitWallNs
	c.BarrierSyncs += o.BarrierSyncs
}

// ByKindFromStats converts the per-kind buckets of an mpi.Stats
// snapshot to report form, keyed by stable kind name. All-zero kinds
// are omitted, so reports stay compact and adding future kinds does not
// perturb existing output. encoding/json writes map keys sorted, so the
// field is deterministic.
func ByKindFromStats(s mpi.Stats) map[string]CommTotals {
	out := make(map[string]CommTotals)
	for k := 0; k < mpi.NumKinds; k++ {
		if s.ByKind[k] == (mpi.KindStats{}) {
			continue
		}
		out[mpi.Kind(k).String()] = commFromKind(s.ByKind[k])
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// IterationReport is one rank's cost/traffic slice for one outer
// iteration (stage 1 is outer 0; each merged level adds one). Comm
// fields are the iteration's delta of the cumulative counters
// (Stats.Sub of boundary snapshots), not running totals.
type IterationReport struct {
	Outer  int   `json:"outer"`
	Stage  int   `json:"stage"`  // 1 = delegate stage, 2 = merged levels
	Sweeps int   `json:"sweeps"` // synchronized sweeps in the iteration
	Ops    int64 `json:"ops"`    // counted work within the iteration
	WallNs int64 `json:"wall_ns"`
	// Comm is this iteration's traffic delta for the rank.
	Comm CommTotals `json:"comm"`
	// CommByKind splits Comm by message kind (absent when empty).
	CommByKind map[string]CommTotals `json:"comm_by_kind,omitempty"`
}

// CommsReport is the run-level communication rollup: totals and per-
// kind splits summed over ranks. Schema addition (v1-compatible).
type CommsReport struct {
	Totals CommTotals `json:"totals"`
	// ByKind is keyed by stable kind name; kinds with no traffic are
	// omitted.
	ByKind map[string]CommTotals `json:"by_kind,omitempty"`
}

// BuildComms sums per-rank cumulative stats into the run-level rollup.
func BuildComms(stats []mpi.Stats) *CommsReport {
	if len(stats) == 0 {
		return nil
	}
	c := &CommsReport{ByKind: make(map[string]CommTotals)}
	for _, s := range stats {
		t := c.Totals
		t.Add(CommFromStats(s))
		c.Totals = t
		for k := 0; k < mpi.NumKinds; k++ {
			if s.ByKind[k] == (mpi.KindStats{}) {
				continue
			}
			name := mpi.Kind(k).String()
			kt := c.ByKind[name]
			kt.Add(commFromKind(s.ByKind[k]))
			c.ByKind[name] = kt
		}
	}
	if len(c.ByKind) == 0 {
		c.ByKind = nil
	}
	return c
}

// RankReport is one rank's contribution to the run report.
type RankReport struct {
	Rank int `json:"rank"`
	// Phases holds the stage-1 per-phase measured cost, keyed by the
	// Figure-8 phase names plus the refresh-round1/refresh-round2
	// stage-internal spans.
	Phases map[string]PhaseCost `json:"phases"`
	// Stage2 is the rank's total stage-2 cost (all merged levels).
	Stage2 PhaseCost `json:"stage2"`
	// Stage2Phases breaks Stage2 into phases, including merge-shuffle.
	// Schema addition (v1-compatible): absent in reports written before
	// stage internals were first-class spans.
	Stage2Phases map[string]PhaseCost `json:"stage2_phases,omitempty"`
	// PhaseWallNs is the rank's measured journal wall time per span
	// name, both stages combined. Only present when the run journaled;
	// unlike the modeled times it includes host-side scheduling noise.
	PhaseWallNs map[string]int64 `json:"phase_wall_ns,omitempty"`
	Wall1Ns     int64            `json:"wall1_ns"`
	Wall2Ns     int64            `json:"wall2_ns"`
	DeltaEvals  int64            `json:"delta_evals"`
	Comm        CommTotals       `json:"comm"`
	// CommByKind splits Comm by message kind. Schema addition
	// (v1-compatible): absent in reports written before per-kind
	// accounting existed.
	CommByKind map[string]CommTotals `json:"comm_by_kind,omitempty"`
	// Iterations are the rank's per-outer-iteration cost/traffic slices
	// in outer order. Schema addition (v1-compatible).
	Iterations []IterationReport `json:"iterations,omitempty"`
	// Transport carries the rank's wire-level counters on multi-process
	// runs (frames/bytes per peer, connect retries, handshake latency,
	// poison events). Schema addition (v1-compatible); absent on
	// in-process runs, which have no wire.
	Transport *mpi.TransportStats `json:"transport,omitempty"`
	// GhostStaleness is the rank's asynchronous-sweep staleness
	// histogram: bucket s counts epochs swept against ghost module
	// statistics s epochs stale (s is bounded by the configured
	// staleness bound). Schema addition (v1-compatible); absent on
	// synchronous runs.
	GhostStaleness []int64 `json:"ghost_staleness,omitempty"`
}

// GraphInfo summarizes the input graph.
type GraphInfo struct {
	Vertices    int     `json:"vertices"`
	Edges       int     `json:"edges"`
	TotalWeight float64 `json:"total_weight"`
}

// ConfigInfo records the run parameters that shape the result.
type ConfigInfo struct {
	P     int     `json:"p"`
	DHigh int     `json:"dhigh"`
	Seed  uint64  `json:"seed"`
	Theta float64 `json:"theta"`
	// StalenessBound is the asynchronous-sweep staleness bound k.
	// Schema addition (v1-compatible); omitted on synchronous runs.
	StalenessBound int `json:"staleness_bound,omitempty"`
}

// QualityInfo records the partition quality outputs.
type QualityInfo struct {
	Codelength        float64 `json:"codelength"`
	InitialCodelength float64 `json:"initial_codelength"`
	NumModules        int     `json:"num_modules"`
}

// ConvergenceInfo carries the per-iteration traces (Figures 4-5).
type ConvergenceInfo struct {
	// MDLTrace[k] is the global codelength after outer iteration k.
	MDLTrace []float64 `json:"mdl_trace"`
	// MergeRate[k] is the fraction of original vertices merged away in
	// outer iteration k.
	MergeRate       []float64 `json:"merge_rate"`
	OuterIterations int       `json:"outer_iterations"`
	Stage1Sweeps    int       `json:"stage1_sweeps"`
	Stage2Sweeps    int       `json:"stage2_sweeps"`
}

// TimingInfo compares modeled (alpha-beta cost model) and host
// wall-clock times. Host walls measure all ranks interleaved on one
// machine, so only the modeled numbers speak to parallel scalability.
type TimingInfo struct {
	Stage1WallNs    int64            `json:"stage1_wall_ns"`
	Stage2WallNs    int64            `json:"stage2_wall_ns"`
	Stage1ModeledNs int64            `json:"stage1_modeled_ns"`
	Stage2ModeledNs int64            `json:"stage2_modeled_ns"`
	TotalModeledNs  int64            `json:"total_modeled_ns"`
	PhaseModeledNs  map[string]int64 `json:"phase_modeled_ns"`
	// PhaseWallNs is the measured journal wall time per span name,
	// max over ranks (the bulk-synchronous gate). Schema addition;
	// present only when the run journaled.
	PhaseWallNs map[string]int64 `json:"phase_wall_ns,omitempty"`
}

// PartitionInfo summarizes the delegate layout (Figures 6-7).
type PartitionInfo struct {
	NumHubs       int     `json:"num_hubs"`
	MinEdges      int     `json:"min_edges"`
	MaxEdges      int     `json:"max_edges"`
	MinGhosts     int     `json:"min_ghosts"`
	MaxGhosts     int     `json:"max_ghosts"`
	EdgeImbalance float64 `json:"edge_imbalance"`
}

// Report is the structured result of one distributed run: everything
// the text output of cmd/dinfomap prints, in machine-readable form,
// plus the full per-rank measurements.
type Report struct {
	Schema           string          `json:"schema"`
	Graph            GraphInfo       `json:"graph"`
	Config           ConfigInfo      `json:"config"`
	Quality          QualityInfo     `json:"quality"`
	Convergence      ConvergenceInfo `json:"convergence"`
	Timing           TimingInfo      `json:"timing"`
	Partition        PartitionInfo   `json:"partition"`
	MaxRankBytes     int64           `json:"max_rank_bytes"`
	DeltaEvaluations int64           `json:"delta_evaluations"`
	// Comms is the run-level communication rollup (totals and by-kind
	// splits summed over ranks). Schema addition (v1-compatible).
	Comms *CommsReport `json:"comms,omitempty"`
	// WaitStates, CriticalPath, and LostTime are the wait-state analysis
	// sections consumed by cmd/dinfomap-analyze. Schema additions
	// (v1-compatible); present when the run journaled. All their timing
	// fields are measured host wall clock (nondeterministic).
	WaitStates   *WaitStatesReport `json:"waitstates,omitempty"`
	CriticalPath []CritSegment     `json:"critical_path,omitempty"`
	LostTime     *LostTimeReport   `json:"lost_time,omitempty"`
	// Build records the binary's provenance. Schema addition
	// (v1-compatible).
	Build *BuildInfo `json:"build,omitempty"`
	// Clocks holds the per-rank clock-offset estimates of a
	// multi-process run — the corrections already applied to every
	// cross-process timestamp in this report. Schema addition
	// (v1-compatible); absent on in-process runs (one clock). All
	// measured ("wall") fields.
	Clocks []ClockEstimate `json:"clocks,omitempty"`
	Ranks  []RankReport    `json:"ranks"`
}

// WriteJSON writes r as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseReport decodes a report and checks its schema tag.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: bad run report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("obs: unknown report schema %q (want %q)", r.Schema, ReportSchema)
	}
	return &r, nil
}

package obs

// ScrubVolatile zeroes every nondeterministic field of a run report —
// measured host times, journal-only analysis sections, build
// provenance, clock estimates, transport wire counters — so two
// scrubbed reports of the same graph, config, and seed are
// byte-comparable regardless of transport or host. This is the single
// definition of "deterministic field" that dinfomap-diff -parity and
// the cross-transport parity tests share.
//
// Transport counters are dropped wholesale rather than selectively:
// frame counts are deterministic per transport but differ between
// transports (the goroutine backend has no frames at all), and parity
// compares across transports.
func ScrubVolatile(rep *Report) {
	rep.Timing.Stage1WallNs = 0
	rep.Timing.Stage2WallNs = 0
	rep.Timing.PhaseWallNs = nil
	rep.WaitStates = nil
	rep.CriticalPath = nil
	rep.LostTime = nil
	rep.Build = nil
	rep.Clocks = nil
	if rep.Comms != nil {
		scrubCommTotals(&rep.Comms.Totals)
		scrubCommTotalsMap(rep.Comms.ByKind)
	}
	for i := range rep.Ranks {
		r := &rep.Ranks[i]
		r.Wall1Ns = 0
		r.Wall2Ns = 0
		r.PhaseWallNs = nil
		r.Transport = nil
		scrubCommTotals(&r.Comm)
		scrubCommTotalsMap(r.CommByKind)
		for k := range r.Iterations {
			r.Iterations[k].WallNs = 0
			scrubCommTotals(&r.Iterations[k].Comm)
			scrubCommTotalsMap(r.Iterations[k].CommByKind)
		}
	}
}

// scrubCommTotals zeroes the wall-clock wait measurements of one comm
// record. The traffic counters and BarrierSyncs stay: they are
// deterministic and the parity check's point.
func scrubCommTotals(c *CommTotals) {
	c.RecvBlockedWallNs = 0
	c.RecvQueueWallNs = 0
	c.RecvsBlockedWall = 0
	c.BarrierWaitWallNs = 0
}

func scrubCommTotalsMap(m map[string]CommTotals) {
	for k, c := range m {
		scrubCommTotals(&c)
		m[k] = c
	}
}

// Clock alignment for multi-process runs: every rank process stamps
// its telemetry on its own monotonic clock (anchored to the shared
// launcher wall epoch, so offsets start small), and the launcher's
// ping/pong samples (mpi.ClockSample) measure each child's offset from
// the parent clock. EstimateClock condenses the samples into one
// per-rank estimate; MergeTelemetry (remote.go) subtracts the offsets
// to put every rank's events on the parent timeline.
package obs

import (
	"time"

	"dinfomap/internal/mpi"
)

// ClockEstimate is one rank's estimated clock offset from the parent
// launcher. All fields are measured ("wall" JSON names): they differ
// run to run and are scrubbed from parity comparisons.
type ClockEstimate struct {
	Rank int `json:"rank"`
	// OffsetNs is (child clock − parent clock) at the best sample's RTT
	// midpoint: subtract it from a child stamp to land on the parent
	// timeline.
	OffsetNs int64 `json:"offset_wall_ns"`
	// RTTNs is the best (smallest) sample's round-trip time — the
	// half-RTT bounds the estimate's intrinsic error.
	RTTNs int64 `json:"rtt_wall_ns"`
	// ResidualNs is the largest deviation of any credible sample's
	// offset from the chosen one: a drift/instability indicator. Above
	// a sanity threshold, cross-rank attributions (wait matching,
	// critical path) lose meaning; dinfomap-analyze flags it.
	ResidualNs int64 `json:"residual_wall_ns"`
	// Samples is how many ping/pong measurements informed the estimate.
	Samples int `json:"samples"`
}

// Offset returns the estimated offset as a duration.
func (c ClockEstimate) Offset() time.Duration { return time.Duration(c.OffsetNs) }

// EstimateClock condenses ping/pong samples into rank's clock
// estimate. The minimum-RTT sample wins (its midpoint interpolation
// has the least room to be wrong); the residual is the spread of
// offsets among credible samples — those with RTT within 2× of the
// best, so queueing outliers don't masquerade as clock drift.
func EstimateClock(rank int, samples []mpi.ClockSample) ClockEstimate {
	est := ClockEstimate{Rank: rank, Samples: len(samples)}
	if len(samples) == 0 {
		return est
	}
	best := samples[0]
	for _, s := range samples[1:] {
		if s.RTT < best.RTT {
			best = s
		}
	}
	est.OffsetNs = best.Offset.Nanoseconds()
	est.RTTNs = best.RTT.Nanoseconds()
	for _, s := range samples {
		if s.RTT > 2*best.RTT {
			continue
		}
		dev := s.Offset - best.Offset
		if dev < 0 {
			dev = -dev
		}
		if d := dev.Nanoseconds(); d > est.ResidualNs {
			est.ResidualNs = d
		}
	}
	return est
}

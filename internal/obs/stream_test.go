package obs

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func emitN(j *Journal, rank, n int) {
	rl := j.Rank(rank)
	for i := 0; i < n; i++ {
		rl.Emit(Event{
			Stage: 1, Iter: int32(i), Phase: PhaseFindBestModule,
			Start: time.Duration(i) * time.Millisecond,
			End:   time.Duration(i+1) * time.Millisecond,
			Ops:   int64(i),
		})
	}
}

func TestTapReceivesEventsInOrder(t *testing.T) {
	j := NewJournal(2)
	tap := j.Subscribe(64)
	emitN(j, 0, 5)
	emitN(j, 1, 3)
	j.Finish()

	var got []StreamEvent
	for ev := range tap.Events() {
		got = append(got, ev)
	}
	if len(got) != 8 {
		t.Fatalf("received %d events, want 8", len(got))
	}
	// Per-rank sequence numbers are contiguous from 1.
	next := map[int]int64{0: 1, 1: 1}
	for _, ev := range got {
		if ev.Seq != next[ev.Rank] {
			t.Fatalf("rank %d seq %d, want %d", ev.Rank, ev.Seq, next[ev.Rank])
		}
		next[ev.Rank]++
	}
	if d := tap.Drops(); d != 0 {
		t.Fatalf("drops = %d, want 0", d)
	}
}

// TestSlowConsumerDropsCountedNeverBlocks fills a tiny ring far past
// capacity without any consumer: every Emit must return immediately and
// the overflow must be counted, on the tap and on the journal.
func TestSlowConsumerDropsCountedNeverBlocks(t *testing.T) {
	j := NewJournal(1)
	tap := j.Subscribe(4)

	done := make(chan struct{})
	go func() {
		emitN(j, 0, 100) // nobody reading: must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a full tap ring")
	}

	if d := tap.Drops(); d != 96 {
		t.Fatalf("tap drops = %d, want 96", d)
	}
	if st := j.Status(); st.DroppedEvents != 96 {
		t.Fatalf("journal dropped_events = %d, want 96", st.DroppedEvents)
	}
	// The post-hoc journal still holds everything.
	if n := len(j.Rank(0).Events()); n != 100 {
		t.Fatalf("journal kept %d events, want 100", n)
	}
	// The ring still delivers the 4 events that fit.
	j.Finish()
	n := 0
	for range tap.Events() {
		n++
	}
	if n != 4 {
		t.Fatalf("drained %d buffered events, want 4", n)
	}
}

func TestUnsubscribeStopsDeliveryAndEmitStaysSafe(t *testing.T) {
	j := NewJournal(1)
	tap := j.Subscribe(8)
	emitN(j, 0, 2)
	j.Unsubscribe(tap)
	// Emit into an unsubscribed (closed) tap world: must not panic.
	emitN(j, 0, 3)
	n := 0
	for range tap.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("got %d events after unsubscribe, want the 2 pre-close ones", n)
	}
	// Unsubscribing twice is a no-op.
	j.Unsubscribe(tap)
}

func TestSubscribeAfterFinishIsClosed(t *testing.T) {
	j := NewJournal(1)
	emitN(j, 0, 2)
	j.Finish()
	tap := j.Subscribe(8)
	if _, open := <-tap.Events(); open {
		t.Fatal("tap subscribed after Finish delivered an event; want closed channel")
	}
	if !j.Finished() {
		t.Fatal("Finished() = false after Finish")
	}
	j.Finish() // idempotent
}

// TestConcurrentEmitSubscribeRace exercises Emit from a producer
// goroutine racing Subscribe/Unsubscribe/Status from observers; run
// under -race this is the regression test for the tap-list publication
// protocol.
func TestConcurrentEmitSubscribeRace(t *testing.T) {
	j := NewJournal(4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			emitN(j, rank, 500)
		}(r)
	}
	stop := make(chan struct{})
	var obs sync.WaitGroup
	for i := 0; i < 3; i++ {
		obs.Add(1)
		go func() {
			defer obs.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tap := j.Subscribe(16)
				for k := 0; k < 10; k++ {
					select {
					case <-tap.Events():
					default:
					}
				}
				_ = j.Status()
				j.Unsubscribe(tap)
			}
		}()
	}
	wg.Wait()
	close(stop)
	obs.Wait()
	j.Finish()
	if n := j.NumEvents(); n != 2000 {
		t.Fatalf("journal has %d events, want 2000", n)
	}
}

func TestStatusSnapshotMidRun(t *testing.T) {
	j := NewJournal(2)
	j.Rank(0).Emit(Event{Stage: 2, Outer: 3, Iter: 7, Phase: PhaseRefreshRound2, End: 5 * time.Millisecond})
	st := j.Status()
	if st.Schema != StatusSchema {
		t.Fatalf("schema = %q", st.Schema)
	}
	if st.Finished {
		t.Fatal("finished before Finish")
	}
	if st.Events != 1 || len(st.Ranks) != 2 {
		t.Fatalf("events = %d ranks = %d", st.Events, len(st.Ranks))
	}
	r0 := st.Ranks[0]
	if r0.Stage != 2 || r0.Outer != 3 || r0.Iter != 7 || r0.Phase != "refresh-round2" {
		t.Fatalf("rank 0 status = %+v", r0)
	}
	if r0.LastNs != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("rank 0 last_event_end_ns = %d", r0.LastNs)
	}
	// Rank 1 has emitted nothing: zero values, Iter -1 sentinel.
	if r1 := st.Ranks[1]; r1.Events != 0 || r1.Phase != "" || r1.Iter != -1 {
		t.Fatalf("rank 1 status = %+v", r1)
	}
}

// parseSSE splits an SSE body into (event, data) frames.
func parseSSE(t *testing.T, body string) [](struct{ event, data string }) {
	t.Helper()
	var frames [](struct{ event, data string })
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur struct{ event, data string }
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
				cur = struct{ event, data string }{}
			}
		}
	}
	return frames
}

func TestServeEventsStreamsAndEndsWithStatus(t *testing.T) {
	j := NewJournal(2)

	// Emit only after the handler has had time to subscribe — events
	// sent before Subscribe exist only in the post-hoc journal. The
	// handler returns when Finish closes its tap.
	go func() {
		time.Sleep(50 * time.Millisecond)
		emitN(j, 0, 3)
		emitN(j, 1, 2)
		j.Finish()
	}()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", EventsPath, nil)
	j.ServeEvents(rec, req)

	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	frames := parseSSE(t, rec.Body.String())
	if len(frames) < 3 {
		t.Fatalf("got %d SSE frames, want hello + spans + status", len(frames))
	}
	if frames[0].event != "hello" {
		t.Fatalf("first frame = %q, want hello", frames[0].event)
	}
	spans := 0
	byRank := map[int]bool{}
	for _, f := range frames[1 : len(frames)-1] {
		if f.event != "span" {
			t.Fatalf("middle frame event = %q, want span", f.event)
		}
		var ev streamEventJSON
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("span frame not JSON: %v", err)
		}
		if ev.Phase == "" || ev.EndNs < ev.StartNs {
			t.Fatalf("malformed span %+v", ev)
		}
		byRank[ev.Rank] = true
		spans++
	}
	if spans != 5 || !byRank[0] || !byRank[1] {
		t.Fatalf("streamed %d spans from ranks %v, want 5 from both ranks", spans, byRank)
	}
	last := frames[len(frames)-1]
	if last.event != "status" {
		t.Fatalf("final frame = %q, want status", last.event)
	}
	var st Status
	if err := json.Unmarshal([]byte(last.data), &st); err != nil {
		t.Fatalf("status frame not JSON: %v", err)
	}
	if !st.Finished || st.Events != 5 {
		t.Fatalf("final status = %+v", st)
	}
}

func TestServeEventsAfterFinishServesSnapshotOnly(t *testing.T) {
	j := NewJournal(1)
	emitN(j, 0, 4)
	j.Finish()
	rec := httptest.NewRecorder()
	j.ServeEvents(rec, httptest.NewRequest("GET", EventsPath, nil))
	frames := parseSSE(t, rec.Body.String())
	if len(frames) != 2 || frames[0].event != "hello" || frames[1].event != "status" {
		t.Fatalf("post-run stream frames = %+v, want hello + status", frames)
	}
}

func TestServeStatusJSON(t *testing.T) {
	j := NewJournal(3)
	emitN(j, 2, 6)
	rec := httptest.NewRecorder()
	j.ServeStatus(rec, httptest.NewRequest("GET", StatusPath, nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Schema != StatusSchema || st.Events != 6 || len(st.Ranks) != 3 {
		t.Fatalf("status = %+v", st)
	}
}

func TestNilJournalStreamSurface(t *testing.T) {
	var j *Journal
	tap := j.Subscribe(4)
	if _, open := <-tap.Events(); open {
		t.Fatal("nil journal tap delivered an event")
	}
	j.Unsubscribe(tap)
	j.Finish()
	if j.Finished() {
		t.Fatal("nil journal reports finished")
	}
	if st := j.Status(); st.Schema != StatusSchema || len(st.Ranks) != 0 {
		t.Fatalf("nil journal status = %+v", st)
	}
	rec := httptest.NewRecorder()
	j.ServeStatus(rec, httptest.NewRequest("GET", StatusPath, nil))
	if rec.Code != 404 {
		t.Fatalf("nil journal status code = %d, want 404", rec.Code)
	}
}

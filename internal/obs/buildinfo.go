package obs

import (
	"fmt"
	"runtime/debug"
)

// BuildInfo is the binary's provenance: module path/version and the VCS
// state stamped by the Go toolchain, read via runtime/debug. Run reports
// embed it so a result can always be traced back to the code that
// produced it; the metrics exposition mirrors it as a
// dinfomap_build_info gauge.
type BuildInfo struct {
	Module   string `json:"module,omitempty"`
	Version  string `json:"version,omitempty"`
	Go       string `json:"go,omitempty"`
	Revision string `json:"vcs_revision,omitempty"`
	VCSTime  string `json:"vcs_time,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
}

// ReadBuild reads the running binary's build info. Binaries built
// outside a module or without VCS stamping (e.g. `go test` binaries)
// yield partially-empty info, never an error.
func ReadBuild() BuildInfo {
	var b BuildInfo
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	b.Go = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// String renders the provenance as a one-line version string for
// -version flags: "dinfomap (devel) go1.22 rev 1a2b3c4d (modified)".
func (b BuildInfo) String() string {
	mod := b.Module
	if mod == "" {
		mod = "dinfomap"
	}
	ver := b.Version
	if ver == "" {
		ver = "(unknown)"
	}
	s := fmt.Sprintf("%s %s", mod, ver)
	if b.Go != "" {
		s += " " + b.Go
	}
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if b.Modified {
			s += " (modified)"
		}
	}
	return s
}

package obs

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dinfomap/internal/mpi"
)

// TestRegistryWriteTextGolden locks in the exposition format and its
// stable ordering: families sorted by name, series sorted by label
// values, histograms with cumulative buckets and +Inf, regardless of
// insertion order.
func TestRegistryWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	// Insert deliberately out of order.
	g := reg.Gauge("zz_gauge", "A gauge.", "state")
	g.With("up").Set(1)
	c := reg.Counter("aa_bytes_total", "Bytes.", "rank", "kind")
	c.With("1", "ghost_update").Add(7)
	c.With("0", "module_info").Add(5)
	c.With("0", "ghost_update").Add(3)
	h := reg.Histogram("mm_seconds", "Durations.", []float64{0.1, 1}, "phase")
	h.With("Other").Observe(0.05)
	h.With("Other").Observe(0.5)
	h.With("Other").Observe(5)

	const want = `# HELP aa_bytes_total Bytes.
# TYPE aa_bytes_total counter
aa_bytes_total{rank="0",kind="ghost_update"} 3
aa_bytes_total{rank="0",kind="module_info"} 5
aa_bytes_total{rank="1",kind="ghost_update"} 7
# HELP mm_seconds Durations.
# TYPE mm_seconds histogram
mm_seconds_bucket{phase="Other",le="0.1"} 1
mm_seconds_bucket{phase="Other",le="1"} 2
mm_seconds_bucket{phase="Other",le="+Inf"} 3
mm_seconds_sum{phase="Other"} 5.55
mm_seconds_count{phase="Other"} 3
# HELP zz_gauge A gauge.
# TYPE zz_gauge gauge
zz_gauge{state="up"} 1
`
	var b1, b2 strings.Builder
	if err := reg.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if b1.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b1.String(), want)
	}
	// Re-rendering identical state must be byte-identical.
	if err := reg.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("WriteText is not deterministic across calls")
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "X.", "l").With(`a"b\c` + "\nd").Add(1)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `x_total{l="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped series not found:\n%s", b.String())
	}
}

func TestPublishCommSnapshot(t *testing.T) {
	j := NewJournal(2)
	if _, ok := j.Rank(0).CommSnapshot(); ok {
		t.Fatal("snapshot reported before any publish")
	}
	var s mpi.Stats
	s.BytesSent, s.MsgsSent = 42, 2
	s.ByKind[mpi.KindGhostUpdate] = mpi.KindStats{BytesSent: 42, MsgsSent: 2}
	j.Rank(0).PublishComm(s)
	got, ok := j.Rank(0).CommSnapshot()
	if !ok || got != s {
		t.Fatalf("CommSnapshot = %+v, %v", got, ok)
	}
	// Nil-safety.
	var nilLog *RankLog
	nilLog.PublishComm(s)
	if _, ok := nilLog.CommSnapshot(); ok {
		t.Fatal("nil log reported a snapshot")
	}
}

// TestMetricsEndToEnd drives the full live path: journal events through
// the tap collector, comm snapshots at scrape time, HTTP exposition —
// and checks the acceptance invariant that per-kind sums equal the
// rank totals in the scraped text.
func TestMetricsEndToEnd(t *testing.T) {
	const p = 2
	j := NewJournal(p)
	mux := http.NewServeMux()
	m := RegisterDebugHandlers(mux, j)

	for r := 0; r < p; r++ {
		rl := j.Rank(r)
		rl.Emit(Event{Stage: 1, Iter: 0, Phase: PhaseFindBestModule,
			Start: 0, End: time.Millisecond, Moves: 3, Ops: 10, Msgs: 2, Bytes: 100})
		rl.Emit(Event{Stage: 1, Iter: 0, Phase: PhaseOuterIter,
			Start: time.Millisecond, End: time.Millisecond, Bytes: 100, Msgs: 2})
		var s mpi.Stats
		s.BytesSent, s.MsgsSent = int64(100*(r+1)), int64(2*(r+1))
		s.CollectiveBytes, s.Collectives, s.CollectiveMsgs = 64, 1, 1
		s.ByKind[mpi.KindModuleInfo] = mpi.KindStats{BytesSent: int64(60 * (r + 1)), MsgsSent: int64(r + 1)}
		s.ByKind[mpi.KindGhostUpdate] = mpi.KindStats{BytesSent: int64(40 * (r + 1)), MsgsSent: int64(r + 1)}
		s.ByKind[mpi.KindCollective] = mpi.KindStats{CollectiveBytes: 64, Collectives: 1, CollectiveMsgs: 1}
		if !s.Conserved() {
			t.Fatal("test fixture stats not conserved")
		}
		rl.PublishComm(s)
	}
	j.Finish()
	<-m.Done() // collector drained the tap

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", MetricsPath, nil)
	mux.ServeHTTP(rec, req)
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}

	for _, want := range []string{
		`dinfomap_span_events_total{rank="0",phase="FindBestModule"} 1`,
		`dinfomap_span_bytes_total{rank="1",phase="FindBestModule"} 100`,
		`dinfomap_outer_iterations_total{rank="0"} 1`,
		`dinfomap_comm_kind_bytes_total{rank="0",kind="module_info",direction="sent"} 60`,
		`dinfomap_comm_kind_bytes_total{rank="1",kind="ghost_update",direction="sent"} 80`,
		`dinfomap_comm_rank_bytes_total{rank="1",direction="sent"} 200`,
		`dinfomap_run_finished 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}

	// Conservation in the scraped text: per-kind sent bytes sum to the
	// rank total series.
	for r := 0; r < p; r++ {
		rank := strconv.Itoa(r)
		var kindSum, total float64
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, `dinfomap_comm_kind_bytes_total{rank="`+rank+`"`) &&
				strings.Contains(line, `direction="sent"`) {
				kindSum += parseSampleValue(t, line)
			}
			if strings.HasPrefix(line, `dinfomap_comm_rank_bytes_total{rank="`+rank+`",direction="sent"}`) {
				total = parseSampleValue(t, line)
			}
		}
		if kindSum != total || total == 0 {
			t.Errorf("rank %s: kind sent-bytes sum %v != rank total %v", rank, kindSum, total)
		}
	}
}

func parseSampleValue(t *testing.T, line string) float64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		t.Fatalf("malformed sample line %q", line)
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		t.Fatalf("malformed sample value in %q: %v", line, err)
	}
	return v
}

package obs

import (
	"testing"
	"time"

	"dinfomap/internal/mpi"
)

// craftedRun builds a 3-rank, 2-generation scenario with a known
// straggler chain:
//
//	gen 0: rank 1 arrives last (200ns)  -> gates everyone, release 205
//	gen 1: rank 0 arrives last (500ns)  -> gates everyone, release 505
//	run end: rank 2's final span ends at 600ns, the latest finish
//
// so the critical path must read rank 1 -> rank 0 -> rank 2.
func craftedRun() (*Journal, *mpi.Recorder) {
	j := NewJournal(3)
	rec := mpi.NewRecorder(3, j.Epoch())

	arrive0 := []time.Duration{100, 200, 150} // gen 0 arrivals per rank
	arrive1 := []time.Duration{500, 400, 300} // gen 1 arrivals per rank
	for r := 0; r < 3; r++ {
		rec.AddBarrier(r, mpi.BarrierEvent{Arrive: arrive0[r], Release: 205})
		rec.AddBarrier(r, mpi.BarrierEvent{Arrive: arrive1[r], Release: 505})
	}

	// Spans for phase attribution: rank 1 computes Other up to its gen-0
	// arrival; rank 0 computes FindBestModule between the barriers; rank
	// 2's final span defines the run end.
	j.Rank(1).Emit(Event{Phase: PhaseOther, Start: 0, End: 200})
	j.Rank(0).Emit(Event{Phase: PhaseFindBestModule, Start: 250, End: 450})
	j.Rank(2).Emit(Event{Phase: PhaseRefreshRound1, Start: 550, End: 600})
	return j, rec
}

func TestCriticalPathStragglerChain(t *testing.T) {
	j, rec := craftedRun()
	path := CriticalPath(j, rec)
	if len(path) != 3 {
		t.Fatalf("path has %d segments, want 3: %+v", len(path), path)
	}

	want := []struct {
		rank       int
		start, end int64
		barrier    int
	}{
		{1, 0, 200, 0},    // gated gen 0, from run start to its arrival
		{0, 205, 500, 1},  // gated gen 1, from gen-0 release to its arrival
		{2, 505, 600, -1}, // finished last, from gen-1 release to run end
	}
	for i, w := range want {
		seg := path[i]
		if seg.Rank != w.rank || seg.StartWallNs != w.start || seg.EndWallNs != w.end || seg.Barrier != w.barrier {
			t.Errorf("segment %d = %+v, want rank %d [%d, %d] barrier %d",
				i, seg, w.rank, w.start, w.end, w.barrier)
		}
	}

	// Segments are time-ordered and non-overlapping.
	for i := 1; i < len(path); i++ {
		if path[i].StartWallNs < path[i-1].EndWallNs {
			t.Errorf("segments %d and %d overlap: %+v %+v", i-1, i, path[i-1], path[i])
		}
	}

	// Phase attribution: overlap of each segment with its rank's spans.
	if got := path[0].ByPhaseWallNs[PhaseOther.Name()]; got != 200 {
		t.Errorf("segment 0 Other attribution = %d, want 200", got)
	}
	if got := path[1].ByPhaseWallNs[PhaseFindBestModule.Name()]; got != 200 {
		t.Errorf("segment 1 FindBestModule attribution = %d, want 200 (span clipped to segment)", got)
	}
	if got := path[2].ByPhaseWallNs[PhaseRefreshRound1.Name()]; got != 50 {
		t.Errorf("segment 2 RefreshRound1 attribution = %d, want 50", got)
	}
}

// TestCriticalPathCoalescesSameRank: when one rank gates consecutive
// generations, its hops merge into a single segment.
func TestCriticalPathCoalescesSameRank(t *testing.T) {
	j := NewJournal(2)
	rec := mpi.NewRecorder(2, j.Epoch())
	// Rank 1 arrives last at both generations and finishes last.
	rec.AddBarrier(0, mpi.BarrierEvent{Arrive: 50, Release: 105})
	rec.AddBarrier(1, mpi.BarrierEvent{Arrive: 100, Release: 105})
	rec.AddBarrier(0, mpi.BarrierEvent{Arrive: 150, Release: 305})
	rec.AddBarrier(1, mpi.BarrierEvent{Arrive: 300, Release: 305})
	j.Rank(1).Emit(Event{Phase: PhaseOther, Start: 305, End: 400})

	path := CriticalPath(j, rec)
	if len(path) != 1 {
		t.Fatalf("path has %d segments, want 1 (all on rank 1): %+v", len(path), path)
	}
	seg := path[0]
	if seg.Rank != 1 || seg.StartWallNs != 0 || seg.EndWallNs != 400 || seg.Barrier != -1 {
		t.Errorf("coalesced segment = %+v, want rank 1 [0, 400] barrier -1", seg)
	}
}

func TestCriticalPathNilInputs(t *testing.T) {
	j := NewJournal(2)
	rec := mpi.NewRecorder(2, j.Epoch())
	if got := CriticalPath(nil, rec); got != nil {
		t.Errorf("nil journal: %+v", got)
	}
	if got := CriticalPath(j, nil); got != nil {
		t.Errorf("nil recorder: %+v", got)
	}
	// A recorder with no synchronization events has no DAG to walk.
	if got := CriticalPath(j, rec); got != nil {
		t.Errorf("no barriers: %+v", got)
	}
}

// TestWaitStatesConservation: the per-kind wait splits in the report
// must sum to the rank totals, mirroring the mpi invariant.
func TestWaitStatesConservation(t *testing.T) {
	var s mpi.Stats
	s.RecvBlockedNs, s.RecvQueueNs, s.RecvsBlocked = 300, 120, 2
	s.BarrierWaitNs, s.BarrierSyncs = 900, 7
	s.ByKind[mpi.KindModuleInfo].RecvBlockedNs = 300
	s.ByKind[mpi.KindModuleInfo].RecvQueueNs = 120
	s.ByKind[mpi.KindModuleInfo].RecvsBlocked = 2
	s.ByKind[mpi.KindModuleInfo].BarrierWaitNs = 500
	s.ByKind[mpi.KindModuleInfo].BarrierSyncs = 4
	s.ByKind[mpi.KindCollective].BarrierWaitNs = 400
	s.ByKind[mpi.KindCollective].BarrierSyncs = 3

	ws := BuildWaitStates([]mpi.Stats{s}, nil)
	if ws == nil || len(ws.Ranks) != 1 {
		t.Fatalf("BuildWaitStates = %+v", ws)
	}
	var sum WaitTotals
	for _, kt := range ws.Ranks[0].ByKind {
		sum.add(kt)
	}
	if sum != ws.Ranks[0].WaitTotals {
		t.Errorf("kind sum %+v != rank totals %+v", sum, ws.Ranks[0].WaitTotals)
	}
	if ws.Totals != ws.Ranks[0].WaitTotals {
		t.Errorf("run totals %+v != single-rank totals %+v", ws.Totals, ws.Ranks[0].WaitTotals)
	}
}

// TestBuildLostTimeImbalance: the rank with less journal wall in a
// phase is charged the deficit against the busiest rank.
func TestBuildLostTimeImbalance(t *testing.T) {
	j := NewJournal(2)
	j.Rank(0).Emit(Event{Phase: PhaseFindBestModule, Start: 0, End: 1000, WaitNs: 40})
	j.Rank(1).Emit(Event{Phase: PhaseFindBestModule, Start: 0, End: 400})

	var s0, s1 mpi.Stats
	s0.BarrierWaitNs = 40
	s0.ByKind[mpi.KindCollective].BarrierWaitNs = 40
	s1.BarrierWaitNs = 640
	s1.ByKind[mpi.KindCollective].BarrierWaitNs = 640

	lt := BuildLostTime([]mpi.Stats{s0, s1}, j)
	if lt == nil || len(lt.Ranks) != 2 {
		t.Fatalf("BuildLostTime = %+v", lt)
	}
	if lt.Ranks[0].ImbalanceWallNs != 0 {
		t.Errorf("busiest rank imbalance = %d, want 0", lt.Ranks[0].ImbalanceWallNs)
	}
	if lt.Ranks[1].ImbalanceWallNs != 600 {
		t.Errorf("idle rank imbalance = %d, want 600", lt.Ranks[1].ImbalanceWallNs)
	}
	if lt.TotalLostWallNs != 40+640 {
		t.Errorf("TotalLostWallNs = %d, want %d", lt.TotalLostWallNs, 40+640)
	}
	if lt.Ranks[0].ByPhaseWallNs[PhaseFindBestModule.Name()] != 40 {
		t.Errorf("span wait attribution = %+v", lt.Ranks[0].ByPhaseWallNs)
	}
	// Lost fraction: 680ns over 2 ranks x 1000ns run wall.
	if want := 680.0 / 2000.0; lt.LostFractionWall != want { //dinfomap:float-ok exact division both sides
		t.Errorf("LostFractionWall = %v, want %v", lt.LostFractionWall, want)
	}
}

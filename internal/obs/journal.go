// Package obs is the run-telemetry layer behind the paper's evaluation
// figures: a per-rank event journal recording what every simulated rank
// did in every synchronized sweep, a Chrome trace-event exporter so a
// run opens directly in Perfetto / chrome://tracing, and a structured
// JSON run report with a stable schema.
//
// The journal is designed for the hot path: each rank appends fixed-size
// Event values to its own preallocated buffer — no locks, no interface
// boxing, no per-event allocation (amortized). A nil *Journal (and the
// nil *RankLog it hands out) is a valid no-op sink, so instrumented code
// needs no "is telemetry on" branches beyond the nil receiver check
// inside the methods.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"dinfomap/internal/mpi"
	"dinfomap/internal/trace"
)

// PhaseID identifies one instrumented phase compactly; the hot path
// records these instead of strings.
type PhaseID uint8

// The four Figure-8 phases of the synchronized clustering loop, plus
// the Algorithm 3 / Section 3.5 stage internals split out of Other
// (refresh rounds 1-2 and the merge shuffle).
const (
	PhaseFindBestModule PhaseID = iota
	PhaseBcastDelegates
	PhaseSwapBoundary
	PhaseOther
	PhaseRefreshRound1
	PhaseRefreshRound2
	PhaseMergeShuffle
	// PhaseOuterIter is an outer-iteration boundary marker: a
	// zero-duration event emitted when a rank finishes one outer
	// iteration, whose counters carry that iteration's traffic delta.
	PhaseOuterIter
	// PhaseAsyncDrain is the exchange span of one asynchronous epoch
	// (Config.StalenessBound > 0): the staleness gate, opportunistic
	// packet drain, complete-epoch rebuild, and eager partial send. Its
	// Stale field carries the staleness of the ghost statistics the
	// epoch's sweep ran against. Synchronous runs never emit it.
	PhaseAsyncDrain
	numPhases
)

// Name returns the phase name used by package trace and the exporters.
func (p PhaseID) Name() string {
	switch p {
	case PhaseFindBestModule:
		return trace.PhaseFindBestModule
	case PhaseBcastDelegates:
		return trace.PhaseBcastDelegates
	case PhaseSwapBoundary:
		return trace.PhaseSwapBoundary
	case PhaseOther:
		return trace.PhaseOther
	case PhaseRefreshRound1:
		return trace.PhaseRefreshRound1
	case PhaseRefreshRound2:
		return trace.PhaseRefreshRound2
	case PhaseMergeShuffle:
		return trace.PhaseMergeShuffle
	case PhaseOuterIter:
		return trace.PhaseOuterIter
	case PhaseAsyncDrain:
		return trace.PhaseAsyncDrain
	}
	return "Unknown"
}

// PhaseNames lists the journal phase names in PhaseID order.
func PhaseNames() []string {
	out := make([]string, numPhases)
	for p := PhaseID(0); p < numPhases; p++ {
		out[p] = p.Name()
	}
	return out
}

// Event is one journal record: a span of one phase inside one
// synchronized iteration, plus the counters measured within it. Events
// are plain values so a rank's log is a flat, cache-friendly slice.
type Event struct {
	Stage uint8  // clustering stage: 1 (with delegates) or 2 (merged)
	Outer uint16 // outer merge round; stage 1 is round 0
	Iter  int32  // synchronized sweep within the stage; -1 = setup refresh
	Phase PhaseID

	// Start and End are host wall-clock offsets from the journal epoch.
	Start, End time.Duration

	Moves    int32 // vertex moves applied in the span
	Deferred int32 // cross-boundary moves deferred by damping
	// Stale is the ghost-statistics staleness (in epochs) of an
	// asynchronous sweep's PhaseAsyncDrain span; 0 on all other events.
	Stale int32
	Ops   int64 // counted work (delta-L evals, candidates, ghosts, modules)
	Msgs  int64 // messages sent (p2p + modeled collective steps)
	Bytes int64 // bytes sent (p2p + modeled collective payloads)
	// WaitNs is the time this rank spent blocked on communication within
	// the span (late senders + barrier/collective skew; mpi.Stats
	// BlockedNs delta). Measured host time, nondeterministic run to run.
	WaitNs int64
}

// Dur returns the span length.
func (e Event) Dur() time.Duration { return e.End - e.Start }

// RankLog is one rank's append-only event buffer. Only that rank writes
// to it during a run; Events readers must wait until the run finishes.
// Live observers use the journal's Subscribe tap and Status snapshot
// instead, which read only the atomically-published fields.
type RankLog struct {
	rank   int
	epoch  time.Time
	events []Event

	// j points back at the owning journal so Emit can publish to live
	// subscribers; nil for standalone logs (exporter tests).
	j *Journal
	// emitted counts events atomically so Status can be read mid-run
	// (len(events) is owned by the rank goroutine alone).
	emitted atomic.Int64
	// last publishes a copy of the most recent event for Status.
	last atomic.Pointer[Event]
	// comm publishes the rank's latest cumulative mpi.Stats snapshot so
	// live observers (the metrics exposition) can read per-kind traffic
	// without touching the Comm from another goroutine mid-increment.
	comm atomic.Pointer[mpi.Stats]
}

// Now returns the current offset from the journal epoch; 0 on a nil log.
func (rl *RankLog) Now() time.Duration {
	if rl == nil {
		return 0
	}
	return time.Since(rl.epoch)
}

// Emit appends ev to the log; no-op on a nil log. When the owning
// journal has live subscribers the event is also offered to each tap,
// without ever blocking: a slow consumer's ring fills and further
// events are counted as dropped instead.
func (rl *RankLog) Emit(ev Event) {
	if rl == nil {
		return
	}
	rl.events = append(rl.events, ev)
	seq := rl.emitted.Add(1)
	evCopy := ev
	rl.last.Store(&evCopy)
	if rl.j != nil {
		rl.j.publish(StreamEvent{Rank: rl.rank, Seq: seq, Event: ev})
	}
}

// Rank returns the owning rank id.
func (rl *RankLog) Rank() int { return rl.rank }

// PublishComm publishes a cumulative mpi.Stats snapshot for live
// observers. The rank calls it at sweep and iteration boundaries; the
// store is one atomic pointer swap, so it never blocks the rank.
// No-op on a nil log.
func (rl *RankLog) PublishComm(s mpi.Stats) {
	if rl == nil {
		return
	}
	cp := s
	rl.comm.Store(&cp)
}

// CommSnapshot returns the most recently published cumulative comm
// stats and whether any snapshot has been published yet. Safe from any
// goroutine at any time.
func (rl *RankLog) CommSnapshot() (mpi.Stats, bool) {
	if rl == nil {
		return mpi.Stats{}, false
	}
	if p := rl.comm.Load(); p != nil {
		return *p, true
	}
	return mpi.Stats{}, false
}

// Events returns the recorded events in emission order.
func (rl *RankLog) Events() []Event {
	if rl == nil {
		return nil
	}
	return rl.events
}

// Journal collects the per-rank logs of one run. Ranks never share a
// buffer, so appends need no synchronization; the epoch is read-only
// after construction, and the live-streaming subscriber list (see
// stream.go) is touched on the hot path only as one atomic pointer
// load, nil when nobody is watching.
type Journal struct {
	epoch time.Time
	ranks []*RankLog

	// taps is the current subscriber list; Emit loads it once per event.
	// Subscribe/Unsubscribe swap in a fresh slice under tapMu.
	taps atomic.Pointer[[]*Tap]
	// tapMu serializes subscriber-list mutation and Finish.
	tapMu sync.Mutex
	// finished flips once when the run completes (Finish); taps close
	// and later subscribers observe an immediately-closed stream.
	finished atomic.Bool
	// dropped counts events lost to slow subscribers across all taps
	// over the journal's lifetime.
	dropped atomic.Int64
}

// initialEventCap preallocates each rank's buffer; a typical run emits
// 4 events per synchronized sweep across a few dozen sweeps.
const initialEventCap = 1024

// NewJournal returns a journal for p ranks with the epoch set to now.
func NewJournal(p int) *Journal {
	return NewJournalAt(p, time.Time{})
}

// NewJournalAt returns a journal for p ranks anchored to an explicit
// epoch (zero means now). A multi-process launcher passes its own epoch
// to every child so all journals stamp on one shared wall-clock zero
// point and cross-process spans are comparable.
func NewJournalAt(p int, epoch time.Time) *Journal {
	if epoch.IsZero() {
		epoch = time.Now()
	}
	j := &Journal{epoch: epoch, ranks: make([]*RankLog, p)}
	for r := range j.ranks {
		j.ranks[r] = &RankLog{rank: r, epoch: j.epoch, j: j, events: make([]Event, 0, initialEventCap)}
	}
	return j
}

// NewRankJournal returns a p-rank journal that allocates only rank r's
// log: the shape a child process of a multi-process run needs, where
// instrumented code indexes by global rank but only one rank lives in
// the process. The other slots stay nil, which every RankLog method
// treats as a valid no-op sink; Status reports them as empty.
func NewRankJournal(r, p int, epoch time.Time) *Journal {
	if epoch.IsZero() {
		epoch = time.Now()
	}
	j := &Journal{epoch: epoch, ranks: make([]*RankLog, p)}
	if r >= 0 && r < p {
		j.ranks[r] = &RankLog{rank: r, epoch: j.epoch, j: j, events: make([]Event, 0, initialEventCap)}
	}
	return j
}

// NumRanks returns the number of rank logs; 0 on a nil journal.
func (j *Journal) NumRanks() int {
	if j == nil {
		return 0
	}
	return len(j.ranks)
}

// Epoch returns the journal's zero point. Pass it to mpi.NewRecorder so
// recorded communication events and journal spans share one time base.
// Zero on a nil journal.
func (j *Journal) Epoch() time.Time {
	if j == nil {
		return time.Time{}
	}
	return j.epoch
}

// Subscribers returns the number of live taps currently attached.
func (j *Journal) Subscribers() int {
	if j == nil {
		return 0
	}
	if taps := j.taps.Load(); taps != nil {
		return len(*taps)
	}
	return 0
}

// Rank returns rank r's log. Nil-safe: a nil journal yields a nil log,
// which swallows emissions.
func (j *Journal) Rank(r int) *RankLog {
	if j == nil || r < 0 || r >= len(j.ranks) {
		return nil
	}
	return j.ranks[r]
}

// NumEvents returns the total event count across ranks.
func (j *Journal) NumEvents() int {
	n := 0
	for r := 0; r < j.NumRanks(); r++ {
		n += len(j.Rank(r).Events())
	}
	return n
}

// PhaseWall sums each phase's measured wall time on rank r.
func (j *Journal) PhaseWall(r int) map[string]time.Duration {
	out := make(map[string]time.Duration, numPhases)
	for _, ev := range j.Rank(r).Events() {
		out[ev.Phase.Name()] += ev.Dur()
	}
	return out
}

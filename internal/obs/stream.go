// Live run streaming: a subscription tap on the event journal plus the
// HTTP surface (/debug/dinfomap/events, /debug/dinfomap/status) that
// exposes it on a running process.
//
// The design constraint is the same as the journal's: ranks must never
// block on observers. A Tap is a bounded ring (a buffered channel) with
// a drop counter — Emit offers each event with a non-blocking send, so
// a slow or stalled consumer loses events (counted) instead of stalling
// the bulk-synchronous ranks. With no subscribers the hot path pays one
// atomic pointer load per event.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// StreamEvent is one journal event as seen by a live subscriber: the
// emitting rank, that rank's 1-based emission sequence number, and the
// event itself.
type StreamEvent struct {
	Rank int
	Seq  int64
	Event
}

// DefaultTapBuffer is the ring capacity ServeEvents subscribes with:
// large enough to absorb an SSE write stall of several sweeps at
// typical event rates (a few events per rank per sweep).
const DefaultTapBuffer = 4096

// Tap is one subscriber's bounded view of a journal's live event flow.
// Read events from Events; the channel closes when the run finishes
// (Journal.Finish) or the tap is unsubscribed.
type Tap struct {
	ch chan StreamEvent

	mu     sync.Mutex
	closed bool
	drops  int64
}

// Events returns the tap's event channel. Events arrive in per-rank
// order; cross-rank interleaving follows emission time.
func (t *Tap) Events() <-chan StreamEvent { return t.ch }

// Drops returns how many events were discarded because the ring was
// full when they arrived.
func (t *Tap) Drops() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// offer delivers ev without blocking; a full ring counts a drop.
// Reported is false when the event was dropped. Safe against a
// concurrent close: the closed flag and the channel share the mutex.
func (t *Tap) offer(ev StreamEvent) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return true // not a consumer-speed drop; the tap is gone
	}
	select {
	case t.ch <- ev:
		return true
	default:
		t.drops++
		return false
	}
}

// close idempotently closes the event channel.
func (t *Tap) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		close(t.ch)
	}
}

// Subscribe registers a live tap with a ring of the given capacity
// (min 1) and returns it. Ranks never block on the tap: when its ring
// is full, events are dropped and counted. On a journal whose run has
// already finished the returned tap is immediately closed, so readers
// fall through to the final Status. Subscribe is safe to call while
// the run is in flight; a nil journal returns a closed tap.
func (j *Journal) Subscribe(buf int) *Tap {
	if buf < 1 {
		buf = 1
	}
	t := &Tap{ch: make(chan StreamEvent, buf)}
	if j == nil {
		t.close()
		return t
	}
	j.tapMu.Lock()
	defer j.tapMu.Unlock()
	if j.finished.Load() {
		t.close()
		return t
	}
	old := j.taps.Load()
	var next []*Tap
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, t)
	j.taps.Store(&next)
	return t
}

// Unsubscribe removes t and closes its channel. Removing a tap that is
// not subscribed (already unsubscribed, or closed by Finish) is a no-op.
func (j *Journal) Unsubscribe(t *Tap) {
	if j == nil || t == nil {
		return
	}
	j.tapMu.Lock()
	old := j.taps.Load()
	if old != nil {
		next := make([]*Tap, 0, len(*old))
		for _, x := range *old {
			if x != t {
				next = append(next, x)
			}
		}
		if len(next) == 0 {
			j.taps.Store(nil)
		} else {
			j.taps.Store(&next)
		}
	}
	j.tapMu.Unlock()
	t.close()
}

// Finish marks the run complete and closes every live tap, ending each
// subscriber's stream after the events already in its ring. Emit after
// Finish is still safe (events only land in the post-hoc buffers).
// Call it once, after mpi.Run returns.
func (j *Journal) Finish() {
	if j == nil {
		return
	}
	j.tapMu.Lock()
	defer j.tapMu.Unlock()
	if j.finished.Swap(true) {
		return
	}
	if old := j.taps.Load(); old != nil {
		j.taps.Store(nil)
		for _, t := range *old {
			t.close()
		}
	}
}

// Finished reports whether Finish has been called.
func (j *Journal) Finished() bool { return j != nil && j.finished.Load() }

// publish offers ev to every live tap; drops accumulate on the journal
// as well as on the individual taps.
func (j *Journal) publish(ev StreamEvent) {
	taps := j.taps.Load()
	if taps == nil {
		return
	}
	for _, t := range *taps {
		if !t.offer(ev) {
			j.dropped.Add(1)
		}
	}
}

// StatusSchema identifies the live status snapshot JSON schema.
const StatusSchema = "dinfomap-status/v1"

// RankStatus is one rank's live progress: how many events it has
// emitted and where its most recent span sat in the run structure.
type RankStatus struct {
	Rank   int    `json:"rank"`
	Events int64  `json:"events"`
	Stage  int    `json:"stage"`
	Outer  int    `json:"outer"`
	Iter   int    `json:"iter"`
	Phase  string `json:"phase"`
	LastNs int64  `json:"last_event_end_ns"`
}

// Status is a point-in-time snapshot of a run, safe to take while
// ranks are still iterating (it reads only atomically-published
// counters, never the per-rank event buffers).
type Status struct {
	Schema string `json:"schema"`
	// UptimeNs is the time since the journal epoch.
	UptimeNs int64 `json:"uptime_ns"`
	// Finished is true once the run has completed (Journal.Finish).
	Finished bool `json:"finished"`
	// Events is the total event count across ranks.
	Events int64 `json:"events"`
	// DroppedEvents counts events lost to slow live subscribers over
	// the journal's lifetime (they remain in the post-hoc journal).
	DroppedEvents int64 `json:"dropped_events"`
	// Subscribers is the number of live taps currently attached.
	Subscribers int          `json:"subscribers"`
	Ranks       []RankStatus `json:"ranks"`
}

// Status snapshots the journal's live progress.
func (j *Journal) Status() Status {
	st := Status{Schema: StatusSchema}
	if j == nil {
		return st
	}
	st.UptimeNs = time.Since(j.epoch).Nanoseconds()
	st.Finished = j.finished.Load()
	st.DroppedEvents = j.dropped.Load()
	st.Subscribers = j.Subscribers()
	st.Ranks = make([]RankStatus, len(j.ranks))
	for r, rl := range j.ranks {
		rs := RankStatus{Rank: r, Iter: -1}
		if rl == nil {
			// Rank-scoped journals (child processes) leave foreign rows
			// nil; they appear here as ranks with no activity.
			st.Ranks[r] = rs
			continue
		}
		rs.Events = rl.emitted.Load()
		if last := rl.last.Load(); last != nil {
			rs.Stage = int(last.Stage)
			rs.Outer = int(last.Outer)
			rs.Iter = int(last.Iter)
			rs.Phase = last.Phase.Name()
			rs.LastNs = last.End.Nanoseconds()
		}
		st.Events += rs.Events
		st.Ranks[r] = rs
	}
	return st
}

// streamEventJSON is the wire form of one SSE span event.
type streamEventJSON struct {
	Rank     int    `json:"rank"`
	Seq      int64  `json:"seq"`
	Stage    int    `json:"stage"`
	Outer    int    `json:"outer"`
	Iter     int    `json:"iter"`
	Phase    string `json:"phase"`
	StartNs  int64  `json:"start_ns"`
	EndNs    int64  `json:"end_ns"`
	Moves    int32  `json:"moves"`
	Deferred int32  `json:"deferred"`
	Ops      int64  `json:"ops"`
	Msgs     int64  `json:"msgs"`
	Bytes    int64  `json:"bytes"`
	WaitNs   int64  `json:"wait_ns"`
}

func toWire(ev StreamEvent) streamEventJSON {
	return streamEventJSON{
		Rank:     ev.Rank,
		Seq:      ev.Seq,
		Stage:    int(ev.Stage),
		Outer:    int(ev.Outer),
		Iter:     int(ev.Iter),
		Phase:    ev.Phase.Name(),
		StartNs:  ev.Start.Nanoseconds(),
		EndNs:    ev.End.Nanoseconds(),
		Moves:    ev.Moves,
		Deferred: ev.Deferred,
		Ops:      ev.Ops,
		Msgs:     ev.Msgs,
		Bytes:    ev.Bytes,
		WaitNs:   ev.WaitNs,
	}
}

// ServeEvents streams the journal as Server-Sent Events: a `hello`
// event with the rank count, one `span` event per journal event as it
// is emitted, and a final `status` event (the Status snapshot) when the
// run finishes, after which the stream ends. Connecting after the run
// has finished yields hello + status immediately. The handler never
// back-pressures ranks: a slow client's ring overflows and the final
// status reports the drop count.
func (j *Journal) ServeEvents(w http.ResponseWriter, r *http.Request) {
	if j == nil {
		http.Error(w, "no run journal", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")

	tap := j.Subscribe(DefaultTapBuffer)
	defer j.Unsubscribe(tap)

	if err := writeSSE(w, "hello", map[string]any{
		"schema": StatusSchema, "ranks": j.NumRanks(),
	}); err != nil {
		return
	}
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case ev, open := <-tap.Events():
			if !open {
				// Run finished (or tap force-closed): final snapshot.
				_ = writeSSE(w, "status", j.Status())
				fl.Flush()
				return
			}
			if err := writeSSE(w, "span", toWire(ev)); err != nil {
				return
			}
			// Drain whatever else is already buffered before flushing,
			// so a fast producer does not force a flush per event.
		drain:
			for {
				select {
				case ev, open := <-tap.Events():
					if !open {
						_ = writeSSE(w, "status", j.Status())
						fl.Flush()
						return
					}
					if err := writeSSE(w, "span", toWire(ev)); err != nil {
						return
					}
				default:
					break drain
				}
			}
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// ServeStatus writes the live Status snapshot as JSON.
func (j *Journal) ServeStatus(w http.ResponseWriter, _ *http.Request) {
	if j == nil {
		http.Error(w, "no run journal", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(j.Status()); err != nil {
		// Headers are out; nothing to do but drop the connection.
		return
	}
}

// Debug endpoint paths registered by RegisterDebugHandlers.
const (
	EventsPath = "/debug/dinfomap/events"
	StatusPath = "/debug/dinfomap/status"
)

// RegisterDebugHandlers installs the live-run endpoints on mux
// (typically http.DefaultServeMux, next to net/http/pprof):
//
//	/debug/dinfomap/events   SSE event stream (hello, span*, status)
//	/debug/dinfomap/status   JSON progress snapshot
//	/debug/dinfomap/metrics  Prometheus text exposition
//
// Registering starts the metrics tap collector; it drains itself when
// the run finishes. The returned Metrics lets callers inspect or extend
// the registry and may be ignored.
func RegisterDebugHandlers(mux *http.ServeMux, j *Journal) *Metrics {
	mux.HandleFunc(EventsPath, j.ServeEvents)
	mux.HandleFunc(StatusPath, j.ServeStatus)
	m := RunMetrics(j)
	mux.Handle(MetricsPath, m)
	return m
}

// writeSSE writes one SSE frame with the given event name and a JSON
// payload.
func writeSSE(w io.Writer, event string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

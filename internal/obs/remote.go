// Remote telemetry: how a multi-process run's observability crosses
// process boundaries.
//
// Child side: a Relay subscribes a tap on the rank-scoped journal and
// forwards every event over the rank's mpi.Uplink (binary-encoded,
// non-blocking — drops are counted, never stalls), plus periodic JSON
// comm-stats/transport snapshots so the parent's Prometheus surface is
// live mid-run. After the run the child captures a lossless
// RankTelemetry section (all events, the wait recorder's raw p2p and
// barrier records, final transport counters) and sends it blocking —
// the live stream is best-effort, the section is the ground truth.
//
// Parent side: a Collector implements mpi.UplinkHandler. Live events
// feed a parent journal (which the SSE/status/metrics endpoints serve
// mesh-wide) with timestamps aligned by the current clock estimate;
// final sections accumulate until Merge rebuilds a complete journal +
// recorder on the parent timeline — the inputs the merged Chrome trace
// and the report's waitstates/critical-path sections need.
package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"dinfomap/internal/mpi"
)

// streamEventWire is the fixed binary size of one encoded StreamEvent:
// 15 little-endian 64-bit fields (rank, seq, and the 13 Event fields).
const streamEventWire = 15 * 8

// EncodeStreamEvent serializes ev in the codec's fixed-width
// little-endian format (the uplink's UplinkTagEvent payload).
func EncodeStreamEvent(ev StreamEvent) []byte {
	e := mpi.NewEncoder(streamEventWire)
	e.PutInt(ev.Rank)
	e.PutI64(ev.Seq)
	e.PutInt(int(ev.Stage))
	e.PutInt(int(ev.Outer))
	e.PutInt(int(ev.Iter))
	e.PutInt(int(ev.Phase))
	e.PutI64(int64(ev.Start))
	e.PutI64(int64(ev.End))
	e.PutInt(int(ev.Moves))
	e.PutInt(int(ev.Deferred))
	e.PutInt(int(ev.Stale))
	e.PutI64(ev.Ops)
	e.PutI64(ev.Msgs)
	e.PutI64(ev.WaitNs)
	e.PutI64(ev.Bytes)
	return e.Bytes()
}

// DecodeStreamEvent parses an EncodeStreamEvent payload.
func DecodeStreamEvent(b []byte) (StreamEvent, error) {
	if len(b) != streamEventWire {
		return StreamEvent{}, fmt.Errorf("obs: stream event payload is %d bytes, want %d", len(b), streamEventWire)
	}
	d := mpi.NewDecoder(b)
	var ev StreamEvent
	ev.Rank = d.Int()
	ev.Seq = d.I64()
	ev.Stage = uint8(d.Int())
	ev.Outer = uint16(d.Int())
	ev.Iter = int32(d.Int())
	ev.Phase = PhaseID(d.Int())
	ev.Start = time.Duration(d.I64())
	ev.End = time.Duration(d.I64())
	ev.Moves = int32(d.Int())
	ev.Deferred = int32(d.Int())
	ev.Stale = int32(d.Int())
	ev.Ops = d.I64()
	ev.Msgs = d.I64()
	ev.WaitNs = d.I64()
	ev.Bytes = d.I64()
	return ev, nil
}

// StatsUpdate is the periodic live snapshot a child sends under
// UplinkTagStats: the rank's cumulative comm stats plus its transport
// counters. JSON — it is low-rate (a few per second) and schema
// flexibility beats the few bytes binary would save.
type StatsUpdate struct {
	Stats     mpi.Stats           `json:"stats"`
	Transport *mpi.TransportStats `json:"transport,omitempty"`
}

// RankTelemetry is one rank's complete, lossless telemetry section,
// sent under UplinkTagSection after the rank's run (success or
// failure). Everything the parent needs to rebuild this rank's slice of
// the run: all journal events, final comm stats, the wait recorder's
// raw records, transport counters, and how lossy the live stream was.
type RankTelemetry struct {
	Rank      int                 `json:"rank"`
	Events    []Event             `json:"events"`
	Stats     mpi.Stats           `json:"stats"`
	P2P       []mpi.P2PEvent      `json:"p2p,omitempty"`
	Barriers  []mpi.BarrierEvent  `json:"barriers,omitempty"`
	Transport *mpi.TransportStats `json:"transport,omitempty"`
	// LiveDrops is how many live frames the uplink ring discarded; the
	// section itself is complete regardless.
	LiveDrops int64 `json:"live_drops"`
}

// CaptureTelemetry packages rank's section from its journal, recorder,
// and transport counters. Call only after the rank's run has returned
// (the journal buffers are single-writer until then). Nil journal,
// recorder, and transport are all fine — the section carries what
// exists.
func CaptureTelemetry(j *Journal, rank int, rec *mpi.Recorder, ts *mpi.TransportStats, liveDrops int64) *RankTelemetry {
	rt := &RankTelemetry{Rank: rank, Transport: ts, LiveDrops: liveDrops}
	rt.Events = j.Rank(rank).Events()
	if s, ok := j.Rank(rank).CommSnapshot(); ok {
		rt.Stats = s
	}
	if rec != nil && rank < rec.NumRanks() {
		rt.P2P = rec.P2P(rank)
		rt.Barriers = rec.Barriers(rank)
	}
	return rt
}

// SendTelemetry ships the final section over the uplink, blocking
// (Flush first so it orders after all live frames).
func SendTelemetry(up *mpi.Uplink, rt *RankTelemetry) error {
	data, err := json.Marshal(rt)
	if err != nil {
		return fmt.Errorf("obs: encoding rank %d telemetry: %w", rt.Rank, err)
	}
	up.Flush()
	return up.Send(mpi.UplinkTagSection, data)
}

// defaultStatsEvery is the Relay's periodic-snapshot cadence.
const defaultStatsEvery = 250 * time.Millisecond

// Relay forwards a child's live journal flow onto its uplink.
type Relay struct{ done chan struct{} }

// StartRelay subscribes a tap on j and forwards every event over up
// (binary, non-blocking), plus a comm-stats/transport snapshot every
// statsEvery (<= 0 means the default). transport may be nil; when set
// it is called per snapshot for current counters. The relay ends when
// the journal finishes (its tap closes), after a final snapshot; Wait
// blocks for that.
func StartRelay(j *Journal, rank int, up *mpi.Uplink, transport func() *mpi.TransportStats, statsEvery time.Duration) *Relay {
	if statsEvery <= 0 {
		statsEvery = defaultStatsEvery
	}
	rel := &Relay{done: make(chan struct{})}
	tap := j.Subscribe(DefaultTapBuffer)
	snapshot := func() {
		upd := StatsUpdate{}
		if s, ok := j.Rank(rank).CommSnapshot(); ok {
			upd.Stats = s
		}
		if transport != nil {
			upd.Transport = transport()
		}
		if data, err := json.Marshal(upd); err == nil {
			up.Offer(mpi.UplinkTagStats, data)
		}
	}
	go func() {
		defer close(rel.done)
		tick := time.NewTicker(statsEvery)
		defer tick.Stop()
		for {
			select {
			case ev, open := <-tap.Events():
				if !open {
					snapshot()
					return
				}
				up.Offer(mpi.UplinkTagEvent, EncodeStreamEvent(ev))
			case <-tick.C:
				snapshot()
			}
		}
	}()
	return rel
}

// Wait blocks until the relay has drained (journal finished).
func (r *Relay) Wait() { <-r.done }

// Collector is the parent-side sink for every rank's uplink: it feeds
// live events into a parent journal (aligned with the current clock
// estimate), mirrors snapshots into the live metrics, accumulates final
// sections, and owns the per-rank clock estimation.
//
// Concurrency: each rank's frames arrive from that rank's single
// UplinkPeer.Serve goroutine, and rank r's Serve goroutine is the only
// writer of journal rank-row r — the journal's single-writer-per-rank
// discipline holds. The estimate/section state is mutex-guarded.
type Collector struct {
	p int
	j *Journal // live parent journal (SSE/status/metrics); may be nil
	m *Metrics // live metrics; may be nil

	mu       sync.Mutex
	samples  [][]mpi.ClockSample
	clocks   []ClockEstimate
	sections []*RankTelemetry
}

// NewCollector returns a collector for a p-rank world. j (the parent's
// live journal) and m (its live metrics) may each be nil.
func NewCollector(p int, j *Journal, m *Metrics) *Collector {
	c := &Collector{
		p:        p,
		j:        j,
		m:        m,
		samples:  make([][]mpi.ClockSample, p),
		clocks:   make([]ClockEstimate, p),
		sections: make([]*RankTelemetry, p),
	}
	for r := range c.clocks {
		c.clocks[r] = ClockEstimate{Rank: r}
	}
	return c
}

// HandleSample records one ping/pong clock measurement and refreshes
// the rank's estimate.
func (c *Collector) HandleSample(rank int, s mpi.ClockSample) {
	if rank < 0 || rank >= c.p {
		return
	}
	c.mu.Lock()
	c.samples[rank] = append(c.samples[rank], s)
	c.clocks[rank] = EstimateClock(rank, c.samples[rank])
	c.mu.Unlock()
}

// offset returns rank's current estimated offset (child − parent).
func (c *Collector) offset(rank int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clocks[rank].Offset()
}

// HandleFrame ingests one data frame from rank's uplink.
func (c *Collector) HandleFrame(rank, tag int, _ time.Duration, payload []byte) {
	if rank < 0 || rank >= c.p {
		return
	}
	switch tag {
	case mpi.UplinkTagEvent:
		ev, err := DecodeStreamEvent(payload)
		if err != nil {
			return
		}
		// Align onto the parent timeline with the estimate as of now;
		// the final Merge realigns everything with the settled one.
		off := c.offset(rank)
		ev.Event.Start -= off
		ev.Event.End -= off
		c.j.Rank(rank).Emit(ev.Event)
	case mpi.UplinkTagStats:
		var upd StatsUpdate
		if err := json.Unmarshal(payload, &upd); err != nil {
			return
		}
		c.j.Rank(rank).PublishComm(upd.Stats)
		c.m.ObserveTransport(rank, upd.Transport)
	case mpi.UplinkTagSection:
		rt := &RankTelemetry{}
		if err := json.Unmarshal(payload, rt); err != nil {
			return
		}
		rt.Rank = rank // trust the handshake, not the payload
		c.mu.Lock()
		c.sections[rank] = rt
		c.mu.Unlock()
		c.j.Rank(rank).PublishComm(rt.Stats)
		c.m.ObserveTransport(rank, rt.Transport)
	}
}

// Clocks returns a copy of the current per-rank clock estimates.
func (c *Collector) Clocks() []ClockEstimate {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ClockEstimate, len(c.clocks))
	copy(out, c.clocks)
	return out
}

// Sections returns the final sections received so far, indexed by rank
// (nil where a rank's section never arrived).
func (c *Collector) Sections() []*RankTelemetry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*RankTelemetry, len(c.sections))
	copy(out, c.sections)
	return out
}

// Merge rebuilds the complete aligned journal and recorder from the
// final sections (see MergeTelemetry). epoch anchors the merged
// timeline — pass the launcher's run epoch.
func (c *Collector) Merge(epoch time.Time) (*Journal, *mpi.Recorder) {
	return MergeTelemetry(c.p, epoch, c.Sections(), c.Clocks())
}

// MergeTelemetry assembles per-rank telemetry sections into one
// journal + wait recorder on the parent timeline: every timestamp of
// rank r is shifted by −clocks[r].Offset(). Durations are preserved
// exactly (both endpoints shift together); cross-rank relations (flow
// arrows, wait matching, barrier skew) become meaningful to within the
// estimates' residuals. A p2p event's SentAt is corrected by the
// *sender's* offset — the stamp was taken on the sender's clock.
// Missing sections (nil entries — a rank that died before flushing)
// leave empty rows. The merged journal is finished: it is a post-hoc
// record, not a live stream.
func MergeTelemetry(p int, epoch time.Time, sections []*RankTelemetry, clocks []ClockEstimate) (*Journal, *mpi.Recorder) {
	off := make([]time.Duration, p)
	for _, c := range clocks {
		if c.Rank >= 0 && c.Rank < p {
			off[c.Rank] = c.Offset()
		}
	}
	j := NewJournalAt(p, epoch)
	rec := mpi.NewRecorder(p, epoch)
	for r := 0; r < p; r++ {
		var sec *RankTelemetry
		if r < len(sections) {
			sec = sections[r]
		}
		if sec == nil {
			continue
		}
		rl := j.Rank(r)
		for _, ev := range sec.Events {
			ev.Start -= off[r]
			ev.End -= off[r]
			rl.Emit(ev)
		}
		rl.PublishComm(sec.Stats)
		for _, pe := range sec.P2P {
			if pe.Src >= 0 && pe.Src < p {
				pe.SentAt -= off[pe.Src]
			}
			pe.RecvStart -= off[r]
			pe.RecvEnd -= off[r]
			rec.AddP2P(r, pe)
		}
		for _, be := range sec.Barriers {
			be.Arrive -= off[r]
			be.Release -= off[r]
			rec.AddBarrier(r, be)
		}
	}
	j.Finish()
	return j, rec
}

package gossip

import (
	"testing"

	"dinfomap/internal/gen"
)

func BenchmarkRun(b *testing.B) {
	g, _ := gen.PlantedPartition(3, gen.PlantedConfig{
		N: 3000, NumComms: 60, AvgDegree: 10, Mixing: 0.2,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, Config{P: 4, Seed: uint64(i)})
	}
}

package gossip

import (
	"math"
	"testing"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/infomap"
	"dinfomap/internal/metrics"
)

func TestEmptyAndEdgeless(t *testing.T) {
	if r := Run(graph.NewBuilder(0).Build(), Config{P: 2}); r.NumModules != 0 {
		t.Fatalf("empty: %+v", r)
	}
	if r := Run(graph.NewBuilder(5).Build(), Config{P: 2}); r.NumModules != 5 {
		t.Fatalf("edgeless: %+v", r)
	}
}

func TestFindsObviousCommunities(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	r := Run(g, Config{P: 2, Seed: 1})
	c := r.Communities
	if c[0] != c[1] || c[1] != c[2] {
		t.Errorf("first triangle split: %v", c)
	}
	if c[3] != c[4] || c[4] != c[5] {
		t.Errorf("second triangle split: %v", c)
	}
}

func TestReasonableQualityOnPlanted(t *testing.T) {
	g, truth := gen.PlantedPartition(3, gen.PlantedConfig{
		N: 800, NumComms: 16, AvgDegree: 10, Mixing: 0.15,
	})
	r := Run(g, Config{P: 4, Seed: 3})
	// Label propagation with local info only: decent but typically
	// below Infomap quality (the paper's point about such methods).
	if nmi := metrics.NMI(r.Communities, truth); nmi < 0.5 {
		t.Fatalf("NMI = %.3f, want >= 0.5 (modules=%d)", nmi, r.NumModules)
	}
}

func TestCodelengthWorseOrEqualToInfomap(t *testing.T) {
	g, _ := gen.PlantedPartition(7, gen.PlantedConfig{
		N: 600, NumComms: 12, AvgDegree: 8, Mixing: 0.2,
	})
	r := Run(g, Config{P: 4, Seed: 5})
	seq := infomap.Run(g, infomap.Config{Seed: 5})
	if r.Codelength < seq.Codelength-1e-9 {
		t.Fatalf("gossip L %.4f beats sequential Infomap %.4f — suspicious",
			r.Codelength, seq.Codelength)
	}
	// Reported codelength is the exact evaluation.
	l := infomap.CodelengthOf(g, r.Communities)
	if math.Abs(l-r.Codelength) > 1e-9 {
		t.Fatalf("reported %v, actual %v", r.Codelength, l)
	}
}

func TestModeledTimePopulated(t *testing.T) {
	g, _ := gen.PlantedPartition(11, gen.PlantedConfig{
		N: 400, NumComms: 8, AvgDegree: 8, Mixing: 0.2,
	})
	r := Run(g, Config{P: 4, Seed: 7})
	if r.Modeled <= 0 {
		t.Fatal("modeled time not populated")
	}
	if r.OuterIterations < 1 {
		t.Fatal("no outer iterations recorded")
	}
}

func TestDeterministic(t *testing.T) {
	g, _ := gen.PlantedPartition(13, gen.PlantedConfig{
		N: 300, NumComms: 6, AvgDegree: 8, Mixing: 0.2,
	})
	a := Run(g, Config{P: 3, Seed: 9})
	b := Run(g, Config{P: 3, Seed: 9})
	if a.Codelength != b.Codelength || a.NumModules != b.NumModules {
		t.Fatalf("nondeterministic: %v/%v", a.Codelength, b.Codelength)
	}
}

// Package gossip implements a GossipMap-style distributed community
// detection baseline (Bae & Howe 2015): flow-weighted label propagation
// over a plain 1D-partitioned graph, using only information local to
// each processor — the class of "relatively simple methods" Section 2.3
// of the paper contrasts with its fully synchronized algorithm.
//
// Two deliberate differences from internal/core reproduce the paper's
// comparison: (1) no delegate partitioning, so hubs concentrate load on
// their owner rank; (2) no module-statistics exchange, so moves are
// driven by local link weights rather than the exact map equation. The
// final codelength is evaluated exactly afterward for comparison, and
// the measured per-rank work and traffic feed the same cost model as
// the main algorithm, which is how the Table 3 speedups are produced.
package gossip

import (
	"time"

	"dinfomap/internal/graph"
	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/partition"
	"dinfomap/internal/trace"
)

// Config controls a gossip baseline run.
type Config struct {
	// P is the number of simulated ranks; < 1 means 1.
	P int
	// MaxOuterIterations bounds propagate+contract rounds; <= 0 means 25.
	MaxOuterIterations int
	// MaxSweeps bounds label-propagation supersteps per level;
	// <= 0 means 50.
	MaxSweeps int
	// Seed randomizes sweep order.
	Seed uint64
	// CostModel converts measured work into modeled time; zero value
	// means trace.DefaultCostModel().
	CostModel trace.CostModel
}

func (c Config) withDefaults() Config {
	if c.P < 1 {
		c.P = 1
	}
	if c.MaxOuterIterations <= 0 {
		c.MaxOuterIterations = 25
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 50
	}
	if c.CostModel == (trace.CostModel{}) {
		c.CostModel = trace.DefaultCostModel()
	}
	return c
}

// Result reports a finished run.
type Result struct {
	// Communities assigns each original vertex its final community.
	Communities []int
	// NumModules is the number of final communities.
	NumModules int
	// Codelength is the exact two-level map equation of the final
	// partition (evaluated after the fact; the algorithm itself never
	// computes it).
	Codelength float64
	// Modeled is the alpha-beta modeled end-to-end time.
	Modeled time.Duration
	// OuterIterations counts propagate+contract rounds.
	OuterIterations int
}

// Run executes the baseline on g.
func Run(g *graph.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	n0 := g.NumVertices()
	res := &Result{Communities: make([]int, n0)}
	for u := range res.Communities {
		res.Communities[u] = u
	}
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if n0 == 0 || g.TotalWeight() == 0 {
		res.NumModules = n0
		return res
	}
	level := g
	// Aggressive label adoption can over-merge; like GossipMap, the
	// outer loop is guarded by the map equation: keep the best
	// assignment seen, stop as soon as a contraction round makes the
	// codelength worse.
	orig2level := make([]int, n0) // original vertex -> level vertex
	for u := range orig2level {
		orig2level[u] = u
	}
	bestComm := append([]int(nil), res.Communities...)
	bestL := exactL(g, bestComm)
	for outer := 0; outer < cfg.MaxOuterIterations; outer++ {
		comm, modeled := propagate(level, cfg, uint64(outer))
		res.Modeled += modeled
		res.OuterIterations++
		dense, k := graph.Renumber(comm)
		projected := make([]int, n0)
		for u := range projected {
			projected[u] = dense[orig2level[u]]
		}
		l := exactL(g, projected)
		if l >= bestL-1e-12 {
			break // no further compression: keep the best seen
		}
		bestL = l
		copy(bestComm, projected)
		if k == level.NumVertices() || k <= 1 {
			break
		}
		contracted, remap := graph.Contract(level, dense)
		for u := range orig2level {
			orig2level[u] = remap[projected[u]]
		}
		level = contracted
	}
	dense, k := graph.Renumber(bestComm)
	res.Communities = dense
	res.NumModules = k
	res.Codelength = bestL
	return res
}

// propagate runs flow-weighted label propagation on one level over 1D-
// partitioned ranks and returns the converged assignment plus the
// modeled time of the level (max-rank compute + communication).
func propagate(g *graph.Graph, cfg Config, salt uint64) ([]int, time.Duration) {
	n := g.NumVertices()
	p := cfg.P
	layout := partition.OneD(g, p)
	final := make([]int, n)
	costs := make([]trace.RankCost, p)

	stats := mpi.Run(p, func(c *mpi.Comm) {
		rank := c.Rank()
		comm := make([]int, n)
		for v := range comm {
			comm[v] = v
		}
		// Local arcs grouped per owned vertex (1D: all arcs of owner).
		arcs := layout.RankArcs[rank]
		var ops int64

		// Subscribers for boundary sync (same registration as core).
		ghostSet := map[int]bool{}
		for _, a := range arcs {
			if layout.Owner[a.V] != rank {
				ghostSet[a.V] = true
			}
		}
		encs := make([]*mpi.Encoder, p)
		for v := range ghostSet {
			o := layout.Owner[v]
			if encs[o] == nil {
				encs[o] = mpi.NewEncoder(64)
			}
			encs[o].PutInt(v)
		}
		bufs := make([][]byte, p)
		for r, e := range encs {
			if e != nil {
				bufs[r] = e.Bytes()
			}
		}
		recv := c.Alltoallv(bufs)
		subscribers := map[int][]int{}
		for src, b := range recv {
			d := mpi.NewDecoder(b)
			for d.Remaining() > 0 {
				v := d.Int()
				subscribers[v] = append(subscribers[v], src)
			}
		}

		wTo := make(map[int]float64, 16)
		for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
			moves := 0
			// One pass over owned vertices in arc order: adopt the
			// neighbor label with maximum incident flow.
			i := 0
			for i < len(arcs) {
				u := arcs[i].U
				for k := range wTo {
					delete(wTo, k)
				}
				for i < len(arcs) && arcs[i].U == u {
					if arcs[i].V != u {
						wTo[comm[arcs[i].V]] += arcs[i].W
					}
					ops++
					i++
				}
				if len(wTo) == 0 {
					continue
				}
				bestC, bestW := comm[u], wTo[comm[u]]
				for cc, w := range wTo {
					//dinfomap:float-ok order-independent argmax: equal weights resolved by smallest community id
					if w > bestW || (w == bestW && cc < bestC) {
						bestC, bestW = cc, w
					}
				}
				if bestC != comm[u] {
					comm[u] = bestC
					moves++
				}
			}
			// Boundary sync.
			encs := make([]*mpi.Encoder, p)
			for v, subs := range subscribers {
				for _, dst := range subs {
					if encs[dst] == nil {
						encs[dst] = mpi.NewEncoder(128)
					}
					encs[dst].PutInt(v)
					encs[dst].PutInt(comm[v])
				}
			}
			bufs := make([][]byte, p)
			for r, e := range encs {
				if e != nil {
					bufs[r] = e.Bytes()
				}
			}
			for src, b := range c.Alltoallv(bufs) {
				_ = src
				d := mpi.NewDecoder(b)
				for d.Remaining() > 0 {
					v := d.Int()
					comm[v] = d.Int()
				}
			}
			if c.AllreduceI64(int64(moves), mpi.OpSum) == 0 {
				break
			}
		}
		// Final gather of owned assignments.
		e := mpi.NewEncoder(1024)
		for v := 0; v < n; v++ {
			if layout.Owner[v] == rank {
				e.PutInt(v)
				e.PutInt(comm[v])
			}
		}
		for _, b := range c.AllgatherBytes(e.Bytes()) {
			d := mpi.NewDecoder(b)
			for d.Remaining() > 0 {
				v := d.Int()
				comm[v] = d.Int()
			}
		}
		if rank == 0 {
			copy(final, comm)
		}
		costs[rank] = trace.RankCost{Ops: ops}
	})
	for r, s := range stats {
		costs[r].Msgs = s.MsgsSent + s.CollectiveMsgs
		costs[r].Bytes = s.BytesSent + s.CollectiveBytes
	}
	return final, cfg.CostModel.StepTime(costs)
}

// exactL evaluates the two-level map equation of comm on g.
func exactL(g *graph.Graph, comm []int) float64 {
	flow := mapeq.NewVertexFlow(g)
	dense, k := graph.Renumber(comm)
	mods := make([]mapeq.Module, k)
	inv2W := flow.Norm()
	for u := 0; u < g.NumVertices(); u++ {
		cc := dense[u]
		mods[cc].SumPr += flow.P[u]
		mods[cc].Members++
		g.Neighbors(u, func(v int, w float64) {
			if v != u && dense[v] != cc {
				mods[cc].ExitPr += w * inv2W
			}
		})
	}
	return mapeq.AggregateModules(mods, flow.SumPlogpP).L()
}

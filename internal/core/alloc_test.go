package core

// Allocation budgets for the hot paths the dense-index rewrite and the
// pooled message buffers pay for: a steady-state sweep pass and a
// Module_Info wire round must not allocate at all. These are the same
// paths cmd/dinfomap-bench gates on allocs/op; asserting zero here
// keeps the budget enforced by plain `go test` too, with no baseline
// file in the loop.

import (
	"testing"

	"dinfomap/internal/gen"
	"dinfomap/internal/mpi"
)

// TestSweepPassAllocFree converges a single-rank level, then asserts
// that further FindBestModule passes — full scans that evaluate every
// vertex's best target but apply no moves — run without allocating.
func TestSweepPassAllocFree(t *testing.T) {
	g, _ := gen.PlantedPartition(5, gen.PlantedConfig{
		N: 600, NumComms: 12, AvgDegree: 8, Mixing: 0.2,
	})
	h := NewBenchLevel(g, 7)
	for h.SweepPass() > 0 {
	}
	if avg := testing.AllocsPerRun(50, func() { h.SweepPass() }); avg != 0 {
		t.Fatalf("steady-state sweep pass: %v allocs/op, want 0", avg)
	}
}

// TestCodecRoundAllocFree asserts a full Module_Info encode/decode
// round (mixed long and short forms) through a warm encoder and a
// reused decoder allocates nothing.
func TestCodecRoundAllocFree(t *testing.T) {
	recs := make([]ModuleInfo, 512)
	for i := range recs {
		recs[i] = ModuleInfo{
			ModID:      i * 7,
			SumPr:      float64(i) * 1e-4,
			ExitPr:     float64(i) * 1e-5,
			NumMembers: i%97 + 1,
			IsSent:     i%3 == 0,
		}
	}
	e := mpi.NewEncoder(1 << 10)
	d := mpi.NewDecoder(nil)
	// One warm-up round grows the encoder to its steady capacity.
	if got := BenchCodecRound(e, d, recs); got != len(recs) {
		t.Fatalf("warm-up decoded %d records, want %d", got, len(recs))
	}
	avg := testing.AllocsPerRun(100, func() {
		if got := BenchCodecRound(e, d, recs); got != len(recs) {
			t.Errorf("decoded %d records, want %d", got, len(recs))
		}
	})
	if avg != 0 {
		t.Fatalf("Module_Info codec round: %v allocs/op, want 0", avg)
	}
}

package core

import (
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"dinfomap/internal/graph"
	"dinfomap/internal/mpi"
)

// runRanksOverProc runs the full algorithm over the proc backend, one
// RunRank per rank goroutine connected through real unix sockets, and
// assembles the result — the same path the multi-process driver takes,
// minus the OS process boundary. Artifacts are round-tripped through
// JSON to pin their serializability (the process boundary is a JSON
// file).
func runRanksOverProc(t *testing.T, g *graph.Graph, cfg Config) *Result {
	t.Helper()
	dir, err := os.MkdirTemp("", "mpi")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	listeners, addrs, err := mpi.ListenRanks("unix", cfg.P, dir)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Now()
	arts := make([]*RankArtifact, cfg.P)
	errs := make([]error, cfg.P)
	var wg sync.WaitGroup
	for r := 0; r < cfg.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpi.DialProc(mpi.ProcConfig{
				Rank: rank, Size: cfg.P,
				Listener: listeners[rank], Addrs: addrs, Network: "unix",
				Epoch: epoch,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			arts[rank], errs[rank] = RunRank(g, cfg, tr)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, a := range arts {
		b, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("rank %d artifact does not serialize: %v", r, err)
		}
		rt := &RankArtifact{}
		if err := json.Unmarshal(b, rt); err != nil {
			t.Fatalf("rank %d artifact does not round-trip: %v", r, err)
		}
		arts[r] = rt
	}
	res, err := Assemble(cfg, arts)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return res
}

// TestTransportParity is the cross-backend determinism contract: the
// same graph, config, and seed must produce bit-identical partitions,
// codelengths, and deterministic counters whether the ranks are
// goroutines sharing memory slots or peers exchanging frames over
// sockets. This is what lets CI diff a multi-process run report against
// the in-process golden.
func TestTransportParity(t *testing.T) {
	g, _ := planted(7, 600, 12, 0.2)
	cfg := Config{P: 4, Seed: 42}

	inproc := Run(g, cfg)
	multi := runRanksOverProc(t, g, cfg)

	if inproc.Codelength != multi.Codelength {
		t.Errorf("codelength differs: goroutine %v vs proc %v",
			inproc.Codelength, multi.Codelength)
	}
	if inproc.InitialCodelength != multi.InitialCodelength {
		t.Errorf("initial codelength differs: %v vs %v",
			inproc.InitialCodelength, multi.InitialCodelength)
	}
	if inproc.NumModules != multi.NumModules {
		t.Errorf("module count differs: %d vs %d", inproc.NumModules, multi.NumModules)
	}
	for u := range inproc.Communities {
		if inproc.Communities[u] != multi.Communities[u] {
			t.Fatalf("community of vertex %d differs: %d vs %d",
				u, inproc.Communities[u], multi.Communities[u])
		}
	}
	if len(inproc.MDLTrace) != len(multi.MDLTrace) {
		t.Fatalf("MDL trace length differs: %d vs %d",
			len(inproc.MDLTrace), len(multi.MDLTrace))
	}
	for k := range inproc.MDLTrace {
		if inproc.MDLTrace[k] != multi.MDLTrace[k] {
			t.Errorf("MDL trace[%d] differs: %v vs %v",
				k, inproc.MDLTrace[k], multi.MDLTrace[k])
		}
	}
	// Deterministic communication counters must agree rank for rank:
	// traffic is counted above the transport, and each collective is
	// billed as exactly two synchronization points on every backend.
	for r := range inproc.CommStats {
		a, b := inproc.CommStats[r], multi.CommStats[r]
		if a.BytesSent != b.BytesSent || a.MsgsSent != b.MsgsSent ||
			a.Collectives != b.Collectives || a.BarrierSyncs != b.BarrierSyncs {
			t.Errorf("rank %d deterministic comm counters differ:\n  goroutine: bytes=%d msgs=%d coll=%d syncs=%d\n  proc:      bytes=%d msgs=%d coll=%d syncs=%d",
				r, a.BytesSent, a.MsgsSent, a.Collectives, a.BarrierSyncs,
				b.BytesSent, b.MsgsSent, b.Collectives, b.BarrierSyncs)
		}
	}
}

package core

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"dinfomap/internal/graph"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
)

// runRanksOverProc runs the full algorithm over the proc backend, one
// RunRank per rank goroutine connected through real unix sockets, and
// assembles the result — the same path the multi-process driver takes,
// minus the OS process boundary. Artifacts are round-tripped through
// JSON to pin their serializability (the process boundary is a JSON
// file).
func runRanksOverProc(t *testing.T, g *graph.Graph, cfg Config) *Result {
	t.Helper()
	dir, err := os.MkdirTemp("", "mpi")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	listeners, addrs, err := mpi.ListenRanks("unix", cfg.P, dir)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Now()
	arts := make([]*RankArtifact, cfg.P)
	errs := make([]error, cfg.P)
	var wg sync.WaitGroup
	for r := 0; r < cfg.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpi.DialProc(mpi.ProcConfig{
				Rank: rank, Size: cfg.P,
				Listener: listeners[rank], Addrs: addrs, Network: "unix",
				Epoch: epoch,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			arts[rank], errs[rank] = RunRank(g, cfg, tr)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, a := range arts {
		b, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("rank %d artifact does not serialize: %v", r, err)
		}
		rt := &RankArtifact{}
		if err := json.Unmarshal(b, rt); err != nil {
			t.Fatalf("rank %d artifact does not round-trip: %v", r, err)
		}
		arts[r] = rt
	}
	res, err := Assemble(cfg, arts)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return res
}

// runJournaledProc mirrors the multi-process launcher's observability
// path in-process: each rank keeps a rank-scoped journal and recorder
// and streams telemetry to a parent collector over a real TCP uplink;
// the parent estimates clock offsets, merges the sections onto one
// timeline, and the merged journal/recorder/clocks feed report
// building exactly as cmd/dinfomap does for -transport=proc.
func runJournaledProc(t *testing.T, g *graph.Graph, cfg Config) (*Result, *obs.Journal, []obs.ClockEstimate) {
	t.Helper()
	dir, err := os.MkdirTemp("", "mpi")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	listeners, addrs, err := mpi.ListenRanks("unix", cfg.P, dir)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Now()

	upLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	parentJ := obs.NewJournalAt(cfg.P, epoch)
	coll := obs.NewCollector(cfg.P, parentJ, nil)
	var upWG sync.WaitGroup
	upWG.Add(1)
	go func() {
		defer upWG.Done()
		var conns sync.WaitGroup
		for {
			conn, err := upLn.Accept()
			if err != nil {
				conns.Wait()
				return
			}
			conns.Add(1)
			go func(conn net.Conn) {
				defer conns.Done()
				peer, err := mpi.AcceptUplink(conn, cfg.P, epoch, "", 5*time.Second)
				if err != nil {
					//dinfomap:close-ok test cleanup of a rejected handshake
					conn.Close()
					return
				}
				if err := peer.Serve(coll, 0); err != nil {
					t.Errorf("uplink serve: %v", err)
				}
				peer.Close()
			}(conn)
		}
	}()

	arts := make([]*RankArtifact, cfg.P)
	errs := make([]error, cfg.P)
	var wg sync.WaitGroup
	for r := 0; r < cfg.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpi.DialProc(mpi.ProcConfig{
				Rank: rank, Size: cfg.P,
				Listener: listeners[rank], Addrs: addrs, Network: "unix",
				Epoch: epoch,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			journal := obs.NewRankJournal(rank, cfg.P, epoch)
			rec := mpi.NewRecorder(cfg.P, epoch)
			up, err := mpi.DialUplink("tcp", upLn.Addr().String(), mpi.UplinkConfig{
				Rank: rank, Size: cfg.P, Epoch: epoch,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			relay := obs.StartRelay(journal, rank, up, tr.Telemetry, 0)
			rcfg := cfg
			rcfg.Journal = journal
			rcfg.Recorder = rec
			arts[rank], errs[rank] = RunRank(g, rcfg, tr)
			journal.Finish()
			relay.Wait()
			tel := obs.CaptureTelemetry(journal, rank, rec, tr.Telemetry(), up.Drops())
			if err := obs.SendTelemetry(up, tel); err != nil {
				t.Errorf("rank %d: send telemetry: %v", rank, err)
			}
			up.Close()
		}(r)
	}
	wg.Wait()
	//dinfomap:close-ok stops the accept loop once all ranks detached
	upLn.Close()
	upWG.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	res, err := Assemble(cfg, arts)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	merged, mrec := coll.Merge(epoch)
	res.WaitRecorder = mrec
	res.Clocks = coll.Clocks()
	return res, merged, res.Clocks
}

// TestProcReportParity is the observability half of the transport
// parity contract: a proc-backend run whose telemetry flowed through
// rank journals, the uplink, clock alignment, and the collector merge
// must produce a report that (a) carries the same analysis sections as
// an in-process journaled run — wait states and a critical path — and
// (b) is byte-identical on every deterministic field once volatile
// wall-clock data is scrubbed. This is the same comparison
// dinfomap-diff -parity performs in CI.
func TestProcReportParity(t *testing.T) {
	g, _ := planted(7, 600, 12, 0.2)
	cfg := Config{P: 4, Seed: 42}
	epoch := time.Now()

	inCfg := cfg
	inCfg.Journal = obs.NewJournalAt(cfg.P, epoch)
	inRes := Run(g, inCfg)
	inRep := BuildReport(g, inCfg, inRes)

	procRes, merged, clocks := runJournaledProc(t, g, cfg)
	procCfg := cfg
	procCfg.Journal = merged
	procRep := BuildReport(g, procCfg, procRes)

	// The proc report must carry the full analysis surface, not a
	// degraded subset: dinfomap-analyze consumes these unchanged.
	if procRep.WaitStates == nil {
		t.Fatal("proc report has no waitstates section")
	}
	if len(procRep.CriticalPath) == 0 {
		t.Fatal("proc report has no critical path")
	}
	if len(procRep.Clocks) != cfg.P {
		t.Fatalf("proc report carries %d clock estimates, want %d", len(procRep.Clocks), cfg.P)
	}
	for _, c := range clocks {
		if c.Samples == 0 {
			t.Errorf("rank %d clock estimate has no samples", c.Rank)
		}
	}
	for r, rr := range procRep.Ranks {
		if rr.Transport == nil {
			t.Errorf("proc report rank %d has no transport counters", r)
		}
	}

	obs.ScrubVolatile(inRep)
	obs.ScrubVolatile(procRep)
	a, err := json.MarshalIndent(inRep, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(procRep, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		// Find the first differing line for a readable failure.
		al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := 0; i < len(al) && i < len(bl); i++ {
			if !bytes.Equal(al[i], bl[i]) {
				t.Fatalf("scrubbed reports differ at line %d:\n  in-process: %s\n  proc:       %s", i+1, al[i], bl[i])
			}
		}
		t.Fatalf("scrubbed reports differ in length: %d vs %d lines", len(al), len(bl))
	}
}

// TestTransportParity is the cross-backend determinism contract: the
// same graph, config, and seed must produce bit-identical partitions,
// codelengths, and deterministic counters whether the ranks are
// goroutines sharing memory slots or peers exchanging frames over
// sockets. This is what lets CI diff a multi-process run report against
// the in-process golden.
func TestTransportParity(t *testing.T) {
	g, _ := planted(7, 600, 12, 0.2)
	cfg := Config{P: 4, Seed: 42}

	inproc := Run(g, cfg)
	multi := runRanksOverProc(t, g, cfg)

	if inproc.Codelength != multi.Codelength {
		t.Errorf("codelength differs: goroutine %v vs proc %v",
			inproc.Codelength, multi.Codelength)
	}
	if inproc.InitialCodelength != multi.InitialCodelength {
		t.Errorf("initial codelength differs: %v vs %v",
			inproc.InitialCodelength, multi.InitialCodelength)
	}
	if inproc.NumModules != multi.NumModules {
		t.Errorf("module count differs: %d vs %d", inproc.NumModules, multi.NumModules)
	}
	for u := range inproc.Communities {
		if inproc.Communities[u] != multi.Communities[u] {
			t.Fatalf("community of vertex %d differs: %d vs %d",
				u, inproc.Communities[u], multi.Communities[u])
		}
	}
	if len(inproc.MDLTrace) != len(multi.MDLTrace) {
		t.Fatalf("MDL trace length differs: %d vs %d",
			len(inproc.MDLTrace), len(multi.MDLTrace))
	}
	for k := range inproc.MDLTrace {
		if inproc.MDLTrace[k] != multi.MDLTrace[k] {
			t.Errorf("MDL trace[%d] differs: %v vs %v",
				k, inproc.MDLTrace[k], multi.MDLTrace[k])
		}
	}
	// Deterministic communication counters must agree rank for rank:
	// traffic is counted above the transport, and each collective is
	// billed as exactly two synchronization points on every backend.
	for r := range inproc.CommStats {
		a, b := inproc.CommStats[r], multi.CommStats[r]
		if a.BytesSent != b.BytesSent || a.MsgsSent != b.MsgsSent ||
			a.Collectives != b.Collectives || a.BarrierSyncs != b.BarrierSyncs {
			t.Errorf("rank %d deterministic comm counters differ:\n  goroutine: bytes=%d msgs=%d coll=%d syncs=%d\n  proc:      bytes=%d msgs=%d coll=%d syncs=%d",
				r, a.BytesSent, a.MsgsSent, a.Collectives, a.BarrierSyncs,
				b.BytesSent, b.MsgsSent, b.Collectives, b.BarrierSyncs)
		}
	}
}

package core

// White-box consistency tests: these drive the stage-1 machinery
// directly and assert the cross-rank invariants the algorithm's
// correctness argument rests on (Section 3.4 of the paper):
//
//  1. after SwapBoundaryInfo + refresh, every rank's view of every
//     visible vertex's community equals the owner's view;
//  2. the refreshed global aggregates equal a from-scratch evaluation
//     of the owner assignment on the whole graph;
//  3. module statistics delivered to subscribers equal the
//     authoritative totals.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/partition"
)

// runStage1WithChecks executes stage-1 clustering while verifying the
// invariants after every iteration.
func runStage1WithChecks(t *testing.T, g *graph.Graph, p int, cfg Config) {
	t.Helper()
	cfgv := (&cfg).withDefaults()
	cfgv.P = p
	layout := partition.Delegate(g, p, partition.DelegateOptions{DHigh: cfgv.DHigh})
	flow := mapeq.NewVertexFlow(g)
	n := g.NumVertices()

	snaps := make([][]int, p)
	visLists := make([][]int, p)
	modSnaps := make([]map[int]mapeq.Module, p)
	var mu sync.Mutex
	var violations []string

	mpi.Run(p, func(c *mpi.Comm) {
		defer func() {}()
		lv := newStage1Level(c, &cfgv, layout, flow.P, flow.Exit, flow.Norm(),
			flow.SumPlogpP, cfgv.Seed)
		mu.Lock()
		visLists[c.Rank()] = lv.visList
		mu.Unlock()
		costs := make(phaseCosts)
		lv.refresh(costs, -1)
		s := lv.newScratch()
		for iter := 0; iter < 12; iter++ {
			lv.dampP = dampProb(iter)
			moves, deferred, cands := lv.sweep(s, passBudget(iter))
			_ = deferred
			hubMoves := lv.broadcastDelegates(cands)
			lv.swapGhostComms()
			lv.refresh(costs, -1)
			total := c.AllreduceI64(int64(moves+hubMoves), mpi.OpSum)

			// Publish this rank's state and check on rank 0.
			snap := make([]int, n)
			copy(snap, lv.comm)
			mods := make(map[int]mapeq.Module, len(lv.modList))
			for _, m := range lv.modList {
				mods[m] = lv.mods[m]
			}
			mu.Lock()
			snaps[c.Rank()] = snap
			modSnaps[c.Rank()] = mods
			mu.Unlock()
			c.Barrier()
			if c.Rank() == 0 {
				violations = append(violations,
					checkInvariants(g, flow, iter, p, snaps, visLists, modSnaps, lv.agg)...)
			}
			c.Barrier()
			if total == 0 {
				break
			}
		}
	})
	for _, v := range violations {
		t.Error(v)
	}
	if len(violations) > 0 {
		t.FailNow()
	}
}

func checkInvariants(g *graph.Graph, flow *mapeq.VertexFlow,
	iter, p int,
	snaps, visLists [][]int, modSnaps []map[int]mapeq.Module, agg mapeq.Aggregates) (violations []string) {

	bad := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	// (1) Visible community views agree with the owner.
	ownerComm := make([]int, g.NumVertices())
	for v := range ownerComm {
		ownerComm[v] = snaps[v%p][v]
	}
	for r := 0; r < p; r++ {
		for _, v := range visLists[r] {
			if snaps[r][v] != ownerComm[v] {
				bad("iter %d: rank %d sees comm[%d]=%d, owner says %d",
					iter, r, v, snaps[r][v], ownerComm[v])
			}
		}
	}
	// (2) Aggregates match a from-scratch evaluation.
	dense, k := graph.Renumber(ownerComm)
	mods := make([]mapeq.Module, k)
	inv2W := flow.Norm()
	for u := 0; u < g.NumVertices(); u++ {
		c := dense[u]
		mods[c].SumPr += flow.P[u]
		mods[c].Members++
		g.Neighbors(u, func(v int, w float64) {
			if v != u && dense[v] != c {
				mods[c].ExitPr += w * inv2W
			}
		})
	}
	ref := mapeq.AggregateModules(mods, flow.SumPlogpP)
	if math.Abs(ref.L()-agg.L()) > 1e-9 {
		bad("iter %d: refreshed L %v != recomputed %v", iter, agg.L(), ref.L())
	}
	// (3) Module tables agree with from-scratch statistics.
	byID := make(map[int]mapeq.Module)
	seen := make(map[int]int)
	for u, c := range ownerComm {
		if _, ok := seen[c]; !ok {
			seen[c] = dense[u]
		}
	}
	for id, di := range seen {
		byID[id] = mods[di]
	}
	for r := 0; r < p; r++ {
		for m, got := range modSnaps[r] {
			_ = m
			want, ok := byID[m]
			if !ok {
				if got.Members != 0 {
					bad("iter %d: rank %d has stats for dead module %d: %+v", iter, r, m, got)
				}
				continue
			}
			if got.Members != want.Members ||
				math.Abs(got.SumPr-want.SumPr) > 1e-9 ||
				math.Abs(got.ExitPr-want.ExitPr) > 1e-9 {
				bad("iter %d: rank %d module %d stats %+v, want %+v",
					iter, r, m, got, want)
			}
		}
	}
	return violations
}

func TestStage1InvariantsPlanted(t *testing.T) {
	g, _ := gen.PlantedPartition(5, gen.PlantedConfig{
		N: 400, NumComms: 8, AvgDegree: 8, Mixing: 0.2,
	})
	runStage1WithChecks(t, g, 4, Config{Seed: 3})
}

func TestStage1InvariantsHubHeavy(t *testing.T) {
	g := gen.PowerLawGraph(9, 1000, 1.9, 2, 200)
	runStage1WithChecks(t, g, 6, Config{Seed: 7})
}

func TestStage1InvariantsNoMinLabel(t *testing.T) {
	g, _ := gen.PlantedPartition(13, gen.PlantedConfig{
		N: 300, NumComms: 6, AvgDegree: 8, Mixing: 0.25,
	})
	runStage1WithChecks(t, g, 5, Config{Seed: 11, NoMinLabel: true})
}

func TestStage1InvariantsNoDedup(t *testing.T) {
	g, _ := gen.PlantedPartition(17, gen.PlantedConfig{
		N: 300, NumComms: 6, AvgDegree: 8, Mixing: 0.2,
	})
	runStage1WithChecks(t, g, 3, Config{Seed: 13, NoDedup: true})
}

func TestStage1InvariantsManyRanks(t *testing.T) {
	g, _ := gen.PlantedPartition(19, gen.PlantedConfig{
		N: 200, NumComms: 5, AvgDegree: 6, Mixing: 0.2,
	})
	runStage1WithChecks(t, g, 16, Config{Seed: 17})
}

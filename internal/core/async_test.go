package core

import (
	"math"
	"testing"

	"dinfomap/internal/graph"
	"dinfomap/internal/infomap"
	"dinfomap/internal/metrics"
)

// TestAsyncZeroBoundIsSynchronous is the k=0 contract: a staleness
// bound of zero must reproduce the synchronized loop bit for bit, on
// both transports. (k=0 dispatches to the untouched cluster(); this
// test pins the dispatch so a future "async with k=0" shortcut cannot
// silently change default behavior.)
func TestAsyncZeroBoundIsSynchronous(t *testing.T) {
	g, _ := planted(7, 600, 12, 0.2)
	base := Run(g, Config{P: 4, Seed: 42})
	zero := Run(g, Config{P: 4, Seed: 42, StalenessBound: 0})
	if base.Codelength != zero.Codelength || base.NumModules != zero.NumModules {
		t.Fatalf("k=0 differs from default: L %v/%v, modules %d/%d",
			base.Codelength, zero.Codelength, base.NumModules, zero.NumModules)
	}
	for u := range base.Communities {
		if base.Communities[u] != zero.Communities[u] {
			t.Fatalf("k=0 assignment differs at vertex %d", u)
		}
	}
	if zero.PerRankStaleness != nil {
		t.Fatalf("synchronous run reports a staleness histogram: %v", zero.PerRankStaleness)
	}

	proc := runRanksOverProc(t, g, Config{P: 4, Seed: 42, StalenessBound: 0})
	if base.Codelength != proc.Codelength {
		t.Fatalf("k=0 proc codelength %v differs from goroutine %v",
			proc.Codelength, base.Codelength)
	}
	for u := range base.Communities {
		if base.Communities[u] != proc.Communities[u] {
			t.Fatalf("k=0 proc assignment differs at vertex %d", u)
		}
	}
}

// checkAsyncResult validates the invariants every bounded-staleness run
// must satisfy regardless of message timing: an exact reported
// codelength (the closing synchronous refresh restores exactness),
// quality close to the synchronized loop's, and a per-rank staleness
// histogram that respects the bound and accounts for every epoch.
func checkAsyncResult(t *testing.T, name string, g *graph.Graph, res, sync *Result, truth []int, k, p int) {
	t.Helper()
	l := infomap.CodelengthOf(g, res.Communities)
	if math.Abs(l-res.Codelength) > 1e-6 {
		t.Errorf("%s: reported L = %v but partition evaluates to %v", name, res.Codelength, l)
	}
	rel := (res.Codelength - sync.Codelength) / sync.Codelength
	if rel > 0.05 {
		t.Errorf("%s: async L %.4f is %.1f%% worse than sync %.4f",
			name, res.Codelength, 100*rel, sync.Codelength)
	}
	if truth != nil {
		if nmi := metrics.NMI(res.Communities, truth); nmi < 0.80 {
			t.Errorf("%s: NMI vs truth = %.3f, want >= 0.80 (modules=%d)",
				name, nmi, res.NumModules)
		}
	}
	if len(res.PerRankStaleness) != p {
		t.Fatalf("%s: %d staleness histograms, want %d", name, len(res.PerRankStaleness), p)
	}
	for r, hist := range res.PerRankStaleness {
		if len(hist) != k+1 {
			t.Fatalf("%s: rank %d histogram has %d buckets, want %d", name, r, len(hist), k+1)
		}
		var epochs int64
		for _, n := range hist {
			if n < 0 {
				t.Fatalf("%s: rank %d histogram has a negative bucket: %v", name, r, hist)
			}
			epochs += n
		}
		if epochs == 0 {
			t.Errorf("%s: rank %d histogram is empty: %v", name, r, hist)
		}
		// Ranks stop independently, so epoch counts differ per rank and
		// Stage1Iterations (rank 0's epochs plus the synchronized polish
		// rounds) only bounds them loosely.
		if epochs > 100 {
			t.Errorf("%s: rank %d swept %d epochs, over the sweep budget", name, r, epochs)
		}
	}
}

// TestAsyncBoundedStaleness runs the asynchronous mode at several
// bounds on the goroutine transport. Async results are timing-dependent
// (documented), so every assertion is an invariant or a threshold,
// never a golden value.
func TestAsyncBoundedStaleness(t *testing.T) {
	g, truth := planted(43, 1000, 20, 0.2)
	sync := Run(g, Config{P: 4, Seed: 5})
	for _, k := range []int{1, 2, 4} {
		res := Run(g, Config{P: 4, Seed: 5, StalenessBound: k})
		if res.Stage1Iterations >= 100 {
			t.Errorf("k=%d: stage 1 did not converge: %d epochs", k, res.Stage1Iterations)
		}
		checkAsyncResult(t, "goroutine", g, res, sync, truth, k, 4)
	}
}

// TestAsyncSingleRank pins the degenerate world: with no peers there is
// nothing to be stale against, so every epoch is swept at staleness 0
// and the run must still converge and report an exact codelength.
func TestAsyncSingleRank(t *testing.T) {
	g, _ := planted(53, 600, 12, 0.2)
	sync := Run(g, Config{P: 1, Seed: 11})
	res := Run(g, Config{P: 1, Seed: 11, StalenessBound: 2})
	checkAsyncResult(t, "p=1", g, res, sync, nil, 2, 1)
	if res.PerRankStaleness[0][1] != 0 || res.PerRankStaleness[0][2] != 0 {
		t.Errorf("single rank swept stale: %v", res.PerRankStaleness[0])
	}
}

// TestAsyncOverProcTransport exercises the bounded-staleness protocol —
// eager sends, TryRecv drains, the blocking staleness gate, the fin
// join — over real sockets, where message timing genuinely varies.
func TestAsyncOverProcTransport(t *testing.T) {
	g, truth := planted(43, 1000, 20, 0.2)
	sync := Run(g, Config{P: 4, Seed: 5})
	res := runRanksOverProc(t, g, Config{P: 4, Seed: 5, StalenessBound: 2})
	checkAsyncResult(t, "proc", g, res, sync, truth, 2, 4)
}

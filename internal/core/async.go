package core

import (
	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

// This file implements the asynchronous bounded-staleness sweep mode of
// stage 1 (Config.StalenessBound = k >= 1). The synchronized loop in
// cluster() barriers four times per sweep; clusterAsync removes every
// per-sweep collective and replaces the round structure with epochs:
//
//   - After each local sweep epoch, a rank broadcasts one packet to
//     every peer carrying (a) its per-module partial statistics — the
//     same records refresh round 1 ships to module homes, here sent to
//     everyone so each rank can rebuild global module statistics
//     without a second hop, (b) its local delegate-move candidates,
//     and (c) the current community of every owned boundary vertex it
//     has subscribers for. The packet's tag is its epoch number, so
//     per-source delivery order is the epoch order.
//   - Between local move passes the rank drains whatever peer packets
//     have already arrived (Comm.TryRecv — never blocking) and, when a
//     new epoch becomes complete (received from every peer), refreshes
//     its ghost communities and module statistics opportunistically,
//     mid-sweep.
//   - Epoch e may be swept against statistics from complete epoch g as
//     long as (e-1) - g <= k. Only when the bound would be exceeded
//     does the rank block, on the specific lagging peer's next packet.
//   - Termination needs no Allreduce: the per-epoch global move count
//     is a pure function of the epoch-stamped packet data, so every
//     rank evaluates the same convergence predicate on the same data
//     and stops independently. A stopped rank sends a "fin" packet and
//     counts as infinitely-complete for everyone else's gates, so no
//     gate can deadlock on it.
//
// Consequences, documented rather than hidden: with k >= 1 the final
// partition depends on message timing (which complete epoch a sweep
// happens to see), so async results are NOT bit-reproducible run to
// run — quality is enforced by threshold gates, not golden values.
// Delegate moves use the paper's literal approximate scheme (winner of
// the gathered local delta-Ls; exact two-round evaluation would need a
// synchronous allgather). k = 0 never enters this file: rankBody
// dispatches to the unchanged synchronous cluster(), which is what
// keeps the default bit-for-bit identical to pre-async builds.
//
// Exactness is restored at the end: after every rank has seen every
// peer's fin, all hub decisions and ghost updates of all epochs have
// been applied identically everywhere, one synchronous swapGhostComms
// delivers authoritative boundary communities, and one synchronous
// refresh with forceFullInfo set (async epochs bypass the version
// bookkeeping, so short-form deduplication cannot be trusted) rebuilds
// exact global statistics and the exact final codelength.

// asyncHeader leads every asynchronous sweep packet.
type asyncHeader struct {
	Fin   bool  // sender finished; this is its last packet
	Epoch int   // sender's epoch; equals the packet's sequence tag
	Moves int64 // sender's local+deferred move total for the epoch
}

func (h asyncHeader) encode(e *mpi.Encoder) {
	e.PutBool(h.Fin)
	e.PutInt(h.Epoch)
	e.PutI64(h.Moves)
}

func decodeAsyncHeader(d *mpi.Decoder) asyncHeader {
	return asyncHeader{Fin: d.Bool(), Epoch: d.Int(), Moves: d.I64()}
}

// Fixed wire sizes of the counted packet sections (see messages.go for
// the record encoders, which async packets reuse).
const (
	asyncPartialWire = 4 * 8 // modulePartial
	asyncCandWire    = 3 * 8 // hubCandidate
)

// asyncEntry is one banked peer packet: the decoded header plus the
// section byte ranges (aliasing the received payload, which the
// transport hands over caller-owned).
type asyncEntry struct {
	epoch    int
	moves    int64
	payload  []byte // retains the sections; nil once released
	partials []byte
	cands    []byte
	ghosts   []byte
}

// asyncState is one rank's bookkeeping for the asynchronous epochs of
// one level.
type asyncState struct {
	lv *level
	k  int // staleness bound (>= 1)

	seq int // epochs this rank has swept and sent

	// entries[src][epoch] banks peer packets, indexed directly by epoch
	// (bounded by MaxSweeps). Processed entries are released, except a
	// frozen peer's last one, whose partials stand in for all later
	// epochs.
	entries     [][]asyncEntry
	recvThrough []int // newest banked epoch per peer; -1 = none yet
	frozen      []bool
	frozenEpoch []int // the frozen peer's last epoch (its final state)

	// Own per-epoch contributions to the deterministic epoch data: the
	// move totals the packets carried, and a copy of the delegate
	// candidates (sweep scratch is reused, so they must be copied).
	selfMoves []int64
	selfCands [][]hubCandidate

	// lastProcessed is the newest epoch whose ghost updates and hub
	// decisions have been applied and whose statistics were accumulated;
	// the gate keeps (e-1) - lastProcessed <= k.
	lastProcessed int
	stopRequested bool
	bestL         float64
	stalled       int

	// Accumulation scratch, dense by module id and stamp-guarded like
	// refreshScratch; holds the newest complete epoch's global sums.
	round   int32
	stamp   []int32
	sumPr   []float64
	exit    []float64
	members []int32
	touched []int32
	agg     mapeq.Aggregates

	// Per-destination packet encoders. These are deliberately NOT the
	// level's pooled SendBuffers: those are bound to the Alltoallv
	// lifetime contract, while async packets ride plain Sends (which
	// copy), so dedicated encoders are reusable every epoch.
	enc  []*mpi.Encoder
	pEnc *mpi.Encoder // partial-section scratch, shared by all dsts
	pdec mpi.Decoder
	gdec mpi.Decoder

	hist []int64 // staleness histogram; hist[s] counts epochs swept s stale
}

func newAsyncState(lv *level) *asyncState {
	p := lv.p
	as := &asyncState{
		lv:            lv,
		k:             lv.cfg.StalenessBound,
		entries:       make([][]asyncEntry, p),
		recvThrough:   make([]int, p),
		frozen:        make([]bool, p),
		frozenEpoch:   make([]int, p),
		lastProcessed: -1,
		bestL:         lv.agg.L(),
		stamp:         make([]int32, lv.idSpace),
		sumPr:         make([]float64, lv.idSpace),
		exit:          make([]float64, lv.idSpace),
		members:       make([]int32, lv.idSpace),
		enc:           make([]*mpi.Encoder, p),
		pEnc:          mpi.NewEncoder(1024),
		hist:          make([]int64, lv.cfg.StalenessBound+1),
	}
	for r := range as.recvThrough {
		as.recvThrough[r] = -1
		as.frozenEpoch[r] = -1
		if r != lv.rank {
			as.enc[r] = mpi.NewEncoder(1024)
		}
	}
	return as
}

func asyncTag(epoch int) int { return mpi.TagFor(mpi.KindModuleInfo, epoch) }

// encodeLocalPartials writes this rank's current per-module partial
// statistics into e in ascending module-id order and returns the record
// count. It is refresh round 1's computation (membership counted by the
// owner, exit by the arc owner) against the rank's current community
// view, without the subscription-request records — async packets are
// broadcast, so there is nothing to request.
func (lv *level) encodeLocalPartials(e *mpi.Encoder) (n int64) {
	rs := lv.rsch
	rs.round++
	round := rs.round
	touch := func(m int) {
		if rs.pStamp[m] != round {
			rs.pStamp[m] = round
			rs.pSumPr[m] = 0
			rs.pExit[m] = 0
			rs.pMembers[m] = 0
		}
	}
	for _, u := range lv.ownedActive {
		m := lv.comm[u]
		touch(m)
		rs.pSumPr[m] += lv.visit[u]
		rs.pMembers[m]++
	}
	for i, u := range lv.evalVerts {
		m := lv.comm[u]
		var exit float64
		for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
			v := lv.adjV[j]
			if v != u && lv.comm[v] != m {
				exit += lv.adjW[j]
			}
		}
		//dinfomap:float-ok skip-empty guard: exit is a sum of strictly positive weights, exactly 0 iff none
		if exit != 0 {
			touch(m)
			rs.pExit[m] += exit * lv.inv2W
		}
	}
	for m := 0; m < lv.idSpace; m++ {
		if rs.pStamp[m] != round {
			continue
		}
		modulePartial{
			ModID:   m,
			SumPr:   rs.pSumPr[m],
			ExitPr:  rs.pExit[m],
			Members: int(rs.pMembers[m]),
		}.encode(e)
		n++
	}
	return n
}

// sendEpoch broadcasts this rank's epoch packet to every peer and banks
// the own-side epoch data (move total, candidate copy) for the
// deterministic convergence check. cands is the sweep's delegate
// proposal list for this epoch.
func (as *asyncState) sendEpoch(moves int64, cands []hubCandidate) {
	lv := as.lv
	epoch := as.seq
	as.pEnc.Reset()
	nPart := lv.encodeLocalPartials(as.pEnc)
	partialBytes := as.pEnc.Bytes()

	h := asyncHeader{Epoch: epoch, Moves: moves}
	for dst := 0; dst < lv.p; dst++ {
		if dst == lv.rank {
			continue
		}
		e := as.enc[dst]
		e.Reset()
		h.encode(e)
		e.PutInt(int(nPart))
		e.PutRaw(partialBytes)
		e.PutInt(len(cands))
		for _, hc := range cands {
			hc.encode(e)
		}
	}
	// Ghost sections differ per destination: one pass over the
	// subscription CSR appends each boundary vertex's current community
	// to exactly its subscribers' packets.
	for i, v := range lv.subVerts {
		gu := ghostUpdate{Vertex: v, Comm: lv.comm[v]}
		for _, dstRank := range lv.subRanks[lv.subOff[i]:lv.subOff[i+1]] {
			gu.encode(as.enc[dstRank])
		}
	}
	for dst := 0; dst < lv.p; dst++ {
		if dst == lv.rank {
			continue
		}
		lv.c.Send(dst, asyncTag(epoch), as.enc[dst].Bytes())
	}
	as.selfMoves = append(as.selfMoves, moves)
	as.selfCands = append(as.selfCands, append([]hubCandidate(nil), cands...))
	as.seq++
}

// bank parses and stores the next in-order packet from src. Returns
// true when the packet was src's fin.
func (as *asyncState) bank(src int, data []byte) bool {
	d := &as.pdec
	d.Reset(data)
	h := decodeAsyncHeader(d)
	want := as.recvThrough[src] + 1
	if h.Epoch != want {
		panicf("rank %d: async packet from %d out of order: epoch %d, want %d",
			as.lv.rank, src, h.Epoch, want)
	}
	if h.Fin {
		as.frozen[src] = true
		as.frozenEpoch[src] = as.recvThrough[src]
		return true
	}
	nPart := d.Int()
	off := len(data) - d.Remaining()
	pEnd := off + nPart*asyncPartialWire
	d.Reset(data[pEnd:])
	nCand := d.Int()
	cOff := pEnd + (len(data[pEnd:]) - d.Remaining())
	cEnd := cOff + nCand*asyncCandWire
	as.entries[src] = append(as.entries[src], asyncEntry{
		epoch:    h.Epoch,
		moves:    h.Moves,
		payload:  data,
		partials: data[off:pEnd],
		cands:    data[cOff:cEnd],
		ghosts:   data[cEnd:],
	})
	if len(as.entries[src]) != h.Epoch+1 {
		panicf("rank %d: async bank of %d/%d landed at index %d",
			as.lv.rank, src, h.Epoch, len(as.entries[src])-1)
	}
	as.recvThrough[src] = h.Epoch
	return false
}

// entryAt returns src's banked packet for exactly epoch g, or nil when
// src froze before g (its state no longer changes).
func (as *asyncState) entryAt(src, g int) *asyncEntry {
	if as.frozen[src] && g > as.frozenEpoch[src] {
		return nil
	}
	ent := &as.entries[src][g]
	if ent.payload == nil {
		panicf("rank %d: async entry %d/%d already released", as.lv.rank, src, g)
	}
	return ent
}

// release drops entries no longer reachable: everything before epoch g,
// except a frozen peer's final entry, which entryClamped keeps serving
// for all later epochs.
func (as *asyncState) release(src, g int) {
	for q := g - 1; q >= 0; q-- {
		ent := &as.entries[src][q]
		if ent.payload == nil {
			break
		}
		*ent = asyncEntry{epoch: ent.epoch}
	}
}

// drain consumes every already-arrived packet without blocking.
func (as *asyncState) drain() {
	lv := as.lv
	for src := 0; src < lv.p; src++ {
		if src == lv.rank || as.frozen[src] {
			continue
		}
		for {
			data, _, ok := lv.c.TryRecv(src, asyncTag(as.recvThrough[src]+1))
			if !ok {
				break
			}
			if as.bank(src, data) {
				break
			}
		}
	}
}

// await blocks until epoch e may be swept: some complete epoch g with
// (e-1) - g <= k must exist. It always blocks on a specific lagging
// peer's next in-order packet, never on AnySource.
func (as *asyncState) await(e int) {
	lv := as.lv
	need := e - 1 - as.k
	for as.completeEpoch() < need {
		src, low := -1, 0
		for r := 0; r < lv.p; r++ {
			if r == lv.rank || as.frozen[r] {
				continue
			}
			if src == -1 || as.recvThrough[r] < low {
				src, low = r, as.recvThrough[r]
			}
		}
		if src == -1 {
			return // every peer frozen: self-complete through e-1 >= need
		}
		data, _ := lv.c.Recv(src, asyncTag(as.recvThrough[src]+1))
		as.bank(src, data)
	}
}

// completeEpoch returns the newest epoch received from every live peer
// (frozen peers count as infinitely complete; this rank is complete
// through what it has sent).
func (as *asyncState) completeEpoch() int {
	g := as.seq - 1
	for src := range as.recvThrough {
		if src == as.lv.rank || as.frozen[src] {
			continue
		}
		if as.recvThrough[src] < g {
			g = as.recvThrough[src]
		}
	}
	return g
}

// processReady applies every newly complete epoch in ascending order —
// ghost communities, then the deterministic delegate decisions, then
// the global statistics accumulation feeding the convergence check —
// and materializes the newest one into the level's working tables.
// Returns the number of partial records summed (the span's op count).
func (as *asyncState) processReady() (ops int64) {
	upTo := as.completeEpoch()
	advanced := false
	for g := as.lastProcessed + 1; g <= upTo && !as.stopRequested; g++ {
		as.applyGhosts(g)
		hubMoves := as.applyHubMoves(g)
		n, totalMoves, numModules := as.accumulate(g)
		_ = numModules
		ops += n
		as.lastProcessed = g
		advanced = true
		as.checkStop(g, totalMoves+hubMoves)
	}
	if advanced && !as.stopRequested {
		as.materialize()
	}
	return ops
}

// applyGhosts installs every peer's epoch-g boundary communities. Ghost
// sections of different peers cover disjoint vertex sets (each peer
// reports only vertices it owns), so cross-peer order is irrelevant;
// per-peer ascending epoch order makes the newest value win.
func (as *asyncState) applyGhosts(g int) {
	lv := as.lv
	for src := 0; src < lv.p; src++ {
		if src == lv.rank {
			continue
		}
		ent := as.entryAt(src, g)
		if ent == nil {
			continue
		}
		d := &as.gdec
		d.Reset(ent.ghosts)
		for d.Remaining() > 0 {
			gu := decodeGhostUpdate(d)
			lv.comm[gu.Vertex] = gu.Comm
		}
	}
}

// applyHubMoves selects and applies epoch g's delegate moves. The
// selection rule is round A of broadcastDelegates (minimum local
// delta-L; ties to the lower target, then the lower proposing rank) on
// the gathered epoch-g candidates — data every rank eventually holds
// identically, so every rank applies the same moves. Returns the number
// applied, a deterministic part of epoch g's global move count.
func (as *asyncState) applyHubMoves(g int) (hubMoves int64) {
	lv := as.lv
	if lv.isHub == nil {
		return 0
	}
	ds := lv.dsch
	ds.round++
	nWin := 0
	consider := func(src int, hc hubCandidate) {
		pos := lv.hubIndex[hc.Hub]
		if ds.stamp[pos] != ds.round {
			ds.stamp[pos] = ds.round
			ds.cand[pos] = hc
			ds.proposer[pos] = int32(src)
			nWin++
			return
		}
		cur := ds.cand[pos]
		if hc.DeltaL < cur.DeltaL ||
			//dinfomap:float-ok deterministic tie-break on bit-identical decoded values
			(hc.DeltaL == cur.DeltaL && (hc.Target < cur.Target ||
				(hc.Target == cur.Target && src < int(ds.proposer[pos])))) {
			ds.cand[pos] = hc
			ds.proposer[pos] = int32(src)
		}
	}
	for src := 0; src < lv.p; src++ {
		if src == lv.rank {
			if g < len(as.selfCands) {
				for _, hc := range as.selfCands[g] {
					consider(src, hc)
				}
			}
			continue
		}
		ent := as.entryAt(src, g)
		if ent == nil {
			continue
		}
		d := &as.pdec
		d.Reset(ent.cands)
		for d.Remaining() > 0 {
			consider(src, decodeHubCandidate(d))
		}
	}
	if nWin == 0 {
		return 0
	}
	for pos := range lv.hubs {
		if ds.stamp[pos] != ds.round {
			continue
		}
		hc := ds.cand[pos]
		if hc.DeltaL < 0 && lv.comm[hc.Hub] != hc.Target {
			lv.comm[hc.Hub] = hc.Target
			hubMoves++
		}
	}
	return hubMoves
}

// accumulate sums epoch g's per-module partials from every rank into
// the dense scratch. Peers contribute their banked epoch-g records
// (a frozen peer its final ones); this rank contributes fresh records
// from its CURRENT communities, so its own vertices are never stale —
// the staleness bound applies to peers only. Also returns the epoch's
// global move total for the convergence check (own moves as sent, a
// frozen peer zero beyond its last epoch) and the live module count.
func (as *asyncState) accumulate(g int) (ops, totalMoves, numModules int64) {
	lv := as.lv
	as.round++
	as.touched = as.touched[:0]
	add := func(partials []byte) {
		d := &as.pdec
		d.Reset(partials)
		for d.Remaining() > 0 {
			mp := decodeModulePartial(d)
			m := mp.ModID
			if as.stamp[m] != as.round {
				as.stamp[m] = as.round
				as.sumPr[m] = 0
				as.exit[m] = 0
				as.members[m] = 0
				as.touched = append(as.touched, int32(m))
			}
			as.sumPr[m] += mp.SumPr
			as.exit[m] += mp.ExitPr
			as.members[m] += int32(mp.Members)
			ops++
		}
	}
	for src := 0; src < lv.p; src++ {
		if src == lv.rank {
			as.pEnc.Reset()
			lv.encodeLocalPartials(as.pEnc)
			add(as.pEnc.Bytes())
			totalMoves += as.selfMoves[g]
			continue
		}
		ent := as.entryClamped(src, g)
		add(ent.partials)
		if !as.frozen[src] || g <= as.frozenEpoch[src] {
			totalMoves += ent.moves
		}
		as.releaseEpoch(src, g)
	}
	var q, qlogq, qplogqp float64
	for _, m32 := range as.touched {
		m := int(m32)
		if as.members[m] == 0 {
			continue
		}
		numModules++
		q += as.exit[m]
		qlogq += mapeq.PlogP(as.exit[m])
		qplogqp += mapeq.PlogP(as.exit[m] + as.sumPr[m])
	}
	as.agg = mapeq.Aggregates{
		QTotal:     q,
		SumQLogQ:   qlogq,
		SumQPLogQP: qplogqp,
		SumPlogpP:  lv.vertexTerm,
	}
	return ops, totalMoves, numModules
}

// entryClamped is entryAt with frozen peers clamped to their final
// epoch: their last packet's statistics stand in for every later one.
func (as *asyncState) entryClamped(src, g int) *asyncEntry {
	if as.frozen[src] && g > as.frozenEpoch[src] {
		g = as.frozenEpoch[src]
	}
	ent := &as.entries[src][g]
	if ent.payload == nil {
		panicf("rank %d: async entry %d/%d already released", as.lv.rank, src, g)
	}
	return ent
}

// release semantics depend on freezing: a live peer's processed entries
// are dropped as accumulation passes them, a frozen peer keeps its
// final entry alive for clamped reads.
func (as *asyncState) releaseEpoch(src, g int) {
	if as.frozen[src] && g >= as.frozenEpoch[src] {
		g = as.frozenEpoch[src] // keep the final entry
	}
	as.release(src, g)
}

// materialize rebuilds the level's working module tables from the most
// recent accumulation: the module table and tracking list, the
// owner-side statistics (escape moves read them), and the global
// aggregates the sweep evaluates delta-L against. Version bookkeeping
// (modVersion/sentVersion/delivered) is deliberately untouched — the
// closing refresh runs with forceFullInfo for exactly that reason.
func (as *asyncState) materialize() {
	lv := as.lv
	for _, m := range lv.modList {
		lv.mods[m] = mapeq.Module{}
		lv.modTracked[m] = false
	}
	lv.modList = lv.modList[:0]
	for _, slot := range lv.ownedList {
		lv.ownedStats[slot] = mapeq.Module{}
		lv.ownedHas[slot] = false
	}
	lv.ownedList = lv.ownedList[:0]
	for _, m32 := range as.touched {
		m := int(m32)
		if as.members[m] == 0 {
			continue
		}
		mod := mapeq.Module{
			SumPr:   as.sumPr[m],
			ExitPr:  as.exit[m],
			Members: int(as.members[m]),
		}
		lv.mods[m] = mod
		lv.trackMod(m)
		if ownerOf(m, lv.p) == lv.rank {
			slot := m / lv.p
			lv.ownedStats[slot] = mod
			lv.ownedHas[slot] = true
			lv.ownedList = append(lv.ownedList, int32(slot))
		}
	}
	lv.agg = as.agg
	lv.refAgg = as.agg
}

// checkStop evaluates the convergence predicate on epoch g's global
// move count and this rank's codelength estimate — the same stall rule
// the synchronized loop votes on, minus the vote: the move count is a
// pure function of epoch-stamped data, and divergence on the
// estimate-based stall arm is safe because stopped ranks freeze rather
// than block anyone.
func (as *asyncState) checkStop(g int, totalMoves int64) {
	if totalMoves == 0 {
		as.stopRequested = true
		return
	}
	l := as.agg.L()
	if dampProb(g) > 0 {
		if l < as.bestL {
			as.bestL = l
		}
		return
	}
	// Stale-epoch improvements come in smaller steps than synchronized
	// rounds (conflicting concurrent moves cancel part of each epoch's
	// gain), so the synchronized loop's stall rule would fire here long
	// before the partition converges and dump the remaining work on the
	// synchronized polish phase — the most expensive place to do it.
	// A tighter margin and a longer patience keep convergence in the
	// cheap asynchronous epochs; the polish then stops after one
	// stalled round.
	stallEps := as.lv.cfg.Theta
	if rel := 1e-4 * as.bestL; rel > stallEps {
		stallEps = rel
	}
	if l >= as.bestL-stallEps {
		as.stalled++
		if as.stalled >= 3 {
			as.stopRequested = true
		}
	} else {
		as.stalled = 0
	}
	if l < as.bestL {
		as.bestL = l
	}
}

// finish runs the shutdown protocol: announce fin, then consume every
// peer's remaining packets through its fin (a blocking per-peer drain —
// effectively the join of the async phase), then replay all still-
// unapplied epochs' ghost updates and hub decisions in ascending order.
// Every rank ends up having applied the identical full epoch history,
// so hub communities — which no synchronous exchange covers — agree
// everywhere before the closing exact refresh.
func (as *asyncState) finish() {
	lv := as.lv
	fin := asyncHeader{Fin: true, Epoch: as.seq}
	as.pEnc.Reset()
	fin.encode(as.pEnc)
	for dst := 0; dst < lv.p; dst++ {
		if dst == lv.rank {
			continue
		}
		lv.c.Send(dst, asyncTag(as.seq), as.pEnc.Bytes())
	}
	for src := 0; src < lv.p; src++ {
		if src == lv.rank {
			continue
		}
		for !as.frozen[src] {
			data, _ := lv.c.Recv(src, asyncTag(as.recvThrough[src]+1))
			as.bank(src, data)
		}
	}
	last := -1
	for src := 0; src < lv.p; src++ {
		if src != lv.rank && as.frozenEpoch[src] > last {
			last = as.frozenEpoch[src]
		}
	}
	if n := as.seq - 1; n > last {
		last = n
	}
	for g := as.lastProcessed + 1; g <= last; g++ {
		as.applyGhosts(g)
		as.applyHubMoves(g)
	}
	as.lastProcessed = last
}

// clusterAsync is the bounded-staleness counterpart of cluster(): the
// asynchronous stage-1 clustering loop. costs receives this rank's
// per-phase work/traffic; the epochs' exchange cost accrues under
// trace.PhaseAsyncDrain.
func (lv *level) clusterAsync(costs phaseCosts) clusterOutcome {
	out := clusterOutcome{}
	prevKind := lv.c.SetKind(mpi.KindCollective)
	out.liveBefore = lv.c.AllreduceI64(int64(len(lv.ownedActive)), mpi.OpSum)
	lv.c.SetKind(prevKind)

	// Epoch "-1": one synchronous refresh gives every rank the exact
	// all-singleton statistics to sweep epoch 0 against.
	out.numModules = lv.refresh(costs, -1)

	as := newAsyncState(lv)
	s := lv.newScratch()
	prevAsyncKind := lv.c.SetKind(mpi.KindModuleInfo)
	for e := 0; e < lv.cfg.MaxSweeps; e++ {
		// --- Gate + process (async-drain span) ---
		jt := lv.jlog.Now()
		before := lv.c.Stats()
		lv.timer.Start(trace.PhaseAsyncDrain)
		as.drain()
		as.await(e)
		gateOps := as.processReady()
		stale := (e - 1) - as.lastProcessed
		if stale < 0 || stale > as.k {
			panicf("rank %d: epoch %d staleness %d outside [0, %d]", lv.rank, e, stale, as.k)
		}
		lv.timer.Stop(trace.PhaseAsyncDrain)
		after := lv.c.Stats()
		msgs, bytes := commDelta(before, after)
		costs.add(trace.PhaseAsyncDrain, trace.RankCost{Ops: gateOps, Msgs: msgs, Bytes: bytes})
		lv.jlog.Emit(obs.Event{
			Stage: lv.jstage, Outer: lv.jouter, Iter: int32(e),
			Phase: obs.PhaseAsyncDrain, Start: jt, End: lv.jlog.Now(),
			Stale: int32(stale),
			Ops:   gateOps, Msgs: msgs, Bytes: bytes,
			WaitNs: waitDelta(before, after),
		})
		if as.stopRequested {
			break
		}
		// Only epochs actually swept count toward the histogram — the
		// final gate above detects the stop without sweeping.
		as.hist[stale]++

		// --- Sweep epoch e, draining between move passes ---
		lv.timer.Start(trace.PhaseFindBestModule)
		jt = lv.jlog.Now()
		evalsBefore := lv.deltaEvals
		sweepMark := lv.c.Stats()
		lv.dampP = dampProb(e)
		moves, deferred := 0, 0
		var cands []hubCandidate
		midOps := int64(0)
		for pass := 0; pass < passBudget(e); pass++ {
			m, df, cs := lv.sweep(s, 1)
			moves += m
			deferred = df
			cands = cs
			if m == 0 && pass > 0 {
				break
			}
			// Opportunistic mid-sweep refresh: bank whatever arrived and,
			// when a newer epoch completed, install its statistics before
			// the next pass. Never blocks.
			as.drain()
			midOps += as.processReady()
			if as.stopRequested {
				break
			}
		}
		lv.timer.Stop(trace.PhaseFindBestModule)
		costs.add(trace.PhaseFindBestModule, trace.RankCost{Ops: lv.deltaEvals - evalsBefore})
		lv.jlog.Emit(obs.Event{
			Stage: lv.jstage, Outer: lv.jouter, Iter: int32(e),
			Phase: obs.PhaseFindBestModule, Start: jt, End: lv.jlog.Now(),
			Moves: int32(moves), Deferred: int32(deferred),
			Ops: lv.deltaEvals - evalsBefore,
		})

		// --- Broadcast the epoch (flush half of the async-drain span) ---
		jt = lv.jlog.Now()
		lv.timer.Start(trace.PhaseAsyncDrain)
		as.sendEpoch(int64(moves+deferred), cands)
		lv.timer.Stop(trace.PhaseAsyncDrain)
		after = lv.c.Stats()
		msgs, bytes = commDelta(sweepMark, after)
		costs.add(trace.PhaseAsyncDrain, trace.RankCost{Ops: midOps, Msgs: msgs, Bytes: bytes})
		lv.jlog.Emit(obs.Event{
			Stage: lv.jstage, Outer: lv.jouter, Iter: int32(e),
			Phase: obs.PhaseAsyncDrain, Start: jt, End: lv.jlog.Now(),
			Stale: int32(stale),
			Ops:   midOps, Msgs: msgs, Bytes: bytes,
			WaitNs: waitDelta(sweepMark, after),
		})
		lv.jlog.PublishComm(lv.c.Stats())
		out.iterations++
	}

	// --- Shutdown: join the mesh, then restore exactness ---
	jt := lv.jlog.Now()
	before := lv.c.Stats()
	lv.timer.Start(trace.PhaseAsyncDrain)
	as.finish()
	lv.timer.Stop(trace.PhaseAsyncDrain)
	after := lv.c.Stats()
	msgs, bytes := commDelta(before, after)
	costs.add(trace.PhaseAsyncDrain, trace.RankCost{Msgs: msgs, Bytes: bytes})
	lv.jlog.Emit(obs.Event{
		Stage: lv.jstage, Outer: lv.jouter, Iter: int32(out.iterations),
		Phase: obs.PhaseAsyncDrain, Start: jt, End: lv.jlog.Now(),
		Msgs: msgs, Bytes: bytes,
		WaitNs: waitDelta(before, after),
	})
	lv.c.SetKind(prevAsyncKind)
	lv.swapGhostComms()

	// --- Synchronous polish: converge exactly from the async state ---
	// The epochs above do the bulk of the optimization; a short
	// synchronized phase (typically two or three rounds — the partition
	// is near-converged and polish skips damping) finishes with the
	// exact loop. It repairs quality lost to stale or approximate
	// decisions and ends, as cluster() always does, on an exact refresh
	// and aggregates. forceFullInfo covers the polish's first refresh,
	// whose version bookkeeping the epochs bypassed.
	lv.forceFullInfo = true
	lv.polish = true
	pc := lv.cluster(costs)
	lv.polish = false
	out.iterations += pc.iterations
	out.numModules = pc.numModules
	out.finalL = pc.finalL
	out.staleHist = as.hist
	return out
}

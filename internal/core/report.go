package core

import (
	"dinfomap/internal/graph"
	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

// BuildReport assembles the structured JSON run report (obs.Report)
// from a finished run: the convergence traces, modeled and host
// timings, partition balance, and the full per-rank per-phase
// measurements. cfg should be the Config the run was started with.
func BuildReport(g *graph.Graph, cfg Config, res *Result) *obs.Report {
	cfg = cfg.withDefaults()
	rep := &obs.Report{
		Schema: obs.ReportSchema,
		Graph: obs.GraphInfo{
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			TotalWeight: g.TotalWeight(),
		},
		Config: obs.ConfigInfo{
			P:              cfg.P,
			DHigh:          cfg.DHigh,
			Seed:           cfg.Seed,
			Theta:          cfg.Theta,
			StalenessBound: cfg.StalenessBound,
		},
		Quality: obs.QualityInfo{
			Codelength:        res.Codelength,
			InitialCodelength: res.InitialCodelength,
			NumModules:        res.NumModules,
		},
		Convergence: obs.ConvergenceInfo{
			MDLTrace:        res.MDLTrace,
			MergeRate:       res.MergeRate,
			OuterIterations: res.OuterIterations,
			Stage1Sweeps:    res.Stage1Iterations,
			Stage2Sweeps:    res.Stage2Iterations,
		},
		Timing: obs.TimingInfo{
			Stage1WallNs:    res.Stage1Wall.Nanoseconds(),
			Stage2WallNs:    res.Stage2Wall.Nanoseconds(),
			Stage1ModeledNs: res.Stage1Modeled.Nanoseconds(),
			Stage2ModeledNs: res.Stage2Modeled.Nanoseconds(),
			TotalModeledNs:  res.TotalModeled().Nanoseconds(),
			PhaseModeledNs:  make(map[string]int64, len(res.PhaseModeled)),
		},
		Partition: obs.PartitionInfo{
			NumHubs:       res.Partition.NumHubs,
			MinEdges:      res.Partition.MinEdges,
			MaxEdges:      res.Partition.MaxEdges,
			MinGhosts:     res.Partition.MinGhosts,
			MaxGhosts:     res.Partition.MaxGhosts,
			EdgeImbalance: res.Partition.EdgeImbalance,
		},
		MaxRankBytes:     res.MaxRankBytes,
		DeltaEvaluations: res.DeltaEvaluations,
	}
	//dinfomap:unordered-ok map-to-map copy; encoding/json sorts report map keys on output
	for ph, d := range res.PhaseModeled {
		rep.Timing.PhaseModeledNs[ph] = d.Nanoseconds()
	}
	journaled := cfg.Journal.NumRanks() > 0
	if journaled {
		rep.Timing.PhaseWallNs = make(map[string]int64)
	}
	for r := 0; r < cfg.P && r < len(res.PerRankPhase); r++ {
		rr := obs.RankReport{
			Rank:   r,
			Phases: make(map[string]obs.PhaseCost, len(res.PerRankPhase[r])),
		}
		//dinfomap:unordered-ok map-to-map copy; encoding/json sorts report map keys on output
		for ph, c := range res.PerRankPhase[r] {
			rr.Phases[ph] = phaseCost(c)
		}
		if r < len(res.PerRankStage2) {
			rr.Stage2 = phaseCost(res.PerRankStage2[r])
		}
		if r < len(res.PerRankStage2Phase) && len(res.PerRankStage2Phase[r]) > 0 {
			rr.Stage2Phases = make(map[string]obs.PhaseCost, len(res.PerRankStage2Phase[r]))
			//dinfomap:unordered-ok map-to-map copy; encoding/json sorts report map keys on output
			for ph, c := range res.PerRankStage2Phase[r] {
				rr.Stage2Phases[ph] = phaseCost(c)
			}
		}
		if journaled && r < cfg.Journal.NumRanks() {
			wall := cfg.Journal.PhaseWall(r)
			if len(wall) > 0 {
				rr.PhaseWallNs = make(map[string]int64, len(wall))
			}
			//dinfomap:unordered-ok map-to-map copy plus max reduction; commutative and json-sorted on output
			for ph, d := range wall {
				rr.PhaseWallNs[ph] = d.Nanoseconds()
				if d.Nanoseconds() > rep.Timing.PhaseWallNs[ph] {
					rep.Timing.PhaseWallNs[ph] = d.Nanoseconds()
				}
			}
		}
		if r < len(res.PerRankWall1) {
			rr.Wall1Ns = res.PerRankWall1[r].Nanoseconds()
		}
		if r < len(res.PerRankWall2) {
			rr.Wall2Ns = res.PerRankWall2[r].Nanoseconds()
		}
		if r < len(res.PerRankEvals) {
			rr.DeltaEvals = res.PerRankEvals[r]
		}
		if r < len(res.CommStats) {
			rr.Comm = obs.CommFromStats(res.CommStats[r])
			rr.CommByKind = obs.ByKindFromStats(res.CommStats[r])
		}
		if r < len(res.PerRankIterations) {
			rr.Iterations = res.PerRankIterations[r]
		}
		if r < len(res.Transports) {
			rr.Transport = res.Transports[r]
		}
		if r < len(res.PerRankStaleness) {
			rr.GhostStaleness = res.PerRankStaleness[r]
		}
		rep.Ranks = append(rep.Ranks, rr)
	}
	rep.Comms = obs.BuildComms(res.CommStats)
	if journaled {
		rep.WaitStates = obs.BuildWaitStates(res.CommStats, cfg.Journal)
		rep.LostTime = obs.BuildLostTime(res.CommStats, cfg.Journal)
		rep.CriticalPath = obs.CriticalPath(cfg.Journal, res.WaitRecorder)
	}
	rep.Clocks = res.Clocks
	build := obs.ReadBuild()
	rep.Build = &build
	return rep
}

func phaseCost(c trace.RankCost) obs.PhaseCost {
	return obs.PhaseCost{Ops: c.Ops, Msgs: c.Msgs, Bytes: c.Bytes}
}

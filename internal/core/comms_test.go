package core

import (
	"testing"

	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
)

// TestCommKindAccounting runs the full algorithm and checks the
// per-kind accounting invariants end to end: every rank's cumulative
// stats are conserved (kind sums == totals), real protocol traffic is
// attributed to named kinds rather than the catch-all, the
// per-outer-iteration slices are themselves conserved deltas that sum
// to at most the rank totals, and the run report's comms rollup matches.
func TestCommKindAccounting(t *testing.T) {
	g, _ := planted(7, 600, 12, 0.2)
	cfg := Config{P: 4, Seed: 7}
	res := Run(g, cfg)

	if len(res.CommStats) != cfg.P || len(res.PerRankIterations) != cfg.P {
		t.Fatalf("per-rank slices sized %d/%d, want %d",
			len(res.CommStats), len(res.PerRankIterations), cfg.P)
	}
	for r, s := range res.CommStats {
		if !s.Conserved() {
			t.Errorf("rank %d: cumulative stats not conserved:\nsums   %+v\ntotals %+v",
				r, s.KindSums(), s)
		}
		// The protocol must attribute its dominant exchanges: module
		// refresh (partials + authoritative replies), setup, and
		// control collectives all run on every rank.
		for _, k := range []mpi.Kind{
			mpi.KindModulePartial, mpi.KindModuleInfo,
			mpi.KindSetup, mpi.KindCollective, mpi.KindAssignment,
		} {
			if s.ByKind[k].TotalBytes() == 0 && s.ByKind[k].Collectives == 0 {
				t.Errorf("rank %d: kind %v has no traffic attributed", r, k)
			}
		}

		iters := res.PerRankIterations[r]
		if len(iters) != res.OuterIterations {
			t.Errorf("rank %d: %d iteration slices, want %d (outer iterations)",
				r, len(iters), res.OuterIterations)
		}
		var sum obs.CommTotals
		for i, it := range iters {
			if it.Outer != i {
				t.Errorf("rank %d: slice %d has outer %d", r, i, it.Outer)
			}
			wantStage := 2
			if i == 0 {
				wantStage = 1
			}
			if it.Stage != wantStage {
				t.Errorf("rank %d outer %d: stage %d, want %d", r, i, it.Stage, wantStage)
			}
			var byKind obs.CommTotals
			for _, kt := range it.CommByKind {
				byKind = addCommTotals(byKind, kt)
			}
			if len(it.CommByKind) > 0 && byKind != it.Comm {
				t.Errorf("rank %d outer %d: by-kind sum %+v != comm %+v",
					r, i, byKind, it.Comm)
			}
			sum = addCommTotals(sum, it.Comm)
		}
		// The slices cover run start through the last iteration; only
		// the final full-assignment gather falls outside them.
		total := obs.CommFromStats(s)
		if sum.BytesSent > total.BytesSent || sum.CollectiveBytes > total.CollectiveBytes ||
			sum.MsgsSent > total.MsgsSent || sum.Collectives > total.Collectives {
			t.Errorf("rank %d: iteration deltas %+v exceed totals %+v", r, sum, total)
		}
		if sum.BytesSent+sum.CollectiveBytes == 0 {
			t.Errorf("rank %d: iteration slices carry no traffic", r)
		}
	}

	// Report rollup: comms.totals is the rank sum; by_kind sums back to
	// the totals (conservation surfaces in the JSON too).
	rep := BuildReport(g, cfg, res)
	if rep.Comms == nil {
		t.Fatal("report missing comms rollup")
	}
	var want obs.CommTotals
	for _, s := range res.CommStats {
		want = addCommTotals(want, obs.CommFromStats(s))
	}
	if rep.Comms.Totals != want {
		t.Errorf("comms.totals %+v != rank sum %+v", rep.Comms.Totals, want)
	}
	var byKind obs.CommTotals
	for _, kt := range rep.Comms.ByKind {
		byKind = addCommTotals(byKind, kt)
	}
	if byKind != rep.Comms.Totals {
		t.Errorf("comms.by_kind sum %+v != comms.totals %+v", byKind, rep.Comms.Totals)
	}
	for r, rr := range rep.Ranks {
		var ks obs.CommTotals
		for _, kt := range rr.CommByKind {
			ks = addCommTotals(ks, kt)
		}
		if ks != rr.Comm {
			t.Errorf("rank %d report: comm_by_kind sum %+v != comm %+v", r, ks, rr.Comm)
		}
		if len(rr.Iterations) == 0 {
			t.Errorf("rank %d report: no iteration slices", r)
		}
	}
}

func addCommTotals(a, b obs.CommTotals) obs.CommTotals {
	return obs.CommTotals{
		BytesSent:       a.BytesSent + b.BytesSent,
		BytesRecv:       a.BytesRecv + b.BytesRecv,
		MsgsSent:        a.MsgsSent + b.MsgsSent,
		MsgsRecv:        a.MsgsRecv + b.MsgsRecv,
		Collectives:     a.Collectives + b.Collectives,
		CollectiveBytes: a.CollectiveBytes + b.CollectiveBytes,
		CollectiveMsgs:  a.CollectiveMsgs + b.CollectiveMsgs,

		RecvBlockedWallNs: a.RecvBlockedWallNs + b.RecvBlockedWallNs,
		RecvQueueWallNs:   a.RecvQueueWallNs + b.RecvQueueWallNs,
		RecvsBlockedWall:  a.RecvsBlockedWall + b.RecvsBlockedWall,
		BarrierWaitWallNs: a.BarrierWaitWallNs + b.BarrierWaitWallNs,
		BarrierSyncs:      a.BarrierSyncs + b.BarrierSyncs,
	}
}

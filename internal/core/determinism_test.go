package core

import (
	"bytes"
	"fmt"
	"testing"

	"dinfomap/internal/obs"
)

// stripWallTimes zeroes the host wall-clock fields, the only report
// content that legitimately differs between two identical runs (modeled
// times derive from deterministic op/msg/byte counters and must match).
// The wait-state measurements (and the blocked-receive classification,
// which depends on measured timing) are wall-clock too; the barrier
// sync *count* is deterministic and deliberately kept.
func stripWallTimes(rep *obs.Report) {
	rep.Timing.Stage1WallNs = 0
	rep.Timing.Stage2WallNs = 0
	stripWaitMap := func(m map[string]obs.CommTotals) {
		for k, c := range m {
			stripWait(&c)
			m[k] = c
		}
	}
	for i := range rep.Ranks {
		rep.Ranks[i].Wall1Ns = 0
		rep.Ranks[i].Wall2Ns = 0
		stripWait(&rep.Ranks[i].Comm)
		stripWaitMap(rep.Ranks[i].CommByKind)
		for k := range rep.Ranks[i].Iterations {
			rep.Ranks[i].Iterations[k].WallNs = 0
			stripWait(&rep.Ranks[i].Iterations[k].Comm)
			stripWaitMap(rep.Ranks[i].Iterations[k].CommByKind)
		}
	}
	if rep.Comms != nil {
		stripWait(&rep.Comms.Totals)
		stripWaitMap(rep.Comms.ByKind)
	}
}

// stripWait zeroes the measured wait-state fields of one comm record.
func stripWait(c *obs.CommTotals) {
	c.RecvBlockedWallNs = 0
	c.RecvQueueWallNs = 0
	c.RecvsBlockedWall = 0
	c.BarrierWaitWallNs = 0
}

// TestRunReportDeterministic runs the distributed algorithm twice with
// the same seed and demands byte-identical dinfomap-run-report/v1 JSON
// (modulo wall times). This is the regression test for the
// nondeterministic map iteration that used to randomize wire encoding
// order in mergeShuffle and the boundary exchange: any map-order
// dependence in the pipeline shows up here as a diff in the MDL trace,
// communication volume, or module count.
func TestRunReportDeterministic(t *testing.T) {
	g, _ := planted(7, 600, 12, 0.2)
	for _, p := range []int{1, 4} {
		cfg := Config{P: p, Seed: 42}
		var runs [2][]byte
		for i := range runs {
			res := Run(g, cfg)
			rep := BuildReport(g, cfg, res)
			stripWallTimes(rep)
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatalf("p=%d: WriteJSON: %v", p, err)
			}
			runs[i] = buf.Bytes()
		}
		if !bytes.Equal(runs[0], runs[1]) {
			t.Errorf("p=%d: same-seed runs produced different reports:\n%s",
				p, firstDiff(runs[0], runs[1]))
		}
	}
}

// TestRunCommunitiesDeterministic checks the raw result too, so a
// report-layer bug cannot mask a pipeline difference (or vice versa).
func TestRunCommunitiesDeterministic(t *testing.T) {
	g, _ := planted(11, 400, 8, 0.25)
	a := Run(g, Config{P: 3, Seed: 9})
	b := Run(g, Config{P: 3, Seed: 9})
	if a.Codelength != b.Codelength {
		t.Errorf("codelengths differ: %v vs %v", a.Codelength, b.Codelength)
	}
	if a.NumModules != b.NumModules {
		t.Errorf("module counts differ: %d vs %d", a.NumModules, b.NumModules)
	}
	for u := range a.Communities {
		if a.Communities[u] != b.Communities[u] {
			t.Fatalf("community of vertex %d differs: %d vs %d",
				u, a.Communities[u], b.Communities[u])
		}
	}
}

// firstDiff renders the first line where two byte slices diverge.
func firstDiff(a, b []byte) string {
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d:\n  run1: %s\n  run2: %s", i+1, la[i], lb[i])
		}
	}
	return "reports differ in length"
}

package core

import (
	"math"
	"testing"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/infomap"
	"dinfomap/internal/metrics"
	"dinfomap/internal/trace"
)

func planted(seed uint64, n, k int, mixing float64) (*graph.Graph, []int) {
	return gen.PlantedPartition(seed, gen.PlantedConfig{
		N: n, NumComms: k, AvgDegree: 8, Mixing: mixing, DegreeGamma: 2.5,
	})
}

func TestEmptyGraph(t *testing.T) {
	res := Run(graph.NewBuilder(0).Build(), Config{P: 2})
	if res.NumModules != 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestEdgelessGraph(t *testing.T) {
	res := Run(graph.NewBuilder(4).Build(), Config{P: 2})
	if res.NumModules != 4 {
		t.Fatalf("NumModules = %d, want 4 singletons", res.NumModules)
	}
}

func TestSingleRankMatchesStructure(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	res := Run(g, Config{P: 1, Seed: 1})
	if res.NumModules != 2 {
		t.Fatalf("NumModules = %d, want 2", res.NumModules)
	}
	c := res.Communities
	if c[0] != c[1] || c[1] != c[2] || c[3] != c[4] || c[4] != c[5] || c[0] == c[3] {
		t.Fatalf("wrong communities: %v", c)
	}
}

func TestTwoTrianglesMultiRank(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	for _, p := range []int{2, 3, 4} {
		res := Run(g, Config{P: p, Seed: 1})
		c := res.Communities
		if res.NumModules != 2 || c[0] != c[1] || c[1] != c[2] ||
			c[3] != c[4] || c[4] != c[5] || c[0] == c[3] {
			t.Errorf("p=%d: modules=%d communities=%v", p, res.NumModules, c)
		}
	}
}

func TestConvergesOnPlanted(t *testing.T) {
	g, truth := planted(41, 800, 16, 0.15)
	res := Run(g, Config{P: 4, Seed: 3})
	if res.Stage1Iterations >= 100 {
		t.Errorf("stage 1 did not converge: %d sweeps", res.Stage1Iterations)
	}
	nmi := metrics.NMI(res.Communities, truth)
	if nmi < 0.85 {
		t.Errorf("NMI vs truth = %.3f (modules=%d), want >= 0.85", nmi, res.NumModules)
	}
}

// TestQualityMatchesSequential is the Table 2 claim in miniature: the
// distributed partition must be close to the sequential one.
func TestQualityMatchesSequential(t *testing.T) {
	g, _ := planted(43, 1000, 20, 0.2)
	seq := infomap.Run(g, infomap.Config{Seed: 5})
	dist := Run(g, Config{P: 4, Seed: 5})
	q := metrics.Compare(dist.Communities, seq.Communities)
	if q.NMI < 0.85 || q.FMeasure < 0.6 || q.Jaccard < 0.45 {
		t.Errorf("distributed vs sequential quality too low: %v "+
			"(dist modules=%d seq modules=%d)", q, dist.NumModules, seq.NumModules)
	}
}

// TestMDLCloseToSequential is the Figure 4 claim: converged MDL within a
// few percent of the sequential algorithm's.
func TestMDLCloseToSequential(t *testing.T) {
	g, _ := planted(47, 1000, 20, 0.2)
	seq := infomap.Run(g, infomap.Config{Seed: 7})
	dist := Run(g, Config{P: 4, Seed: 7})
	rel := (dist.Codelength - seq.Codelength) / seq.Codelength
	if math.Abs(rel) > 0.02 {
		t.Errorf("distributed L = %.4f vs sequential %.4f (%.1f%% off)",
			dist.Codelength, seq.Codelength, 100*rel)
	}
	if dist.Codelength >= dist.InitialCodelength {
		t.Errorf("L did not improve: %.4f vs initial %.4f",
			dist.Codelength, dist.InitialCodelength)
	}
}

// TestReportedCodelengthIsExact: the MDL the distributed algorithm
// reports must equal a from-scratch evaluation of its final partition.
func TestReportedCodelengthIsExact(t *testing.T) {
	g, _ := planted(53, 600, 12, 0.2)
	for _, p := range []int{1, 2, 4, 8} {
		res := Run(g, Config{P: p, Seed: 11})
		l := infomap.CodelengthOf(g, res.Communities)
		if math.Abs(l-res.Codelength) > 1e-6 {
			t.Errorf("p=%d: reported L = %v, partition evaluates to %v", p, res.Codelength, l)
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	g, _ := planted(59, 500, 10, 0.2)
	a := Run(g, Config{P: 4, Seed: 13})
	b := Run(g, Config{P: 4, Seed: 13})
	if a.Codelength != b.Codelength || a.NumModules != b.NumModules {
		t.Fatalf("same seed differs: L %v/%v, k %d/%d",
			a.Codelength, b.Codelength, a.NumModules, b.NumModules)
	}
	for u := range a.Communities {
		if a.Communities[u] != b.Communities[u] {
			t.Fatalf("assignments differ at %d", u)
		}
	}
}

func TestInitialCodelengthMatchesSequential(t *testing.T) {
	g, _ := planted(61, 400, 8, 0.2)
	seq := infomap.Run(g, infomap.Config{Seed: 1})
	dist := Run(g, Config{P: 3, Seed: 1})
	if math.Abs(seq.InitialCodelength-dist.InitialCodelength) > 1e-9 {
		t.Fatalf("initial L differs: seq %v, dist %v",
			seq.InitialCodelength, dist.InitialCodelength)
	}
}

func TestMergeRateShape(t *testing.T) {
	g, _ := planted(67, 800, 16, 0.15)
	res := Run(g, Config{P: 4, Seed: 3})
	if len(res.MergeRate) != res.OuterIterations {
		t.Fatalf("MergeRate entries %d != OuterIterations %d",
			len(res.MergeRate), res.OuterIterations)
	}
	// The paper observes ~50% or more merged after the delegate stage.
	if res.MergeRate[0] < 0.4 {
		t.Errorf("stage-1 merge rate = %.2f, want >= 0.4", res.MergeRate[0])
	}
	for i, r := range res.MergeRate {
		if r < 0 || r > 1 {
			t.Errorf("merge rate[%d] = %v out of range", i, r)
		}
	}
}

func TestPhaseAccountingPopulated(t *testing.T) {
	g, _ := planted(71, 600, 12, 0.2)
	res := Run(g, Config{P: 4, Seed: 5})
	if res.PhaseModeled[trace.PhaseFindBestModule] <= 0 {
		t.Error("FindBestModule modeled time missing")
	}
	if res.PhaseModeled[trace.PhaseSwapBoundary] <= 0 {
		t.Error("SwapBoundaryInfo modeled time missing")
	}
	if res.PhaseModeled[trace.PhaseOther] <= 0 {
		t.Error("Other modeled time missing")
	}
	if res.Stage1Modeled <= 0 || res.Stage2Modeled <= 0 {
		t.Errorf("stage modeled times: %v / %v", res.Stage1Modeled, res.Stage2Modeled)
	}
	if res.DeltaEvaluations <= 0 {
		t.Error("DeltaEvaluations not counted")
	}
	if res.MaxRankBytes <= 0 {
		t.Error("MaxRankBytes not counted")
	}
	if len(res.CommStats) != 4 {
		t.Errorf("CommStats has %d entries, want 4", len(res.CommStats))
	}
}

func TestDelegatesUsedOnHubGraph(t *testing.T) {
	// Star + communities: the hub must be delegated with threshold p.
	g := gen.PowerLawGraph(73, 2000, 2.0, 2, 400)
	res := Run(g, Config{P: 8, Seed: 1})
	if res.Partition.NumHubs == 0 {
		t.Fatal("no delegates on a power-law graph with threshold p=8")
	}
	if res.PhaseModeled[trace.PhaseBcastDelegates] <= 0 {
		t.Error("BroadcastDelegates modeled time missing despite hubs")
	}
}

func TestDedupReducesTraffic(t *testing.T) {
	g, _ := planted(79, 800, 16, 0.2)
	withDedup := Run(g, Config{P: 4, Seed: 9})
	noDedup := Run(g, Config{P: 4, Seed: 9, NoDedup: true})
	if noDedup.MaxRankBytes <= withDedup.MaxRankBytes {
		t.Errorf("dedup did not reduce traffic: %d (dedup) vs %d (no dedup)",
			withDedup.MaxRankBytes, noDedup.MaxRankBytes)
	}
	// Quality must not degrade: dedup is purely a wire optimization.
	if math.Abs(noDedup.Codelength-infomap.CodelengthOf(g, noDedup.Communities)) > 1e-6 {
		t.Error("NoDedup run reports inconsistent codelength")
	}
}

func TestMinLabelAblationStillTerminates(t *testing.T) {
	g, _ := planted(83, 400, 8, 0.25)
	res := Run(g, Config{P: 4, Seed: 3, NoMinLabel: true, MaxSweeps: 30})
	// Without the anti-bouncing rule the sweep cap may bind, but the
	// run must terminate and produce a valid partition.
	if len(res.Communities) != g.NumVertices() {
		t.Fatal("no partition produced")
	}
	l := infomap.CodelengthOf(g, res.Communities)
	if math.Abs(l-res.Codelength) > 1e-6 {
		t.Errorf("reported L inconsistent under ablation: %v vs %v", res.Codelength, l)
	}
}

func TestManyRanksSmallGraph(t *testing.T) {
	// More ranks than useful: correctness must hold even when some
	// ranks own almost nothing.
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	res := Run(g, Config{P: 6, Seed: 2})
	if res.NumModules != 2 {
		t.Fatalf("NumModules = %d, want 2", res.NumModules)
	}
}

func TestScalingRanksPreservesQuality(t *testing.T) {
	g, truth := planted(89, 1200, 24, 0.15)
	for _, p := range []int{2, 8, 16} {
		res := Run(g, Config{P: p, Seed: 17})
		nmi := metrics.NMI(res.Communities, truth)
		if nmi < 0.85 {
			t.Errorf("p=%d: NMI = %.3f, want >= 0.85", p, nmi)
		}
	}
}

func TestCommunitiesDense(t *testing.T) {
	g, _ := planted(97, 300, 6, 0.2)
	res := Run(g, Config{P: 4, Seed: 19})
	seen := make([]bool, res.NumModules)
	for _, c := range res.Communities {
		if c < 0 || c >= res.NumModules {
			t.Fatalf("community %d out of [0,%d)", c, res.NumModules)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("community %d unused", c)
		}
	}
}

func TestMDLTraceNonIncreasingAfterStage1(t *testing.T) {
	g, _ := planted(101, 800, 16, 0.2)
	res := Run(g, Config{P: 4, Seed: 23})
	for i := 1; i < len(res.MDLTrace); i++ {
		if res.MDLTrace[i] > res.MDLTrace[i-1]+1e-9 {
			t.Errorf("MDL rose between outer iterations %d and %d: %v -> %v",
				i-1, i, res.MDLTrace[i-1], res.MDLTrace[i])
		}
	}
}

func TestDisconnectedGraphMultiRank(t *testing.T) {
	g := graph.FromEdges(9, [][2]int{
		{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8},
	})
	res := Run(g, Config{P: 3, Seed: 2})
	c := res.Communities
	if c[0] == c[3] || c[3] == c[6] || c[0] == c[6] {
		t.Fatalf("disconnected components merged: %v", c)
	}
}

package core

import (
	"dinfomap/internal/mapeq"
)

// sweepScratch holds reusable per-sweep buffers.
type sweepScratch struct {
	wTo     []float64 // indexed by community id
	remote  []bool    // community reached through a non-owned vertex
	touched []int
	order   []int // permutation over evalVerts indices
	cands   []hubCandidate
}

func (lv *level) newScratch() *sweepScratch {
	s := &sweepScratch{
		wTo:    make([]float64, lv.idSpace),
		remote: make([]bool, lv.idSpace),
		order:  make([]int, len(lv.evalVerts)),
	}
	for i := range s.order {
		s.order[i] = i
	}
	return s
}

// maxLocalPasses bounds local move passes inside one synchronized
// FindBestModule phase.
const maxLocalPasses = 24

// sweep runs one FindBestModule phase (Algorithm 2, line 3): "local
// clustering with duplicates". Low-degree vertices are moved repeatedly
// — with immediate local updates, like the sequential inner loop —
// until no local move improves the codelength, so every expensive
// synchronization round does a full local optimization. Delegate moves
// are only proposed (one evaluation pass after local quiescence), to be
// decided globally in the BroadcastDelegates phase.
//
// The minimum-label heuristic (Section 3.4) suppresses the vertex
// bouncing problem: when an owned singleton wants to join the singleton
// module of a vertex on another rank, both sides may decide the
// symmetric move in the same round and exchange places forever. The
// move is therefore applied only when the target label is smaller than
// the current one, making exactly one side win.
// passBudget limits local passes for a given synchronized iteration:
// early rounds run a single pass so boundary information propagates
// before rank-local greediness can lock in cross-boundary mistakes;
// later rounds run to local convergence to keep the number of expensive
// synchronization rounds small.
func passBudget(iter int) int {
	if iter >= 4 {
		return maxLocalPasses
	}
	return 1 << iter // 1, 2, 4, 8
}

// dampProb returns the remote-move deferral probability for a
// synchronized round: strong early (when every rank sees the identical
// all-singleton opportunity set), gone by round 4.
func dampProb(iter int) float64 {
	switch {
	case iter < 2:
		return 0.5
	case iter < 4:
		return 0.25
	default:
		return 0
	}
}

func (lv *level) sweep(s *sweepScratch, budget int) (moves, deferred int, hubCands []hubCandidate) {
	if budget > maxLocalPasses {
		budget = maxLocalPasses
	}
	for pass := 0; pass < budget; pass++ {
		passMoves := 0
		lv.deferred = 0
		lv.rng.Shuffle(s.order)
		for _, i := range s.order {
			u := lv.evalVerts[i]
			if lv.isHub != nil && lv.isHub[u] {
				continue // delegates are handled after local quiescence
			}
			if ownerOf(u, lv.p) != lv.rank {
				panicf("rank %d evaluating non-owned non-hub vertex %d", lv.rank, u)
			}
			if lv.moveVertex(s, i, u) {
				passMoves++
			}
		}
		moves += passMoves
		deferred = lv.deferred
		if passMoves == 0 {
			break
		}
	}
	// Delegate proposal pass: evaluate each local hub portion once.
	s.cands = s.cands[:0]
	for _, h := range lv.hubs {
		i := lv.evalIndexOf[h]
		if i < 0 {
			continue
		}
		if target, delta, ok := lv.bestTarget(s, int(i), h); ok {
			s.cands = append(s.cands, hubCandidate{Hub: h, Target: target, DeltaL: delta})
		}
		lv.clearWTo(s)
	}
	return moves, deferred, s.cands
}

// bestTarget evaluates all neighbor modules of eval vertex index i
// (vertex u) and returns the best move, if any improves.
func (lv *level) bestTarget(s *sweepScratch, i, u int) (target int, delta float64, ok bool) {
	from := lv.comm[u]
	s.touched = s.touched[:0]
	for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
		v := lv.adjV[j]
		if v == u {
			continue
		}
		cv := lv.comm[v]
		//dinfomap:float-ok untouched-slot sentinel: cleared to exact 0 by clearWTo, only positive weights added
		if s.wTo[cv] == 0 {
			s.touched = append(s.touched, cv)
			s.remote[cv] = false
		}
		s.wTo[cv] += lv.adjW[j] * lv.inv2W
		if ownerOf(v, lv.p) != lv.rank || (lv.isHub != nil && lv.isHub[v]) {
			s.remote[cv] = true
		}
	}
	if len(s.touched) == 0 {
		return 0, 0, false
	}
	mv := mapeq.Move{PU: lv.visit[u], ExitU: lv.exitP[u], WToFrom: s.wTo[from]}
	best := 0.0
	bestC := from
	fromMod := lv.mods[from]
	for _, cv := range s.touched {
		if cv == from {
			continue
		}
		mv.WToTo = s.wTo[cv]
		lv.deltaEvals++
		if d := mapeq.DeltaL(lv.agg, fromMod, lv.mods[cv], mv); d < best-1e-15 {
			best = d
			bestC = cv
		}
	}
	// Leave s.wTo dirty; the caller that needs the weights reads them
	// before calling clearWTo.
	return bestC, best, bestC != from
}

func (lv *level) clearWTo(s *sweepScratch) {
	for _, cv := range s.touched {
		s.wTo[cv] = 0
	}
}

// moveVertex evaluates and, if allowed, applies the best move of owned
// low-degree vertex u (eval index i). Returns whether a move happened.
//
// Besides neighbor modules, an owned vertex may escape back to its own
// founder module when that module is currently empty (this rank is the
// module's home, so the emptiness check is authoritative). Sequential
// Infomap never needs this split move, but in the distributed setting
// simultaneous cross-rank joins evaluated against one-round-stale
// statistics can over-merge, and without an escape move the
// over-merging is irreversible once the graph contracts.
func (lv *level) moveVertex(s *sweepScratch, i, u int) bool {
	bestC, bestDelta, ok := lv.bestTarget(s, i, u)
	from := lv.comm[u]
	escape := false
	if from != u && lv.ownedStats[u/lv.p].Members == 0 && lv.mods[u].Members == 0 {
		mv := mapeq.Move{
			PU:      lv.visit[u],
			ExitU:   lv.exitP[u],
			WToFrom: s.wTo[from],
			WToTo:   0,
		}
		lv.deltaEvals++
		if d := mapeq.DeltaL(lv.agg, lv.mods[from], mapeq.Module{}, mv); d < bestDelta-1e-15 {
			bestC = u
			ok = true
			escape = true
		}
	}
	if !ok {
		lv.clearWTo(s)
		return false
	}
	// Minimum-label rule against symmetric singleton swaps across rank
	// boundaries: the bounce arises when u and a remote vertex v, both
	// in singleton modules, simultaneously adopt each other's module.
	// Escapes retreat into an empty module and cannot bounce.
	if !escape && !lv.cfg.NoMinLabel && s.remote[bestC] && bestC >= from &&
		lv.mods[bestC].Members == 1 && lv.mods[from].Members == 1 {
		lv.clearWTo(s)
		return false
	}
	// Damping of cross-boundary moves: ranks sharing identical module
	// statistics tend to pile into the same attractive module in the
	// same round, over-merging past what any of them would accept with
	// current information. Early rounds defer each remote-target move
	// probabilistically, desynchronizing the herd; the probability
	// decays to zero so convergence on small graphs is unaffected.
	if !escape && !lv.cfg.NoDamping && s.remote[bestC] && lv.dampP > 0 &&
		lv.rng.Float64() < lv.dampP {
		lv.deferred++
		lv.clearWTo(s)
		return false
	}
	mv := mapeq.Move{
		PU:      lv.visit[u],
		ExitU:   lv.exitP[u],
		WToFrom: s.wTo[from],
		WToTo:   s.wTo[bestC],
	}
	lv.clearWTo(s)
	var nf, nt mapeq.Module
	lv.agg, nf, nt = mapeq.ApplyMove(lv.agg, lv.mods[from], lv.mods[bestC], mv)
	lv.mods[from] = nf
	lv.mods[bestC] = nt
	lv.trackMod(from)
	lv.trackMod(bestC)
	lv.comm[u] = bestC
	return true
}

package core

import (
	"context"
	"runtime/pprof"
	"strconv"
	"time"

	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

// phaseCosts accumulates one rank's modeled cost per phase.
type phaseCosts map[string]trace.RankCost

func (pc phaseCosts) add(name string, c trace.RankCost) {
	cur := pc[name]
	cur.Ops += c.Ops
	cur.Msgs += c.Msgs
	cur.Bytes += c.Bytes
	pc[name] = cur
}

// commDelta returns the sent-side traffic between two stats snapshots.
func commDelta(before, after mpi.Stats) (msgs, bytes int64) {
	d := after.Sub(before)
	return d.MsgsSent + d.CollectiveMsgs, d.BytesSent + d.CollectiveBytes
}

// waitDelta returns the blocked time (late senders plus barrier skew)
// between two stats snapshots, for span wait attribution.
func waitDelta(before, after mpi.Stats) int64 {
	return after.BlockedNs() - before.BlockedNs()
}

// clusterOutcome reports one level's converged clustering.
type clusterOutcome struct {
	iterations int
	finalL     float64
	numModules int64
	liveBefore int64

	// staleHist is the ghost-staleness histogram of an asynchronous run
	// (staleHist[s] counts epochs swept s epochs stale); nil when the
	// synchronized loop ran.
	staleHist []int64
}

// cluster runs the synchronized clustering loop on one level
// (Algorithm 2, lines 2-7 with delegates, lines 10-14 without):
// sweep, broadcast delegates, swap boundary info, refresh, until no rank
// moves a vertex. costs receives this rank's per-phase work/traffic.
func (lv *level) cluster(costs phaseCosts) clusterOutcome {
	out := clusterOutcome{}
	prevKind := lv.c.SetKind(mpi.KindCollective)
	out.liveBefore = lv.c.AllreduceI64(int64(len(lv.ownedActive)), mpi.OpSum)
	lv.c.SetKind(prevKind)

	// Iteration-0 refresh: exact singleton aggregates everywhere.
	// refresh journals its two Module_Info rounds as first-class spans.
	out.numModules = lv.refresh(costs, -1)

	s := lv.newScratch()
	bestL := lv.agg.L()
	stalled := 0
	for iter := 0; iter < lv.cfg.MaxSweeps; iter++ {
		// --- FindBestModule ---
		lv.timer.Start(trace.PhaseFindBestModule)
		jt := lv.jlog.Now()
		evalsBefore := lv.deltaEvals
		if lv.polish {
			lv.dampP = 0
		} else {
			lv.dampP = dampProb(iter)
		}
		moves, deferred, cands := lv.sweep(s, passBudget(iter))
		lv.timer.Stop(trace.PhaseFindBestModule)
		costs.add(trace.PhaseFindBestModule, trace.RankCost{Ops: lv.deltaEvals - evalsBefore})
		lv.jlog.Emit(obs.Event{
			Stage: lv.jstage, Outer: lv.jouter, Iter: int32(iter),
			Phase: obs.PhaseFindBestModule, Start: jt, End: lv.jlog.Now(),
			Moves: int32(moves), Deferred: int32(deferred),
			Ops: lv.deltaEvals - evalsBefore,
		})

		// --- BroadcastDelegates ---
		lv.timer.Start(trace.PhaseBcastDelegates)
		jt = lv.jlog.Now()
		before := lv.c.Stats()
		hubMoves := lv.broadcastDelegates(cands)
		after := lv.c.Stats()
		msgs, bytes := commDelta(before, after)
		lv.timer.Stop(trace.PhaseBcastDelegates)
		costs.add(trace.PhaseBcastDelegates, trace.RankCost{
			Ops: int64(len(cands)), Msgs: msgs, Bytes: bytes,
		})
		lv.jlog.Emit(obs.Event{
			Stage: lv.jstage, Outer: lv.jouter, Iter: int32(iter),
			Phase: obs.PhaseBcastDelegates, Start: jt, End: lv.jlog.Now(),
			Moves: int32(hubMoves),
			Ops:   int64(len(cands)), Msgs: msgs, Bytes: bytes,
			WaitNs: waitDelta(before, after),
		})

		// --- SwapBoundaryInfo ---
		lv.timer.Start(trace.PhaseSwapBoundary)
		jt = lv.jlog.Now()
		before = lv.c.Stats()
		swaps := lv.swapGhostComms()
		after = lv.c.Stats()
		msgs, bytes = commDelta(before, after)
		lv.timer.Stop(trace.PhaseSwapBoundary)
		costs.add(trace.PhaseSwapBoundary, trace.RankCost{
			Ops: int64(len(lv.ghosts)), Msgs: msgs, Bytes: bytes,
		})
		lv.jlog.Emit(obs.Event{
			Stage: lv.jstage, Outer: lv.jouter, Iter: int32(iter),
			Phase: obs.PhaseSwapBoundary, Start: jt, End: lv.jlog.Now(),
			Ops: int64(swaps), Msgs: msgs, Bytes: bytes,
			WaitNs: waitDelta(before, after),
		})

		// --- Module refresh (rounds 1-2 journal their own spans) ---
		out.numModules = lv.refresh(costs, int32(iter))

		// --- Other: global move count + convergence vote ---
		lv.timer.Start(trace.PhaseOther)
		jt = lv.jlog.Now()
		before = lv.c.Stats()
		prevKind := lv.c.SetKind(mpi.KindCollective)
		total := lv.c.AllreduceI64(int64(moves+hubMoves+deferred), mpi.OpSum)
		lv.c.SetKind(prevKind)
		after = lv.c.Stats()
		msgs, bytes = commDelta(before, after)
		lv.timer.Stop(trace.PhaseOther)
		costs.add(trace.PhaseOther, trace.RankCost{Msgs: msgs, Bytes: bytes})
		lv.jlog.Emit(obs.Event{
			Stage: lv.jstage, Outer: lv.jouter, Iter: int32(iter),
			Phase: obs.PhaseOther, Start: jt, End: lv.jlog.Now(),
			Msgs: msgs, Bytes: bytes,
			WaitNs: waitDelta(before, after),
		})
		// Refresh the live comm snapshot once per synchronized sweep.
		lv.jlog.PublishComm(lv.c.Stats())

		out.iterations++
		if total == 0 {
			break
		}
		// Section 3.4: the loop also ends when there is "no more MDL
		// optimization" — simultaneous conflicting moves can keep the
		// move count positive indefinitely while the codelength has
		// effectively plateaued or oscillates. A round counts as a
		// stall unless it beats the best codelength seen so far by a
		// relative margin (~0.05%); two consecutive stalls end the
		// stage.
		l := lv.agg.L()
		if lv.dampP > 0 {
			// While damping defers moves, non-improving rounds are
			// expected; the stall guard engages once it decays.
			if l < bestL {
				bestL = l
			}
			continue
		}
		stallEps := lv.cfg.Theta
		if rel := 5e-4 * bestL; rel > stallEps {
			stallEps = rel
		}
		// The polish phase after an async run starts from an already
		// near-converged partition, so its first stalled round is the
		// signal to stop; waiting for a second just repeats a no-op
		// sweep at full synchronization cost.
		stallLimit := 2
		if lv.polish {
			stallLimit = 1
		}
		if l >= bestL-stallEps {
			stalled++
			if stalled >= stallLimit {
				break
			}
		} else {
			stalled = 0
		}
		if l < bestL {
			bestL = l
		}
	}
	out.finalL = lv.agg.L()
	return out
}

// rankMain is the SPMD program each simulated rank executes: the full
// Algorithm 2. It labels the goroutine's profiler samples with the rank
// id, so a -cpuprofile taken over a run splits per simulated rank
// (go tool pprof -tagfocus rank=3).
func (rs *runState) rankMain(c *mpi.Comm) {
	pprof.Do(context.Background(), pprof.Labels("rank", strconv.Itoa(c.Rank())),
		func(context.Context) { rs.rankBody(c) })
}

// rankBody is the algorithm proper, run under the rank's pprof label.
func (rs *runState) rankBody(c *mpi.Comm) {
	cfg := rs.cfg
	rank := c.Rank()
	p := c.Size()
	jlog := cfg.Journal.Rank(rank)

	// Per-outer-iteration slices: cumulative counters snapshotted at
	// iteration boundaries and diffed (never reset — live observers keep
	// seeing monotone totals). Outer 0 is stage 1 and includes its
	// preprocessing exchanges; each merged level adds one slice through
	// its assignment projection. The final full-assignment gather falls
	// after the last slice.
	var iterRecs []obs.IterationReport
	var commMark mpi.Stats
	var evalMark int64
	iterStart := time.Now()
	emitIter := func(stage, outer, sweeps int, evalsCum int64) {
		cum := c.Stats()
		d := cum.Sub(commMark)
		commMark = cum
		wall := time.Since(iterStart)
		iterStart = time.Now()
		ops := evalsCum - evalMark
		evalMark = evalsCum
		iterRecs = append(iterRecs, obs.IterationReport{
			Outer: outer, Stage: stage, Sweeps: sweeps, Ops: ops,
			WallNs:     wall.Nanoseconds(),
			Comm:       obs.CommFromStats(d),
			CommByKind: obs.ByKindFromStats(d),
		})
		// Journal boundary marker: zero-duration so per-rank span start
		// times stay monotone; counters carry the iteration delta.
		now := jlog.Now()
		jlog.Emit(obs.Event{
			Stage: uint8(stage), Outer: uint16(outer), Iter: -1,
			Phase: obs.PhaseOuterIter, Start: now, End: now,
			Ops: ops, Msgs: d.MsgsSent + d.CollectiveMsgs,
			Bytes:  d.BytesSent + d.CollectiveBytes,
			WaitNs: d.BlockedNs(),
		})
		jlog.PublishComm(cum)
	}

	// ---- Stage 1: parallel clustering with delegates ----
	flow := rs.flow
	lv := newStage1Level(c, cfg, rs.layout, flow.P, flow.Exit, flow.Norm(),
		flow.SumPlogpP, cfg.Seed)
	lv.jlog, lv.jstage = jlog, 1

	costs1 := make(phaseCosts)
	t0 := time.Now()
	var oc clusterOutcome
	if cfg.StalenessBound > 0 {
		// Bounded-staleness mode replaces only stage 1's synchronized
		// loop; stage 2 levels are small enough that their collectives
		// are not the bottleneck, and keeping them synchronous preserves
		// the exact merge semantics.
		oc = lv.clusterAsync(costs1)
	} else {
		oc = lv.cluster(costs1)
	}
	wall1 := time.Since(t0)

	staleHist := oc.staleHist // stage-1 only; the loop below reuses oc
	initialL := initialCodelengthOf(lv)
	mdlTrace := []float64{oc.finalL}
	n0 := int64(lv.idSpace)
	mergeRate := []float64{float64(oc.liveBefore-oc.numModules) / float64(n0)}
	iters1 := oc.iterations
	deltaEvals := lv.deltaEvals
	emitIter(1, 0, iters1, deltaEvals)

	// Projection bookkeeping: this rank's owned original vertices.
	ownedOrig := make([]int, 0, lv.idSpace/p+1)
	for u := rank; u < lv.idSpace; u += p {
		ownedOrig = append(ownedOrig, u)
	}
	origComm := make([]int, len(ownedOrig))
	for i, u := range ownedOrig {
		origComm[i] = lv.comm[u]
	}

	// ---- Stage 2: merge, then parallel clustering without delegates ----
	costs2 := make(phaseCosts)
	t0 = time.Now()
	prevL := oc.finalL
	prevLive := oc.numModules
	iters2 := 0
	idSpace := lv.idSpace
	vertexTerm := lv.vertexTerm
	cur := lv
	var next []int
	for outer := 1; outer < cfg.MaxOuterIterations; outer++ {
		if prevLive <= 1 {
			break
		}
		arcs := cur.mergeShuffle(costs2)
		merged := newMergedLevel(c, cfg, idSpace, arcs, vertexTerm, cfg.Seed, outer)
		merged.jlog, merged.jstage, merged.jouter = jlog, 2, uint16(outer)
		oc = merged.cluster(costs2)
		iters2 += oc.iterations
		deltaEvals += merged.deltaEvals

		next = merged.gatherAssignments(next)
		for i := range origComm {
			nc := next[origComm[i]]
			if nc < 0 {
				panicf("rank %d: community %d missing from gathered assignment", rank, origComm[i])
			}
			origComm[i] = nc
		}
		mdlTrace = append(mdlTrace, oc.finalL)
		mergeRate = append(mergeRate, float64(oc.liveBefore-oc.numModules)/float64(n0))
		emitIter(2, outer, oc.iterations, deltaEvals)
		improved := prevL - oc.finalL
		noMerge := oc.numModules == oc.liveBefore
		prevL = oc.finalL
		prevLive = oc.numModules
		cur = merged
		if improved < cfg.Theta || noMerge {
			break
		}
	}
	wall2 := time.Since(t0)

	// ---- Final gather: full assignment of original vertices ----
	prevKind := c.SetKind(mpi.KindAssignment)
	e := mpi.NewEncoder(len(ownedOrig) * 16)
	for i, u := range ownedOrig {
		e.PutInt(u)
		e.PutInt(origComm[i])
	}
	parts := c.AllgatherBytes(e.Bytes())
	c.SetKind(prevKind)
	// Final cumulative snapshot for live observers (metrics scrape).
	jlog.PublishComm(c.Stats())
	full := make([]int, idSpace)
	for _, b := range parts {
		d := mpi.NewDecoder(b)
		for d.Remaining() > 0 {
			u := d.Int()
			full[u] = d.Int()
		}
	}

	// Publish per-rank measurements through the shared runState (each
	// rank writes only its own slot; rank 0 additionally writes the
	// rank-identical outputs).
	rs.perRankPhase[rank] = costs1
	rs.perRankStage2Phase[rank] = costs2
	var stage2Total trace.RankCost
	//dinfomap:unordered-ok integer counter sums; addition order cannot change the totals
	for _, c := range costs2 {
		stage2Total.Ops += c.Ops
		stage2Total.Msgs += c.Msgs
		stage2Total.Bytes += c.Bytes
	}
	rs.perRankStage2[rank] = stage2Total
	rs.perRankWall1[rank] = wall1
	rs.perRankWall2[rank] = wall2
	rs.perRankEvals[rank] = deltaEvals
	rs.perRankIters[rank] = iterRecs
	if staleHist != nil {
		rs.perRankStale[rank] = staleHist
	}
	if rank == 0 {
		rs.out.communities = full
		rs.out.mdlTrace = mdlTrace
		rs.out.mergeRate = mergeRate
		rs.out.initialL = initialL
		rs.out.stage1Iters = iters1
		rs.out.stage2Iters = iters2
	}
}

// initialCodelengthOf returns the all-singleton codelength of the
// original graph, computable locally from the preprocessing flow.
func initialCodelengthOf(lv *level) float64 {
	// Every vertex is a singleton module: aggregates follow directly
	// from the global flow arrays, identically on every rank.
	var q, qlogq, qplogqp float64
	for v := 0; v < lv.idSpace; v++ {
		q += lv.exitP[v]
		qlogq += mapeq.PlogP(lv.exitP[v])
		qplogqp += mapeq.PlogP(lv.exitP[v] + lv.visit[v])
	}
	return mapeq.PlogP(q) - 2*qlogq - lv.vertexTerm + qplogqp
}

package core

import (
	"fmt"
	"time"

	"dinfomap/internal/graph"
	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/partition"
	"dinfomap/internal/trace"
)

// Config controls a distributed Infomap run.
type Config struct {
	// P is the number of simulated ranks. Must be >= 1.
	P int
	// DHigh is the delegate threshold: vertices with degree > DHigh are
	// duplicated on all ranks. <= 0 means the scaled default
	// max(P, 4*avgDegree); the paper's literal d_high = p assumes
	// Titan-scale processor counts (see Run).
	DHigh int
	// NoRebalance disables the partitioner's rebalancing pass (ablation).
	NoRebalance bool
	// NoMinLabel disables the minimum-label anti-bouncing rule (ablation:
	// demonstrates the vertex bouncing problem of Section 3.4).
	NoMinLabel bool
	// ApproxDelegates applies delegate moves directly on the winning
	// local delta-L (the paper's literal scheme) instead of the exact
	// two-round evaluation; see broadcastDelegates. Ablation only.
	ApproxDelegates bool
	// NoDamping disables the probabilistic deferral of cross-boundary
	// moves that desynchronizes simultaneous over-merging (ablation).
	NoDamping bool
	// NoDedup disables the isSent deduplication of Module_Info messages
	// (ablation: reproduces the duplicated-information problem of
	// Figure 3 and measurably inflates communication volume).
	NoDedup bool
	// Theta is the outer-loop MDL improvement threshold; <= 0 means 1e-10.
	Theta float64
	// MaxOuterIterations bounds optimize+merge rounds; <= 0 means 25.
	MaxOuterIterations int
	// MaxSweeps bounds synchronized sweeps inside one clustering stage;
	// <= 0 means 100.
	MaxSweeps int
	// StalenessBound selects the asynchronous sweep mode of stage 1:
	// with k >= 1, ranks proceed through sweep epochs against ghost
	// module statistics up to k epochs stale, sending Module_Info
	// partials eagerly and draining peers' packets opportunistically
	// between local move passes; a rank blocks only when the freshest
	// complete epoch would exceed the bound (see clusterAsync). 0 (the
	// default) is the fully synchronized loop, bit-for-bit identical to
	// runs before this knob existed. Stage 2 operates on the contracted
	// graph, whose sweeps are communication-cheap, and always runs
	// synchronously.
	StalenessBound int
	// Seed randomizes per-rank vertex visit order.
	Seed uint64
	// CostModel converts measured work/traffic into modeled times; the
	// zero value means trace.DefaultCostModel().
	CostModel trace.CostModel
	// Journal, when non-nil, receives a per-rank event record for every
	// phase of every synchronized sweep (see package obs). It must have
	// at least P rank slots; nil disables journaling at zero cost.
	Journal *obs.Journal
	// Recorder, when non-nil, receives the raw wait-state events (p2p
	// matches, barrier passages) of this process's ranks. Run creates
	// one itself when Journal is set and Recorder is nil; RunRank (one
	// rank per process) uses it as given, so a multi-process child can
	// record its rank's events and ship them to the launcher.
	Recorder *mpi.Recorder
}

func (c Config) withDefaults() Config {
	if c.P < 1 {
		c.P = 1
	}
	if c.Theta <= 0 {
		c.Theta = 1e-10
	}
	if c.MaxOuterIterations <= 0 {
		c.MaxOuterIterations = 25
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 100
	}
	if c.StalenessBound < 0 {
		c.StalenessBound = 0
	}
	if c.CostModel == (trace.CostModel{}) {
		c.CostModel = trace.DefaultCostModel()
	}
	return c
}

// Result reports a finished distributed run.
type Result struct {
	// Communities assigns each original vertex its final module (dense).
	Communities []int
	// NumModules is the number of final modules.
	NumModules int
	// Codelength is the final global MDL in bits, exactly comparable to
	// the sequential algorithm's (same Eq. 3, same vertex term).
	Codelength float64
	// InitialCodelength is L of the all-singleton partition.
	InitialCodelength float64
	// MDLTrace[k] is the global MDL after outer iteration k (Figure 4).
	MDLTrace []float64
	// MergeRate[k] is the fraction of original vertices eliminated by
	// merging in outer iteration k (Figure 5).
	MergeRate []float64
	// OuterIterations counts optimize+merge rounds (stage 1 is round 0).
	OuterIterations int

	// Stage1Wall / Stage2Wall are real wall-clock times of the two
	// clustering stages (all ranks interleaved on the host).
	Stage1Wall, Stage2Wall time.Duration
	// Stage1Modeled / Stage2Modeled are the alpha-beta modeled times
	// (max per-rank work per phase; see package trace).
	Stage1Modeled, Stage2Modeled time.Duration
	// PhaseModeled breaks stage-1 modeled time into the Figure 8 phases.
	PhaseModeled map[string]time.Duration
	// PhaseOps holds max-per-rank operation counts per phase.
	PhaseOps map[string]int64
	// Stage1Iterations / Stage2Iterations count synchronized sweeps.
	Stage1Iterations, Stage2Iterations int

	// PerRankPhase[r] is rank r's measured stage-1 cost per phase (the
	// raw inputs behind PhaseModeled, before the max-over-ranks).
	PerRankPhase []map[string]trace.RankCost
	// PerRankStage2[r] is rank r's total stage-2 cost.
	PerRankStage2 []trace.RankCost
	// PerRankStage2Phase[r] breaks rank r's stage-2 cost into phases
	// (the Figure-8 phases of the merged-level sweeps plus the
	// refresh-round and merge-shuffle spans).
	PerRankStage2Phase []map[string]trace.RankCost
	// PerRankWall1 / PerRankWall2 are each rank's host wall times per stage.
	PerRankWall1, PerRankWall2 []time.Duration
	// PerRankEvals[r] is rank r's delta-L evaluation count.
	PerRankEvals []int64
	// PerRankStaleness[r] is rank r's ghost-staleness histogram from the
	// asynchronous stage-1 sweeps: bucket s counts epochs swept against
	// module statistics s epochs stale (length StalenessBound+1; the
	// gate makes larger staleness impossible). Nil on synchronous runs.
	PerRankStaleness [][]int64

	// PerRankIterations[r] is rank r's per-outer-iteration cost/traffic
	// slices (stage 1 is outer 0, each merged level adds one): cumulative
	// counters diffed at iteration boundaries, never reset. The final
	// full-assignment gather happens after the last iteration, so the
	// slices sum to slightly less than CommStats[r].
	PerRankIterations [][]obs.IterationReport

	// CommStats is each rank's cumulative traffic.
	CommStats []mpi.Stats
	// WaitRecorder holds the run's raw wait-state events (p2p matches
	// and barrier arrival/release times) for critical-path analysis.
	// Non-nil only when the run journaled (Config.Journal set):
	// recording is kept out of benchmarked paths.
	WaitRecorder *mpi.Recorder
	// Transports holds each rank's wire-level transport counters on
	// multi-process runs (nil entries where a rank reported none; nil
	// slice on in-process runs, which have no wire).
	Transports []*mpi.TransportStats
	// Clocks holds the launcher's per-rank clock-offset estimates on
	// telemetry-enabled multi-process runs; nil otherwise.
	Clocks []obs.ClockEstimate
	// MaxRankBytes is the largest per-rank total byte count.
	MaxRankBytes int64
	// DeltaEvaluations is the global number of delta-L evaluations.
	DeltaEvaluations int64
	// Partition summarizes the delegate layout used (Figures 6-7).
	Partition partition.BalanceStats
}

// TotalModeled is the modeled end-to-end clustering time (both stages).
func (r *Result) TotalModeled() time.Duration { return r.Stage1Modeled + r.Stage2Modeled }

// Run executes the distributed Infomap algorithm on g with cfg.P
// simulated ranks and returns the combined result.
func Run(g *graph.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if n == 0 || g.TotalWeight() == 0 {
		res := &Result{Communities: make([]int, n), NumModules: n}
		for u := range res.Communities {
			res.Communities[u] = u
		}
		return res
	}

	runner := newRunState(g, &cfg)

	// Journaled runs also record raw wait-state events (anchored to the
	// journal epoch so they compare with span times) for the wait-state
	// and critical-path report sections.
	var runOpts []mpi.RunOpt
	rec := cfg.Recorder
	if rec == nil && cfg.Journal != nil {
		rec = mpi.NewRecorder(cfg.P, cfg.Journal.Epoch())
	}
	if rec != nil {
		runOpts = append(runOpts, mpi.WithRecorder(rec))
	}
	// End the live stream when the run ends, however it ends: deferred
	// so a panicking rank still leaves subscribers a terminal status
	// frame instead of a stream that never closes.
	defer cfg.Journal.Finish()
	stats := mpi.Run(cfg.P, runner.rankMain, runOpts...)
	cfg.Journal.Finish()

	// Package each simulated rank's slots as an artifact and assemble —
	// the same path the multi-process driver takes with one artifact per
	// child process.
	backing := make([]RankArtifact, cfg.P)
	arts := make([]*RankArtifact, cfg.P)
	for r := range arts {
		runner.fillArtifact(&backing[r], r, stats[r])
		arts[r] = &backing[r]
	}
	res, err := Assemble(cfg, arts)
	if err != nil {
		panicf("assembling in-process run: %v", err)
	}
	res.WaitRecorder = rec
	return res
}

// newRunState runs preprocessing (Algorithm 2, line 1) and sizes the
// per-rank slots. Delegate partitioning and flow initialization are
// deterministic in (g, cfg), which is what lets every process of a
// multi-process run recompute the identical layout without
// communicating. The flow arrays are the product of the distributed
// degree computation described in Section 3.3; ranks only ever read
// entries of vertices they see.
//
// Threshold default: the paper uses d_high = p, which on Titan
// (p in the thousands) delegates only the extreme tail. At this
// reproduction's processor counts (2-64) a literal d_high = p would
// delegate most vertices — delegates get only one coordinated move
// per synchronized round, so quality and convergence collapse. The
// default therefore keeps delegates in the tail: at least p, and at
// least several times the average degree (see DESIGN.md).
func newRunState(g *graph.Graph, cfg *Config) *runState {
	dHigh := cfg.DHigh
	if dHigh <= 0 {
		avgDeg := 2 * g.NumEdges() / maxInt(1, g.NumVertices())
		dHigh = maxInt(cfg.P, 4*avgDeg)
	}
	layout := partition.Delegate(g, cfg.P, partition.DelegateOptions{
		DHigh:       dHigh,
		NoRebalance: cfg.NoRebalance,
	})
	return &runState{
		g: g, cfg: cfg, layout: layout, flow: mapeq.NewVertexFlow(g),
		partStats:          layout.Stats(),
		perRankPhase:       make([]phaseCosts, cfg.P),
		perRankStage2:      make([]trace.RankCost, cfg.P),
		perRankStage2Phase: make([]phaseCosts, cfg.P),
		perRankWall1:       make([]time.Duration, cfg.P),
		perRankWall2:       make([]time.Duration, cfg.P),
		perRankEvals:       make([]int64, cfg.P),
		perRankIters:       make([][]obs.IterationReport, cfg.P),
		perRankStale:       make([][]int64, cfg.P),
	}
}

// runState carries inputs and cross-rank outputs of one run. In-process
// runs share one across all simulated ranks; a multi-process rank has
// its own and only ever fills its slot. The output fields are written by
// rank 0 only (all ranks hold identical copies at the end, a property
// the tests assert).
type runState struct {
	g      *graph.Graph
	cfg    *Config
	layout *partition.Layout
	flow   *mapeq.VertexFlow

	// partStats is the layout's balance summary, computed once and
	// stamped into every artifact.
	partStats partition.BalanceStats

	// Per-rank measurement slots; each rank writes only its own index.
	perRankPhase       []phaseCosts
	perRankStage2      []trace.RankCost
	perRankStage2Phase []phaseCosts
	perRankWall1       []time.Duration
	perRankWall2       []time.Duration
	perRankEvals       []int64
	perRankIters       [][]obs.IterationReport
	perRankStale       [][]int64

	out rankOutput
}

// rankOutput is what rank 0 publishes back to Run (these values are
// identical on every rank by construction; tests assert this).
type rankOutput struct {
	communities              []int
	mdlTrace                 []float64
	mergeRate                []float64
	initialL                 float64
	stage1Iters, stage2Iters int
}

func ownerOf(v, p int) int { return v % p }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func checkf(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("core: internal invariant violated: "+format, args...))
	}
}

// panicf is checkf's cold half for hot loops: guarding with a plain
// comparison and calling panicf only on failure keeps the ...any
// arguments from being boxed on every iteration the check passes.
func panicf(format string, args ...any) {
	panic(fmt.Sprintf("core: internal invariant violated: "+format, args...))
}

package core

import (
	"fmt"
	"time"

	"dinfomap/internal/graph"
	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/partition"
	"dinfomap/internal/trace"
)

// Config controls a distributed Infomap run.
type Config struct {
	// P is the number of simulated ranks. Must be >= 1.
	P int
	// DHigh is the delegate threshold: vertices with degree > DHigh are
	// duplicated on all ranks. <= 0 means the scaled default
	// max(P, 4*avgDegree); the paper's literal d_high = p assumes
	// Titan-scale processor counts (see Run).
	DHigh int
	// NoRebalance disables the partitioner's rebalancing pass (ablation).
	NoRebalance bool
	// NoMinLabel disables the minimum-label anti-bouncing rule (ablation:
	// demonstrates the vertex bouncing problem of Section 3.4).
	NoMinLabel bool
	// ApproxDelegates applies delegate moves directly on the winning
	// local delta-L (the paper's literal scheme) instead of the exact
	// two-round evaluation; see broadcastDelegates. Ablation only.
	ApproxDelegates bool
	// NoDamping disables the probabilistic deferral of cross-boundary
	// moves that desynchronizes simultaneous over-merging (ablation).
	NoDamping bool
	// NoDedup disables the isSent deduplication of Module_Info messages
	// (ablation: reproduces the duplicated-information problem of
	// Figure 3 and measurably inflates communication volume).
	NoDedup bool
	// Theta is the outer-loop MDL improvement threshold; <= 0 means 1e-10.
	Theta float64
	// MaxOuterIterations bounds optimize+merge rounds; <= 0 means 25.
	MaxOuterIterations int
	// MaxSweeps bounds synchronized sweeps inside one clustering stage;
	// <= 0 means 100.
	MaxSweeps int
	// Seed randomizes per-rank vertex visit order.
	Seed uint64
	// CostModel converts measured work/traffic into modeled times; the
	// zero value means trace.DefaultCostModel().
	CostModel trace.CostModel
	// Journal, when non-nil, receives a per-rank event record for every
	// phase of every synchronized sweep (see package obs). It must have
	// at least P rank slots; nil disables journaling at zero cost.
	Journal *obs.Journal
}

func (c Config) withDefaults() Config {
	if c.P < 1 {
		c.P = 1
	}
	if c.Theta <= 0 {
		c.Theta = 1e-10
	}
	if c.MaxOuterIterations <= 0 {
		c.MaxOuterIterations = 25
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 100
	}
	if c.CostModel == (trace.CostModel{}) {
		c.CostModel = trace.DefaultCostModel()
	}
	return c
}

// Result reports a finished distributed run.
type Result struct {
	// Communities assigns each original vertex its final module (dense).
	Communities []int
	// NumModules is the number of final modules.
	NumModules int
	// Codelength is the final global MDL in bits, exactly comparable to
	// the sequential algorithm's (same Eq. 3, same vertex term).
	Codelength float64
	// InitialCodelength is L of the all-singleton partition.
	InitialCodelength float64
	// MDLTrace[k] is the global MDL after outer iteration k (Figure 4).
	MDLTrace []float64
	// MergeRate[k] is the fraction of original vertices eliminated by
	// merging in outer iteration k (Figure 5).
	MergeRate []float64
	// OuterIterations counts optimize+merge rounds (stage 1 is round 0).
	OuterIterations int

	// Stage1Wall / Stage2Wall are real wall-clock times of the two
	// clustering stages (all ranks interleaved on the host).
	Stage1Wall, Stage2Wall time.Duration
	// Stage1Modeled / Stage2Modeled are the alpha-beta modeled times
	// (max per-rank work per phase; see package trace).
	Stage1Modeled, Stage2Modeled time.Duration
	// PhaseModeled breaks stage-1 modeled time into the Figure 8 phases.
	PhaseModeled map[string]time.Duration
	// PhaseOps holds max-per-rank operation counts per phase.
	PhaseOps map[string]int64
	// Stage1Iterations / Stage2Iterations count synchronized sweeps.
	Stage1Iterations, Stage2Iterations int

	// PerRankPhase[r] is rank r's measured stage-1 cost per phase (the
	// raw inputs behind PhaseModeled, before the max-over-ranks).
	PerRankPhase []map[string]trace.RankCost
	// PerRankStage2[r] is rank r's total stage-2 cost.
	PerRankStage2 []trace.RankCost
	// PerRankStage2Phase[r] breaks rank r's stage-2 cost into phases
	// (the Figure-8 phases of the merged-level sweeps plus the
	// refresh-round and merge-shuffle spans).
	PerRankStage2Phase []map[string]trace.RankCost
	// PerRankWall1 / PerRankWall2 are each rank's host wall times per stage.
	PerRankWall1, PerRankWall2 []time.Duration
	// PerRankEvals[r] is rank r's delta-L evaluation count.
	PerRankEvals []int64

	// PerRankIterations[r] is rank r's per-outer-iteration cost/traffic
	// slices (stage 1 is outer 0, each merged level adds one): cumulative
	// counters diffed at iteration boundaries, never reset. The final
	// full-assignment gather happens after the last iteration, so the
	// slices sum to slightly less than CommStats[r].
	PerRankIterations [][]obs.IterationReport

	// CommStats is each rank's cumulative traffic.
	CommStats []mpi.Stats
	// WaitRecorder holds the run's raw wait-state events (p2p matches
	// and barrier arrival/release times) for critical-path analysis.
	// Non-nil only when the run journaled (Config.Journal set):
	// recording is kept out of benchmarked paths.
	WaitRecorder *mpi.Recorder
	// MaxRankBytes is the largest per-rank total byte count.
	MaxRankBytes int64
	// DeltaEvaluations is the global number of delta-L evaluations.
	DeltaEvaluations int64
	// Partition summarizes the delegate layout used (Figures 6-7).
	Partition partition.BalanceStats
}

// TotalModeled is the modeled end-to-end clustering time (both stages).
func (r *Result) TotalModeled() time.Duration { return r.Stage1Modeled + r.Stage2Modeled }

// Run executes the distributed Infomap algorithm on g with cfg.P
// simulated ranks and returns the combined result.
func Run(g *graph.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	res := &Result{Communities: make([]int, n)}
	for u := range res.Communities {
		res.Communities[u] = u
	}
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if n == 0 || g.TotalWeight() == 0 {
		res.NumModules = n
		return res
	}

	// ---- Preprocessing (Algorithm 2, line 1) ----
	// Delegate partitioning plus flow initialization. The flow arrays are
	// the product of the distributed degree computation described in
	// Section 3.3; ranks only ever read entries of vertices they see.
	//
	// Threshold default: the paper uses d_high = p, which on Titan
	// (p in the thousands) delegates only the extreme tail. At this
	// reproduction's processor counts (2-64) a literal d_high = p would
	// delegate most vertices — delegates get only one coordinated move
	// per synchronized round, so quality and convergence collapse. The
	// default therefore keeps delegates in the tail: at least p, and at
	// least several times the average degree (see DESIGN.md).
	dHigh := cfg.DHigh
	if dHigh <= 0 {
		avgDeg := 2 * g.NumEdges() / maxInt(1, n)
		dHigh = maxInt(cfg.P, 4*avgDeg)
	}
	layout := partition.Delegate(g, cfg.P, partition.DelegateOptions{
		DHigh:       dHigh,
		NoRebalance: cfg.NoRebalance,
	})
	res.Partition = layout.Stats()
	flow := mapeq.NewVertexFlow(g)

	runner := &runState{
		g: g, cfg: &cfg, layout: layout, flow: flow, res: res,
		perRankPhase:       make([]phaseCosts, cfg.P),
		perRankStage2:      make([]trace.RankCost, cfg.P),
		perRankStage2Phase: make([]phaseCosts, cfg.P),
		perRankWall1:       make([]time.Duration, cfg.P),
		perRankWall2:       make([]time.Duration, cfg.P),
		perRankEvals:       make([]int64, cfg.P),
		perRankIters:       make([][]obs.IterationReport, cfg.P),
	}
	// Journaled runs also record raw wait-state events (anchored to the
	// journal epoch so they compare with span times) for the wait-state
	// and critical-path report sections.
	var runOpts []mpi.RunOpt
	if cfg.Journal != nil {
		res.WaitRecorder = mpi.NewRecorder(cfg.P, cfg.Journal.Epoch())
		runOpts = append(runOpts, mpi.WithRecorder(res.WaitRecorder))
	}
	stats := mpi.Run(cfg.P, runner.rankMain, runOpts...)
	// End the live stream: subscribers drain their rings and receive
	// the final status snapshot.
	cfg.Journal.Finish()
	res.CommStats = stats
	for _, s := range stats {
		if b := s.TotalBytes(); b > res.MaxRankBytes {
			res.MaxRankBytes = b
		}
	}

	// Collect the per-rank outputs assembled by rankMain.
	runner.finish(res)
	return res
}

// runState carries inputs and cross-rank outputs of one Run. The output
// fields are written by rank 0 only (all ranks hold identical copies at
// the end, a property the tests assert).
type runState struct {
	g      *graph.Graph
	cfg    *Config
	layout *partition.Layout
	flow   *mapeq.VertexFlow
	res    *Result

	// Per-rank measurement slots; each rank writes only its own index.
	perRankPhase       []phaseCosts
	perRankStage2      []trace.RankCost
	perRankStage2Phase []phaseCosts
	perRankWall1       []time.Duration
	perRankWall2       []time.Duration
	perRankEvals       []int64
	perRankIters       [][]obs.IterationReport

	out rankOutput
}

// rankOutput is what rank 0 publishes back to Run (these values are
// identical on every rank by construction; tests assert this).
type rankOutput struct {
	communities              []int
	mdlTrace                 []float64
	mergeRate                []float64
	initialL                 float64
	stage1Iters, stage2Iters int
}

func (rs *runState) finish(res *Result) {
	o := &rs.out
	res.Communities = o.communities
	dense, k := graph.Renumber(res.Communities)
	res.Communities = dense
	res.NumModules = k
	res.MDLTrace = o.mdlTrace
	res.MergeRate = o.mergeRate
	res.InitialCodelength = o.initialL
	if len(o.mdlTrace) > 0 {
		res.Codelength = o.mdlTrace[len(o.mdlTrace)-1]
	}
	res.OuterIterations = len(o.mdlTrace)
	res.Stage1Iterations = o.stage1Iters
	res.Stage2Iterations = o.stage2Iters

	// Publish the raw per-rank measurements (telemetry consumers build
	// the JSON run report from these).
	res.PerRankPhase = make([]map[string]trace.RankCost, rs.cfg.P)
	for r := range rs.perRankPhase {
		res.PerRankPhase[r] = rs.perRankPhase[r]
	}
	res.PerRankStage2 = rs.perRankStage2
	res.PerRankStage2Phase = make([]map[string]trace.RankCost, rs.cfg.P)
	for r := range rs.perRankStage2Phase {
		res.PerRankStage2Phase[r] = rs.perRankStage2Phase[r]
	}
	res.PerRankWall1 = rs.perRankWall1
	res.PerRankWall2 = rs.perRankWall2
	res.PerRankEvals = rs.perRankEvals
	res.PerRankIterations = rs.perRankIters

	// Wall times: the slowest rank gates each stage.
	for r := 0; r < rs.cfg.P; r++ {
		if rs.perRankWall1[r] > res.Stage1Wall {
			res.Stage1Wall = rs.perRankWall1[r]
		}
		if rs.perRankWall2[r] > res.Stage2Wall {
			res.Stage2Wall = rs.perRankWall2[r]
		}
		res.DeltaEvaluations += rs.perRankEvals[r]
	}

	// Modeled times: per phase, take the slowest rank's accumulated
	// cost (the bulk-synchronous steps are gated by the slowest rank;
	// aggregating at stage granularity is accurate because delegate
	// partitioning keeps ranks balanced within each iteration).
	model := rs.cfg.CostModel
	res.PhaseModeled = make(map[string]time.Duration)
	res.PhaseOps = make(map[string]int64)
	phases := []string{
		trace.PhaseFindBestModule, trace.PhaseBcastDelegates,
		trace.PhaseSwapBoundary, trace.PhaseRefreshRound1,
		trace.PhaseRefreshRound2, trace.PhaseOther,
	}
	for _, ph := range phases {
		var worst time.Duration
		var worstOps int64
		for r := 0; r < rs.cfg.P; r++ {
			c := rs.perRankPhase[r][ph]
			if t := model.Time(c); t > worst {
				worst = t
			}
			if c.Ops > worstOps {
				worstOps = c.Ops
			}
		}
		res.PhaseModeled[ph] = worst
		res.PhaseOps[ph] = worstOps
		res.Stage1Modeled += worst
	}
	var worst2 time.Duration
	for r := 0; r < rs.cfg.P; r++ {
		if t := model.Time(rs.perRankStage2[r]); t > worst2 {
			worst2 = t
		}
	}
	res.Stage2Modeled = worst2
}

func ownerOf(v, p int) int { return v % p }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func checkf(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("core: internal invariant violated: "+format, args...))
	}
}

// panicf is checkf's cold half for hot loops: guarding with a plain
// comparison and calling panicf only on failure keeps the ...any
// arguments from being boxed on every iteration the check passes.
func panicf(format string, args ...any) {
	panic(fmt.Sprintf("core: internal invariant violated: "+format, args...))
}

// Package core implements the paper's contribution: the distributed
// Infomap algorithm (Algorithms 2 and 3), built on delegate partitioning
// (package partition) and the message-passing runtime (package mpi).
//
// # Protocol overview
//
// The algorithm is bulk-synchronous. Each clustering iteration on each
// rank runs four phases, matching the paper's Figure 8 breakdown:
//
//	FindBestModule      sweep local vertices, evaluate delta-L against the
//	                    locally known module table, apply low-degree moves
//	                    (minimum-label rule for boundary targets), record
//	                    the best local candidate move of each delegate
//	BroadcastDelegates  allgather delegate candidates; every rank applies,
//	                    per hub, the move with the global minimum delta-L
//	SwapBoundaryInfo    alltoallv (a) updated community ids of owned
//	                    boundary vertices to the ranks that ghost them and
//	                    (b) Module_Info records (List 1) so each rank's
//	                    module table becomes globally consistent again
//	Other               apply received updates, rebuild authoritative
//	                    module statistics, Allreduce the global MDL
//
// Module statistics are made exact at every iteration boundary: each
// rank computes partial (sumPr, exitPr, members) for the modules its
// arcs and owned vertices touch, sends the partials to the module's home
// rank (module id mod p), and receives back the authoritative totals for
// every module it asked about. The isSent flag of List 1 suppresses
// resending stats that have not changed since the last send to that
// subscriber (ablation NoDedup disables this and additionally sends one
// record per boundary vertex instead of per unique module, reproducing
// the duplicated-module-information problem of the paper's Figure 3).
package core

import "dinfomap/internal/mpi"

// ModuleInfo is the wire form of the paper's List 1 message interface.
type ModuleInfo struct {
	ModID      int     // module ID
	SumPr      float64 // sum of visit probabilities of the module
	ExitPr     float64 // exit probability of the module
	NumMembers int     // vertex count in the module
	IsSent     bool    // stats already delivered to this receiver earlier
}

// Wire format: a leading isSent flag byte, then the module id, then —
// only when isSent is false — the full statistics. The short form is
// what makes the isSent deduplication save bytes: 9 bytes instead of 33.
const (
	moduleInfoWireSize      = 1 + 8 + 8 + 8 + 8
	moduleInfoShortWireSize = 1 + 8
)

func (m ModuleInfo) encode(e *mpi.Encoder) {
	e.PutBool(false)
	e.PutInt(m.ModID)
	e.PutF64(m.SumPr)
	e.PutF64(m.ExitPr)
	e.PutInt(m.NumMembers)
}

// encodeShort writes only the id and the isSent marker, telling the
// receiver its existing copy of the module statistics is still current.
func (m ModuleInfo) encodeShort(e *mpi.Encoder) {
	e.PutBool(true)
	e.PutInt(m.ModID)
}

func decodeModuleInfoMaybeShort(d *mpi.Decoder) ModuleInfo {
	if d.Bool() {
		return ModuleInfo{ModID: d.Int(), IsSent: true}
	}
	return ModuleInfo{
		ModID:      d.Int(),
		SumPr:      d.F64(),
		ExitPr:     d.F64(),
		NumMembers: d.Int(),
	}
}

// hubCandidate is one rank's best local move for one delegate: the
// payload of the BroadcastDelegates phase.
type hubCandidate struct {
	Hub    int
	Target int     // proposed destination module
	DeltaL float64 // local delta-L of the proposal (negative = improves)
}

func (h hubCandidate) encode(e *mpi.Encoder) {
	e.PutInt(h.Hub)
	e.PutInt(h.Target)
	e.PutF64(h.DeltaL)
}

func decodeHubCandidate(d *mpi.Decoder) hubCandidate {
	return hubCandidate{Hub: d.Int(), Target: d.Int(), DeltaL: d.F64()}
}

// ghostUpdate carries the new community of one boundary vertex.
type ghostUpdate struct {
	Vertex int
	Comm   int
}

func (g ghostUpdate) encode(e *mpi.Encoder) {
	e.PutInt(g.Vertex)
	e.PutInt(g.Comm)
}

func decodeGhostUpdate(d *mpi.Decoder) ghostUpdate {
	return ghostUpdate{Vertex: d.Int(), Comm: d.Int()}
}

// modulePartial is one rank's contribution to a module's statistics,
// sent to the module's home rank. A partial with all-zero stats acts as
// a pure subscription request.
type modulePartial struct {
	ModID   int
	SumPr   float64
	ExitPr  float64
	Members int
}

func (m modulePartial) encode(e *mpi.Encoder) {
	e.PutInt(m.ModID)
	e.PutF64(m.SumPr)
	e.PutF64(m.ExitPr)
	e.PutInt(m.Members)
}

func decodeModulePartial(d *mpi.Decoder) modulePartial {
	return modulePartial{ModID: d.Int(), SumPr: d.F64(), ExitPr: d.F64(), Members: d.Int()}
}

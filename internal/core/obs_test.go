package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

// runJournaled runs a small deterministic graph with journaling on.
func runJournaled(t *testing.T, p int) (*obs.Journal, *Result, Config) {
	t.Helper()
	g, _ := planted(7, 400, 8, 0.2)
	j := obs.NewJournal(p)
	cfg := Config{P: p, Seed: 3, Journal: j}
	res := Run(g, cfg)
	return j, res, cfg
}

func TestJournalRecordsAllRanksAndPhases(t *testing.T) {
	const p = 4
	j, res, _ := runJournaled(t, p)

	if res.NumModules < 2 {
		t.Fatalf("degenerate run: %d modules", res.NumModules)
	}
	for r := 0; r < p; r++ {
		evs := j.Rank(r).Events()
		if len(evs) == 0 {
			t.Fatalf("rank %d journaled no events", r)
		}
		// Per-rank timestamps must be monotone in emission order, and
		// every span must be well-formed.
		seen := map[obs.PhaseID]bool{}
		prev := evs[0].Start
		for i, ev := range evs {
			if ev.Start < prev {
				t.Fatalf("rank %d event %d starts at %v before previous start %v",
					r, i, ev.Start, prev)
			}
			prev = ev.Start
			if ev.End < ev.Start {
				t.Fatalf("rank %d event %d: End %v < Start %v", r, i, ev.End, ev.Start)
			}
			if ev.Stage != 1 && ev.Stage != 2 {
				t.Fatalf("rank %d event %d: bad stage %d", r, i, ev.Stage)
			}
			seen[ev.Phase] = true
		}
		for _, ph := range []obs.PhaseID{
			obs.PhaseFindBestModule, obs.PhaseBcastDelegates,
			obs.PhaseSwapBoundary, obs.PhaseOther,
		} {
			if !seen[ph] {
				t.Errorf("rank %d journal missing phase %s", r, ph.Name())
			}
		}
	}

	// The journal's per-iteration delta-L evals must sum to the run's
	// global count (the journal and the cost accounting measure the same
	// execution).
	var journaled int64
	for r := 0; r < p; r++ {
		for _, ev := range j.Rank(r).Events() {
			if ev.Phase == obs.PhaseFindBestModule {
				journaled += ev.Ops
			}
		}
	}
	if journaled != res.DeltaEvaluations {
		t.Fatalf("journaled evals %d != result DeltaEvaluations %d",
			journaled, res.DeltaEvaluations)
	}
}

func TestJournalChromeExportFromRealRun(t *testing.T) {
	const p = 3
	j, _, _ := runJournaled(t, p)

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, j); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	rows := map[int]bool{}
	phases := map[string]bool{}
	lastTs := map[int]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				rows[ev.Tid] = true
			}
		case "X":
			phases[ev.Name] = true
			if ev.Ts < lastTs[ev.Tid] {
				t.Fatalf("tid %d timestamps not monotonic: %v after %v",
					ev.Tid, ev.Ts, lastTs[ev.Tid])
			}
			lastTs[ev.Tid] = ev.Ts
		}
	}
	if len(rows) != p {
		t.Fatalf("trace has %d timeline rows, want %d", len(rows), p)
	}
	for _, ph := range []string{
		trace.PhaseFindBestModule, trace.PhaseBcastDelegates,
		trace.PhaseSwapBoundary, trace.PhaseOther,
	} {
		if !phases[ph] {
			t.Errorf("trace missing %s spans", ph)
		}
	}
}

func TestBuildReportFromRealRun(t *testing.T) {
	const p = 4
	_, res, cfg := runJournaled(t, p)
	g, _ := planted(7, 400, 8, 0.2)

	rep := BuildReport(g, cfg, res)
	if rep.Schema != obs.ReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Convergence.MDLTrace) != len(res.MDLTrace) {
		t.Fatalf("report MDL trace %v != result %v", rep.Convergence.MDLTrace, res.MDLTrace)
	}
	if len(rep.Ranks) != p {
		t.Fatalf("report has %d ranks, want %d", len(rep.Ranks), p)
	}
	for r, rr := range rep.Ranks {
		if rr.Rank != r {
			t.Fatalf("rank %d slot holds rank %d", r, rr.Rank)
		}
		if len(rr.Phases) == 0 {
			t.Fatalf("rank %d has no phase costs", r)
		}
		for ph, c := range rr.Phases {
			want := res.PerRankPhase[r][ph]
			if c.Ops != want.Ops || c.Msgs != want.Msgs || c.Bytes != want.Bytes {
				t.Fatalf("rank %d phase %s cost %+v != result %+v", r, ph, c, want)
			}
		}
	}
	// JSON round trip through the public parser.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Quality.Codelength != res.Codelength {
		t.Fatalf("codelength %v lost in round trip (got %v)",
			res.Codelength, back.Quality.Codelength)
	}
}

func TestRunWithoutJournalPublishesPerRankCosts(t *testing.T) {
	g, _ := planted(9, 300, 6, 0.2)
	res := Run(g, Config{P: 3, Seed: 5})
	if len(res.PerRankPhase) != 3 || len(res.PerRankStage2) != 3 {
		t.Fatalf("per-rank slices missing: %d, %d",
			len(res.PerRankPhase), len(res.PerRankStage2))
	}
	var evals int64
	for r := 0; r < 3; r++ {
		evals += res.PerRankEvals[r]
	}
	if evals != res.DeltaEvaluations {
		t.Fatalf("per-rank evals %d != total %d", evals, res.DeltaEvaluations)
	}
}

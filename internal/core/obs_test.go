package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

// runJournaled runs a small deterministic graph with journaling on.
func runJournaled(t *testing.T, p int) (*obs.Journal, *Result, Config) {
	t.Helper()
	g, _ := planted(7, 400, 8, 0.2)
	j := obs.NewJournal(p)
	cfg := Config{P: p, Seed: 3, Journal: j}
	res := Run(g, cfg)
	return j, res, cfg
}

func TestJournalRecordsAllRanksAndPhases(t *testing.T) {
	const p = 4
	j, res, _ := runJournaled(t, p)

	if res.NumModules < 2 {
		t.Fatalf("degenerate run: %d modules", res.NumModules)
	}
	for r := 0; r < p; r++ {
		evs := j.Rank(r).Events()
		if len(evs) == 0 {
			t.Fatalf("rank %d journaled no events", r)
		}
		// Per-rank timestamps must be monotone in emission order, and
		// every span must be well-formed.
		seen := map[obs.PhaseID]bool{}
		prev := evs[0].Start
		for i, ev := range evs {
			if ev.Start < prev {
				t.Fatalf("rank %d event %d starts at %v before previous start %v",
					r, i, ev.Start, prev)
			}
			prev = ev.Start
			if ev.End < ev.Start {
				t.Fatalf("rank %d event %d: End %v < Start %v", r, i, ev.End, ev.Start)
			}
			if ev.Stage != 1 && ev.Stage != 2 {
				t.Fatalf("rank %d event %d: bad stage %d", r, i, ev.Stage)
			}
			seen[ev.Phase] = true
		}
		for _, ph := range []obs.PhaseID{
			obs.PhaseFindBestModule, obs.PhaseBcastDelegates,
			obs.PhaseSwapBoundary, obs.PhaseOther,
		} {
			if !seen[ph] {
				t.Errorf("rank %d journal missing phase %s", r, ph.Name())
			}
		}
	}

	// The journal's per-iteration delta-L evals must sum to the run's
	// global count (the journal and the cost accounting measure the same
	// execution).
	var journaled int64
	for r := 0; r < p; r++ {
		for _, ev := range j.Rank(r).Events() {
			if ev.Phase == obs.PhaseFindBestModule {
				journaled += ev.Ops
			}
		}
	}
	if journaled != res.DeltaEvaluations {
		t.Fatalf("journaled evals %d != result DeltaEvaluations %d",
			journaled, res.DeltaEvaluations)
	}
}

func TestJournalChromeExportFromRealRun(t *testing.T) {
	const p = 3
	j, _, _ := runJournaled(t, p)

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, j); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	rows := map[int]bool{}
	phases := map[string]bool{}
	lastTs := map[int]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				rows[ev.Tid] = true
			}
		case "X":
			phases[ev.Name] = true
			if ev.Ts < lastTs[ev.Tid] {
				t.Fatalf("tid %d timestamps not monotonic: %v after %v",
					ev.Tid, ev.Ts, lastTs[ev.Tid])
			}
			lastTs[ev.Tid] = ev.Ts
		}
	}
	if len(rows) != p {
		t.Fatalf("trace has %d timeline rows, want %d", len(rows), p)
	}
	for _, ph := range []string{
		trace.PhaseFindBestModule, trace.PhaseBcastDelegates,
		trace.PhaseSwapBoundary, trace.PhaseOther,
	} {
		if !phases[ph] {
			t.Errorf("trace missing %s spans", ph)
		}
	}
}

func TestBuildReportFromRealRun(t *testing.T) {
	const p = 4
	_, res, cfg := runJournaled(t, p)
	g, _ := planted(7, 400, 8, 0.2)

	rep := BuildReport(g, cfg, res)
	if rep.Schema != obs.ReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Convergence.MDLTrace) != len(res.MDLTrace) {
		t.Fatalf("report MDL trace %v != result %v", rep.Convergence.MDLTrace, res.MDLTrace)
	}
	if len(rep.Ranks) != p {
		t.Fatalf("report has %d ranks, want %d", len(rep.Ranks), p)
	}
	for r, rr := range rep.Ranks {
		if rr.Rank != r {
			t.Fatalf("rank %d slot holds rank %d", r, rr.Rank)
		}
		if len(rr.Phases) == 0 {
			t.Fatalf("rank %d has no phase costs", r)
		}
		for ph, c := range rr.Phases {
			want := res.PerRankPhase[r][ph]
			if c.Ops != want.Ops || c.Msgs != want.Msgs || c.Bytes != want.Bytes {
				t.Fatalf("rank %d phase %s cost %+v != result %+v", r, ph, c, want)
			}
		}
	}
	// JSON round trip through the public parser.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Quality.Codelength != res.Codelength {
		t.Fatalf("codelength %v lost in round trip (got %v)",
			res.Codelength, back.Quality.Codelength)
	}
}

// TestStageInternalSpansJournaled is the regression lock for the span
// split: the refresh rounds and the merge shuffle must appear as
// first-class spans, and with them carved out, the catch-all Other
// span may no longer dominate the journal's measured wall time.
func TestStageInternalSpansJournaled(t *testing.T) {
	const p = 4
	j, res, cfg := runJournaled(t, p)
	if res.OuterIterations < 2 {
		t.Fatalf("need a 2-level run to cover merge-shuffle, got %d outer iterations",
			res.OuterIterations)
	}

	var otherWall, totalWall int64
	for r := 0; r < p; r++ {
		seen := map[obs.PhaseID]bool{}
		for _, ev := range j.Rank(r).Events() {
			seen[ev.Phase] = true
			totalWall += int64(ev.Dur())
			if ev.Phase == obs.PhaseOther {
				otherWall += int64(ev.Dur())
			}
			if ev.Phase == obs.PhaseMergeShuffle && ev.Iter != -1 {
				t.Errorf("rank %d merge-shuffle span has Iter %d, want -1", r, ev.Iter)
			}
		}
		for _, ph := range []obs.PhaseID{
			obs.PhaseRefreshRound1, obs.PhaseRefreshRound2, obs.PhaseMergeShuffle,
		} {
			if !seen[ph] {
				t.Errorf("rank %d journal missing %s span", r, ph.Name())
			}
		}
	}
	// Other now covers only the convergence allreduce; with the refresh
	// rounds and merge shuffle split out it cannot plausibly account for
	// most of the measured wall time.
	if totalWall == 0 {
		t.Fatal("journal measured zero wall time")
	}
	if share := float64(otherWall) / float64(totalWall); share > 0.5 {
		t.Fatalf("Other wall-share %.2f exceeds sanity threshold 0.5", share)
	}

	// The new spans flow through to the report: stage-2 phase breakdown
	// and measured per-phase walls.
	g, _ := planted(7, 400, 8, 0.2)
	rep := BuildReport(g, cfg, res)
	if len(rep.Timing.PhaseWallNs) == 0 {
		t.Fatal("journaled run produced no Timing.PhaseWallNs")
	}
	for _, ph := range []string{trace.PhaseRefreshRound1, trace.PhaseRefreshRound2,
		trace.PhaseMergeShuffle} {
		if _, ok := rep.Timing.PhaseWallNs[ph]; !ok {
			t.Errorf("Timing.PhaseWallNs missing %s", ph)
		}
	}
	for r, rr := range rep.Ranks {
		if _, ok := rr.Stage2Phases[trace.PhaseMergeShuffle]; !ok {
			t.Errorf("rank %d report missing merge-shuffle in Stage2Phases", r)
		}
		if _, ok := rr.Phases[trace.PhaseRefreshRound1]; !ok {
			t.Errorf("rank %d report missing refresh-round1 in stage-1 Phases", r)
		}
		if len(rr.PhaseWallNs) == 0 {
			t.Errorf("rank %d report missing PhaseWallNs", r)
		}
	}
}

func TestRunWithoutJournalPublishesPerRankCosts(t *testing.T) {
	g, _ := planted(9, 300, 6, 0.2)
	res := Run(g, Config{P: 3, Seed: 5})
	if len(res.PerRankPhase) != 3 || len(res.PerRankStage2) != 3 {
		t.Fatalf("per-rank slices missing: %d, %d",
			len(res.PerRankPhase), len(res.PerRankStage2))
	}
	var evals int64
	for r := 0; r < 3; r++ {
		evals += res.PerRankEvals[r]
	}
	if evals != res.DeltaEvaluations {
		t.Fatalf("per-rank evals %d != total %d", evals, res.DeltaEvaluations)
	}
}

package core

import (
	"dinfomap/internal/graph"
	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/partition"
)

// BenchLevel is a retained single-rank stage-1 level used by the
// benchmark suite and the allocation-budget tests to drive the hot
// paths (sweep passes, Module_Info refresh rounds) in isolation,
// outside a full Run. With p = 1 every collective self-completes, so
// the level's communicator stays usable after mpi.Run returns.
type BenchLevel struct {
	lv    *level
	s     *sweepScratch
	costs phaseCosts
	as    *asyncState
}

// NewBenchLevel builds a single-rank level over g with singleton
// assignments and exact refresh-time aggregates, ready for SweepPass
// and Refresh calls. The delegate threshold is set above any degree so
// the level has no hubs (hub coordination is pointless at p = 1).
func NewBenchLevel(g *graph.Graph, seed uint64) *BenchLevel {
	cfg := Config{P: 1, Seed: seed}.withDefaults()
	layout := partition.Delegate(g, 1, partition.DelegateOptions{DHigh: 1 << 30})
	flow := mapeq.NewVertexFlow(g)
	var lv *level
	mpi.Run(1, func(c *mpi.Comm) {
		lv = newStage1Level(c, &cfg, layout, flow.P, flow.Exit, flow.Norm(),
			flow.SumPlogpP, cfg.Seed)
	})
	b := &BenchLevel{lv: lv, s: lv.newScratch(), costs: make(phaseCosts)}
	b.lv.refresh(b.costs, -1)
	return b
}

// SweepPass runs one local move pass over the level's vertices and
// returns the number of moves applied. Calling it until it returns 0
// reaches the steady state where passes only scan and evaluate.
func (b *BenchLevel) SweepPass() int {
	moves, _, _ := b.lv.sweep(b.s, 1)
	return moves
}

// Refresh runs one Module_Info refresh: partials to module homes,
// authoritative stats back, and the closing MDL reduction.
func (b *BenchLevel) Refresh() { b.lv.refresh(b.costs, 0) }

// AsyncEpoch runs one bounded-staleness epoch round minus the sweep:
// the eager partial encode + epoch broadcast bookkeeping, an
// opportunistic drain, and the accumulate/materialize of the newest
// complete epoch — the exchange hot path clusterAsync adds over the
// synchronized loop. At p = 1 every epoch completes immediately, so
// each call exercises the full encode/decode/rebuild cycle.
func (b *BenchLevel) AsyncEpoch() {
	if b.as == nil {
		b.as = newAsyncState(b.lv)
	}
	b.as.sendEpoch(0, nil)
	b.as.drain()
	b.as.processReady()
}

// BenchCodecRound encodes recs into e (reset first) and decodes them
// all back through d, returning the number of records decoded. It is
// the Module_Info wire round used by the codec benchmarks and the
// allocation-budget tests: with a warm encoder and a reused decoder the
// round allocates nothing.
func BenchCodecRound(e *mpi.Encoder, d *mpi.Decoder, recs []ModuleInfo) int {
	e.Reset()
	for _, m := range recs {
		if m.IsSent {
			m.encodeShort(e)
		} else {
			m.encode(e)
		}
	}
	d.Reset(e.Bytes())
	decoded := 0
	for d.Remaining() > 0 {
		_ = decodeModuleInfoMaybeShort(d)
		decoded++
	}
	return decoded
}

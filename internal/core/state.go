package core

import (
	"dinfomap/internal/gen"
	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/partition"
	"dinfomap/internal/trace"
)

// level is one rank's state for one clustering level: the level-0 graph
// under delegate partitioning (stage 1), or a merged graph under 1D
// partitioning (stage 2 and deeper).
//
// Vertex ids live in a fixed id space [0, idSpace); at merged levels the
// live ids are the community founder ids, a sparse subset. Ownership is
// always id mod P, so the ids homed on this rank are rank, rank+P, ...;
// "slot" below means an owner-side dense index id/P for that sequence
// (ascending slot order is ascending id order).
//
// All per-level hot state is held in flat slices indexed by vertex id,
// hub position, or owned slot — never maps — so the sweep, exchange,
// and merge loops do no hashing, no map iteration, and no
// collect-then-sort passes: determinism-critical orders (ascending ids,
// fixed float accumulation) fall out of plain index scans.
type level struct {
	c   *mpi.Comm
	cfg *Config

	idSpace int
	p, rank int

	// Local evaluation adjacency in CSR form: vertex evalVerts[i]
	// evaluates neighbors adjV[evalOff[i]:evalOff[i+1]].
	evalVerts []int
	evalOff   []int
	adjV      []int
	adjW      []float64

	// isHub marks delegated vertices; nil at delegate-free levels.
	isHub []bool
	// hubs lists delegated vertex ids (identical on all ranks);
	// hubIndex maps a vertex id to its position in hubs (-1 = not a
	// hub), and hubFrom[i] snapshots, at refresh time, the stats of
	// the module currently holding hubs[i] (identical on all ranks).
	hubs     []int
	hubIndex []int32
	hubFrom  []mapeq.Module
	// ownedActive lists the live vertex ids owned by this rank.
	ownedActive []int
	// ghosts lists visible non-owned, non-hub vertex ids.
	ghosts []int
	// Ghost subscriptions in CSR form: owned vertex subVerts[i]
	// (ascending) is ghosted by ranks subRanks[subOff[i]:subOff[i+1]]
	// (ascending), so the per-sweep ghost-update encode is one scan.
	subVerts []int
	subOff   []int32
	subRanks []int32

	// Flow quantities, indexed by vertex id; only visible entries are
	// read. vertexTerm is the constant original-graph term of Eq. 3.
	visit      []float64
	exitP      []float64
	inv2W      float64
	vertexTerm float64

	// comm is the locally known assignment; valid for visible vertices.
	comm []int
	// mods is the locally known module table, dense over the id space.
	// Unknown modules hold the exact zero Module (the map-missing
	// convention of the old representation); modList tracks the slots
	// that may be non-zero, with modTracked as its membership bitmap,
	// so each refresh clears O(live) entries. It is mutated by local
	// moves during a sweep and rebuilt to authoritative values at every
	// refresh.
	mods       []mapeq.Module
	modList    []int
	modTracked []bool
	// delivered caches the last authoritative statistics received for
	// each module (deliveredOk marks slots that ever were). isSent
	// short-form responses resolve against this cache — NOT against
	// mods, whose entries may be dirty from the local sweep's
	// optimistic updates.
	delivered   []mapeq.Module
	deliveredOk []bool
	// agg holds the global Eq. 3 aggregates, exact after each refresh
	// and updated optimistically by local moves during a sweep.
	agg mapeq.Aggregates
	// refAgg is the refresh-time snapshot of agg, identical on all
	// ranks; delegate decisions evaluate against it so every rank
	// reaches the same verdict.
	refAgg mapeq.Aggregates
	// evalIndexOf maps a vertex id to its position in evalVerts
	// (-1 = not evaluated on this rank).
	evalIndexOf []int32
	// visList caches the visible vertex ids, sorted.
	visList []int
	// Owner-side module state, dense by owned slot: ownedStats holds
	// the authoritative statistics of modules homed on this rank
	// (exact zero when dead), ownedHas marks the live slots, and
	// ownedList caches them ascending — all rebuilt by every refresh.
	ownedStats []mapeq.Module
	ownedHas   []bool
	ownedList  []int32
	// modVersion counts stat changes of modules owned by this rank,
	// monotone across the level's lifetime; sentVersion[dst][slot] is
	// the version last sent to rank dst, for isSent deduplication.
	modVersion  []int32
	sentVersion [][]int32

	// sendBufs is the pooled per-destination encoder set reused by
	// every alltoallv-style exchange on this level; enc and dec are the
	// pooled single-payload encoder and decoder for allgather rounds.
	sendBufs *mpi.SendBuffers
	enc      *mpi.Encoder
	dec      mpi.Decoder

	// rsch and dsch hold the refresh and delegate-round scratch arrays
	// (stamp-cleared per round, allocated once per level).
	rsch *refreshScratch
	dsch *delegateScratch

	timer *trace.Timer
	// jlog receives this rank's journal events (nil = journaling off);
	// jstage/jouter tag them with the clustering stage and merge round.
	jlog   *obs.RankLog
	jstage uint8
	jouter uint16

	// forceFullInfo makes the next refresh send full Module_Info records
	// regardless of the isSent version bookkeeping. The asynchronous
	// epochs (clusterAsync) move vertices without refresh's version
	// accounting, so the closing synchronous refresh cannot trust
	// sentVersion: a module whose stats drifted and returned would match
	// a stale cached delivery. Never set on the synchronous path.
	forceFullInfo bool

	// polish marks the short synchronized convergence phase that closes
	// an asynchronous run: the partition is already near-converged, so
	// the move damping that guards fresh starts against oscillation is
	// skipped (deferred moves would otherwise keep the convergence vote
	// alive for several pointless rounds).
	polish bool

	rng        *gen.RNG
	deltaEvals int64
	// dampP is the current remote-move deferral probability (set per
	// synchronized round by cluster; see dampProb).
	dampP float64
	// deferred counts remote moves deferred by damping in the latest
	// pass; deferred work keeps the convergence vote alive.
	deferred int
}

// refreshScratch holds refresh's per-round accumulators. The p* arrays
// are local partials by module id; the o* arrays are owner-side sums by
// owned slot. Entries are valid only when their stamp equals the
// current round, so no per-refresh clearing pass is needed.
type refreshScratch struct {
	round    int32
	pSumPr   []float64
	pExit    []float64
	pMembers []int32
	pStamp   []int32
	oSumPr   []float64
	oExit    []float64
	oMembers []int32
	oStamp   []int32
	oSubs    [][]int32
	newOwned []int32
}

// delegateScratch holds broadcastDelegates' per-round state, indexed by
// hub position (see level.hubIndex). stamp marks positions written this
// round; sel lists them ascending, which is ascending hub-id order.
type delegateScratch struct {
	round    int32
	stamp    []int32
	cand     []hubCandidate
	proposer []int32
	sel      []int32
	sumTo    []float64
	sumFrom  []float64
	target   []mapeq.Module
}

// ownedSlots returns the number of owner-side slots on this rank: the
// count of ids in [0, idSpace) with id mod P == rank.
func (lv *level) ownedSlots() int {
	n := lv.idSpace - lv.rank
	if n <= 0 {
		return 0
	}
	return (n + lv.p - 1) / lv.p
}

// trackMod marks module m as possibly non-zero in the local table so
// the next refresh clears it.
func (lv *level) trackMod(m int) {
	if !lv.modTracked[m] {
		lv.modTracked[m] = true
		lv.modList = append(lv.modList, m)
	}
}

// initLocalState initializes the singleton assignment, the module
// table, ghost lists, and ghost subscriptions. Called by both level
// constructors after the adjacency is in place.
func (lv *level) initLocalState() {
	n := lv.idSpace
	// Visible vertices: eval vertices, their neighbors, owned vertices,
	// and hubs. One ascending scan over the mark array yields the
	// sorted list directly — no collect-then-sort.
	seen := make([]bool, n)
	for _, u := range lv.evalVerts {
		seen[u] = true
	}
	for _, v := range lv.adjV {
		seen[v] = true
	}
	for _, u := range lv.ownedActive {
		seen[u] = true
	}
	for _, h := range lv.hubs {
		seen[h] = true
	}
	lv.visList = lv.visList[:0]
	for v := 0; v < n; v++ {
		if seen[v] {
			lv.visList = append(lv.visList, v)
		}
	}

	lv.comm = make([]int, n)
	for v := range lv.comm {
		lv.comm[v] = v
	}
	lv.mods = make([]mapeq.Module, n)
	lv.modTracked = make([]bool, n)
	lv.modList = make([]int, 0, len(lv.visList))
	for _, v := range lv.visList {
		lv.mods[v] = mapeq.Module{SumPr: lv.visit[v], ExitPr: lv.exitP[v], Members: 1}
		lv.modList = append(lv.modList, v)
		lv.modTracked[v] = true
	}
	lv.delivered = make([]mapeq.Module, n)
	lv.deliveredOk = make([]bool, n)

	slots := lv.ownedSlots()
	lv.ownedStats = make([]mapeq.Module, slots)
	lv.ownedHas = make([]bool, slots)
	lv.ownedList = make([]int32, 0, slots)
	lv.modVersion = make([]int32, slots)
	lv.sentVersion = make([][]int32, lv.p)
	for r := range lv.sentVersion {
		lv.sentVersion[r] = make([]int32, slots)
	}

	lv.evalIndexOf = make([]int32, n)
	for v := range lv.evalIndexOf {
		lv.evalIndexOf[v] = -1
	}
	for i, u := range lv.evalVerts {
		lv.evalIndexOf[u] = int32(i)
	}
	if lv.isHub != nil {
		lv.hubIndex = make([]int32, n)
		for v := range lv.hubIndex {
			lv.hubIndex[v] = -1
		}
		for i, h := range lv.hubs {
			lv.hubIndex[h] = int32(i)
		}
		lv.hubFrom = make([]mapeq.Module, len(lv.hubs))
		lv.dsch = &delegateScratch{
			stamp:    make([]int32, len(lv.hubs)),
			cand:     make([]hubCandidate, len(lv.hubs)),
			proposer: make([]int32, len(lv.hubs)),
			sel:      make([]int32, 0, len(lv.hubs)),
			target:   make([]mapeq.Module, len(lv.hubs)),
		}
	}
	lv.rsch = &refreshScratch{
		pSumPr:   make([]float64, n),
		pExit:    make([]float64, n),
		pMembers: make([]int32, n),
		pStamp:   make([]int32, n),
		oSumPr:   make([]float64, slots),
		oExit:    make([]float64, slots),
		oMembers: make([]int32, slots),
		oStamp:   make([]int32, slots),
		oSubs:    make([][]int32, slots),
		newOwned: make([]int32, 0, slots),
	}
	// Comm-registered so a world failure invalidates in-flight rounds.
	lv.sendBufs = lv.c.NewSendBuffers()
	lv.enc = mpi.NewEncoder(256)

	// Ghosts: visible, not owned, not a hub. visList is sorted, so the
	// ghost list comes out sorted too.
	lv.ghosts = lv.ghosts[:0]
	for _, v := range lv.visList {
		if ownerOf(v, lv.p) != lv.rank && (lv.isHub == nil || !lv.isHub[v]) {
			lv.ghosts = append(lv.ghosts, v)
		}
	}

	// Ghost registration: tell each ghost's owner that this rank needs
	// updates for it. This is part of preprocessing in the paper.
	sb := lv.sendBufs
	sb.Reset()
	for _, v := range lv.ghosts {
		sb.For(ownerOf(v, lv.p)).PutInt(v)
	}
	prevKind := lv.c.SetKind(mpi.KindSetup)
	recv := lv.c.Alltoallv(sb.Bufs())
	lv.c.SetKind(prevKind)

	// Build the subscription CSR: count per vertex, prefix offsets,
	// then a second decode pass filling ranks. Sources arrive in rank
	// order, so each vertex's rank list is ascending.
	counts := make([]int32, n)
	subPos := make([]int32, n)
	total := int32(0)
	d := &lv.dec
	for _, b := range recv {
		d.Reset(b)
		for d.Remaining() > 0 {
			counts[d.Int()]++
			total++
		}
	}
	lv.subVerts = lv.subVerts[:0]
	for v := 0; v < n; v++ {
		if counts[v] > 0 {
			lv.subVerts = append(lv.subVerts, v)
		}
	}
	lv.subOff = make([]int32, len(lv.subVerts)+1)
	for i, v := range lv.subVerts {
		lv.subOff[i+1] = lv.subOff[i] + counts[v]
		subPos[v] = lv.subOff[i]
	}
	lv.subRanks = make([]int32, total)
	for src, b := range recv {
		d.Reset(b)
		for d.Remaining() > 0 {
			v := d.Int()
			lv.subRanks[subPos[v]] = int32(src)
			subPos[v]++
		}
	}
}

// newStage1Level builds the delegate-partitioned level from the global
// layout and flow (preprocessing products).
func newStage1Level(c *mpi.Comm, cfg *Config, layout *partition.Layout,
	visit, exitP []float64, inv2W, vertexTerm float64, seed uint64) *level {

	rank := c.Rank()
	lv := &level{
		c: c, cfg: cfg,
		idSpace: len(layout.Owner),
		p:       c.Size(), rank: rank,
		isHub:      layout.IsHub,
		visit:      visit,
		exitP:      exitP,
		inv2W:      inv2W,
		vertexTerm: vertexTerm,
		timer:      trace.NewTimer(),
		rng:        gen.NewRNG(seed ^ (uint64(rank)+1)*0x9e3779b97f4a7c15),
	}
	for v := 0; v < lv.idSpace; v++ {
		if layout.IsHub[v] {
			lv.hubs = append(lv.hubs, v)
		}
		if ownerOf(v, lv.p) == rank {
			lv.ownedActive = append(lv.ownedActive, v)
		}
	}

	// Group this rank's arcs by evaluation vertex into CSR. Degrees are
	// counted into a dense array and eval vertices collected by one
	// ascending scan, so they come out sorted without a sort pass.
	arcs := layout.RankArcs[rank]
	deg := make([]int32, lv.idSpace)
	for _, a := range arcs {
		deg[a.U]++
	}
	nEval := 0
	for u := 0; u < lv.idSpace; u++ {
		if deg[u] > 0 {
			nEval++
		}
	}
	lv.evalVerts = make([]int, 0, nEval)
	index := make([]int32, lv.idSpace)
	lv.evalOff = make([]int, 1, nEval+1)
	for u := 0; u < lv.idSpace; u++ {
		if deg[u] == 0 {
			continue
		}
		index[u] = int32(len(lv.evalVerts))
		lv.evalVerts = append(lv.evalVerts, u)
		lv.evalOff = append(lv.evalOff, lv.evalOff[len(lv.evalOff)-1]+int(deg[u]))
	}
	lv.adjV = make([]int, len(arcs))
	lv.adjW = make([]float64, len(arcs))
	cursor := make([]int, len(lv.evalVerts))
	copy(cursor, lv.evalOff[:len(lv.evalVerts)])
	for _, a := range arcs {
		i := index[a.U]
		w := a.W
		if a.U == a.V {
			// Level-0 self-loops are stored once in the input graph;
			// merged levels store self-arcs with twice the intra
			// weight (both contraction directions land on the same
			// arc). Doubling here unifies the convention, so flow and
			// merge code treat every level identically.
			w *= 2
		}
		lv.adjV[cursor[i]] = a.V
		lv.adjW[cursor[i]] = w
		cursor[i]++
	}

	lv.initLocalState()
	return lv
}

// mergedArc is one contracted arc received during distributed merging.
type mergedArc struct {
	U, V int
	W    float64
}

// newMergedLevel builds a 1D-partitioned level from the contracted arcs
// this rank received in the merge shuffle (owned vertex u -> full
// adjacency of u, self-arcs carrying twice the intra weight).
func newMergedLevel(c *mpi.Comm, cfg *Config, idSpace int, arcs []mergedArc,
	vertexTerm float64, seed uint64, round int) *level {

	rank := c.Rank()
	lv := &level{
		c: c, cfg: cfg,
		idSpace: idSpace,
		p:       c.Size(), rank: rank,
		vertexTerm: vertexTerm,
		timer:      trace.NewTimer(),
		rng:        gen.NewRNG(seed ^ (uint64(rank)+7)*0xbf58476d1ce4e5b9 ^ uint64(round)<<32),
	}

	// Accumulate parallel arcs: (u, v) pairs may arrive from several
	// source ranks. A stable two-pass counting sort (by v, then by u)
	// makes duplicates adjacent while keeping ties in arrival order, so
	// the run-merging pass below accumulates weights in exactly the
	// order they arrived — the float-summation order the golden results
	// were produced with — and emits merged arcs in ascending (u, v)
	// order with no comparison sort.
	m := len(arcs)
	cnt := make([]int, idSpace)
	for _, a := range arcs {
		cnt[a.V]++
	}
	sum := 0
	for v := 0; v < idSpace; v++ {
		k := cnt[v]
		cnt[v] = sum
		sum += k
	}
	ordV := make([]int32, m)
	for idx, a := range arcs {
		ordV[cnt[a.V]] = int32(idx)
		cnt[a.V]++
	}
	cnt2 := make([]int, idSpace)
	for _, a := range arcs {
		cnt2[a.U]++
	}
	sum = 0
	for u := 0; u < idSpace; u++ {
		k := cnt2[u]
		cnt2[u] = sum
		sum += k
	}
	ord := make([]int32, m)
	for _, idx := range ordV {
		u := arcs[idx].U
		ord[cnt2[u]] = idx
		cnt2[u]++
	}
	// Run-merge into CSR: runs of equal (u, v) collapse to one arc; a
	// change of u opens the next eval vertex.
	lv.evalOff = make([]int, 1, 16)
	for s := 0; s < m; {
		a := arcs[ord[s]]
		w := a.W
		t := s + 1
		for ; t < m; t++ {
			b := arcs[ord[t]]
			if b.U != a.U || b.V != a.V {
				break
			}
			w += b.W
		}
		s = t
		if len(lv.evalVerts) == 0 || lv.evalVerts[len(lv.evalVerts)-1] != a.U {
			lv.evalVerts = append(lv.evalVerts, a.U)
			lv.evalOff = append(lv.evalOff, lv.evalOff[len(lv.evalOff)-1])
		}
		lv.evalOff[len(lv.evalOff)-1]++
		lv.adjV = append(lv.adjV, a.V)
		lv.adjW = append(lv.adjW, w)
	}
	lv.ownedActive = append(lv.ownedActive, lv.evalVerts...)

	// Flow exchange: every owner knows the full adjacency of its
	// vertices, so it computes their strength locally; an allgather
	// shares (id, strength, selfWeight) so each rank can fill in the
	// flow of its ghosts. The merged graph is orders of magnitude
	// smaller than the original (paper Section 3.2), so this collective
	// is cheap.
	e := mpi.NewEncoder(len(lv.evalVerts) * 24)
	for i, u := range lv.evalVerts {
		strength, selfW := 0.0, 0.0
		for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
			if lv.adjV[j] == u {
				selfW += lv.adjW[j] / 2 // self-arc accumulated both directions
				strength += lv.adjW[j]
			} else {
				strength += lv.adjW[j]
			}
		}
		e.PutInt(u)
		e.PutF64(strength)
		e.PutF64(selfW)
	}
	prevKind := lv.c.SetKind(mpi.KindSetup)
	parts := lv.c.AllgatherBytes(e.Bytes())
	lv.c.SetKind(prevKind)
	// Stash (strength, selfW) in the flow arrays during decode, then
	// normalize in place once totalStrength (= 2W of the merged graph,
	// = 2W of the original) is known. Dead ids stay exactly zero.
	lv.visit = make([]float64, idSpace)
	lv.exitP = make([]float64, idSpace)
	totalStrength := 0.0
	d := &lv.dec
	for _, b := range parts {
		d.Reset(b)
		for d.Remaining() > 0 {
			u := d.Int()
			s := d.F64()
			sw := d.F64()
			lv.visit[u] = s
			lv.exitP[u] = sw
			totalStrength += s
		}
	}
	if totalStrength > 0 {
		lv.inv2W = 1 / totalStrength
	}
	for u := 0; u < idSpace; u++ {
		strength, selfW := lv.visit[u], lv.exitP[u]
		lv.visit[u] = strength * lv.inv2W
		lv.exitP[u] = (strength - 2*selfW) * lv.inv2W
	}

	lv.initLocalState()
	return lv
}

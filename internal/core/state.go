package core

import (
	"sort"

	"dinfomap/internal/gen"
	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/partition"
	"dinfomap/internal/trace"
)

// level is one rank's state for one clustering level: the level-0 graph
// under delegate partitioning (stage 1), or a merged graph under 1D
// partitioning (stage 2 and deeper).
//
// Vertex ids live in a fixed id space [0, idSpace); at merged levels the
// live ids are the community founder ids, a sparse subset. Ownership is
// always id mod P.
type level struct {
	c   *mpi.Comm
	cfg *Config

	idSpace int
	p, rank int

	// Local evaluation adjacency in CSR form: vertex evalVerts[i]
	// evaluates neighbors adjV[evalOff[i]:evalOff[i+1]].
	evalVerts []int
	evalOff   []int
	adjV      []int
	adjW      []float64

	// isHub marks delegated vertices; nil at delegate-free levels.
	isHub []bool
	// hubs lists delegated vertex ids (identical on all ranks).
	hubs []int
	// ownedActive lists the live vertex ids owned by this rank.
	ownedActive []int
	// ghosts lists visible non-owned, non-hub vertex ids.
	ghosts []int
	// subscribers maps an owned vertex to the ranks ghosting it.
	subscribers map[int][]int
	// subList caches the subscribed vertex ids, sorted, so the per-sweep
	// ghost-update encode walks subscribers in a deterministic order.
	subList []int

	// Flow quantities, indexed by vertex id; only visible entries are
	// read. vertexTerm is the constant original-graph term of Eq. 3.
	visit      []float64
	exitP      []float64
	inv2W      float64
	vertexTerm float64

	// comm is the locally known assignment; valid for visible vertices.
	comm []int
	// mods is the locally known module table. It is mutated by local
	// moves during a sweep and rebuilt to authoritative values at every
	// refresh.
	mods map[int]mapeq.Module
	// delivered caches the last authoritative statistics received for
	// each module. isSent short-form responses resolve against this
	// cache — NOT against mods, whose entries may be dirty from the
	// local sweep's optimistic updates.
	delivered map[int]mapeq.Module
	// agg holds the global Eq. 3 aggregates, exact after each refresh
	// and updated optimistically by local moves during a sweep.
	agg mapeq.Aggregates
	// refAgg is the refresh-time snapshot of agg, identical on all
	// ranks; delegate decisions evaluate against it so every rank
	// reaches the same verdict.
	refAgg mapeq.Aggregates
	// hubFromStats snapshots, at refresh time, the stats of the module
	// currently holding each hub (identical on all ranks).
	hubFromStats map[int]mapeq.Module
	// evalIndex maps a vertex id to its position in evalVerts.
	evalIndex map[int]int
	// visList caches the visible vertex ids, sorted.
	visList []int
	// ownedStats is the authoritative statistics of modules homed on
	// this rank, rebuilt by every refresh.
	ownedStats map[int]mapeq.Module
	// modVersion counts stat changes of modules owned by this rank
	// (home = id mod P); used for isSent deduplication.
	modVersion map[int]int
	// sentVersion[dst][mod] is the version last sent to rank dst.
	sentVersion []map[int]int

	timer *trace.Timer
	// jlog receives this rank's journal events (nil = journaling off);
	// jstage/jouter tag them with the clustering stage and merge round.
	jlog   *obs.RankLog
	jstage uint8
	jouter uint16

	rng        *gen.RNG
	deltaEvals int64
	// dampP is the current remote-move deferral probability (set per
	// synchronized round by cluster; see dampProb).
	dampP float64
	// deferred counts remote moves deferred by damping in the latest
	// pass; deferred work keeps the convergence vote alive.
	deferred int
}

// visibleSet returns every vertex id this rank sees: eval vertices,
// their neighbors, owned vertices, and hubs.
func (lv *level) visibleSet() map[int]bool {
	vis := make(map[int]bool)
	for _, u := range lv.evalVerts {
		vis[u] = true
	}
	for _, v := range lv.adjV {
		vis[v] = true
	}
	for _, u := range lv.ownedActive {
		vis[u] = true
	}
	for _, h := range lv.hubs {
		vis[h] = true
	}
	return vis
}

// initLocalState initializes the singleton assignment, the module
// table, ghost lists, and ghost subscriptions. Called by both level
// constructors after the adjacency is in place.
func (lv *level) initLocalState() {
	vis := lv.visibleSet()
	lv.visList = make([]int, 0, len(vis))
	for v := range vis {
		lv.visList = append(lv.visList, v)
	}
	sort.Ints(lv.visList)
	lv.comm = make([]int, lv.idSpace)
	for v := range lv.comm {
		lv.comm[v] = v
	}
	lv.mods = make(map[int]mapeq.Module, len(vis))
	for _, v := range lv.visList {
		lv.mods[v] = mapeq.Module{SumPr: lv.visit[v], ExitPr: lv.exitP[v], Members: 1}
	}
	lv.modVersion = make(map[int]int)
	lv.sentVersion = make([]map[int]int, lv.p)
	for r := range lv.sentVersion {
		lv.sentVersion[r] = make(map[int]int)
	}

	// Ghosts: visible, not owned, not a hub. visList is sorted, so the
	// ghost list comes out sorted too.
	lv.ghosts = lv.ghosts[:0]
	for _, v := range lv.visList {
		if ownerOf(v, lv.p) != lv.rank && (lv.isHub == nil || !lv.isHub[v]) {
			lv.ghosts = append(lv.ghosts, v)
		}
	}

	// Ghost registration: tell each ghost's owner that this rank needs
	// updates for it. This is part of preprocessing in the paper.
	bufs := make([][]byte, lv.p)
	encs := make([]*mpi.Encoder, lv.p)
	for _, v := range lv.ghosts {
		o := ownerOf(v, lv.p)
		if encs[o] == nil {
			encs[o] = mpi.NewEncoder(64)
		}
		encs[o].PutInt(v)
	}
	for r, e := range encs {
		if e != nil {
			bufs[r] = e.Bytes()
		}
	}
	prevKind := lv.c.SetKind(mpi.KindSetup)
	recv := lv.c.Alltoallv(bufs)
	lv.c.SetKind(prevKind)
	lv.subscribers = make(map[int][]int)
	for src, b := range recv {
		d := mpi.NewDecoder(b)
		for d.Remaining() > 0 {
			v := d.Int()
			lv.subscribers[v] = append(lv.subscribers[v], src)
		}
	}
	lv.subList = make([]int, 0, len(lv.subscribers))
	for v := range lv.subscribers {
		lv.subList = append(lv.subList, v)
	}
	sort.Ints(lv.subList)
}

// newStage1Level builds the delegate-partitioned level from the global
// layout and flow (preprocessing products).
func newStage1Level(c *mpi.Comm, cfg *Config, layout *partition.Layout,
	visit, exitP []float64, inv2W, vertexTerm float64, seed uint64) *level {

	rank := c.Rank()
	lv := &level{
		c: c, cfg: cfg,
		idSpace: len(layout.Owner),
		p:       c.Size(), rank: rank,
		isHub:      layout.IsHub,
		visit:      visit,
		exitP:      exitP,
		inv2W:      inv2W,
		vertexTerm: vertexTerm,
		timer:      trace.NewTimer(),
		rng:        gen.NewRNG(seed ^ (uint64(rank)+1)*0x9e3779b97f4a7c15),
	}
	for v := 0; v < lv.idSpace; v++ {
		if layout.IsHub[v] {
			lv.hubs = append(lv.hubs, v)
		}
		if ownerOf(v, lv.p) == rank {
			lv.ownedActive = append(lv.ownedActive, v)
		}
	}

	// Group this rank's arcs by evaluation vertex into CSR.
	arcs := layout.RankArcs[rank]
	counts := make(map[int]int)
	for _, a := range arcs {
		counts[a.U]++
	}
	lv.evalVerts = make([]int, 0, len(counts))
	for u := range counts {
		lv.evalVerts = append(lv.evalVerts, u)
	}
	sort.Ints(lv.evalVerts)
	index := make(map[int]int, len(lv.evalVerts))
	lv.evalOff = make([]int, len(lv.evalVerts)+1)
	for i, u := range lv.evalVerts {
		index[u] = i
		lv.evalOff[i+1] = lv.evalOff[i] + counts[u]
	}
	lv.evalIndex = index
	lv.adjV = make([]int, len(arcs))
	lv.adjW = make([]float64, len(arcs))
	cursor := make([]int, len(lv.evalVerts))
	copy(cursor, lv.evalOff[:len(lv.evalVerts)])
	for _, a := range arcs {
		i := index[a.U]
		w := a.W
		if a.U == a.V {
			// Level-0 self-loops are stored once in the input graph;
			// merged levels store self-arcs with twice the intra
			// weight (both contraction directions land on the same
			// arc). Doubling here unifies the convention, so flow and
			// merge code treat every level identically.
			w *= 2
		}
		lv.adjV[cursor[i]] = a.V
		lv.adjW[cursor[i]] = w
		cursor[i]++
	}

	lv.initLocalState()
	return lv
}

// mergedArc is one contracted arc received during distributed merging.
type mergedArc struct {
	U, V int
	W    float64
}

// newMergedLevel builds a 1D-partitioned level from the contracted arcs
// this rank received in the merge shuffle (owned vertex u -> full
// adjacency of u, self-arcs carrying twice the intra weight).
func newMergedLevel(c *mpi.Comm, cfg *Config, idSpace int, arcs []mergedArc,
	vertexTerm float64, seed uint64, round int) *level {

	rank := c.Rank()
	lv := &level{
		c: c, cfg: cfg,
		idSpace: idSpace,
		p:       c.Size(), rank: rank,
		vertexTerm: vertexTerm,
		timer:      trace.NewTimer(),
		rng:        gen.NewRNG(seed ^ (uint64(rank)+7)*0xbf58476d1ce4e5b9 ^ uint64(round)<<32),
	}

	// Accumulate parallel arcs: (u, v) pairs may arrive from several
	// source ranks. All downstream walks go through the sorted key
	// slice so neighbor order is deterministic from the start.
	type key struct{ u, v int }
	acc := make(map[key]float64, len(arcs))
	for _, a := range arcs {
		acc[key{a.U, a.V}] += a.W
	}
	keys := make([]key, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].u != keys[b].u {
			return keys[a].u < keys[b].u
		}
		return keys[a].v < keys[b].v
	})
	counts := make(map[int]int)
	for _, k := range keys {
		counts[k.u]++
	}
	lv.evalVerts = make([]int, 0, len(counts))
	for u := range counts {
		lv.evalVerts = append(lv.evalVerts, u)
	}
	sort.Ints(lv.evalVerts)
	index := make(map[int]int, len(lv.evalVerts))
	lv.evalOff = make([]int, len(lv.evalVerts)+1)
	for i, u := range lv.evalVerts {
		index[u] = i
		lv.evalOff[i+1] = lv.evalOff[i] + counts[u]
	}
	lv.evalIndex = index
	lv.adjV = make([]int, len(acc))
	lv.adjW = make([]float64, len(acc))
	cursor := make([]int, len(lv.evalVerts))
	copy(cursor, lv.evalOff[:len(lv.evalVerts)])
	for _, k := range keys {
		i := index[k.u]
		lv.adjV[cursor[i]] = k.v
		lv.adjW[cursor[i]] = acc[k]
		cursor[i]++
	}
	lv.ownedActive = append(lv.ownedActive, lv.evalVerts...)

	// Flow exchange: every owner knows the full adjacency of its
	// vertices, so it computes their strength locally; an allgather
	// shares (id, strength, selfWeight) so each rank can fill in the
	// flow of its ghosts. The merged graph is orders of magnitude
	// smaller than the original (paper Section 3.2), so this collective
	// is cheap.
	e := mpi.NewEncoder(len(lv.evalVerts) * 24)
	strengths := make(map[int][2]float64, len(lv.evalVerts)) // id -> {strength, selfW}
	for i, u := range lv.evalVerts {
		strength, selfW := 0.0, 0.0
		for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
			if lv.adjV[j] == u {
				selfW += lv.adjW[j] / 2 // self-arc accumulated both directions
				strength += lv.adjW[j]
			} else {
				strength += lv.adjW[j]
			}
		}
		strengths[u] = [2]float64{strength, selfW}
		e.PutInt(u)
		e.PutF64(strength)
		e.PutF64(selfW)
	}
	prevKind := lv.c.SetKind(mpi.KindSetup)
	parts := lv.c.AllgatherBytes(e.Bytes())
	lv.c.SetKind(prevKind)
	lv.visit = make([]float64, idSpace)
	lv.exitP = make([]float64, idSpace)
	totalStrength := 0.0
	type flowRec struct{ strength, selfW float64 }
	all := make(map[int]flowRec)
	for _, b := range parts {
		d := mpi.NewDecoder(b)
		for d.Remaining() > 0 {
			u := d.Int()
			s := d.F64()
			sw := d.F64()
			all[u] = flowRec{s, sw}
			totalStrength += s
		}
	}
	// totalStrength = 2W of the merged graph (= 2W of the original).
	if totalStrength > 0 {
		lv.inv2W = 1 / totalStrength
	}
	//dinfomap:unordered-ok independent writes to distinct array slots; no cross-entry state
	for u, fr := range all {
		lv.visit[u] = fr.strength * lv.inv2W
		lv.exitP[u] = (fr.strength - 2*fr.selfW) * lv.inv2W
	}

	lv.initLocalState()
	return lv
}

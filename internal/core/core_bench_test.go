package core

import (
	"fmt"
	"testing"

	"dinfomap/internal/gen"
)

func BenchmarkRunByP(b *testing.B) {
	g, _ := gen.PlantedPartition(3, gen.PlantedConfig{
		N: 3000, NumComms: 60, AvgDegree: 10, Mixing: 0.2,
	})
	for _, p := range []int{2, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(g, Config{P: p, Seed: uint64(i)})
			}
		})
	}
}

// BenchmarkRunHubHeavy exercises the delegate machinery specifically.
func BenchmarkRunHubHeavy(b *testing.B) {
	g := gen.PowerLawGraph(7, 5000, 1.9, 2, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, Config{P: 8, Seed: uint64(i)})
	}
}

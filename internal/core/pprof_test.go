package core

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"testing"

	"dinfomap/internal/obs"
)

// TestRankBodiesCarryPprofLabels verifies the per-rank profiler labels:
// every simulated rank's goroutine must run with a rank=<id> pprof
// label, which is what lets `go tool pprof -tagfocus rank=N` split a
// CPU profile per rank. The journal tap tells us when the ranks are
// provably mid-run, at which point the goroutine profile (debug=1
// prints labels) must show every rank id.
func TestRankBodiesCarryPprofLabels(t *testing.T) {
	const p = 4
	g, _ := planted(7, 2000, 8, 0.2)
	j := obs.NewJournal(p)
	tap := j.Subscribe(obs.DefaultTapBuffer)
	defer j.Unsubscribe(tap)

	done := make(chan *Result, 1)
	go func() { done <- Run(g, Config{P: p, Seed: 3, Journal: j}) }()

	// First streamed event: at least one rank is inside its body. The
	// ranks run a synchronized loop, so all p goroutines are alive.
	if _, ok := <-tap.Events(); !ok {
		t.Fatal("journal tap closed before any event")
	}
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	profile := buf.String()

	for range tap.Events() { // drain until the journal finishes
	}
	res := <-done
	if res.NumModules < 1 {
		t.Fatalf("degenerate run: %d modules", res.NumModules)
	}

	for r := 0; r < p; r++ {
		want := fmt.Sprintf("%q:%q", "rank", fmt.Sprint(r))
		if !bytes.Contains([]byte(profile), []byte(want)) {
			t.Errorf("goroutine profile missing label %s\nprofile:\n%s", want, profile)
		}
	}
}

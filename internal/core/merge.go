package core

import (
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

// mergeShuffle performs the distributed graph merging of Section 3.5:
// each rank contracts its local arcs by the converged assignment and
// ships each contracted arc to the home rank of its (new) evaluation
// vertex, i.e. a plain 1D partitioning of the merged graph (Algorithm 2,
// line 8). The returned arcs are this rank's portion of the merged
// level: the full adjacency of every community id it owns.
//
// The whole contraction + shuffle is journaled and costed as its own
// merge-shuffle span, tagged with the level being contracted (stage 1
// for the first merge, stage 2 / outer k for deeper ones).
func (lv *level) mergeShuffle(costs phaseCosts) []mergedArc {
	j0 := lv.jlog.Now()
	before := lv.c.Stats()
	lv.timer.Start(trace.PhaseMergeShuffle)
	prevKind := lv.c.SetKind(mpi.KindMergeShuffle)
	defer lv.c.SetKind(prevKind)

	// Contract local arcs and pre-accumulate per (cu, cv) pair to keep
	// the shuffle payload small. The adjacency is walked in CSR order,
	// each arc j mapping to the contracted pair (aU[j], aV[j]) with
	// weight lv.adjW[j]; a stable two-pass counting sort (by cv, then
	// cu) then makes equal pairs adjacent with ties in walk order, so
	// the run-merge below sums parallel-arc weights in exactly the walk
	// order — the float order the golden results were produced with —
	// and emits runs ascending by (cu, cv), byte-identical to the old
	// sorted-key encode with no map and no comparison sort.
	m := len(lv.adjV)
	aU := make([]int, m)
	aV := make([]int, m)
	k := 0
	for i, u := range lv.evalVerts {
		cu := lv.comm[u]
		for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
			aU[k] = cu
			aV[k] = lv.comm[lv.adjV[j]]
			k++
		}
	}
	cnt := make([]int, lv.idSpace)
	for _, v := range aV {
		cnt[v]++
	}
	sum := 0
	for v := 0; v < lv.idSpace; v++ {
		n := cnt[v]
		cnt[v] = sum
		sum += n
	}
	ordV := make([]int32, m)
	for idx, v := range aV {
		ordV[cnt[v]] = int32(idx)
		cnt[v]++
	}
	cnt2 := make([]int, lv.idSpace)
	for _, u := range aU {
		cnt2[u]++
	}
	sum = 0
	for u := 0; u < lv.idSpace; u++ {
		n := cnt2[u]
		cnt2[u] = sum
		sum += n
	}
	ord := make([]int32, m)
	for _, idx := range ordV {
		u := aU[idx]
		ord[cnt2[u]] = idx
		cnt2[u]++
	}

	sb := lv.sendBufs
	sb.Reset()
	selfSeen := make([]bool, lv.idSpace)
	ops := int64(0)
	for s := 0; s < m; {
		idx := ord[s]
		u, v := aU[idx], aV[idx]
		w := lv.adjW[idx]
		t := s + 1
		for ; t < m; t++ {
			j := ord[t]
			if aU[j] != u || aV[j] != v {
				break
			}
			w += lv.adjW[j]
		}
		s = t
		ops++
		if u == v {
			selfSeen[u] = true
		}
		e := sb.For(ownerOf(u, lv.p))
		e.PutInt(u)
		e.PutInt(v)
		e.PutF64(w)
	}
	// Isolated owned vertices have no arcs but must survive as vertices
	// of the merged graph; ship a zero-weight marker to their community
	// owner so the community remains live. The ascending scan processes
	// marker communities in sorted order for the same reproducibility
	// reason.
	marked := make([]bool, lv.idSpace)
	for _, u := range lv.ownedActive {
		marked[lv.comm[u]] = true
	}
	for cu := 0; cu < lv.idSpace; cu++ {
		if !marked[cu] || selfSeen[cu] {
			continue
		}
		e := sb.For(ownerOf(cu, lv.p))
		e.PutInt(cu)
		e.PutInt(cu)
		e.PutF64(0)
	}

	recv := lv.c.Alltoallv(sb.Bufs())
	var arcs []mergedArc
	d := &lv.dec
	for _, b := range recv {
		d.Reset(b)
		for d.Remaining() > 0 {
			arcs = append(arcs, mergedArc{U: d.Int(), V: d.Int(), W: d.F64()})
		}
	}

	after := lv.c.Stats()
	msgs, bytes := commDelta(before, after)
	lv.timer.Stop(trace.PhaseMergeShuffle)
	costs.add(trace.PhaseMergeShuffle, trace.RankCost{Ops: ops, Msgs: msgs, Bytes: bytes})
	lv.jlog.Emit(obs.Event{
		Stage: lv.jstage, Outer: lv.jouter, Iter: -1,
		Phase: obs.PhaseMergeShuffle, Start: j0, End: lv.jlog.Now(),
		Ops: ops, Msgs: msgs, Bytes: bytes,
		WaitNs: waitDelta(before, after),
	})
	return arcs
}

// gatherAssignments allgathers (vertex, community) for this rank's
// owned live vertices, so every rank can project the level's result
// onto deeper state. The merged levels this runs on are small, which is
// why the paper switches to plain 1D partitioning after the first merge.
// The result is dense over the id space with -1 for dead ids; out is
// reused when its capacity suffices.
func (lv *level) gatherAssignments(out []int) []int {
	prevKind := lv.c.SetKind(mpi.KindAssignment)
	defer lv.c.SetKind(prevKind)
	e := lv.enc
	e.Reset()
	for _, u := range lv.ownedActive {
		e.PutInt(u)
		e.PutInt(lv.comm[u])
	}
	parts := lv.c.AllgatherBytes(e.Bytes())
	if cap(out) < lv.idSpace {
		out = make([]int, lv.idSpace)
	}
	out = out[:lv.idSpace]
	for i := range out {
		out[i] = -1
	}
	d := &lv.dec
	for _, b := range parts {
		d.Reset(b)
		for d.Remaining() > 0 {
			u := d.Int()
			out[u] = d.Int()
		}
	}
	return out
}

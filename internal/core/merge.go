package core

import (
	"sort"

	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

// mergeShuffle performs the distributed graph merging of Section 3.5:
// each rank contracts its local arcs by the converged assignment and
// ships each contracted arc to the home rank of its (new) evaluation
// vertex, i.e. a plain 1D partitioning of the merged graph (Algorithm 2,
// line 8). The returned arcs are this rank's portion of the merged
// level: the full adjacency of every community id it owns.
//
// The whole contraction + shuffle is journaled and costed as its own
// merge-shuffle span, tagged with the level being contracted (stage 1
// for the first merge, stage 2 / outer k for deeper ones).
func (lv *level) mergeShuffle(costs phaseCosts) []mergedArc {
	j0 := lv.jlog.Now()
	before := lv.c.Stats()
	lv.timer.Start(trace.PhaseMergeShuffle)
	prevKind := lv.c.SetKind(mpi.KindMergeShuffle)
	defer lv.c.SetKind(prevKind)

	// Contract local arcs and pre-accumulate per destination pair to
	// keep the shuffle payload small.
	type key struct{ u, v int }
	acc := make(map[key]float64)
	for i, u := range lv.evalVerts {
		cu := lv.comm[u]
		for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
			cv := lv.comm[lv.adjV[j]]
			acc[key{cu, cv}] += lv.adjW[j]
		}
	}
	// Encode in sorted (u, v) order so the shuffle payload is
	// byte-identical run to run; map iteration order would scramble it.
	keys := make([]key, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].u != keys[b].u {
			return keys[a].u < keys[b].u
		}
		return keys[a].v < keys[b].v
	})
	encs := make([]*mpi.Encoder, lv.p)
	for _, k := range keys {
		dstRank := ownerOf(k.u, lv.p)
		if encs[dstRank] == nil {
			encs[dstRank] = mpi.NewEncoder(1024)
		}
		e := encs[dstRank]
		e.PutInt(k.u)
		e.PutInt(k.v)
		e.PutF64(acc[k])
	}
	// Isolated owned vertices have no arcs but must survive as vertices
	// of the merged graph; ship a zero-weight marker to their community
	// owner so the community remains live. Marker communities are
	// processed in sorted order for the same reproducibility reason.
	markers := make(map[int]bool)
	for _, u := range lv.ownedActive {
		markers[lv.comm[u]] = true
	}
	markerIDs := make([]int, 0, len(markers))
	for cu := range markers {
		markerIDs = append(markerIDs, cu)
	}
	sort.Ints(markerIDs)
	for _, cu := range markerIDs {
		if _, ok := acc[key{cu, cu}]; ok {
			continue
		}
		dstRank := ownerOf(cu, lv.p)
		if encs[dstRank] == nil {
			encs[dstRank] = mpi.NewEncoder(64)
		}
		e := encs[dstRank]
		e.PutInt(cu)
		e.PutInt(cu)
		e.PutF64(0)
	}

	bufs := make([][]byte, lv.p)
	for r, e := range encs {
		if e != nil {
			bufs[r] = e.Bytes()
		}
	}
	recv := lv.c.Alltoallv(bufs)
	var arcs []mergedArc
	for _, b := range recv {
		d := mpi.NewDecoder(b)
		for d.Remaining() > 0 {
			arcs = append(arcs, mergedArc{U: d.Int(), V: d.Int(), W: d.F64()})
		}
	}

	msgs, bytes := commDelta(before, lv.c.Stats())
	lv.timer.Stop(trace.PhaseMergeShuffle)
	ops := int64(len(acc))
	costs.add(trace.PhaseMergeShuffle, trace.RankCost{Ops: ops, Msgs: msgs, Bytes: bytes})
	lv.jlog.Emit(obs.Event{
		Stage: lv.jstage, Outer: lv.jouter, Iter: -1,
		Phase: obs.PhaseMergeShuffle, Start: j0, End: lv.jlog.Now(),
		Ops: ops, Msgs: msgs, Bytes: bytes,
	})
	return arcs
}

// gatherAssignments allgathers (vertex, community) for this rank's
// owned live vertices, so every rank can project the level's result
// onto deeper state. The merged levels this runs on are small, which is
// why the paper switches to plain 1D partitioning after the first merge.
func (lv *level) gatherAssignments() map[int]int {
	prevKind := lv.c.SetKind(mpi.KindAssignment)
	defer lv.c.SetKind(prevKind)
	e := mpi.NewEncoder(len(lv.ownedActive) * 16)
	for _, u := range lv.ownedActive {
		e.PutInt(u)
		e.PutInt(lv.comm[u])
	}
	parts := lv.c.AllgatherBytes(e.Bytes())
	out := make(map[int]int)
	for _, b := range parts {
		d := mpi.NewDecoder(b)
		for d.Remaining() > 0 {
			u := d.Int()
			out[u] = d.Int()
		}
	}
	return out
}

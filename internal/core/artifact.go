package core

import (
	"fmt"
	"time"

	"dinfomap/internal/graph"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/partition"
	"dinfomap/internal/trace"
)

// RankArtifact is everything one rank contributes to a Result. The
// in-process Run produces one per simulated rank directly from its
// shared runState; the multi-process driver has each child process
// serialize its artifact as JSON and the parent Assemble them. Every
// field is plain data — no live handles — so an artifact round-trips
// through encoding/json unchanged.
type RankArtifact struct {
	Rank  int       `json:"rank"`
	Stats mpi.Stats `json:"stats"`

	// Phase / Stage2 / Stage2Phase are the rank's measured costs
	// (stage-1 per phase, stage-2 total, stage-2 per phase).
	Phase       map[string]trace.RankCost `json:"phase,omitempty"`
	Stage2      trace.RankCost            `json:"stage2"`
	Stage2Phase map[string]trace.RankCost `json:"stage2_phase,omitempty"`

	Wall1Ns int64 `json:"wall1_ns"`
	Wall2Ns int64 `json:"wall2_ns"`
	Evals   int64 `json:"evals"`

	// Staleness is the rank's ghost-staleness histogram from the
	// asynchronous stage-1 sweeps (bucket s counts epochs swept against
	// module statistics s epochs stale); nil on synchronous runs.
	Staleness []int64 `json:"staleness,omitempty"`

	Iterations []obs.IterationReport `json:"iterations,omitempty"`

	// Partition is the delegate-layout balance summary. Every rank
	// computes the identical layout during preprocessing, so every
	// artifact carries the same value; shipping it here spares Assemble
	// from re-running the partitioner.
	Partition partition.BalanceStats `json:"partition"`

	// Output holds the rank-identical algorithm outputs; only rank 0's
	// artifact carries it (mirroring runState.out).
	Output *RankOutput `json:"output,omitempty"`

	// Transport carries the rank's wire-level counters when the rank
	// ran over a transport that has a wire (the multi-process mesh);
	// nil for in-process transports.
	Transport *mpi.TransportStats `json:"transport,omitempty"`
}

// RankOutput is the algorithm's result proper: identical on every rank
// by construction, published once via rank 0's artifact.
type RankOutput struct {
	Communities       []int     `json:"communities"`
	MDLTrace          []float64 `json:"mdl_trace"`
	MergeRate         []float64 `json:"merge_rate"`
	InitialCodelength float64   `json:"initial_codelength"`
	Stage1Iterations  int       `json:"stage1_iterations"`
	Stage2Iterations  int       `json:"stage2_iterations"`
}

// RunRank executes one rank of the distributed algorithm over an
// explicit transport and returns this rank's artifact. Preprocessing
// (delegate partitioning, flow initialization) is recomputed locally —
// it is deterministic in (g, cfg), so all ranks derive the identical
// layout without communicating, exactly as Run's simulated ranks share
// one. cfg.P must equal t.Size().
//
// The algorithm body is the same rankMain that Run executes, so a
// partition assembled from RunRank artifacts is bit-identical to the
// in-process result for the same graph, config, and seed.
//
// Unlike Run, RunRank cannot serve the degenerate empty graph (there is
// no rank program to run); callers handle that case locally the way Run
// does. Journaling (cfg.Journal) works per process; cfg.Recorder, when
// set, records this process's raw wait events (the launcher merges each
// child's records into a cross-rank view). Transports that expose
// wire-level counters (the multi-process mesh's Telemetry method) have
// them snapshotted into the artifact.
func RunRank(g *graph.Graph, cfg Config, t mpi.Transport) (*RankArtifact, error) {
	cfg = cfg.withDefaults()
	if t.Size() != cfg.P {
		return nil, fmt.Errorf("core: RunRank config has P=%d but transport world has %d ranks", cfg.P, t.Size())
	}
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if g.NumVertices() == 0 || g.TotalWeight() == 0 {
		return nil, fmt.Errorf("core: RunRank needs a non-empty graph")
	}
	runner := newRunState(g, &cfg)
	stats, err := mpi.RunRank(t, cfg.Recorder, runner.rankMain)
	if err != nil {
		return nil, err
	}
	art := runner.artifact(t.Rank(), stats)
	type telemeter interface{ Telemetry() *mpi.TransportStats }
	if tm, ok := t.(telemeter); ok {
		art.Transport = tm.Telemetry()
	}
	return art, nil
}

// Assemble combines one artifact per rank into the full Result. It is
// the single assembly path: Run feeds it the artifacts of its simulated
// ranks, and the multi-process driver feeds it the decoded artifacts of
// its child processes. artifacts[r] must be rank r's.
func Assemble(cfg Config, artifacts []*RankArtifact) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(artifacts) != cfg.P {
		return nil, fmt.Errorf("core: Assemble got %d artifacts for a %d-rank config", len(artifacts), cfg.P)
	}
	for r, a := range artifacts {
		if a == nil {
			return nil, fmt.Errorf("core: Assemble missing the artifact of rank %d", r)
		}
		if a.Rank != r {
			return nil, fmt.Errorf("core: artifact at position %d reports rank %d", r, a.Rank)
		}
	}
	o := artifacts[0].Output
	if o == nil {
		return nil, fmt.Errorf("core: rank 0 artifact carries no output section")
	}

	res := &Result{}
	dense, k := graph.Renumber(o.Communities)
	res.Communities = dense
	res.NumModules = k
	res.MDLTrace = o.MDLTrace
	res.MergeRate = o.MergeRate
	res.InitialCodelength = o.InitialCodelength
	if len(o.MDLTrace) > 0 {
		res.Codelength = o.MDLTrace[len(o.MDLTrace)-1]
	}
	res.OuterIterations = len(o.MDLTrace)
	res.Stage1Iterations = o.Stage1Iterations
	res.Stage2Iterations = o.Stage2Iterations
	res.Partition = artifacts[0].Partition

	// Publish the raw per-rank measurements (telemetry consumers build
	// the JSON run report from these).
	res.PerRankPhase = make([]map[string]trace.RankCost, cfg.P)
	res.PerRankStage2 = make([]trace.RankCost, cfg.P)
	res.PerRankStage2Phase = make([]map[string]trace.RankCost, cfg.P)
	res.PerRankWall1 = make([]time.Duration, cfg.P)
	res.PerRankWall2 = make([]time.Duration, cfg.P)
	res.PerRankEvals = make([]int64, cfg.P)
	res.PerRankIterations = make([][]obs.IterationReport, cfg.P)
	res.CommStats = make([]mpi.Stats, cfg.P)
	for r, a := range artifacts {
		if a.Transport != nil {
			if res.Transports == nil {
				res.Transports = make([]*mpi.TransportStats, cfg.P)
			}
			res.Transports[r] = a.Transport
		}
		res.PerRankPhase[r] = a.Phase
		res.PerRankStage2[r] = a.Stage2
		res.PerRankStage2Phase[r] = a.Stage2Phase
		res.PerRankWall1[r] = time.Duration(a.Wall1Ns)
		res.PerRankWall2[r] = time.Duration(a.Wall2Ns)
		res.PerRankEvals[r] = a.Evals
		res.PerRankIterations[r] = a.Iterations
		res.CommStats[r] = a.Stats
		if a.Staleness != nil {
			if res.PerRankStaleness == nil {
				res.PerRankStaleness = make([][]int64, cfg.P)
			}
			res.PerRankStaleness[r] = a.Staleness
		}
		if b := a.Stats.TotalBytes(); b > res.MaxRankBytes {
			res.MaxRankBytes = b
		}
		// Wall times: the slowest rank gates each stage.
		if res.PerRankWall1[r] > res.Stage1Wall {
			res.Stage1Wall = res.PerRankWall1[r]
		}
		if res.PerRankWall2[r] > res.Stage2Wall {
			res.Stage2Wall = res.PerRankWall2[r]
		}
		res.DeltaEvaluations += a.Evals
	}

	// Modeled times: per phase, take the slowest rank's accumulated
	// cost (the bulk-synchronous steps are gated by the slowest rank;
	// aggregating at stage granularity is accurate because delegate
	// partitioning keeps ranks balanced within each iteration).
	model := cfg.CostModel
	res.PhaseModeled = make(map[string]time.Duration)
	res.PhaseOps = make(map[string]int64)
	phases := []string{
		trace.PhaseFindBestModule, trace.PhaseBcastDelegates,
		trace.PhaseSwapBoundary, trace.PhaseRefreshRound1,
		trace.PhaseRefreshRound2, trace.PhaseOther,
	}
	// Async runs accrue their exchange cost under the async-drain phase;
	// synchronous runs never have the key, and omitting it there keeps
	// their modeled-phase breakdown (and the golden result JSONs built
	// from it) byte-identical to pre-async builds.
	for _, a := range artifacts {
		if _, ok := a.Phase[trace.PhaseAsyncDrain]; ok {
			phases = append(phases, trace.PhaseAsyncDrain)
			break
		}
	}
	for _, ph := range phases {
		var worst time.Duration
		var worstOps int64
		for _, a := range artifacts {
			c := a.Phase[ph]
			if t := model.Time(c); t > worst {
				worst = t
			}
			if c.Ops > worstOps {
				worstOps = c.Ops
			}
		}
		res.PhaseModeled[ph] = worst
		res.PhaseOps[ph] = worstOps
		res.Stage1Modeled += worst
	}
	var worst2 time.Duration
	for _, a := range artifacts {
		if t := model.Time(a.Stage2); t > worst2 {
			worst2 = t
		}
	}
	res.Stage2Modeled = worst2
	return res, nil
}

// fillArtifact packages rank r's slots of this runState into a.
// partStats is computed once in newRunState; rank 0's identical outputs
// ride along. Filling in place lets Run lay out its P artifacts in one
// backing array instead of one allocation each.
func (rs *runState) fillArtifact(a *RankArtifact, rank int, stats mpi.Stats) {
	*a = RankArtifact{
		Rank:        rank,
		Stats:       stats,
		Phase:       rs.perRankPhase[rank],
		Stage2:      rs.perRankStage2[rank],
		Stage2Phase: rs.perRankStage2Phase[rank],
		Wall1Ns:     rs.perRankWall1[rank].Nanoseconds(),
		Wall2Ns:     rs.perRankWall2[rank].Nanoseconds(),
		Evals:       rs.perRankEvals[rank],
		Iterations:  rs.perRankIters[rank],
		Staleness:   rs.perRankStale[rank],
		Partition:   rs.partStats,
	}
	if rank == 0 {
		o := &rs.out
		a.Output = &RankOutput{
			Communities:       o.communities,
			MDLTrace:          o.mdlTrace,
			MergeRate:         o.mergeRate,
			InitialCodelength: o.initialL,
			Stage1Iterations:  o.stage1Iters,
			Stage2Iterations:  o.stage2Iters,
		}
	}
}

// artifact is fillArtifact's allocating form, used by RunRank where a
// process produces exactly one artifact.
func (rs *runState) artifact(rank int, stats mpi.Stats) *RankArtifact {
	a := &RankArtifact{}
	rs.fillArtifact(a, rank, stats)
	return a
}

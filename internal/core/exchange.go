package core

import (
	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

// broadcastDelegates runs the BroadcastDelegates phase (Algorithm 2,
// line 4). Round A gathers every rank's best local delegate move and
// selects, per hub, the candidate with the minimum local delta-L
// (deterministic tie-breaks: lower target, then lower proposing rank).
//
// By default a second round then makes the decision *exact*: every rank
// contributes its local link weight between the hub and the winning
// target (and the hub's current module), and the proposing rank ships
// the target module's statistics, so all ranks evaluate the same global
// delta-L from identical inputs and apply the move only when it truly
// improves the codelength. With Config.ApproxDelegates the round-A
// winner is applied directly on its local delta-L, which is the paper's
// literal scheme; the ablation benches show it degrades quality when a
// delegate's adjacency is spread thinly over many ranks.
//
// Winners are kept in the per-hub-position delegate scratch (stamped
// per round) and walked by ascending position — hubs is sorted, so that
// is ascending hub-id order with no key collection or sort.
//
// Returns the number of hub moves applied (identical on every rank).
func (lv *level) broadcastDelegates(cands []hubCandidate) int {
	if lv.isHub == nil {
		return 0
	}
	// Both allgather rounds carry delegate-move traffic.
	prevKind := lv.c.SetKind(mpi.KindHubCandidate)
	defer lv.c.SetKind(prevKind)
	ds := lv.dsch
	ds.round++
	// ---- Round A: propose ----
	e := lv.enc
	e.Reset()
	for _, hc := range cands {
		hc.encode(e)
	}
	parts := lv.c.AllgatherBytes(e.Bytes())
	nWin := 0
	d := &lv.dec
	for src, b := range parts {
		d.Reset(b)
		for d.Remaining() > 0 {
			hc := decodeHubCandidate(d)
			pos := lv.hubIndex[hc.Hub]
			if ds.stamp[pos] != ds.round {
				ds.stamp[pos] = ds.round
				ds.cand[pos] = hc
				ds.proposer[pos] = int32(src)
				nWin++
				continue
			}
			cur := ds.cand[pos]
			// The tie-break must use exact bit equality: every rank decodes
			// the same candidate bytes, so equal means identical, and an
			// epsilon would merge near-ties differently than the (target,
			// rank) ordering resolves them.
			if hc.DeltaL < cur.DeltaL ||
				//dinfomap:float-ok deterministic tie-break on bit-identical decoded values
				(hc.DeltaL == cur.DeltaL && (hc.Target < cur.Target ||
					(hc.Target == cur.Target && src < int(ds.proposer[pos])))) {
				ds.cand[pos] = hc
				ds.proposer[pos] = int32(src)
			}
		}
	}
	if nWin == 0 {
		// Keep the collective schedule aligned across ranks: round B
		// always happens (empty) so no rank waits on a missing barrier.
		if !lv.cfg.ApproxDelegates {
			lv.c.AllgatherBytes(nil)
		}
		return 0
	}
	ds.sel = ds.sel[:0]
	for pos := range lv.hubs {
		if ds.stamp[pos] == ds.round {
			ds.sel = append(ds.sel, int32(pos))
		}
	}

	moves := 0
	if lv.cfg.ApproxDelegates {
		// The paper's literal scheme: apply the winning local candidate.
		for _, pos := range ds.sel {
			hc := ds.cand[pos]
			if hc.DeltaL < 0 && lv.comm[hc.Hub] != hc.Target {
				lv.comm[hc.Hub] = hc.Target
				moves++
			}
		}
		return moves
	}

	// ---- Round B: exact evaluation ----
	// Fixed-order weight block (2 float64 per winner hub), then the
	// proposer-supplied target module stats.
	e.Reset()
	for _, pos := range ds.sel {
		h := lv.hubs[pos]
		target := ds.cand[pos].Target
		from := lv.comm[h]
		wTo, wFrom := lv.localHubWeights(h, target, from)
		e.PutF64(wTo)
		e.PutF64(wFrom)
	}
	for _, pos := range ds.sel {
		if int(ds.proposer[pos]) == lv.rank {
			h := lv.hubs[pos]
			m := lv.mods[ds.cand[pos].Target]
			e.PutInt(h)
			e.PutF64(m.SumPr)
			e.PutF64(m.ExitPr)
			e.PutInt(m.Members)
		}
	}
	parts = lv.c.AllgatherBytes(e.Bytes())
	ds.sumTo = growF64(ds.sumTo, len(ds.sel))
	ds.sumFrom = growF64(ds.sumFrom, len(ds.sel))
	for _, b := range parts {
		d.Reset(b)
		for i := range ds.sel {
			ds.sumTo[i] += d.F64()
			ds.sumFrom[i] += d.F64()
		}
		for d.Remaining() > 0 {
			h := d.Int()
			ds.target[lv.hubIndex[h]] = mapeq.Module{
				SumPr: d.F64(), ExitPr: d.F64(), Members: d.Int(),
			}
		}
	}
	// All ranks now evaluate identical inputs: the refresh-time snapshot
	// aggregates and from-module stats (identical everywhere because
	// every rank subscribes to every hub's module), the proposer's
	// target stats, and the globally summed link weights.
	for i, pos := range ds.sel {
		h := lv.hubs[pos]
		hc := ds.cand[pos]
		from := lv.comm[h]
		if from == hc.Target {
			continue
		}
		mv := mapeq.Move{
			PU:      lv.visit[h],
			ExitU:   lv.exitP[h],
			WToFrom: ds.sumFrom[i],
			WToTo:   ds.sumTo[i],
		}
		dl := mapeq.DeltaL(lv.refAgg, lv.hubFrom[pos], ds.target[pos], mv)
		if dl < -1e-15 {
			lv.comm[h] = hc.Target
			moves++
		}
	}
	return moves
}

// growF64 returns s resized to length n with every element zeroed,
// reusing capacity when possible.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// localHubWeights returns this rank's normalized link weight between hub
// h and the members (as locally known) of the target and from modules.
func (lv *level) localHubWeights(h, target, from int) (wTo, wFrom float64) {
	i := lv.evalIndexOf[h]
	if i < 0 {
		return 0, 0
	}
	for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
		v := lv.adjV[j]
		if v == h {
			continue
		}
		switch lv.comm[v] {
		case target:
			wTo += lv.adjW[j] * lv.inv2W
		case from:
			wFrom += lv.adjW[j] * lv.inv2W
		}
	}
	return wTo, wFrom
}

// swapGhostComms runs the community-id half of the SwapBoundaryInfo
// phase: every rank sends the current community of each owned boundary
// vertex to the ranks ghosting it, every iteration (the paper observes
// this traffic is stable across iterations, Figure 8). It returns the
// number of ghost updates shipped, which the event journal records as
// the phase's swap count.
func (lv *level) swapGhostComms() (sent int) {
	prevKind := lv.c.SetKind(mpi.KindGhostUpdate)
	defer lv.c.SetKind(prevKind)
	sb := lv.sendBufs
	sb.Reset()
	for i, v := range lv.subVerts {
		gu := ghostUpdate{Vertex: v, Comm: lv.comm[v]}
		for _, dstRank := range lv.subRanks[lv.subOff[i]:lv.subOff[i+1]] {
			gu.encode(sb.For(int(dstRank)))
			sent++
		}
	}
	recv := lv.c.Alltoallv(sb.Bufs())
	d := &lv.dec
	for _, b := range recv {
		d.Reset(b)
		for d.Remaining() > 0 {
			gu := decodeGhostUpdate(d)
			lv.comm[gu.Vertex] = gu.Comm
		}
	}
	return sent
}

// refresh rebuilds authoritative module statistics and the global Eq. 3
// aggregates (the Module_Info exchange of Algorithm 3 plus the MDL
// Allreduce). After refresh, every rank's module table is exact for all
// modules of its visible vertices, lv.agg holds the exact global
// aggregates, and the returned count is the global number of non-empty
// modules.
//
// The two Algorithm 3 rounds are journaled and costed as first-class
// spans (refresh-round1: local partials + shuffle to module homes +
// owner-side summation; refresh-round2: authoritative replies + local
// table rebuild + MDL allreduce) instead of folding into Other. iter
// tags the spans with the synchronized sweep (-1 = setup refresh).
//
// Partials accumulate into stamp-guarded dense arrays by module id and
// are encoded by one ascending id scan (identical bytes to the old
// sorted-key encode); owner-side sums accumulate by owned slot and are
// walked by ascending slot, which is ascending module-id order. No step
// hashes, sorts, or allocates in the steady state.
func (lv *level) refresh(costs phaseCosts, iter int32) (numModules int64) {
	j1 := lv.jlog.Now()
	before := lv.c.Stats()
	lv.timer.Start(trace.PhaseRefreshRound1)
	// Round 1 ships module partials; round 2 answers with authoritative
	// Module_Info; the closing MDL reduction is a control collective.
	prevKind := lv.c.SetKind(mpi.KindModulePartial)
	defer lv.c.SetKind(prevKind)

	rs := lv.rsch
	rs.round++
	round := rs.round
	touch := func(m int) {
		if rs.pStamp[m] != round {
			rs.pStamp[m] = round
			rs.pSumPr[m] = 0
			rs.pExit[m] = 0
			rs.pMembers[m] = 0
		}
	}

	// ---- Local partials ----
	// Membership: every live vertex is counted exactly once globally, by
	// its owner (delegate copies do not double-count).
	for _, u := range lv.ownedActive {
		m := lv.comm[u]
		touch(m)
		rs.pSumPr[m] += lv.visit[u]
		rs.pMembers[m]++
	}
	// Exit: every arc exists on exactly one rank, so summing local
	// crossing arcs over ranks counts each crossing edge once per side.
	for i, u := range lv.evalVerts {
		m := lv.comm[u]
		var exit float64
		for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
			v := lv.adjV[j]
			if v != u && lv.comm[v] != m {
				exit += lv.adjW[j]
			}
		}
		//dinfomap:float-ok skip-empty guard: exit is a sum of strictly positive weights, exactly 0 iff none
		if exit != 0 {
			touch(m)
			rs.pExit[m] += exit * lv.inv2W
		}
	}
	// Subscriptions: we need fresh stats for the module of every visible
	// vertex; an all-zero partial acts as a pure request.
	for _, x := range lv.visList {
		touch(lv.comm[x])
	}

	// ---- Round 1: partials to module home ranks ----
	// With deduplication one record per module is sent; the NoDedup
	// ablation sends one record per visible vertex of the module,
	// reproducing the duplicated-information problem of Figure 3.
	// The ascending id scan encodes records in sorted module order, so
	// each destination buffer is byte-identical run to run.
	sb := lv.sendBufs
	sb.Reset()
	r1Ops := int64(0)
	var dupCounts map[int]int
	if lv.cfg.NoDedup {
		dupCounts = make(map[int]int)
		for _, x := range lv.visList {
			dupCounts[lv.comm[x]]++
		}
	}
	for m := 0; m < lv.idSpace; m++ {
		if rs.pStamp[m] != round {
			continue
		}
		r1Ops++
		rec := modulePartial{
			ModID:   m,
			SumPr:   rs.pSumPr[m],
			ExitPr:  rs.pExit[m],
			Members: int(rs.pMembers[m]),
		}
		e := sb.For(dst(m, lv.p))
		rec.encode(e)
		if lv.cfg.NoDedup {
			// First copy carries the stats; duplicates carry zeros but
			// still cost wire bytes, as the naive scheme would.
			for i := 1; i < dupCounts[m]; i++ {
				modulePartial{ModID: m}.encode(e)
			}
		}
	}
	recv := lv.c.Alltoallv(sb.Bufs())

	// ---- Owner side: sum partials, bump versions, answer subscribers ----
	// Contributions accumulate in (source rank, record) order — the
	// float-summation order the golden results were produced with — and
	// each module's subscriber list comes out rank-ascending.
	d := &lv.dec
	for src, b := range recv {
		d.Reset(b)
		for d.Remaining() > 0 {
			mp := decodeModulePartial(d)
			slot := mp.ModID / lv.p
			if rs.oStamp[slot] != round {
				rs.oStamp[slot] = round
				rs.oSumPr[slot] = 0
				rs.oExit[slot] = 0
				rs.oMembers[slot] = 0
				rs.oSubs[slot] = rs.oSubs[slot][:0]
			}
			rs.oSumPr[slot] += mp.SumPr
			rs.oExit[slot] += mp.ExitPr
			rs.oMembers[slot] += int32(mp.Members)
			subs := rs.oSubs[slot]
			if len(subs) == 0 || subs[len(subs)-1] != int32(src) {
				rs.oSubs[slot] = append(subs, int32(src))
			}
		}
	}
	// Detect stat changes and count live modules, walking owned slots
	// ascending (= sorted module-id order). Versions are monotone
	// across the level's lifetime: a module that vanishes and reappears
	// must NOT restart at an old version number, or a subscriber whose
	// sentVersion matches the recycled number would keep stale
	// statistics after an isSent short-form response.
	slots := len(rs.oStamp)
	for slot := 0; slot < slots; slot++ {
		if rs.oStamp[slot] != round {
			continue
		}
		mod := mapeq.Module{
			SumPr:   rs.oSumPr[slot],
			ExitPr:  rs.oExit[slot],
			Members: int(rs.oMembers[slot]),
		}
		if !lv.ownedHas[slot] || lv.ownedStats[slot] != mod {
			lv.modVersion[slot]++
		}
		if mod.Members > 0 {
			numModules++
		}
	}
	// Clean up modules that vanished since the previous refresh: zero
	// the slot (the dense table's "missing" value) and treat the next
	// reappearance as changed.
	for _, slot := range lv.ownedList {
		if rs.oStamp[slot] != round {
			lv.ownedStats[slot] = mapeq.Module{}
			lv.ownedHas[slot] = false
			lv.modVersion[slot]++
		}
	}

	// Round-1 span closes here: partials shuffled and summed at owners.
	after := lv.c.Stats()
	msgs, bytes := commDelta(before, after)
	lv.timer.Stop(trace.PhaseRefreshRound1)
	costs.add(trace.PhaseRefreshRound1, trace.RankCost{Ops: r1Ops, Msgs: msgs, Bytes: bytes})
	lv.jlog.Emit(obs.Event{
		Stage: lv.jstage, Outer: lv.jouter, Iter: iter,
		Phase: obs.PhaseRefreshRound1, Start: j1, End: lv.jlog.Now(),
		Ops: r1Ops, Msgs: msgs, Bytes: bytes,
		WaitNs: waitDelta(before, after),
	})
	j2 := lv.jlog.Now()
	before = lv.c.Stats()
	lv.timer.Start(trace.PhaseRefreshRound2)
	lv.c.SetKind(mpi.KindModuleInfo)

	// ---- Round 2: authoritative stats back to subscribers ----
	sb.Reset()
	rs.newOwned = rs.newOwned[:0]
	for slot := 0; slot < slots; slot++ {
		if rs.oStamp[slot] != round {
			continue
		}
		m := lv.rank + slot*lv.p
		mod := mapeq.Module{
			SumPr:   rs.oSumPr[slot],
			ExitPr:  rs.oExit[slot],
			Members: int(rs.oMembers[slot]),
		}
		lv.ownedStats[slot] = mod
		lv.ownedHas[slot] = true
		rs.newOwned = append(rs.newOwned, int32(slot))
		for _, dstRank := range rs.oSubs[slot] {
			e := sb.For(int(dstRank))
			unchanged := !lv.cfg.NoDedup && !lv.forceFullInfo &&
				lv.sentVersion[dstRank][slot] == lv.modVersion[slot]
			if unchanged {
				// Short form: the subscriber already has this version.
				ModuleInfo{ModID: m, IsSent: true}.encodeShort(e)
			} else {
				ModuleInfo{
					ModID:      m,
					SumPr:      mod.SumPr,
					ExitPr:     mod.ExitPr,
					NumMembers: mod.Members,
					IsSent:     false,
				}.encode(e)
				lv.sentVersion[dstRank][slot] = lv.modVersion[slot]
			}
		}
	}
	lv.ownedList = append(lv.ownedList[:0], rs.newOwned...)
	recv = lv.c.Alltoallv(sb.Bufs())

	// ---- Update local module table (Algorithm 3, lines 22-32) ----
	for _, m := range lv.modList {
		lv.mods[m] = mapeq.Module{}
		lv.modTracked[m] = false
	}
	lv.modList = lv.modList[:0]
	r2Ops := int64(0)
	for _, b := range recv {
		d.Reset(b)
		for d.Remaining() > 0 {
			mi := decodeModuleInfoMaybeShort(d)
			r2Ops++
			var mod mapeq.Module
			if mi.IsSent {
				// Unchanged since the last full delivery: restore the
				// cached authoritative copy (the working table entry
				// may be dirty from this sweep's optimistic updates).
				if !lv.deliveredOk[mi.ModID] {
					panicf("rank %d: isSent marker for module %d never delivered",
						lv.rank, mi.ModID)
				}
				mod = lv.delivered[mi.ModID]
			} else {
				mod = mapeq.Module{
					SumPr:   mi.SumPr,
					ExitPr:  mi.ExitPr,
					Members: mi.NumMembers,
				}
				lv.delivered[mi.ModID] = mod
				lv.deliveredOk[mi.ModID] = true
			}
			lv.mods[mi.ModID] = mod
			lv.trackMod(mi.ModID)
		}
	}

	// ---- Global aggregates and module count (MDL Allreduce) ----
	// Summation walks owned slots ascending (= sorted module-id order),
	// which with the fixed-order Allreduce keeps the global aggregates
	// bit-reproducible.
	var part [4]float64
	for _, slot := range lv.ownedList {
		mod := lv.ownedStats[slot]
		if mod.Members == 0 {
			continue
		}
		part[0] += mod.ExitPr
		part[1] += mapeq.PlogP(mod.ExitPr)
		part[2] += mapeq.PlogP(mod.ExitPr + mod.SumPr)
	}
	part[3] = float64(numModules)
	lv.c.SetKind(mpi.KindCollective)
	tot := lv.c.AllreduceSumF64s(part[:])
	lv.agg = mapeq.Aggregates{
		QTotal:     tot[0],
		SumQLogQ:   tot[1],
		SumQPLogQP: tot[2],
		SumPlogpP:  lv.vertexTerm,
	}
	numModules = int64(tot[3])
	// Snapshots for the consistent delegate decision of the next
	// iteration (see broadcastDelegates).
	lv.refAgg = lv.agg
	for i, h := range lv.hubs {
		lv.hubFrom[i] = lv.mods[lv.comm[h]]
	}

	// Round-2 span: authoritative replies delivered, table rebuilt,
	// aggregates reduced.
	after = lv.c.Stats()
	msgs, bytes = commDelta(before, after)
	lv.timer.Stop(trace.PhaseRefreshRound2)
	costs.add(trace.PhaseRefreshRound2, trace.RankCost{Ops: r2Ops, Msgs: msgs, Bytes: bytes})
	lv.jlog.Emit(obs.Event{
		Stage: lv.jstage, Outer: lv.jouter, Iter: iter,
		Phase: obs.PhaseRefreshRound2, Start: j2, End: lv.jlog.Now(),
		Ops: r2Ops, Msgs: msgs, Bytes: bytes,
		WaitNs: waitDelta(before, after),
	})
	// forceFullInfo is one-shot: the full-record round just completed
	// repaired the sentVersion/delivered bookkeeping, so later refreshes
	// can deduplicate again.
	lv.forceFullInfo = false
	return numModules
}

func dst(m, p int) int { return ownerOf(m, p) }

package core

import (
	"sort"

	"dinfomap/internal/mapeq"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

// broadcastDelegates runs the BroadcastDelegates phase (Algorithm 2,
// line 4). Round A gathers every rank's best local delegate move and
// selects, per hub, the candidate with the minimum local delta-L
// (deterministic tie-breaks: lower target, then lower proposing rank).
//
// By default a second round then makes the decision *exact*: every rank
// contributes its local link weight between the hub and the winning
// target (and the hub's current module), and the proposing rank ships
// the target module's statistics, so all ranks evaluate the same global
// delta-L from identical inputs and apply the move only when it truly
// improves the codelength. With Config.ApproxDelegates the round-A
// winner is applied directly on its local delta-L, which is the paper's
// literal scheme; the ablation benches show it degrades quality when a
// delegate's adjacency is spread thinly over many ranks.
//
// Returns the number of hub moves applied (identical on every rank).
func (lv *level) broadcastDelegates(cands []hubCandidate) int {
	if lv.isHub == nil {
		return 0
	}
	// Both allgather rounds carry delegate-move traffic.
	prevKind := lv.c.SetKind(mpi.KindHubCandidate)
	defer lv.c.SetKind(prevKind)
	// ---- Round A: propose ----
	e := mpi.NewEncoder(len(cands) * 24)
	for _, hc := range cands {
		hc.encode(e)
	}
	parts := lv.c.AllgatherBytes(e.Bytes())
	best := make(map[int]hubCandidate)
	proposer := make(map[int]int)
	for src, b := range parts {
		d := mpi.NewDecoder(b)
		for d.Remaining() > 0 {
			hc := decodeHubCandidate(d)
			cur, ok := best[hc.Hub]
			// The tie-break must use exact bit equality: every rank decodes
			// the same candidate bytes, so equal means identical, and an
			// epsilon would merge near-ties differently than the (target,
			// rank) ordering resolves them.
			if !ok || hc.DeltaL < cur.DeltaL ||
				//dinfomap:float-ok deterministic tie-break on bit-identical decoded values
				(hc.DeltaL == cur.DeltaL && (hc.Target < cur.Target ||
					(hc.Target == cur.Target && src < proposer[hc.Hub]))) {
				best[hc.Hub] = hc
				proposer[hc.Hub] = src
			}
		}
	}
	if len(best) == 0 {
		// Keep the collective schedule aligned across ranks: round B
		// always happens (empty) so no rank waits on a missing barrier.
		if !lv.cfg.ApproxDelegates {
			lv.c.AllgatherBytes(nil)
		}
		return 0
	}
	hubs := make([]int, 0, len(best))
	for h := range best {
		hubs = append(hubs, h)
	}
	sort.Ints(hubs)

	moves := 0
	if lv.cfg.ApproxDelegates {
		// The paper's literal scheme: apply the winning local candidate.
		for _, h := range hubs {
			hc := best[h]
			if hc.DeltaL < 0 && lv.comm[h] != hc.Target {
				lv.comm[h] = hc.Target
				moves++
			}
		}
		return moves
	}

	// ---- Round B: exact evaluation ----
	// Fixed-order weight block (2 float64 per winner hub), then the
	// proposer-supplied target module stats.
	e = mpi.NewEncoder(len(hubs)*16 + 64)
	for _, h := range hubs {
		target := best[h].Target
		from := lv.comm[h]
		wTo, wFrom := lv.localHubWeights(h, target, from)
		e.PutF64(wTo)
		e.PutF64(wFrom)
	}
	for _, h := range hubs {
		if proposer[h] == lv.rank {
			m := lv.mods[best[h].Target]
			e.PutInt(h)
			e.PutF64(m.SumPr)
			e.PutF64(m.ExitPr)
			e.PutInt(m.Members)
		}
	}
	parts = lv.c.AllgatherBytes(e.Bytes())
	sumTo := make([]float64, len(hubs))
	sumFrom := make([]float64, len(hubs))
	targetStats := make(map[int]mapeq.Module, len(hubs))
	for _, b := range parts {
		d := mpi.NewDecoder(b)
		for i := range hubs {
			sumTo[i] += d.F64()
			sumFrom[i] += d.F64()
		}
		for d.Remaining() > 0 {
			h := d.Int()
			targetStats[h] = mapeq.Module{
				SumPr: d.F64(), ExitPr: d.F64(), Members: d.Int(),
			}
		}
	}
	// All ranks now evaluate identical inputs: the refresh-time snapshot
	// aggregates and from-module stats (identical everywhere because
	// every rank subscribes to every hub's module), the proposer's
	// target stats, and the globally summed link weights.
	for i, h := range hubs {
		hc := best[h]
		from := lv.comm[h]
		if from == hc.Target {
			continue
		}
		mv := mapeq.Move{
			PU:      lv.visit[h],
			ExitU:   lv.exitP[h],
			WToFrom: sumFrom[i],
			WToTo:   sumTo[i],
		}
		d := mapeq.DeltaL(lv.refAgg, lv.hubFromStats[h], targetStats[h], mv)
		if d < -1e-15 {
			lv.comm[h] = hc.Target
			moves++
		}
	}
	return moves
}

// localHubWeights returns this rank's normalized link weight between hub
// h and the members (as locally known) of the target and from modules.
func (lv *level) localHubWeights(h, target, from int) (wTo, wFrom float64) {
	i, ok := lv.evalIndex[h]
	if !ok {
		return 0, 0
	}
	for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
		v := lv.adjV[j]
		if v == h {
			continue
		}
		switch lv.comm[v] {
		case target:
			wTo += lv.adjW[j] * lv.inv2W
		case from:
			wFrom += lv.adjW[j] * lv.inv2W
		}
	}
	return wTo, wFrom
}

// swapGhostComms runs the community-id half of the SwapBoundaryInfo
// phase: every rank sends the current community of each owned boundary
// vertex to the ranks ghosting it, every iteration (the paper observes
// this traffic is stable across iterations, Figure 8). It returns the
// number of ghost updates shipped, which the event journal records as
// the phase's swap count.
func (lv *level) swapGhostComms() (sent int) {
	prevKind := lv.c.SetKind(mpi.KindGhostUpdate)
	defer lv.c.SetKind(prevKind)
	encs := make([]*mpi.Encoder, lv.p)
	for _, v := range lv.subList {
		gu := ghostUpdate{Vertex: v, Comm: lv.comm[v]}
		for _, dst := range lv.subscribers[v] {
			if encs[dst] == nil {
				encs[dst] = mpi.NewEncoder(256)
			}
			gu.encode(encs[dst])
			sent++
		}
	}
	bufs := make([][]byte, lv.p)
	for r, e := range encs {
		if e != nil {
			bufs[r] = e.Bytes()
		}
	}
	recv := lv.c.Alltoallv(bufs)
	for _, b := range recv {
		d := mpi.NewDecoder(b)
		for d.Remaining() > 0 {
			gu := decodeGhostUpdate(d)
			lv.comm[gu.Vertex] = gu.Comm
		}
	}
	return sent
}

// refresh rebuilds authoritative module statistics and the global Eq. 3
// aggregates (the Module_Info exchange of Algorithm 3 plus the MDL
// Allreduce). After refresh, every rank's module table is exact for all
// modules of its visible vertices, lv.agg holds the exact global
// aggregates, and the returned count is the global number of non-empty
// modules.
//
// The two Algorithm 3 rounds are journaled and costed as first-class
// spans (refresh-round1: local partials + shuffle to module homes +
// owner-side summation; refresh-round2: authoritative replies + local
// table rebuild + MDL allreduce) instead of folding into Other. iter
// tags the spans with the synchronized sweep (-1 = setup refresh).
func (lv *level) refresh(costs phaseCosts, iter int32) (numModules int64) {
	j1 := lv.jlog.Now()
	before := lv.c.Stats()
	lv.timer.Start(trace.PhaseRefreshRound1)
	// Round 1 ships module partials; round 2 answers with authoritative
	// Module_Info; the closing MDL reduction is a control collective.
	prevKind := lv.c.SetKind(mpi.KindModulePartial)
	defer lv.c.SetKind(prevKind)

	// ---- Local partials ----
	partials := make(map[int]*modulePartial)
	get := func(m int) *modulePartial {
		p := partials[m]
		if p == nil {
			p = &modulePartial{ModID: m}
			partials[m] = p
		}
		return p
	}
	// Membership: every live vertex is counted exactly once globally, by
	// its owner (delegate copies do not double-count).
	for _, u := range lv.ownedActive {
		p := get(lv.comm[u])
		p.SumPr += lv.visit[u]
		p.Members++
	}
	// Exit: every arc exists on exactly one rank, so summing local
	// crossing arcs over ranks counts each crossing edge once per side.
	for i, u := range lv.evalVerts {
		m := lv.comm[u]
		var exit float64
		for j := lv.evalOff[i]; j < lv.evalOff[i+1]; j++ {
			v := lv.adjV[j]
			if v != u && lv.comm[v] != m {
				exit += lv.adjW[j]
			}
		}
		//dinfomap:float-ok skip-empty guard: exit is a sum of strictly positive weights, exactly 0 iff none
		if exit != 0 {
			get(m).ExitPr += exit * lv.inv2W
		}
	}
	// Subscriptions: we need fresh stats for the module of every visible
	// vertex; an all-zero partial acts as a pure request.
	for _, x := range lv.visList {
		get(lv.comm[x])
	}

	// ---- Round 1: partials to module home ranks ----
	// With deduplication one record per module is sent; the NoDedup
	// ablation sends one record per visible vertex of the module,
	// reproducing the duplicated-information problem of Figure 3.
	// Records are encoded in sorted module order so each destination
	// buffer is byte-identical run to run.
	partialIDs := make([]int, 0, len(partials))
	for m := range partials {
		partialIDs = append(partialIDs, m)
	}
	sort.Ints(partialIDs)
	encs := make([]*mpi.Encoder, lv.p)
	enc := func(dst int, rec modulePartial) {
		if encs[dst] == nil {
			encs[dst] = mpi.NewEncoder(512)
		}
		rec.encode(encs[dst])
	}
	if lv.cfg.NoDedup {
		counts := make(map[int]int)
		for _, x := range lv.visList {
			counts[lv.comm[x]]++
		}
		for _, m := range partialIDs {
			dst := ownerOf(m, lv.p)
			n := counts[m]
			if n < 1 {
				n = 1
			}
			// First copy carries the stats; duplicates carry zeros but
			// still cost wire bytes, as the naive scheme would.
			enc(dst, *partials[m])
			for i := 1; i < n; i++ {
				enc(dst, modulePartial{ModID: m})
			}
		}
	} else {
		for _, m := range partialIDs {
			enc(dst(m, lv.p), *partials[m])
		}
	}
	bufs := make([][]byte, lv.p)
	for r, e := range encs {
		if e != nil {
			bufs[r] = e.Bytes()
		}
	}
	recv := lv.c.Alltoallv(bufs)

	// ---- Owner side: sum partials, bump versions, answer subscribers ----
	type ownedMod struct {
		mod  mapeq.Module
		subs []int
	}
	owned := make(map[int]*ownedMod)
	for src, b := range recv {
		d := mpi.NewDecoder(b)
		for d.Remaining() > 0 {
			mp := decodeModulePartial(d)
			om := owned[mp.ModID]
			if om == nil {
				om = &ownedMod{}
				owned[mp.ModID] = om
			}
			om.mod.SumPr += mp.SumPr
			om.mod.ExitPr += mp.ExitPr
			om.mod.Members += mp.Members
			if len(om.subs) == 0 || om.subs[len(om.subs)-1] != src {
				om.subs = append(om.subs, src)
			}
		}
	}
	// Count live modules owned here and detect stat changes. Versions
	// are monotone across the level's lifetime: a module that vanishes
	// and reappears must NOT restart at an old version number, or a
	// subscriber whose sentVersion matches the recycled number would
	// keep stale statistics after an isSent short-form response.
	// Owned modules are walked in sorted id order: the version bumps
	// are order-independent, but round 2 below reuses the slice to
	// encode its replies deterministically.
	ownedIDs := make([]int, 0, len(owned))
	for m := range owned {
		ownedIDs = append(ownedIDs, m)
	}
	sort.Ints(ownedIDs)
	for _, m := range ownedIDs {
		om := owned[m]
		if prev, ok := lv.ownedStats[m]; !ok || prev != om.mod {
			lv.modVersion[m]++
		}
		if om.mod.Members > 0 {
			numModules++
		}
	}
	if lv.ownedStats == nil {
		lv.ownedStats = make(map[int]mapeq.Module)
	}
	//dinfomap:unordered-ok independent delete + monotone version bump per key; no cross-key state
	for m := range lv.ownedStats {
		if _, ok := owned[m]; !ok {
			delete(lv.ownedStats, m)
			// The next reappearance must be treated as changed.
			lv.modVersion[m]++
		}
	}

	// Round-1 span closes here: partials shuffled and summed at owners.
	msgs, bytes := commDelta(before, lv.c.Stats())
	lv.timer.Stop(trace.PhaseRefreshRound1)
	r1Ops := int64(len(partials))
	costs.add(trace.PhaseRefreshRound1, trace.RankCost{Ops: r1Ops, Msgs: msgs, Bytes: bytes})
	lv.jlog.Emit(obs.Event{
		Stage: lv.jstage, Outer: lv.jouter, Iter: iter,
		Phase: obs.PhaseRefreshRound1, Start: j1, End: lv.jlog.Now(),
		Ops: r1Ops, Msgs: msgs, Bytes: bytes,
	})
	j2 := lv.jlog.Now()
	before = lv.c.Stats()
	lv.timer.Start(trace.PhaseRefreshRound2)
	lv.c.SetKind(mpi.KindModuleInfo)

	// ---- Round 2: authoritative stats back to subscribers ----
	encs = make([]*mpi.Encoder, lv.p)
	for _, m := range ownedIDs {
		om := owned[m]
		lv.ownedStats[m] = om.mod
		for _, dstRank := range om.subs {
			if encs[dstRank] == nil {
				encs[dstRank] = mpi.NewEncoder(512)
			}
			e := encs[dstRank]
			unchanged := !lv.cfg.NoDedup && lv.sentVersion[dstRank][m] == lv.modVersion[m]
			if unchanged {
				// Short form: the subscriber already has this version.
				ModuleInfo{ModID: m, IsSent: true}.encodeShort(e)
			} else {
				ModuleInfo{
					ModID:      m,
					SumPr:      om.mod.SumPr,
					ExitPr:     om.mod.ExitPr,
					NumMembers: om.mod.Members,
					IsSent:     false,
				}.encode(e)
				lv.sentVersion[dstRank][m] = lv.modVersion[m]
			}
		}
	}
	bufs = make([][]byte, lv.p)
	for r, e := range encs {
		if e != nil {
			bufs[r] = e.Bytes()
		}
	}
	recv = lv.c.Alltoallv(bufs)

	// ---- Update local module table (Algorithm 3, lines 22-32) ----
	if lv.delivered == nil {
		lv.delivered = make(map[int]mapeq.Module)
	}
	newMods := make(map[int]mapeq.Module, len(partials))
	for _, b := range recv {
		d := mpi.NewDecoder(b)
		for d.Remaining() > 0 {
			mi := decodeModuleInfoMaybeShort(d)
			if mi.IsSent {
				// Unchanged since the last full delivery: restore the
				// cached authoritative copy (the working table entry
				// may be dirty from this sweep's optimistic updates).
				cached, ok := lv.delivered[mi.ModID]
				checkf(ok, "rank %d: isSent marker for module %d never delivered",
					lv.rank, mi.ModID)
				newMods[mi.ModID] = cached
				continue
			}
			m := mapeq.Module{
				SumPr:   mi.SumPr,
				ExitPr:  mi.ExitPr,
				Members: mi.NumMembers,
			}
			lv.delivered[mi.ModID] = m
			newMods[mi.ModID] = m
		}
	}
	lv.mods = newMods

	// ---- Global aggregates and module count (MDL Allreduce) ----
	// Summation in sorted module order keeps the partial — and with the
	// fixed-order Allreduce the global aggregates — bit-reproducible.
	// ownedIDs (sorted above) is exactly lv.ownedStats' key set: round 2
	// stored every owned module and the cleanup loop deleted the rest.
	var part [4]float64
	for _, m := range ownedIDs {
		mod := lv.ownedStats[m]
		if mod.Members == 0 {
			continue
		}
		part[0] += mod.ExitPr
		part[1] += mapeq.PlogP(mod.ExitPr)
		part[2] += mapeq.PlogP(mod.ExitPr + mod.SumPr)
	}
	part[3] = float64(numModules)
	lv.c.SetKind(mpi.KindCollective)
	tot := lv.c.AllreduceSumF64s(part[:])
	lv.agg = mapeq.Aggregates{
		QTotal:     tot[0],
		SumQLogQ:   tot[1],
		SumQPLogQP: tot[2],
		SumPlogpP:  lv.vertexTerm,
	}
	// Snapshots for the consistent delegate decision of the next
	// iteration (see broadcastDelegates).
	lv.refAgg = lv.agg
	if lv.isHub != nil {
		if lv.hubFromStats == nil {
			lv.hubFromStats = make(map[int]mapeq.Module, len(lv.hubs))
		}
		for _, h := range lv.hubs {
			lv.hubFromStats[h] = lv.mods[lv.comm[h]]
		}
	}

	// Round-2 span: authoritative replies delivered, table rebuilt,
	// aggregates reduced.
	msgs, bytes = commDelta(before, lv.c.Stats())
	lv.timer.Stop(trace.PhaseRefreshRound2)
	r2Ops := int64(len(newMods))
	costs.add(trace.PhaseRefreshRound2, trace.RankCost{Ops: r2Ops, Msgs: msgs, Bytes: bytes})
	lv.jlog.Emit(obs.Event{
		Stage: lv.jstage, Outer: lv.jouter, Iter: iter,
		Phase: obs.PhaseRefreshRound2, Start: j2, End: lv.jlog.Now(),
		Ops: r2Ops, Msgs: msgs, Bytes: bytes,
	})
	return int64(tot[3])
}

func dst(m, p int) int { return ownerOf(m, p) }

package infomap

import (
	"fmt"
	"testing"

	"dinfomap/internal/gen"
)

func BenchmarkRun(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g, _ := gen.PlantedPartition(3, gen.PlantedConfig{
				N: n, NumComms: n / 50, AvgDegree: 10, Mixing: 0.2,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Run(g, Config{Seed: uint64(i)})
			}
		})
	}
}

func BenchmarkCodelengthOf(b *testing.B) {
	g, truth := gen.PlantedPartition(5, gen.PlantedConfig{
		N: 5000, NumComms: 100, AvgDegree: 10, Mixing: 0.2,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CodelengthOf(g, truth)
	}
}

// Package infomap implements the sequential Infomap algorithm
// (Algorithm 1 of the paper; Rosvall et al. 2009): greedy minimization
// of the two-level map equation by single-vertex moves, followed by
// hierarchical aggregation of the resulting modules into a smaller
// graph, repeated until the codelength stops improving.
//
// This is both the quality reference for the distributed algorithm
// (Figures 4-5, Table 2 compare against it) and the building block the
// parallel variants reuse for their local optimization.
package infomap

import (
	"math"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/mapeq"
)

// Config controls a sequential Infomap run.
type Config struct {
	// Theta is the outer-loop improvement threshold: the algorithm stops
	// when an outer iteration improves the codelength by less than Theta
	// bits. <= 0 means the default 1e-10.
	Theta float64
	// MaxIterations bounds the number of outer iterations
	// (optimize + merge rounds). <= 0 means the default 25.
	MaxIterations int
	// MaxInnerSweeps bounds the number of full vertex sweeps inside one
	// outer iteration. <= 0 means the default 100.
	MaxInnerSweeps int
	// Seed randomizes the vertex visit order (Algorithm 1, line 13).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Theta <= 0 {
		c.Theta = 1e-10
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 25
	}
	if c.MaxInnerSweeps <= 0 {
		c.MaxInnerSweeps = 100
	}
	return c
}

// Result reports a finished run.
type Result struct {
	// Communities assigns each original vertex its final module
	// (dense ids in [0, NumModules)).
	Communities []int
	// NumModules is the number of final modules.
	NumModules int
	// Codelength is the final two-level MDL L(M) in bits.
	Codelength float64
	// InitialCodelength is L of the all-singleton partition.
	InitialCodelength float64
	// MDLTrace[k] is the codelength after outer iteration k (Figure 4).
	MDLTrace []float64
	// MergeRate[k] is the number of vertices eliminated by merging in
	// outer iteration k divided by the original vertex count (Figure 5).
	MergeRate []float64
	// OuterIterations is the number of optimize+merge rounds executed.
	OuterIterations int
	// Moves counts accepted vertex moves across all iterations.
	Moves int
	// DeltaEvaluations counts delta-L computations (the workload unit
	// of the cost model).
	DeltaEvaluations int64
}

// Run executes sequential Infomap on g.
func Run(g *graph.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	n0 := g.NumVertices()
	res := &Result{Communities: make([]int, n0)}
	for u := range res.Communities {
		res.Communities[u] = u
	}
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if n0 == 0 || g.TotalWeight() == 0 {
		res.NumModules = n0
		return res
	}

	level := g
	rng := gen.NewRNG(cfg.Seed + 0x1b873593)
	// The vertex term sum plogp(p_alpha) of Eq. 3 is defined over the
	// ORIGINAL vertices and stays constant across contraction levels;
	// level-local flows only supply module statistics.
	vertexTerm := mapeq.NewVertexFlow(g).SumPlogpP
	prevL := math.Inf(1)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		opt := optimizeLevel(level, rng, cfg.MaxInnerSweeps, vertexTerm)
		res.Moves += opt.moves
		res.DeltaEvaluations += opt.deltaEvals
		if iter == 0 {
			res.InitialCodelength = opt.initialL
		}
		res.MDLTrace = append(res.MDLTrace, opt.finalL)
		dense, k := graph.Renumber(opt.assignment)
		merged := level.NumVertices() - k
		res.MergeRate = append(res.MergeRate, float64(merged)/float64(n0))
		res.OuterIterations++

		// Project the level assignment down to original vertices.
		for u := range res.Communities {
			res.Communities[u] = dense[res.Communities[u]]
		}
		res.Codelength = opt.finalL
		res.NumModules = k

		if merged == 0 || prevL-opt.finalL < cfg.Theta && iter > 0 {
			break
		}
		prevL = opt.finalL
		contracted, remap := graph.Contract(level, dense)
		// Renumber returns first-appearance order; Contract's remap maps
		// community id -> new vertex. Compose so Communities points at
		// contracted-level vertices.
		for u := range res.Communities {
			res.Communities[u] = remap[res.Communities[u]]
		}
		level = contracted
		if level.NumVertices() <= 1 {
			break
		}
	}
	// Final dense renumbering of the output.
	dense, k := graph.Renumber(res.Communities)
	res.Communities = dense
	res.NumModules = k
	return res
}

// optResult is the outcome of optimizing one level.
type optResult struct {
	assignment []int // per level-vertex module id (non-dense)
	initialL   float64
	finalL     float64
	moves      int
	deltaEvals int64
}

// optimizeLevel runs the inner move loop (Algorithm 1, lines 7-25) on
// one level graph, starting from singletons.
func optimizeLevel(g *graph.Graph, rng *gen.RNG, maxSweeps int, vertexTerm float64) *optResult {
	n := g.NumVertices()
	flow := mapeq.NewVertexFlow(g)
	comm := make([]int, n)
	mods := make([]mapeq.Module, n)
	inv2W := flow.Norm()
	for u := 0; u < n; u++ {
		comm[u] = u
		mods[u] = mapeq.Module{SumPr: flow.P[u], ExitPr: flow.Exit[u], Members: 1}
	}
	agg := mapeq.AggregateModules(mods, vertexTerm)
	out := &optResult{assignment: comm, initialL: agg.L()}

	order := rng.Perm(n)
	// Scratch for per-vertex neighbor-community weights.
	wTo := make([]float64, n)
	touched := make([]int, 0, 16)

	for sweep := 0; sweep < maxSweeps; sweep++ {
		moves := 0
		rng.Shuffle(order)
		for _, u := range order {
			from := comm[u]
			touched = touched[:0]
			g.Neighbors(u, func(v int, w float64) {
				if v == u {
					return
				}
				c := comm[v]
				//dinfomap:float-ok untouched-slot sentinel: cleared to exact 0, only positive weights added
				if wTo[c] == 0 {
					touched = append(touched, c)
				}
				wTo[c] += w * inv2W
			})
			if len(touched) == 0 {
				continue
			}
			mv := mapeq.Move{PU: flow.P[u], ExitU: flow.Exit[u], WToFrom: wTo[from]}
			best := 0.0
			bestC := from
			for _, c := range touched {
				if c == from {
					continue
				}
				mv.WToTo = wTo[c]
				out.deltaEvals++
				if d := mapeq.DeltaL(agg, mods[from], mods[c], mv); d < best-1e-15 {
					best = d
					bestC = c
				}
			}
			if bestC != from {
				mv.WToTo = wTo[bestC]
				var nf, nt mapeq.Module
				agg, nf, nt = mapeq.ApplyMove(agg, mods[from], mods[bestC], mv)
				mods[from] = nf
				mods[bestC] = nt
				comm[u] = bestC
				moves++
			}
			for _, c := range touched {
				wTo[c] = 0
			}
		}
		out.moves += moves
		if moves == 0 {
			break
		}
	}
	// Re-derive aggregates from scratch to cancel floating-point drift
	// before reporting the level's codelength (Algorithm 1, line 25).
	out.finalL = recomputeL(g, flow, comm, vertexTerm)
	return out
}

// recomputeL computes L(M) from scratch for the given assignment.
// vertexTerm is the constant sum plogp(p_alpha) of the original graph.
func recomputeL(g *graph.Graph, flow *mapeq.VertexFlow, comm []int, vertexTerm float64) float64 {
	dense, k := graph.Renumber(comm)
	mods := make([]mapeq.Module, k)
	inv2W := flow.Norm()
	for u := 0; u < g.NumVertices(); u++ {
		c := dense[u]
		mods[c].SumPr += flow.P[u]
		mods[c].Members++
		g.Neighbors(u, func(v int, w float64) {
			if v != u && dense[v] != c {
				mods[c].ExitPr += w * inv2W
			}
		})
	}
	return mapeq.AggregateModules(mods, vertexTerm).L()
}

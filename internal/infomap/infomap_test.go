package infomap

import (
	"math"
	"testing"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/metrics"
)

func TestEmptyGraph(t *testing.T) {
	res := Run(graph.NewBuilder(0).Build(), Config{})
	if res.NumModules != 0 || len(res.Communities) != 0 {
		t.Fatalf("empty graph result: %+v", res)
	}
}

func TestEdgelessGraph(t *testing.T) {
	res := Run(graph.NewBuilder(5).Build(), Config{})
	if res.NumModules != 5 {
		t.Fatalf("NumModules = %d, want 5 singletons", res.NumModules)
	}
	if res.Codelength != 0 {
		t.Fatalf("Codelength = %v, want 0", res.Codelength)
	}
}

func TestSingleEdge(t *testing.T) {
	g := graph.FromEdges(2, [][2]int{{0, 1}})
	res := Run(g, Config{})
	if res.Communities[0] != res.Communities[1] {
		t.Fatalf("two connected vertices should merge: %v", res.Communities)
	}
	if res.NumModules != 1 {
		t.Fatalf("NumModules = %d, want 1", res.NumModules)
	}
}

func TestTwoTrianglesWithBridge(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{2, 3},
	})
	res := Run(g, Config{Seed: 1})
	if res.NumModules != 2 {
		t.Fatalf("NumModules = %d, want 2 (the two triangles)", res.NumModules)
	}
	c := res.Communities
	if c[0] != c[1] || c[1] != c[2] {
		t.Errorf("first triangle split: %v", c)
	}
	if c[3] != c[4] || c[4] != c[5] {
		t.Errorf("second triangle split: %v", c)
	}
	if c[0] == c[3] {
		t.Errorf("triangles merged: %v", c)
	}
	if res.Codelength >= res.InitialCodelength {
		t.Errorf("L = %v did not improve on initial %v", res.Codelength, res.InitialCodelength)
	}
}

func TestCodelengthDecreasesMonotonically(t *testing.T) {
	g, _ := gen.PlantedPartition(3, gen.PlantedConfig{
		N: 400, NumComms: 10, AvgDegree: 8, Mixing: 0.15,
	})
	res := Run(g, Config{Seed: 7})
	last := math.Inf(1)
	for i, l := range res.MDLTrace {
		if l > last+1e-9 {
			t.Fatalf("MDL increased at outer iteration %d: %v -> %v", i, last, l)
		}
		last = l
	}
	if res.OuterIterations < 1 {
		t.Fatal("no outer iterations recorded")
	}
}

func TestRecoversPlantedCommunities(t *testing.T) {
	g, truth := gen.PlantedPartition(11, gen.PlantedConfig{
		N: 600, NumComms: 12, AvgDegree: 10, Mixing: 0.1,
	})
	res := Run(g, Config{Seed: 5})
	nmi := metrics.NMI(res.Communities, truth)
	if nmi < 0.85 {
		t.Fatalf("NMI vs planted truth = %.3f, want >= 0.85 (found %d modules for 12 planted)",
			nmi, res.NumModules)
	}
}

func TestDisconnectedComponentsStaySeparate(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	res := Run(g, Config{Seed: 2})
	c := res.Communities
	if c[0] == c[3] {
		t.Fatalf("disconnected components merged: %v", c)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	g, _ := gen.PlantedPartition(13, gen.PlantedConfig{
		N: 300, NumComms: 8, AvgDegree: 8, Mixing: 0.2,
	})
	a := Run(g, Config{Seed: 42})
	b := Run(g, Config{Seed: 42})
	if a.Codelength != b.Codelength || a.NumModules != b.NumModules {
		t.Fatalf("same seed, different results: L %v vs %v, k %d vs %d",
			a.Codelength, b.Codelength, a.NumModules, b.NumModules)
	}
	for u := range a.Communities {
		if a.Communities[u] != b.Communities[u] {
			t.Fatalf("assignments differ at %d", u)
		}
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	g, _ := gen.PlantedPartition(17, gen.PlantedConfig{
		N: 500, NumComms: 10, AvgDegree: 8, Mixing: 0.3,
	})
	res := Run(g, Config{Seed: 1, MaxIterations: 1})
	if res.OuterIterations != 1 {
		t.Fatalf("OuterIterations = %d, want 1", res.OuterIterations)
	}
}

func TestMergeRateTraceShape(t *testing.T) {
	g, _ := gen.PlantedPartition(19, gen.PlantedConfig{
		N: 800, NumComms: 16, AvgDegree: 8, Mixing: 0.15,
	})
	res := Run(g, Config{Seed: 3})
	if len(res.MergeRate) != res.OuterIterations {
		t.Fatalf("MergeRate has %d entries for %d iterations",
			len(res.MergeRate), res.OuterIterations)
	}
	// First iteration merges most vertices on a well-clustered graph.
	if res.MergeRate[0] < 0.5 {
		t.Errorf("first-iteration merge rate = %.2f, want >= 0.5", res.MergeRate[0])
	}
	for i, r := range res.MergeRate {
		if r < 0 || r > 1 {
			t.Errorf("merge rate [%d] = %v out of [0,1]", i, r)
		}
	}
}

func TestCommunitiesAreDense(t *testing.T) {
	g, _ := gen.PlantedPartition(23, gen.PlantedConfig{
		N: 200, NumComms: 5, AvgDegree: 8, Mixing: 0.2,
	})
	res := Run(g, Config{Seed: 9})
	seen := make([]bool, res.NumModules)
	for _, c := range res.Communities {
		if c < 0 || c >= res.NumModules {
			t.Fatalf("community id %d out of [0,%d)", c, res.NumModules)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("community id %d unused", c)
		}
	}
}

func TestFinalCodelengthMatchesPartition(t *testing.T) {
	// The reported codelength must equal a from-scratch evaluation of
	// the reported partition on the ORIGINAL graph (two-level property
	// of the aggregation: L is invariant under contraction).
	g, _ := gen.PlantedPartition(29, gen.PlantedConfig{
		N: 300, NumComms: 10, AvgDegree: 8, Mixing: 0.2,
	})
	res := Run(g, Config{Seed: 4})
	l := CodelengthOf(g, res.Communities)
	if math.Abs(l-res.Codelength) > 1e-6 {
		t.Fatalf("reported L = %v, partition evaluates to %v", res.Codelength, l)
	}
}

func TestBetterThanModularityNull(t *testing.T) {
	// Infomap's partition should have strongly positive modularity on a
	// community-structured graph (cross-metric sanity).
	g, _ := gen.PlantedPartition(31, gen.PlantedConfig{
		N: 400, NumComms: 8, AvgDegree: 10, Mixing: 0.15,
	})
	res := Run(g, Config{Seed: 6})
	if q := metrics.Modularity(g, res.Communities); q < 0.4 {
		t.Fatalf("modularity of Infomap partition = %.3f, want >= 0.4", q)
	}
}

func TestStarGraphSingleModule(t *testing.T) {
	b := graph.NewBuilder(6)
	for v := 1; v < 6; v++ {
		b.AddEdge(0, v)
	}
	res := Run(b.Build(), Config{Seed: 1})
	// A star compresses best as a single module.
	if res.NumModules != 1 {
		t.Fatalf("star NumModules = %d, want 1", res.NumModules)
	}
}

func TestDeltaEvaluationsCounted(t *testing.T) {
	g, _ := gen.PlantedPartition(37, gen.PlantedConfig{
		N: 200, NumComms: 5, AvgDegree: 6, Mixing: 0.2,
	})
	res := Run(g, Config{Seed: 2})
	if res.DeltaEvaluations <= 0 {
		t.Fatal("DeltaEvaluations not counted")
	}
	if res.Moves <= 0 {
		t.Fatal("Moves not counted")
	}
}

package infomap

import (
	"dinfomap/internal/graph"
	"dinfomap/internal/mapeq"
)

// CodelengthOf evaluates the two-level map equation of an arbitrary
// partition on g, from scratch. Used to validate reported codelengths
// and to compare partitions produced by different algorithms on equal
// footing.
func CodelengthOf(g *graph.Graph, comm []int) float64 {
	flow := mapeq.NewVertexFlow(g)
	return recomputeL(g, flow, comm, flow.SumPlogpP)
}

package partition

import (
	"fmt"
	"testing"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
)

func benchGraph() *graph.Graph {
	return gen.PowerLawGraph(42, 20000, 2.0, 2, 2000)
}

func BenchmarkOneD(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OneD(g, 16)
	}
}

func BenchmarkDelegate(b *testing.B) {
	g := benchGraph()
	for _, rebalance := range []bool{true, false} {
		b.Run(fmt.Sprintf("rebalance=%v", rebalance), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Delegate(g, 16, DelegateOptions{NoRebalance: !rebalance})
			}
		})
	}
}

func BenchmarkGhostCounts(b *testing.B) {
	g := benchGraph()
	l := Delegate(g, 16, DelegateOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.GhostCounts()
	}
}

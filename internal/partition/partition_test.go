package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
)

// star returns a hub-and-spokes graph plus a few spoke-spoke edges.
func star(spokes int) *graph.Graph {
	b := graph.NewBuilder(spokes + 1)
	for v := 1; v <= spokes; v++ {
		b.AddEdge(0, v)
	}
	for v := 1; v+1 <= spokes; v += 2 {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

func TestRoundRobinOwner(t *testing.T) {
	owner := RoundRobinOwner(10, 3)
	for u, r := range owner {
		if r != u%3 {
			t.Fatalf("owner[%d] = %d, want %d", u, r, u%3)
		}
	}
}

func TestOneDAssignsAllArcs(t *testing.T) {
	g := star(20)
	l := OneD(g, 4)
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, arcs := range l.RankArcs {
		total += len(arcs)
	}
	if total != g.NumArcs() {
		t.Fatalf("assigned %d arcs, graph has %d", total, g.NumArcs())
	}
}

func TestOneDHubImbalance(t *testing.T) {
	// The hub (vertex 0, owned by rank 0) makes rank 0's load dominate:
	// this is precisely the pathology of Figure 1.
	g := star(100)
	l := OneD(g, 4)
	st := l.Stats()
	if st.MaxEdges < 100 {
		t.Fatalf("hub owner load = %d, want >= 100", st.MaxEdges)
	}
	if st.EdgeImbalance < 1.5 {
		t.Fatalf("imbalance = %.2f, expected severe for a star under 1D", st.EdgeImbalance)
	}
}

func TestDelegateBalancesStar(t *testing.T) {
	g := star(100)
	l := Delegate(g, 4, DelegateOptions{})
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !l.IsHub[0] {
		t.Fatal("vertex 0 (degree 100) not delegated with threshold p=4")
	}
	st := l.Stats()
	if st.EdgeImbalance > 1.3 {
		t.Fatalf("delegate imbalance = %.2f, want <= 1.3", st.EdgeImbalance)
	}
}

func TestDelegateDefaultThresholdIsP(t *testing.T) {
	g := star(10)
	l := Delegate(g, 8, DelegateOptions{})
	if l.DHigh != 8 {
		t.Fatalf("DHigh = %d, want 8 (the paper's default)", l.DHigh)
	}
	// Vertex 0 has degree 10 > 8 -> hub; spokes have degree <= 2.
	if l.NumHubs != 1 {
		t.Fatalf("NumHubs = %d, want 1", l.NumHubs)
	}
}

func TestDelegateExplicitThreshold(t *testing.T) {
	g := star(10)
	l := Delegate(g, 2, DelegateOptions{DHigh: 1000})
	if l.NumHubs != 0 {
		t.Fatalf("NumHubs = %d, want 0 with a huge threshold", l.NumHubs)
	}
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestDelegateSingleRank(t *testing.T) {
	g := star(20)
	l := Delegate(g, 1, DelegateOptions{})
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(l.RankArcs[0]) != g.NumArcs() {
		t.Fatalf("rank 0 has %d arcs, want all %d", len(l.RankArcs[0]), g.NumArcs())
	}
}

func TestDelegateHubArcsColocateWithTarget(t *testing.T) {
	g := star(40)
	l := Delegate(g, 4, DelegateOptions{NoRebalance: true})
	for r, arcs := range l.RankArcs {
		for _, a := range arcs {
			if l.IsHub[a.U] && !l.IsHub[a.V] && l.Owner[a.V] != r {
				t.Fatalf("hub arc (%d,%d) on rank %d, target owner %d (no rebalance)",
					a.U, a.V, r, l.Owner[a.V])
			}
		}
	}
}

func TestGhostsExcludeHubsAndOwned(t *testing.T) {
	g := star(40)
	l := Delegate(g, 4, DelegateOptions{})
	for r := 0; r < 4; r++ {
		for _, v := range l.Ghosts(r) {
			if l.IsHub[v] {
				t.Fatalf("hub %d listed as ghost on rank %d", v, r)
			}
			if l.Owner[v] == r {
				t.Fatalf("owned vertex %d listed as ghost on its own rank %d", v, r)
			}
		}
	}
}

func TestRebalanceReducesSpread(t *testing.T) {
	// Scale-free graph: rebalancing should not increase the max load.
	g := gen.PowerLawGraph(3, 3000, 2.0, 2, 300)
	with := Delegate(g, 8, DelegateOptions{})
	without := Delegate(g, 8, DelegateOptions{NoRebalance: true})
	if with.Stats().MaxEdges > without.Stats().MaxEdges {
		t.Fatalf("rebalance increased max load: %d > %d",
			with.Stats().MaxEdges, without.Stats().MaxEdges)
	}
	if err := with.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestDelegateBeats1DOnScaleFree reproduces the headline claim of
// Figures 6-7 in miniature: on a power-law graph the delegate layout has
// a much tighter edge spread and ghost spread than 1D.
func TestDelegateBeats1DOnScaleFree(t *testing.T) {
	g := gen.PowerLawGraph(7, 5000, 1.9, 2, 500)
	p := 16
	oneD := OneD(g, p).Stats()
	del := Delegate(g, p, DelegateOptions{}).Stats()

	if del.EdgeImbalance >= oneD.EdgeImbalance {
		t.Errorf("delegate imbalance %.2f not better than 1D %.2f",
			del.EdgeImbalance, oneD.EdgeImbalance)
	}
	if del.MaxEdges >= oneD.MaxEdges {
		t.Errorf("delegate max edges %d not better than 1D %d", del.MaxEdges, oneD.MaxEdges)
	}
	if del.MaxGhosts > oneD.MaxGhosts {
		t.Errorf("delegate max ghosts %d worse than 1D %d", del.MaxGhosts, oneD.MaxGhosts)
	}
}

func TestOneDPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneD(star(3), 0)
}

func TestStatsOnEmptyRanks(t *testing.T) {
	// More ranks than vertices: some ranks get nothing; stats must not
	// divide by zero or panic.
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	l := OneD(g, 8)
	st := l.Stats()
	if st.MinEdges != 0 {
		t.Fatalf("MinEdges = %d, want 0", st.MinEdges)
	}
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// Property: both layouts assign every arc exactly once on random graphs.
func TestPropertyLayoutsComplete(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := int(pRaw)%7 + 1
		n := 20 + rng.Intn(50)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		l1 := OneD(g, p)
		l2 := Delegate(g, p, DelegateOptions{})
		l3 := Delegate(g, p, DelegateOptions{NoRebalance: true})
		return l1.Validate(g) == nil && l2.Validate(g) == nil && l3.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: total arc count is preserved by rebalancing.
func TestPropertyRebalancePreservesArcs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < 6*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		l := Delegate(g, 4, DelegateOptions{})
		total := 0
		for _, arcs := range l.RankArcs {
			total += len(arcs)
		}
		return total == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOwner(t *testing.T) {
	owner := BlockOwner(10, 3)
	// Contiguous non-decreasing slabs covering [0,3).
	prev := 0
	for u, r := range owner {
		if r < prev || r > 2 {
			t.Fatalf("owner[%d] = %d not a contiguous slab", u, r)
		}
		prev = r
	}
	if owner[0] != 0 || owner[9] != 2 {
		t.Fatalf("endpoints: %v", owner)
	}
}

func TestOneDBlockImbalanceOnDegreeSortedHub(t *testing.T) {
	// Degree-sorted star: vertex 0 is the hub, so the first block gets
	// nearly every arc — the Figure 1 pathology in its purest form.
	b := graph.NewBuilder(40)
	for v := 1; v < 40; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	st := OneD(g, 4).Stats()
	if st.MaxEdges < 39 {
		t.Fatalf("hub block has %d arcs, want >= 39", st.MaxEdges)
	}
	if st.MinEdges > 10 {
		t.Fatalf("tail block has %d arcs, expected starvation", st.MinEdges)
	}
}

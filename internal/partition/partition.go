// Package partition implements the two graph distribution strategies the
// paper compares: plain 1D round-robin partitioning, and the delegate
// partitioning of Pearce et al. (SC'14) that the paper adopts to balance
// both workload and communication on scale-free graphs (Section 3.3).
//
// A Layout assigns every *arc* (directed evaluation edge) of the graph to
// a rank. Each vertex u owned by rank r keeps its full adjacency as arcs
// (u, v) on r, because the Infomap inner loop needs all neighbors of u to
// evaluate delta-L. High-degree vertices ("hubs") are instead duplicated
// on every rank as delegates, and their arcs are placed with the arc's
// target (then optionally rebalanced), so no single rank carries a hub's
// entire adjacency.
package partition

import (
	"fmt"
	"sort"

	"dinfomap/internal/graph"
)

// Arc is one directed evaluation edge: the rank holding it evaluates
// vertex U against neighbor V with edge weight W.
type Arc struct {
	U, V int
	W    float64
}

// Layout is the result of partitioning a graph over P ranks.
type Layout struct {
	P     int
	DHigh int // hub threshold used (0 for 1D layouts)

	// Owner[u] is the home rank of vertex u (round-robin u mod P).
	// Hubs also have a home rank, used for merge-phase ownership.
	Owner []int
	// IsHub[u] reports whether u is duplicated on all ranks.
	IsHub []bool
	// RankArcs[r] lists the arcs assigned to rank r.
	RankArcs [][]Arc
	// NumHubs is the number of delegated vertices.
	NumHubs int
}

// RoundRobinOwner returns the 1D round-robin ownership map u -> u mod p.
// Delegate partitioning uses it for the low-degree vertices
// (Section 3.3, "a round-robin 1D partitioning").
func RoundRobinOwner(n, p int) []int {
	owner := make([]int, n)
	for u := range owner {
		owner[u] = u % p
	}
	return owner
}

// BlockOwner returns the contiguous-range 1D ownership map: vertex u
// belongs to rank u*p/n. This is the conventional "1D partitioning" the
// paper compares against (Figures 1, 6, 7): each rank takes a slab of
// the vertex id space together with the full adjacency of those
// vertices. On real graphs vertex ids correlate with degree (crawl
// order, account age), so slabs containing hubs are drastically
// overloaded.
func BlockOwner(n, p int) []int {
	owner := make([]int, n)
	for u := range owner {
		owner[u] = u * p / n
	}
	return owner
}

// OneD computes the baseline 1D block layout: every vertex's full
// adjacency is stored with its owner. This is the strategy whose
// imbalance on scale-free graphs motivates the paper (Figure 1).
func OneD(g *graph.Graph, p int) *Layout {
	if p < 1 {
		panic(fmt.Sprintf("partition: OneD with p=%d", p))
	}
	n := g.NumVertices()
	if n == 0 {
		return &Layout{P: p, RankArcs: make([][]Arc, p)}
	}
	l := &Layout{
		P:        p,
		Owner:    BlockOwner(n, p),
		IsHub:    make([]bool, n),
		RankArcs: make([][]Arc, p),
	}
	for u := 0; u < n; u++ {
		r := l.Owner[u]
		g.Neighbors(u, func(v int, w float64) {
			l.RankArcs[r] = append(l.RankArcs[r], Arc{U: u, V: v, W: w})
		})
	}
	return l
}

// DelegateOptions configures Delegate partitioning.
type DelegateOptions struct {
	// DHigh is the hub degree threshold: vertices with Degree > DHigh
	// are delegated. <= 0 means the paper's default, DHigh = p
	// (Section 4: "We set the threshold d_high as the processor number").
	DHigh int
	// NoRebalance disables the fourth preprocessing step (moving
	// hub-sourced arcs toward |E|/p per rank); used by the ablation.
	NoRebalance bool
}

// Delegate computes the delegate layout of Section 3.3:
//
//  1. degrees are computed and visit probabilities derive from them
//     (handled by package mapeq);
//  2. vertices with degree > DHigh become hubs, duplicated on all ranks;
//  3. arcs with a low-degree evaluation vertex stay with that vertex's
//     owner; arcs evaluated at a hub are placed with the arc's *target*
//     (so delegate and target co-locate); hub-hub arcs round-robin;
//  4. hub-sourced arcs are reassigned from overloaded to underloaded
//     ranks until every rank is close to the mean arc count.
func Delegate(g *graph.Graph, p int, opts DelegateOptions) *Layout {
	if p < 1 {
		panic(fmt.Sprintf("partition: Delegate with p=%d", p))
	}
	dHigh := opts.DHigh
	if dHigh <= 0 {
		dHigh = p
	}
	n := g.NumVertices()
	l := &Layout{
		P:        p,
		DHigh:    dHigh,
		Owner:    RoundRobinOwner(n, p),
		IsHub:    make([]bool, n),
		RankArcs: make([][]Arc, p),
	}
	for u := 0; u < n; u++ {
		if g.Degree(u) > dHigh {
			l.IsHub[u] = true
			l.NumHubs++
		}
	}
	rr := 0 // round-robin cursor for hub-hub arcs
	for u := 0; u < n; u++ {
		uHub := l.IsHub[u]
		g.Neighbors(u, func(v int, w float64) {
			a := Arc{U: u, V: v, W: w}
			var r int
			switch {
			case !uHub:
				r = l.Owner[u] // low-degree: stay with owner
			case !l.IsHub[v]:
				r = l.Owner[v] // hub evaluated where its target lives
			default:
				r = rr % p // hub-hub: anywhere; start round-robin
				rr++
			}
			l.RankArcs[r] = append(l.RankArcs[r], a)
		})
	}
	if !opts.NoRebalance {
		l.rebalance()
	}
	return l
}

// rebalance moves hub-sourced arcs from overloaded ranks to underloaded
// ranks. Only arcs whose evaluation vertex is a hub are movable: the hub
// is present everywhere, so its partial adjacency can live on any rank,
// whereas a low-degree vertex's arcs must stay with its owner.
func (l *Layout) rebalance() {
	total := 0
	for _, arcs := range l.RankArcs {
		total += len(arcs)
	}
	mean := total / l.P
	// Ranks sorted by load, heaviest first.
	order := make([]int, l.P)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(l.RankArcs[order[a]]) > len(l.RankArcs[order[b]])
	})
	light := l.P - 1 // index into order from the light end
	for _, heavy := range order {
		for len(l.RankArcs[heavy]) > mean+1 && light >= 0 {
			dst := order[light]
			if dst == heavy || len(l.RankArcs[dst]) >= mean {
				light--
				continue
			}
			need := mean - len(l.RankArcs[dst])
			spare := len(l.RankArcs[heavy]) - mean
			moved := l.moveHubArcs(heavy, dst, minInt(need, spare))
			if moved == 0 {
				break // no movable arcs remain on this rank
			}
		}
	}
}

// moveHubArcs moves up to k hub-sourced arcs from rank src to rank dst,
// returning how many were moved.
func (l *Layout) moveHubArcs(src, dst, k int) int {
	if k <= 0 {
		return 0
	}
	arcs := l.RankArcs[src]
	moved := 0
	for i := len(arcs) - 1; i >= 0 && moved < k; i-- {
		if l.IsHub[arcs[i].U] {
			l.RankArcs[dst] = append(l.RankArcs[dst], arcs[i])
			arcs[i] = arcs[len(arcs)-1]
			arcs = arcs[:len(arcs)-1]
			moved++
		}
	}
	l.RankArcs[src] = arcs
	return moved
}

// EdgeCounts returns the number of arcs on each rank — the workload
// measure of Figure 6 ("the total workload is proportional to the total
// edge number on this processor").
func (l *Layout) EdgeCounts() []int {
	counts := make([]int, l.P)
	for r, arcs := range l.RankArcs {
		counts[r] = len(arcs)
	}
	return counts
}

// Ghosts returns the sorted ghost vertices of rank r: vertices referenced
// by local arcs that are neither owned by r nor delegates. Communication
// volume is proportional to the ghost count (Figure 7).
func (l *Layout) Ghosts(r int) []int {
	seen := make(map[int]bool)
	for _, a := range l.RankArcs[r] {
		for _, x := range [2]int{a.U, a.V} {
			if !l.IsHub[x] && l.Owner[x] != r {
				seen[x] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// GhostCounts returns the ghost vertex count of each rank.
func (l *Layout) GhostCounts() []int {
	counts := make([]int, l.P)
	for r := range counts {
		counts[r] = len(l.Ghosts(r))
	}
	return counts
}

// BalanceStats summarizes a layout for the Figure 6/7 experiments.
type BalanceStats struct {
	MinEdges, MaxEdges   int
	MinGhosts, MaxGhosts int
	NumHubs              int
	// EdgeImbalance is MaxEdges / mean edges (1.0 = perfectly balanced).
	EdgeImbalance float64
}

// Stats computes the balance summary of l.
func (l *Layout) Stats() BalanceStats {
	edges := l.EdgeCounts()
	ghosts := l.GhostCounts()
	st := BalanceStats{
		MinEdges:  minSlice(edges),
		MaxEdges:  maxSlice(edges),
		MinGhosts: minSlice(ghosts),
		MaxGhosts: maxSlice(ghosts),
		NumHubs:   l.NumHubs,
	}
	total := 0
	for _, e := range edges {
		total += e
	}
	if total > 0 {
		st.EdgeImbalance = float64(st.MaxEdges) * float64(l.P) / float64(total)
	}
	return st
}

// Validate checks layout invariants: every arc of the graph is assigned
// to exactly one rank, low-degree arcs live with their owner, and hub
// flags match the threshold. Used by tests.
func (l *Layout) Validate(g *graph.Graph) error {
	n := g.NumVertices()
	if len(l.Owner) != n || len(l.IsHub) != n {
		return fmt.Errorf("partition: owner/hub arrays sized %d/%d for %d vertices",
			len(l.Owner), len(l.IsHub), n)
	}
	// Count arcs per (u,v) pair across ranks.
	type key struct{ u, v int }
	assigned := make(map[key]int)
	for r, arcs := range l.RankArcs {
		for _, a := range arcs {
			assigned[key{a.U, a.V}]++
			if !l.IsHub[a.U] && l.Owner[a.U] != r {
				return fmt.Errorf("partition: low-degree arc (%d,%d) on rank %d, owner is %d",
					a.U, a.V, r, l.Owner[a.U])
			}
			//dinfomap:float-ok invariant check: rank arcs store bit-identical copies of graph weights
			if w := g.EdgeWeight(a.U, a.V); w != a.W {
				return fmt.Errorf("partition: arc (%d,%d) weight %v, graph has %v", a.U, a.V, a.W, w)
			}
		}
	}
	for u := 0; u < n; u++ {
		var wantHub bool
		if l.DHigh > 0 {
			wantHub = g.Degree(u) > l.DHigh
		}
		if l.IsHub[u] != wantHub {
			return fmt.Errorf("partition: IsHub[%d] = %v, degree %d, threshold %d",
				u, l.IsHub[u], g.Degree(u), l.DHigh)
		}
		count := 0
		g.Neighbors(u, func(v int, _ float64) {
			if assigned[key{u, v}] != 1 {
				count++
			}
		})
		if count != 0 {
			return fmt.Errorf("partition: vertex %d has %d arcs not assigned exactly once", u, count)
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minSlice(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxSlice(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

package dirinfomap

import (
	"sort"

	"dinfomap/internal/digraph"
)

// link is one directed flow link in a level network.
type link struct {
	to   int
	flow float64
}

// network is one agglomeration level: nodes carrying stationary flow
// quantities and normalized directed link flows. Self-flow is kept
// separate — it never contributes to exits.
type network struct {
	n0 int // original vertex count (teleport denominator)

	p        []float64 // visit rate per node
	tele     []float64 // teleport mass per node (tau + dangling share)
	members  []int     // original vertices contained in each node
	selfFlow []float64 // flow alpha -> alpha
	out      [][]link  // outgoing link flows, excluding self
	in       [][]link  // incoming link flows, excluding self
}

func (nw *network) size() int { return len(nw.p) }

// newLevel0 builds the level-0 network from a directed graph and its
// stationary flow.
func newLevel0(g *digraph.Graph, f *Flow) *network {
	n := g.NumVertices()
	nw := &network{
		n0:       n,
		p:        make([]float64, n),
		tele:     make([]float64, n),
		members:  make([]int, n),
		selfFlow: make([]float64, n),
		out:      make([][]link, n),
		in:       make([][]link, n),
	}
	copy(nw.p, f.P)
	for u := 0; u < n; u++ {
		nw.members[u] = 1
		s := g.OutStrength(u)
		//dinfomap:float-ok dangling test: out-strength sums strictly positive weights, exactly 0 iff no out-arcs
		if s == 0 {
			// Dangling: the whole (1-tau) share also teleports.
			nw.tele[u] = f.P[u]
			continue
		}
		nw.tele[u] = f.Tau * f.P[u]
		share := (1 - f.Tau) * f.P[u] / s
		g.OutNeighbors(u, func(v int, w float64) {
			flow := share * w
			if v == u {
				nw.selfFlow[u] += flow
				return
			}
			nw.out[u] = append(nw.out[u], link{to: v, flow: flow})
			nw.in[v] = append(nw.in[v], link{to: u, flow: flow})
		})
	}
	for u := 0; u < n; u++ {
		sortLinks(nw.out[u])
		sortLinks(nw.in[u])
	}
	return nw
}

// contract aggregates the network by the (dense) assignment comm,
// producing the next level.
func (nw *network) contract(comm []int, k int) *network {
	next := &network{
		n0:       nw.n0,
		p:        make([]float64, k),
		tele:     make([]float64, k),
		members:  make([]int, k),
		selfFlow: make([]float64, k),
		out:      make([][]link, k),
		in:       make([][]link, k),
	}
	type key struct{ a, b int }
	acc := make(map[key]float64)
	for u := 0; u < nw.size(); u++ {
		cu := comm[u]
		next.p[cu] += nw.p[u]
		next.tele[cu] += nw.tele[u]
		next.members[cu] += nw.members[u]
		next.selfFlow[cu] += nw.selfFlow[u]
		for _, l := range nw.out[u] {
			cv := comm[l.to]
			if cv == cu {
				next.selfFlow[cu] += l.flow
			} else {
				acc[key{cu, cv}] += l.flow
			}
		}
	}
	// Deterministic link order.
	keys := make([]key, 0, len(acc))
	for kk := range acc {
		keys = append(keys, kk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, kk := range keys {
		fl := acc[kk]
		next.out[kk.a] = append(next.out[kk.a], link{to: kk.b, flow: fl})
		next.in[kk.b] = append(next.in[kk.b], link{to: kk.a, flow: fl})
	}
	return next
}

// outTotal returns the total outgoing link flow of node u (excluding
// self-flow).
func (nw *network) outTotal(u int) float64 {
	s := 0.0
	for _, l := range nw.out[u] {
		s += l.flow
	}
	return s
}

func sortLinks(ls []link) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].to < ls[j].to })
}

// Package dirinfomap implements the directed Infomap extension the
// paper claims for its method (Section 2.2): the map equation over the
// stationary distribution of a teleporting random walk (PageRank-style),
// minimized by the same greedy agglomerative scheme as the undirected
// algorithm.
//
// Flow conventions (Rosvall & Bergstrom 2008):
//
//   - visit rates p_alpha solve p = tau/n + (1-tau)(W^T p + dangling/n)
//   - the "teleport mass" of alpha, t_alpha = tau*p_alpha +
//     (1-tau)*p_alpha*[alpha dangling], leaves alpha uniformly over all
//     n original vertices;
//   - the link flow along arc (alpha -> beta) is
//     l_ab = (1-tau) * p_alpha * w_ab / outStrength(alpha);
//   - a module's exit probability is
//     q_m = t_m * (n - members_m)/n  +  sum of link flows leaving m,
//     and the codelength is the same Eq. 3 form as the undirected case.
package dirinfomap

import (
	"math"

	"dinfomap/internal/digraph"
)

// DefaultTau is the standard teleportation probability.
const DefaultTau = 0.15

// Flow holds the stationary flow of a directed graph.
type Flow struct {
	// P[u] is the stationary visit rate of u.
	P []float64
	// Tau is the teleportation probability used.
	Tau float64
	// Iterations is how many power iterations were needed.
	Iterations int
	// SumPlogpP is the constant vertex term of the map equation.
	SumPlogpP float64
}

// NewFlow computes the stationary visit rates of g by power iteration
// with teleportation tau (<= 0 means DefaultTau). Converges to L1
// error < 1e-13 or 1000 iterations.
func NewFlow(g *digraph.Graph, tau float64) *Flow {
	if tau <= 0 {
		tau = DefaultTau
	}
	n := g.NumVertices()
	f := &Flow{Tau: tau, P: make([]float64, n)}
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if n == 0 || g.TotalWeight() == 0 {
		return f
	}
	outStrength := make([]float64, n)
	for u := 0; u < n; u++ {
		outStrength[u] = g.OutStrength(u)
	}
	p := f.P
	for u := range p {
		p[u] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < 1000; iter++ {
		dangling := 0.0
		for u := 0; u < n; u++ {
			//dinfomap:float-ok dangling test: out-strength sums strictly positive weights, exactly 0 iff no out-arcs
			if outStrength[u] == 0 {
				dangling += p[u]
			}
		}
		base := tau/float64(n) + (1-tau)*dangling/float64(n)
		for u := range next {
			next[u] = base
		}
		for u := 0; u < n; u++ {
			//dinfomap:float-ok dangling test: out-strength sums strictly positive weights, exactly 0 iff no out-arcs
			if outStrength[u] == 0 {
				continue
			}
			share := (1 - tau) * p[u] / outStrength[u]
			g.OutNeighbors(u, func(v int, w float64) {
				next[v] += share * w
			})
		}
		var diff float64
		for u := range p {
			diff += math.Abs(next[u] - p[u])
		}
		p, next = next, p
		f.Iterations = iter + 1
		if diff < 1e-13 {
			break
		}
	}
	copy(f.P, p)
	for _, pu := range f.P {
		f.SumPlogpP += plogp(pu)
	}
	return f
}

func plogp(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log2(x)
}

package dirinfomap

import (
	"math"

	"dinfomap/internal/digraph"
	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
)

// Config controls a directed Infomap run.
type Config struct {
	// Tau is the teleportation probability; <= 0 means DefaultTau.
	Tau float64
	// Theta is the outer-loop improvement threshold; <= 0 means 1e-10.
	Theta float64
	// MaxIterations bounds outer rounds; <= 0 means 25.
	MaxIterations int
	// MaxSweeps bounds inner sweeps per level; <= 0 means 100.
	MaxSweeps int
	// Seed randomizes visit order.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Tau <= 0 {
		c.Tau = DefaultTau
	}
	if c.Theta <= 0 {
		c.Theta = 1e-10
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 25
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 100
	}
	return c
}

// Result reports a finished directed run.
type Result struct {
	// Communities assigns each vertex its final module (dense ids).
	Communities []int
	// NumModules is the number of final modules.
	NumModules int
	// Codelength is the final directed map equation value in bits.
	Codelength float64
	// InitialCodelength is L of the all-singleton partition.
	InitialCodelength float64
	// OuterIterations counts optimize+contract rounds.
	OuterIterations int
	// FlowIterations is how many power iterations the flow needed.
	FlowIterations int
}

// dmod is one module's statistics during optimization.
type dmod struct {
	sumP     float64 // sum of visit rates
	tele     float64 // sum of teleport masses
	members  int     // original vertices contained
	exitLink float64 // link flow leaving the module
}

// exitPr returns the module's exit probability: teleportation that
// lands outside plus link flow that leaves.
func (m dmod) exitPr(n0 int) float64 {
	if m.members == 0 {
		return 0
	}
	q := m.tele*float64(n0-m.members)/float64(n0) + m.exitLink
	if q < 0 {
		q = 0
	}
	return q
}

// Run executes directed Infomap on g.
func Run(g *digraph.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	res := &Result{Communities: make([]int, n)}
	for u := range res.Communities {
		res.Communities[u] = u
	}
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if n == 0 || g.TotalWeight() == 0 {
		res.NumModules = n
		return res
	}
	flow := NewFlow(g, cfg.Tau)
	res.FlowIterations = flow.Iterations
	nw := newLevel0(g, flow)
	rng := gen.NewRNG(cfg.Seed + 0xc2b2ae35)

	prevL := math.Inf(1)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		comm, l, initialL := optimizeNetwork(nw, flow.SumPlogpP, rng, cfg.MaxSweeps)
		if iter == 0 {
			res.InitialCodelength = initialL
		}
		dense, k := graph.Renumber(comm)
		res.OuterIterations++
		for u := range res.Communities {
			res.Communities[u] = dense[res.Communities[u]]
		}
		res.Codelength = l
		res.NumModules = k
		if k == nw.size() || prevL-l < cfg.Theta && iter > 0 {
			break
		}
		prevL = l
		nw = nw.contract(dense, k)
		if nw.size() <= 1 {
			break
		}
	}
	dense, k := graph.Renumber(res.Communities)
	res.Communities = dense
	res.NumModules = k
	return res
}

// optimizeNetwork runs the greedy move loop on one level network,
// starting from singletons.
func optimizeNetwork(nw *network, vertexTerm float64, rng *gen.RNG, maxSweeps int) (comm []int, finalL, initialL float64) {
	n := nw.size()
	comm = make([]int, n)
	mods := make([]dmod, n)
	for u := 0; u < n; u++ {
		comm[u] = u
		mods[u] = dmod{
			sumP:     nw.p[u],
			tele:     nw.tele[u],
			members:  nw.members[u],
			exitLink: nw.outTotal(u),
		}
	}
	agg := aggregate(mods, nw.n0, vertexTerm)
	initialL = agg.l()

	order := rng.Perm(n)
	outTo := make([]float64, n)
	inFrom := make([]float64, n)
	var touched []int
	for sweep := 0; sweep < maxSweeps; sweep++ {
		moves := 0
		rng.Shuffle(order)
		for _, u := range order {
			from := comm[u]
			touched = touched[:0]
			// Flows between u and each neighbor module.
			for _, l := range nw.out[u] {
				c := comm[l.to]
				//dinfomap:float-ok untouched-slot sentinel: cleared to exact 0, only positive flows added
				if outTo[c] == 0 && inFrom[c] == 0 {
					touched = append(touched, c)
				}
				outTo[c] += l.flow
			}
			for _, l := range nw.in[u] {
				c := comm[l.to]
				//dinfomap:float-ok untouched-slot sentinel: cleared to exact 0, only positive flows added
				if outTo[c] == 0 && inFrom[c] == 0 {
					touched = append(touched, c)
				}
				inFrom[c] += l.flow
			}
			if len(touched) == 0 {
				continue
			}
			uStat := nodeStat{
				p: nw.p[u], tele: nw.tele[u],
				members: nw.members[u], outTotal: nw.outTotal(u),
			}
			best := 0.0
			bestC := from
			for _, c := range touched {
				if c == from {
					continue
				}
				d := deltaMove(agg, nw.n0, mods[from], mods[c], uStat,
					outTo[from], inFrom[from], outTo[c], inFrom[c])
				if d < best-1e-15 {
					best = d
					bestC = c
				}
			}
			if bestC != from {
				var nf, nt dmod
				agg, nf, nt = applyMove(agg, nw.n0, mods[from], mods[bestC], uStat,
					outTo[from], inFrom[from], outTo[bestC], inFrom[bestC])
				mods[from] = nf
				mods[bestC] = nt
				comm[u] = bestC
				moves++
			}
			for _, c := range touched {
				outTo[c] = 0
				inFrom[c] = 0
			}
		}
		if moves == 0 {
			break
		}
	}
	// Drift-free final codelength.
	finalL = recomputeL(nw, comm, vertexTerm)
	return comm, finalL, initialL
}

// aggregates for the directed map equation (same Eq. 3 form).
type dagg struct {
	qTotal     float64
	sumQLogQ   float64
	sumQPLogQP float64
	vertexTerm float64
}

func (a dagg) l() float64 {
	return plogp(a.qTotal) - 2*a.sumQLogQ - a.vertexTerm + a.sumQPLogQP
}

func aggregate(mods []dmod, n0 int, vertexTerm float64) dagg {
	a := dagg{vertexTerm: vertexTerm}
	for _, m := range mods {
		if m.members == 0 {
			continue
		}
		q := m.exitPr(n0)
		a.qTotal += q
		a.sumQLogQ += plogp(q)
		a.sumQPLogQP += plogp(q + m.sumP)
	}
	return a
}

// nodeStat carries the moving node's own flow quantities.
type nodeStat struct {
	p, tele  float64
	members  int
	outTotal float64
}

// moveOutcome computes the updated modules after moving u from i to j.
// outToI/inFromI are u's link flows to/from the *other* members of i;
// outToJ/inFromJ its flows to/from j's members.
func moveOutcome(n0 int, i, j dmod, u nodeStat, outToI, inFromI, outToJ, inFromJ float64) (ni, nj dmod) {
	ni = dmod{
		sumP:    i.sumP - u.p,
		tele:    i.tele - u.tele,
		members: i.members - u.members,
		// Links u -> outside(i) leave with u; links i' -> u become exits.
		exitLink: i.exitLink - (u.outTotal - outToI) + inFromI,
	}
	nj = dmod{
		sumP:    j.sumP + u.p,
		tele:    j.tele + u.tele,
		members: j.members + u.members,
		// u's links to non-j now exit from j; links j -> u stop exiting.
		exitLink: j.exitLink + (u.outTotal - outToJ) - inFromJ,
	}
	if ni.members == 0 {
		ni = dmod{}
	}
	clampDmod(&ni)
	clampDmod(&nj)
	return ni, nj
}

func clampDmod(m *dmod) {
	if m.exitLink < 0 && m.exitLink > -1e-12 {
		m.exitLink = 0
	}
	if m.sumP < 0 && m.sumP > -1e-12 {
		m.sumP = 0
	}
	if m.tele < 0 && m.tele > -1e-12 {
		m.tele = 0
	}
}

func applyMove(a dagg, n0 int, i, j dmod, u nodeStat, outToI, inFromI, outToJ, inFromJ float64) (dagg, dmod, dmod) {
	ni, nj := moveOutcome(n0, i, j, u, outToI, inFromI, outToJ, inFromJ)
	qi, qj := i.exitPr(n0), j.exitPr(n0)
	nqi, nqj := ni.exitPr(n0), nj.exitPr(n0)
	a.qTotal += nqi + nqj - qi - qj
	if a.qTotal < 0 {
		a.qTotal = 0
	}
	a.sumQLogQ += plogp(nqi) + plogp(nqj) - plogp(qi) - plogp(qj)
	a.sumQPLogQP += plogp(nqi+ni.sumP) + plogp(nqj+nj.sumP) -
		plogp(qi+i.sumP) - plogp(qj+j.sumP)
	return a, ni, nj
}

func deltaMove(a dagg, n0 int, i, j dmod, u nodeStat, outToI, inFromI, outToJ, inFromJ float64) float64 {
	na, _, _ := applyMove(a, n0, i, j, u, outToI, inFromI, outToJ, inFromJ)
	return na.l() - a.l()
}

// recomputeL evaluates L of the assignment on nw from scratch.
func recomputeL(nw *network, comm []int, vertexTerm float64) float64 {
	dense, k := graph.Renumber(comm)
	mods := make([]dmod, k)
	for u := 0; u < nw.size(); u++ {
		c := dense[u]
		mods[c].sumP += nw.p[u]
		mods[c].tele += nw.tele[u]
		mods[c].members += nw.members[u]
		for _, l := range nw.out[u] {
			if dense[l.to] != c {
				mods[c].exitLink += l.flow
			}
		}
	}
	return aggregate(mods, nw.n0, vertexTerm).l()
}

// CodelengthOf evaluates the directed map equation of an arbitrary
// partition on g (with teleportation tau; <= 0 means DefaultTau).
func CodelengthOf(g *digraph.Graph, comm []int, tau float64) float64 {
	flow := NewFlow(g, tau)
	nw := newLevel0(g, flow)
	return recomputeL(nw, comm, flow.SumPlogpP)
}

package dirinfomap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dinfomap/internal/digraph"
	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/metrics"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

// dicycle returns a directed k-cycle on consecutive vertex blocks,
// joined by single arcs — clear directed community structure.
func twoDiCliques() *digraph.Graph {
	b := digraph.NewBuilder(8)
	// Two 4-vertex directed "cliques" (full bidirectional within).
	for base := 0; base < 8; base += 4 {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i != j {
					b.AddArc(base+i, base+j)
				}
			}
		}
	}
	b.AddArc(0, 4) // weak bridge
	b.AddArc(4, 0)
	return b.Build()
}

func TestFlowSumsToOne(t *testing.T) {
	g := twoDiCliques()
	f := NewFlow(g, 0)
	sum := 0.0
	for _, p := range f.P {
		sum += p
	}
	if !almost(sum, 1, 1e-10) {
		t.Fatalf("flow sums to %v", sum)
	}
	if f.Iterations < 2 {
		t.Fatalf("suspiciously few flow iterations: %d", f.Iterations)
	}
}

func TestFlowUniformOnSymmetricGraph(t *testing.T) {
	// Directed ring: perfectly symmetric, so p is uniform.
	b := digraph.NewBuilder(10)
	for u := 0; u < 10; u++ {
		b.AddArc(u, (u+1)%10)
	}
	f := NewFlow(b.Build(), 0.15)
	for u, p := range f.P {
		if !almost(p, 0.1, 1e-9) {
			t.Fatalf("P[%d] = %v, want 0.1", u, p)
		}
	}
}

func TestFlowDanglingHandled(t *testing.T) {
	// 0 -> 1, 1 dangling: flow must still normalize and converge.
	b := digraph.NewBuilder(2)
	b.AddArc(0, 1)
	f := NewFlow(b.Build(), 0.15)
	sum := f.P[0] + f.P[1]
	if !almost(sum, 1, 1e-10) {
		t.Fatalf("sum = %v", sum)
	}
	if f.P[1] <= f.P[0] {
		t.Fatalf("sink should accumulate more flow: %v vs %v", f.P[1], f.P[0])
	}
}

func TestEmptyAndEdgeless(t *testing.T) {
	if r := Run(digraph.NewBuilder(0).Build(), Config{}); r.NumModules != 0 {
		t.Fatalf("empty: %+v", r)
	}
	if r := Run(digraph.NewBuilder(3).Build(), Config{}); r.NumModules != 3 {
		t.Fatalf("edgeless: %+v", r)
	}
}

func TestTwoDirectedCliques(t *testing.T) {
	g := twoDiCliques()
	r := Run(g, Config{Seed: 1})
	if r.NumModules != 2 {
		t.Fatalf("NumModules = %d, want 2", r.NumModules)
	}
	c := r.Communities
	if c[0] != c[1] || c[1] != c[2] || c[2] != c[3] {
		t.Errorf("first clique split: %v", c)
	}
	if c[4] != c[5] || c[5] != c[6] || c[6] != c[7] {
		t.Errorf("second clique split: %v", c)
	}
	if c[0] == c[4] {
		t.Errorf("cliques merged: %v", c)
	}
	if r.Codelength >= r.InitialCodelength {
		t.Errorf("L = %v did not improve on %v", r.Codelength, r.InitialCodelength)
	}
}

func TestReportedCodelengthExact(t *testing.T) {
	g := randomDigraph(rand.New(rand.NewSource(3)), 40, 160)
	r := Run(g, Config{Seed: 5})
	l := CodelengthOf(g, r.Communities, 0)
	if !almost(l, r.Codelength, 1e-9) {
		t.Fatalf("reported %v, evaluated %v", r.Codelength, l)
	}
}

func TestDirectedRecoversPlantedCommunities(t *testing.T) {
	// Build a directed version of a planted undirected graph: each
	// undirected edge becomes two arcs.
	ug, truth := gen.PlantedPartition(7, gen.PlantedConfig{
		N: 400, NumComms: 8, AvgDegree: 10, Mixing: 0.1,
	})
	b := digraph.NewBuilder(ug.NumVertices())
	ug.Edges(func(u, v int, w float64) {
		b.AddWeightedArc(u, v, w)
		b.AddWeightedArc(v, u, w)
	})
	r := Run(b.Build(), Config{Seed: 3})
	if nmi := metrics.NMI(r.Communities, truth); nmi < 0.85 {
		t.Fatalf("NMI = %.3f, want >= 0.85 (modules=%d)", nmi, r.NumModules)
	}
}

func TestDeterministic(t *testing.T) {
	g := randomDigraph(rand.New(rand.NewSource(9)), 60, 240)
	a := Run(g, Config{Seed: 11})
	b := Run(g, Config{Seed: 11})
	if a.Codelength != b.Codelength || a.NumModules != b.NumModules {
		t.Fatalf("nondeterministic: %v/%v", a.Codelength, b.Codelength)
	}
}

func randomDigraph(rng *rand.Rand, n, arcs int) *digraph.Graph {
	b := digraph.NewBuilder(n)
	for i := 0; i < arcs; i++ {
		b.AddArc(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// buildMods constructs module stats from scratch for an assignment.
func buildMods(nw *network, comm []int, k int) []dmod {
	mods := make([]dmod, k)
	for u := 0; u < nw.size(); u++ {
		c := comm[u]
		mods[c].sumP += nw.p[u]
		mods[c].tele += nw.tele[u]
		mods[c].members += nw.members[u]
		for _, l := range nw.out[u] {
			if comm[l.to] != c {
				mods[c].exitLink += l.flow
			}
		}
	}
	return mods
}

// TestDeltaMatchesRecompute: the O(1) directed delta must equal the
// difference of from-scratch evaluations, across random graphs,
// assignments, and moves — the core correctness property.
func TestDeltaMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 6 + rng.Intn(15)
		g := randomDigraph(rng, n, 3*n)
		if g.TotalWeight() == 0 {
			continue
		}
		f := NewFlow(g, 0.15)
		nw := newLevel0(g, f)
		k := 2 + rng.Intn(3)
		comm := make([]int, n)
		for i := range comm {
			comm[i] = rng.Intn(k)
		}
		mods := buildMods(nw, comm, k)
		agg := aggregate(mods, nw.n0, f.SumPlogpP)

		u := rng.Intn(n)
		target := rng.Intn(k)
		if target == comm[u] {
			continue
		}
		var outToF, inFromF, outToT, inFromT float64
		for _, l := range nw.out[u] {
			if comm[l.to] == comm[u] {
				outToF += l.flow
			}
			if comm[l.to] == target {
				outToT += l.flow
			}
		}
		for _, l := range nw.in[u] {
			if comm[l.to] == comm[u] {
				inFromF += l.flow
			}
			if comm[l.to] == target {
				inFromT += l.flow
			}
		}
		uStat := nodeStat{p: nw.p[u], tele: nw.tele[u], members: nw.members[u], outTotal: nw.outTotal(u)}
		delta := deltaMove(agg, nw.n0, mods[comm[u]], mods[target], uStat,
			outToF, inFromF, outToT, inFromT)

		comm2 := make([]int, n)
		copy(comm2, comm)
		comm2[u] = target
		ref := aggregate(buildMods(nw, comm2, k), nw.n0, f.SumPlogpP).l() -
			aggregate(buildMods(nw, comm, k), nw.n0, f.SumPlogpP).l()
		if !almost(delta, ref, 1e-9) {
			t.Fatalf("trial %d: delta %v, recompute %v", trial, delta, ref)
		}
	}
}

// TestContractionPreservesCodelength: L of the contracted network under
// singleton assignment equals L of the original under the contraction
// assignment.
func TestContractionPreservesCodelength(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(12)
		g := randomDigraph(rng, n, 4*n)
		if g.TotalWeight() == 0 {
			return true
		}
		fl := NewFlow(g, 0.15)
		nw := newLevel0(g, fl)
		comm := make([]int, n)
		for i := range comm {
			comm[i] = rng.Intn(4)
		}
		dense, k := graph.Renumber(comm)
		before := recomputeL(nw, dense, fl.SumPlogpP)
		contracted := nw.contract(dense, k)
		singles := make([]int, contracted.size())
		for i := range singles {
			singles[i] = i
		}
		after := recomputeL(contracted, singles, fl.SumPlogpP)
		return almost(before, after, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: total flow (p, tele, members, links) is conserved by
// contraction.
func TestPropertyContractConservesFlow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		g := randomDigraph(rng, n, 3*n)
		if g.TotalWeight() == 0 {
			return true
		}
		fl := NewFlow(g, 0.15)
		nw := newLevel0(g, fl)
		comm := make([]int, n)
		for i := range comm {
			comm[i] = rng.Intn(3)
		}
		dense, k := graph.Renumber(comm)
		c := nw.contract(dense, k)
		sum := func(xs []float64) float64 {
			s := 0.0
			for _, x := range xs {
				s += x
			}
			return s
		}
		totalLinks := func(w *network) float64 {
			s := sum(w.selfFlow)
			for u := 0; u < w.size(); u++ {
				s += w.outTotal(u)
			}
			return s
		}
		mem := 0
		for _, m := range c.members {
			mem += m
		}
		return almost(sum(c.p), sum(nw.p), 1e-12) &&
			almost(sum(c.tele), sum(nw.tele), 1e-12) &&
			mem == n &&
			almost(totalLinks(c), totalLinks(nw), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package dirinfomap

import (
	"testing"

	"dinfomap/internal/gen"
)

func BenchmarkFlow(b *testing.B) {
	g, _ := gen.DirectedCitation(3, 5000, 10, 8, 0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFlow(g, 0.15)
	}
}

func BenchmarkRun(b *testing.B) {
	g, _ := gen.DirectedCitation(3, 3000, 10, 6, 0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, Config{Seed: uint64(i)})
	}
}

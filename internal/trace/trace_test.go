package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTimerStartStopAccumulates(t *testing.T) {
	tm := NewTimer()
	tm.Start("a")
	time.Sleep(time.Millisecond)
	tm.Stop("a")
	first := tm.Wall("a")
	if first <= 0 {
		t.Fatalf("Wall(a) = %v, want > 0", first)
	}
	tm.Start("a")
	time.Sleep(time.Millisecond)
	tm.Stop("a")
	if tm.Wall("a") <= first {
		t.Fatalf("Wall(a) did not accumulate: %v -> %v", first, tm.Wall("a"))
	}
}

func TestTimerStopWithoutStartIsNoop(t *testing.T) {
	tm := NewTimer()
	tm.Stop("never")
	if tm.Wall("never") != 0 {
		t.Fatalf("Wall = %v, want 0", tm.Wall("never"))
	}
}

func TestTimerReentrantStartRestartsSpan(t *testing.T) {
	tm := NewTimer()
	tm.Start("a")
	time.Sleep(30 * time.Millisecond)
	// Re-entrant Start discards the unfinished 30ms span and restarts.
	tm.Start("a")
	tm.Stop("a")
	if w := tm.Wall("a"); w >= 15*time.Millisecond {
		t.Fatalf("re-entrant Start double-counted: Wall = %v", w)
	}
	// The phase is fully stopped: another Stop stays a no-op.
	before := tm.Wall("a")
	tm.Stop("a")
	if tm.Wall("a") != before {
		t.Fatalf("Stop after Stop changed Wall: %v -> %v", before, tm.Wall("a"))
	}
}

func TestTimerRunning(t *testing.T) {
	tm := NewTimer()
	if tm.Running("a") {
		t.Fatal("phase running before Start")
	}
	tm.Start("a")
	if !tm.Running("a") {
		t.Fatal("phase not running after Start")
	}
	tm.Stop("a")
	if tm.Running("a") {
		t.Fatal("phase still running after Stop")
	}
}

func TestTimerOps(t *testing.T) {
	tm := NewTimer()
	tm.AddOps("x", 10)
	tm.AddOps("x", 5)
	tm.AddOps("y", 1)
	if tm.Ops("x") != 15 || tm.Ops("y") != 1 {
		t.Fatalf("ops = %d, %d", tm.Ops("x"), tm.Ops("y"))
	}
}

func TestTimerPhasesSorted(t *testing.T) {
	tm := NewTimer()
	tm.AddOps("zeta", 1)
	tm.Start("alpha")
	tm.Stop("alpha")
	phases := tm.Phases()
	if len(phases) != 2 || phases[0] != "alpha" || phases[1] != "zeta" {
		t.Fatalf("Phases = %v", phases)
	}
}

func TestCostModelTime(t *testing.T) {
	m := CostModel{TimePerOp: 2 * time.Nanosecond, Alpha: time.Microsecond, BetaPerByte: time.Nanosecond}
	c := RankCost{Ops: 1000, Msgs: 3, Bytes: 500}
	want := 2000*time.Nanosecond + 3*time.Microsecond + 500*time.Nanosecond
	if got := m.Time(c); got != want {
		t.Fatalf("Time = %v, want %v", got, want)
	}
}

func TestStepTimeTakesSlowestRank(t *testing.T) {
	m := DefaultCostModel()
	costs := []RankCost{
		{Ops: 100}, {Ops: 10000}, {Ops: 50},
	}
	if got, want := m.StepTime(costs), m.Time(costs[1]); got != want {
		t.Fatalf("StepTime = %v, want %v (slowest rank)", got, want)
	}
}

func TestStepTimeEmpty(t *testing.T) {
	if got := DefaultCostModel().StepTime(nil); got != 0 {
		t.Fatalf("StepTime(nil) = %v, want 0", got)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{P: 4, Phases: map[string]time.Duration{
		PhaseFindBestModule: 3 * time.Millisecond,
		PhaseSwapBoundary:   time.Millisecond,
	}}
	if b.Total() != 4*time.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestFormatBreakdowns(t *testing.T) {
	bs := []Breakdown{
		{P: 4, Phases: map[string]time.Duration{PhaseFindBestModule: time.Millisecond}},
		{P: 8, Phases: map[string]time.Duration{PhaseFindBestModule: 500 * time.Microsecond}},
	}
	out := FormatBreakdowns(bs, []string{PhaseFindBestModule})
	if !strings.Contains(out, "FindBestModule") {
		t.Errorf("missing phase header:\n%s", out)
	}
	if !strings.Contains(out, "Total") {
		t.Errorf("missing Total column:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("got %d lines, want 3 (header + 2 rows):\n%s", lines, out)
	}
}

func TestEfficiency(t *testing.T) {
	// Perfect scaling: doubling p halves time -> tau = 1.
	if e := Efficiency(2, 10*time.Second, 4, 5*time.Second); e != 1 {
		t.Fatalf("perfect scaling efficiency = %v, want 1", e)
	}
	// No scaling: time unchanged -> tau = 0.5.
	if e := Efficiency(2, 10*time.Second, 4, 10*time.Second); e != 0.5 {
		t.Fatalf("no-scaling efficiency = %v, want 0.5", e)
	}
	if e := Efficiency(1, time.Second, 0, 0); e != 0 {
		t.Fatalf("degenerate efficiency = %v, want 0", e)
	}
}

// Package trace provides the instrumentation behind the paper's
// performance figures: per-phase wall-clock timers, per-phase operation
// counters, and an explicit alpha-beta communication cost model that
// converts measured per-rank work and traffic into modeled execution
// times.
//
// Why a model: the paper ran on Titan with up to 4,096 physical cores;
// this reproduction runs all ranks as goroutines in one container, where
// wall-clock time cannot show parallel speedup. The scalability claims
// reduce to statements about the *maximum per-rank* computation and
// communication, which we measure exactly from the real distributed
// execution and convert to time with fixed machine constants
// (see DESIGN.md, substitution table).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phase names used by the distributed algorithm, matching the paper's
// Figure 8 breakdown.
const (
	PhaseFindBestModule = "FindBestModule"
	PhaseBcastDelegates = "BroadcastDelegates"
	PhaseSwapBoundary   = "SwapBoundaryInfo"
	PhaseOther          = "Other"
)

// Algorithm 3 / Section 3.5 stage internals, split out of Other so the
// journal and trace expose the module-refresh and merge cost structure.
const (
	// PhaseRefreshRound1 is the Module_Info partial exchange: local
	// partial aggregation plus the alltoallv shipping partials to each
	// module's home rank and the owner-side summation.
	PhaseRefreshRound1 = "refresh-round1"
	// PhaseRefreshRound2 is the authoritative reply: owners answer
	// subscribers (isSent-deduplicated), local module tables rebuild,
	// and the MDL aggregates allreduce.
	PhaseRefreshRound2 = "refresh-round2"
	// PhaseMergeShuffle is the distributed graph contraction: local arc
	// contraction plus the alltoallv redistributing merged arcs to their
	// new 1D owners.
	PhaseMergeShuffle = "merge-shuffle"
	// PhaseOuterIter marks an outer-iteration boundary in the journal: a
	// zero-duration event whose counters carry the iteration's cumulative
	// traffic delta (stage 1 is outer 0; each merged level adds one).
	PhaseOuterIter = "outer-iteration"
	// PhaseAsyncDrain is the exchange span of one asynchronous
	// bounded-staleness epoch: staleness gate, opportunistic drain,
	// complete-epoch rebuild, and the eager Module_Info partial send.
	// Only emitted when Config.StalenessBound > 0.
	PhaseAsyncDrain = "async-drain"
)

// Timer accumulates wall time and operation counts per named phase for
// one rank. Not safe for concurrent use; each rank keeps its own.
type Timer struct {
	wall    map[string]time.Duration
	ops     map[string]int64
	started map[string]time.Time
}

// NewTimer returns an empty Timer.
func NewTimer() *Timer {
	return &Timer{
		wall:    make(map[string]time.Duration),
		ops:     make(map[string]int64),
		started: make(map[string]time.Time),
	}
}

// Start begins timing phase; pair with Stop. A re-entrant Start (the
// phase is already running) restarts the span: the earlier, unfinished
// span is discarded rather than double-counted.
func (t *Timer) Start(phase string) { t.started[phase] = time.Now() }

// Stop ends timing phase and accumulates the elapsed wall time. Stop
// without a matching Start is a no-op.
func (t *Timer) Stop(phase string) {
	if s, ok := t.started[phase]; ok {
		t.wall[phase] += time.Since(s)
		delete(t.started, phase)
	}
}

// Running reports whether phase has a Start without a matching Stop.
func (t *Timer) Running(phase string) bool {
	_, ok := t.started[phase]
	return ok
}

// AddOps adds n operations (e.g. delta-L evaluations) to phase's counter.
func (t *Timer) AddOps(phase string, n int64) { t.ops[phase] += n }

// Wall returns the accumulated wall time of phase.
func (t *Timer) Wall(phase string) time.Duration { return t.wall[phase] }

// Ops returns the accumulated operation count of phase.
func (t *Timer) Ops(phase string) int64 { return t.ops[phase] }

// Phases returns all phase names seen, sorted.
func (t *Timer) Phases() []string {
	seen := make(map[string]bool)
	for p := range t.wall {
		seen[p] = true
	}
	for p := range t.ops {
		seen[p] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// CostModel converts measured counts into modeled times. The defaults
// are calibrated to commodity-cluster constants: ~50 ns per delta-L
// evaluation class operation (a handful of map lookups plus floating-
// point log2 work), 2 us message latency (alpha), and 1 ns per byte
// (beta, ~1 GB/s effective bandwidth). Note the reproduction's datasets
// are ~1000x smaller than the paper's, so the compute/communication
// ratio at a given processor count is correspondingly less favorable;
// experiments therefore sweep smaller processor counts than Titan's.
type CostModel struct {
	TimePerOp   time.Duration // compute cost per counted operation
	Alpha       time.Duration // per-message latency
	BetaPerByte time.Duration // per-byte transfer cost
}

// DefaultCostModel returns the constants used by all experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		TimePerOp:   50 * time.Nanosecond,
		Alpha:       2 * time.Microsecond,
		BetaPerByte: time.Nanosecond,
	}
}

// RankCost is one rank's measured work and traffic for one phase or one
// whole run.
type RankCost struct {
	Ops   int64 // counted compute operations
	Msgs  int64 // messages sent (p2p + modeled collective steps)
	Bytes int64 // bytes sent (p2p + modeled collective payloads)
}

// Time returns the modeled time of this rank's cost under m.
func (m CostModel) Time(c RankCost) time.Duration {
	return time.Duration(c.Ops)*m.TimePerOp +
		time.Duration(c.Msgs)*m.Alpha +
		time.Duration(c.Bytes)*m.BetaPerByte
}

// StepTime returns the modeled time of one bulk-synchronous step in
// which every rank computes and communicates: the slowest rank gates
// everyone (the paper: "the communication cost is mostly determined by
// the slowest part").
func (m CostModel) StepTime(costs []RankCost) time.Duration {
	var worst time.Duration
	for _, c := range costs {
		if t := m.Time(c); t > worst {
			worst = t
		}
	}
	return worst
}

// Breakdown is the Figure 8 result for one processor count: modeled time
// of each phase, max across ranks.
type Breakdown struct {
	P      int
	Phases map[string]time.Duration
}

// Total returns the sum over phases.
func (b Breakdown) Total() time.Duration {
	var sum time.Duration
	for _, d := range b.Phases {
		sum += d
	}
	return sum
}

// FormatBreakdowns renders breakdowns as a fixed-width text table with
// one row per processor count and one column per phase, matching the
// series of Figure 8.
func FormatBreakdowns(bs []Breakdown, phases []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s", "p")
	for _, ph := range phases {
		fmt.Fprintf(&sb, "%18s", ph)
	}
	fmt.Fprintf(&sb, "%18s\n", "Total")
	for _, b := range bs {
		fmt.Fprintf(&sb, "%-6d", b.P)
		for _, ph := range phases {
			fmt.Fprintf(&sb, "%18s", b.Phases[ph].Round(time.Microsecond))
		}
		fmt.Fprintf(&sb, "%18s\n", b.Total().Round(time.Microsecond))
	}
	return sb.String()
}

// Efficiency computes the relative parallel efficiency of Figure 10:
// tau = p1*T(p1) / (p2*T(p2)) with p1 the baseline processor count.
func Efficiency(p1 int, t1 time.Duration, p2 int, t2 time.Duration) float64 {
	if p2 == 0 || t2 == 0 {
		return 0
	}
	return float64(p1) * float64(t1) / (float64(p2) * float64(t2))
}

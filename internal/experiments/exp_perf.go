package experiments

import (
	"fmt"
	"io"
	"time"

	"dinfomap/internal/core"
	"dinfomap/internal/gossip"
	"dinfomap/internal/trace"
)

// ---- Figure 8: execution time breakdown ----

// RunFig8 reproduces Figure 8: the stage-1 per-iteration time breakdown
// (FindBestModule / BroadcastDelegates / SwapBoundaryInfo / Other) for
// one dataset across processor counts. Times are alpha-beta modeled
// from measured per-rank work and traffic, divided by the number of
// stage-1 iterations to give "one iteration running time" as the paper
// plots.
func RunFig8(o Options, dataset string, ps []int) ([]trace.Breakdown, error) {
	o = o.withDefaults()
	if len(ps) == 0 {
		ps = []int{4, 8, 16, 32}
	}
	g, _, err := loadDataset(dataset, o)
	if err != nil {
		return nil, err
	}
	var out []trace.Breakdown
	for _, p := range ps {
		res := core.Run(g, core.Config{P: p, Seed: o.Seed + 4})
		iters := res.Stage1Iterations
		if iters < 1 {
			iters = 1
		}
		b := trace.Breakdown{P: p, Phases: map[string]time.Duration{}}
		for ph, d := range res.PhaseModeled {
			// The paper's Figure 8 folds the Module_Info refresh into
			// "Other"; the journal and run report keep the rounds split,
			// but the figure merges them back for comparability.
			switch ph {
			case trace.PhaseRefreshRound1, trace.PhaseRefreshRound2:
				ph = trace.PhaseOther
			}
			b.Phases[ph] += d / time.Duration(iters)
		}
		out = append(out, b)
	}
	return out, nil
}

// FormatFig8 renders the Figure 8 table for one dataset.
func FormatFig8(w io.Writer, dataset string, bs []trace.Breakdown) {
	writeHeader(w, fmt.Sprintf("Figure 8: time breakdown per stage-1 iteration (%s, modeled)", dataset))
	fmt.Fprint(w, trace.FormatBreakdowns(bs, []string{
		trace.PhaseFindBestModule, trace.PhaseBcastDelegates,
		trace.PhaseSwapBoundary, trace.PhaseOther,
	}))
}

// ---- Figure 9: scalability ----

// ScalabilityRow is one (dataset, p) data point of Figure 9.
type ScalabilityRow struct {
	Dataset string
	P       int
	Stage1  time.Duration // modeled clustering-with-delegates time
	Stage2  time.Duration // modeled clustering-without-delegates time
	Total   time.Duration
}

// RunFig9 reproduces Figure 9: modeled total running time versus
// processor count, split into the two clustering stages.
func RunFig9(o Options, datasets []string, ps []int) ([]ScalabilityRow, error) {
	o = o.withDefaults()
	if len(datasets) == 0 {
		datasets = []string{"uk-2005", "webbase-2001", "friendster", "uk-2007"}
	}
	if len(ps) == 0 {
		ps = []int{4, 8, 16, 32}
	}
	var rows []ScalabilityRow
	for _, name := range datasets {
		g, _, err := loadDataset(name, o)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			res := core.Run(g, core.Config{P: p, Seed: o.Seed + 5})
			rows = append(rows, ScalabilityRow{
				Dataset: name,
				P:       p,
				Stage1:  res.Stage1Modeled,
				Stage2:  res.Stage2Modeled,
				Total:   res.TotalModeled(),
			})
		}
	}
	return rows, nil
}

// FormatFig9 renders the Figure 9 series.
func FormatFig9(w io.Writer, rows []ScalabilityRow) {
	writeHeader(w, "Figure 9: scalability (modeled time vs processor count)")
	fmt.Fprintf(w, "%-14s %5s %14s %14s %14s\n", "Dataset", "p", "stage 1", "stage 2", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5d %14s %14s %14s\n",
			r.Dataset, r.P,
			r.Stage1.Round(time.Microsecond),
			r.Stage2.Round(time.Microsecond),
			r.Total.Round(time.Microsecond))
	}
}

// ---- Figure 10: parallel efficiency ----

// EfficiencyRow is one dataset's efficiency curve.
type EfficiencyRow struct {
	Dataset    string
	BaselineP  int
	Ps         []int
	Efficiency []float64 // tau relative to the baseline processor count
}

// RunFig10 reproduces Figure 10: relative parallel efficiency
// tau = p1 T(p1) / (p2 T(p2)) with the smallest processor count as the
// baseline, per dataset.
func RunFig10(o Options, datasets []string, ps []int) ([]EfficiencyRow, error) {
	o = o.withDefaults()
	if len(datasets) == 0 {
		datasets = []string{"amazon", "dblp", "ndweb", "youtube"}
	}
	if len(ps) == 0 {
		ps = []int{2, 4, 8, 16}
	}
	rows9, err := RunFig9(o, datasets, ps)
	if err != nil {
		return nil, err
	}
	byDataset := map[string][]ScalabilityRow{}
	for _, r := range rows9 {
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	var out []EfficiencyRow
	for _, name := range datasets {
		rs := byDataset[name]
		row := EfficiencyRow{Dataset: name, BaselineP: rs[0].P}
		base := rs[0]
		for _, r := range rs {
			row.Ps = append(row.Ps, r.P)
			row.Efficiency = append(row.Efficiency,
				trace.Efficiency(base.P, base.Total, r.P, r.Total))
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatFig10 renders the Figure 10 curves.
func FormatFig10(w io.Writer, rows []EfficiencyRow) {
	writeHeader(w, "Figure 10: relative parallel efficiency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s baseline p=%d:", r.Dataset, r.BaselineP)
		for i, p := range r.Ps {
			fmt.Fprintf(w, "  p=%d: %.0f%%", p, 100*r.Efficiency[i])
		}
		fmt.Fprintln(w)
	}
}

// ---- Table 3: speedup over the gossip baseline ----

// Table3Row compares the distributed algorithm to the GossipMap-style
// baseline on one dataset under the same cost model.
type Table3Row struct {
	Dataset   string
	P         int
	Ours      time.Duration
	Baseline  time.Duration
	Speedup   float64
	OursL     float64 // final codelengths, to show quality is not traded
	BaselineL float64
}

// RunTable3 reproduces Table 3: speedup of our algorithm over the
// local-information baseline, growing with graph size.
func RunTable3(o Options, datasets []string, p int) ([]Table3Row, error) {
	o = o.withDefaults()
	if len(datasets) == 0 {
		datasets = []string{"ndweb", "livejournal", "webbase-2001", "uk-2007"}
	}
	if p <= 0 {
		p = 16
	}
	var rows []Table3Row
	for _, name := range datasets {
		g, _, err := loadDataset(name, o)
		if err != nil {
			return nil, err
		}
		ours := core.Run(g, core.Config{P: p, Seed: o.Seed + 6})
		base := gossip.Run(g, gossip.Config{P: p, Seed: o.Seed + 6})
		row := Table3Row{
			Dataset:   name,
			P:         p,
			Ours:      ours.TotalModeled(),
			Baseline:  base.Modeled,
			OursL:     ours.Codelength,
			BaselineL: base.Codelength,
		}
		if ours.TotalModeled() > 0 {
			row.Speedup = float64(base.Modeled) / float64(ours.TotalModeled())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders Table 3.
func FormatTable3(w io.Writer, rows []Table3Row) {
	writeHeader(w, "Table 3: speedup over the GossipMap-style baseline (same cost model)")
	fmt.Fprintf(w, "%-14s %5s %14s %14s %9s %10s %10s\n",
		"Dataset", "p", "ours", "baseline", "speedup", "ours L", "base L")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5d %14s %14s %8.2fx %10.3f %10.3f\n",
			r.Dataset, r.P,
			r.Ours.Round(time.Microsecond), r.Baseline.Round(time.Microsecond),
			r.Speedup, r.OursL, r.BaselineL)
	}
}

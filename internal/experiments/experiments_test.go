package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Small scale keeps the full-suite runtime reasonable while still
// exercising every experiment end to end.
var testOpts = Options{Scale: 0.15, Seed: 1}

func TestTable1(t *testing.T) {
	rows, err := RunTable1(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	var buf bytes.Buffer
	FormatTable1(&buf, rows)
	for _, name := range []string{"Amazon", "UK-2007", "Friendster"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("Table 1 output missing %s", name)
		}
	}
}

func TestFig4ConvergenceShape(t *testing.T) {
	rs, err := RunFig4(testOpts, 4, []string{"amazon", "dblp"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.Sequential) == 0 || len(r.Distributed) == 0 {
			t.Fatalf("%s: empty traces", r.Dataset)
		}
		// The headline Figure 4 claim: converged MDL within a few
		// percent of the sequential algorithm.
		if r.RelGap > 0.03 || r.RelGap < -0.03 {
			t.Errorf("%s: relative MDL gap %.2f%% too large", r.Dataset, 100*r.RelGap)
		}
	}
	var buf bytes.Buffer
	FormatFig4(&buf, rs)
	if !strings.Contains(buf.String(), "amazon") {
		t.Error("Figure 4 output missing dataset name")
	}
}

func TestFig5MergeRateShape(t *testing.T) {
	rs, err := RunFig5(testOpts, 4, []string{"amazon"})
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	// Paper: after the delegate stage the merge rate is around 50%+.
	if r.Distributed[0] < 0.4 {
		t.Errorf("distributed first-iteration merge rate %.2f, want >= 0.4", r.Distributed[0])
	}
	if r.Sequential[0] < 0.4 {
		t.Errorf("sequential first-iteration merge rate %.2f, want >= 0.4", r.Sequential[0])
	}
}

func TestTable2Quality(t *testing.T) {
	rows, err := RunTable2(testOpts, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (dblp, amazon)", len(rows))
	}
	for _, r := range rows {
		// Paper reports ~0.8 for all three measures; allow slack for
		// the reduced scale.
		if r.Quality.NMI < 0.75 {
			t.Errorf("%s: NMI = %.2f, want >= 0.75", r.Dataset, r.Quality.NMI)
		}
	}
}

func TestBalanceFigures(t *testing.T) {
	rows, err := RunBalance(testOpts, []string{"uk-2005", "friendster"}, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Figure 6 claim: delegate partitioning compresses the edge
		// spread dramatically on hub-heavy graphs.
		if r.DelMaxEdges >= r.OneDMaxEdges {
			t.Errorf("%s p=%d: delegate max edges %d not better than 1D %d",
				r.Dataset, r.P, r.DelMaxEdges, r.OneDMaxEdges)
		}
		// Figure 7 claim: ghost spread is balanced too.
		if r.DelMaxGhosts > r.OneDMaxGhosts {
			t.Errorf("%s p=%d: delegate max ghosts %d worse than 1D %d",
				r.Dataset, r.P, r.DelMaxGhosts, r.OneDMaxGhosts)
		}
	}
	var buf bytes.Buffer
	FormatFig6(&buf, rows)
	FormatFig7(&buf, rows)
	if !strings.Contains(buf.String(), "uk-2005") {
		t.Error("balance output missing dataset")
	}
}

func TestFig8Breakdown(t *testing.T) {
	bs, err := RunFig8(testOpts, "uk-2005", []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("got %d breakdowns, want 2", len(bs))
	}
	for _, b := range bs {
		if b.Phases["FindBestModule"] <= 0 {
			t.Errorf("p=%d: FindBestModule time missing", b.P)
		}
	}
	// Figure 8 claim: FindBestModule shrinks with more processors.
	if bs[1].Phases["FindBestModule"] >= bs[0].Phases["FindBestModule"] {
		t.Errorf("FindBestModule did not shrink: p=4 %v, p=8 %v",
			bs[0].Phases["FindBestModule"], bs[1].Phases["FindBestModule"])
	}
}

func TestFig9Scalability(t *testing.T) {
	rows, err := RunFig9(testOpts, []string{"uk-2005"}, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9 claim: modeled time falls as p grows.
	if rows[1].Total >= rows[0].Total {
		t.Errorf("no scaling: p=2 %v, p=8 %v", rows[0].Total, rows[1].Total)
	}
}

func TestFig10Efficiency(t *testing.T) {
	rows, err := RunFig10(testOpts, []string{"amazon", "youtube"}, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Efficiency[0] != 1 {
			t.Errorf("%s: baseline efficiency %v, want 1", r.Dataset, r.Efficiency[0])
		}
		for i, e := range r.Efficiency {
			if e <= 0 || e > 2 {
				t.Errorf("%s: efficiency[%d] = %v out of range", r.Dataset, i, e)
			}
		}
	}
	// The compute-dominated dataset must keep healthy efficiency; the
	// paper reports >= ~65%. At 1/1000 scale the boundary-swap traffic
	// (constant in p, as the paper itself observes in Figure 8) weighs
	// ~1000x more against compute, so tiny datasets like amazon fall
	// below the paper's figures — see EXPERIMENTS.md.
	for _, r := range rows {
		if r.Dataset == "youtube" {
			// At this reduced test scale efficiency is bounded by the
			// constant-in-p boundary swap; assert it stays sane. The
			// scale-1.0 bench reproduces the paper-like curve.
			if last := r.Efficiency[len(r.Efficiency)-1]; last < 0.25 {
				t.Errorf("youtube efficiency at max p = %.2f, want >= 0.25", last)
			}
		}
	}
}

func TestTable3Speedup(t *testing.T) {
	rows, err := RunTable3(testOpts, []string{"ndweb", "uk-2005"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("%s: speedup %v not computed", r.Dataset, r.Speedup)
		}
		// Our partition quality must stay comparable to the baseline's
		// (the paper's Table 3 point is time, not quality; on easy
		// planted graphs label propagation is competitive on L).
		if r.OursL > r.BaselineL*1.05 {
			t.Errorf("%s: ours L %.4f much worse than baseline %.4f",
				r.Dataset, r.OursL, r.BaselineL)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	rows, err := RunAblationDedup(testOpts, "amazon", 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Bytes <= rows[0].Bytes {
		t.Errorf("dedup OFF bytes %d not larger than ON %d", rows[1].Bytes, rows[0].Bytes)
	}
	rows, err = RunAblationThreshold(testOpts, "uk-2005", 8)
	if err != nil {
		t.Fatal(err)
	}
	// No delegates (infinite threshold) must have a heavier max rank
	// than the paper default on a hub-heavy graph.
	if rows[3].MaxEdges <= rows[1].MaxEdges {
		t.Errorf("no-delegate max edges %d not heavier than default %d",
			rows[3].MaxEdges, rows[1].MaxEdges)
	}
	var buf bytes.Buffer
	FormatAblation(&buf, "threshold sweep", rows)
	if !strings.Contains(buf.String(), "d_high") {
		t.Error("ablation output malformed")
	}
}

func TestScaledDatasetLoads(t *testing.T) {
	for _, name := range []string{"amazon", "ndweb", "uk-2007"} {
		g, _, err := loadDataset(name, Options{Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s at scale 0.05 is empty", name)
		}
	}
	if _, _, err := loadDataset("bogus", testOpts); err == nil {
		t.Error("loadDataset accepted bogus name")
	}
}

func TestRemainingAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	tiny := Options{Scale: 0.08, Seed: 2}
	if rows, err := RunAblationMinLabel(tiny, "dblp", 4); err != nil || len(rows) != 2 {
		t.Fatalf("min-label: %v %d", err, len(rows))
	}
	if rows, err := RunAblationRebalance(tiny, "uk-2005", 4); err != nil || len(rows) != 2 {
		t.Fatalf("rebalance: %v %d", err, len(rows))
	}
	if rows, err := RunAblationApproxDelegates(tiny, "youtube", 4); err != nil || len(rows) != 2 {
		t.Fatalf("approx: %v %d", err, len(rows))
	}
	rows, err := RunAblationDamping(tiny, "ndweb", 4)
	if err != nil || len(rows) != 2 {
		t.Fatalf("damping: %v %d", err, len(rows))
	}
	// Damping ON must not be worse than OFF on codelength (it exists to
	// prevent over-merging).
	if rows[0].Codelength > rows[1].Codelength*1.02 {
		t.Errorf("damping ON L %.4f worse than OFF %.4f",
			rows[0].Codelength, rows[1].Codelength)
	}
}

func TestFormatFunctionsRender(t *testing.T) {
	var buf bytes.Buffer
	FormatFig9(&buf, []ScalabilityRow{{Dataset: "x", P: 4, Stage1: 1, Stage2: 2, Total: 3}})
	FormatFig10(&buf, []EfficiencyRow{{Dataset: "x", BaselineP: 2, Ps: []int{2, 4}, Efficiency: []float64{1, 0.8}}})
	FormatTable3(&buf, []Table3Row{{Dataset: "x", P: 4, Speedup: 2}})
	FormatFig8(&buf, "x", nil)
	out := buf.String()
	for _, want := range []string{"Figure 9", "Figure 10", "Table 3", "Figure 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendered output", want)
		}
	}
}

func TestBadDatasetErrors(t *testing.T) {
	if _, err := RunFig4(testOpts, 2, []string{"nope"}); err == nil {
		t.Error("RunFig4 accepted bad dataset")
	}
	if _, err := RunBalance(testOpts, []string{"nope"}, []int{2}); err == nil {
		t.Error("RunBalance accepted bad dataset")
	}
	if _, err := RunFig8(testOpts, "nope", nil); err == nil {
		t.Error("RunFig8 accepted bad dataset")
	}
	if _, err := RunTable3(testOpts, []string{"nope"}, 2); err == nil {
		t.Error("RunTable3 accepted bad dataset")
	}
	if _, err := RunAblationThreshold(testOpts, "nope", 2); err == nil {
		t.Error("RunAblationThreshold accepted bad dataset")
	}
}

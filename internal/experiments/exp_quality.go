package experiments

import (
	"fmt"
	"io"

	"dinfomap/internal/core"
	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/infomap"
	"dinfomap/internal/mapeq"
	"dinfomap/internal/metrics"
)

// ---- Table 1: dataset inventory ----

// Table1Row describes one generated stand-in dataset.
type Table1Row struct {
	Name        string
	Description string
	Class       string
	Vertices    int
	Edges       int
	MaxDegree   int
	HubFrac     float64
}

// RunTable1 generates every registry dataset and reports its shape.
func RunTable1(o Options) ([]Table1Row, error) {
	o = o.withDefaults()
	var rows []Table1Row
	for _, name := range gen.Names() {
		g, _, err := loadDataset(name, o)
		if err != nil {
			return nil, err
		}
		st := graph.ComputeDegreeStats(g)
		d := gen.Registry[name]
		rows = append(rows, Table1Row{
			Name:        d.Name,
			Description: d.Description,
			Class:       d.Class,
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			MaxDegree:   st.Max,
			HubFrac:     st.HubFrac,
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1.
func FormatTable1(w io.Writer, rows []Table1Row) {
	writeHeader(w, "Table 1: Datasets (synthetic stand-ins, ~1/1000 scale)")
	fmt.Fprintf(w, "%-14s %-8s %10s %10s %8s %8s  %s\n",
		"Name", "Class", "#Vertices", "#Edges", "MaxDeg", "Hub1%", "Description")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-8s %10d %10d %8d %7.0f%%  %s\n",
			r.Name, r.Class, r.Vertices, r.Edges, r.MaxDegree, 100*r.HubFrac, r.Description)
	}
}

// ---- Figure 4: MDL convergence, sequential vs distributed ----

// ConvergenceResult holds one dataset's MDL traces.
type ConvergenceResult struct {
	Dataset     string
	Sequential  []float64 // MDL after each outer iteration
	Distributed []float64
	SeqFinal    float64
	DistFinal   float64
	RelGap      float64 // (dist-seq)/seq at convergence
}

// RunFig4 reproduces Figure 4 on the paper's four convergence datasets
// (Amazon, DBLP, ND-Web, YouTube) with p simulated ranks.
func RunFig4(o Options, p int, datasets []string) ([]ConvergenceResult, error) {
	o = o.withDefaults()
	if len(datasets) == 0 {
		datasets = []string{"amazon", "dblp", "ndweb", "youtube"}
	}
	var out []ConvergenceResult
	for _, name := range datasets {
		g, _, err := loadDataset(name, o)
		if err != nil {
			return nil, err
		}
		seq := infomap.Run(g, infomap.Config{Seed: o.Seed + 1})
		dist := core.Run(g, core.Config{P: p, Seed: o.Seed + 1})
		r := ConvergenceResult{
			Dataset:     name,
			Sequential:  seq.MDLTrace,
			Distributed: dist.MDLTrace,
			SeqFinal:    seq.Codelength,
			DistFinal:   dist.Codelength,
		}
		// Guard the relative gap against (near-)zero sequential
		// codelengths: dividing by rounding noise would report a huge
		// bogus gap for degenerate graphs.
		if !mapeq.ApproxEq(seq.Codelength, 0, 1e-12) {
			r.RelGap = (dist.Codelength - seq.Codelength) / seq.Codelength
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatFig4 renders the Figure 4 series.
func FormatFig4(w io.Writer, rs []ConvergenceResult) {
	writeHeader(w, "Figure 4: MDL convergence (sequential vs distributed)")
	for _, r := range rs {
		fmt.Fprintf(w, "%-12s seq : %s\n", r.Dataset, fmtSeries(r.Sequential))
		fmt.Fprintf(w, "%-12s dist: %s\n", "", fmtSeries(r.Distributed))
		fmt.Fprintf(w, "%-12s final seq=%.4f dist=%.4f gap=%+.2f%%\n",
			"", r.SeqFinal, r.DistFinal, 100*r.RelGap)
	}
}

// ---- Figure 5: vertex merging rate ----

// MergeRateResult holds one dataset's merge-rate traces.
type MergeRateResult struct {
	Dataset     string
	Sequential  []float64
	Distributed []float64
}

// RunFig5 reproduces Figure 5: merged-vertex fraction per outer
// iteration, sequential vs distributed.
func RunFig5(o Options, p int, datasets []string) ([]MergeRateResult, error) {
	o = o.withDefaults()
	if len(datasets) == 0 {
		datasets = []string{"amazon", "dblp", "ndweb", "youtube"}
	}
	var out []MergeRateResult
	for _, name := range datasets {
		g, _, err := loadDataset(name, o)
		if err != nil {
			return nil, err
		}
		seq := infomap.Run(g, infomap.Config{Seed: o.Seed + 2})
		dist := core.Run(g, core.Config{P: p, Seed: o.Seed + 2})
		out = append(out, MergeRateResult{
			Dataset:     name,
			Sequential:  seq.MergeRate,
			Distributed: dist.MergeRate,
		})
	}
	return out, nil
}

// FormatFig5 renders the Figure 5 series.
func FormatFig5(w io.Writer, rs []MergeRateResult) {
	writeHeader(w, "Figure 5: vertex merging rate per outer iteration")
	for _, r := range rs {
		fmt.Fprintf(w, "%-12s seq : %s\n", r.Dataset, fmtSeries(r.Sequential))
		fmt.Fprintf(w, "%-12s dist: %s\n", "", fmtSeries(r.Distributed))
	}
}

// ---- Table 2: quality measurements ----

// Table2Row holds the quality of the distributed partition relative to
// the sequential one for one dataset.
type Table2Row struct {
	Dataset  string
	Quality  metrics.Quality
	TruthNMI float64 // NMI vs planted ground truth (extra column)
}

// RunTable2 reproduces Table 2 (NMI, F-measure, Jaccard on DBLP and
// Amazon, distributed vs sequential) with p ranks.
func RunTable2(o Options, p int, datasets []string) ([]Table2Row, error) {
	o = o.withDefaults()
	if len(datasets) == 0 {
		datasets = []string{"dblp", "amazon"}
	}
	var out []Table2Row
	for _, name := range datasets {
		g, truth, err := loadDataset(name, o)
		if err != nil {
			return nil, err
		}
		seq := infomap.Run(g, infomap.Config{Seed: o.Seed + 3})
		dist := core.Run(g, core.Config{P: p, Seed: o.Seed + 3})
		row := Table2Row{
			Dataset: name,
			Quality: metrics.Compare(dist.Communities, seq.Communities),
		}
		if truth != nil {
			row.TruthNMI = metrics.NMI(dist.Communities, truth)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(w io.Writer, rows []Table2Row) {
	writeHeader(w, "Table 2: quality of distributed vs sequential partitions")
	fmt.Fprintf(w, "%-12s %6s %10s %6s %12s\n", "Dataset", "NMI", "F-measure", "JI", "NMI-vs-truth")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6.2f %10.2f %6.2f %12.2f\n",
			r.Dataset, r.Quality.NMI, r.Quality.FMeasure, r.Quality.Jaccard, r.TruthNMI)
	}
}

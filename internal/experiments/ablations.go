package experiments

import (
	"fmt"
	"io"
	"time"

	"dinfomap/internal/core"
	"dinfomap/internal/infomap"
	"dinfomap/internal/metrics"
	"dinfomap/internal/partition"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label      string
	Modeled    time.Duration
	Bytes      int64
	Codelength float64
	SeqNMI     float64 // vs the sequential partition
	Iterations int     // stage-1 sweeps until convergence
	MaxEdges   int     // heaviest rank's arc count
}

// RunAblationThreshold sweeps the delegate threshold d_high
// (DESIGN.md Section 5): the paper's default p, fractions and multiples
// of it, and "infinite" (no delegates, pure 1D-with-owner layout).
func RunAblationThreshold(o Options, dataset string, p int) ([]AblationRow, error) {
	o = o.withDefaults()
	g, _, err := loadDataset(dataset, o)
	if err != nil {
		return nil, err
	}
	seq := infomap.Run(g, infomap.Config{Seed: o.Seed + 7})
	configs := []struct {
		label string
		dHigh int
	}{
		{"d_high = p/2", p / 2},
		{"d_high = p (paper)", p},
		{"d_high = 4p", 4 * p},
		{"d_high = inf (no delegates)", 1 << 30},
	}
	var rows []AblationRow
	for _, c := range configs {
		res := core.Run(g, core.Config{P: p, DHigh: c.dHigh, Seed: o.Seed + 7})
		rows = append(rows, AblationRow{
			Label:      c.label,
			Modeled:    res.TotalModeled(),
			Bytes:      res.MaxRankBytes,
			Codelength: res.Codelength,
			SeqNMI:     metrics.NMI(res.Communities, seq.Communities),
			Iterations: res.Stage1Iterations,
			MaxEdges:   res.Partition.MaxEdges,
		})
	}
	return rows, nil
}

// RunAblationMinLabel compares the minimum-label anti-bouncing rule on
// and off (Section 3.4's vertex bouncing problem).
func RunAblationMinLabel(o Options, dataset string, p int) ([]AblationRow, error) {
	o = o.withDefaults()
	g, _, err := loadDataset(dataset, o)
	if err != nil {
		return nil, err
	}
	seq := infomap.Run(g, infomap.Config{Seed: o.Seed + 8})
	var rows []AblationRow
	for _, c := range []struct {
		label string
		off   bool
	}{{"min-label ON (paper)", false}, {"min-label OFF", true}} {
		res := core.Run(g, core.Config{P: p, NoMinLabel: c.off, Seed: o.Seed + 8})
		rows = append(rows, AblationRow{
			Label:      c.label,
			Modeled:    res.TotalModeled(),
			Bytes:      res.MaxRankBytes,
			Codelength: res.Codelength,
			SeqNMI:     metrics.NMI(res.Communities, seq.Communities),
			Iterations: res.Stage1Iterations,
		})
	}
	return rows, nil
}

// RunAblationDedup compares the isSent Module_Info deduplication on and
// off (the duplicated-information problem of Figure 3).
func RunAblationDedup(o Options, dataset string, p int) ([]AblationRow, error) {
	o = o.withDefaults()
	g, _, err := loadDataset(dataset, o)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, c := range []struct {
		label string
		off   bool
	}{{"isSent dedup ON (paper)", false}, {"dedup OFF (naive)", true}} {
		res := core.Run(g, core.Config{P: p, NoDedup: c.off, Seed: o.Seed + 9})
		rows = append(rows, AblationRow{
			Label:      c.label,
			Modeled:    res.TotalModeled(),
			Bytes:      res.MaxRankBytes,
			Codelength: res.Codelength,
			Iterations: res.Stage1Iterations,
		})
	}
	return rows, nil
}

// RunAblationRebalance compares delegate partitioning with and without
// the imbalance-correction pass (preprocessing step 4 of Section 3.3).
func RunAblationRebalance(o Options, dataset string, p int) ([]AblationRow, error) {
	o = o.withDefaults()
	g, _, err := loadDataset(dataset, o)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, c := range []struct {
		label string
		off   bool
	}{{"rebalance ON (paper)", false}, {"rebalance OFF", true}} {
		st := partition.Delegate(g, p, partition.DelegateOptions{NoRebalance: c.off}).Stats()
		res := core.Run(g, core.Config{P: p, NoRebalance: c.off, Seed: o.Seed + 10})
		rows = append(rows, AblationRow{
			Label:      c.label,
			Modeled:    res.TotalModeled(),
			Bytes:      res.MaxRankBytes,
			Codelength: res.Codelength,
			MaxEdges:   st.MaxEdges,
		})
	}
	return rows, nil
}

// RunAblationApproxDelegates compares the exact two-round delegate
// decision (this repo's default) with the paper's literal local-delta-L
// broadcast; see DESIGN.md "Known deviations".
func RunAblationApproxDelegates(o Options, dataset string, p int) ([]AblationRow, error) {
	o = o.withDefaults()
	g, _, err := loadDataset(dataset, o)
	if err != nil {
		return nil, err
	}
	seq := infomap.Run(g, infomap.Config{Seed: o.Seed + 11})
	var rows []AblationRow
	for _, c := range []struct {
		label  string
		approx bool
	}{{"exact delegate moves (ours)", false}, {"local delta-L only (paper)", true}} {
		res := core.Run(g, core.Config{P: p, ApproxDelegates: c.approx, Seed: o.Seed + 11})
		rows = append(rows, AblationRow{
			Label:      c.label,
			Modeled:    res.TotalModeled(),
			Bytes:      res.MaxRankBytes,
			Codelength: res.Codelength,
			SeqNMI:     metrics.NMI(res.Communities, seq.Communities),
			Iterations: res.Stage1Iterations,
		})
	}
	return rows, nil
}

// RunAblationDamping compares the probabilistic deferral of
// cross-boundary moves on and off: with exact synchronized statistics,
// undamped ranks herd into the same attractive modules in the same
// round and over-merge (see DESIGN.md §6).
func RunAblationDamping(o Options, dataset string, p int) ([]AblationRow, error) {
	o = o.withDefaults()
	g, _, err := loadDataset(dataset, o)
	if err != nil {
		return nil, err
	}
	seq := infomap.Run(g, infomap.Config{Seed: o.Seed + 12})
	var rows []AblationRow
	for _, c := range []struct {
		label string
		off   bool
	}{{"damping ON (ours)", false}, {"damping OFF", true}} {
		res := core.Run(g, core.Config{P: p, NoDamping: c.off, Seed: o.Seed + 12})
		rows = append(rows, AblationRow{
			Label:      c.label,
			Modeled:    res.TotalModeled(),
			Bytes:      res.MaxRankBytes,
			Codelength: res.Codelength,
			SeqNMI:     metrics.NMI(res.Communities, seq.Communities),
			Iterations: res.Stage1Iterations,
		})
	}
	return rows, nil
}

// FormatAblation renders an ablation sweep.
func FormatAblation(w io.Writer, title string, rows []AblationRow) {
	writeHeader(w, title)
	fmt.Fprintf(w, "%-30s %12s %12s %10s %8s %6s %10s\n",
		"Config", "modeled", "maxRankB", "L", "seqNMI", "iters", "maxEdges")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %12s %12d %10.4f %8.2f %6d %10d\n",
			r.Label, r.Modeled.Round(time.Microsecond), r.Bytes,
			r.Codelength, r.SeqNMI, r.Iterations, r.MaxEdges)
	}
}

package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"dinfomap/internal/core"
	"dinfomap/internal/graph"
	"dinfomap/internal/metrics"
	"dinfomap/internal/mpi"
	"dinfomap/internal/trace"
)

// runProcMesh runs the full algorithm over the proc backend — one
// RunRank per rank, connected through real unix sockets — and
// assembles the result. It is the measured-wall counterpart of
// core.Run: the goroutine transport shares one address space and
// scheduler, while this path exercises the same socket framing, codec,
// and drain behavior as the multi-process launcher, so its wall clocks
// reflect real transport latency.
func runProcMesh(g *graph.Graph, cfg core.Config) (*core.Result, error) {
	dir, err := os.MkdirTemp("", "mpi")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	listeners, addrs, err := mpi.ListenRanks("unix", cfg.P, dir)
	if err != nil {
		return nil, err
	}
	epoch := time.Now()
	arts := make([]*core.RankArtifact, cfg.P)
	errs := make([]error, cfg.P)
	var wg sync.WaitGroup
	for r := 0; r < cfg.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpi.DialProc(mpi.ProcConfig{
				Rank: rank, Size: cfg.P,
				Listener: listeners[rank], Addrs: addrs, Network: "unix",
				Epoch: epoch,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			arts[rank], errs[rank] = core.RunRank(g, cfg, tr)
		}(r)
	}
	wg.Wait()
	for r, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("rank %d: %w", r, e)
		}
	}
	return core.Assemble(cfg, arts)
}

// measuredWall is the run's end-to-end measured time: the slowest
// rank's stage-1 wall plus the slowest rank's stage-2 wall.
func measuredWall(res *core.Result) time.Duration {
	return res.Stage1Wall + res.Stage2Wall
}

// ---- Asynchronous staleness frontier (quality vs speed) ----

// AsyncFrontierRow is one staleness bound's point on the
// quality-vs-wall frontier, alongside fig9/fig10.
type AsyncFrontierRow struct {
	Dataset    string        `json:"dataset"`
	P          int           `json:"p"`
	K          int           `json:"k"` // staleness bound; 0 = synchronous baseline
	Wall       time.Duration `json:"wall_ns"`
	Speedup    float64       `json:"speedup"`     // sync wall / this wall
	Codelength float64       `json:"codelength"`  // final MDL, bits
	RelDeltaL  float64       `json:"rel_delta_l"` // (L - L_sync) / L_sync
	NMI        float64       `json:"nmi,omitempty"`
	Sweeps     int           `json:"stage1_sweeps"`
	MeanStale  float64       `json:"mean_stale"` // over all ranks' swept epochs
	MaxStale   int           `json:"max_stale"`
}

// RunAsyncFrontier charts the bounded-staleness quality-vs-speed
// frontier: the same graph clustered over a real multi-process-style
// mesh at staleness bounds k = 0 (synchronous), 1, 2, 4. Each bound is
// run reps times and the minimum wall kept (socket wall clocks on
// small graphs are noisy); quality numbers come from the kept run.
// k >= 1 results are timing-dependent by design — the frontier is the
// trade, not a golden value.
func RunAsyncFrontier(o Options, dataset string, p int, ks []int) ([]AsyncFrontierRow, error) {
	o = o.withDefaults()
	if dataset == "" {
		dataset = "amazon"
	}
	if p <= 0 {
		p = 4
	}
	if len(ks) == 0 {
		ks = []int{0, 1, 2, 4}
	}
	const reps = 3
	g, truth, err := loadDataset(dataset, o)
	if err != nil {
		return nil, err
	}
	var rows []AsyncFrontierRow
	var syncWall time.Duration
	var syncL float64
	for _, k := range ks {
		var best *core.Result
		var bestWall time.Duration
		for rep := 0; rep < reps; rep++ {
			res, err := runProcMesh(g, core.Config{P: p, Seed: o.Seed + 11, StalenessBound: k})
			if err != nil {
				return nil, fmt.Errorf("k=%d: %w", k, err)
			}
			if w := measuredWall(res); best == nil || w < bestWall {
				best, bestWall = res, w
			}
		}
		row := AsyncFrontierRow{
			Dataset:    dataset,
			P:          p,
			K:          k,
			Wall:       bestWall,
			Codelength: best.Codelength,
			Sweeps:     best.Stage1Iterations,
		}
		if truth != nil {
			row.NMI = metrics.NMI(best.Communities, truth)
		}
		var epochs, weighted int64
		for _, hist := range best.PerRankStaleness {
			for s, n := range hist {
				epochs += n
				weighted += int64(s) * n
				if n > 0 && s > row.MaxStale {
					row.MaxStale = s
				}
			}
		}
		if epochs > 0 {
			row.MeanStale = float64(weighted) / float64(epochs)
		}
		if k == 0 {
			syncWall, syncL = bestWall, best.Codelength
		}
		if syncWall > 0 {
			row.Speedup = float64(syncWall) / float64(bestWall)
		}
		if syncL > 0 {
			row.RelDeltaL = (best.Codelength - syncL) / syncL
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAsyncFrontier renders the staleness frontier table.
func FormatAsyncFrontier(w io.Writer, rows []AsyncFrontierRow) {
	writeHeader(w, "Async frontier: bounded-staleness quality vs measured wall (proc mesh)")
	fmt.Fprintf(w, "%-10s %3s %3s %12s %8s %12s %9s %7s %7s %10s %9s\n",
		"Dataset", "p", "k", "wall", "speedup", "codelength", "dL/L", "NMI", "sweeps", "mean-stale", "max-stale")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %3d %3d %12s %7.2fx %12.4f %8.2f%% %7.3f %7d %10.2f %9d\n",
			r.Dataset, r.P, r.K, r.Wall.Round(time.Microsecond), r.Speedup,
			r.Codelength, 100*r.RelDeltaL, r.NMI, r.Sweeps, r.MeanStale, r.MaxStale)
	}
}

// ---- Measured speedup and alpha-beta model validation ----

// SpeedupRow is one processor count's measured-vs-modeled data point.
type SpeedupRow struct {
	Dataset        string        `json:"dataset"`
	P              int           `json:"p"`
	Wall           time.Duration `json:"wall_ns"`    // measured, min over reps
	Modeled        time.Duration `json:"modeled_ns"` // default cost-model constants
	Fitted         time.Duration `json:"fitted_ns"`  // fitted constants on the same counters
	Ops            int64         `json:"ops"`        // critical-rank compute operations
	Msgs           int64         `json:"msgs"`       // critical-rank messages
	Bytes          int64         `json:"bytes"`      // critical-rank bytes
	Speedup        float64       `json:"speedup"`    // wall(p=1) / wall(p)
	ModeledSpeedup float64       `json:"modeled_speedup"`
}

// SpeedupFit holds the alpha-beta constants fitted from measured walls
// by least squares over the processor sweep, plus the fit error.
type SpeedupFit struct {
	TOpNs         float64 `json:"t_op_ns"`
	AlphaNs       float64 `json:"alpha_ns"`
	BetaNsPerByte float64 `json:"beta_ns_per_byte"`
	MaxRelErr     float64 `json:"max_rel_err"` // max |fitted - measured| / measured
}

// SpeedupResult bundles the sweep rows with the fitted constants.
type SpeedupResult struct {
	Rows []SpeedupRow `json:"rows"`
	Fit  SpeedupFit   `json:"fit"`
}

// RunSpeedup validates the alpha-beta cost model against measured
// multi-process speedup (the ROADMAP open item): the same graph is
// clustered over the proc mesh at p = 1..N, the measured walls are
// least-squares fitted to wall ~= t_op*ops + alpha*msgs + beta*bytes
// using each run's critical-rank counters, and the fitted curve is
// reported next to the default-constant modeled curve. The point is
// the shape comparison — absolute constants absorb host speed, socket
// stack, and scheduler noise of the machine that ran the sweep.
func RunSpeedup(o Options, dataset string, ps []int) (*SpeedupResult, error) {
	o = o.withDefaults()
	if dataset == "" {
		dataset = "amazon"
	}
	if len(ps) == 0 {
		ps = []int{1, 2, 3, 4}
	}
	const reps = 3
	g, _, err := loadDataset(dataset, o)
	if err != nil {
		return nil, err
	}
	out := &SpeedupResult{}
	for _, p := range ps {
		var best *core.Result
		var bestWall time.Duration
		for rep := 0; rep < reps; rep++ {
			res, err := runProcMesh(g, core.Config{P: p, Seed: o.Seed + 12})
			if err != nil {
				return nil, fmt.Errorf("p=%d: %w", p, err)
			}
			if w := measuredWall(res); best == nil || w < bestWall {
				best, bestWall = res, w
			}
		}
		crit := criticalRankCost(best)
		out.Rows = append(out.Rows, SpeedupRow{
			Dataset: dataset,
			P:       p,
			Wall:    bestWall,
			Modeled: best.TotalModeled(),
			Ops:     crit.Ops,
			Msgs:    crit.Msgs,
			Bytes:   crit.Bytes,
		})
	}
	out.Fit = fitCostModel(out.Rows)
	base := out.Rows[0]
	for i := range out.Rows {
		r := &out.Rows[i]
		fitted := float64(r.Ops)*out.Fit.TOpNs + float64(r.Msgs)*out.Fit.AlphaNs + float64(r.Bytes)*out.Fit.BetaNsPerByte
		r.Fitted = time.Duration(fitted)
		if r.Wall > 0 {
			r.Speedup = float64(base.Wall) / float64(r.Wall)
			rel := math.Abs(fitted-float64(r.Wall)) / float64(r.Wall)
			if rel > out.Fit.MaxRelErr {
				out.Fit.MaxRelErr = rel
			}
		}
		if r.Modeled > 0 {
			r.ModeledSpeedup = float64(base.Modeled) / float64(r.Modeled)
		}
	}
	return out, nil
}

// criticalRankCost sums each rank's per-phase counters across both
// stages and returns the componentwise maximum over ranks — the
// bulk-synchronous critical-path approximation the cost model uses.
func criticalRankCost(res *core.Result) trace.RankCost {
	var crit trace.RankCost
	for r := range res.PerRankPhase {
		var c trace.RankCost
		for _, pc := range res.PerRankPhase[r] {
			c.Ops += pc.Ops
			c.Msgs += pc.Msgs
			c.Bytes += pc.Bytes
		}
		if r < len(res.PerRankStage2) {
			c.Ops += res.PerRankStage2[r].Ops
			c.Msgs += res.PerRankStage2[r].Msgs
			c.Bytes += res.PerRankStage2[r].Bytes
		}
		if c.Ops > crit.Ops {
			crit.Ops = c.Ops
		}
		if c.Msgs > crit.Msgs {
			crit.Msgs = c.Msgs
		}
		if c.Bytes > crit.Bytes {
			crit.Bytes = c.Bytes
		}
	}
	return crit
}

// fitCostModel solves the 3x3 normal equations of the least-squares
// fit wall = t_op*ops + alpha*msgs + beta*bytes over the sweep rows.
// Negative components (possible with few points and correlated
// predictors) are clamped to zero.
func fitCostModel(rows []SpeedupRow) SpeedupFit {
	var a [3][3]float64
	var b [3]float64
	for _, r := range rows {
		x := [3]float64{float64(r.Ops), float64(r.Msgs), float64(r.Bytes)}
		y := float64(r.Wall)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] += x[i] * x[j]
			}
			b[i] += x[i] * y
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 3; col++ {
		piv := col
		for row := col + 1; row < 3; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[piv][col]) {
				piv = row
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		if math.Abs(a[col][col]) < 1e-12 {
			continue // degenerate predictor; leaves its coefficient 0
		}
		for row := col + 1; row < 3; row++ {
			f := a[row][col] / a[col][col]
			for j := col; j < 3; j++ {
				a[row][j] -= f * a[col][j]
			}
			b[row] -= f * b[col]
		}
	}
	var x [3]float64
	for i := 2; i >= 0; i-- {
		if math.Abs(a[i][i]) < 1e-12 {
			continue
		}
		s := b[i]
		for j := i + 1; j < 3; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	for i := range x {
		if x[i] < 0 {
			x[i] = 0
		}
	}
	return SpeedupFit{TOpNs: x[0], AlphaNs: x[1], BetaNsPerByte: x[2]}
}

// FormatSpeedup renders the measured-vs-modeled speedup table and the
// fitted constants.
func FormatSpeedup(w io.Writer, res *SpeedupResult) {
	writeHeader(w, "Speedup: measured multi-process wall vs alpha-beta model")
	fmt.Fprintf(w, "%-10s %3s %12s %12s %12s %9s %9s %12s %8s %12s\n",
		"Dataset", "p", "measured", "fitted", "modeled", "speedup", "modeled-s", "ops", "msgs", "bytes")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10s %3d %12s %12s %12s %8.2fx %8.2fx %12d %8d %12d\n",
			r.Dataset, r.P,
			r.Wall.Round(time.Microsecond), r.Fitted.Round(time.Microsecond),
			r.Modeled.Round(time.Microsecond),
			r.Speedup, r.ModeledSpeedup, r.Ops, r.Msgs, r.Bytes)
	}
	fmt.Fprintf(w, "fitted constants: t_op=%.1fns  alpha=%.0fns  beta=%.3fns/B  (defaults 50/2000/1; max rel err %.0f%%)\n",
		res.Fit.TOpNs, res.Fit.AlphaNs, res.Fit.BetaNsPerByte, 100*res.Fit.MaxRelErr)
}

package experiments

import (
	"fmt"
	"io"

	"dinfomap/internal/partition"
)

// BalanceRow compares 1D and delegate partitioning of one dataset at
// one processor count (Figures 6 and 7).
type BalanceRow struct {
	Dataset string
	P       int

	OneDMinEdges, OneDMaxEdges int
	DelMinEdges, DelMaxEdges   int

	OneDMinGhosts, OneDMaxGhosts int
	DelMinGhosts, DelMaxGhosts   int

	NumHubs int
}

// RunBalance computes the Figures 6-7 comparison for the given datasets
// and processor counts. The same run feeds both figures: Figure 6 reads
// the edge columns, Figure 7 the ghost columns.
func RunBalance(o Options, datasets []string, ps []int) ([]BalanceRow, error) {
	o = o.withDefaults()
	if len(datasets) == 0 {
		datasets = []string{"uk-2005", "webbase-2001", "friendster", "uk-2007"}
	}
	if len(ps) == 0 {
		ps = []int{16, 32, 64}
	}
	var rows []BalanceRow
	for _, name := range datasets {
		g, _, err := loadDataset(name, o)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			oneD := partition.OneD(g, p).Stats()
			del := partition.Delegate(g, p, partition.DelegateOptions{}).Stats()
			rows = append(rows, BalanceRow{
				Dataset:       name,
				P:             p,
				OneDMinEdges:  oneD.MinEdges,
				OneDMaxEdges:  oneD.MaxEdges,
				DelMinEdges:   del.MinEdges,
				DelMaxEdges:   del.MaxEdges,
				OneDMinGhosts: oneD.MinGhosts,
				OneDMaxGhosts: oneD.MaxGhosts,
				DelMinGhosts:  del.MinGhosts,
				DelMaxGhosts:  del.MaxGhosts,
				NumHubs:       del.NumHubs,
			})
		}
	}
	return rows, nil
}

// FormatFig6 renders the workload-balance view (edges per rank).
func FormatFig6(w io.Writer, rows []BalanceRow) {
	writeHeader(w, "Figure 6: workload balance (arcs per rank, min-max)")
	fmt.Fprintf(w, "%-14s %5s %22s %22s %8s %8s\n",
		"Dataset", "p", "1D [min,max]", "delegate [min,max]", "1D max/", "hubs")
	fmt.Fprintf(w, "%-14s %5s %22s %22s %8s %8s\n", "", "", "", "", "del max", "")
	for _, r := range rows {
		ratio := float64(r.OneDMaxEdges) / float64(max(1, r.DelMaxEdges))
		fmt.Fprintf(w, "%-14s %5d %22s %22s %7.1fx %8d\n",
			r.Dataset, r.P,
			fmt.Sprintf("[%d, %d]", r.OneDMinEdges, r.OneDMaxEdges),
			fmt.Sprintf("[%d, %d]", r.DelMinEdges, r.DelMaxEdges),
			ratio, r.NumHubs)
	}
}

// FormatFig7 renders the communication-balance view (ghosts per rank).
func FormatFig7(w io.Writer, rows []BalanceRow) {
	writeHeader(w, "Figure 7: communication balance (ghost vertices per rank, min-max)")
	fmt.Fprintf(w, "%-14s %5s %22s %22s\n",
		"Dataset", "p", "1D [min,max]", "delegate [min,max]")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5d %22s %22s\n",
			r.Dataset, r.P,
			fmt.Sprintf("[%d, %d]", r.OneDMinGhosts, r.OneDMaxGhosts),
			fmt.Sprintf("[%d, %d]", r.DelMinGhosts, r.DelMaxGhosts))
	}
}

package experiments

import (
	"fmt"
	"io"
	"sort"

	"dinfomap/internal/core"
	"dinfomap/internal/mpi"
)

// ---- Comms: per-kind communication breakdown ----

// CommsKind aggregates one message kind's traffic across all ranks.
type CommsKind struct {
	BytesSent       int64
	MsgsSent        int64
	CollectiveBytes int64
	Collectives     int64
}

// CommsRow is one (dataset, p) per-kind communication breakdown, the
// data behind the paper's communication-balance discussion: which
// protocol exchanges dominate the traffic, and how evenly the byte
// load spreads over ranks.
type CommsRow struct {
	Dataset string
	P       int
	// TotalBytes sums sent plus collective payload over all ranks.
	TotalBytes int64
	// MinRankBytes / MaxRankBytes bound the per-rank byte load
	// (sent + collective payload), the balance the delegate
	// partitioning is designed to flatten.
	MinRankBytes int64
	MaxRankBytes int64
	// ByKind maps kind name -> cross-rank totals. Kinds with no
	// traffic are omitted.
	ByKind map[string]CommsKind
}

// RunComms measures the per-kind traffic split of distributed runs
// across datasets and processor counts, from the same per-rank
// mpi.Stats the run report's comms.by_kind section exposes.
func RunComms(o Options, datasets []string, ps []int) ([]CommsRow, error) {
	o = o.withDefaults()
	if len(datasets) == 0 {
		datasets = []string{"amazon", "uk-2005"}
	}
	if len(ps) == 0 {
		ps = []int{4, 16}
	}
	var rows []CommsRow
	for _, name := range datasets {
		g, _, err := loadDataset(name, o)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			res := core.Run(g, core.Config{P: p, Seed: o.Seed + 7})
			row := CommsRow{
				Dataset: name, P: p,
				ByKind:       map[string]CommsKind{},
				MinRankBytes: -1,
			}
			for _, s := range res.CommStats {
				rankBytes := s.BytesSent + s.CollectiveBytes
				row.TotalBytes += rankBytes
				if row.MinRankBytes < 0 || rankBytes < row.MinRankBytes {
					row.MinRankBytes = rankBytes
				}
				if rankBytes > row.MaxRankBytes {
					row.MaxRankBytes = rankBytes
				}
				for k := mpi.Kind(0); k < mpi.Kind(mpi.NumKinds); k++ {
					ks := s.ByKind[k]
					if ks == (mpi.KindStats{}) {
						continue
					}
					agg := row.ByKind[k.String()]
					agg.BytesSent += ks.BytesSent
					agg.MsgsSent += ks.MsgsSent
					agg.CollectiveBytes += ks.CollectiveBytes
					agg.Collectives += ks.Collectives
					row.ByKind[k.String()] = agg
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatComms renders the per-kind traffic table.
func FormatComms(w io.Writer, rows []CommsRow) {
	writeHeader(w, "Comms: traffic by message kind (all ranks, bytes)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s p=%-3d total %d B, rank load [%d, %d] B\n",
			r.Dataset, r.P, r.TotalBytes, r.MinRankBytes, r.MaxRankBytes)
		kinds := make([]string, 0, len(r.ByKind))
		for k := range r.ByKind {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool {
			a, b := r.ByKind[kinds[i]], r.ByKind[kinds[j]]
			return a.BytesSent+a.CollectiveBytes > b.BytesSent+b.CollectiveBytes
		})
		for _, k := range kinds {
			ks := r.ByKind[k]
			fmt.Fprintf(w, "  %-16s %12d B p2p (%d msgs) %12d B collective (%d ops)\n",
				k, ks.BytesSent, ks.MsgsSent, ks.CollectiveBytes, ks.Collectives)
		}
	}
}

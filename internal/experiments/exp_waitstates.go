package experiments

import (
	"fmt"
	"io"

	"dinfomap/internal/core"
	"dinfomap/internal/obs"
)

// ---- Waitstates: measured wait-state and critical-path profile ----

// WaitWallProfile nests every measured (host wall clock, hence
// nondeterministic) number of a wait-state row. The field name carries
// "Wall" so the regression differ prunes the whole subtree; only the
// deterministic counters outside it gate golden diffs.
type WaitWallProfile struct {
	// RunNs is the journal-measured run wall.
	RunNs int64
	// LateSenderNs / LateReceiverNs / BarrierSkewNs / ImbalanceNs are
	// the lost-time attribution totals summed over ranks.
	LateSenderNs   int64
	LateReceiverNs int64
	BarrierSkewNs  int64
	ImbalanceNs    int64
	// LostFraction is blocked time over total rank-time.
	LostFraction float64
	// CritSegments counts critical-path segments; CritCoverage is the
	// path total over the run wall (the remainder is synchronization
	// release/wake latency).
	CritSegments int
	CritCoverage float64
}

// WaitRow is one (dataset, p) wait-state summary: deterministic
// protocol counters at the top level (golden-gated), the measured
// profile nested under WallProfile (golden-ignored).
type WaitRow struct {
	Dataset string
	P       int
	// Recvs / Collectives / BarrierSyncs / TotalBytes are deterministic
	// protocol counts summed over ranks.
	Recvs        int64
	Collectives  int64
	BarrierSyncs int64
	TotalBytes   int64
	// ConservationOK reports that every rank's per-kind wait and traffic
	// buckets sum to its totals.
	ConservationOK bool
	WallProfile    WaitWallProfile
}

// RunWaitStates journals distributed runs across datasets and
// processor counts and distills each into the wait-state profile the
// run report's waitstates/lost_time/critical_path sections expose.
func RunWaitStates(o Options, datasets []string, ps []int) ([]WaitRow, error) {
	o = o.withDefaults()
	if len(datasets) == 0 {
		datasets = []string{"amazon", "uk-2005"}
	}
	if len(ps) == 0 {
		ps = []int{4, 16}
	}
	var rows []WaitRow
	for _, name := range datasets {
		g, _, err := loadDataset(name, o)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			cfg := core.Config{P: p, Seed: o.Seed + 7, Journal: obs.NewJournal(p)}
			res := core.Run(g, cfg)
			row := WaitRow{Dataset: name, P: p, ConservationOK: true}
			for _, s := range res.CommStats {
				row.Recvs += s.MsgsRecv
				row.Collectives += s.Collectives
				row.BarrierSyncs += s.BarrierSyncs
				row.TotalBytes += s.BytesSent + s.CollectiveBytes
				if !s.Conserved() {
					row.ConservationOK = false
				}
			}
			if ws := obs.BuildWaitStates(res.CommStats, cfg.Journal); ws != nil {
				row.WallProfile.RunNs = ws.RunWallNs
			}
			if lt := obs.BuildLostTime(res.CommStats, cfg.Journal); lt != nil {
				for _, rl := range lt.Ranks {
					row.WallProfile.LateSenderNs += rl.LateSenderWallNs
					row.WallProfile.LateReceiverNs += rl.LateReceiverWallNs
					row.WallProfile.BarrierSkewNs += rl.BarrierSkewWallNs
					row.WallProfile.ImbalanceNs += rl.ImbalanceWallNs
				}
				row.WallProfile.LostFraction = lt.LostFractionWall
			}
			cp := obs.CriticalPath(cfg.Journal, res.WaitRecorder)
			row.WallProfile.CritSegments = len(cp)
			var pathNs int64
			for _, seg := range cp {
				pathNs += seg.DurNs()
			}
			if row.WallProfile.RunNs > 0 {
				row.WallProfile.CritCoverage = float64(pathNs) / float64(row.WallProfile.RunNs)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatWaitStates renders the wait-state profile table.
func FormatWaitStates(w io.Writer, rows []WaitRow) {
	writeHeader(w, "Waitstates: measured wait-state and critical-path profile")
	for _, r := range rows {
		ok := "ok"
		if !r.ConservationOK {
			ok = "VIOLATED"
		}
		fmt.Fprintf(w, "%-14s p=%-3d recvs %d, collectives %d, syncs %d, %d B, conservation %s\n",
			r.Dataset, r.P, r.Recvs, r.Collectives, r.BarrierSyncs, r.TotalBytes, ok)
		wp := r.WallProfile
		fmt.Fprintf(w, "  wall: run %s; lost late-sender %s, late-recv %s, barrier-skew %s, imbalance %s (%.1f%% lost)\n",
			ns(wp.RunNs), ns(wp.LateSenderNs), ns(wp.LateReceiverNs),
			ns(wp.BarrierSkewNs), ns(wp.ImbalanceNs), 100*wp.LostFraction)
		fmt.Fprintf(w, "  critical path: %d segments covering %.1f%% of run wall\n",
			wp.CritSegments, 100*wp.CritCoverage)
	}
}

// ns renders a nanosecond count compactly for the text table.
func ns(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4) on the synthetic stand-in datasets.
// Each experiment has a Run function returning structured results and a
// Format function rendering the same rows/series the paper reports.
// The cmd/experiments binary drives them; the root bench_test.go wraps
// each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies dataset sizes; 1.0 is the registry default
	// (about 1/1000 of the paper). Benchmarks use smaller scales.
	Scale float64
	// Seed offsets all generator and algorithm seeds.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

// loadDataset generates the named stand-in at the requested scale.
func loadDataset(name string, o Options) (*graph.Graph, []int, error) {
	d, err := gen.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	//dinfomap:float-ok option sentinel: 1 is the literal "no scaling" default set by withDefaults
	if o.Scale != 1 {
		d.N = scaleInt(d.N, o.Scale)
		d.RMATEdges = scaleInt(d.RMATEdges, o.Scale)
		if d.RMATScale > 0 && o.Scale < 1 {
			// Halve the vertex space roughly log2-proportionally.
			for s := o.Scale; s < 0.6 && d.RMATScale > 8; s *= 2 {
				d.RMATScale--
			}
		}
		if d.NumComms > 0 {
			d.NumComms = max(2, scaleInt(d.NumComms, o.Scale))
		}
	}
	d.Seed += o.Seed
	g, truth := d.Generate()
	return g, truth, nil
}

func scaleInt(v int, s float64) int {
	out := int(float64(v) * s)
	if out < 16 {
		out = 16
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writeHeader renders a section header for an experiment report.
func writeHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// fmtSeries renders a float series compactly.
func fmtSeries(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.4f", x)
	}
	return strings.Join(parts, " ")
}

package graph

import "fmt"

// Contract merges the vertices of g according to the community assignment
// comm (comm[u] is the community of vertex u) and returns the quotient
// graph, in which every community becomes one vertex. Edge weights between
// a pair of communities are accumulated; intra-community weight becomes a
// self-loop on the merged vertex, preserving total weight. This is the
// "merge communities into a new graph" step of Infomap (Algorithm 1,
// lines 27-29 and Section 3.5 of the paper).
//
// Community IDs need not be dense: the second return value maps each
// original community ID to its vertex in the new graph.
func Contract(g *Graph, comm []int) (*Graph, map[int]int) {
	if len(comm) != g.NumVertices() {
		panic(fmt.Sprintf("graph: Contract assignment has %d entries for %d vertices",
			len(comm), g.NumVertices()))
	}
	remap := make(map[int]int)
	for _, c := range comm {
		if _, ok := remap[c]; !ok {
			remap[c] = len(remap)
		}
	}
	b := NewBuilder(len(remap))
	g.Edges(func(u, v int, w float64) {
		cu, cv := remap[comm[u]], remap[comm[v]]
		b.AddWeightedEdge(cu, cv, w)
	})
	return b.Build(), remap
}

// Renumber produces a dense renumbering of the community assignment:
// dense[u] in [0, k) where k is the number of distinct communities,
// assigned in order of first appearance. It also returns k.
func Renumber(comm []int) (dense []int, k int) {
	remap := make(map[int]int, len(comm)/4+1)
	dense = make([]int, len(comm))
	for u, c := range comm {
		id, ok := remap[c]
		if !ok {
			id = len(remap)
			remap[c] = id
		}
		dense[u] = id
	}
	return dense, len(remap)
}

// CommunitySizes returns, for a dense assignment with k communities, the
// number of vertices in each community.
func CommunitySizes(comm []int, k int) []int {
	sizes := make([]int, k)
	for _, c := range comm {
		sizes[c]++
	}
	return sizes
}

// ProjectAssignment lifts a community assignment on a contracted graph
// back to the original vertices: given the original-level assignment
// prev (vertex -> community id), the remap from Contract, and the
// assignment next on the contracted graph (contracted vertex ->
// community), it returns the composed assignment on original vertices.
func ProjectAssignment(prev []int, remap map[int]int, next []int) []int {
	out := make([]int, len(prev))
	for u, c := range prev {
		out[u] = next[remap[c]]
	}
	return out
}

package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContractTwoTriangles(t *testing.T) {
	// Two triangles joined by one bridge edge 2-3.
	g := FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{2, 3},
	})
	comm := []int{0, 0, 0, 1, 1, 1}
	cg, remap := Contract(g, comm)
	if cg.NumVertices() != 2 {
		t.Fatalf("contracted vertices = %d, want 2", cg.NumVertices())
	}
	a, b := remap[0], remap[1]
	if w := cg.EdgeWeight(a, a); w != 3 {
		t.Errorf("self-loop weight on community 0 = %v, want 3", w)
	}
	if w := cg.EdgeWeight(b, b); w != 3 {
		t.Errorf("self-loop weight on community 1 = %v, want 3", w)
	}
	if w := cg.EdgeWeight(a, b); w != 1 {
		t.Errorf("inter-community weight = %v, want 1", w)
	}
	if cg.TotalWeight() != g.TotalWeight() {
		t.Errorf("total weight changed: %v -> %v", g.TotalWeight(), cg.TotalWeight())
	}
}

func TestContractSingletonIdentity(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	comm := []int{0, 1, 2, 3}
	cg, _ := Contract(g, comm)
	if cg.NumVertices() != 4 || cg.NumEdges() != 3 {
		t.Fatalf("singleton contraction changed shape: n=%d m=%d", cg.NumVertices(), cg.NumEdges())
	}
}

func TestContractAllIntoOne(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	comm := []int{7, 7, 7, 7} // non-dense community id
	cg, remap := Contract(g, comm)
	if cg.NumVertices() != 1 {
		t.Fatalf("vertices = %d, want 1", cg.NumVertices())
	}
	if w := cg.EdgeWeight(remap[7], remap[7]); w != 4 {
		t.Fatalf("self-loop = %v, want 4", w)
	}
}

func TestContractPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Contract(triangle(), []int{0, 1})
}

func TestRenumber(t *testing.T) {
	dense, k := Renumber([]int{5, 5, 9, 2, 9})
	want := []int{0, 0, 1, 2, 1}
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	for i := range want {
		if dense[i] != want[i] {
			t.Fatalf("dense = %v, want %v", dense, want)
		}
	}
}

func TestCommunitySizes(t *testing.T) {
	sizes := CommunitySizes([]int{0, 1, 1, 2, 1}, 3)
	if sizes[0] != 1 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("sizes = %v, want [1 3 1]", sizes)
	}
}

func TestProjectAssignment(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	prev := []int{0, 0, 1, 1}
	_, remap := Contract(g, prev)
	next := make([]int, 2)
	next[remap[0]] = 42
	next[remap[1]] = 42 // both contracted vertices merge again
	out := ProjectAssignment(prev, remap, next)
	for u, c := range out {
		if c != 42 {
			t.Fatalf("out[%d] = %d, want 42", u, c)
		}
	}
}

// Property: contraction preserves total edge weight for random graphs and
// random assignments.
func TestPropertyContractPreservesWeight(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30, 90)
		k := int(kRaw)%5 + 1
		comm := make([]int, g.NumVertices())
		for i := range comm {
			comm[i] = rng.Intn(k)
		}
		cg, _ := Contract(g, comm)
		return math.Abs(cg.TotalWeight()-g.TotalWeight()) < 1e-9 && cg.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: contracting by connected-component labels yields a graph with
// no inter-vertex edges (only self-loops).
func TestPropertyContractComponentsOnlySelfLoops(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 25, 20) // sparse: several components
		labels, _ := ConnectedComponents(g)
		cg, _ := Contract(g, labels)
		ok := true
		cg.Edges(func(u, v int, _ float64) {
			if u != v {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

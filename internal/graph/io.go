package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list: one edge per line
// as "u v" or "u v w". Lines beginning with '#' or '%' are comments.
// Vertex IDs must be non-negative integers; the vertex count is
// 1 + the maximum ID seen, or the value of a "# vertices=N ..." header
// comment (which WriteEdgeList emits) when that is larger — without it,
// trailing isolated vertices would be lost in the round trip. Parallel
// edges are merged (weights summed).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	declaredN := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			for _, field := range strings.Fields(line) {
				if v, ok := strings.CutPrefix(field, "vertices="); ok {
					if n, err := strconv.Atoi(v); err == nil && n > declaredN {
						declaredN = n
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %q", lineno, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineno, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineno, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineno)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineno, fields[2], err)
			}
			if w <= 0 {
				return nil, fmt.Errorf("graph: line %d: non-positive weight %v", lineno, w)
			}
		}
		b.AddWeightedEdge(u, v, w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %v", err)
	}
	if declaredN > 0 {
		b.EnsureVertices(declaredN)
	}
	return b.Build(), nil
}

// WriteEdgeList writes g as a text edge list (one "u v" or "u v w" line
// per undirected edge, u <= v). Weights are omitted when all are 1.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges())
	var err error
	g.Edges(func(u, v int, wt float64) {
		if err != nil {
			return
		}
		if g.weights == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", u, v, wt)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

const binMagic = uint64(0x44494d4150_0001) // "DIMAP" + version

// WriteBinary writes g in a compact little-endian binary format
// (magic, n, arc count, offsets, targets, weight flag, weights).
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binMagic, uint64(g.NumVertices()), uint64(len(g.targets))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	off32 := make([]uint64, len(g.offsets))
	for i, o := range g.offsets {
		off32[i] = uint64(o)
	}
	if err := binary.Write(bw, binary.LittleEndian, off32); err != nil {
		return err
	}
	t64 := make([]uint64, len(g.targets))
	for i, t := range g.targets {
		t64[i] = uint64(t)
	}
	if err := binary.Write(bw, binary.LittleEndian, t64); err != nil {
		return err
	}
	weighted := uint64(0)
	if g.weights != nil {
		weighted = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, weighted); err != nil {
		return err
	}
	if g.weights != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, n, arcs uint64
	for _, p := range []*uint64{&magic, &n, &arcs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: binary header: %v", err)
		}
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	off := make([]uint64, n+1)
	if err := binary.Read(br, binary.LittleEndian, off); err != nil {
		return nil, fmt.Errorf("graph: offsets: %v", err)
	}
	t64 := make([]uint64, arcs)
	if err := binary.Read(br, binary.LittleEndian, t64); err != nil {
		return nil, fmt.Errorf("graph: targets: %v", err)
	}
	var weighted uint64
	if err := binary.Read(br, binary.LittleEndian, &weighted); err != nil {
		return nil, fmt.Errorf("graph: weight flag: %v", err)
	}
	g := &Graph{
		offsets: make([]int, n+1),
		targets: make([]int, arcs),
	}
	for i, o := range off {
		g.offsets[i] = int(o)
	}
	for i, t := range t64 {
		g.targets[i] = int(t)
	}
	if weighted == 1 {
		g.weights = make([]float64, arcs)
		if err := binary.Read(br, binary.LittleEndian, g.weights); err != nil {
			return nil, fmt.Errorf("graph: weights: %v", err)
		}
	}
	// Recompute derived counters.
	for u := 0; u < int(n); u++ {
		for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
			if v := g.targets[i]; u <= v {
				g.numEdges++
				g.totalWeight += g.arcWeight(i)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %v", err)
	}
	return g, nil
}

// Package graph provides the compressed sparse row (CSR) graph
// representation shared by every algorithm in this repository, together
// with builders, contraction (community merging), and text/binary I/O.
//
// Graphs are stored as symmetric directed adjacency: an undirected edge
// {u, v} appears as the two arcs (u, v) and (v, u), each carrying the full
// edge weight. This matches the convention of the sequential Infomap
// implementation the paper builds on, where an undirected graph is
// transformed into a directed one during preprocessing (Section 3.3).
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an immutable CSR graph. Vertices are dense integers in
// [0, NumVertices). Construct one with a Builder or the convenience
// constructors; the zero value is an empty graph.
type Graph struct {
	offsets []int     // len = n+1; adjacency of u is targets[offsets[u]:offsets[u+1]]
	targets []int     // arc heads, sorted within each adjacency list
	weights []float64 // arc weights, parallel to targets; nil means all 1

	numEdges    int     // undirected edge count (self-loops count once)
	totalWeight float64 // sum of undirected edge weights (self-loops once)
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges (each self-loop counts
// once).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumArcs returns the number of stored directed arcs. For a graph without
// self-loops this is 2*NumEdges().
func (g *Graph) NumArcs() int { return len(g.targets) }

// TotalWeight returns the sum of undirected edge weights. For an
// unweighted graph this equals float64(NumEdges()).
func (g *Graph) TotalWeight() float64 { return g.totalWeight }

// Degree returns the number of arcs incident to u (parallel edges were
// merged at build time, so this is the number of distinct neighbors,
// counting a self-loop once).
func (g *Graph) Degree(u int) int { return g.offsets[u+1] - g.offsets[u] }

// WeightedDegree returns the sum of weights of arcs leaving u. A
// self-loop contributes its weight twice, matching the usual convention
// that a self-loop adds 2w to a vertex strength.
func (g *Graph) WeightedDegree(u int) float64 {
	s := 0.0
	for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
		w := g.arcWeight(i)
		if g.targets[i] == u {
			w *= 2
		}
		s += w
	}
	return s
}

func (g *Graph) arcWeight(i int) float64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[i]
}

// Neighbors calls fn for every arc (u, v, w) leaving u. Iteration order is
// ascending by neighbor id and deterministic.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
		fn(g.targets[i], g.arcWeight(i))
	}
}

// NeighborSlice returns the adjacency list of u as parallel slices.
// The returned slices alias internal storage and must not be modified.
func (g *Graph) NeighborSlice(u int) (targets []int, weights []float64) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	t := g.targets[lo:hi]
	if g.weights == nil {
		return t, nil
	}
	return t, g.weights[lo:hi]
}

// HasEdge reports whether an arc (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	lo, hi := g.offsets[u], g.offsets[u+1]
	adj := g.targets[lo:hi]
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// EdgeWeight returns the weight of arc (u, v), or 0 if absent.
func (g *Graph) EdgeWeight(u, v int) float64 {
	lo, hi := g.offsets[u], g.offsets[u+1]
	adj := g.targets[lo:hi]
	i := sort.SearchInts(adj, v)
	if i < len(adj) && adj[i] == v {
		return g.arcWeight(lo + i)
	}
	return 0
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// Edges calls fn once per undirected edge (u <= v), with its weight.
func (g *Graph) Edges(fn func(u, v int, w float64)) {
	for u := 0; u < g.NumVertices(); u++ {
		for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
			v := g.targets[i]
			if u <= v {
				fn(u, v, g.arcWeight(i))
			}
		}
	}
}

// Validate checks structural invariants (sorted adjacency, symmetric arcs,
// consistent counts). It is used by tests and the property-based suite.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.offsets) > 0 && g.offsets[0] != 0 {
		return fmt.Errorf("offsets[0] = %d, want 0", g.offsets[0])
	}
	if len(g.offsets) > 0 && g.offsets[n] != len(g.targets) {
		return fmt.Errorf("offsets[n] = %d, want %d", g.offsets[n], len(g.targets))
	}
	if g.weights != nil && len(g.weights) != len(g.targets) {
		return fmt.Errorf("len(weights) = %d, want %d", len(g.weights), len(g.targets))
	}
	var undirected float64
	edges := 0
	for u := 0; u < n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("offsets not monotone at %d", u)
		}
		prev := -1
		for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
			v := g.targets[i]
			if v < 0 || v >= n {
				return fmt.Errorf("arc (%d,%d) out of range", u, v)
			}
			if v <= prev {
				return fmt.Errorf("adjacency of %d not strictly sorted", u)
			}
			prev = v
			w := g.arcWeight(i)
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("arc (%d,%d) has invalid weight %v", u, v, w)
			}
			//dinfomap:float-ok invariant check: the mirrored arc stores a bit-identical copy of the weight
			if rw := g.EdgeWeight(v, u); rw != w {
				return fmt.Errorf("asymmetric arc (%d,%d): %v vs %v", u, v, w, rw)
			}
			if u <= v {
				undirected += w
				edges++
			}
		}
	}
	if edges != g.numEdges {
		return fmt.Errorf("numEdges = %d, counted %d", g.numEdges, edges)
	}
	if math.Abs(undirected-g.totalWeight) > 1e-9*(1+math.Abs(undirected)) {
		return fmt.Errorf("totalWeight = %v, counted %v", g.totalWeight, undirected)
	}
	return nil
}

// Builder accumulates undirected edges and produces a Graph. Parallel
// edges are merged by summing their weights. Builders are not safe for
// concurrent use.
type Builder struct {
	n     int
	us    []int
	vs    []int
	ws    []float64
	unitW bool
}

// NewBuilder returns a Builder for a graph with n vertices. Edges touching
// vertices >= n grow the graph automatically.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, unitW: true}
}

// AddEdge records the undirected edge {u, v} with weight 1.
func (b *Builder) AddEdge(u, v int) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records the undirected edge {u, v} with weight w.
// Self-loops (u == v) are allowed. Panics on negative or zero weight.
func (b *Builder) AddWeightedEdge(u, v int, w float64) {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative vertex in edge (%d,%d)", u, v))
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("graph: invalid weight %v on edge (%d,%d)", w, u, v))
	}
	if u >= b.n {
		b.n = u + 1
	}
	if v >= b.n {
		b.n = v + 1
	}
	//dinfomap:float-ok representation probe: only the literal 1 permits the weightless encoding
	if w != 1 {
		b.unitW = false
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
}

// NumPendingEdges returns how many edge records have been added (before
// parallel-edge merging).
func (b *Builder) NumPendingEdges() int { return len(b.us) }

// EnsureVertices grows the builder's vertex count to at least n,
// creating trailing isolated vertices if needed.
func (b *Builder) EnsureVertices(n int) {
	if n > b.n {
		b.n = n
	}
}

// Build produces the immutable Graph. The Builder may be reused afterward,
// but edges already added remain.
func (b *Builder) Build() *Graph {
	n := b.n
	// Count arcs per vertex: every edge contributes one arc at each
	// endpoint; a self-loop contributes a single arc.
	deg := make([]int, n+1)
	for i := range b.us {
		deg[b.us[i]]++
		if b.us[i] != b.vs[i] {
			deg[b.vs[i]]++
		}
	}
	offsets := make([]int, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + deg[u]
	}
	targets := make([]int, offsets[n])
	weights := make([]float64, offsets[n])
	cursor := make([]int, n)
	copy(cursor, offsets[:n])
	place := func(u, v int, w float64) {
		targets[cursor[u]] = v
		weights[cursor[u]] = w
		cursor[u]++
	}
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		place(u, v, w)
		if u != v {
			place(v, u, w)
		}
	}
	// Sort each adjacency list and merge parallel arcs.
	out := 0
	newOffsets := make([]int, n+1)
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		sortAdj(targets[lo:hi], weights[lo:hi])
		start := out
		for i := lo; i < hi; i++ {
			if out > start && targets[out-1] == targets[i] {
				weights[out-1] += weights[i]
				continue
			}
			targets[out] = targets[i]
			weights[out] = weights[i]
			out++
		}
		newOffsets[u+1] = out
	}
	targets = targets[:out:out]
	weights = weights[:out:out]

	g := &Graph{offsets: newOffsets, targets: targets, weights: weights}
	for u := 0; u < n; u++ {
		for i := newOffsets[u]; i < newOffsets[u+1]; i++ {
			if v := targets[i]; u <= v {
				g.numEdges++
				g.totalWeight += weights[i]
			}
		}
	}
	if b.unitW && allUnit(weights) {
		g.weights = nil // common unweighted case: drop the weight array
	}
	return g
}

func allUnit(ws []float64) bool {
	for _, w := range ws {
		//dinfomap:float-ok representation probe: only the literal 1 permits the weightless encoding
		if w != 1 {
			return false
		}
	}
	return true
}

// sortAdj sorts parallel slices (targets, weights) by target.
func sortAdj(t []int, w []float64) {
	sort.Sort(&adjSorter{t, w})
}

type adjSorter struct {
	t []int
	w []float64
}

func (s *adjSorter) Len() int           { return len(s.t) }
func (s *adjSorter) Less(i, j int) bool { return s.t[i] < s.t[j] }
func (s *adjSorter) Swap(i, j int) {
	s.t[i], s.t[j] = s.t[j], s.t[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// FromEdges builds a graph with n vertices from an unweighted edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

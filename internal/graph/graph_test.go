package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func triangle() *Graph {
	return FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.NumArcs() != 0 {
		t.Fatalf("empty graph has n=%d m=%d arcs=%d", g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := NewBuilder(5).Build()
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	for u := 0; u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", u, g.Degree(u))
		}
	}
}

func TestTriangleBasics(t *testing.T) {
	g := triangle()
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.NumArcs() != 6 {
		t.Errorf("NumArcs = %d, want 6", g.NumArcs())
	}
	if g.TotalWeight() != 3 {
		t.Errorf("TotalWeight = %v, want 3", g.TotalWeight())
	}
	for u := 0; u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", u, g.Degree(u))
		}
		if g.WeightedDegree(u) != 2 {
			t.Errorf("WeightedDegree(%d) = %v, want 2", u, g.WeightedDegree(u))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestHasEdgeAndWeight(t *testing.T) {
	g := triangle()
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, true}, {1, 2, true},
		{0, 0, false}, {1, 1, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	if w := g.EdgeWeight(0, 1); w != 1 {
		t.Errorf("EdgeWeight(0,1) = %v, want 1", w)
	}
	if w := g.EdgeWeight(0, 0); w != 0 {
		t.Errorf("EdgeWeight(0,0) = %v, want 0", w)
	}
}

func TestParallelEdgesMerged(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (parallel edges merged)", g.NumEdges())
	}
	if w := g.EdgeWeight(0, 1); w != 3 {
		t.Fatalf("EdgeWeight(0,1) = %v, want 3 (summed)", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.Degree(0) != 2 { // self-loop counts once in Degree
		t.Errorf("Degree(0) = %d, want 2", g.Degree(0))
	}
	if g.WeightedDegree(0) != 3 { // self-loop counts twice in strength
		t.Errorf("WeightedDegree(0) = %v, want 3", g.WeightedDegree(0))
	}
	if !g.HasEdge(0, 0) {
		t.Error("HasEdge(0,0) = false, want true")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(1)
	b.AddEdge(0, 7)
	g := b.Build()
	if g.NumVertices() != 8 {
		t.Fatalf("NumVertices = %d, want 8", g.NumVertices())
	}
}

func TestBuilderPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative vertex": func() { NewBuilder(1).AddEdge(-1, 0) },
		"zero weight":     func() { NewBuilder(2).AddWeightedEdge(0, 1, 0) },
		"negative weight": func() { NewBuilder(2).AddWeightedEdge(0, 1, -2) },
		"NaN weight":      func() { NewBuilder(2).AddWeightedEdge(0, 1, math.NaN()) },
		"infinite weight": func() { NewBuilder(2).AddWeightedEdge(0, 1, math.Inf(1)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestNeighborsDeterministicSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 4)
	b.AddEdge(0, 2)
	g := b.Build()
	var got []int
	g.Neighbors(0, func(v int, _ float64) { got = append(got, v) })
	want := []int{1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(0) order = %v, want %v", got, want)
	}
}

func TestEdgesVisitsEachOnce(t *testing.T) {
	g := triangle()
	count := 0
	g.Edges(func(u, v int, w float64) {
		count++
		if u > v {
			t.Errorf("Edges yielded u=%d > v=%d", u, v)
		}
	})
	if count != 3 {
		t.Fatalf("Edges visited %d, want 3", count)
	}
}

func TestWeightedGraphKeepsWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.5)
	g := b.Build()
	if g.TotalWeight() != 3 {
		t.Errorf("TotalWeight = %v, want 3", g.TotalWeight())
	}
	if w := g.EdgeWeight(2, 1); w != 0.5 {
		t.Errorf("EdgeWeight(2,1) = %v, want 0.5", w)
	}
}

func TestMaxDegree(t *testing.T) {
	b := NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.AddEdge(0, v) // star
	}
	g := b.Build()
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d, want 4", g.MaxDegree())
	}
}

// randomGraph builds a random graph with n vertices and m edge records
// (self-loops and parallels allowed) from a seeded RNG.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// Property: every built graph passes Validate, and arc symmetry holds.
func TestPropertyBuildAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%50 + 1
		m := int(mRaw) % 200
		g := randomGraph(rand.New(rand.NewSource(seed)), n, m)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of weighted degrees equals twice the total weight
// (the handshake lemma), including with self-loops.
func TestPropertyHandshakeLemma(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%50 + 1
		m := int(mRaw) % 200
		g := randomGraph(rand.New(rand.NewSource(seed)), n, m)
		sum := 0.0
		for u := 0; u < g.NumVertices(); u++ {
			sum += g.WeightedDegree(u)
		}
		return math.Abs(sum-2*g.TotalWeight()) < 1e-9*(1+sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: HasEdge(u,v) == HasEdge(v,u) for all pairs.
func TestPropertySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20, 60)
		for u := 0; u < g.NumVertices(); u++ {
			for v := 0; v < g.NumVertices(); v++ {
				if g.HasEdge(u, v) != g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package graph

import (
	"math"
	"testing"
)

func TestDegreeStatsStar(t *testing.T) {
	b := NewBuilder(101)
	for v := 1; v <= 100; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	st := ComputeDegreeStats(g)
	if st.Max != 100 {
		t.Errorf("Max = %d, want 100", st.Max)
	}
	if st.Min != 1 {
		t.Errorf("Min = %d, want 1", st.Min)
	}
	if st.Median != 1 {
		t.Errorf("Median = %d, want 1", st.Median)
	}
	// In a star, the single hub (top 1%) carries half of all arcs.
	if st.HubFrac < 0.49 || st.HubFrac > 0.51 {
		t.Errorf("HubFrac = %v, want ~0.5", st.HubFrac)
	}
	if st.GiniCoeff < 0.4 {
		t.Errorf("GiniCoeff = %v, want high inequality for a star", st.GiniCoeff)
	}
}

func TestDegreeStatsRegular(t *testing.T) {
	// Ring: every vertex has degree exactly 2 -> zero inequality.
	b := NewBuilder(50)
	for u := 0; u < 50; u++ {
		b.AddEdge(u, (u+1)%50)
	}
	st := ComputeDegreeStats(b.Build())
	if st.Min != 2 || st.Max != 2 {
		t.Fatalf("ring degrees [%d,%d], want [2,2]", st.Min, st.Max)
	}
	if math.Abs(st.GiniCoeff) > 1e-12 {
		t.Errorf("GiniCoeff = %v, want 0 for regular graph", st.GiniCoeff)
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	st := ComputeDegreeStats(NewBuilder(0).Build())
	if st.Max != 0 || st.Mean != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}}) // {0,1,2} {3,4} {5} {6}
	labels, count := ConnectedComponents(g)
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("vertices 0,1,2 not in one component: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Errorf("vertices 3,4 not in one component: %v", labels)
	}
	if labels[5] == labels[6] || labels[5] == labels[0] {
		t.Errorf("isolated vertices share a component: %v", labels)
	}
}

func TestPowerLawExponentMLEOnRegular(t *testing.T) {
	// Clique: all degrees equal -> MLE blows up toward infinity or NaN;
	// just check it does not return something < 1.
	b := NewBuilder(10)
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			b.AddEdge(u, v)
		}
	}
	alpha := PowerLawExponentMLE(b.Build(), 1)
	if !math.IsNaN(alpha) && alpha < 1 {
		t.Fatalf("alpha = %v, want >= 1 or NaN", alpha)
	}
}

func TestPowerLawExponentMLETooFewVertices(t *testing.T) {
	g := FromEdges(2, [][2]int{{0, 1}})
	if a := PowerLawExponentMLE(g, 100); !math.IsNaN(a) {
		t.Fatalf("alpha = %v, want NaN when no vertex qualifies", a)
	}
}

func TestRelabelByDegree(t *testing.T) {
	// Star with spoke-spoke edge: vertex 3 is the hub in the original ids.
	b := NewBuilder(5)
	for v := 0; v < 5; v++ {
		if v != 3 {
			b.AddEdge(3, v)
		}
	}
	b.AddEdge(0, 1)
	g := b.Build()
	rg, perm := RelabelByDegree(g)
	if perm[3] != 0 {
		t.Fatalf("hub not relabeled to 0: perm = %v", perm)
	}
	if rg.Degree(0) != g.Degree(3) {
		t.Fatalf("new vertex 0 degree %d, want %d", rg.Degree(0), g.Degree(3))
	}
	// Degrees descending in the new labeling.
	for u := 1; u < rg.NumVertices(); u++ {
		if rg.Degree(u) > rg.Degree(u-1) {
			t.Fatalf("degrees not descending at %d: %d > %d", u, rg.Degree(u), rg.Degree(u-1))
		}
	}
	// Structure preserved: edge {0,1} maps to {perm[0], perm[1]}.
	if !rg.HasEdge(perm[0], perm[1]) {
		t.Fatal("edge lost by relabeling")
	}
	if rg.NumEdges() != g.NumEdges() || rg.TotalWeight() != g.TotalWeight() {
		t.Fatal("counts changed by relabeling")
	}
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelByDegreeEmpty(t *testing.T) {
	rg, perm := RelabelByDegree(NewBuilder(0).Build())
	if rg.NumVertices() != 0 || len(perm) != 0 {
		t.Fatal("empty relabel broken")
	}
}

package graph

import (
	"fmt"
	"math"
	"sort"
)

// DegreeStats summarizes a graph's degree distribution. The paper's
// central premise is that real-world graphs are scale-free: a few hubs
// carry a large fraction of the edges, which breaks 1D partitioning
// (Section 2.3). These statistics let tests and experiments assert that
// generated stand-in datasets actually have that shape.
type DegreeStats struct {
	Min, Max   int
	Mean       float64
	Median     int
	P99        int     // 99th percentile degree
	GiniCoeff  float64 // Gini coefficient of the degree distribution
	HubFrac    float64 // fraction of arcs incident to the top 1% of vertices
	NumIsolate int     // vertices with degree 0
}

// ComputeDegreeStats scans g once and returns its degree statistics.
func ComputeDegreeStats(g *Graph) DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	degs := make([]int, n)
	sum := 0
	for u := 0; u < n; u++ {
		degs[u] = g.Degree(u)
		sum += degs[u]
	}
	sort.Ints(degs)
	st := DegreeStats{
		Min:    degs[0],
		Max:    degs[n-1],
		Mean:   float64(sum) / float64(n),
		Median: degs[n/2],
		P99:    degs[min(n-1, n*99/100)],
	}
	for _, d := range degs {
		if d == 0 {
			st.NumIsolate++
		}
	}
	// Gini coefficient on the sorted degree sequence.
	if sum > 0 {
		var cum float64
		for i, d := range degs {
			cum += float64(d) * float64(2*(i+1)-n-1)
		}
		st.GiniCoeff = cum / (float64(n) * float64(sum))
	}
	// Arc share of the top 1% highest-degree vertices.
	top := n / 100
	if top < 1 {
		top = 1
	}
	hubArcs := 0
	for _, d := range degs[n-top:] {
		hubArcs += d
	}
	if sum > 0 {
		st.HubFrac = float64(hubArcs) / float64(sum)
	}
	return st
}

func (s DegreeStats) String() string {
	return fmt.Sprintf("deg[min=%d med=%d mean=%.1f p99=%d max=%d gini=%.2f hub1%%=%.0f%%]",
		s.Min, s.Median, s.Mean, s.P99, s.Max, s.GiniCoeff, 100*s.HubFrac)
}

// RelabelByDegree renumbers the vertices of g in descending-degree
// order (ties by original id) and returns the new graph together with
// perm, where perm[old] = new id. Real-world graph ids correlate with
// degree — web crawlers reach important pages first, old social
// accounts accumulate friends — and this relabeling reproduces that
// correlation on synthetic graphs, which is what makes contiguous 1D
// partitioning catastrophically imbalanced (paper Figure 6).
func RelabelByDegree(g *Graph) (*Graph, []int) {
	n := g.NumVertices()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	perm := make([]int, n)
	for newID, oldID := range order {
		perm[oldID] = newID
	}
	b := NewBuilder(n)
	g.Edges(func(u, v int, w float64) {
		b.AddWeightedEdge(perm[u], perm[v], w)
	})
	return b.Build(), perm
}

// ConnectedComponents labels vertices by connected component (BFS) and
// returns the labels plus the number of components.
func ConnectedComponents(g *Graph) (labels []int, count int) {
	n := g.NumVertices()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int, 0, 64)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			g.Neighbors(u, func(v int, _ float64) {
				if labels[v] < 0 {
					labels[v] = count
					queue = append(queue, v)
				}
			})
		}
		count++
	}
	return labels, count
}

// PowerLawExponentMLE estimates the exponent of a power-law degree
// distribution via the discrete maximum-likelihood estimator
// alpha = 1 + n / sum(ln(d_i / (dmin - 0.5))), over vertices with degree
// >= dmin. Returns NaN when fewer than two vertices qualify.
func PowerLawExponentMLE(g *Graph, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	n := 0
	sum := 0.0
	for u := 0; u < g.NumVertices(); u++ {
		d := g.Degree(u)
		if d >= dmin {
			n++
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
		}
	}
	//dinfomap:float-ok degenerate guard: every addend of sum is > 0 (d >= dmin > dmin-0.5), so 0 iff empty
	if n < 2 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(n)/sum
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

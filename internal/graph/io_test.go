package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
0 1
1 2
% also a comment

2 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d, want 3/3", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 2.5\n1 2 0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if w := g.EdgeWeight(0, 1); w != 2.5 {
		t.Fatalf("EdgeWeight(0,1) = %v, want 2.5", w)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"one field":       "0\n",
		"bad source":      "x 1\n",
		"bad target":      "0 y\n",
		"negative vertex": "-1 2\n",
		"bad weight":      "0 1 w\n",
		"zero weight":     "0 1 0\n",
		"negative weight": "0 1 -3\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
				t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
			}
		})
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("edge list round trip changed the graph")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(2, 2, 3) // self-loop
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph at all, sorry"))); err == nil {
		t.Fatal("ReadBinary accepted garbage")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadBinary accepted empty input")
	}
}

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for u := 0; u < a.NumVertices(); u++ {
		ta, wa := a.NeighborSlice(u)
		tb, wb := b.NeighborSlice(u)
		if len(ta) != len(tb) {
			return false
		}
		for i := range ta {
			if ta[i] != tb[i] {
				return false
			}
			var x, y float64 = 1, 1
			if wa != nil {
				x = wa[i]
			}
			if wb != nil {
				y = wb[i]
			}
			if x != y {
				return false
			}
		}
	}
	return true
}

// Property: text and binary round trips are lossless for random graphs.
func TestPropertyIORoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20, 50)
		var tb, bb bytes.Buffer
		if WriteEdgeList(&tb, g) != nil || WriteBinary(&bb, g) != nil {
			return false
		}
		g1, err1 := ReadEdgeList(&tb)
		g2, err2 := ReadBinary(&bb)
		return err1 == nil && err2 == nil && graphsEqual(g, g1) && graphsEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListPreservesIsolatedVertices(t *testing.T) {
	// Vertex 4 is isolated; the "# vertices=" header must carry it
	// through the text round trip.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 5 {
		t.Fatalf("round trip lost isolated vertices: n=%d, want 5", g2.NumVertices())
	}
}

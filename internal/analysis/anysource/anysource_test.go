package anysource_test

import (
	"testing"

	"dinfomap/internal/analysis/analysistest"
	"dinfomap/internal/analysis/anysource"
)

func TestAnySource(t *testing.T) {
	analysistest.Run(t, "testdata", anysource.Analyzer, "commuse")
}

func TestAnySourceExemptsMpiPackage(t *testing.T) {
	analysistest.Run(t, "testdata", anysource.Analyzer, "mpi")
}

// Package anysource flags wildcard-source message receives outside the
// mpi runtime itself. Recv(AnySource, ...) matches whichever rank's
// message happens to be queued first, so the receive order — and any
// state built from it — depends on the goroutine scheduler. The
// algorithm's determinism contract (same graph + seed + P ⇒ identical
// partition) requires every cross-rank exchange to either name its
// source rank explicitly or go through a collective, which imposes a
// fixed rank order.
//
// Two patterns are reported:
//
//   - the AnySource constant passed as an argument of any call (the
//     wildcard escaping into a receive, directly or via a helper);
//   - a call to a Comm.Recv method whose source argument is a negative
//     constant expression (the raw -1 spelling of the wildcard).
//
// The mpi package itself is exempt: it declares the constant and its
// matching logic legitimately compares against it. Test files are
// exempt suite-wide. A justified wildcard receive carries:
//
//	//dinfomap:anysource-ok <why nondeterministic arrival order is safe here>
package anysource

import (
	"go/ast"
	"go/constant"
	"go/types"

	"dinfomap/internal/analysis"
)

// Analyzer is the anysource check.
var Analyzer = &analysis.Analyzer{
	Name:        "anysource",
	Doc:         "flags Recv(AnySource, ...) wildcard receives; name the source rank explicitly",
	SuppressKey: "anysource-ok",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "mpi" {
		return nil
	}
	pass.WalkFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		wildcardFirstArg := false
		for i, arg := range call.Args {
			if !isAnySourceConst(pass, arg) {
				continue
			}
			if i == 0 {
				wildcardFirstArg = true
			}
			pass.Reportf(arg.Pos(),
				"AnySource makes message arrival order scheduler-dependent; receive from an explicit source rank")
		}
		// The raw -1 spelling, only where it is unambiguously a source:
		// the first argument of Comm.Recv. Skip when the argument is the
		// AnySource constant itself — already reported above.
		if !wildcardFirstArg && isCommRecv(pass, call) && len(call.Args) > 0 {
			if v := pass.TypesInfo.Types[call.Args[0]].Value; v != nil &&
				v.Kind() == constant.Int && constant.Sign(v) < 0 {
				pass.Reportf(call.Args[0].Pos(),
					"Recv with negative source is a wildcard receive; name the source rank explicitly")
			}
		}
		return true
	})
	return nil
}

// isAnySourceConst reports whether expr names a constant called
// AnySource (a bare identifier or a pkg.AnySource selector).
func isAnySourceConst(pass *analysis.Pass, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Const)
	return ok && obj.Name() == "AnySource"
}

// isCommRecv reports whether call invokes a method named Recv whose
// receiver is a named type called Comm (matched by name, not import
// path, so the check also covers test doubles and future transports).
func isCommRecv(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Recv" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Comm"
}

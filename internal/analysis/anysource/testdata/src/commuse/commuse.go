// Testdata for the anysource analyzer: a self-contained stand-in for
// the mpi surface (testdata may import only the standard library).
package commuse

// AnySource matches messages from any rank, mirroring mpi.AnySource.
const AnySource = -1

// Comm is the stand-in communicator; the analyzer matches the type and
// method by name.
type Comm struct{}

// Recv mirrors mpi's (src, tag) receive.
func (c *Comm) Recv(src, tag int) ([]byte, int) { return nil, src + tag }

// Other is a different receiver type; its Recv is not a message receive.
type Other struct{}

func (o *Other) Recv(src, tag int) int { return src + tag }

func wildcardByName(c *Comm) {
	c.Recv(AnySource, 1) // want `AnySource makes message arrival order scheduler-dependent`
}

func wildcardRaw(c *Comm) {
	c.Recv(-1, 2) // want `Recv with negative source is a wildcard receive`
}

func wildcardViaConstAlias(c *Comm) {
	const wild = -1
	c.Recv(wild, 3) // want `Recv with negative source is a wildcard receive`
}

// The wildcard escaping through a helper is caught at the call site.
func helper(src int, c *Comm) { c.Recv(src, 4) }

func wildcardViaHelper(c *Comm) {
	helper(AnySource, c) // want `AnySource makes message arrival order scheduler-dependent`
}

// Explicit source ranks are the sanctioned pattern.
func explicit(c *Comm, peer int) {
	c.Recv(peer, 5)
	c.Recv(0, 6)
}

// A negative source through a plain variable is not a constant
// expression; the analyzer does not track data flow.
func variableSource(c *Comm) {
	src := -1
	c.Recv(src, 7)
}

// Recv on a non-Comm type is not a message receive.
func otherRecv(o *Other) {
	o.Recv(-1, 8)
}

// A justified wildcard receive is suppressed.
func justified(c *Comm) {
	//dinfomap:anysource-ok drain loop; every sender's payload is merged commutatively
	c.Recv(AnySource, 9)
}

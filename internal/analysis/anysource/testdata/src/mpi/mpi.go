// Testdata for the anysource analyzer: a package named mpi is the
// runtime itself and is exempt — it declares the wildcard and its
// matching logic uses it freely.
package mpi

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// Comm is the communicator stand-in.
type Comm struct{}

// Recv mirrors the runtime's receive.
func (c *Comm) Recv(src, tag int) ([]byte, int) { return nil, src + tag }

func matches(src, want int) bool {
	return want == AnySource || src == want
}

func drain(c *Comm) {
	c.Recv(AnySource, 1)
	_ = matches(0, AnySource)
}

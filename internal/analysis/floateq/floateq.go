// Package floateq flags == and != between floating-point expressions.
// MDL and delta-L values are sums of plogp terms whose low bits depend
// on summation order; comparing them with raw equality makes control
// flow depend on floating-point noise, which is exactly how two ranks
// (or two runs) silently diverge. Codelength comparisons must go
// through mapeq.ApproxEq; genuine sentinel checks (a weight that is
// exactly the value it was assigned, never computed) may instead carry
// a justification:
//
//	//dinfomap:float-ok <why exact equality is correct here>
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"dinfomap/internal/analysis"
)

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name:        "floateq",
	Doc:         "flags ==/!= between floating-point expressions; use mapeq.ApproxEq or justify",
	SuppressKey: "float-ok",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	pass.WalkFiles(func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass, bin.X) || !isFloat(pass, bin.Y) {
			return true
		}
		// Two constants compare at arbitrary precision; no runtime noise.
		if isConst(pass, bin.X) && isConst(pass, bin.Y) {
			return true
		}
		pass.Reportf(bin.OpPos,
			"floating-point %s comparison; use mapeq.ApproxEq for computed values or justify with //dinfomap:float-ok",
			bin.Op)
		return true
	})
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

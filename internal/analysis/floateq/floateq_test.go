package floateq_test

import (
	"testing"

	"dinfomap/internal/analysis/analysistest"
	"dinfomap/internal/analysis/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "floats")
}

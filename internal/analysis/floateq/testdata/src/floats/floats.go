// Testdata for the floateq analyzer.
package floats

func eq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func neq(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

func narrow(a, b float32) bool {
	return a == b // want `floating-point == comparison`
}

func computedVsLiteral(xs []float64) bool {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s == 0 // want `floating-point == comparison`
}

// Named types with a float underlying type are still floats.
type bits float64

func namedFloat(a, b bits) bool {
	return a == b // want `floating-point == comparison`
}

const (
	c1 = 0.1
	c2 = 0.2
)

// Two constants compare at arbitrary precision: no runtime noise, not
// flagged.
func constConst() bool {
	return c1+c2 == 0.3
}

// Integer comparisons are out of scope.
func ints(a, b int) bool {
	return a == b
}

// Ordering comparisons are out of scope.
func ordered(a, b float64) bool {
	return a < b || a >= b
}

// A justified sentinel check is suppressed.
func sentinel(w float64) bool {
	//dinfomap:float-ok zero-value sentinel: w is assigned, never computed
	return w == 0
}

// Package maporder flags `range` statements over maps in the
// determinism-critical packages of the distributed pipeline. Go map
// iteration order is deliberately randomized, so any map range whose
// body's effects depend on visit order — encoding wire messages,
// accumulating floats, appending to slices used unsorted — breaks the
// run-to-run reproducibility the paper's quality evaluation (§5)
// depends on. The GossipMap lineage accepts this nondeterminism;
// dinfomap explicitly does not.
//
// A range is accepted when the analyzer can see the standard
// collect-then-sort idiom (the body only appends keys/values to
// slices, each of which is later passed to a sort call in the same
// function), or when the site carries a justification comment:
//
//	//dinfomap:unordered-ok <why order cannot matter here>
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"dinfomap/internal/analysis"
)

// criticalPackages are the import paths whose determinism the merge
// shuffle and MDL reduction depend on. The bare last segment is also
// accepted so testdata packages (and the packages themselves under a
// different module name) match.
var criticalPackages = map[string]bool{
	"dinfomap/internal/core":       true,
	"dinfomap/internal/partition":  true,
	"dinfomap/internal/mapeq":      true,
	"dinfomap/internal/dirinfomap": true,
	"dinfomap/internal/graph":      true,
	"dinfomap/internal/metrics":    true,
}

var criticalNames = map[string]bool{
	"core": true, "partition": true, "mapeq": true,
	"dirinfomap": true, "graph": true, "metrics": true,
}

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name:        "maporder",
	Doc:         "flags map iteration in determinism-critical packages unless sorted before use or justified",
	SuppressKey: "unordered-ok",
	Run:         run,
}

func critical(path string) bool {
	if criticalPackages[path] {
		return true
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return criticalNames[path]
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !critical(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectThenSort(pass, body, rng) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"range over map %s in determinism-critical package %s; iterate in sorted key order or justify with //dinfomap:unordered-ok",
			exprString(rng.X), pass.Pkg.Path())
		return true
	})
}

// collectThenSort reports whether rng is the benign collect idiom: every
// statement in its body appends loop variables (or expressions built
// from them) to slice variables, and each such slice is subsequently
// passed to a sort call within the same function body.
func collectThenSort(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	var sinks []types.Object
	for _, stmt := range rng.Body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return false
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) {
			return false
		}
		obj := lvalueObject(pass, asg.Lhs[0])
		if obj == nil {
			return false
		}
		sinks = append(sinks, obj)
	}
	if len(sinks) == 0 {
		return false
	}
	for _, sink := range sinks {
		if !sortedLater(pass, fnBody, rng, sink) {
			return false
		}
	}
	return true
}

// lvalueObject resolves the variable a sink expression denotes: a
// plain identifier's object, or the field object of a one-level
// selector (x.field). Deeper paths are not tracked.
func lvalueObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok {
			return sel.Obj()
		}
	}
	return nil
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether obj is passed to a sort call after the
// range statement, anywhere in the function body.
func sortedLater(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if lvalueObject(pass, arg) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes the sort and slices package entry points (and
// sort.Sort on a local sort.Interface).
func isSortCall(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}

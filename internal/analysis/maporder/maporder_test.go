package maporder_test

import (
	"testing"

	"dinfomap/internal/analysis/analysistest"
	"dinfomap/internal/analysis/maporder"
)

func TestMapOrderCriticalPackage(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "core")
}

func TestMapOrderIgnoresOtherPackages(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "scratch")
}

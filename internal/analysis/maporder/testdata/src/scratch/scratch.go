// Package scratch is not determinism-critical: map ranges here are
// outside the maporder analyzer's scope and must not be flagged.
package scratch

func SumAny(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

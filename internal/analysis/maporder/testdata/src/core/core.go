// Testdata for the maporder analyzer. The package is named core so the
// bare-name critical-package match applies.
package core

import "sort"

// sumFloats accumulates map values in iteration order: the classic
// nondeterministic float reduction the analyzer exists to catch.
func sumFloats(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `range over map m in determinism-critical package core`
		s += v
	}
	return s
}

// encodeEntries emits key/value pairs in iteration order (modeling the
// merge.go wire-encoding bug): flagged.
func encodeEntries(m map[int]int, emit func(k, v int)) {
	for k, v := range m { // want `range over map m in determinism-critical package core`
		emit(k, v)
	}
}

// sortedKeys is the benign collect-then-sort idiom: not flagged.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// slicesSorted uses the slices package sort entry points: not flagged.
func slicesSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type bag struct {
	keys []int
}

// collectField appends to a struct field that is sorted afterwards: the
// one-level selector sink is tracked, so this is not flagged.
func (b *bag) collectField(m map[int]bool) {
	for k := range m {
		b.keys = append(b.keys, k)
	}
	sort.Ints(b.keys)
}

// collectNoSort appends but never sorts: the collected order leaks, so
// the range is flagged.
func collectNoSort(m map[int]int) []int {
	var keys []int
	for k := range m { // want `range over map m in determinism-critical package core`
		keys = append(keys, k)
	}
	return keys
}

// justified carries the suppression comment: no diagnostic.
func justified(m map[int]int) int {
	total := 0
	//dinfomap:unordered-ok integer counter sum; addition order cannot change the total
	for _, v := range m {
		total += v
	}
	return total
}

// rangeSlice iterates a slice, not a map: never flagged.
func rangeSlice(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

package all_test

import (
	"testing"

	"dinfomap/internal/analysis"
	"dinfomap/internal/analysis/all"
)

// TestRepositoryIsClean runs the full analyzer suite — including
// rankshare v2's alias tracking and the bufalias pooled-buffer check —
// over the module and demands zero findings: every true positive must
// be fixed and every false positive justified with a //dinfomap:<key>
// comment, so a regression in either direction fails go test, not just
// CI's vet job. Stale suppressions fail too: a justification comment
// that no longer suppresses anything (or names no registered key) is
// dead weight that would hide a future finding at the same site.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short mode")
	}
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	names := map[string]bool{}
	for _, a := range all.Analyzers() {
		names[a.Name] = true
	}
	for _, want := range []string{"rankshare", "bufalias"} {
		if !names[want] {
			t.Errorf("suite is missing the %s analyzer", want)
		}
	}
	diags, stale, err := analysis.RunAnalyzersStale(all.Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
	for _, d := range stale {
		t.Errorf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
}

package all_test

import (
	"testing"

	"dinfomap/internal/analysis"
	"dinfomap/internal/analysis/all"
)

// TestRepositoryIsClean runs the full analyzer suite over the module
// and demands zero findings: every true positive must be fixed and
// every false positive justified with a //dinfomap:<key> comment, so a
// regression in either direction fails go test, not just CI's vet job.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short mode")
	}
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.RunAnalyzers(all.Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
}

// Package all registers the complete dinfomap analyzer suite in its
// canonical order. cmd/dinfomap-vet and the clean-tree regression test
// share this list so the vet binary and go test enforce the same set.
package all

import (
	"dinfomap/internal/analysis"
	"dinfomap/internal/analysis/anysource"
	"dinfomap/internal/analysis/bufalias"
	"dinfomap/internal/analysis/closecheck"
	"dinfomap/internal/analysis/codecsym"
	"dinfomap/internal/analysis/floateq"
	"dinfomap/internal/analysis/maporder"
	"dinfomap/internal/analysis/rankshare"
	"dinfomap/internal/analysis/seededrand"
)

// Analyzers returns the full suite. The slice is freshly allocated;
// callers may reorder or filter it.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		floateq.Analyzer,
		seededrand.Analyzer,
		closecheck.Analyzer,
		rankshare.Analyzer,
		bufalias.Analyzer,
		anysource.Analyzer,
		codecsym.Analyzer,
	}
}

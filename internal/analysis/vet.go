package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// Main is the entry point of a vettool binary. It dispatches between
// the three invocation shapes cmd/go and humans use:
//
//	tool -V=full          (go vet handshake: print a version line)
//	tool -flags           (go vet handshake: describe supported flags)
//	tool path/to/unit.cfg (go vet per-package unit: unitchecker protocol)
//	tool ./...            (standalone: load packages and check them)
//
// It does not return.
func Main(analyzers []*Analyzer) {
	progname := "dinfomap-vet"
	args := os.Args[1:]

	// cmd/go probes the tool's identity with -V=full to mix it into the
	// build cache key. The reply must look like "<name> version <ver>".
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("%s version devel buildID=%x\n", progname, executableSum())
			os.Exit(0)
		}
		if a == "-flags" || a == "--flags" {
			// No analyzer-selection flags: the whole suite always runs.
			fmt.Println("[]")
			os.Exit(0)
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		if err := RunVet(args[0], analyzers, os.Stderr); err != nil {
			if err == errFindings {
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(0)
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	staleOut := fs.Bool("stale", false, "also report //dinfomap:<key> comments that suppressed nothing")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] [-stale] package...\n\n", progname)
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	pkgs, err := Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	diags, stale, err := RunAnalyzersStale(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if *staleOut {
		diags = append(diags, stale...)
	}
	if *jsonOut {
		if diags == nil {
			diags = []Diagnostic{} // encode a clean tree as [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(diags)
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// executableSum hashes the running binary so rebuilt tools get fresh
// vet cache entries.
func executableSum() []byte {
	sum := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(sum, f)
			_ = f.Close()
		}
	}
	return sum.Sum(nil)[:8]
}

// vetConfig mirrors the JSON unit description cmd/go hands a vettool
// for each package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// errFindings distinguishes "diagnostics reported" from hard errors.
var errFindings = fmt.Errorf("findings reported")

// RunVet executes one unitchecker step: read the .cfg unit description,
// type-check the unit against the export data cmd/go already built,
// run the analyzers, and print findings to w. Returns errFindings if
// any diagnostic was emitted.
func RunVet(cfgPath string, analyzers []*Analyzer, w io.Writer) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// cmd/go always expects the facts output file, even though this
	// suite exports no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := checkFiles(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		return err
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("typecheck: %v", pkg.TypeErrors[0])
	}

	diags, err := RunAnalyzers(analyzers, []*Package{pkg})
	if err != nil {
		return err
	}
	for _, d := range diags {
		// go vet's plain-text diagnostic shape: file:line:col: message.
		fmt.Fprintf(w, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return errFindings
	}
	return nil
}

// Package closecheck flags discarded error returns from Close, Flush,
// and Encode method calls. For buffered or deferred-write APIs these
// errors are the only place a short write surfaces: an output file can
// be silently truncated while the program reports success (the PR 1
// double-Close bug, generalized). Both plain statements and defers are
// flagged — `defer f.Close()` on a file opened for reading is harmless
// and should say so:
//
//	//dinfomap:close-ok <why the error cannot matter here>
package closecheck

import (
	"go/ast"
	"go/types"

	"dinfomap/internal/analysis"
)

// Analyzer is the closecheck check.
var Analyzer = &analysis.Analyzer{
	Name:        "closecheck",
	Doc:         "flags ignored error results of Close/Flush/Encode calls",
	SuppressKey: "close-ok",
	Run:         run,
}

var watched = map[string]bool{"Close": true, "Flush": true, "Encode": true}

func run(pass *analysis.Pass) error {
	pass.WalkFiles(func(n ast.Node) bool {
		var call *ast.CallExpr
		var how string
		switch st := n.(type) {
		case *ast.ExprStmt:
			c, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			call, how = c, "ignored"
		case *ast.DeferStmt:
			call, how = st.Call, "deferred and ignored"
		case *ast.GoStmt:
			call, how = st.Call, "ignored"
		default:
			return true
		}
		name, ok := watchedErrorMethod(pass, call)
		if !ok {
			return true
		}
		pass.Reportf(call.Pos(),
			"error result of %s %s; handle it (or justify with //dinfomap:close-ok)",
			name, how)
		return true
	})
	return nil
}

// watchedErrorMethod reports whether call is a method call named
// Close/Flush/Encode whose last result is an error.
func watchedErrorMethod(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !watched[sel.Sel.Name] {
		return "", false
	}
	// Method (or interface method) calls only; package-level functions
	// that happen to share the name are out of scope.
	if _, ok := pass.TypesInfo.Selections[sel]; !ok {
		return "", false
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	return exprReceiver(sel) + "." + sel.Sel.Name, true
}

func exprReceiver(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name
	}
	return "(...)"
}

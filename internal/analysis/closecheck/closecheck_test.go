package closecheck_test

import (
	"testing"

	"dinfomap/internal/analysis/analysistest"
	"dinfomap/internal/analysis/closecheck"
)

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, "testdata", closecheck.Analyzer, "closer")
}

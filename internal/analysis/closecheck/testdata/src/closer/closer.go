// Testdata for the closecheck analyzer.
package closer

type file struct{}

func (file) Close() error { return nil }

type enc struct{}

func (enc) Encode(v interface{}) error { return nil }

type sink struct{}

func (sink) Flush() error { return nil }

func ignored() {
	var f file
	f.Close()       // want `error result of f.Close ignored`
	defer f.Close() // want `error result of f.Close deferred and ignored`
	var e enc
	e.Encode(1) // want `error result of e.Encode ignored`
	var s sink
	s.Flush() // want `error result of s.Flush ignored`
}

func handled() error {
	var f file
	if err := f.Close(); err != nil {
		return err
	}
	// An explicit discard is a visible decision, out of scope here.
	_ = f.Close()
	return nil
}

type quiet struct{}

func (quiet) Close() {}

// Close methods without an error result have nothing to ignore.
func closeQuiet() {
	var q quiet
	q.Close()
}

// A justified ignore (e.g. a read-only file) is suppressed.
func justified() {
	var f file
	//dinfomap:close-ok read-only handle; close errors cannot lose data
	f.Close()
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir and decodes the
// package stream. -export compiles each package (via the build cache)
// and records the path of its export data, which the type checker
// imports through the standard gc importer — no network, no x/tools.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from a map of import path -> export
// data file, as produced by `go list -export` or a vet .cfg's
// PackageFile table. An optional importMap translates source-level
// import paths to canonical package paths first.
func exportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	gc := importer.ForCompiler(fset, "gc", lookup)
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newTypesInfo allocates the full set of type-checker result maps.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, importPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: fset}
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = newTypesInfo()
	tpkg, _ := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// LoadDir parses and type-checks a single out-of-module package (e.g.
// an analyzer's testdata package) from an explicit file list. Imports
// must be resolvable by `go list` from dir — in practice, standard
// library packages.
func LoadDir(dir, importPath string, goFiles []string) (*Package, error) {
	fset := token.NewFileSet()
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: fset}
	importSet := make(map[string]bool)
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for path := range importSet {
			patterns = append(patterns, path)
		}
		sort.Strings(patterns)
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	conf := types.Config{
		Importer: exportImporter(fset, exports, nil),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = newTypesInfo()
	tpkg, _ := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// Load loads, parses, and type-checks the packages matched by patterns
// (relative to dir), returning only the matched packages themselves;
// dependencies are consumed as compiled export data. Test files are
// not loaded: the analyzers police production code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, lp.ImportPath, lp.Dir, lp.GoFiles, exportImporter(fset, exports, nil))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheck builds a one-file Package in memory so driver tests can run
// without `go list` or a module on disk.
func typecheck(t *testing.T, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{
		ImportPath: "p",
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      pkg,
		Info:       info,
	}
}

// flagTodo reports every call to a function named todo; suppressible
// with //dinfomap:todo-ok.
var flagTodo = &Analyzer{
	Name:        "todotest",
	Doc:         "flags calls to todo()",
	SuppressKey: "todo-ok",
	Run: func(p *Pass) error {
		p.WalkFiles(func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "todo" {
					p.Reportf(call.Pos(), "call to todo")
				}
			}
			return true
		})
		return nil
	},
}

func TestStaleSuppressions(t *testing.T) {
	pkg := typecheck(t, "a.go", `package p

func todo() {}

func f() {
	todo() //dinfomap:todo-ok used: suppresses the finding on this line
}

//dinfomap:todo-ok stale: nothing on this line or the next to suppress
func g() {}

func h() {
	_ = 1 //dinfomap:bogus-key unknown: no analyzer registers this
}
`)
	diags, stale, err := RunAnalyzersStale([]*Analyzer{flagTodo}, []*Package{pkg})
	if err != nil {
		t.Fatalf("RunAnalyzersStale: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("want 0 findings (the one real finding is suppressed), got %v", diags)
	}
	if len(stale) != 2 {
		t.Fatalf("want 2 stale diagnostics, got %v", stale)
	}
	for _, d := range stale {
		if d.Analyzer != StaleAnalyzerName {
			t.Errorf("stale diagnostic tagged %q, want %q", d.Analyzer, StaleAnalyzerName)
		}
	}
	if !strings.Contains(stale[0].Message, "no finding here to suppress") {
		t.Errorf("unused-key message: got %q", stale[0].Message)
	}
	if !strings.Contains(stale[1].Message, "names no analyzer in this run") {
		t.Errorf("unknown-key message: got %q", stale[1].Message)
	}
}

func TestStaleSkipsTestFiles(t *testing.T) {
	pkg := typecheck(t, "a_test.go", `package p

//dinfomap:todo-ok suppressions in _test.go files are never scanned
func g() {}
`)
	_, stale, err := RunAnalyzersStale([]*Analyzer{flagTodo}, []*Package{pkg})
	if err != nil {
		t.Fatalf("RunAnalyzersStale: %v", err)
	}
	if len(stale) != 0 {
		t.Errorf("want 0 stale diagnostics for _test.go comments, got %v", stale)
	}
}

func TestRunAnalyzersDropsStale(t *testing.T) {
	pkg := typecheck(t, "a.go", `package p

//dinfomap:todo-ok stale
func g() {}
`)
	diags, err := RunAnalyzers([]*Analyzer{flagTodo}, []*Package{pkg})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("RunAnalyzers must not surface stale suppressions, got %v", diags)
	}
}

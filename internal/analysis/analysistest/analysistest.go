// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { // want `range over map`
//
// Each `// want "regexp"` comment demands exactly one diagnostic on
// its line whose message matches the regexp; diagnostics on lines
// without a want comment are errors, as are unmatched wants. Testdata
// packages live under <dir>/src/<pkg> and may import the standard
// library only (imports resolve through `go list -export`, which
// works offline against the build cache).
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dinfomap/internal/analysis"
)

// Run applies a to the package at dir/src/pkgpath and reports
// expectation mismatches as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	pkgdir := filepath.Join(dir, "src", pkgpath)
	pkg, err := loadTestdata(pkgdir, pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgdir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors in %s: %v", pkgdir, pkg.TypeErrors)
	}

	diags, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	matched := make(map[string]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		w, ok := wants[key]
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", d.Pos, d.Message, w.re)
		}
		matched[key] = true
	}
	var unmet []string
	for key, w := range wants {
		if !matched[key] {
			unmet = append(unmet, fmt.Sprintf("%s: no diagnostic matching %q", key, w.re))
		}
	}
	sort.Strings(unmet)
	for _, m := range unmet {
		t.Error(m)
	}
}

type want struct {
	re *regexp.Regexp
}

// collectWants scans every file's comments for `// want "re"` markers,
// keyed by file:line.
func collectWants(pkg *analysis.Package) (map[string]want, error) {
	wants := make(map[string]want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				lit := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				var pattern string
				if strings.HasPrefix(lit, "`") {
					end := strings.Index(lit[1:], "`")
					if end < 0 {
						return nil, fmt.Errorf("unterminated want pattern: %s", c.Text)
					}
					pattern = lit[1 : 1+end]
				} else {
					var err error
					pattern, err = strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("bad want pattern %q: %v", lit, err)
					}
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("bad want regexp %q: %v", pattern, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = want{re: re}
			}
		}
	}
	return wants, nil
}

// loadTestdata type-checks the single package in pkgdir. The go tool
// never lists testdata directories via wildcard patterns, so the
// package is loaded by hand: parse every .go file, then resolve its
// (stdlib-only) imports through the analysis loader's export-data
// importer.
func loadTestdata(pkgdir, pkgpath string) (*analysis.Package, error) {
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no .go files in %s", pkgdir)
	}
	sort.Strings(goFiles)
	return analysis.LoadDir(pkgdir, pkgpath, goFiles)
}

// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis driver model, built on the
// standard library only (the build environment has no module proxy
// access, so x/tools itself cannot be vendored).
//
// It provides just enough surface for dinfomap's own vet suite: an
// Analyzer runs over one type-checked package at a time and reports
// position-tagged diagnostics. Two drivers exist in this package:
// a standalone one (Main, used by `dinfomap-vet ./...`) that loads
// packages via `go list -export`, and a `go vet -vettool` protocol
// driver (RunVet) speaking cmd/go's unitchecker .cfg handshake.
//
// Findings can be suppressed with a justification comment placed on
// the offending line or the line directly above it:
//
//	//dinfomap:<key>  <reason...>
//
// where <key> is the analyzer's suppression key (e.g. unordered-ok
// for maporder). The reason text is free-form but should say *why*
// the flagged construct is safe, not just that it is.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// SuppressKey is the comment key that silences a finding at a
	// specific site, written as //dinfomap:<SuppressKey>. Empty means
	// the analyzer's findings cannot be suppressed.
	SuppressKey string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives non-suppressed diagnostics.
	report func(Diagnostic)
	// suppressed maps "<filename>:<line>" to the suppression comment
	// covering that line (the comment's own line and the line below
	// it) for this analyzer's key. Hits are recorded on the comment so
	// stale suppressions can be reported.
	suppressed map[string]*suppression
}

// suppression is one //dinfomap:<key> comment in a package's non-test
// files, and whether any finding consumed it during the run.
type suppression struct {
	Key  string
	Pos  token.Position
	used bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless the site is suppressed by a
// //dinfomap:<key> comment or sits in a _test.go file (the suite
// polices production code; tests may use relaxed idioms).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if s := p.suppressed[suppressionAt(position)]; s != nil {
		s.used = true
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func suppressionAt(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// scanSuppressions collects every //dinfomap:<key> comment in the
// package's files. Comments in _test.go files are skipped: Reportf
// never consults suppressions there, so they can never be "used" and
// must not be reported stale either.
func scanSuppressions(fset *token.FileSet, files []*ast.File) []*suppression {
	const marker = "dinfomap:"
	var sups []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, marker) {
					continue
				}
				key := strings.TrimPrefix(text, marker)
				if i := strings.IndexAny(key, " \t"); i >= 0 {
					key = key[:i]
				}
				if key == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.HasSuffix(pos.Filename, "_test.go") {
					continue
				}
				sups = append(sups, &suppression{Key: key, Pos: pos})
			}
		}
	}
	return sups
}

// coverLines maps the lines covered by the key's suppression comments —
// each comment's own line and the line below it (so a marker can sit at
// the end of the offending line or on its own line directly above).
func coverLines(sups []*suppression, key string) map[string]*suppression {
	if key == "" {
		return nil
	}
	cover := make(map[string]*suppression)
	for _, s := range sups {
		if s.Key != key {
			continue
		}
		cover[suppressionAt(s.Pos)] = s
		cover[fmt.Sprintf("%s:%d", s.Pos.Filename, s.Pos.Line+1)] = s
	}
	return cover
}

// runAnalyzer applies one analyzer to one loaded package.
func runAnalyzer(a *Analyzer, pkg *Package, sups []*suppression, report func(Diagnostic)) error {
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		report:     report,
		suppressed: coverLines(sups, a.SuppressKey),
	}
	return a.Run(pass)
}

// StaleAnalyzerName tags the synthetic diagnostics RunAnalyzersStale
// emits for suppression comments that suppressed nothing.
const StaleAnalyzerName = "stale-suppression"

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersStale(analyzers, pkgs)
	return diags, err
}

// RunAnalyzersStale is RunAnalyzers plus stale-suppression detection:
// the second slice holds one diagnostic (analyzer "stale-suppression")
// for every //dinfomap:<key> comment that suppressed nothing during
// the run — no finding hit the lines it covers, or no analyzer in the
// run registers its key (a typo'd or obsolete key silently suppresses
// nothing, which is exactly the blindspot this reports).
func RunAnalyzersStale(analyzers []*Analyzer, pkgs []*Package) (diags, stale []Diagnostic, err error) {
	known := make(map[string]bool)
	for _, a := range analyzers {
		if a.SuppressKey != "" {
			known[a.SuppressKey] = true
		}
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, nil, fmt.Errorf("%s: type errors: %v", pkg.ImportPath, pkg.TypeErrors[0])
		}
		sups := scanSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if err := runAnalyzer(a, pkg, sups, func(d Diagnostic) {
				diags = append(diags, d)
			}); err != nil {
				return nil, nil, fmt.Errorf("%s: analyzer %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
		for _, s := range sups {
			if s.used {
				continue
			}
			msg := fmt.Sprintf("stale suppression //dinfomap:%s: no finding here to suppress; remove it", s.Key)
			if !known[s.Key] {
				msg = fmt.Sprintf("suppression //dinfomap:%s names no analyzer in this run; fix the key or remove it", s.Key)
			}
			stale = append(stale, Diagnostic{Pos: s.Pos, Analyzer: StaleAnalyzerName, Message: msg})
		}
	}
	sortDiags(diags)
	sortDiags(stale)
	return diags, stale, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// WalkFiles applies fn to every node of every file in the pass.
func (p *Pass) WalkFiles(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis driver model, built on the
// standard library only (the build environment has no module proxy
// access, so x/tools itself cannot be vendored).
//
// It provides just enough surface for dinfomap's own vet suite: an
// Analyzer runs over one type-checked package at a time and reports
// position-tagged diagnostics. Two drivers exist in this package:
// a standalone one (Main, used by `dinfomap-vet ./...`) that loads
// packages via `go list -export`, and a `go vet -vettool` protocol
// driver (RunVet) speaking cmd/go's unitchecker .cfg handshake.
//
// Findings can be suppressed with a justification comment placed on
// the offending line or the line directly above it:
//
//	//dinfomap:<key>  <reason...>
//
// where <key> is the analyzer's suppression key (e.g. unordered-ok
// for maporder). The reason text is free-form but should say *why*
// the flagged construct is safe, not just that it is.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// SuppressKey is the comment key that silences a finding at a
	// specific site, written as //dinfomap:<SuppressKey>. Empty means
	// the analyzer's findings cannot be suppressed.
	SuppressKey string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives non-suppressed diagnostics.
	report func(Diagnostic)
	// suppressed maps "<filename>:<line>" to true for every line that
	// carries (or is directly above a line that carries) this
	// analyzer's suppression comment.
	suppressed map[string]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless the site is suppressed by a
// //dinfomap:<key> comment or sits in a _test.go file (the suite
// polices production code; tests may use relaxed idioms).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.suppressed[suppressionAt(position)] {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func suppressionAt(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// buildSuppressions scans the files' comments for //dinfomap:<key>
// markers and records the lines they cover: the comment's own line and
// the line below it (so a marker can sit at the end of the offending
// line or on its own line directly above).
func buildSuppressions(fset *token.FileSet, files []*ast.File, key string) map[string]bool {
	if key == "" {
		return nil
	}
	marker := "dinfomap:" + key
	sup := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(text)
				if text != marker && !strings.HasPrefix(text, marker+" ") {
					continue
				}
				pos := fset.Position(c.Pos())
				sup[suppressionAt(pos)] = true
				sup[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return sup
}

// runAnalyzer applies one analyzer to one loaded package.
func runAnalyzer(a *Analyzer, pkg *Package, report func(Diagnostic)) error {
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		report:     report,
		suppressed: buildSuppressions(pkg.Fset, pkg.Files, a.SuppressKey),
	}
	return a.Run(pass)
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s: type errors: %v", pkg.ImportPath, pkg.TypeErrors[0])
		}
		for _, a := range analyzers {
			if err := runAnalyzer(a, pkg, func(d Diagnostic) {
				diags = append(diags, d)
			}); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// WalkFiles applies fn to every node of every file in the pass.
func (p *Pass) WalkFiles(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

package codecsym_test

import (
	"testing"

	"dinfomap/internal/analysis/analysistest"
	"dinfomap/internal/analysis/codecsym"
)

func TestCodecSym(t *testing.T) {
	analysistest.Run(t, "testdata", codecsym.Analyzer, "codec")
}

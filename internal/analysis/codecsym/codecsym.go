// Package codecsym verifies encode/decode symmetry of the wire codecs:
// for every message type with encode* methods writing through
// *mpi.Encoder and decode* functions reading through *mpi.Decoder, the
// decoder must read exactly the token sequence the encoder writes, in
// order. Token classes pair the fixed-width codec calls:
//
//	PutInt, PutI64  <->  Int, I64
//	PutU64          <->  U64
//	PutF64          <->  F64
//	PutBool         <->  Bool
//
// Conditionals are handled by branch-path enumeration: each side
// contributes the set of token sequences over all if/else paths, and
// every encode path must equal some decode path and vice versa. This is
// what keeps the ModuleInfo short form honest — encode and encodeShort
// are the two encoder paths, decodeModuleInfoMaybeShort's isSent branch
// supplies the two decoder paths.
//
// A pair is checked only when both sides exist in the same package and
// both are loop-free (per-record codecs; the framing loops live at call
// sites). Sites that are intentionally asymmetric carry:
//
//	//dinfomap:codecsym-ok <why the wire formats still agree>
package codecsym

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"dinfomap/internal/analysis"
)

// Analyzer is the codec-symmetry check.
var Analyzer = &analysis.Analyzer{
	Name:        "codecsym",
	Doc:         "flags encode/decode pairs whose wire token sequences disagree",
	SuppressKey: "codecsym-ok",
	Run:         run,
}

// Canonical token classes. PutInt/PutI64 and Int/I64 are the same
// 8-byte wire token, so they share a class.
var (
	encTokens = map[string]string{
		"PutInt": "i64", "PutI64": "i64", "PutU64": "u64",
		"PutF64": "f64", "PutBool": "bool",
	}
	decTokens = map[string]string{
		"Int": "i64", "I64": "i64", "U64": "u64",
		"F64": "f64", "Bool": "bool",
	}
)

// maxPaths bounds branch-path enumeration; codecs beyond it are skipped
// rather than mis-reported.
const maxPaths = 32

// codecFn is one analyzed encode or decode function.
type codecFn struct {
	decl  *ast.FuncDecl
	paths [][]string // token sequences, one per branch path
	ok    bool       // false: contains constructs the enumerator cannot model
}

func run(pass *analysis.Pass) error {
	encoders := map[string][]*codecFn{} // message type name -> encode methods
	decoders := map[string][]*codecFn{} // message type name -> decode funcs

	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if t := encoderTarget(pass, fd); t != "" {
				encoders[t] = append(encoders[t], enumerate(pass, fd, encTokens, "Encoder"))
			} else if t := decoderTarget(pass, fd); t != "" {
				decoders[t] = append(decoders[t], enumerate(pass, fd, decTokens, "Decoder"))
			}
		}
	}

	types := make([]string, 0, len(encoders))
	for t := range encoders {
		if len(decoders[t]) > 0 {
			types = append(types, t)
		}
	}
	sort.Strings(types)

	for _, t := range types {
		encs, decs := encoders[t], decoders[t]
		if !allAnalyzable(encs) || !allAnalyzable(decs) {
			continue
		}
		encPaths, decPaths := pathSet(encs), pathSet(decs)
		for _, e := range encs {
			for _, p := range e.paths {
				if !decPaths[key(p)] {
					pass.Reportf(e.decl.Name.Pos(),
						"%s.%s writes token path (%s) that no decoder of %s reads (decode paths: %s)",
						t, e.decl.Name.Name, key(p), t, describe(decPaths))
				}
			}
		}
		for _, d := range decs {
			for _, p := range d.paths {
				if !encPaths[key(p)] {
					pass.Reportf(d.decl.Name.Pos(),
						"%s reads token path (%s) that no encoder of %s writes (encode paths: %s)",
						d.decl.Name.Name, key(p), t, describe(encPaths))
				}
			}
		}
	}
	return nil
}

// encoderTarget returns the message type name when fd is an encode
// method: named encode*, declared on a package-local named type, taking
// a parameter whose type is (a pointer to) a named type "Encoder".
func encoderTarget(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if !strings.HasPrefix(fd.Name.Name, "encode") || fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	if !hasParamNamed(pass, fd, "Encoder") {
		return ""
	}
	return namedTypeName(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type))
}

// decoderTarget returns the message type name when fd is a decode
// function: named decode*, no receiver, taking a "Decoder" parameter
// and returning a package-local named struct type.
func decoderTarget(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if !strings.HasPrefix(fd.Name.Name, "decode") || fd.Recv != nil {
		return ""
	}
	if !hasParamNamed(pass, fd, "Decoder") || fd.Type.Results == nil {
		return ""
	}
	for _, res := range fd.Type.Results.List {
		t := pass.TypesInfo.TypeOf(res.Type)
		name := namedTypeName(t)
		if name == "" {
			continue
		}
		if named, ok := deref(t).(*types.Named); ok &&
			named.Obj().Pkg() == pass.Pkg {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return name
			}
		}
	}
	return ""
}

func hasParamNamed(pass *analysis.Pass, fd *ast.FuncDecl, typeName string) bool {
	for _, p := range fd.Type.Params.List {
		if namedTypeName(pass.TypesInfo.TypeOf(p.Type)) == typeName {
			return true
		}
	}
	return false
}

func namedTypeName(t types.Type) string {
	if named, ok := deref(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func allAnalyzable(fns []*codecFn) bool {
	for _, f := range fns {
		if !f.ok {
			return false
		}
	}
	return true
}

func pathSet(fns []*codecFn) map[string]bool {
	set := map[string]bool{}
	for _, f := range fns {
		for _, p := range f.paths {
			set[key(p)] = true
		}
	}
	return set
}

func key(tokens []string) string { return strings.Join(tokens, " ") }

func describe(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, "("+k+")")
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// ---- branch-path enumeration ----

// path is one partial execution trace through a codec body.
type path struct {
	tokens []string
	done   bool // hit a return; later statements no longer contribute
}

func (p path) extend(tokens []string) path {
	if len(tokens) == 0 {
		return p
	}
	out := make([]string, 0, len(p.tokens)+len(tokens))
	out = append(out, p.tokens...)
	out = append(out, tokens...)
	return path{tokens: out, done: p.done}
}

type enumerator struct {
	pass     *analysis.Pass
	tokens   map[string]string // method name -> token class
	recvName string            // "Encoder" or "Decoder"
	bad      bool
}

// enumerate walks fd's body and returns its token sequences over all
// if/else branch paths.
func enumerate(pass *analysis.Pass, fd *ast.FuncDecl, tokens map[string]string, recvName string) *codecFn {
	en := &enumerator{pass: pass, tokens: tokens, recvName: recvName}
	paths := en.stmts(fd.Body.List, []path{{}})
	fn := &codecFn{decl: fd, ok: !en.bad && len(paths) <= maxPaths}
	for _, p := range paths {
		fn.paths = append(fn.paths, p.tokens)
	}
	return fn
}

func (en *enumerator) stmts(list []ast.Stmt, in []path) []path {
	for _, s := range list {
		in = en.stmt(s, in)
		if en.bad || len(in) > maxPaths {
			en.bad = true
			return in
		}
	}
	return in
}

func (en *enumerator) stmt(s ast.Stmt, in []path) []path {
	switch st := s.(type) {
	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		return en.applyTokens(in, en.exprTokens(s))
	case *ast.ReturnStmt:
		out := en.applyTokens(in, en.exprTokens(s))
		for i := range out {
			out[i].done = true
		}
		return out
	case *ast.BlockStmt:
		return en.stmts(st.List, in)
	case *ast.IfStmt:
		in = en.applyTokens(in, en.exprTokens(st.Init))
		in = en.applyTokens(in, en.exprTokensExpr(st.Cond))
		thenPaths := en.branch(st.Body, in)
		elsePaths := in
		if st.Else != nil {
			elsePaths = en.stmt(st.Else, clonePaths(in))
		}
		return append(thenPaths, elsePaths...)
	default:
		// Loops, switches, gotos: fine as long as no codec tokens hide
		// inside (framing loops belong at call sites, not in per-record
		// codecs). Tokens inside mean we cannot order them — give up.
		if len(en.subtreeTokens(s)) > 0 {
			en.bad = true
		}
		return in
	}
}

func (en *enumerator) branch(body *ast.BlockStmt, in []path) []path {
	return en.stmts(body.List, clonePaths(in))
}

func clonePaths(in []path) []path {
	out := make([]path, len(in))
	copy(out, in) // token slices are copy-on-extend, sharing is safe
	return out
}

func (en *enumerator) applyTokens(in []path, tokens []string) []path {
	if len(tokens) == 0 {
		return in
	}
	out := make([]path, len(in))
	for i, p := range in {
		if p.done {
			out[i] = p
		} else {
			out[i] = p.extend(tokens)
		}
	}
	return out
}

// exprTokens collects codec token calls under a statement in source
// order (matching evaluation order for the argument-free codec calls).
func (en *enumerator) exprTokens(n ast.Node) []string {
	if n == nil {
		return nil
	}
	return en.subtreeTokens(n)
}

func (en *enumerator) exprTokensExpr(e ast.Expr) []string {
	if e == nil {
		return nil
	}
	return en.subtreeTokens(e)
}

func (en *enumerator) subtreeTokens(n ast.Node) []string {
	var out []string
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tok := en.tokenOf(call); tok != "" {
			out = append(out, tok)
		}
		return true
	})
	return out
}

// tokenOf returns the token class of a codec call like e.PutInt(x) or
// d.F64(), or "" for anything else.
func (en *enumerator) tokenOf(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tok, ok := en.tokens[sel.Sel.Name]
	if !ok {
		return ""
	}
	if namedTypeName(en.pass.TypesInfo.TypeOf(sel.X)) != en.recvName {
		return ""
	}
	return tok
}

// Package codec exercises the codecsym analyzer: local stand-ins for
// mpi.Encoder/Decoder (matched by type name) plus message types with
// symmetric, asymmetric, branchy, and unanalyzable codecs.
package codec

type Encoder struct{ buf []byte }

func (e *Encoder) PutInt(v int)     {}
func (e *Encoder) PutI64(v int64)   {}
func (e *Encoder) PutU64(v uint64)  {}
func (e *Encoder) PutF64(v float64) {}
func (e *Encoder) PutBool(v bool)   {}

type Decoder struct{ off int }

func (d *Decoder) Int() int     { return 0 }
func (d *Decoder) I64() int64   { return 0 }
func (d *Decoder) U64() uint64  { return 0 }
func (d *Decoder) F64() float64 { return 0 }
func (d *Decoder) Bool() bool   { return false }

// ---- symmetric pair: no diagnostics ----

type good struct {
	ID     int
	Weight float64
}

func (g good) encode(e *Encoder) {
	e.PutInt(g.ID)
	e.PutF64(g.Weight)
}

func decodeGood(d *Decoder) good {
	return good{ID: d.Int(), Weight: d.F64()}
}

// ---- PutInt and I64 share a token class: no diagnostics ----

type aliased struct {
	A int
	B int64
}

func (a aliased) encode(e *Encoder) {
	e.PutInt(a.A)
	e.PutI64(a.B)
}

func decodeAliased(d *Decoder) aliased {
	return aliased{A: int(d.I64()), B: int64(d.Int())}
}

// ---- short-form branching: encoder paths match decoder paths ----

type maybeShort struct {
	ID    int
	Stats float64
	Sent  bool
}

func (m maybeShort) encode(e *Encoder) {
	e.PutBool(false)
	e.PutInt(m.ID)
	e.PutF64(m.Stats)
}

func (m maybeShort) encodeShort(e *Encoder) {
	e.PutBool(true)
	e.PutInt(m.ID)
}

func decodeMaybeShort(d *Decoder) maybeShort {
	if d.Bool() {
		return maybeShort{ID: d.Int(), Sent: true}
	}
	return maybeShort{ID: d.Int(), Stats: d.F64()}
}

// ---- asymmetric pair: decoder skips a field ----

type dropped struct {
	ID     int
	Extra  uint64
	Weight float64
}

func (r dropped) encode(e *Encoder) { // want `dropped\.encode writes token path \(i64 u64 f64\) that no decoder of dropped reads`
	e.PutInt(r.ID)
	e.PutU64(r.Extra)
	e.PutF64(r.Weight)
}

func decodeDropped(d *Decoder) dropped { // want `decodeDropped reads token path \(i64 f64\) that no encoder of dropped writes`
	return dropped{ID: d.Int(), Weight: d.F64()}
}

// ---- asymmetric branch: decoder has a path no encoder produces ----

type lopsided struct {
	ID   int
	Flag bool
}

func (l lopsided) encode(e *Encoder) {
	e.PutBool(l.Flag)
	e.PutInt(l.ID)
}

func decodeLopsided(d *Decoder) lopsided { // want `decodeLopsided reads token path \(bool i64 i64\) that no encoder of lopsided writes`
	if d.Bool() {
		return lopsided{ID: d.Int(), Flag: true}
	}
	return lopsided{ID: d.Int() + d.Int()}
}

// ---- suppressed: intentional asymmetry with a justification ----

type padded struct{ ID int }

//dinfomap:codecsym-ok trailing pad word is skipped via Remaining() at call sites
func (p padded) encode(e *Encoder) {
	e.PutInt(p.ID)
	e.PutU64(0)
}

//dinfomap:codecsym-ok trailing pad word is skipped via Remaining() at call sites
func decodePadded(d *Decoder) padded {
	return padded{ID: d.Int()}
}

// ---- loop-bearing codec: skipped, not mis-reported ----

type varlen struct{ Vals []int }

func (v varlen) encode(e *Encoder) {
	e.PutInt(len(v.Vals))
	for _, x := range v.Vals {
		e.PutInt(x)
	}
}

func decodeVarlen(d *Decoder) varlen {
	n := d.Int()
	out := varlen{Vals: make([]int, n)}
	for i := range out.Vals {
		out.Vals[i] = d.Int()
	}
	return out
}

// Package rankshare enforces the single-writer discipline on the
// shared runState: during a run, P goroutines (the simulated ranks)
// execute rankMain concurrently against one runState value, so any
// field write from per-rank code is a data race unless it follows one
// of the sanctioned patterns:
//
//   - per-rank slot writes, rs.sliceField[rank] = v, where the index
//     is the rank id (an identifier named "rank"/"r" assigned from
//     Comm.Rank(), or a direct Comm.Rank() call);
//   - rank-0-only publication inside an `if rank == 0` guard (exactly
//     one writer; readers look only after mpi.Run returns — a barrier);
//   - writes between an explicit mutex Lock/Unlock in the same body.
//
// Per-rank code is the set of functions reachable (via a same-package
// call-graph walk) from a function named rankMain, from any function
// value passed to mpi.Run, or from any function taking a *mpi.Comm
// parameter. The analyzer is AST-based and intra-package; an SSA-based
// v2 (tracking aliasing of runState through locals) is a ROADMAP item.
//
// False positives carry a justification:
//
//	//dinfomap:rankshare-ok <why this write cannot race>
package rankshare

import (
	"go/ast"
	"go/token"
	"go/types"

	"dinfomap/internal/analysis"
)

// Analyzer is the rankshare check.
var Analyzer = &analysis.Analyzer{
	Name:        "rankshare",
	Doc:         "flags unguarded writes to shared runState fields from per-rank code",
	SuppressKey: "rankshare-ok",
	Run:         run,
}

// sharedTypeName is the struct whose fields are protected. The check
// activates only in packages that declare a type with this name.
const sharedTypeName = "runState"

func run(pass *analysis.Pass) error {
	shared := findSharedType(pass)
	if shared == nil {
		return nil
	}

	decls := funcDecls(pass)
	graph := buildCallGraph(pass, decls)
	perRank := reachable(entryPoints(pass, decls), graph)

	for fn, decl := range decls {
		if !perRank[fn] || decl.Body == nil {
			continue
		}
		checkBody(pass, shared, decl)
	}
	return nil
}

// findSharedType locates the named struct type called runState in the
// package being checked.
func findSharedType(pass *analysis.Pass) types.Type {
	if pass.Pkg == nil {
		return nil
	}
	obj := pass.Pkg.Scope().Lookup(sharedTypeName)
	if obj == nil {
		return nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	if _, ok := tn.Type().Underlying().(*types.Struct); !ok {
		return nil
	}
	return tn.Type()
}

func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// buildCallGraph records, for each declared function, the same-package
// functions it mentions (call or function value — a mention is enough,
// since a passed function may run on the callee's goroutine).
func buildCallGraph(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func][]*types.Func {
	graph := make(map[*types.Func][]*types.Func)
	for fn, decl := range decls {
		if decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if _, declared := decls[callee]; declared {
				graph[fn] = append(graph[fn], callee)
			}
			return true
		})
	}
	return graph
}

// entryPoints returns the roots of per-rank execution: rankMain by
// name, functions handed to mpi.Run, and functions taking a parameter
// whose type is (a pointer to) a named type called Comm from a package
// named mpi.
func entryPoints(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl) []*types.Func {
	var roots []*types.Func
	for fn, decl := range decls {
		if fn.Name() == "rankMain" || hasCommParam(fn) {
			roots = append(roots, fn)
			continue
		}
		_ = decl
	}
	// Function values passed to mpi.Run(...) — e.g. mpi.Run(p, runner.rankMain).
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isMpiRun(pass, call.Fun) {
				return true
			}
			for _, arg := range call.Args {
				var obj types.Object
				switch a := ast.Unparen(arg).(type) {
				case *ast.Ident:
					obj = pass.TypesInfo.Uses[a]
				case *ast.SelectorExpr:
					obj = pass.TypesInfo.Uses[a.Sel]
				}
				if fn, ok := obj.(*types.Func); ok {
					if _, declared := decls[fn]; declared {
						roots = append(roots, fn)
					}
				}
			}
			return true
		})
	}
	return roots
}

func hasCommParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Comm" {
			continue
		}
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Name() == "mpi" {
			return true
		}
	}
	return false
}

func isMpiRun(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Run" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Name() == "mpi"
}

func reachable(roots []*types.Func, graph map[*types.Func][]*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, callee := range graph[fn] {
			walk(callee)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// checkBody flags unguarded shared-field writes inside one per-rank
// function.
func checkBody(pass *analysis.Pass, shared types.Type, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		var lhss []ast.Expr
		switch st := n.(type) {
		case *ast.AssignStmt:
			lhss = st.Lhs
		case *ast.IncDecStmt:
			lhss = []ast.Expr{st.X}
		default:
			return true
		}
		for _, lhs := range lhss {
			target, idx := sharedWriteTarget(pass, shared, lhs)
			if target == nil {
				continue
			}
			if idx != nil && rankIndex(pass, idx) {
				continue // rs.perRank[rank] = ... : the rank's own slot
			}
			if guarded(pass, decl.Body, n.Pos()) {
				continue
			}
			what := "field"
			if idx != nil {
				what = "element"
			}
			pass.Reportf(lhs.Pos(),
				"write to shared %s %s %s from per-rank code outside a rank==0 guard or mutex; "+
					"use a per-rank slot indexed by rank or justify with //dinfomap:rankshare-ok",
				sharedTypeName, what, exprString(lhs))
		}
		return true
	})
}

// sharedWriteTarget reports whether lhs writes through a runState
// value: rs.f, rs.f.g, rs.f[i], rs.f[i].g, ... It returns the root
// selector and, when the write lands in a slice/map element, the
// index expression.
func sharedWriteTarget(pass *analysis.Pass, shared types.Type, lhs ast.Expr) (root ast.Expr, index ast.Expr) {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if isSharedValue(pass, shared, x.X) {
				return x, index
			}
			e = x.X
		case *ast.IndexExpr:
			if isSharedValue(pass, shared, x.X) {
				// Writing rs.someSlice[i] hits x.X = rs.someSlice below;
				// a bare rs[i] cannot occur (runState is a struct).
				return nil, nil
			}
			index = x.Index
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, nil
		}
	}
}

// isSharedValue reports whether e's type is runState or *runState.
func isSharedValue(pass *analysis.Pass, shared types.Type, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, shared)
}

// rankIndex reports whether idx is the local rank id: an identifier
// named rank (or r), or a call to a method named Rank.
func rankIndex(pass *analysis.Pass, idx ast.Expr) bool {
	switch x := ast.Unparen(idx).(type) {
	case *ast.Ident:
		return x.Name == "rank" || x.Name == "r"
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Rank"
		}
	case *ast.SelectorExpr:
		return x.Sel.Name == "rank"
	}
	return false
}

// guarded reports whether pos sits inside an `if rank == 0`-style
// conditional, or lexically after a .Lock() call in the same body.
func guarded(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos) bool {
	locked := false
	guardedByIf := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Lock" && x.End() <= pos {
				locked = true
			}
		case *ast.IfStmt:
			if x.Body.Pos() <= pos && pos <= x.Body.End() && isRankZeroCond(pass, x.Cond) {
				guardedByIf = true
			}
		}
		return true
	})
	return locked || guardedByIf
}

// isRankZeroCond matches conditions comparing a rank-like expression
// with a constant: rank == 0, c.Rank() == 0, 0 == rank, possibly
// nested in && / ||.
func isRankZeroCond(pass *analysis.Pass, cond ast.Expr) bool {
	switch x := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			return isRankZeroCond(pass, x.X) || isRankZeroCond(pass, x.Y)
		case token.EQL:
			return rankIndex(pass, x.X) || rankIndex(pass, x.Y)
		}
	}
	return false
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr, *ast.StarExpr:
		return "expression"
	}
	return "expression"
}

// Package rankshare enforces the single-writer discipline on the
// shared runState: during a run, P goroutines (the simulated ranks)
// execute rankMain concurrently against one runState value, so any
// field write from per-rank code is a data race unless it follows one
// of the sanctioned patterns:
//
//   - per-rank slot writes, rs.sliceField[rank] = v, where the index is
//     the rank id — an identifier named "rank"/"r", a direct
//     Comm.Rank() call, or any identifier whose reaching definitions
//     are all Comm.Rank() calls;
//   - rank-0-only publication in a block dominated by an `if rank == 0`
//     guard (exactly one writer; readers look only after mpi.Run
//     returns — a barrier);
//   - writes at which a mutex is provably held on every incoming path
//     (a must-held-lock dataflow over the function's CFG; deferred
//     Unlocks release at function exit and so keep the lock held).
//
// The check is flow-sensitive, built on the SSA-lite layer in
// internal/analysis/flow: runState aliases are followed through local
// copies, field/slice projections (p := &rs.f, sl := rs.buf), range
// bindings, closure captures, and helper returns (x := getRS()), so a
// write through any alias is checked — and a write to a genuinely
// fresh local copy (var s runState; s.f = v) is not flagged.
//
// Per-rank code is the set of functions reachable from a function named
// rankMain, from any function value passed to mpi.Run, or from any
// function taking a *mpi.Comm parameter, through a same-package call
// graph whose edges are resolved calls: direct calls, method calls,
// calls through local function variables (via reaching definitions),
// calls inside function literals, and function values passed as call
// arguments. Writes inside a function literal are analyzed against the
// literal's own CFG; enclosing rank==0 or lock guards do not carry into
// it (the closure may run later, outside the guard).
//
// Known limits: taint does not flow through heap stores (stash the
// pointer in a struct field, write through it later), and mutating
// calls through &x are not definitions of x.
//
// False positives carry a justification:
//
//	//dinfomap:rankshare-ok <why this write cannot race>
package rankshare

import (
	"go/ast"
	"go/token"
	"go/types"

	"dinfomap/internal/analysis"
	"dinfomap/internal/analysis/flow"
)

// Analyzer is the rankshare check.
var Analyzer = &analysis.Analyzer{
	Name:        "rankshare",
	Doc:         "flags unguarded writes to shared runState state (including aliases) from per-rank code",
	SuppressKey: "rankshare-ok",
	Run:         run,
}

// sharedTypeName is the struct whose fields are protected. The check
// activates only in packages that declare a type with this name.
const sharedTypeName = "runState"

// state carries one package's analysis across functions.
type state struct {
	pass          *analysis.Pass
	shared        types.Type
	decls         map[*types.Func]*ast.FuncDecl
	infos         map[*types.Func]*funcInfo
	returnsShared map[*types.Func]bool
}

// funcInfo is the per-function flow solution.
type funcInfo struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	cfg     *flow.Func
	ch      *flow.Chains
	seeds   map[*types.Var]bool // receiver/params of shared type
	tainted map[*types.Var]bool
}

func run(pass *analysis.Pass) error {
	shared := findSharedType(pass)
	if shared == nil {
		return nil
	}
	st := &state{
		pass:          pass,
		shared:        shared,
		decls:         funcDecls(pass),
		infos:         map[*types.Func]*funcInfo{},
		returnsShared: map[*types.Func]bool{},
	}
	for fn, decl := range st.decls {
		if decl.Body == nil {
			continue
		}
		cfg := flow.New(decl.Body)
		params := signatureVars(fn)
		info := &funcInfo{
			fn:    fn,
			decl:  decl,
			cfg:   cfg,
			ch:    flow.BuildChains(cfg, pass.TypesInfo, params),
			seeds: map[*types.Var]bool{},
		}
		for _, v := range params {
			if v != nil && st.isSharedType(v.Type()) {
				info.seeds[v] = true
			}
		}
		st.infos[fn] = info
	}

	st.solveReturnsShared()

	graph := st.buildCallGraph()
	roots, litRoots := st.entryPoints()
	perRank := reachable(roots, graph)

	for fn, info := range st.infos {
		if !perRank[fn] {
			continue
		}
		sharedVar := func(v *types.Var) bool {
			return info.tainted[v] || info.seeds[v]
		}
		st.checkBody(info.cfg, info.ch, info.decl.Body, sharedVar)
	}
	// Function literals handed to mpi.Run directly are per-rank roots
	// with no enclosing taint.
	for _, lit := range litRoots {
		st.checkFuncLit(lit, func(*types.Var) bool { return false })
	}
	return nil
}

// findSharedType locates the named struct type called runState in the
// package being checked.
func findSharedType(pass *analysis.Pass) types.Type {
	if pass.Pkg == nil {
		return nil
	}
	obj := pass.Pkg.Scope().Lookup(sharedTypeName)
	if obj == nil {
		return nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	if _, ok := tn.Type().Underlying().(*types.Struct); !ok {
		return nil
	}
	return tn.Type()
}

// isSharedType reports whether t is runState or *runState.
func (st *state) isSharedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, st.shared)
}

func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// signatureVars lists the variables defined at function entry: the
// receiver, parameters, and named results.
func signatureVars(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if v := sig.Results().At(i); v.Name() != "" {
			out = append(out, v)
		}
	}
	return out
}

// solveReturnsShared computes, to a fixed point, which functions return
// a value aliasing their shared parameters — so x := helper(rs) taints
// x in the caller. Each round recomputes every function's taint under
// the current summaries.
func (st *state) solveReturnsShared() {
	for changed := true; changed; {
		changed = false
		for fn, info := range st.infos {
			info.tainted = st.computeTaint(info)
			if st.returnsShared[fn] {
				continue
			}
			returns := false
			ast.Inspect(info.decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if st.exprShared(info, res) {
						returns = true
					}
				}
				return true
			})
			if returns {
				st.returnsShared[fn] = true
				changed = true
			}
		}
	}
}

// computeTaint runs the may-alias closure for one function: seeds are
// the shared-typed receiver/params; taint flows through copies,
// projections, range bindings, and calls to returnsShared functions.
func (st *state) computeTaint(info *funcInfo) map[*types.Var]bool {
	return info.ch.MayAlias(flow.TaintSpec{
		Seeds: func(v *types.Var) bool { return info.seeds[v] },
		Via: func(d *flow.Def, tainted func(ast.Expr) bool) bool {
			if d.RHS == nil {
				return false
			}
			if tainted(d.RHS) {
				return true
			}
			if call, ok := ast.Unparen(d.RHS).(*ast.CallExpr); ok {
				if fn := st.calleeOf(call); fn != nil && st.returnsShared[fn] {
					return true
				}
			}
			return false
		},
	})
}

// exprShared reports whether e's value aliases the shared state in
// info's function: its base variable is tainted, or a call to a
// returnsShared function.
func (st *state) exprShared(info *funcInfo, e ast.Expr) bool {
	if v := flow.BaseVar(st.pass.TypesInfo, e); v != nil {
		return info.tainted[v] || info.seeds[v]
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if fn := st.calleeOf(call); fn != nil && st.returnsShared[fn] {
			return true
		}
	}
	return false
}

// calleeOf resolves a call expression to a same-package declared
// function (direct call or method call), nil otherwise.
func (st *state) calleeOf(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = st.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = st.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if _, declared := st.decls[fn]; !declared {
		return nil
	}
	return fn
}

// buildCallGraph resolves same-package callees per function: direct and
// method calls, calls through local function variables (via reaching
// definitions), calls inside function literals, and function values
// passed as call arguments (the callee may invoke them).
func (st *state) buildCallGraph() map[*types.Func][]*types.Func {
	graph := make(map[*types.Func][]*types.Func)
	for fn, info := range st.infos {
		add := func(callee *types.Func) {
			if callee != nil {
				graph[fn] = append(graph[fn], callee)
			}
		}
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := st.calleeOf(call); callee != nil {
				add(callee)
			} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				// f() where f is a local function variable: resolve the
				// values f may hold through its definitions.
				if v, ok := st.pass.TypesInfo.Uses[id].(*types.Var); ok {
					for _, d := range info.ch.DefsOf(v) {
						if d.RHS != nil {
							add(st.funcRef(d.RHS))
						}
					}
				}
			}
			for _, arg := range call.Args {
				add(st.funcRef(arg))
			}
			return true
		})
	}
	return graph
}

// funcRef resolves an expression used as a function value to a
// same-package declared function.
func (st *state) funcRef(e ast.Expr) *types.Func {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = st.pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = st.pass.TypesInfo.Uses[x.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if _, declared := st.decls[fn]; !declared {
		return nil
	}
	return fn
}

// entryPoints returns the roots of per-rank execution — rankMain by
// name, functions taking a (*mpi.Comm) parameter, function values
// passed to mpi.Run — plus function literals handed to mpi.Run, which
// are per-rank bodies with no declaration.
func (st *state) entryPoints() ([]*types.Func, []*ast.FuncLit) {
	var roots []*types.Func
	for fn := range st.infos {
		if fn.Name() == "rankMain" || hasCommParam(fn) {
			roots = append(roots, fn)
		}
	}
	var lits []*ast.FuncLit
	for _, file := range st.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isMpiRun(st.pass, call.Fun) {
				return true
			}
			for _, arg := range call.Args {
				if fn := st.funcRef(arg); fn != nil {
					roots = append(roots, fn)
				}
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					lits = append(lits, lit)
				}
			}
			return true
		})
	}
	return roots, lits
}

func hasCommParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Comm" {
			continue
		}
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Name() == "mpi" {
			return true
		}
	}
	return false
}

func isMpiRun(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Run" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Name() == "mpi"
}

func reachable(roots []*types.Func, graph map[*types.Func][]*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, callee := range graph[fn] {
			walk(callee)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// checkBody flags unguarded shared writes inside one per-rank CFG.
// sharedVar decides whether a variable aliases the shared state;
// function literals inside the body are analyzed recursively against
// their own CFGs (with sharedVar as their capture environment).
func (st *state) checkBody(cfg *flow.Func, ch *flow.Chains, body *ast.BlockStmt, sharedVar func(*types.Var) bool) {
	lockIn := flow.RunForward(cfg, lockProblem())
	guards := st.zeroGuardBlocks(cfg, ch, body)

	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, x)
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				st.checkWrite(cfg, ch, lhs, sharedVar, lockIn, guards)
			}
		case *ast.IncDecStmt:
			st.checkWrite(cfg, ch, x.X, sharedVar, lockIn, guards)
		}
		return true
	})

	for _, lit := range lits {
		st.checkFuncLit(lit, sharedVar)
	}
}

// checkFuncLit analyzes a function literal from per-rank code as its
// own function: its CFG, lock proofs, and rank==0 guards are local
// (guards taken in the enclosing function do not carry in — the
// closure may run after the guard no longer holds), while outerShared
// supplies the taint of captured variables.
func (st *state) checkFuncLit(lit *ast.FuncLit, outerShared func(*types.Var) bool) {
	cfg := flow.New(lit.Body)
	var params []*types.Var
	seeds := map[*types.Var]bool{}
	if sig, ok := st.pass.TypesInfo.TypeOf(lit).(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			v := sig.Params().At(i)
			params = append(params, v)
			if st.isSharedType(v.Type()) {
				seeds[v] = true
			}
		}
	}
	ch := flow.BuildChains(cfg, st.pass.TypesInfo, params)
	seedFn := func(v *types.Var) bool { return seeds[v] || outerShared(v) }
	tainted := ch.MayAlias(flow.TaintSpec{
		Seeds: seedFn,
		Via: func(d *flow.Def, t func(ast.Expr) bool) bool {
			if d.RHS == nil {
				return false
			}
			if t(d.RHS) {
				return true
			}
			if call, ok := ast.Unparen(d.RHS).(*ast.CallExpr); ok {
				if fn := st.calleeOf(call); fn != nil && st.returnsShared[fn] {
					return true
				}
			}
			return false
		},
	})
	st.checkBody(cfg, ch, lit.Body, func(v *types.Var) bool {
		return tainted[v] || seedFn(v)
	})
}

// checkWrite classifies one assignment target and reports it when it
// writes shared state without a sanctioned guard.
func (st *state) checkWrite(cfg *flow.Func, ch *flow.Chains, lhs ast.Expr, sharedVar func(*types.Var) bool, lockIn []lockSet, guards []*flow.Block) {
	target, idx := st.writeTarget(lhs, sharedVar)
	if !target {
		return
	}
	if idx != nil && st.rankIndex(ch, idx) {
		return // rs.perRank[rank] = ... : the rank's own slot
	}
	b := ch.BlockOf(lhs)
	if b != nil {
		for _, g := range guards {
			if cfg.Dominates(g, b) {
				return // every path here passed the rank==0 test
			}
		}
		if lockHeldAt(lockIn[b.Index], b, lhs) {
			return
		}
	}
	what := "field"
	if idx != nil {
		what = "element"
	}
	st.pass.Reportf(lhs.Pos(),
		"write to shared %s %s %s from per-rank code outside a rank==0 guard or mutex; "+
			"use a per-rank slot indexed by rank or justify with //dinfomap:rankshare-ok",
		sharedTypeName, what, exprString(lhs))
}

// writeTarget reports whether lhs writes through a value aliasing the
// shared runState, and the (outermost) index expression when the write
// lands in a slice/map element. The base of the chain decides: a
// variable counts when tainted/seeded, or when it is a package-level
// variable of the shared type; a non-variable base (call result, ...)
// falls back to type identity.
func (st *state) writeTarget(lhs ast.Expr, sharedVar func(*types.Var) bool) (shared bool, index ast.Expr) {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if index == nil {
				index = x.Index
			}
			e = x.X
		case *ast.Ident:
			v, _ := st.pass.TypesInfo.ObjectOf(x).(*types.Var)
			if v == nil {
				return false, nil
			}
			if e == lhs {
				// The target is the bare variable: assigning it rebinds
				// the local, it does not write through the alias. Only
				// a package-level shared variable is itself shared.
				return flow.IsPackageLevel(v) && st.isSharedType(v.Type()), index
			}
			if sharedVar(v) {
				return true, index
			}
			if flow.IsPackageLevel(v) && st.isSharedType(v.Type()) {
				return true, index
			}
			return false, nil
		default:
			// Call result or other opaque base: fall back to the type.
			return st.isSharedType(st.pass.TypesInfo.TypeOf(e)), index
		}
	}
}

// rankIndex reports whether idx is the local rank id: an identifier
// named rank (or r), a call to a method named Rank, a selector .rank —
// or any identifier whose reaching definitions are all Rank() calls.
func (st *state) rankIndex(ch *flow.Chains, idx ast.Expr) bool {
	switch x := ast.Unparen(idx).(type) {
	case *ast.Ident:
		if x.Name == "rank" || x.Name == "r" {
			return true
		}
		v, _ := st.pass.TypesInfo.ObjectOf(x).(*types.Var)
		if v == nil {
			return false
		}
		defs := ch.ReachingDefs(x, v)
		if len(defs) == 0 {
			return false
		}
		for _, d := range defs {
			if !isRankCall(d.RHS) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		return isRankCall(x)
	case *ast.SelectorExpr:
		return x.Sel.Name == "rank"
	}
	return false
}

// isRankCall matches a call to a method named Rank.
func isRankCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Rank"
}

// zeroGuardBlocks collects the then-entry blocks of `if rank == 0`
// guards in body (excluding function literals): a write whose block is
// dominated by one of them runs only on rank 0.
func (st *state) zeroGuardBlocks(cfg *flow.Func, ch *flow.Chains, body *ast.BlockStmt) []*flow.Block {
	var guards []*flow.Block
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ifst, ok := n.(*ast.IfStmt)
		if !ok || !st.isRankZeroCond(ch, ifst.Cond) || len(ifst.Body.List) == 0 {
			return true
		}
		if b := ch.BlockOf(ifst.Body.List[0]); b != nil {
			guards = append(guards, b)
		}
		return true
	})
	return guards
}

// isRankZeroCond matches conditions comparing a rank-like expression
// with a constant: rank == 0, c.Rank() == 0, 0 == rank, possibly
// nested in && / ||.
func (st *state) isRankZeroCond(ch *flow.Chains, cond ast.Expr) bool {
	switch x := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			return st.isRankZeroCond(ch, x.X) || st.isRankZeroCond(ch, x.Y)
		case token.EQL:
			return st.rankIndex(ch, x.X) || st.rankIndex(ch, x.Y)
		}
	}
	return false
}

// --- must-held-lock dataflow ---

// lockSet is the must-analysis lattice: the set of mutexes (by
// canonical receiver expression, e.g. "rs.mu") held on every path.
type lockSet struct {
	top  bool
	held map[string]bool
}

func lockProblem() flow.ForwardProblem[lockSet] {
	return flow.ForwardProblem[lockSet]{
		Entry: func() lockSet { return lockSet{held: map[string]bool{}} },
		Top:   func() lockSet { return lockSet{top: true} },
		Join: func(a, b lockSet) lockSet {
			if a.top {
				return b
			}
			if b.top {
				return a
			}
			out := lockSet{held: map[string]bool{}}
			for m := range a.held {
				if b.held[m] {
					out.held[m] = true
				}
			}
			return out
		},
		Transfer: func(b *flow.Block, in lockSet) lockSet {
			s := in.clone()
			for _, n := range b.Nodes {
				s = lockApply(s, n)
			}
			return s
		},
		Equal: func(a, b lockSet) bool {
			if a.top != b.top || len(a.held) != len(b.held) {
				return false
			}
			for m := range a.held {
				if !b.held[m] {
					return false
				}
			}
			return true
		},
	}
}

func (s lockSet) clone() lockSet {
	out := lockSet{top: s.top, held: map[string]bool{}}
	for m := range s.held {
		out.held[m] = true
	}
	return out
}

// lockApply folds one block node's Lock/Unlock calls into the held set.
// Deferred calls are skipped (a deferred Unlock releases only at
// function exit, so it does not end the critical section here), as are
// function literals and range heads (their interiors execute
// elsewhere).
func lockApply(s lockSet, n ast.Node) lockSet {
	switch n.(type) {
	case *ast.DeferStmt, *ast.RangeStmt:
		return s
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock":
			if key := exprKey(sel.X); key != "" {
				s.held[key] = true
			}
		case "Unlock":
			if key := exprKey(sel.X); key != "" {
				delete(s.held, key)
			}
		}
		return true
	})
	return s
}

// lockHeldAt simulates b's nodes from its entry state up to (but not
// including) the node containing pos, and reports whether any mutex is
// then must-held.
func lockHeldAt(in lockSet, b *flow.Block, at ast.Expr) bool {
	s := in
	if s.top {
		return false
	}
	s = s.clone()
	for _, n := range b.Nodes {
		if n.Pos() <= at.Pos() && at.End() <= n.End() {
			break
		}
		s = lockApply(s, n)
	}
	return len(s.held) > 0
}

// exprKey renders a selector chain to a canonical string ("rs.mu",
// "lv.state.mu"); "" when the expression is not a plain chain.
func exprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return exprKey(x.X)
		}
	}
	return ""
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}

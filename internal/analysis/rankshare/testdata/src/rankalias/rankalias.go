// Testdata for rankshare v2's alias tracking: every case here is
// invisible to a purely type-identity check on the written expression —
// the write goes through a local alias (field pointer, slice header,
// helper return, closure capture), or is a fresh copy that must NOT be
// flagged. The Lock/Unlock cases exercise the must-held dataflow.
package rankalias

import "sync"

type runState struct {
	perRank []int
	out     []int
	total   int
	mu      sync.Mutex
}

func rankMain(rs *runState, rank int) {
	// Write through a field pointer: the lexical v1 check never saw a
	// runState-typed expression here.
	p := &rs.total
	*p = 2 // want `write to shared runState field \*p from per-rank code`

	// Write through a slice alias of a shared field.
	sl := rs.perRank
	sl[rank+1] = 3 // want `write to shared runState element sl\[\.\.\.\] from per-rank code`
	sl[rank] = 1   // the rank's own slot, through the alias: allowed

	// A fresh local copy aliases nothing; writing its fields is safe.
	// (v1 flagged this on type identity alone.)
	var fresh runState
	fresh.total = 6
	_ = fresh

	// A copy of the pointer is the shared state itself.
	s := rs
	s.total = 7 // want `write to shared runState field s\.total from per-rank code`

	aliasReturn(rs)
	closures(rs, rank)
	lockPaired(rs, rank)
	indirect(rs)
	viaRankCall(rs, comm{})
}

// self returns its argument: callers' results alias the shared state.
func self(rs *runState) *runState { return rs }

func aliasReturn(rs *runState) {
	x := self(rs)
	x.total++ // want `write to shared runState field x\.total from per-rank code`
}

// closures: captured aliases are tracked inside function literals, and
// guards from the enclosing function do not carry in.
func closures(rs *runState, rank int) {
	f := func() {
		rs.total++           // want `write to shared runState field rs\.total from per-rank code`
		rs.perRank[rank] = 4 // the rank's own slot: allowed even in a closure
	}
	f()
}

// lockPaired: the mutex is provably held after a Lock on every branch
// (v1's lexical scan could not distinguish these), and provably not
// held after the Unlock or when only one branch locked.
func lockPaired(rs *runState, rank int) {
	if rank%2 == 0 {
		rs.mu.Lock()
	} else {
		rs.mu.Lock()
	}
	rs.total++ // both paths hold the lock: allowed
	rs.mu.Unlock()
	rs.total++ // want `write to shared runState field rs\.total from per-rank code`
	if rank%2 == 0 {
		rs.mu.Lock()
	}
	rs.total++ // want `write to shared runState field rs\.total from per-rank code`
	if rank%2 == 0 {
		rs.mu.Unlock()
	}
}

// indirect: the callee is resolved through a local function variable,
// so bump is per-rank too.
func indirect(rs *runState) {
	f := bump
	f(rs)
}

func bump(rs *runState) {
	rs.total++ // want `write to shared runState field rs\.total from per-rank code`
}

// comm stands in for mpi.Comm (testdata is stdlib-only).
type comm struct{}

func (comm) Rank() int { return 0 }

// viaRankCall: an index variable not named rank/r still counts as the
// rank id when all its reaching definitions are Rank() calls.
func viaRankCall(rs *runState, c comm) {
	me := c.Rank()
	rs.perRank[me] = 1 // allowed: me is the rank id by def-use
	other := c.Rank()
	other = other + 1
	rs.perRank[other] = 2 // want `write to shared runState element rs\.perRank\[\.\.\.\] from per-rank code`
}

// Testdata for the rankshare analyzer. The package declares a runState
// struct and a rankMain entry point, mirroring internal/core's layout:
// P goroutines run rankMain concurrently against one shared runState.
package rankstate

import "sync"

type runState struct {
	perRank []int
	out     []int
	total   int
	note    string
	mu      sync.Mutex
}

func rankMain(rs *runState, rank int) {
	rs.perRank[rank] = 2 * rank // own slot, indexed by rank: allowed
	rs.total++                  // want `write to shared runState field rs.total from per-rank code`
	rs.note = "racy"            // want `write to shared runState field rs.note from per-rank code`
	if rank == 0 {
		rs.out = rs.perRank // rank-0 publication: allowed
	}
	helper(rs, rank)
	locked(rs)
	justified(rs)
	badIndex(rs, rank+1)
}

// helper is reachable from rankMain through the call graph, so its
// writes are checked too.
func helper(rs *runState, rank int) {
	rs.total += rank // want `write to shared runState field rs.total from per-rank code`
}

// locked writes after taking the mutex: allowed.
func locked(rs *runState) {
	rs.mu.Lock()
	rs.total++
	rs.mu.Unlock()
}

// justified carries the suppression comment: no diagnostic.
func justified(rs *runState) {
	//dinfomap:rankshare-ok monotone flag: every rank stores the same value
	rs.total = 1
}

// badIndex writes a slot picked by an arbitrary expression, not the
// rank id: flagged.
func badIndex(rs *runState, i int) {
	rs.perRank[i] = 9 // want `write to shared runState element rs\.perRank\[\.\.\.\] from per-rank code`
}

// setup is not reachable from any per-rank entry point (it runs before
// the ranks start), so its writes are not checked.
func setup(rs *runState, p int) {
	rs.perRank = make([]int, p)
	rs.total = 0
}

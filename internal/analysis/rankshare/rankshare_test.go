package rankshare_test

import (
	"testing"

	"dinfomap/internal/analysis/analysistest"
	"dinfomap/internal/analysis/rankshare"
)

func TestRankShare(t *testing.T) {
	analysistest.Run(t, "testdata", rankshare.Analyzer, "rankstate")
}

// TestRankShareAlias locks in the v2 alias semantics: writes through
// field pointers, slice headers, local copies, helper returns, and
// closure captures are flagged (the v1 lexical check missed all but the
// pointer copy), fresh local copies are not (v1 false-positived), and
// mutex protection is a must-held proof rather than an after-Lock scan.
func TestRankShareAlias(t *testing.T) {
	analysistest.Run(t, "testdata", rankshare.Analyzer, "rankalias")
}

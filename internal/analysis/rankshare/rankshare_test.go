package rankshare_test

import (
	"testing"

	"dinfomap/internal/analysis/analysistest"
	"dinfomap/internal/analysis/rankshare"
)

func TestRankShare(t *testing.T) {
	analysistest.Run(t, "testdata", rankshare.Analyzer, "rankstate")
}

package bufalias_test

import (
	"testing"

	"dinfomap/internal/analysis/analysistest"
	"dinfomap/internal/analysis/bufalias"
)

func TestBufAlias(t *testing.T) {
	analysistest.Run(t, "testdata", bufalias.Analyzer, "pooluse")
}

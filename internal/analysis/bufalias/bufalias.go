// Package bufalias enforces the pooled-buffer lifetime contract of
// internal/mpi (pool.go): the results of Comm.Alltoallv,
// Comm.AllgatherBytes, and Comm.AllreduceSumF64s — and the encoder
// slabs handed out by SendBuffers.For / SendBuffers.Bufs — are slices
// into per-communicator pools that every subsequent collective (or
// SendBuffers.Reset) overwrites. Holding such a value across the next
// collective silently reads (or corrupts) recycled memory; the
// in-process rank simulation never crashes the way a real MPI job
// would, so the static check is the guardrail.
//
// The analyzer runs a forward may-stale dataflow on the SSA-lite CFG of
// each function (internal/analysis/flow): a variable becomes "pooled"
// when it is assigned a producer call's result or an alias of one
// (projection, slice/index, range binding, append to it, or a call
// taking it, like mpi.NewDecoder(b)); every invalidating call marks the
// pooled variables of its domain stale; any later read of a stale
// variable is reported. A pooled value that escapes the call's extent —
// returned, stored through a parameter/receiver/package variable, or
// captured by a function literal — is reported as an escape, since its
// liveness can no longer be bounded by this function's collectives.
//
// Domains: Comm results are invalidated by any Comm collective
// (Alltoallv, AllgatherBytes, AllreduceSumF64s, BcastBytes,
// AllreduceF64, AllreduceI64, AllreduceMinLoc, Barrier); SendBuffers
// slabs are invalidated by SendBuffers.Reset. Method matching is by
// receiver type name (Comm, SendBuffers), so testdata can stub the mpi
// surface; package mpi itself is exempt — it implements the pool.
//
// Known limits: staleness does not propagate through method receivers
// (d.Reset(b) does not make d pooled — the decode-before-next-collective
// idiom relies on this), nor through heap stores to non-local state.
//
// False positives carry a justification:
//
//	//dinfomap:bufalias-ok <why this value cannot be overwritten yet>
package bufalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"dinfomap/internal/analysis"
	"dinfomap/internal/analysis/flow"
)

// Analyzer is the bufalias check.
var Analyzer = &analysis.Analyzer{
	Name:        "bufalias",
	Doc:         "flags pooled collective/send-buffer results used after the pool recycles them",
	SuppressKey: "bufalias-ok",
	Run:         run,
}

// Pool domains: which invalidators recycle which producers' results.
const (
	domComm = iota
	domSend
)

var producers = map[string]map[string]int{
	"Comm": {
		"Alltoallv":        domComm,
		"AllgatherBytes":   domComm,
		"AllreduceSumF64s": domComm,
	},
	"SendBuffers": {
		"Bufs": domSend,
		"For":  domSend,
	},
}

var invalidators = map[string]map[string]int{
	"Comm": {
		"Alltoallv":        domComm,
		"AllgatherBytes":   domComm,
		"AllreduceSumF64s": domComm,
		"BcastBytes":       domComm,
		"AllreduceF64":     domComm,
		"AllreduceI64":     domComm,
		"AllreduceMinLoc":  domComm,
		"Barrier":          domComm,
	},
	"SendBuffers": {
		"Reset": domSend,
	},
}

// varState tracks one pooled variable.
type varState struct {
	domain   int
	prod     string    // producer method name, for messages
	prodPos  token.Pos // producing call site
	stale    bool      // an invalidator ran since production
	cause    string    // invalidating method name
	causePos token.Pos
}

// poolState is the dataflow state: the pooled variables in flight.
type poolState map[*types.Var]varState

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "mpi" {
		return nil // the pool's own implementation
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// funcCheck carries one function's analysis.
type funcCheck struct {
	pass  *analysis.Pass
	outer map[*types.Var]bool // receiver/params: stores through them escape
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	fc := &funcCheck{pass: pass, outer: map[*types.Var]bool{}}
	if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			if r := sig.Recv(); r != nil {
				fc.outer[r] = true
			}
			for i := 0; i < sig.Params().Len(); i++ {
				fc.outer[sig.Params().At(i)] = true
			}
		}
	}
	cfg := flow.New(fd.Body)
	in := flow.RunForward(cfg, flow.ForwardProblem[poolState]{
		Entry: func() poolState { return poolState{} },
		Top:   func() poolState { return poolState{} },
		Join:  joinPool,
		Transfer: func(b *flow.Block, s poolState) poolState {
			out := clonePool(s)
			for _, n := range b.Nodes {
				fc.applyNode(out, n, false)
			}
			return out
		},
		Equal: equalPool,
	})
	// Reporting pass: re-simulate each block from its solved entry
	// state, this time emitting diagnostics.
	for _, b := range cfg.Blocks {
		s := clonePool(in[b.Index])
		for _, n := range b.Nodes {
			fc.applyNode(s, n, true)
		}
	}
}

func clonePool(s poolState) poolState {
	out := make(poolState, len(s))
	for v, st := range s {
		out[v] = st
	}
	return out
}

func joinPool(a, b poolState) poolState {
	out := clonePool(a)
	for v, sb := range b {
		sa, ok := out[v]
		if !ok {
			out[v] = sb
			continue
		}
		m := sa
		if sb.prodPos < m.prodPos {
			m.prod, m.prodPos = sb.prod, sb.prodPos
		}
		if sb.stale && (!m.stale || sb.causePos < m.causePos) {
			m.stale, m.cause, m.causePos = true, sb.cause, sb.causePos
		}
		out[v] = m
	}
	return out
}

func equalPool(a, b poolState) bool {
	if len(a) != len(b) {
		return false
	}
	for v, sa := range a {
		if sb, ok := b[v]; !ok || sa != sb {
			return false
		}
	}
	return true
}

// applyNode folds one block node into the state; when report is true it
// also emits diagnostics for stale uses and escapes. Evaluation order
// within a node: reads happen first, then invalidations take effect,
// then new definitions.
func (fc *funcCheck) applyNode(s poolState, n ast.Node, report bool) {
	switch st := n.(type) {
	case *ast.RangeStmt:
		// Binding only: the operand was evaluated in the predecessor
		// block and the body has its own blocks.
		src, ok := fc.pooledValue(s, st.X)
		if ok {
			if id, ok := st.Value.(*ast.Ident); ok {
				if v := fc.varOf(id); v != nil {
					s[v] = src
				}
			}
		}
		return
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/spawned calls run at an unknown point; neither their
		// invalidations nor their uses are attributable here.
		return
	case *ast.AssignStmt:
		if report {
			fc.checkUses(s, n, redefinedIdents(st))
			fc.checkEscapes(s, st)
		}
		fc.applyInvalidations(s, n)
		fc.applyDefs(s, st)
		return
	case *ast.ReturnStmt:
		if report {
			fc.checkUses(s, n, nil)
			for _, res := range st.Results {
				if src, ok := fc.pooledValue(s, res); ok && !src.stale {
					fc.pass.Reportf(res.Pos(),
						"pooled %s result escapes via return; it is valid only until the next collective — "+
							"copy it or justify with //dinfomap:bufalias-ok", src.prod)
				}
			}
		}
		fc.applyInvalidations(s, n)
		return
	case *ast.DeclStmt:
		if report {
			fc.checkUses(s, n, nil)
		}
		fc.applyInvalidations(s, n)
		if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					v := fc.varOf(name)
					if v == nil {
						continue
					}
					if src, ok := fc.pooledValue(s, vs.Values[i]); ok {
						s[v] = src
					} else {
						delete(s, v)
					}
				}
			}
		}
	default:
		if report {
			fc.checkUses(s, n, nil)
		}
		fc.applyInvalidations(s, n)
	}
}

// redefinedIdents lists the bare-identifier targets of an assignment:
// those are definitions, not reads.
func redefinedIdents(st *ast.AssignStmt) map[*ast.Ident]bool {
	skip := map[*ast.Ident]bool{}
	for _, lhs := range st.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			skip[id] = true
		}
	}
	return skip
}

// checkUses reports reads of stale pooled variables anywhere in the
// node (function literals report as captures instead, see checkUses'
// FuncLit case).
func (fc *funcCheck) checkUses(s poolState, n ast.Node, skip map[*ast.Ident]bool) {
	ast.Inspect(n, func(sub ast.Node) bool {
		if lit, ok := sub.(*ast.FuncLit); ok {
			fc.checkCapture(s, lit)
			return false
		}
		id, ok := sub.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		v := fc.varOf(id)
		if v == nil {
			return true
		}
		if st, ok := s[v]; ok && st.stale {
			fc.pass.Reportf(id.Pos(),
				"use of pooled %s result after %s recycled the buffer; "+
					"the pool reuses it on every collective — copy the data before the next one "+
					"or justify with //dinfomap:bufalias-ok", st.prod, st.cause)
			// Report each variable once: drop it from the state.
			delete(s, v)
		}
		return true
	})
}

// checkCapture reports pooled variables captured by a function literal:
// the closure may run after any number of collectives.
func (fc *funcCheck) checkCapture(s poolState, lit *ast.FuncLit) {
	reported := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(sub ast.Node) bool {
		id, ok := sub.(*ast.Ident)
		if !ok {
			return true
		}
		v := fc.varOf(id)
		if v == nil || reported[v] {
			return true
		}
		if st, ok := s[v]; ok {
			reported[v] = true
			fc.pass.Reportf(id.Pos(),
				"pooled %s result captured by function literal; it is valid only until the next collective — "+
					"copy it or justify with //dinfomap:bufalias-ok", st.prod)
		}
		return true
	})
}

// checkEscapes reports pooled values stored to locations that outlive
// the call: through a parameter, receiver, or package-level variable.
// Stores into local aggregates instead propagate the pooled state to
// the local.
func (fc *funcCheck) checkEscapes(s poolState, st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			continue // plain rebinding, handled by applyDefs
		}
		if len(st.Rhs) != len(st.Lhs) {
			continue
		}
		src, ok := fc.pooledValue(s, st.Rhs[i])
		if !ok || src.stale {
			continue
		}
		base := flow.BaseVar(fc.pass.TypesInfo, lhs)
		if base == nil {
			continue
		}
		if fc.outer[base] || flow.IsPackageLevel(base) {
			fc.pass.Reportf(lhs.Pos(),
				"pooled %s result stored to %s, which outlives this call; it is valid only until the next "+
					"collective — copy it or justify with //dinfomap:bufalias-ok", src.prod, base.Name())
		}
	}
}

// applyInvalidations marks pooled variables stale for every
// invalidating call in the node (function literal interiors excluded).
func (fc *funcCheck) applyInvalidations(s poolState, n ast.Node) {
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method := fc.methodOn(call)
		dom, ok := invalidators[recv][method]
		if !ok {
			return true
		}
		for v, st := range s {
			if st.domain == dom && !st.stale {
				st.stale = true
				st.cause = method
				st.causePos = call.Pos()
				s[v] = st
			}
		}
		return true
	})
}

// applyDefs rebinds assigned variables: a producer call's result (or an
// alias of a pooled value) makes the variable pooled; anything else
// clears it. Stores into local aggregates weakly taint the aggregate.
func (fc *funcCheck) applyDefs(s poolState, st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			v := fc.varOf(id)
			if v == nil {
				continue
			}
			if rhs == nil {
				// Multi-value assignment from a call: not a producer.
				delete(s, v)
				continue
			}
			if src, ok := fc.pooledValue(s, rhs); ok {
				s[v] = src
			} else {
				delete(s, v)
			}
			continue
		}
		// Store through a projection: if the base is local, the
		// aggregate now may hold the pooled value.
		if rhs == nil {
			continue
		}
		if src, ok := fc.pooledValue(s, rhs); ok && !src.stale {
			base := flow.BaseVar(fc.pass.TypesInfo, lhs)
			if base != nil && !fc.outer[base] && !flow.IsPackageLevel(base) {
				if _, exists := s[base]; !exists {
					s[base] = src
				}
			}
		}
	}
}

// pooledValue reports whether evaluating e yields a pooled value: a
// producer call, or an alias of a pooled variable (pooledSource).
func (fc *funcCheck) pooledValue(s poolState, e ast.Expr) (varState, bool) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		recv, method := fc.methodOn(call)
		if dom, ok := producers[recv][method]; ok {
			return varState{domain: dom, prod: method, prodPos: call.Pos()}, true
		}
	}
	return fc.pooledSource(s, e)
}

// pooledSource resolves e to the state of a pooled variable it aliases:
// projections, indexing, slicing, dereference, append to a pooled
// slice, and non-basic-typed calls taking a pooled argument (a decoder
// wrapping a pooled buffer stays a view into it).
func (fc *funcCheck) pooledSource(s poolState, e ast.Expr) (varState, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := fc.varOf(x)
		if v == nil {
			return varState{}, false
		}
		st, ok := s[v]
		return st, ok
	case *ast.IndexExpr:
		return fc.pooledSource(s, x.X)
	case *ast.SliceExpr:
		return fc.pooledSource(s, x.X)
	case *ast.SelectorExpr:
		return fc.pooledSource(s, x.X)
	case *ast.StarExpr:
		return fc.pooledSource(s, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return fc.pooledSource(s, x.X)
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			// append may keep the first argument's backing array; the
			// copied-in elements do not alias their sources.
			return fc.pooledSource(s, x.Args[0])
		}
		// A call result of non-basic type with a pooled argument may be
		// a view into the buffer (e.g. mpi.NewDecoder(b)).
		if t := fc.pass.TypesInfo.TypeOf(x); t != nil {
			if _, basic := t.Underlying().(*types.Basic); basic {
				return varState{}, false
			}
		}
		for _, arg := range x.Args {
			if src, ok := fc.pooledSource(s, arg); ok {
				return src, true
			}
		}
	}
	return varState{}, false
}

// methodOn resolves a call to (receiver type name, method name) when it
// is a method call on a named receiver; ("", "") otherwise.
func (fc *funcCheck) methodOn(call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := fc.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	return named.Obj().Name(), fn.Name()
}

func (fc *funcCheck) varOf(id *ast.Ident) *types.Var {
	v, _ := fc.pass.TypesInfo.ObjectOf(id).(*types.Var)
	return v
}

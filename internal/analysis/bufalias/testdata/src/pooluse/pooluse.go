// Testdata for the bufalias analyzer. Comm and SendBuffers stub the
// internal/mpi surface by name (the testdata loader is stdlib-only):
// the analyzer matches producer/invalidator methods by receiver type
// name, exactly as it does against the real package.
package pooluse

type Comm struct{}

func (*Comm) AllgatherBytes(data []byte) [][]byte     { return nil }
func (*Comm) Alltoallv(bufs [][]byte) [][]byte        { return nil }
func (*Comm) AllreduceSumF64s(xs []float64) []float64 { return nil }
func (*Comm) BcastBytes(root int, data []byte) []byte { return nil }
func (*Comm) Barrier()                                {}

type SendBuffers struct{}

func (*SendBuffers) Reset()               {}
func (*SendBuffers) Bufs() [][]byte       { return nil }
func (*SendBuffers) For(dst int) *Encoder { return &Encoder{} }

type Encoder struct{}

func (*Encoder) PutInt(v int) {}

type holder struct{ buf [][]byte }

func consume(b []byte) int { return len(b) }

// retained is the seeded violation from the pool contract's doc: an
// Allgather result held across the next collective reads recycled
// memory.
func retained(c *Comm, payload []byte) int {
	parts := c.AllgatherBytes(payload)
	c.Barrier()
	return consume(parts[0]) // want `use of pooled AllgatherBytes result after Barrier recycled the buffer`
}

// decodeFirst is the sanctioned idiom: consume the result before the
// next collective, then let the reassignment take the fresh one.
func decodeFirst(c *Comm, payload []byte) int {
	parts := c.AllgatherBytes(payload)
	n := consume(parts[0])
	parts = c.AllgatherBytes(payload)
	return n + consume(parts[0])
}

// aliased tracks staleness through element and slice aliases.
func aliased(c *Comm, payload []byte) int {
	parts := c.AllgatherBytes(payload)
	first := parts[0]
	c.BcastBytes(0, payload)
	return consume(first) // want `use of pooled AllgatherBytes result after BcastBytes recycled the buffer`
}

// ranged: the per-iteration binding aliases the pooled result, but the
// loop body consumes it before any further collective — allowed.
func ranged(c *Comm, bufs [][]byte) int {
	n := 0
	for _, b := range c.Alltoallv(bufs) {
		n += consume(b)
	}
	return n
}

// rangedStale: a collective inside the loop body invalidates the
// binding of the next iteration's read.
func rangedStale(c *Comm, bufs [][]byte, payload []byte) int {
	n := 0
	for _, b := range c.Alltoallv(bufs) {
		c.BcastBytes(0, payload)
		n += consume(b) // want `use of pooled Alltoallv result after BcastBytes recycled the buffer`
	}
	return n
}

// sendSlab: encoder slabs die on Reset, not on collectives.
func sendSlab(sb *SendBuffers, c *Comm, bufs [][]byte) {
	e := sb.For(0)
	c.Barrier() // collectives do not recycle send buffers
	e.PutInt(1)
	sb.Reset()
	e.PutInt(2) // want `use of pooled For result after Reset recycled the buffer`
}

// escapes: pooled values stored past the call's extent are flagged even
// without a later collective in this function.
func escapes(c *Comm, payload []byte, h *holder) [][]byte {
	h.buf = c.AllgatherBytes(payload) // want `pooled AllgatherBytes result stored to h, which outlives this call`
	parts := c.AllgatherBytes(payload)
	return parts // want `pooled AllgatherBytes result escapes via return`
}

// captured: a closure over a pooled value may run after any number of
// collectives.
func captured(c *Comm, payload []byte) func() int {
	parts := c.AllgatherBytes(payload)
	return func() int { return consume(parts[0]) } // want `pooled AllgatherBytes result captured by function literal`
}

// copied: copying the bytes out severs the alias — no finding.
func copied(c *Comm, payload []byte) []byte {
	parts := c.AllgatherBytes(payload)
	own := make([]byte, len(parts[0]))
	copy(own, parts[0])
	c.Barrier()
	return own
}

// justified carries the suppression comment: no diagnostic.
func justified(c *Comm, payload []byte) int {
	parts := c.AllgatherBytes(payload)
	c.Barrier()
	//dinfomap:bufalias-ok single-rank world: the barrier is a no-op and nothing recycles the pool
	return consume(parts[0])
}

package seededrand_test

import (
	"testing"

	"dinfomap/internal/analysis/analysistest"
	"dinfomap/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata", seededrand.Analyzer, "randuse")
}

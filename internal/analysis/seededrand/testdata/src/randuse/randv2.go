package randuse

import (
	randv2 "math/rand/v2"
)

func sampleV2() uint64 {
	return randv2.Uint64() // want `randv2.Uint64 uses the global unseeded source`
}

func seededV2(seed uint64) uint64 {
	r := randv2.New(randv2.NewPCG(seed, seed))
	return r.Uint64()
}

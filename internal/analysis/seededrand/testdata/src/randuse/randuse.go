// Testdata for the seededrand analyzer.
package randuse

import (
	"math/rand"
)

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `rand.Shuffle uses the global unseeded source`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func sample() float64 {
	return rand.Float64() // want `rand.Float64 uses the global unseeded source`
}

func pick(n int) int {
	return rand.Intn(n) // want `rand.Intn uses the global unseeded source`
}

// Constructors build seeded generators: allowed, and so is everything
// called on the resulting *rand.Rand value.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// A justified use is suppressed.
func jitter() float64 {
	//dinfomap:rand-ok demo-only jitter; reproducibility not required here
	return rand.Float64()
}

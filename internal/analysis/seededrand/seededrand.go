// Package seededrand flags uses of math/rand's (and math/rand/v2's)
// global, implicitly-seeded functions outside test files. Reproducible
// trials require every random decision — vertex visit order, move
// damping, generator sampling — to flow through an explicitly seeded
// generator threaded from the run Config (in this codebase,
// *gen.RNG or a *rand.Rand built with rand.New(rand.NewSource(seed))).
// The global source cannot be seeded per-run, is shared across
// simulated ranks, and serializes them on an internal lock.
//
// Constructors (rand.New, rand.NewSource, rand.NewPCG, ...) are
// allowed: they are how seeded generators are built. Rare legitimate
// global uses carry a justification:
//
//	//dinfomap:rand-ok <why unseeded randomness is fine here>
package seededrand

import (
	"go/ast"
	"go/types"

	"dinfomap/internal/analysis"
)

// Analyzer is the seededrand check.
var Analyzer = &analysis.Analyzer{
	Name:        "seededrand",
	Doc:         "flags math/rand global functions outside tests; thread a seeded *rand.Rand instead",
	SuppressKey: "rand-ok",
	Run:         run,
}

// allowed are the package-level constructors of seeded generators.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	pass.WalkFiles(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkgName.Imported().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || allowed[fn.Name()] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s uses the global unseeded source; thread a seeded *rand.Rand (or gen.RNG) from the run config",
			id.Name, sel.Sel.Name)
		return true
	})
	return nil
}

package flow

// ForwardProblem describes an iterative forward dataflow analysis over
// a Func. The lattice is supplied functionally:
//
//   - Entry produces the state at the function entry.
//   - Top produces the identity element of Join, used as the optimistic
//     initial state of every block (for a may-analysis this is the
//     empty set; for a must-analysis the "everything holds" element).
//   - Join merges the states flowing in from two predecessors.
//   - Transfer applies one block's effect to its entry state and
//     returns the exit state. It must not mutate its argument.
//   - Equal decides convergence.
type ForwardProblem[S any] struct {
	Entry    func() S
	Top      func() S
	Join     func(S, S) S
	Transfer func(*Block, S) S
	Equal    func(S, S) bool
}

// RunForward iterates p to a fixpoint over f and returns the state at
// each block's entry, indexed by Block.Index.
func RunForward[S any](f *Func, p ForwardProblem[S]) []S {
	n := len(f.Blocks)
	in := make([]S, n)
	out := make([]S, n)
	for i := range out {
		in[i] = p.Top()
		out[i] = p.Top()
	}
	ei := f.Entry.Index
	in[ei] = p.Entry()
	out[ei] = p.Transfer(f.Entry, in[ei])
	for changed := true; changed; {
		changed = false
		for _, b := range f.rpo {
			if b == f.Entry {
				continue
			}
			s := p.Top()
			for _, pr := range b.Preds {
				s = p.Join(s, out[pr.Index])
			}
			in[b.Index] = s
			ns := p.Transfer(b, s)
			if !p.Equal(ns, out[b.Index]) {
				out[b.Index] = ns
				changed = true
			}
		}
	}
	return in
}

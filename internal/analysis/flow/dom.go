package flow

// Dominance via the iterative Cooper–Harvey–Kennedy algorithm over
// reverse postorder. The tree is built lazily on first query and cached
// on the Func.

// buildDom computes immediate dominators for all reachable blocks.
func (f *Func) buildDom() {
	if f.domBuilt {
		return
	}
	f.domBuilt = true
	entry := f.Entry
	entry.idom = entry // sentinel so intersect terminates
	for changed := true; changed; {
		changed = false
		for _, b := range f.rpo {
			if b == entry {
				continue
			}
			var idom *Block
			for _, p := range b.Preds {
				if p.idom == nil {
					continue // back-edge pred not yet processed
				}
				if idom == nil {
					idom = p
				} else {
					idom = intersect(idom, p)
				}
			}
			if idom != nil && b.idom != idom {
				b.idom = idom
				changed = true
			}
		}
	}
	entry.idom = nil
	for _, b := range f.rpo {
		d := 0
		for x := b; x.idom != nil; x = x.idom {
			d++
		}
		b.domDepth = d
	}
}

// intersect walks both fingers up the (partial) dominator tree to their
// nearest common ancestor; RPO indices increase away from the entry.
func intersect(a, b *Block) *Block {
	for a != b {
		for a.Index > b.Index {
			a = a.idom
		}
		for b.Index > a.Index {
			b = b.idom
		}
	}
	return a
}

// Idom returns b's immediate dominator, or nil for the entry block (and
// for a synthetic exit no return reaches).
func (f *Func) Idom(b *Block) *Block {
	f.buildDom()
	return b.idom
}

// Dominates reports whether a dominates b: every path from the entry to
// b passes through a. It is reflexive.
func (f *Func) Dominates(a, b *Block) bool {
	f.buildDom()
	for b != nil && b.domDepth > a.domDepth {
		b = b.idom
	}
	return a == b
}

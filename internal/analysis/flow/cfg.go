// Package flow is the SSA-lite dataflow layer under dinfomap's
// analyzer suite: a per-function control-flow graph over the plain AST,
// with dominance information, reaching-definition def-use chains, a
// generic forward-dataflow fixpoint engine, and alias/escape helpers
// for pointer-typed locals, parameters, returns, and struct-field
// projections.
//
// Like the driver it serves (see package analysis), it is built on the
// standard library only — no golang.org/x/tools, no real SSA
// construction. Statements are not rewritten into instructions; instead
// each basic block lists the original ast.Node values in execution
// order, and analyses interpret those nodes directly. That keeps
// positions exact for diagnostics and keeps the layer small, at the
// cost of some precision a full SSA form would add (no phi nodes; value
// numbering is by variable, not by definition).
//
// Known, deliberate approximations:
//
//   - Function literals are opaque: a FuncLit's body is not part of the
//     enclosing function's CFG. Clients that need to look inside a
//     closure build a separate Func for it (rankshare does).
//   - defer and go statements appear as ordinary nodes at their textual
//     position; clients decide their timing semantics (the rankshare
//     lock analysis, for example, ignores deferred Unlock calls because
//     they release only at function exit).
//   - panic does not terminate a block: paths through a panic call are
//     kept, which only ever makes must-analyses more conservative.
package flow

import (
	"go/ast"
	"go/token"
)

// Func is the SSA-lite IR of one function body: a CFG of basic blocks,
// each holding the function's statements and conditions in execution
// order. Build it with New; dominance and def-use are computed on
// demand (Dominators, Chains).
type Func struct {
	// Body is the function body the CFG was built from.
	Body *ast.BlockStmt
	// Blocks lists the reachable basic blocks; Blocks[0] is Entry.
	Blocks []*Block
	// Entry is the function entry block (parameters are considered
	// defined here).
	Entry *Block
	// Exit is the synthetic exit block every return (and the final
	// fallthrough) leads to. It holds no nodes.
	Exit *Block

	rpo      []*Block // reverse postorder, entry first
	domBuilt bool
}

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	// Index is the block's position in Func.Blocks (entry is 0).
	Index int
	// Nodes holds the block's statements and conditions in execution
	// order. Conditions of if/for and switch tags appear as bare
	// ast.Expr nodes; a range statement appears as the *ast.RangeStmt
	// itself at the loop head (standing for the per-iteration
	// key/value assignment); everything else is the original ast.Stmt.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block

	idom     *Block
	domDepth int
}

// builder carries CFG construction state.
type builder struct {
	f *Func
	// labels maps a label name to the block the labeled statement
	// lands on (created on demand so forward gotos resolve).
	labels map[string]*Block
	// labelBreak / labelContinue map loop/switch labels to their
	// break and continue targets.
	labelBreak, labelContinue map[string]*Block
	// pendingLabel is the label of the LabeledStmt currently being
	// entered, consumed by the next loop/switch/select statement.
	pendingLabel string
}

// ctx carries the innermost break/continue targets during the walk.
type ctx struct {
	brk, cont *Block
}

// New builds the CFG of body. It never returns nil, even for an empty
// body (the entry block then falls through to exit directly).
func New(body *ast.BlockStmt) *Func {
	f := &Func{Body: body}
	b := &builder{
		f:             f,
		labels:        map[string]*Block{},
		labelBreak:    map[string]*Block{},
		labelContinue: map[string]*Block{},
	}
	f.Entry = newBlock()
	f.Exit = newBlock()
	var last *Block
	if body != nil {
		last = b.stmts(f.Entry, body.List, ctx{})
	} else {
		last = f.Entry
	}
	edge(last, f.Exit)
	f.finish()
	return f
}

func newBlock() *Block { return &Block{Index: -1} }

// edge adds cur -> next unless either end is missing (unreachable
// fallthrough, or a break/continue with no target in malformed code).
func edge(cur, next *Block) {
	if cur == nil || next == nil {
		return
	}
	cur.Succs = append(cur.Succs, next)
	next.Preds = append(next.Preds, cur)
}

// stmts threads the statement list through the CFG starting at cur and
// returns the block control falls out of (nil if the tail is
// unreachable, e.g. after return/break).
func (b *builder) stmts(cur *Block, list []ast.Stmt, c ctx) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s, c)
	}
	return cur
}

// put appends node to cur, allocating a fresh (unreachable, later
// pruned) block when control cannot reach it.
func (b *builder) put(cur *Block, node ast.Node) *Block {
	if cur == nil {
		cur = newBlock()
	}
	cur.Nodes = append(cur.Nodes, node)
	return cur
}

// takeLabel consumes the pending label and registers the given break
// and continue targets for it.
func (b *builder) takeLabel(brk, cont *Block) {
	if b.pendingLabel == "" {
		return
	}
	b.labelBreak[b.pendingLabel] = brk
	if cont != nil {
		b.labelContinue[b.pendingLabel] = cont
	}
	b.pendingLabel = ""
}

func (b *builder) stmt(cur *Block, s ast.Stmt, c ctx) *Block {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.pendingLabel = ""
		return b.stmts(cur, st.List, c)

	case *ast.IfStmt:
		b.pendingLabel = ""
		if st.Init != nil {
			cur = b.put(cur, st.Init)
		}
		cur = b.put(cur, st.Cond)
		then := newBlock()
		join := newBlock()
		edge(cur, then)
		thenEnd := b.stmts(then, st.Body.List, c)
		edge(thenEnd, join)
		if st.Else != nil {
			els := newBlock()
			edge(cur, els)
			elsEnd := b.stmt(els, st.Else, c)
			edge(elsEnd, join)
		} else {
			edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if st.Init != nil {
			cur = b.put(cur, st.Init)
		}
		head := newBlock()
		body := newBlock()
		after := newBlock()
		post := head
		if st.Post != nil {
			post = newBlock()
		}
		b.takeLabel(after, post)
		edge(cur, head)
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
			edge(head, body)
			edge(head, after)
		} else {
			edge(head, body)
		}
		bodyEnd := b.stmts(body, st.Body.List, ctx{brk: after, cont: post})
		edge(bodyEnd, post)
		if st.Post != nil {
			post.Nodes = append(post.Nodes, st.Post)
			edge(post, head)
		}
		return after

	case *ast.RangeStmt:
		// The range operand is evaluated once, before the loop; the
		// head re-binds key/value each iteration (the RangeStmt node
		// itself stands for that assignment).
		cur = b.put(cur, st.X)
		head := newBlock()
		body := newBlock()
		after := newBlock()
		b.takeLabel(after, head)
		edge(cur, head)
		head.Nodes = append(head.Nodes, st)
		edge(head, body)
		edge(head, after)
		bodyEnd := b.stmts(body, st.Body.List, ctx{brk: after, cont: head})
		edge(bodyEnd, head)
		return after

	case *ast.SwitchStmt:
		if st.Init != nil {
			cur = b.put(cur, st.Init)
		}
		if st.Tag != nil {
			cur = b.put(cur, st.Tag)
		}
		return b.switchClauses(cur, st.Body.List, c)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur = b.put(cur, st.Init)
		}
		cur = b.put(cur, st.Assign)
		return b.switchClauses(cur, st.Body.List, c)

	case *ast.SelectStmt:
		join := newBlock()
		b.takeLabel(join, nil)
		for _, cl := range st.Body.List {
			comm := cl.(*ast.CommClause)
			blk := newBlock()
			edge(cur, blk)
			if comm.Comm != nil {
				blk.Nodes = append(blk.Nodes, comm.Comm)
			}
			end := b.stmts(blk, comm.Body, ctx{brk: join, cont: c.cont})
			edge(end, join)
		}
		if len(st.Body.List) == 0 {
			edge(cur, join)
		}
		return join

	case *ast.LabeledStmt:
		// Land the label on a fresh block so (possibly forward) gotos
		// have a stable target, then record it as pending so the inner
		// loop/switch registers its break/continue targets under it.
		target := b.labelTarget(st.Label.Name)
		edge(cur, target)
		b.pendingLabel = st.Label.Name
		end := b.stmt(target, st.Stmt, c)
		b.pendingLabel = ""
		return end

	case *ast.BranchStmt:
		cur = b.put(cur, st)
		switch st.Tok {
		case token.BREAK:
			if st.Label != nil {
				edge(cur, b.labelBreak[st.Label.Name])
			} else {
				edge(cur, c.brk)
			}
		case token.CONTINUE:
			if st.Label != nil {
				edge(cur, b.labelContinue[st.Label.Name])
			} else {
				edge(cur, c.cont)
			}
		case token.GOTO:
			edge(cur, b.labelTarget(st.Label.Name))
		case token.FALLTHROUGH:
			// Handled structurally in switchClauses.
			return cur
		}
		return nil // statements after an unconditional branch are dead

	case *ast.ReturnStmt:
		cur = b.put(cur, st)
		edge(cur, b.f.Exit)
		return nil

	case *ast.EmptyStmt:
		return cur

	default:
		// DeclStmt, AssignStmt, IncDecStmt, ExprStmt, SendStmt,
		// DeferStmt, GoStmt: straight-line nodes.
		return b.put(cur, s)
	}
}

// switchClauses builds the clause blocks of a (type) switch. Each
// clause gets its own block; fallthrough chains a clause body into the
// next clause's body.
func (b *builder) switchClauses(cur *Block, clauses []ast.Stmt, c ctx) *Block {
	join := newBlock()
	b.takeLabel(join, nil)
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = newBlock()
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := bodies[i]
		edge(cur, blk)
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		end := b.stmts(blk, cc.Body, ctx{brk: join, cont: c.cont})
		if end != nil && i+1 < len(clauses) && endsInFallthrough(cc.Body) {
			edge(end, bodies[i+1])
		} else {
			edge(end, join)
		}
	}
	if !hasDefault || len(clauses) == 0 {
		edge(cur, join)
	}
	return join
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// labelTarget returns (creating on demand) the block a label lands on.
func (b *builder) labelTarget(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := newBlock()
	b.labels[name] = blk
	return blk
}

// finish prunes blocks unreachable from the entry, numbers the
// survivors in discovery order, and computes reverse postorder.
func (f *Func) finish() {
	// Reachability and postorder in one DFS.
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	if !seen[f.Exit] {
		// Keep the synthetic exit even when no return reaches it (an
		// infinite loop); it stays edge-less.
		seen[f.Exit] = true
		post = append([]*Block{f.Exit}, post...)
	}

	f.rpo = make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		f.rpo = append(f.rpo, post[i])
	}
	f.Blocks = f.Blocks[:0]
	for i, b := range f.rpo {
		b.Index = i
		// Drop edges from pruned (unreachable) predecessors.
		preds := b.Preds[:0]
		for _, p := range b.Preds {
			if seen[p] {
				preds = append(preds, p)
			}
		}
		b.Preds = preds
		f.Blocks = append(f.Blocks, b)
	}
}

// RPO returns the reachable blocks in reverse postorder (entry first).
func (f *Func) RPO() []*Block { return f.rpo }

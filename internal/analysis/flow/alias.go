package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Alias and escape helpers: the lattice here is the may-alias closure
// of a seed set over a function's definitions (MayAlias), plus the
// structural queries clients need to classify where a value flows
// (BaseVar, IsPackageLevel).

// BaseVar resolves the root variable of an lvalue or projection chain —
// selectors, indexing, slicing, dereference, address-of, parens — so
// `(&rs.stats[i]).n` resolves to rs. Qualified package identifiers
// (pkg.Var) resolve to the package-level variable. Returns nil when the
// chain does not bottom out in a variable (calls, literals, etc.).
func BaseVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					v, _ := info.ObjectOf(x.Sel).(*types.Var)
					return v
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// IsPackageLevel reports whether v is declared at package scope, i.e. a
// store through it outlives any function.
func IsPackageLevel(v *types.Var) bool {
	if v == nil {
		return false
	}
	s := v.Parent()
	return s != nil && s.Parent() == types.Universe
}

// TaintSpec configures MayAlias.
type TaintSpec struct {
	// Seeds reports variables tainted a priori (e.g. parameters of the
	// shared type).
	Seeds func(*types.Var) bool
	// Source, if non-nil, reports expressions that are tainted
	// regardless of definitions (e.g. any expression whose type is the
	// shared type).
	Source func(ast.Expr) bool
	// Via, if non-nil, decides whether definition d makes d.Var alias a
	// tainted value; tainted answers the question for sub-expressions.
	// The default accepts d when its RHS's base variable is tainted or
	// the RHS is a Source — so plain copies, projections (x := s.f,
	// p := &s.f, sl := s.buf[i:j]) and range bindings propagate, while
	// calls and composite literals do not.
	Via func(d *Def, tainted func(ast.Expr) bool) bool
}

// MayAlias computes the set of variables that may alias a tainted value
// anywhere in the function: the closure of Seeds over all definitions
// under Via. It is flow-insensitive (one tainting definition taints the
// variable everywhere), which is sound for may-alias use.
func (c *Chains) MayAlias(spec TaintSpec) map[*types.Var]bool {
	tainted := map[*types.Var]bool{}
	for v := range c.defsOf {
		if spec.Seeds != nil && spec.Seeds(v) {
			tainted[v] = true
		}
	}
	exprTainted := func(e ast.Expr) bool {
		if spec.Source != nil && spec.Source(e) {
			return true
		}
		v := BaseVar(c.Info, e)
		if v == nil {
			return false
		}
		// Consult Seeds directly as well, so variables without local
		// definitions (e.g. captured from an enclosing function) still
		// propagate taint.
		return tainted[v] || (spec.Seeds != nil && spec.Seeds(v))
	}
	via := spec.Via
	if via == nil {
		via = func(d *Def, t func(ast.Expr) bool) bool {
			return d.RHS != nil && t(d.RHS)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range c.defs {
			if tainted[d.Var] || d.Node == nil {
				continue
			}
			if via(d, exprTainted) {
				tainted[d.Var] = true
				changed = true
			}
		}
	}
	return tainted
}

package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"dinfomap/internal/analysis/flow"
)

// parse typechecks a single import-free file and returns its AST plus
// the filled-in type info.
func parse(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Error: func(err error) { t.Fatalf("typecheck: %v", err) }}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return file, info
}

// funcDecl finds the declaration of the named function.
func funcDecl(t *testing.T, file *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

// blockOf finds the block containing the call mark("label").
func blockOf(t *testing.T, f *flow.Func, label string) *flow.Block {
	t.Helper()
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "mark" {
				continue
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Value == `"`+label+`"` {
				return b
			}
		}
	}
	t.Fatalf("no block with mark(%q)", label)
	return nil
}

// callArg finds the sole argument of the first call to fn.
func callArg(t *testing.T, root ast.Node, fn string) ast.Expr {
	t.Helper()
	var arg ast.Expr
	ast.Inspect(root, func(n ast.Node) bool {
		if arg != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == fn {
			arg = call.Args[0]
			return false
		}
		return true
	})
	if arg == nil {
		t.Fatalf("no call to %s", fn)
	}
	return arg
}

// varNamed finds a defined variable by name.
func varNamed(t *testing.T, info *types.Info, name string) *types.Var {
	t.Helper()
	for _, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok && v != nil && v.Name() == name {
			return v
		}
	}
	t.Fatalf("no var %s", name)
	return nil
}

func TestDominanceDiamond(t *testing.T) {
	file, _ := parse(t, `package p
func mark(s string) {}
func f(c bool) {
	mark("entry")
	if c {
		mark("then")
	} else {
		mark("else")
	}
	mark("join")
}`)
	cfg := flow.New(funcDecl(t, file, "f").Body)
	entry := blockOf(t, cfg, "entry")
	then := blockOf(t, cfg, "then")
	els := blockOf(t, cfg, "else")
	join := blockOf(t, cfg, "join")

	if entry != cfg.Entry {
		t.Errorf("mark(entry) not in entry block")
	}
	for _, b := range []*flow.Block{then, els, join} {
		if !cfg.Dominates(entry, b) {
			t.Errorf("entry should dominate block %d", b.Index)
		}
	}
	if cfg.Dominates(then, join) || cfg.Dominates(els, join) {
		t.Errorf("branch arms must not dominate the join")
	}
	if !cfg.Dominates(join, join) {
		t.Errorf("dominance must be reflexive")
	}
	if cfg.Idom(join) != entry {
		t.Errorf("join's idom = %v, want entry", cfg.Idom(join))
	}
}

func TestDominanceLoop(t *testing.T) {
	file, _ := parse(t, `package p
func mark(s string) {}
func f(n int) {
	mark("pre")
	for i := 0; i < n; i++ {
		mark("body")
	}
	mark("after")
}`)
	cfg := flow.New(funcDecl(t, file, "f").Body)
	pre := blockOf(t, cfg, "pre")
	body := blockOf(t, cfg, "body")
	after := blockOf(t, cfg, "after")
	head := cfg.Idom(body) // loop head holds the condition

	if !cfg.Dominates(pre, body) || !cfg.Dominates(pre, after) {
		t.Errorf("preheader should dominate body and after")
	}
	if !cfg.Dominates(head, body) || !cfg.Dominates(head, after) {
		t.Errorf("loop head should dominate body and after")
	}
	if cfg.Dominates(body, after) {
		t.Errorf("loop body must not dominate the loop exit")
	}
	// The back edge must exist: body (via post) reaches head again.
	if len(head.Preds) < 2 {
		t.Errorf("loop head should have an entry edge and a back edge, got %d preds", len(head.Preds))
	}
}

func TestReachingDefsBranch(t *testing.T) {
	file, info := parse(t, `package p
func use(v0 int) {}
func f(c bool) {
	x := 1
	if c {
		x = 2
	}
	use(x)
}`)
	fd := funcDecl(t, file, "f")
	cfg := flow.New(fd.Body)
	ch := flow.BuildChains(cfg, info, nil)
	x := varNamed(t, info, "x")
	defs := ch.ReachingDefs(callArg(t, fd, "use"), x)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs of x at use, want 2 (init + branch)", len(defs))
	}
}

func TestReachingDefsKill(t *testing.T) {
	file, info := parse(t, `package p
func use(v0 int) {}
func f() {
	y := 1
	y = 2
	use(y)
}`)
	fd := funcDecl(t, file, "f")
	cfg := flow.New(fd.Body)
	ch := flow.BuildChains(cfg, info, nil)
	y := varNamed(t, info, "y")
	defs := ch.ReachingDefs(callArg(t, fd, "use"), y)
	if len(defs) != 1 {
		t.Fatalf("got %d reaching defs of y, want 1 (redefinition kills)", len(defs))
	}
	if lit, ok := defs[0].RHS.(*ast.BasicLit); !ok || lit.Value != "2" {
		t.Errorf("surviving def RHS = %v, want the literal 2", defs[0].RHS)
	}
}

func TestReachingDefsRange(t *testing.T) {
	file, info := parse(t, `package p
func use(v0 []byte) {}
func sink(v1 []byte) {}
func f(xs [][]byte) {
	var last []byte
	for _, b := range xs {
		use(b)
		last = b
	}
	sink(last)
}`)
	fd := funcDecl(t, file, "f")
	cfg := flow.New(fd.Body)
	ch := flow.BuildChains(cfg, info, nil)

	b := varNamed(t, info, "b")
	defs := ch.ReachingDefs(callArg(t, fd, "use"), b)
	if len(defs) != 1 {
		t.Fatalf("got %d reaching defs of range value b, want 1", len(defs))
	}
	if _, ok := defs[0].Node.(*ast.RangeStmt); !ok {
		t.Errorf("range binding def node = %T, want *ast.RangeStmt", defs[0].Node)
	}
	if id, ok := defs[0].RHS.(*ast.Ident); !ok || id.Name != "xs" {
		t.Errorf("range binding RHS = %v, want the range operand xs", defs[0].RHS)
	}

	last := varNamed(t, info, "last")
	defs = ch.ReachingDefs(callArg(t, fd, "sink"), last)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs of last after loop, want 2 (decl + loop body)", len(defs))
	}
}

func TestReachingDefsFuncLitWeak(t *testing.T) {
	file, info := parse(t, `package p
func use(v0 int) {}
func f() {
	x := 1
	g := func() { x = 2 }
	g()
	use(x)
}`)
	fd := funcDecl(t, file, "f")
	cfg := flow.New(fd.Body)
	ch := flow.BuildChains(cfg, info, nil)
	x := varNamed(t, info, "x")
	defs := ch.ReachingDefs(callArg(t, fd, "use"), x)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs of closed-over x, want 2 (initial + weak)", len(defs))
	}
	weak := 0
	for _, d := range defs {
		if d.Weak {
			weak++
		}
	}
	if weak != 1 {
		t.Errorf("got %d weak defs, want exactly 1 (the closure assignment)", weak)
	}
}

func TestMayAlias(t *testing.T) {
	file, info := parse(t, `package p
type state struct {
	n   int
	buf []int
}
func newState() *state { return nil }
func f(rs *state, other []int) {
	s := rs
	p := &s.n
	sl := rs.buf[1:]
	q := other
	fresh := newState()
	_, _, _, _ = p, sl, q, fresh
}`)
	fd := funcDecl(t, file, "f")
	cfg := flow.New(fd.Body)
	rs := varNamed(t, info, "rs")
	ch := flow.BuildChains(cfg, info, []*types.Var{rs})
	tainted := ch.MayAlias(flow.TaintSpec{
		Seeds: func(v *types.Var) bool { return v == rs },
	})
	want := map[string]bool{"rs": true, "s": true, "p": true, "sl": true, "q": false, "fresh": false}
	for name, wantTaint := range want {
		v := varNamed(t, info, name)
		if tainted[v] != wantTaint {
			t.Errorf("tainted[%s] = %v, want %v", name, tainted[v], wantTaint)
		}
	}
}

// lockState is the must-held lattice for TestRunForwardMustLock.
type lockState struct {
	top  bool
	held bool
}

func lockTransfer(b *flow.Block, in lockState) lockState {
	s := in
	for _, n := range b.Nodes {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "lock":
				s = lockState{held: true}
			case "unlock":
				s = lockState{held: false}
			}
		}
	}
	return s
}

func TestRunForwardMustLock(t *testing.T) {
	file, _ := parse(t, `package p
func mark(s string) {}
func lock()         {}
func unlock()       {}
func f(c bool) {
	lock()
	if c {
		unlock()
		mark("gap")
		lock()
	}
	mark("both")
	if c {
		lock()
	}
	mark("onearm")
	unlock()
}`)
	cfg := flow.New(funcDecl(t, file, "f").Body)
	in := flow.RunForward(cfg, flow.ForwardProblem[lockState]{
		Entry: func() lockState { return lockState{held: false} },
		Top:   func() lockState { return lockState{top: true} },
		Join: func(a, b lockState) lockState {
			if a.top {
				return b
			}
			if b.top {
				return a
			}
			return lockState{held: a.held && b.held}
		},
		Transfer: lockTransfer,
		Equal:    func(a, b lockState) bool { return a == b },
	})

	// Within the then-arm after unlock(): the lock is not held...
	gap := blockOf(t, cfg, "gap")
	// mark("gap") follows unlock() inside the same block, so check the
	// simulated state right before it rather than the block-entry state.
	sGap := in[gap.Index]
	for _, n := range gap.Nodes {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
					break
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "unlock" {
					sGap = lockState{held: false}
				}
			}
		}
	}
	if sGap.held {
		t.Errorf("lock must not be held between unlock and re-lock")
	}

	// After the branch that unlocks and re-locks: held on both paths.
	both := blockOf(t, cfg, "both")
	if got := in[both.Index]; got.top || !got.held {
		t.Errorf("at mark(both): in = %+v, want held (both paths lock)", got)
	}

	// After a branch that locks on only one arm the must-join loses it —
	// here it stays held only because it was already held before the if;
	// exercise the real one-arm case with a fresh function.
	file2, _ := parse(t, `package p
func mark(s string) {}
func lock()         {}
func unlock()       {}
func g(c bool) {
	if c {
		lock()
	}
	mark("after")
}`)
	cfg2 := flow.New(funcDecl(t, file2, "g").Body)
	in2 := flow.RunForward(cfg2, flow.ForwardProblem[lockState]{
		Entry: func() lockState { return lockState{held: false} },
		Top:   func() lockState { return lockState{top: true} },
		Join: func(a, b lockState) lockState {
			if a.top {
				return b
			}
			if b.top {
				return a
			}
			return lockState{held: a.held && b.held}
		},
		Transfer: lockTransfer,
		Equal:    func(a, b lockState) bool { return a == b },
	})
	after := blockOf(t, cfg2, "after")
	if got := in2[after.Index]; got.held {
		t.Errorf("at mark(after): lock held on one arm only, must-join should drop it")
	}
}

package mpi

import (
	"testing"
	"time"
)

func TestClassifyRecvWait(t *testing.T) {
	cases := []struct {
		name               string
		start, end, sentAt time.Duration
		blockedNs, queueNs int64
		blocked            bool
	}{
		{"late sender", 100, 400, 250, 300, 0, true},
		{"sent exactly at ask", 100, 400, 100, 300, 0, true},
		{"late receiver", 300, 310, 100, 0, 200, false},
		{"instant match", 100, 100, 100, 0, 0, true},
	}
	for _, tc := range cases {
		blockedNs, queueNs, blocked := ClassifyRecvWait(tc.start, tc.end, tc.sentAt)
		if blockedNs != tc.blockedNs || queueNs != tc.queueNs || blocked != tc.blocked {
			t.Errorf("%s: ClassifyRecvWait = (%d, %d, %v), want (%d, %d, %v)",
				tc.name, blockedNs, queueNs, blocked, tc.blockedNs, tc.queueNs, tc.blocked)
		}
		if blockedNs != 0 && queueNs != 0 {
			t.Errorf("%s: both components nonzero", tc.name)
		}
	}
}

// TestDelayedSenderChargesBlockedWait has the receiver ask first and
// the sender deliver late: the elapsed time must land in RecvBlockedNs
// and count as a blocked receive, with no queue residency.
func TestDelayedSenderChargesBlockedWait(t *testing.T) {
	const delay = 20 * time.Millisecond
	stats := Run(2, func(c *Comm) {
		c.Barrier()
		if c.Rank() == 0 {
			time.Sleep(delay)
			c.Send(1, 3, []byte("late"))
		} else {
			c.Recv(0, 3)
		}
	})
	s := stats[1]
	if s.RecvsBlocked != 1 {
		t.Errorf("RecvsBlocked = %d, want 1", s.RecvsBlocked)
	}
	if s.RecvBlockedNs < (delay / 2).Nanoseconds() {
		t.Errorf("RecvBlockedNs = %d, want >= %d", s.RecvBlockedNs, (delay / 2).Nanoseconds())
	}
	if s.RecvQueueNs != 0 {
		t.Errorf("RecvQueueNs = %d, want 0 (receiver asked first)", s.RecvQueueNs)
	}
}

// TestDelayedReceiverChargesQueueResidency sends before the receiver
// asks: the message's inbox residency must land in RecvQueueNs and the
// receive must not count as blocked.
func TestDelayedReceiverChargesQueueResidency(t *testing.T) {
	const delay = 20 * time.Millisecond
	stats := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("early"))
			c.Barrier()
		} else {
			c.Barrier()
			time.Sleep(delay)
			c.Recv(0, 3)
		}
	})
	s := stats[1]
	if s.RecvsBlocked != 0 {
		t.Errorf("RecvsBlocked = %d, want 0", s.RecvsBlocked)
	}
	if s.RecvQueueNs < (delay / 2).Nanoseconds() {
		t.Errorf("RecvQueueNs = %d, want >= %d", s.RecvQueueNs, (delay / 2).Nanoseconds())
	}
	if s.RecvBlockedNs != 0 {
		t.Errorf("RecvBlockedNs = %d, want 0 (message was queued)", s.RecvBlockedNs)
	}
}

// TestBarrierSkewChargedToFastRank delays one rank before a barrier:
// the prompt rank pays the arrival-to-release skew, the straggler pays
// (almost) nothing.
func TestBarrierSkewChargedToFastRank(t *testing.T) {
	const delay = 20 * time.Millisecond
	stats := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			time.Sleep(delay)
		}
		c.Barrier()
	})
	fast, slow := stats[1], stats[0]
	if fast.BarrierWaitNs < (delay / 2).Nanoseconds() {
		t.Errorf("fast rank BarrierWaitNs = %d, want >= %d",
			fast.BarrierWaitNs, (delay / 2).Nanoseconds())
	}
	if slow.BarrierWaitNs >= fast.BarrierWaitNs {
		t.Errorf("straggler waited %dns, fast rank %dns: skew charged to the wrong side",
			slow.BarrierWaitNs, fast.BarrierWaitNs)
	}
	for r, s := range stats {
		if s.BarrierSyncs != 1 {
			t.Errorf("rank %d BarrierSyncs = %d, want 1", r, s.BarrierSyncs)
		}
	}
}

// TestWaitConservation runs mixed traffic with deliberate skew and
// checks that every wait increment landed in the totals and in exactly
// one kind bucket (Conserved), and that BlockedNs matches its parts.
func TestWaitConservation(t *testing.T) {
	stats := Run(4, func(c *Comm) {
		prev := c.SetKind(KindModuleInfo)
		next := (c.Rank() + 1) % c.Size()
		if c.Rank()%2 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		c.Send(next, 1, []byte("ring"))
		c.Recv((c.Rank()+3)%c.Size(), 1)
		c.SetKind(KindGhostUpdate)
		c.AllreduceI64(int64(c.Rank()), OpSum)
		c.Barrier()
		c.SetKind(prev)
	})
	for r, s := range stats {
		if !s.Conserved() {
			t.Errorf("rank %d: wait counters not conserved across kind buckets: %+v", r, s)
		}
		if got := s.BlockedNs(); got != s.RecvBlockedNs+s.BarrierWaitNs {
			t.Errorf("rank %d: BlockedNs = %d, want RecvBlockedNs+BarrierWaitNs = %d",
				r, got, s.RecvBlockedNs+s.BarrierWaitNs)
		}
		var kindSum Stats
		for k := 0; k < NumKinds; k++ {
			kindSum.RecvBlockedNs += s.ByKind[k].RecvBlockedNs
			kindSum.RecvQueueNs += s.ByKind[k].RecvQueueNs
			kindSum.RecvsBlocked += s.ByKind[k].RecvsBlocked
			kindSum.BarrierWaitNs += s.ByKind[k].BarrierWaitNs
			kindSum.BarrierSyncs += s.ByKind[k].BarrierSyncs
		}
		if kindSum.RecvBlockedNs != s.RecvBlockedNs || kindSum.RecvQueueNs != s.RecvQueueNs ||
			kindSum.RecvsBlocked != s.RecvsBlocked || kindSum.BarrierWaitNs != s.BarrierWaitNs ||
			kindSum.BarrierSyncs != s.BarrierSyncs {
			t.Errorf("rank %d: kind sums %+v do not reproduce totals", r, kindSum)
		}
	}
}

// TestWaitStatsSub checks the wait counters subtract like the traffic
// counters, so interval deltas (report iterations) stay meaningful.
func TestWaitStatsSub(t *testing.T) {
	a := Stats{RecvBlockedNs: 100, RecvQueueNs: 50, RecvsBlocked: 3, BarrierWaitNs: 70, BarrierSyncs: 9}
	b := Stats{RecvBlockedNs: 40, RecvQueueNs: 20, RecvsBlocked: 1, BarrierWaitNs: 30, BarrierSyncs: 4}
	d := a.Sub(b)
	if d.RecvBlockedNs != 60 || d.RecvQueueNs != 30 || d.RecvsBlocked != 2 ||
		d.BarrierWaitNs != 40 || d.BarrierSyncs != 5 {
		t.Fatalf("Sub = %+v", d)
	}
}

// TestRecorderCapturesEvents attaches a Recorder to a run with p2p and
// barrier traffic and checks the event log matches the counters.
func TestRecorderCapturesEvents(t *testing.T) {
	const p = 3
	rec := NewRecorder(p, time.Time{})
	stats := Run(p, func(c *Comm) {
		next := (c.Rank() + 1) % c.Size()
		c.Send(next, 5, []byte{byte(c.Rank())})
		c.Recv((c.Rank()+p-1)%p, 5)
		c.Barrier()
		c.Barrier()
	}, WithRecorder(rec))

	for r := 0; r < p; r++ {
		evs := rec.P2P(r)
		if int64(len(evs)) != stats[r].MsgsRecv {
			t.Errorf("rank %d: %d recorded receives, stats say %d", r, len(evs), stats[r].MsgsRecv)
		}
		for _, ev := range evs {
			if ev.Src != (r+p-1)%p || ev.Bytes != 1 {
				t.Errorf("rank %d: bad p2p event %+v", r, ev)
			}
			if ev.RecvEnd < ev.RecvStart {
				t.Errorf("rank %d: receive ends before it starts: %+v", r, ev)
			}
		}
		bars := rec.Barriers(r)
		if int64(len(bars)) != stats[r].BarrierSyncs {
			t.Errorf("rank %d: %d recorded syncs, stats say %d", r, len(bars), stats[r].BarrierSyncs)
		}
		for _, b := range bars {
			if b.Release < b.Arrive {
				t.Errorf("rank %d: released before arrival: %+v", r, b)
			}
		}
	}
	// Every rank passes the same synchronization points, so the logs
	// must align generation for generation.
	for r := 1; r < p; r++ {
		if len(rec.Barriers(r)) != len(rec.Barriers(0)) {
			t.Fatalf("ragged barrier logs: rank 0 has %d, rank %d has %d",
				len(rec.Barriers(0)), r, len(rec.Barriers(r)))
		}
	}
}

// TestRecorderSizeMismatchPanics: attaching a recorder sized for the
// wrong world is a bug, not a condition to limp through.
func TestRecorderSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(2, func(c *Comm) {}, WithRecorder(NewRecorder(3, time.Time{})))
}

// TestSendRecvRoundAllocs pins the instrumented p2p fast path: a
// self-send plus an immediate receive allocates exactly once — the
// Send-side payload copy. The timestamp stamping, wait classification,
// and stats accounting must stay allocation-free.
func TestSendRecvRoundAllocs(t *testing.T) {
	Run(1, func(c *Comm) {
		payload := make([]byte, 64)
		// Warm the inbox queue's backing array.
		c.Send(0, 1, payload)
		c.Recv(0, 1)
		avg := testing.AllocsPerRun(100, func() {
			c.Send(0, 1, payload)
			c.Recv(0, 1)
		})
		if avg != 1 {
			t.Errorf("send+recv round: %v allocs/op, want exactly 1 (the payload copy)", avg)
		}
	})
}

// TestQueuedRecvAllocFree pins the already-arrived Recv path at zero
// allocations: the deadlock timer is lazy and the classification is
// arithmetic only.
func TestQueuedRecvAllocFree(t *testing.T) {
	const runs = 100
	Run(1, func(c *Comm) {
		payload := make([]byte, 32)
		// AllocsPerRun invokes the body runs+1 times (one warm-up).
		for i := 0; i < runs+1; i++ {
			c.Send(0, 2, payload)
		}
		avg := testing.AllocsPerRun(runs, func() {
			c.Recv(0, 2)
		})
		if avg != 0 {
			t.Errorf("queued Recv: %v allocs/op, want 0", avg)
		}
	})
}

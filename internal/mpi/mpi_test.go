package mpi

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunSingleRank(t *testing.T) {
	ran := false
	Run(1, func(c *Comm) {
		if c.Rank() != 0 || c.Size() != 1 {
			t.Errorf("rank=%d size=%d", c.Rank(), c.Size())
		}
		ran = true
	})
	if !ran {
		t.Fatal("function never ran")
	}
}

func TestRunAllRanksExecute(t *testing.T) {
	var count int64
	Run(8, func(c *Comm) { atomic.AddInt64(&count, 1) })
	if count != 8 {
		t.Fatalf("ran %d ranks, want 8", count)
	}
}

func TestRunPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(0, func(c *Comm) {})
}

func TestSendRecvPingPong(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("ping"))
			data, from := c.Recv(1, 8)
			if string(data) != "pong" || from != 1 {
				t.Errorf("got %q from %d", data, from)
			}
		} else {
			data, from := c.Recv(0, 7)
			if string(data) != "ping" || from != 0 {
				t.Errorf("got %q from %d", data, from)
			}
			c.Send(0, 8, []byte("pong"))
		}
	})
}

func TestRecvMatchesTag(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("first"))
			c.Send(1, 2, []byte("second"))
		} else {
			// Receive out of order by tag.
			d2, _ := c.Recv(0, 2)
			d1, _ := c.Recv(0, 1)
			if string(d2) != "second" || string(d1) != "first" {
				t.Errorf("tag matching broken: %q %q", d1, d2)
			}
		}
	})
}

func TestRecvAnySource(t *testing.T) {
	Run(4, func(c *Comm) {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				_, from := c.Recv(AnySource, 5)
				seen[from] = true
			}
			if len(seen) != 3 {
				t.Errorf("saw %d distinct sources, want 3", len(seen))
			}
		} else {
			c.Send(0, 5, []byte{byte(c.Rank())})
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []byte("abc")
			c.Send(1, 0, buf)
			buf[0] = 'X' // mutate after send
			c.Barrier()
		} else {
			c.Barrier()
			data, _ := c.Recv(0, 0)
			if string(data) != "abc" {
				t.Errorf("payload not copied: %q", data)
			}
		}
	})
}

func TestSendInvalidRankPanics(t *testing.T) {
	defer func() {
		if p := recover(); p == nil || !strings.Contains(fmt.Sprint(p), "invalid rank") {
			t.Fatalf("panic = %v", p)
		}
	}()
	Run(1, func(c *Comm) { c.Send(3, 0, nil) })
}

func TestBarrierOrdering(t *testing.T) {
	var before, after int64
	Run(8, func(c *Comm) {
		atomic.AddInt64(&before, 1)
		c.Barrier()
		if atomic.LoadInt64(&before) != 8 {
			t.Error("barrier released before all ranks arrived")
		}
		atomic.AddInt64(&after, 1)
	})
	if after != 8 {
		t.Fatal("not all ranks passed the barrier")
	}
}

func TestBarrierReusable(t *testing.T) {
	var counter int64
	Run(4, func(c *Comm) {
		for i := 0; i < 50; i++ {
			c.Barrier()
			atomic.AddInt64(&counter, 1)
			c.Barrier()
			if v := atomic.LoadInt64(&counter); v%4 != 0 {
				t.Errorf("iteration %d: counter %d not multiple of 4", i, v)
			}
		}
	})
}

func TestAllgatherBytes(t *testing.T) {
	Run(5, func(c *Comm) {
		out := c.AllgatherBytes([]byte{byte(c.Rank() * 10)})
		for i, b := range out {
			if len(b) != 1 || b[0] != byte(i*10) {
				t.Errorf("out[%d] = %v", i, b)
			}
		}
	})
}

func TestBcast(t *testing.T) {
	Run(6, func(c *Comm) {
		var in []byte
		if c.Rank() == 2 {
			in = []byte("hello from root")
		}
		out := c.BcastBytes(2, in)
		if string(out) != "hello from root" {
			t.Errorf("rank %d got %q", c.Rank(), out)
		}
	})
}

func TestAllreduceF64(t *testing.T) {
	Run(4, func(c *Comm) {
		x := float64(c.Rank() + 1) // 1,2,3,4
		if s := c.AllreduceF64(x, OpSum); s != 10 {
			t.Errorf("sum = %v, want 10", s)
		}
		if m := c.AllreduceF64(x, OpMin); m != 1 {
			t.Errorf("min = %v, want 1", m)
		}
		if m := c.AllreduceF64(x, OpMax); m != 4 {
			t.Errorf("max = %v, want 4", m)
		}
	})
}

func TestAllreduceI64(t *testing.T) {
	Run(3, func(c *Comm) {
		x := int64(c.Rank()) - 1 // -1, 0, 1
		if s := c.AllreduceI64(x, OpSum); s != 0 {
			t.Errorf("sum = %v, want 0", s)
		}
		if m := c.AllreduceI64(x, OpMin); m != -1 {
			t.Errorf("min = %v, want -1", m)
		}
	})
}

func TestAllreduceSumF64s(t *testing.T) {
	Run(4, func(c *Comm) {
		xs := []float64{float64(c.Rank()), 1}
		out := c.AllreduceSumF64s(xs)
		if out[0] != 6 || out[1] != 4 {
			t.Errorf("out = %v, want [6 4]", out)
		}
	})
}

func TestAllreduceMinLoc(t *testing.T) {
	Run(5, func(c *Comm) {
		vals := []float64{3, -1, 2, -1, 5}
		got := c.AllreduceMinLoc(vals[c.Rank()])
		// Ties broken by lowest rank: rank 1 wins over rank 3.
		if got.Value != -1 || got.Rank != 1 {
			t.Errorf("MinLoc = %+v, want {-1 1}", got)
		}
	})
}

func TestAlltoallv(t *testing.T) {
	Run(4, func(c *Comm) {
		bufs := make([][]byte, 4)
		for dst := 0; dst < 4; dst++ {
			bufs[dst] = []byte{byte(c.Rank()), byte(dst)}
		}
		out := c.Alltoallv(bufs)
		for src := 0; src < 4; src++ {
			if len(out[src]) != 2 || out[src][0] != byte(src) || out[src][1] != byte(c.Rank()) {
				t.Errorf("out[%d] = %v", src, out[src])
			}
		}
	})
}

func TestAlltoallvEmptyBuffers(t *testing.T) {
	Run(3, func(c *Comm) {
		bufs := make([][]byte, 3) // all nil
		out := c.Alltoallv(bufs)
		for src := range out {
			if len(out[src]) != 0 {
				t.Errorf("expected empty, got %v", out[src])
			}
		}
	})
}

func TestStatsCounting(t *testing.T) {
	stats := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 100))
		} else {
			c.Recv(0, 0)
		}
	})
	if stats[0].BytesSent != 100 || stats[0].MsgsSent != 1 {
		t.Errorf("rank 0 stats = %+v", stats[0])
	}
	if stats[1].BytesRecv != 100 || stats[1].MsgsRecv != 1 {
		t.Errorf("rank 1 stats = %+v", stats[1])
	}
}

func TestStatsCollectiveModel(t *testing.T) {
	stats := Run(4, func(c *Comm) {
		c.AllgatherBytes(make([]byte, 64))
	})
	// log2(4) = 2 steps, 64 bytes each.
	for r, s := range stats {
		if s.Collectives != 1 || s.CollectiveMsgs != 2 || s.CollectiveBytes != 128 {
			t.Errorf("rank %d collective stats = %+v", r, s)
		}
	}
}

func TestResetStats(t *testing.T) {
	Run(2, func(c *Comm) {
		c.Send((c.Rank()+1)%2, 0, []byte("x"))
		c.Recv((c.Rank()+1)%2, 0)
		c.ResetStats()
		if s := c.Stats(); s.BytesSent != 0 || s.MsgsRecv != 0 {
			t.Errorf("stats after reset = %+v", s)
		}
	})
}

func TestStatsAddAndTotal(t *testing.T) {
	a := Stats{BytesSent: 1, BytesRecv: 2, CollectiveBytes: 3}
	b := Stats{BytesSent: 10, BytesRecv: 20, CollectiveBytes: 30}
	a.Add(b)
	if a.TotalBytes() != 66 {
		t.Fatalf("TotalBytes = %d, want 66", a.TotalBytes())
	}
}

func TestPanicPropagatesAndUnblocksOthers(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil || !strings.Contains(fmt.Sprint(p), "boom") {
			t.Fatalf("panic = %v, want to contain 'boom'", p)
		}
	}()
	Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			panic("boom")
		}
		c.Recv(0, 99) // would deadlock without poison propagation
	}, WithTimeout(10*time.Second))
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil || !strings.Contains(fmt.Sprint(p), "deadlock") {
			t.Fatalf("panic = %v, want deadlock report", p)
		}
	}()
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 42) // never sent
		}
		// rank 1 exits immediately
	}, WithTimeout(200*time.Millisecond))
}

// TestPerWorldTimeoutIsolated runs a short-timeout world that deadlocks
// while a second, long-timeout world is in flight. Before the timeout
// became per-World state, the only way to lower it was to mutate the
// package global mid-run — a data race -race can hit and a semantic bug
// (the slow world would inherit the short deadline). The concurrent
// world must finish normally under its own timeout.
func TestPerWorldTimeoutIsolated(t *testing.T) {
	slowDone := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				slowDone <- fmt.Errorf("slow world panicked: %v", p)
				return
			}
			slowDone <- nil
		}()
		Run(2, func(c *Comm) {
			// Enough barrier crossings to overlap the fast world's
			// deadlock window.
			for i := 0; i < 20; i++ {
				c.Barrier()
				time.Sleep(5 * time.Millisecond)
			}
		}, WithTimeout(30*time.Second))
	}()

	fastDone := make(chan any, 1)
	go func() {
		defer func() { fastDone <- recover() }()
		Run(2, func(c *Comm) {
			if c.Rank() == 0 {
				c.Recv(1, 7) // never sent: must hit the 50ms watchdog
			}
		}, WithTimeout(50*time.Millisecond))
	}()

	if p := <-fastDone; p == nil || !strings.Contains(fmt.Sprint(p), "deadlock") {
		t.Fatalf("fast world panic = %v, want deadlock report", p)
	}
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

// TestTakeClearsVacatedSlot checks that removing a message from the
// middle of the inbox queue zeroes the vacated tail slot: the buggy
// append-based delete left a duplicate reference to the tail message in
// the backing array, retaining its payload for the inbox's lifetime.
func TestTakeClearsVacatedSlot(t *testing.T) {
	ib := newInbox()
	ib.put(message{src: 0, tag: 1, data: []byte("first")})
	ib.put(message{src: 1, tag: 2, data: []byte("second")})
	ib.put(message{src: 2, tag: 3, data: make([]byte, 1<<20)})

	m, ok := ib.take(0, 1)
	if !ok || string(m.data) != "first" {
		t.Fatalf("take(0,1) = %+v, %v", m, ok)
	}
	if len(ib.queue) != 2 {
		t.Fatalf("queue length = %d, want 2", len(ib.queue))
	}
	// The slot the tail shifted out of must not retain the big payload.
	tail := ib.queue[:3][2]
	if tail.data != nil {
		t.Fatalf("vacated slot still references %d payload bytes", len(tail.data))
	}
	if tail.src != 0 || tail.tag != 0 {
		t.Fatalf("vacated slot not zeroed: %+v", tail)
	}
	// The remaining messages are intact and in order.
	if m, ok := ib.take(AnySource, 2); !ok || string(m.data) != "second" {
		t.Fatalf("take(AnySource,2) = %+v, %v", m, ok)
	}
	if m, ok := ib.take(2, 3); !ok || len(m.data) != 1<<20 {
		t.Fatalf("take(2,3) = %d bytes, %v", len(m.data), ok)
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.PutU64(12345678901234)
	e.PutI64(-42)
	e.PutInt(987654)
	e.PutF64(3.14159)
	e.PutBool(true)
	e.PutBool(false)
	d := NewDecoder(e.Bytes())
	if d.U64() != 12345678901234 {
		t.Error("U64 mismatch")
	}
	if d.I64() != -42 {
		t.Error("I64 mismatch")
	}
	if d.Int() != 987654 {
		t.Error("Int mismatch")
	}
	if d.F64() != 3.14159 {
		t.Error("F64 mismatch")
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool mismatch")
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestDecoderPanicsPastEnd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDecoder([]byte{1, 2}).U64()
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.PutU64(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after reset = %d", e.Len())
	}
}

// Stress test: many ranks, many iterations of mixed traffic; checks the
// runtime against races (run with -race) and lost messages.
func TestStressMixedTraffic(t *testing.T) {
	const p = 8
	const iters = 30
	Run(p, func(c *Comm) {
		for it := 0; it < iters; it++ {
			// Ring p2p.
			next := (c.Rank() + 1) % p
			prev := (c.Rank() + p - 1) % p
			e := NewEncoder(16)
			e.PutInt(it)
			e.PutInt(c.Rank())
			c.Send(next, it, e.Bytes())
			data, _ := c.Recv(prev, it)
			d := NewDecoder(data)
			if d.Int() != it || d.Int() != prev {
				t.Errorf("ring message corrupted at iter %d", it)
			}
			// Collective.
			sum := c.AllreduceI64(1, OpSum)
			if sum != p {
				t.Errorf("allreduce sum = %d, want %d", sum, p)
			}
		}
	})
}

package mpi

import "time"

// goroutineTransport is the in-process backend: one rank of a World of
// goroutines. Messages cross through shared inboxes, collectives
// through the world's exchange slots, and synchronization through one
// reusable generation barrier. It is embedded by value in the rank's
// Comm, so selecting this backend costs no extra allocation per rank.
type goroutineTransport struct {
	rank    int
	w       *World
	a2aView [][]byte // per-source views for ScatterSlots, lazily sized
}

func (t *goroutineTransport) Rank() int          { return t.rank }
func (t *goroutineTransport) Size() int          { return t.w.size }
func (t *goroutineTransport) Now() time.Duration { return t.w.now() }

func (t *goroutineTransport) Send(dst, tag int, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	t.w.inboxes[dst].put(message{src: t.rank, tag: tag, data: cp, sentAt: t.w.now()})
}

// Recv blocks until a matching message arrives. The deadlock timer is
// created lazily so the already-arrived fast path stays allocation-free,
// and the blocked-since stamp is taken at the same moment so failure
// diagnostics report the time actually spent blocked.
func (t *goroutineTransport) Recv(src, tag int) ([]byte, int, time.Duration) {
	ib := t.w.inboxes[t.rank]
	var deadline *time.Timer
	var began time.Duration
	for {
		if m, ok := ib.take(src, tag); ok {
			if deadline != nil {
				stopTimer(deadline)
			}
			return m.data, m.src, m.sentAt
		}
		if deadline == nil {
			deadline = time.NewTimer(t.w.timeout)
			began = t.w.now()
		}
		select {
		case <-ib.arrived:
		case <-t.w.fail.poison:
			poisonRecvPanic(t.rank, "Recv", src, tag, t.w.now()-began, t.w.fail.failure(), ib)
		case <-deadline.C:
			deadlockRecvPanic(t.rank, "Recv", src, tag, t.w.now()-began, ib)
		}
	}
}

// TryRecv is the non-blocking matcher: one pass over the inbox, no
// timer, no wait. Pending messages drain even from a poisoned world so
// data already delivered is not lost; only an *empty* match on a dead
// world unwinds with the poison cause, mirroring Recv's failure path.
func (t *goroutineTransport) TryRecv(src, tag int) ([]byte, int, time.Duration, bool) {
	ib := t.w.inboxes[t.rank]
	if m, ok := ib.take(src, tag); ok {
		return m.data, m.src, m.sentAt, true
	}
	select {
	case <-t.w.fail.poison:
		poisonRecvPanic(t.rank, "TryRecv", src, tag, 0, t.w.fail.failure(), ib)
	default:
	}
	return nil, 0, 0, false
}

func (t *goroutineTransport) Sync() {
	t.w.barrier.wait(&t.w.fail, t.rank, t.w.timeout)
}

func (t *goroutineTransport) GatherSlots(data []byte) [][]byte {
	t.w.slots[t.rank] = data
	t.Sync()
	return t.w.slots
}

func (t *goroutineTransport) ScatterSlots(bufs [][]byte) [][]byte {
	w := t.w
	w.a2a[t.rank] = bufs
	t.Sync()
	if t.a2aView == nil {
		t.a2aView = make([][]byte, w.size)
	}
	for src := 0; src < w.size; src++ {
		if w.a2a[src] != nil {
			t.a2aView[src] = w.a2a[src][t.rank]
		} else {
			t.a2aView[src] = nil
		}
	}
	return t.a2aView
}

func (t *goroutineTransport) BcastSlot(root int, data []byte) []byte {
	if t.rank == root {
		t.w.slots[root] = data
	}
	t.Sync()
	return t.w.slots[root]
}

// ReleaseSlots is the read-done barrier of the slot-exchange pattern:
// after it, every rank has copied what it needed and the shared slots
// may be republished.
func (t *goroutineTransport) ReleaseSlots() { t.Sync() }

func (t *goroutineTransport) Abort(err error) { t.w.fail.poisonWith(err) }
func (t *goroutineTransport) Err() error      { return t.w.fail.failure() }

// Finish is a no-op: Run owns the world's teardown, and goroutine ranks
// share one address space, so a returning rank cannot strand peers.
func (t *goroutineTransport) Finish() {}

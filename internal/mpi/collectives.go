package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ReduceOp names a reduction operator for Allreduce.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
)

// The two-phase window pattern used by every collective below:
//
//	Publish local contribution    (blocks until everyone published)
//	read the returned views, combine into pooled storage
//	ReleaseSlots                  (views dead; transport storage reusable)
//
// On the goroutine backend both phases are barriers over shared slots,
// mirroring MPI's blocking collectives; the proc backend exchanges
// sequence-tagged messages instead and releases for free. Either way
// each collective is billed as exactly two synchronization points, so
// BarrierSyncs counts match bit-for-bit across backends.
//
// Receive-side storage is pooled per Comm: the slices returned by
// AllgatherBytes, Alltoallv, and AllreduceSumF64s are valid only until
// the next collective on the same Comm. Callers must decode (or copy)
// before communicating again — every caller in this repository decodes
// immediately, which is what lets steady-state exchange rounds run at
// zero allocations.

// AllgatherBytes gathers one byte slice from every rank; result[i] is
// rank i's contribution. All ranks receive identical results. The
// result aliases pooled storage: it is valid only until the next
// collective on this Comm.
func (c *Comm) AllgatherBytes(data []byte) [][]byte {
	return c.allgatherSmall(data)
}

// BcastBytes broadcasts root's data to every rank and returns it.
// Non-root ranks pass their (ignored) local value, typically nil.
func (c *Comm) BcastBytes(root int, data []byte) []byte {
	if root < 0 || root >= c.size {
		panic(fmt.Sprintf("mpi: Bcast with invalid root %d", root))
	}
	c.collectiveCost(len(data))
	arrive := c.t.Now()
	src := c.t.BcastSlot(root, data)
	c.noteSync(arrive)
	c.recordSlotMatches()
	cp := make([]byte, len(src))
	copy(cp, src)
	arrive = c.t.Now()
	c.t.ReleaseSlots()
	c.noteSync(arrive)
	return cp
}

// AllreduceF64 reduces one float64 across all ranks with op. The
// reduction runs in fixed rank order on every rank, so all ranks obtain
// the bit-identical result — floating-point reproducibility that
// distributed threshold decisions rely on.
func (c *Comm) AllreduceF64(x float64, op ReduceOp) float64 {
	buf := c.pubBuf(8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
	parts := c.allgatherSmall(buf)
	acc := math.Float64frombits(binary.LittleEndian.Uint64(parts[0]))
	for _, p := range parts[1:] {
		v := math.Float64frombits(binary.LittleEndian.Uint64(p))
		acc = reduceF64(acc, v, op)
	}
	return acc
}

// AllreduceI64 reduces one int64 across all ranks with op.
func (c *Comm) AllreduceI64(x int64, op ReduceOp) int64 {
	buf := c.pubBuf(8)
	binary.LittleEndian.PutUint64(buf, uint64(x))
	parts := c.allgatherSmall(buf)
	acc := x
	for i, p := range parts {
		if i == c.rank {
			continue
		}
		v := int64(binary.LittleEndian.Uint64(p))
		acc = reduceI64(acc, v, op)
	}
	return acc
}

// AllreduceSumF64s element-wise sums a float64 vector across ranks.
// All ranks must pass vectors of the same length. Summation runs in
// fixed rank order (0..p-1) on every rank, so the result is
// bit-identical everywhere regardless of the calling rank. The result
// aliases pooled storage: it is valid only until the next
// AllreduceSumF64s on this Comm.
func (c *Comm) AllreduceSumF64s(xs []float64) []float64 {
	buf := c.pubBuf(8 * len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	parts := c.allgatherSmall(buf)
	if cap(c.pool.sumOut) < len(xs) {
		c.pool.sumOut = make([]float64, len(xs))
	}
	out := c.pool.sumOut[:len(xs)]
	for i := range out {
		out[i] = 0
	}
	for r, p := range parts {
		if len(p) != len(buf) {
			panic(fmt.Sprintf("mpi: AllreduceSumF64s length mismatch: rank %d sent %d bytes, want %d", r, len(p), len(buf)))
		}
		for i := range out {
			out[i] += math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
	}
	return out
}

// MinLoc is the result of AllreduceMinLoc: the global minimum value and
// the rank that contributed it (lowest rank wins ties, like MPI_MINLOC).
type MinLoc struct {
	Value float64
	Rank  int
}

// AllreduceMinLoc finds the global minimum of val and the rank holding
// it. The paper uses exactly this to pick, for each delegate, the
// candidate move with the global minimum delta-L (Algorithm 2, line 4).
func (c *Comm) AllreduceMinLoc(val float64) MinLoc {
	buf := c.pubBuf(8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(val))
	parts := c.allgatherSmall(buf)
	best := MinLoc{Value: val, Rank: c.rank}
	for r, p := range parts {
		v := math.Float64frombits(binary.LittleEndian.Uint64(p))
		//dinfomap:float-ok MINLOC tie-break on bit-identical decoded values; lowest rank wins, like MPI
		if v < best.Value || (v == best.Value && r < best.Rank) {
			best = MinLoc{Value: v, Rank: r}
		}
	}
	return best
}

// Alltoallv sends bufs[dst] from this rank to each rank dst and returns
// recv where recv[src] is the buffer this rank received from src.
// bufs must have length Size(); nil entries mean "send nothing". The
// result aliases a pooled slab: it is valid only until the next
// collective on this Comm.
func (c *Comm) Alltoallv(bufs [][]byte) [][]byte {
	if len(bufs) != c.size {
		panic(fmt.Sprintf("mpi: Alltoallv with %d buffers for %d ranks", len(bufs), c.size))
	}
	sent, sentMsgs := 0, int64(0)
	for dst, b := range bufs {
		if dst != c.rank {
			sent += len(b)
			if len(b) > 0 {
				sentMsgs++
			}
		}
	}
	arrive := c.t.Now()
	in := c.t.ScatterSlots(bufs)
	c.noteSync(arrive)
	c.recordSlotMatches()
	if c.pool.a2aOut == nil {
		c.pool.a2aOut = make([][]byte, c.size)
	}
	out := c.pool.a2aOut
	total := 0
	for src := 0; src < c.size; src++ {
		total += len(in[src])
	}
	c.pool.a2aSlab = grow(c.pool.a2aSlab, total)
	slab := c.pool.a2aSlab
	off := 0
	recvd, recvMsgs := 0, int64(0)
	for src := 0; src < c.size; src++ {
		b := in[src]
		n := copy(slab[off:off+len(b)], b)
		out[src] = slab[off : off+n : off+n]
		off += n
		if src != c.rank {
			recvd += len(b)
			if len(b) > 0 {
				recvMsgs++
			}
		}
	}
	c.countExchange(c.kind, sentMsgs, int64(sent), recvMsgs, int64(recvd))
	arrive = c.t.Now()
	c.t.ReleaseSlots()
	c.noteSync(arrive)
	return out
}

// allgatherSmall is AllgatherBytes without double-charging collective
// cost for the helpers built on top of it. Results live in the Comm's
// pooled allgather slab — valid until the next collective.
func (c *Comm) allgatherSmall(data []byte) [][]byte {
	c.collectiveCost(len(data))
	arrive := c.t.Now()
	in := c.t.GatherSlots(data)
	c.noteSync(arrive)
	c.recordSlotMatches()
	if c.pool.agOut == nil {
		c.pool.agOut = make([][]byte, c.size)
	}
	out := c.pool.agOut
	total := 0
	for _, s := range in {
		total += len(s)
	}
	c.pool.agSlab = grow(c.pool.agSlab, total)
	slab := c.pool.agSlab
	off := 0
	for i, s := range in {
		n := copy(slab[off:off+len(s)], s)
		out[i] = slab[off : off+n : off+n]
		off += n
	}
	arrive = c.t.Now()
	c.t.ReleaseSlots()
	c.noteSync(arrive)
	return out
}

func reduceF64(a, b float64, op ReduceOp) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		panic(fmt.Sprintf("mpi: unknown reduce op %d", op))
	}
}

func reduceI64(a, b int64, op ReduceOp) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		panic(fmt.Sprintf("mpi: unknown reduce op %d", op))
	}
}

package mpi

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// collectingHandler records everything Serve dispatches, in order.
type collectingHandler struct {
	mu      sync.Mutex
	samples []ClockSample
	tags    []int
	frames  [][]byte
}

func (h *collectingHandler) HandleSample(rank int, s ClockSample) {
	h.mu.Lock()
	h.samples = append(h.samples, s)
	h.mu.Unlock()
}

func (h *collectingHandler) HandleFrame(rank, tag int, sentAt time.Duration, payload []byte) {
	h.mu.Lock()
	h.tags = append(h.tags, tag)
	h.frames = append(h.frames, payload)
	h.mu.Unlock()
}

// acceptOne runs the parent side of one uplink: accept, handshake,
// serve until the child says bye. Returns Serve's error and the peer.
func acceptOne(t *testing.T, ln net.Listener, size int, epoch time.Time, version string, h UplinkHandler) (*UplinkPeer, error) {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	peer, err := AcceptUplink(conn, size, epoch, version, 5*time.Second)
	if err != nil {
		//dinfomap:close-ok test cleanup of a rejected handshake
		conn.Close()
		return nil, err
	}
	err = peer.Serve(h, time.Millisecond)
	peer.Close()
	return peer, err
}

// TestUplinkEndToEnd drives the full protocol over TCP loopback: hello
// handshake, live Offer frames, ping/pong clock samples, the blocking
// final section, and the bye frame carrying the drop count.
func TestUplinkEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	//dinfomap:close-ok test listener
	defer ln.Close()
	epoch := time.Now()

	h := &collectingHandler{}
	type served struct {
		peer *UplinkPeer
		err  error
	}
	done := make(chan served, 1)
	go func() {
		p, err := acceptOne(t, ln, 4, epoch, "buildX", h)
		done <- served{p, err}
	}()

	up, err := DialUplink("tcp", ln.Addr().String(), UplinkConfig{
		Rank: 2, Size: 4, Epoch: epoch, Version: "buildX",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !up.Offer(UplinkTagEvent, []byte{byte(i)}) {
			t.Fatalf("Offer %d rejected with an idle ring", i)
		}
	}
	up.Flush()
	if err := up.Send(UplinkTagSection, []byte("final")); err != nil {
		t.Fatalf("Send section: %v", err)
	}
	// Leave the link up long enough for a few ping/pong rounds.
	time.Sleep(50 * time.Millisecond)
	up.Close()

	sv := <-done
	if sv.err != nil {
		t.Fatalf("Serve: %v", sv.err)
	}
	if got := sv.peer.Rank(); got != 2 {
		t.Errorf("peer rank = %d, want 2", got)
	}
	if got := sv.peer.Drops(); got != 0 {
		t.Errorf("reported drops = %d, want 0", got)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.tags) != 11 {
		t.Fatalf("got %d frames, want 11 (10 events + section)", len(h.tags))
	}
	for i := 0; i < 10; i++ {
		if h.tags[i] != UplinkTagEvent || !bytes.Equal(h.frames[i], []byte{byte(i)}) {
			t.Fatalf("frame %d = tag %d payload %v; events must arrive in offer order", i, h.tags[i], h.frames[i])
		}
	}
	if h.tags[10] != UplinkTagSection || string(h.frames[10]) != "final" {
		t.Errorf("last frame = tag %d payload %q, want the section after all live frames", h.tags[10], h.frames[10])
	}
	if len(h.samples) == 0 {
		t.Fatal("no clock samples collected")
	}
	for i, s := range h.samples {
		if s.RTT <= 0 {
			t.Errorf("sample %d has non-positive RTT %v", i, s.RTT)
		}
		// Same host, same epoch: the offset is scheduling noise, far
		// below a second.
		if s.Offset > time.Second || s.Offset < -time.Second {
			t.Errorf("sample %d offset %v is implausible for a same-host clock", i, s.Offset)
		}
	}
}

// TestUplinkRingOverflow pins the hot-path contract: when the parent
// stops draining, Offer drops and counts instead of blocking, and Close
// still returns (bounded by its write deadline) instead of hanging on
// the stuck socket.
func TestUplinkRingOverflow(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	//dinfomap:close-ok test listener
	defer ln.Close()

	// Parent accepts and handshakes, then never reads again.
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if _, err := AcceptUplink(conn, 1, time.Now(), "", time.Second); err != nil {
			//dinfomap:close-ok test cleanup of a rejected handshake
			conn.Close()
			return
		}
		accepted <- conn
	}()

	up, err := DialUplink("tcp", ln.Addr().String(), UplinkConfig{Rank: 0, Size: 1, Ring: 2})
	if err != nil {
		t.Fatal(err)
	}
	conn := <-accepted
	//dinfomap:close-ok stalled-parent conn torn down at test end
	defer conn.Close()

	// Large payloads fill the kernel socket buffer, wedging the writer;
	// then the 2-slot ring fills; then Offer must drop.
	payload := make([]byte, 256<<10)
	deadline := time.Now().Add(10 * time.Second)
	for up.Drops() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Offer never dropped against a stalled parent")
		}
		up.Offer(UplinkTagEvent, payload)
	}
	if up.Offer(UplinkTagEvent, payload) {
		t.Error("Offer succeeded with a full ring and a wedged writer")
	}

	start := time.Now()
	up.Close() // must not hang on the blocked write
	if waited := time.Since(start); waited > 8*time.Second {
		t.Errorf("Close took %v against a stalled parent", waited)
	}
	if up.Drops() == 0 {
		t.Error("drop count lost")
	}
}

// TestUplinkHandshakeMismatch covers the accept-side rejections: world
// size disagreement and build mismatch both fail with a handshake
// mismatch, not a generic I/O error.
func TestUplinkHandshakeMismatch(t *testing.T) {
	cases := []struct {
		name          string
		childSize     int
		childVersion  string
		parentSize    int
		parentVersion string
	}{
		{"size", 5, "v1", 4, "v1"},
		{"version", 4, "v1", 4, "v2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			//dinfomap:close-ok test listener
			defer ln.Close()
			errc := make(chan error, 1)
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					errc <- err
					return
				}
				//dinfomap:close-ok test cleanup
				defer conn.Close()
				_, err = AcceptUplink(conn, tc.parentSize, time.Now(), tc.parentVersion, time.Second)
				errc <- err
			}()
			up, err := DialUplink("tcp", ln.Addr().String(), UplinkConfig{
				Rank: 0, Size: tc.childSize, Version: tc.childVersion,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer up.Close()
			acceptErr := <-errc
			var hm *handshakeMismatch
			if !errors.As(acceptErr, &hm) {
				t.Fatalf("AcceptUplink error = %v, want a handshake mismatch", acceptErr)
			}
		})
	}
}

// TestProcTransportTelemetry checks the wire counters against each
// other: what rank 0 counts as sent to rank 1 must be exactly what
// rank 1 counts as received from rank 0, and the handshake wall time
// and peer table must be populated.
func TestProcTransportTelemetry(t *testing.T) {
	const size = 2
	dir := shortTempDir(t)
	listeners, addrs, err := ListenRanks("unix", size, dir)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Now()
	stats := make([]*TransportStats, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := DialProc(ProcConfig{
				Rank: rank, Size: size,
				Listener: listeners[rank], Addrs: addrs, Network: "unix",
				Epoch: epoch,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			_, errs[rank] = RunRank(tr, nil, func(c *Comm) {
				for i := 0; i < 20; i++ {
					c.Send(1-c.Rank(), 7+i, bytes.Repeat([]byte{byte(i)}, 100+i))
					c.Recv(1-c.Rank(), 7+i)
				}
				c.Barrier()
			})
			stats[rank] = tr.Telemetry()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, ts := range stats {
		if ts.Network != "unix" {
			t.Errorf("rank %d network = %q", r, ts.Network)
		}
		if ts.HandshakeWallNs <= 0 {
			t.Errorf("rank %d handshake wall = %d, want > 0", r, ts.HandshakeWallNs)
		}
		if len(ts.Peers) != size {
			t.Fatalf("rank %d peer table has %d entries, want %d", r, len(ts.Peers), size)
		}
		if ts.PoisonsSent != 0 || ts.PoisonsRecv != 0 {
			t.Errorf("rank %d counted poisons (%d sent, %d recv) on a clean run", r, ts.PoisonsSent, ts.PoisonsRecv)
		}
	}
	// Conservation: sent(0→1) == recv(1←0) and vice versa, frames and
	// bytes alike. Finish/barrier traffic is included on both sides, so
	// the totals still balance.
	for r := 0; r < size; r++ {
		peer := 1 - r
		sent := stats[r].Peers[peer]
		recv := stats[peer].Peers[r]
		if sent.FramesSent == 0 {
			t.Fatalf("rank %d sent no frames to rank %d", r, peer)
		}
		if sent.FramesSent != recv.FramesRecv || sent.BytesSent != recv.BytesRecv {
			t.Errorf("conservation broken %d→%d: sent %d frames/%d bytes, peer received %d frames/%d bytes",
				r, peer, sent.FramesSent, sent.BytesSent, recv.FramesRecv, recv.BytesRecv)
		}
	}
}

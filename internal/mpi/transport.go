// Transport abstracts the wire under the typed p2p/collective layer.
//
// Comm implements tags, kinds, stats, wait-state classification, and
// pooled receive storage once; a Transport only moves bytes between
// ranks and synchronizes them. Two backends exist:
//
//   - the in-process goroutine transport (goroutine.go): ranks are
//     goroutines in one World, messages cross via shared inboxes.
//     Fast, deterministic, and allocation-free in steady state — the
//     backend all tests and determinism goldens run on.
//   - the multi-process transport (proc.go): each rank is an OS
//     process, peers connect over TCP or unix sockets with
//     length-prefixed frames. Real parallelism and real wall clock.
//
// The same rank code runs unmodified on both because Comm is the only
// consumer of this interface.
package mpi

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Transport is one rank's endpoint into a world of ranks. Like Comm,
// a Transport is owned by its rank: the communication methods are not
// safe for concurrent use by multiple goroutines.
//
// Collectives use a two-phase window: a Publish method contributes the
// local payload and blocks until every rank has contributed, the caller
// copies what it needs out of the returned views, and ReleaseSlots
// closes the window (the returned views are invalid after that). Both
// phases are full synchronization points on the goroutine backend; the
// proc backend's ReleaseSlots is free because its per-message sequence
// tags make early re-publication safe.
type Transport interface {
	// Rank returns this rank's id in [0, Size()).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Now returns the world's monotonic clock: time since the shared
	// epoch. Message stamps from all ranks are comparable on it.
	Now() time.Duration

	// Send delivers data to rank dst with the given tag, buffered
	// (never blocks on the receiver). The payload is copied or written
	// out before Send returns, so the caller may reuse the slice.
	Send(dst, tag int, data []byte)
	// Recv blocks until a message matching (src, tag) is available and
	// returns its payload, actual source, and the sender's send stamp.
	// src may be AnySource. The payload is owned by the caller.
	Recv(src, tag int) (data []byte, from int, sentAt time.Duration)
	// TryRecv is the non-blocking half of Recv: it returns the first
	// message matching (src, tag) if one is already queued, and ok=false
	// immediately otherwise. A poisoned world panics with the originating
	// cause (same unwind as a blocked Recv) once no matching message
	// remains, so a rank polling in a drain loop cannot spin past a dead
	// world. The payload is owned by the caller.
	TryRecv(src, tag int) (data []byte, from int, sentAt time.Duration, ok bool)

	// Sync blocks until every rank has entered the same synchronization
	// point. No cost accounting — Comm charges around it.
	Sync()

	// GatherSlots contributes data and blocks until every rank has
	// contributed; the result holds rank i's contribution at index i.
	// The views (including the local one) alias transport storage or
	// the caller's own buffer and are valid only until ReleaseSlots.
	GatherSlots(data []byte) [][]byte
	// ScatterSlots sends bufs[dst] to each rank dst (nil entries send
	// nothing) and blocks until this rank's column is complete; the
	// result holds the payload received from rank src at index src,
	// valid only until ReleaseSlots. len(bufs) must equal Size().
	ScatterSlots(bufs [][]byte) [][]byte
	// BcastSlot publishes root's data to every rank and returns a view
	// of it, valid only until ReleaseSlots. Non-root ranks pass their
	// (ignored) local value, typically nil.
	BcastSlot(root int, data []byte) []byte
	// ReleaseSlots closes the collective window opened by the last
	// Publish call: transport storage becomes reusable and the views
	// returned by it are dead.
	ReleaseSlots()

	// Abort poisons the world with err: every rank blocked in a
	// communication call unwinds with a panic naming the cause, on this
	// process and (for the proc backend) on every peer process.
	Abort(err error)
	// Err returns the first failure recorded for this world, nil if
	// the world is healthy.
	Err() error
	// Finish completes this rank's participation cleanly: a final
	// synchronization so that tearing down the transport cannot poison
	// peers still mid-algorithm. It panics if the world was poisoned
	// while waiting. The transport is unusable afterwards.
	Finish()
}

// failState is the shared poison latch of one world: the first failure
// wins, and closing the poison channel wakes every rank blocked in a
// communication call. Both backends embed one.
type failState struct {
	poison chan struct{}
	once   sync.Once
	mu     sync.Mutex
	err    error
}

func (f *failState) init() { f.poison = make(chan struct{}) }

// poisonWith records err as the world's failure (first caller wins) and
// wakes all waiters. Safe to call from any goroutine, repeatedly.
func (f *failState) poisonWith(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.once.Do(func() { close(f.poison) })
}

// failure returns the recorded cause, nil if the world is healthy.
func (f *failState) failure() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// stopTimer stops t and drains its channel if it already fired, so a
// timer discarded on the non-timeout path cannot leave a stale tick
// behind. (The timers here are per-wait and garbage-collected either
// way; draining keeps tight recv loops from accumulating fired timers
// that the runtime must still track until their channels are collected.)
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// summary describes the pending queue for failure diagnostics: how many
// messages are waiting and the (src, tag, size) of the first few. It is
// only called on panic paths.
func (ib *inbox) summary() string {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if len(ib.queue) == 0 {
		return "inbox empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d pending:", len(ib.queue))
	for i, m := range ib.queue {
		if i == 4 {
			fmt.Fprintf(&b, " +%d more", len(ib.queue)-i)
			break
		}
		fmt.Fprintf(&b, " (src=%d tag=%d %dB)", m.src, m.tag, len(m.data))
	}
	return b.String()
}

// poisonRecvPanic unwinds a rank whose blocked receive was woken by
// world poison, preserving the originating cause, the time spent
// blocked, and what was actually pending — without these a cross-rank
// failure is undebuggable (the old message was a bare "world poisoned
// while waiting in Recv").
func poisonRecvPanic(rank int, op string, src, tag int, blocked time.Duration, cause error, ib *inbox) {
	panic(fmt.Sprintf("mpi: rank %d: world poisoned while waiting in %s(src=%d, tag=%d) after %v: cause: %v; %s",
		rank, op, src, tag, blocked.Round(time.Microsecond), cause, ib.summary()))
}

// deadlockRecvPanic unwinds a rank whose blocked receive hit the
// deadlock watchdog.
func deadlockRecvPanic(rank int, op string, src, tag int, blocked time.Duration, ib *inbox) {
	panic(fmt.Sprintf("mpi: rank %d deadlocked in %s(src=%d, tag=%d) after %v; %s",
		rank, op, src, tag, blocked.Round(time.Millisecond), ib.summary()))
}

// Transport conformance suite: every scenario here runs against BOTH
// backends — the in-process goroutine transport and the multi-process
// proc transport (exercised in-process as one ProcTransport per rank
// goroutine over real unix sockets, so -race sees the full wire path).
// The suite pins the Transport contract: p2p ordering and tag matching,
// every collective, bit-identical reductions across backends, the
// kind-conservation invariant, wait-state classification, and clean
// poison propagation with the cause preserved.
package mpi

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// shortTempDir returns a freshly created short-pathed directory for
// unix sockets: t.TempDir can exceed the ~100-byte sun_path limit on
// deeply nested test names.
func shortTempDir(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "mpi")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return dir
}

// runProcWorld runs fn as an SPMD program over the proc backend, one
// ProcTransport per rank goroutine connected over unix sockets. It
// fails the test on any rank error and returns per-rank stats, making
// it signature-compatible with Run for the conformance table.
func runProcWorld(t *testing.T, size int, fn func(c *Comm), opts ...RunOpt) []Stats {
	t.Helper()
	stats, errs := runProcWorldErrs(t, size, fn, opts...)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return stats
}

// runProcWorldErrs is runProcWorld without the failure assertion, for
// tests that expect rank errors (poison propagation).
func runProcWorldErrs(t *testing.T, size int, fn func(c *Comm), opts ...RunOpt) ([]Stats, []error) {
	t.Helper()
	dir := shortTempDir(t)
	listeners, addrs, err := ListenRanks("unix", size, dir)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Now()
	stats := make([]Stats, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := DialProc(ProcConfig{
				Rank: rank, Size: size,
				Listener: listeners[rank], Addrs: addrs, Network: "unix",
				Epoch: epoch,
			}, opts...)
			if err != nil {
				errs[rank] = err
				return
			}
			stats[rank], errs[rank] = RunRank(tr, nil, fn)
		}(r)
	}
	wg.Wait()
	return stats, errs
}

// backendRunners lists both transports behind one runner signature.
func backendRunners() []struct {
	name string
	run  func(t *testing.T, size int, fn func(c *Comm), opts ...RunOpt) []Stats
} {
	return []struct {
		name string
		run  func(t *testing.T, size int, fn func(c *Comm), opts ...RunOpt) []Stats
	}{
		{"goroutine", func(t *testing.T, size int, fn func(c *Comm), opts ...RunOpt) []Stats {
			t.Helper()
			return Run(size, fn, opts...)
		}},
		{"proc", runProcWorld},
	}
}

func TestConformanceP2POrdering(t *testing.T) {
	for _, b := range backendRunners() {
		t.Run(b.name, func(t *testing.T) {
			b.run(t, 2, func(c *Comm) {
				const n = 50
				if c.Rank() == 0 {
					for i := 0; i < n; i++ {
						c.Send(1, 7, []byte{byte(i)})
					}
					return
				}
				for i := 0; i < n; i++ {
					data, from := c.Recv(0, 7)
					if from != 0 || len(data) != 1 || data[0] != byte(i) {
						t.Errorf("message %d: got %v from %d", i, data, from)
					}
				}
			}, WithTimeout(10*time.Second))
		})
	}
}

func TestConformanceTagMatching(t *testing.T) {
	for _, b := range backendRunners() {
		t.Run(b.name, func(t *testing.T) {
			b.run(t, 2, func(c *Comm) {
				if c.Rank() == 0 {
					c.Send(1, 1, []byte("one"))
					c.Send(1, 2, []byte("two"))
					c.Send(1, 3, []byte("three"))
					return
				}
				// Ask out of send order: matching is by tag, not arrival.
				three, _ := c.Recv(0, 3)
				one, _ := c.Recv(0, 1)
				two, _ := c.Recv(0, 2)
				if string(one) != "one" || string(two) != "two" || string(three) != "three" {
					t.Errorf("tag matching broke: %q %q %q", one, two, three)
				}
			}, WithTimeout(10*time.Second))
		})
	}
}

// TestConformanceTryRecv pins the non-blocking half of the receive
// contract on both backends: a miss returns immediately with ok=false,
// a hit returns queued messages in per-(src,tag) send order, and hits
// are accounted as queue residency, never as blocked wait.
func TestConformanceTryRecv(t *testing.T) {
	const n = 10
	for _, b := range backendRunners() {
		t.Run(b.name, func(t *testing.T) {
			stats := b.run(t, 2, func(c *Comm) {
				if c.Rank() == 0 {
					c.Send(1, 5, []byte("a"))
					c.Send(1, 6, []byte("b"))
					for i := 0; i < n; i++ {
						c.Send(1, 7, []byte{byte(i)})
					}
					c.Send(1, 9, []byte("ready"))
					return
				}
				if _, _, ok := c.TryRecv(0, 99); ok {
					t.Error("TryRecv hit on a tag never sent")
				}
				// The ready message is sent last on the same (src) stream,
				// so once it matches, every earlier send is queued.
				c.Recv(0, 9)
				if data, from, ok := c.TryRecv(0, 6); !ok || from != 0 || string(data) != "b" {
					t.Errorf("TryRecv(0,6) = %q from %d ok=%v, want \"b\" from 0", data, from, ok)
				}
				if _, _, ok := c.TryRecv(0, 6); ok {
					t.Error("TryRecv matched tag 6 twice")
				}
				if data, _, ok := c.TryRecv(0, 5); !ok || string(data) != "a" {
					t.Errorf("TryRecv(0,5) = %q ok=%v, want \"a\"", data, ok)
				}
				// Drain-available: same tag drains in send order, then misses.
				for i := 0; i < n; i++ {
					data, _, ok := c.TryRecv(0, 7)
					if !ok || len(data) != 1 || data[0] != byte(i) {
						t.Errorf("drain %d: got %v ok=%v", i, data, ok)
					}
				}
				if _, _, ok := c.TryRecv(0, 7); ok {
					t.Error("TryRecv hit after the tag-7 stream drained")
				}
			}, WithTimeout(10*time.Second))
			s := stats[1]
			if want := int64(n + 3); s.MsgsRecv != want {
				t.Errorf("MsgsRecv = %d, want %d (TryRecv hits must count)", s.MsgsRecv, want)
			}
			// Only the one blocking Recv may bill blocked wait; the n+2
			// TryRecv hits must all land in queue residency.
			if s.RecvsBlocked > 1 {
				t.Errorf("RecvsBlocked = %d, want <= 1 (TryRecv never blocks)", s.RecvsBlocked)
			}
			if !s.Conserved() {
				t.Errorf("wait-state counters broke conservation: %+v", s)
			}
		})
	}
}

// TestConformanceTryRecvPoison pins TryRecv's failure semantics on both
// backends: messages already delivered still drain from a poisoned
// world, and the first empty poll afterwards unwinds with the
// originating cause instead of letting the rank spin on a dead world.
func TestConformanceTryRecvPoison(t *testing.T) {
	for _, b := range backendRunners() {
		t.Run(b.name, func(t *testing.T) {
			var msg string
			var mu sync.Mutex
			fn := func(c *Comm) {
				if c.Rank() == 0 {
					defer func() {
						if p := recover(); p != nil {
							mu.Lock()
							msg = fmt.Sprint(p)
							mu.Unlock()
							panic(p)
						}
					}()
					c.Send(0, 9, []byte("queued-before-death"))
					c.Recv(1, 8) // released only when rank 1 is about to die
					if data, _, ok := c.TryRecv(0, 9); !ok || string(data) != "queued-before-death" {
						panic(fmt.Sprintf("pending message lost to poison: %q ok=%v", data, ok))
					}
					for { // empty polls must eventually observe the poison
						c.TryRecv(1, 77)
						time.Sleep(time.Millisecond)
					}
				}
				c.Send(0, 8, []byte("go"))
				time.Sleep(20 * time.Millisecond)
				panic("drain-side boom")
			}
			if b.name == "goroutine" {
				func() {
					defer func() { recover() }()
					Run(2, fn, WithTimeout(10*time.Second))
				}()
			} else {
				runProcWorldErrs(t, 2, fn, WithTimeout(10*time.Second))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, want := range []string{"drain-side boom", "TryRecv(src=1, tag=77)", "cause:"} {
				if !strings.Contains(msg, want) {
					t.Errorf("TryRecv poison panic %q missing %q", msg, want)
				}
			}
		})
	}
}

func TestConformanceCollectives(t *testing.T) {
	const p = 4
	for _, b := range backendRunners() {
		t.Run(b.name, func(t *testing.T) {
			b.run(t, p, func(c *Comm) {
				r := c.Rank()

				parts := c.AllgatherBytes([]byte(fmt.Sprintf("rank%d", r)))
				for i, part := range parts {
					if want := fmt.Sprintf("rank%d", i); string(part) != want {
						t.Errorf("allgather[%d] = %q, want %q", i, part, want)
					}
				}

				var payload []byte
				if r == 2 {
					payload = []byte("broadcast")
				}
				if got := c.BcastBytes(2, payload); string(got) != "broadcast" {
					t.Errorf("bcast = %q", got)
				}

				if got := c.AllreduceF64(float64(r+1), OpSum); got != 10 {
					t.Errorf("allreduce sum = %v, want 10", got)
				}
				if got := c.AllreduceF64(float64(r), OpMax); got != p-1 {
					t.Errorf("allreduce max = %v, want %d", got, p-1)
				}
				if got := c.AllreduceI64(int64(r), OpMin); got != 0 {
					t.Errorf("allreduce min = %v, want 0", got)
				}

				vec := c.AllreduceSumF64s([]float64{float64(r), 1})
				if vec[0] != 6 || vec[1] != p {
					t.Errorf("sumf64s = %v", vec)
				}

				ml := c.AllreduceMinLoc(float64((r+2)%p) + 0.5)
				if ml.Rank != p-2 || ml.Value != 0.5 {
					t.Errorf("minloc = %+v", ml)
				}

				bufs := make([][]byte, p)
				for dst := range bufs {
					if dst != r {
						bufs[dst] = []byte{byte(r*10 + dst)}
					}
				}
				recv := c.Alltoallv(bufs)
				for src := 0; src < p; src++ {
					if src == r {
						continue
					}
					if len(recv[src]) != 1 || recv[src][0] != byte(src*10+r) {
						t.Errorf("alltoallv[%d] = %v", src, recv[src])
					}
				}

				c.Barrier()
			}, WithTimeout(10*time.Second))
		})
	}
}

// TestConformanceReductionParity pins the cross-backend determinism
// contract: the same SPMD reduction produces bit-identical results on
// both transports (fixed rank-order summation, independent of message
// arrival order).
func TestConformanceReductionParity(t *testing.T) {
	const p = 4
	results := map[string][]byte{}
	for _, b := range backendRunners() {
		var mu sync.Mutex
		var encoded []byte
		b.run(t, p, func(c *Comm) {
			acc := c.AllreduceF64(math.Sqrt(float64(c.Rank())+0.1)*1e-3, OpSum)
			vec := c.AllreduceSumF64s([]float64{acc, acc * math.Pi})
			e := NewEncoder(32)
			e.PutF64(acc)
			e.PutF64(vec[0])
			e.PutF64(vec[1])
			if c.Rank() == 0 {
				mu.Lock()
				encoded = append([]byte(nil), e.Bytes()...)
				mu.Unlock()
			}
		}, WithTimeout(10*time.Second))
		results[b.name] = encoded
	}
	if !bytes.Equal(results["goroutine"], results["proc"]) {
		t.Fatalf("reduction bytes differ across backends:\n goroutine %x\n proc      %x",
			results["goroutine"], results["proc"])
	}
}

// TestConformanceKindConservation drives mixed kinded traffic and
// asserts the per-kind buckets still sum to the totals on both
// backends.
func TestConformanceKindConservation(t *testing.T) {
	const p = 3
	for _, b := range backendRunners() {
		t.Run(b.name, func(t *testing.T) {
			stats := b.run(t, p, func(c *Comm) {
				r := c.Rank()
				prev := c.SetKind(KindGhostUpdate)
				c.Send((r+1)%p, TagFor(KindModuleInfo, 5), []byte("info"))
				c.Recv((r+p-1)%p, TagFor(KindModuleInfo, 5))
				c.AllreduceF64(float64(r), OpSum)
				c.SetKind(KindMergeShuffle)
				c.Barrier()
				c.SetKind(prev)
			}, WithTimeout(10*time.Second))
			for r, s := range stats {
				if !s.Conserved() {
					t.Errorf("rank %d: kind buckets do not sum to totals: %+v", r, s)
				}
				if s.ByKind[KindModuleInfo].MsgsSent != 1 || s.ByKind[KindModuleInfo].MsgsRecv != 1 {
					t.Errorf("rank %d: ModuleInfo msgs = %d/%d, want 1/1",
						r, s.ByKind[KindModuleInfo].MsgsSent, s.ByKind[KindModuleInfo].MsgsRecv)
				}
			}
		})
	}
}

// TestConformanceWaitStates pins wait-state classification on both
// backends: a late sender charges blocked wait, an early sender whose
// receiver dawdles charges queue residency. The proc backend's send
// stamps cross process-comparable clocks (the shared epoch), so the
// same classification must hold there.
func TestConformanceWaitStates(t *testing.T) {
	const lag = 30 * time.Millisecond
	for _, b := range backendRunners() {
		t.Run(b.name, func(t *testing.T) {
			stats := b.run(t, 2, func(c *Comm) {
				if c.Rank() == 0 {
					time.Sleep(lag) // late sender for tag 1
					c.Send(1, 1, []byte("late"))
					c.Send(1, 2, []byte("early"))
					c.Barrier()
					return
				}
				c.Recv(0, 1) // blocks on the late sender
				c.Barrier()  // tag-2 message now sits queued
				time.Sleep(lag)
				c.Recv(0, 2) // late receiver
			}, WithTimeout(10*time.Second))
			s := stats[1]
			if s.RecvsBlocked != 1 {
				t.Errorf("RecvsBlocked = %d, want 1", s.RecvsBlocked)
			}
			if s.RecvBlockedNs < int64(lag/2) {
				t.Errorf("RecvBlockedNs = %d, want >= %d", s.RecvBlockedNs, int64(lag/2))
			}
			if s.RecvQueueNs < int64(lag/2) {
				t.Errorf("RecvQueueNs = %d, want >= %d", s.RecvQueueNs, int64(lag/2))
			}
			if !s.Conserved() {
				t.Errorf("wait-state counters broke conservation: %+v", s)
			}
		})
	}
}

// TestConformanceBarrierSyncCounts pins the accounting parity that the
// CI diff job relies on: every backend bills a collective as exactly
// two synchronization points and a barrier as one, so BarrierSyncs (a
// deterministic counter) must be identical across transports.
func TestConformanceBarrierSyncCounts(t *testing.T) {
	counts := map[string]int64{}
	for _, b := range backendRunners() {
		stats := b.run(t, 3, func(c *Comm) {
			c.Barrier()
			c.AllgatherBytes([]byte{byte(c.Rank())})
			c.AllreduceF64(1, OpSum)
			c.Alltoallv(make([][]byte, 3))
			c.BcastBytes(0, []byte("x"))
		}, WithTimeout(10*time.Second))
		counts[b.name] = stats[0].BarrierSyncs
	}
	if counts["goroutine"] != counts["proc"] {
		t.Fatalf("BarrierSyncs differ: goroutine %d, proc %d", counts["goroutine"], counts["proc"])
	}
	if want := int64(1 + 2*4); counts["goroutine"] != want {
		t.Fatalf("BarrierSyncs = %d, want %d", counts["goroutine"], want)
	}
}

// TestProcPoisonPropagatesCause kills one rank (by panic) mid-exchange
// and asserts every other rank unwinds promptly with the originating
// cause threaded through — the in-process version of the fault
// injection test (proc_fault_test.go does it with real processes).
func TestProcPoisonPropagatesCause(t *testing.T) {
	const p = 4
	start := time.Now()
	_, errs := runProcWorldErrs(t, p, func(c *Comm) {
		if c.Rank() == 2 {
			panic("injected fault on rank 2")
		}
		for i := 0; ; i++ {
			c.AllreduceF64(float64(i), OpSum)
		}
	}, WithTimeout(30*time.Second))
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("poison took %v to unwind the world", elapsed)
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: no error out of a poisoned world", r)
		}
		if !strings.Contains(err.Error(), "injected fault on rank 2") {
			t.Errorf("rank %d: cause lost: %v", r, err)
		}
	}
}

// TestConformancePoisonDiagnostics pins satellite-1's failure
// diagnostics on both backends: a rank blocked in Recv when the world
// is poisoned unwinds with the cause, the time it spent blocked, and a
// pending-inbox summary — not the old bare "world poisoned" message.
func TestConformancePoisonDiagnostics(t *testing.T) {
	for _, b := range backendRunners() {
		t.Run(b.name, func(t *testing.T) {
			var msg string
			var mu sync.Mutex
			fn := func(c *Comm) {
				if c.Rank() == 0 {
					defer func() {
						if p := recover(); p != nil {
							mu.Lock()
							msg = fmt.Sprint(p)
							mu.Unlock()
							panic(p)
						}
					}()
					c.Send(0, 9, []byte("pending-self")) // sits unmatched in our inbox
					c.Recv(1, 42)                        // blocks forever
					return
				}
				time.Sleep(20 * time.Millisecond)
				panic("boom with context")
			}
			if b.name == "goroutine" {
				func() {
					defer func() { recover() }()
					Run(2, fn, WithTimeout(10*time.Second))
				}()
			} else {
				runProcWorldErrs(t, 2, fn, WithTimeout(10*time.Second))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, want := range []string{"boom with context", "Recv(src=1, tag=42)", "cause:", "pending", "src=0 tag=9"} {
				if !strings.Contains(msg, want) {
					t.Errorf("poison panic %q missing %q", msg, want)
				}
			}
		})
	}
}

// TestConnectTimeoutBudget pins satellite 3: a peer that never comes up
// fails DialProc within the WithConnectTimeout budget, not the much
// longer deadlock window.
func TestConnectTimeoutBudget(t *testing.T) {
	dir := shortTempDir(t)
	listeners, addrs, err := ListenRanks("unix", 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range listeners {
		l.Close() // nobody will ever accept or dial
	}
	start := time.Now()
	_, err = DialProc(ProcConfig{
		Rank: 1, Size: 2, Listener: nil, Addrs: addrs, Network: "unix",
	}, WithConnectTimeout(200*time.Millisecond), WithTimeout(time.Hour))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("DialProc succeeded against a dead mesh")
	}
	if !strings.Contains(err.Error(), "connect timeout") {
		t.Fatalf("error = %v, want connect timeout", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("DialProc took %v, want ~200ms budget", elapsed)
	}
}

// TestHandshakeRejectsMismatchedBuilds pins the handshake: two ranks
// built differently must fail the mesh, not silently run a mixed world.
func TestHandshakeRejectsMismatchedBuilds(t *testing.T) {
	dir := shortTempDir(t)
	listeners, addrs, err := ListenRanks("unix", 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	versions := []string{"build-A", "build-B"}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			_, errs[rank] = DialProc(ProcConfig{
				Rank: rank, Size: 2,
				Listener: listeners[rank], Addrs: addrs, Network: "unix",
				Version: versions[rank],
			}, WithConnectTimeout(2*time.Second))
		}(r)
	}
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("mismatched builds formed a mesh")
	}
	combined := fmt.Sprint(errs[0], errs[1])
	if !strings.Contains(combined, "build mismatch") {
		t.Fatalf("errors = %v, want build mismatch", combined)
	}
}

// TestSendBuffersInvalidatedOnPoison pins satellite 2: a SendBuffers
// registered with the Comm is marked stale when the world fails, so a
// recovering caller cannot exchange the half-written round; Reset
// rearms it.
func TestSendBuffersInvalidatedOnPoison(t *testing.T) {
	var sb *SendBuffers
	var mu sync.Mutex
	func() {
		defer func() { recover() }()
		Run(2, func(c *Comm) {
			if c.Rank() == 0 {
				b := c.NewSendBuffers()
				b.Reset()
				b.For(1).PutInt(42) // half-written round
				mu.Lock()
				sb = b
				mu.Unlock()
				c.Recv(1, 1) // blocks; poisoned by rank 1's panic
				return
			}
			panic("die mid-round")
		}, WithTimeout(10*time.Second))
	}()
	mu.Lock()
	defer mu.Unlock()
	if sb == nil {
		t.Fatal("rank 0 never registered its SendBuffers")
	}
	func() {
		defer func() {
			if p := recover(); p == nil || !strings.Contains(fmt.Sprint(p), "world failed") {
				t.Errorf("stale For() panic = %v, want world-failed message", p)
			}
		}()
		sb.For(1)
	}()
	sb.Reset()
	sb.For(1).PutInt(7) // rearmed after Reset
	if got := sb.Bufs()[1]; len(got) != 8 {
		t.Errorf("post-Reset round has %d bytes, want 8", len(got))
	}
}

package mpi

// Kind classifies one unit of traffic by the protocol message it
// carries, so per-rank counters can attribute bytes on the wire to the
// paper's message interfaces (Module_Info, delegate candidates, ghost
// updates, ...) instead of one aggregate number. The taxonomy is fixed
// and small on purpose: Stats carries one KindStats bucket per Kind as
// a flat array, which keeps Stats a comparable value type and makes the
// conservation invariant (kind sums == totals) cheap to verify.
//
// Attribution works two ways:
//
//   - point-to-point Send/Recv derive the kind from the message tag
//     (TagFor packs a Kind into the tag's upper bits; plain small tags
//     carry kind 0 = KindOther);
//   - collectives, which have no tag, are charged to the Comm's ambient
//     kind, set by SetKind at protocol-phase boundaries.
type Kind uint8

// The message kinds of the distributed Infomap protocol. KindOther is
// deliberately the zero value: legacy tags without kind bits and
// collectives issued before any SetKind land there, never in a named
// bucket they do not belong to.
const (
	// KindOther is unclassified traffic (zero value; legacy tags).
	KindOther Kind = iota
	// KindModuleInfo is authoritative module statistics delivered to
	// subscribers (the paper's List 1 / Module_Info interface).
	KindModuleInfo
	// KindHubCandidate is delegate move proposals and their exact
	// delta-L evaluation round (BroadcastDelegates).
	KindHubCandidate
	// KindGhostUpdate is boundary-vertex community updates shipped to
	// ghosting ranks (SwapBoundaryInfo).
	KindGhostUpdate
	// KindModulePartial is per-module partial statistics shuffled to
	// module home ranks (Algorithm 3 round 1).
	KindModulePartial
	// KindMergeShuffle is contracted arcs redistributed to their merged-
	// graph owners (Section 3.5 graph merging).
	KindMergeShuffle
	// KindAssignment is community-assignment gathers (level projection
	// and the final full-assignment allgather).
	KindAssignment
	// KindSetup is preprocessing exchanges: ghost registration and the
	// flow/strength gathers that build a level.
	KindSetup
	// KindCollective is control collectives: barriers, convergence
	// votes, and the MDL reduction.
	KindCollective
	// NumKinds is the number of kinds; Stats.ByKind has this length.
	NumKinds int = iota
)

// kindNames is indexed by Kind; these are the stable wire/label names
// used by the run report (comms.by_kind) and the Prometheus exposition.
var kindNames = [NumKinds]string{
	"other",
	"module_info",
	"hub_candidate",
	"ghost_update",
	"module_partial",
	"merge_shuffle",
	"assignment",
	"setup",
	"collective",
}

// String returns the kind's stable label name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "other"
}

// KindNames returns the label names of all kinds in Kind order (a fresh
// slice; callers may reorder it).
func KindNames() []string {
	out := make([]string, NumKinds)
	copy(out, kindNames[:])
	return out
}

// Tag packing: the upper bits of a message tag carry the kind, the low
// kindShift bits the caller's sequence/tag value. Plain tags below
// 1<<kindShift have kind bits zero and classify as KindOther, so all
// pre-existing tag usage keeps its meaning.
const kindShift = 24

// TagFor packs kind k and a caller tag (0 <= tag < 1<<24) into one
// wire tag. Send/Recv attribute the message to k.
func TagFor(k Kind, tag int) int {
	if tag < 0 || tag >= 1<<kindShift {
		panic("mpi: TagFor tag out of range")
	}
	return int(k)<<kindShift | tag
}

// KindOfTag extracts the kind packed into tag; tags without valid kind
// bits (including all plain small tags) classify as KindOther.
func KindOfTag(tag int) Kind {
	if tag < 0 {
		return KindOther
	}
	k := tag >> kindShift
	if k <= 0 || k >= NumKinds {
		return KindOther
	}
	return Kind(k)
}

// KindStats counts one kind's share of a rank's traffic; the fields
// mirror Stats' totals. For every field, summing KindStats over all
// kinds equals the Stats total (the conservation invariant: every
// counter increment lands in exactly one kind bucket).
type KindStats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
	Collectives          int64
	CollectiveBytes      int64
	CollectiveMsgs       int64

	// Wait-state counters, mirroring Stats: receive waits follow the
	// message's resolved kind, barrier/collective skew follows the
	// ambient kind at the synchronization point.
	RecvBlockedNs int64
	RecvQueueNs   int64
	RecvsBlocked  int64
	BarrierWaitNs int64
	BarrierSyncs  int64
}

// add accumulates other into s.
func (s *KindStats) add(other KindStats) {
	s.BytesSent += other.BytesSent
	s.BytesRecv += other.BytesRecv
	s.MsgsSent += other.MsgsSent
	s.MsgsRecv += other.MsgsRecv
	s.Collectives += other.Collectives
	s.CollectiveBytes += other.CollectiveBytes
	s.CollectiveMsgs += other.CollectiveMsgs
	s.RecvBlockedNs += other.RecvBlockedNs
	s.RecvQueueNs += other.RecvQueueNs
	s.RecvsBlocked += other.RecvsBlocked
	s.BarrierWaitNs += other.BarrierWaitNs
	s.BarrierSyncs += other.BarrierSyncs
}

// sub returns the field-wise delta s - prev.
func (s KindStats) sub(prev KindStats) KindStats {
	return KindStats{
		BytesSent:       s.BytesSent - prev.BytesSent,
		BytesRecv:       s.BytesRecv - prev.BytesRecv,
		MsgsSent:        s.MsgsSent - prev.MsgsSent,
		MsgsRecv:        s.MsgsRecv - prev.MsgsRecv,
		Collectives:     s.Collectives - prev.Collectives,
		CollectiveBytes: s.CollectiveBytes - prev.CollectiveBytes,
		CollectiveMsgs:  s.CollectiveMsgs - prev.CollectiveMsgs,
		RecvBlockedNs:   s.RecvBlockedNs - prev.RecvBlockedNs,
		RecvQueueNs:     s.RecvQueueNs - prev.RecvQueueNs,
		RecvsBlocked:    s.RecvsBlocked - prev.RecvsBlocked,
		BarrierWaitNs:   s.BarrierWaitNs - prev.BarrierWaitNs,
		BarrierSyncs:    s.BarrierSyncs - prev.BarrierSyncs,
	}
}

// TotalBytes returns all bytes attributed to this kind (p2p + modeled
// collective traffic), the per-kind counterpart of Stats.TotalBytes.
func (s KindStats) TotalBytes() int64 {
	return s.BytesSent + s.BytesRecv + s.CollectiveBytes
}

// KindSums re-derives the aggregate totals from the per-kind buckets.
// By the conservation invariant it equals the Stats totals field-for-
// field; tests and the metrics exposition use it to verify that.
func (s Stats) KindSums() KindStats {
	var sum KindStats
	for k := range s.ByKind {
		sum.add(s.ByKind[k])
	}
	return sum
}

// Conserved reports whether the per-kind buckets sum to the aggregate
// totals on every field.
func (s Stats) Conserved() bool {
	sum := s.KindSums()
	return sum == KindStats{
		BytesSent:       s.BytesSent,
		BytesRecv:       s.BytesRecv,
		MsgsSent:        s.MsgsSent,
		MsgsRecv:        s.MsgsRecv,
		Collectives:     s.Collectives,
		CollectiveBytes: s.CollectiveBytes,
		CollectiveMsgs:  s.CollectiveMsgs,
		RecvBlockedNs:   s.RecvBlockedNs,
		RecvQueueNs:     s.RecvQueueNs,
		RecvsBlocked:    s.RecvsBlocked,
		BarrierWaitNs:   s.BarrierWaitNs,
		BarrierSyncs:    s.BarrierSyncs,
	}
}

// The telemetry uplink: a dedicated child→parent side channel of a
// multi-process run, carrying journal events, comm-stats snapshots, and
// the final per-rank telemetry section from each rank process to the
// launcher. It reuses the mesh's frame format (frameHeader, same
// little-endian fixed-width codec) on its own connection, with its own
// control-tag space, so nothing here ever contends with algorithm
// traffic.
//
// The child side never blocks the rank's hot path: live frames go
// through a bounded ring (Offer drops when full and counts the drop),
// and only the final lossless section — sent after the algorithm has
// finished — uses a blocking Send. The parent side answers each child's
// frames and periodically pings it; each ping/pong pair yields a clock
// sample (offset at the RTT midpoint) from which package obs estimates
// the rank's clock offset and aligns its timestamps onto the parent's
// timeline.
package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Uplink frame tags. Data tags are positive (the mesh's user tags never
// appear on this channel); control tags are negative, mirroring the
// mesh convention.
const (
	// UplinkTagEvent carries one binary-encoded journal StreamEvent
	// (see obs.EncodeStreamEvent).
	UplinkTagEvent = 1
	// UplinkTagStats carries a JSON comm-stats + transport snapshot.
	UplinkTagStats = 2
	// UplinkTagSection carries the final JSON per-rank telemetry
	// section (lossless; sent blocking after the run).
	UplinkTagSection = 3

	uplinkTagHello = -2 // child→parent handshake (magic, size, rank, version)
	uplinkTagPing  = -3 // parent→child: seq (u64) + parent send stamp (i64)
	uplinkTagPong  = -4 // child→parent: ping payload echoed; header sentAt = child clock
	uplinkTagBye   = -5 // child→parent: clean end of stream; payload = ring drop count (i64)
)

// uplinkMagic identifies a dinfomap telemetry uplink; the low bytes
// spell "dnfouplk".
const uplinkMagic = 0x64_6e_66_6f_75_70_6c_6b

// DefaultUplinkRing is the default capacity of the child-side send
// ring. At ~100 bytes per event frame this bounds buffered telemetry to
// about a megabyte per rank.
const DefaultUplinkRing = 8192

// defaultUplinkPing is the steady-state ping cadence; the initial
// burst (uplinkPingBurst pings spaced uplinkBurstGap apart) gives the
// offset estimator samples before the first events arrive.
const (
	defaultUplinkPing = 500 * time.Millisecond
	uplinkPingBurst   = 8
	uplinkBurstGap    = 2 * time.Millisecond
)

// UplinkConfig wires one rank's telemetry uplink.
type UplinkConfig struct {
	Rank int // this rank's id
	Size int // world size (verified against the parent's expectation)
	// Epoch is the shared zero point of all stamps — the same epoch the
	// launcher gives the mesh transport, so uplink stamps and mesh
	// stamps live on one per-process timeline. Zero means "now".
	Epoch time.Time
	// Version is this build's identity; verified like the mesh
	// handshake. Empty disables the check.
	Version string
	// Ring is the send-ring capacity; <= 0 means DefaultUplinkRing.
	Ring int
	// DialTimeout bounds the dial + handshake; <= 0 means
	// DefaultConnectTimeout.
	DialTimeout time.Duration
}

type uplinkFrame struct {
	tag     int
	payload []byte
}

// Uplink is the child-process end of the telemetry side channel.
// Offer is the hot-path entry point: non-blocking, bounded, counts
// drops. A writer goroutine drains the ring onto the socket; a reader
// goroutine answers the parent's clock pings.
type Uplink struct {
	pc    *peerConn
	epoch time.Time

	ch    chan uplinkFrame
	drops atomic.Int64
	dead  atomic.Bool // write side failed: keep draining, stop writing

	closed     sync.Once
	writerDone chan struct{}
	readerDone chan struct{}
}

// DialUplink connects to the parent's uplink listener, handshakes, and
// starts the writer/reader goroutines. The caller streams with Offer,
// then Flush + Send(UplinkTagSection, ...) + Close at the end of the
// run.
func DialUplink(network, addr string, cfg UplinkConfig) (*Uplink, error) {
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = DefaultConnectTimeout
	}
	epoch := cfg.Epoch
	if epoch.IsZero() {
		epoch = time.Now()
	}
	ring := cfg.Ring
	if ring <= 0 {
		ring = DefaultUplinkRing
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d uplink dial %s: %w", cfg.Rank, addr, err)
	}
	pc := &peerConn{c: conn}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		//dinfomap:close-ok handshake failed before any telemetry was sent
		conn.Close()
		return nil, fmt.Errorf("mpi: rank %d uplink deadline: %w", cfg.Rank, err)
	}
	e := NewEncoder(64)
	e.PutU64(uplinkMagic)
	e.PutInt(cfg.Size)
	e.PutInt(cfg.Rank)
	e.PutInt(len(cfg.Version))
	hello := append(e.Bytes(), cfg.Version...)
	if err := pc.writeFrame(uplinkTagHello, 0, hello); err != nil {
		//dinfomap:close-ok handshake failed before any telemetry was sent
		conn.Close()
		return nil, fmt.Errorf("mpi: rank %d uplink hello: %w", cfg.Rank, err)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		//dinfomap:close-ok handshake failed before any telemetry was sent
		conn.Close()
		return nil, fmt.Errorf("mpi: rank %d uplink clearing deadline: %w", cfg.Rank, err)
	}
	u := &Uplink{
		pc:         pc,
		epoch:      epoch,
		ch:         make(chan uplinkFrame, ring),
		writerDone: make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	go u.writer()
	go u.reader()
	return u, nil
}

// Now is this process's stamp clock: nanoseconds since the shared epoch.
func (u *Uplink) Now() time.Duration { return time.Since(u.epoch) }

// Offer enqueues one frame for asynchronous delivery. It never blocks:
// when the ring is full (or the connection has already failed) the
// frame is dropped and counted. The payload is not copied — callers
// hand over ownership.
func (u *Uplink) Offer(tag int, payload []byte) bool {
	if u.dead.Load() {
		u.drops.Add(1)
		return false
	}
	select {
	case u.ch <- uplinkFrame{tag: tag, payload: payload}:
		return true
	default:
		u.drops.Add(1)
		return false
	}
}

// Send writes one frame synchronously, bypassing the ring. Used for
// the final telemetry section, after the algorithm has finished and
// blocking no longer matters.
func (u *Uplink) Send(tag int, payload []byte) error {
	if u.dead.Load() {
		return fmt.Errorf("mpi: uplink connection already failed")
	}
	return u.pc.writeFrame(tag, u.Now(), payload)
}

// Drops reports how many frames Offer has discarded so far.
func (u *Uplink) Drops() int64 { return u.drops.Load() }

// Flush waits until the ring has drained (or the connection has died).
// Call before Send so the final section orders after all live frames.
func (u *Uplink) Flush() {
	for len(u.ch) > 0 && !u.dead.Load() {
		time.Sleep(time.Millisecond)
	}
}

// Close drains the ring, sends the bye frame carrying the final drop
// count, and tears the connection down. Idempotent; never blocks
// indefinitely (writes run under a short deadline).
func (u *Uplink) Close() {
	u.closed.Do(func() {
		close(u.ch)
		// The deadline also bounds a writer mid-Write against a stalled
		// parent: the blocked write times out, the writer marks the
		// uplink dead and drains, and Close returns instead of hanging.
		_ = u.pc.c.SetWriteDeadline(time.Now().Add(2 * time.Second))
		<-u.writerDone
		if !u.dead.Load() {
			_ = u.pc.c.SetWriteDeadline(time.Now().Add(2 * time.Second))
			e := NewEncoder(8)
			e.PutI64(u.drops.Load())
			_ = u.pc.writeFrame(uplinkTagBye, u.Now(), e.Bytes())
		}
		//dinfomap:close-ok bye frame (or a dead conn) already ended the stream
		u.pc.c.Close()
		<-u.readerDone
	})
}

// writer drains the ring onto the socket. On a write error it marks
// the uplink dead but keeps draining, so Offer backpressure never
// appears and Close never blocks on a stuck socket.
func (u *Uplink) writer() {
	defer close(u.writerDone)
	for f := range u.ch {
		if u.dead.Load() {
			continue
		}
		if err := u.pc.writeFrame(f.tag, u.Now(), f.payload); err != nil {
			u.dead.Store(true)
		}
	}
}

// reader answers the parent's clock pings: the ping payload comes back
// verbatim under the pong tag, and the frame header's sentAt stamp
// carries this process's clock at echo time — everything the parent
// needs for an RTT-midpoint offset sample. writeFrame's mutex
// serializes echoes with the writer goroutine.
func (u *Uplink) reader() {
	defer close(u.readerDone)
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(u.pc.c, hdr); err != nil {
			return
		}
		n := binary.LittleEndian.Uint64(hdr[0:])
		tag := int(int64(binary.LittleEndian.Uint64(hdr[8:])))
		if n > 4096 {
			return // not a sane control frame; stop echoing
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(u.pc.c, payload); err != nil {
			return
		}
		if tag != uplinkTagPing || u.dead.Load() {
			continue
		}
		if err := u.pc.writeFrame(uplinkTagPong, u.Now(), payload); err != nil {
			u.dead.Store(true)
		}
	}
}

// ClockSample is one ping/pong measurement of a child's clock as seen
// from the parent. Offset is (child clock − parent clock) estimated at
// the RTT midpoint; RTT is the round-trip time; At is the parent clock
// when the pong arrived. Both clocks count from the same launcher-
// chosen wall epoch, so offsets are small residuals (scheduling delay,
// wall-clock drift), not absolute time-of-day differences.
type ClockSample struct {
	Offset time.Duration
	RTT    time.Duration
	At     time.Duration
}

// UplinkHandler receives a connected child's telemetry on the parent
// side. Calls for one rank arrive from that rank's single Serve
// goroutine, in stream order; calls for different ranks are concurrent.
type UplinkHandler interface {
	// HandleSample delivers one clock sample for rank.
	HandleSample(rank int, s ClockSample)
	// HandleFrame delivers one data frame (UplinkTagEvent/Stats/
	// Section). sentAt is the child's send stamp, unaligned.
	HandleFrame(rank, tag int, sentAt time.Duration, payload []byte)
}

// UplinkPeer is the parent-process end of one child's uplink.
type UplinkPeer struct {
	pc    *peerConn
	rank  int
	size  int
	ver   string
	epoch time.Time

	drops atomic.Int64 // child-reported ring drops (from the bye frame)
}

// AcceptUplink handshakes a freshly accepted uplink connection and
// returns the peer. size <= 0 skips the world-size check; version ""
// skips the build check — mirroring the mesh handshake rules.
func AcceptUplink(conn net.Conn, size int, epoch time.Time, version string, timeout time.Duration) (*UplinkPeer, error) {
	if timeout <= 0 {
		timeout = DefaultConnectTimeout
	}
	if epoch.IsZero() {
		epoch = time.Now()
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("mpi: uplink accept deadline: %w", err)
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("mpi: reading uplink hello header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:])
	tag := int(int64(binary.LittleEndian.Uint64(hdr[8:])))
	if tag != uplinkTagHello || n > 4096 {
		return nil, &handshakeMismatch{fmt.Sprintf("bad uplink hello frame (tag=%d, len=%d)", tag, n)}
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, fmt.Errorf("mpi: reading uplink hello: %w", err)
	}
	d := NewDecoder(buf)
	if magic := d.U64(); magic != uplinkMagic {
		return nil, &handshakeMismatch{fmt.Sprintf("bad uplink magic %#x", magic)}
	}
	gotSize, rank := d.Int(), d.Int()
	ver := string(buf[len(buf)-d.Int():])
	if size > 0 && gotSize != size {
		return nil, &handshakeMismatch{fmt.Sprintf("uplink rank %d believes world size is %d, launcher has %d", rank, gotSize, size)}
	}
	if rank < 0 || (size > 0 && rank >= size) {
		return nil, &handshakeMismatch{fmt.Sprintf("uplink hello from out-of-range rank %d", rank)}
	}
	if version != "" && ver != "" && ver != version {
		return nil, &handshakeMismatch{fmt.Sprintf("uplink build mismatch: rank %d runs %q, launcher runs %q", rank, ver, version)}
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, fmt.Errorf("mpi: clearing uplink accept deadline: %w", err)
	}
	return &UplinkPeer{pc: &peerConn{c: conn}, rank: rank, size: gotSize, ver: ver, epoch: epoch}, nil
}

// Rank returns the child's rank id.
func (p *UplinkPeer) Rank() int { return p.rank }

// Version returns the child's reported build identity.
func (p *UplinkPeer) Version() string { return p.ver }

// Drops returns the child-reported ring drop count, valid after Serve
// has returned cleanly (it arrives on the bye frame).
func (p *UplinkPeer) Drops() int64 { return p.drops.Load() }

// Close tears the connection down; safe to call concurrently with
// Serve (it unblocks the read loop).
func (p *UplinkPeer) Close() {
	//dinfomap:close-ok either the bye frame already ended the stream or the caller is force-unwinding
	p.pc.c.Close()
}

func (p *UplinkPeer) now() time.Duration { return time.Since(p.epoch) }

// Serve runs this peer's read loop, dispatching frames to h, until the
// child says bye (nil) or the connection drops (the read error). A
// pinger goroutine measures the child's clock for the whole duration:
// an initial burst gives the estimator samples immediately, then a
// steady cadence (pingEvery; <= 0 means the default) tracks drift.
func (p *UplinkPeer) Serve(h UplinkHandler, pingEvery time.Duration) error {
	if pingEvery <= 0 {
		pingEvery = defaultUplinkPing
	}
	stop := make(chan struct{})
	defer close(stop)
	go p.pinger(stop, pingEvery)

	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(p.pc.c, hdr); err != nil {
			return fmt.Errorf("mpi: uplink rank %d: %w", p.rank, err)
		}
		n := binary.LittleEndian.Uint64(hdr[0:])
		tag := int(int64(binary.LittleEndian.Uint64(hdr[8:])))
		sentAt := time.Duration(int64(binary.LittleEndian.Uint64(hdr[16:])))
		if n > maxFrame {
			return fmt.Errorf("mpi: uplink rank %d: frame of %d bytes exceeds limit", p.rank, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(p.pc.c, payload); err != nil {
			return fmt.Errorf("mpi: uplink rank %d: %w", p.rank, err)
		}
		switch tag {
		case uplinkTagPong:
			if len(payload) != 16 {
				continue
			}
			d := NewDecoder(payload)
			_ = d.U64() // seq: unused beyond echo integrity
			t0 := time.Duration(d.I64())
			t1 := p.now()
			h.HandleSample(p.rank, ClockSample{
				Offset: sentAt - (t0+t1)/2,
				RTT:    t1 - t0,
				At:     t1,
			})
		case uplinkTagBye:
			if len(payload) == 8 {
				p.drops.Store(NewDecoder(payload).I64())
			}
			return nil
		default:
			h.HandleFrame(p.rank, tag, sentAt, payload)
		}
	}
}

// pinger sends clock pings until stop closes or a write fails. Writes
// share the peerConn mutex with nothing (the parent only ever writes
// pings on this connection), but go through writeFrame for uniformity.
func (p *UplinkPeer) pinger(stop <-chan struct{}, every time.Duration) {
	var seq uint64
	ping := func() bool {
		e := NewEncoder(16)
		e.PutU64(seq)
		seq++
		e.PutI64(int64(p.now()))
		return p.pc.writeFrame(uplinkTagPing, 0, e.Bytes()) == nil
	}
	for i := 0; i < uplinkPingBurst; i++ {
		if !ping() {
			return
		}
		select {
		case <-stop:
			return
		case <-time.After(uplinkBurstGap):
		}
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if !ping() {
				return
			}
		}
	}
}

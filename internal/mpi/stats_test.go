package mpi

import "testing"

func TestStatsSub(t *testing.T) {
	before := Stats{
		BytesSent: 100, BytesRecv: 50, MsgsSent: 10, MsgsRecv: 5,
		Collectives: 2, CollectiveBytes: 64, CollectiveMsgs: 4,
	}
	after := Stats{
		BytesSent: 250, BytesRecv: 80, MsgsSent: 13, MsgsRecv: 9,
		Collectives: 3, CollectiveBytes: 96, CollectiveMsgs: 6,
	}
	d := after.Sub(before)
	want := Stats{
		BytesSent: 150, BytesRecv: 30, MsgsSent: 3, MsgsRecv: 4,
		Collectives: 1, CollectiveBytes: 32, CollectiveMsgs: 2,
	}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
	// Sub then Add round-trips back to the later snapshot.
	sum := before
	sum.Add(d)
	if sum != after {
		t.Fatalf("before + delta = %+v, want %+v", sum, after)
	}
}

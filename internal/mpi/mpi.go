// Package mpi is an in-process message-passing runtime that plays the
// role MPI plays in the paper's C++ implementation. Each rank runs as a
// goroutine executing the same SPMD function; ranks communicate only
// through tagged point-to-point messages and collectives (Barrier, Bcast,
// Allreduce, Allgather, Alltoallv), never through shared memory.
//
// Every payload crosses the "network" as a []byte, so the per-rank byte
// and message counters are exact: the communication-volume results in the
// reproduction (Figures 7-8) measure real serialized traffic, not
// estimates. Collective costs are additionally modeled with a
// recursive-doubling term (log2 p messages per call) for the alpha-beta
// cost model in package trace.
//
// The runtime is deliberately synchronous and deterministic-friendly:
// sends are buffered (never block), receives match on (source, tag), and
// a watchdog converts deadlocks into panics with diagnostics instead of
// hangs.
package mpi

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// DeadlockTimeout is the default for how long a Recv or collective may
// block before the runtime declares a deadlock and panics. It is read
// once when a World is created; to lower it for a single run (as tests
// do) pass WithTimeout to Run instead of mutating this variable, which
// would race with concurrently running worlds.
var DeadlockTimeout = 120 * time.Second

// message is one point-to-point payload in flight. sentAt is the
// sender's monotonic stamp (world epoch relative), taken just before the
// message entered the inbox; Recv compares it against the receiver's own
// ask time to attribute any wait to a late sender or a late receiver.
type message struct {
	src, tag int
	data     []byte
	sentAt   time.Duration
}

// inbox is an unbounded mailbox with (src, tag) matching.
type inbox struct {
	mu      sync.Mutex
	queue   []message
	arrived chan struct{} // 1-buffered doorbell
}

func newInbox() *inbox {
	return &inbox{arrived: make(chan struct{}, 1)}
}

func (ib *inbox) put(m message) {
	ib.mu.Lock()
	ib.queue = append(ib.queue, m)
	ib.mu.Unlock()
	select {
	case ib.arrived <- struct{}{}:
	default:
	}
}

// take removes and returns the first message matching (src, tag);
// src == AnySource matches any sender. ok is false when nothing matches.
func (ib *inbox) take(src, tag int) (message, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for i, m := range ib.queue {
		if (src == AnySource || m.src == src) && m.tag == tag {
			// Shift the tail down and zero the vacated slot: a plain
			// append(queue[:i], queue[i+1:]...) would leave a second
			// reference to the last message in the backing array,
			// retaining its payload for the inbox's lifetime.
			n := len(ib.queue)
			copy(ib.queue[i:], ib.queue[i+1:])
			ib.queue[n-1] = message{}
			ib.queue = ib.queue[:n-1]
			return m, true
		}
	}
	return message{}, false
}

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// World owns the shared state of one simulated cluster run. It also
// doubles as the options bag for RunOpts: DialProc applies them to a
// detached World to pick up timeout/connect/recorder settings for the
// multi-process backend.
type World struct {
	size    int
	timeout time.Duration // deadlock watchdog; immutable after Run starts
	connect time.Duration // proc backend's dial+handshake budget (WithConnectTimeout)
	epoch   time.Time     // zero point of all message/barrier timestamps
	rec     *Recorder     // optional wait-state event recorder (may be nil)
	inboxes []*inbox
	barrier *barrier
	slots   [][]byte   // collective exchange slots, one per rank
	a2a     [][][]byte // alltoallv slots
	fail    failState
}

// now returns the world's monotonic clock: time since the epoch. All
// message stamps and barrier arrival/release times share it, so they
// are directly comparable across ranks (one process, one clock).
func (w *World) now() time.Duration { return time.Since(w.epoch) }

// RunOpt configures one Run before its ranks start.
type RunOpt func(*World)

// WithTimeout sets this world's deadlock timeout, overriding the
// package default DeadlockTimeout for this run only. d <= 0 keeps the
// default. It governs steady-state waits — Recv, Barrier, and the
// blocking phases of collectives — once the world is up; the proc
// backend's connection establishment is budgeted separately by
// WithConnectTimeout.
func WithTimeout(d time.Duration) RunOpt {
	return func(w *World) {
		if d > 0 {
			w.timeout = d
		}
	}
}

// DefaultConnectTimeout bounds the multi-process backend's dial,
// accept, and handshake phase. It is deliberately much shorter than
// DeadlockTimeout: a peer process that never comes up should fail the
// launch in seconds, not stall the mesh for the full deadlock window.
const DefaultConnectTimeout = 30 * time.Second

// WithConnectTimeout sets the proc backend's connection-establishment
// budget (dial retries, accepts, and handshakes all share it),
// overriding DefaultConnectTimeout. d <= 0 keeps the default. Once the
// mesh is up, WithTimeout's deadlock watchdog takes over — the two
// never overlap in time. The in-process goroutine backend has no
// connection phase, so this option is a documented no-op there.
func WithConnectTimeout(d time.Duration) RunOpt {
	return func(w *World) {
		if d > 0 {
			w.connect = d
		}
	}
}

func (w *World) poisonWith(err error) { w.fail.poisonWith(err) }

// Comm is one rank's endpoint into a world. Communication methods are
// not safe for concurrent use by multiple goroutines (like an MPI
// communicator handle), but Stats may be called from any goroutine —
// live observers snapshot a running rank's counters through it.
//
// Comm owns everything transport-independent — tags, kinds, traffic
// stats, wait-state classification, pooled receive storage — and moves
// bytes through its Transport, so the same rank code runs unmodified
// on the goroutine and proc backends.
type Comm struct {
	rank, size int
	t          Transport
	rec        *Recorder // optional wait-state event recorder (may be nil)
	// ss is the transport's slot-match stamper when recording is on and
	// the transport has one (the multi-process mesh): each collective's
	// per-source matches become recorded p2p events, which is what lets
	// the merged trace draw cross-process send-to-receive flow arrows.
	ss slotStamper

	// statsMu guards stats: the rank goroutine mutates the counters on
	// every operation while observers (status/metrics endpoints) take
	// snapshots concurrently.
	statsMu sync.Mutex
	stats   Stats
	// kind is the ambient attribution for collectives and for p2p tags
	// without kind bits; see SetKind. Only the rank goroutine touches it.
	kind Kind
	// pool is the reusable receive-side storage for collectives; their
	// results alias it and are valid until the next collective.
	pool commPool
	// sendBufs are the SendBuffers registered through NewSendBuffers;
	// the abort path invalidates them so a recovering caller cannot
	// exchange half-written payloads (see scrubOnFailure).
	sendBufs []*SendBuffers
	// gt is inline storage for the goroutine backend so Run does not
	// pay an extra allocation per rank to select it.
	gt goroutineTransport
}

// Stats counts one rank's traffic. Collective* fields use the
// recursive-doubling model: each collective costs ceil(log2 p) messages
// of the payload size. ByKind splits every counter by message kind;
// each increment lands in the totals and in exactly one kind bucket, so
// for every field the kind sum equals the total (Conserved). Stats is a
// comparable value type: snapshots copy.
type Stats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
	Collectives          int64
	CollectiveBytes      int64 // modeled: payload * ceil(log2 p) per call
	CollectiveMsgs       int64 // modeled: ceil(log2 p) per call

	// Wait-state counters (host wall-clock nanoseconds): where this rank
	// lost time blocked on communication, and where its peers lost time
	// waiting for it. Unlike the traffic counters these are measured, not
	// modeled, and are nondeterministic run to run.

	// RecvBlockedNs is time spent blocked in Recv because the matching
	// message had not been sent yet (late sender).
	RecvBlockedNs int64
	// RecvQueueNs is inbox residency of received messages: how long each
	// matched message sat queued before this rank asked for it (late
	// receiver — the peer's send was early, this rank was busy).
	RecvQueueNs int64
	// RecvsBlocked counts the receives that blocked on a late sender.
	RecvsBlocked int64
	// BarrierWaitNs is arrival-to-release skew summed over barrier and
	// collective synchronization points: time between this rank arriving
	// and the last rank releasing everyone.
	BarrierWaitNs int64
	// BarrierSyncs counts synchronization points entered (Barrier is one;
	// each blocking collective contributes its internal syncs).
	BarrierSyncs int64

	// ByKind is the per-kind breakdown, indexed by Kind.
	ByKind [NumKinds]KindStats
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.BytesSent += other.BytesSent
	s.BytesRecv += other.BytesRecv
	s.MsgsSent += other.MsgsSent
	s.MsgsRecv += other.MsgsRecv
	s.Collectives += other.Collectives
	s.CollectiveBytes += other.CollectiveBytes
	s.CollectiveMsgs += other.CollectiveMsgs
	s.RecvBlockedNs += other.RecvBlockedNs
	s.RecvQueueNs += other.RecvQueueNs
	s.RecvsBlocked += other.RecvsBlocked
	s.BarrierWaitNs += other.BarrierWaitNs
	s.BarrierSyncs += other.BarrierSyncs
	for k := range s.ByKind {
		s.ByKind[k].add(other.ByKind[k])
	}
}

// Sub returns the field-wise delta s - prev between two snapshots of
// the same rank's counters; telemetry uses it to attribute traffic to
// the phase between the snapshots. The per-kind buckets diff too, so a
// phase slice carries its own kind breakdown.
func (s Stats) Sub(prev Stats) Stats {
	out := Stats{
		BytesSent:       s.BytesSent - prev.BytesSent,
		BytesRecv:       s.BytesRecv - prev.BytesRecv,
		MsgsSent:        s.MsgsSent - prev.MsgsSent,
		MsgsRecv:        s.MsgsRecv - prev.MsgsRecv,
		Collectives:     s.Collectives - prev.Collectives,
		CollectiveBytes: s.CollectiveBytes - prev.CollectiveBytes,
		CollectiveMsgs:  s.CollectiveMsgs - prev.CollectiveMsgs,
		RecvBlockedNs:   s.RecvBlockedNs - prev.RecvBlockedNs,
		RecvQueueNs:     s.RecvQueueNs - prev.RecvQueueNs,
		RecvsBlocked:    s.RecvsBlocked - prev.RecvsBlocked,
		BarrierWaitNs:   s.BarrierWaitNs - prev.BarrierWaitNs,
		BarrierSyncs:    s.BarrierSyncs - prev.BarrierSyncs,
	}
	for k := range s.ByKind {
		out.ByKind[k] = s.ByKind[k].sub(prev.ByKind[k])
	}
	return out
}

// TotalBytes returns all bytes attributed to this rank (p2p + modeled
// collective traffic).
func (s Stats) TotalBytes() int64 {
	return s.BytesSent + s.BytesRecv + s.CollectiveBytes
}

// BlockedNs returns the nanoseconds this rank itself spent blocked on
// communication: late senders plus barrier/collective skew. Queue
// residency is excluded — it measures the peer's lateness relative to
// this rank, not time this rank lost.
func (s Stats) BlockedNs() int64 { return s.RecvBlockedNs + s.BarrierWaitNs }

// Rank returns this rank's id in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.size }

// Stats returns a snapshot of this rank's traffic counters. Unlike the
// communication methods it is safe to call from any goroutine, so live
// observers can sample a rank mid-run without racing its counters.
func (c *Comm) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// ResetStats zeroes the traffic counters (used to attribute traffic to
// phases).
func (c *Comm) ResetStats() {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	c.stats = Stats{}
}

// SetKind sets the ambient message kind and returns the previous one.
// Collectives (which carry no tag) and p2p messages whose tag has no
// kind bits are attributed to the ambient kind. The intended idiom
// brackets a protocol phase:
//
//	prev := c.SetKind(mpi.KindGhostUpdate)
//	defer c.SetKind(prev)
//
// Only the rank goroutine may call SetKind (same contract as the
// communication methods).
func (c *Comm) SetKind(k Kind) (prev Kind) {
	prev = c.kind
	if int(k) < NumKinds {
		c.kind = k
	}
	return prev
}

// kindForTag resolves a p2p tag to its traffic kind: the tag's packed
// kind bits when present, the ambient kind otherwise.
func (c *Comm) kindForTag(tag int) Kind {
	if k := KindOfTag(tag); k != KindOther {
		return k
	}
	return c.kind
}

// countSend attributes one outgoing p2p message to kind k.
func (c *Comm) countSend(k Kind, bytes int64) {
	c.statsMu.Lock()
	c.stats.MsgsSent++
	c.stats.BytesSent += bytes
	c.stats.ByKind[k].MsgsSent++
	c.stats.ByKind[k].BytesSent += bytes
	c.statsMu.Unlock()
}

// countRecv attributes one incoming p2p message to kind k, together
// with its wait-state classification (see ClassifyRecvWait).
func (c *Comm) countRecv(k Kind, bytes, blockedNs, queueNs int64, blocked bool) {
	c.statsMu.Lock()
	c.stats.MsgsRecv++
	c.stats.BytesRecv += bytes
	c.stats.RecvBlockedNs += blockedNs
	c.stats.RecvQueueNs += queueNs
	b := &c.stats.ByKind[k]
	b.MsgsRecv++
	b.BytesRecv += bytes
	b.RecvBlockedNs += blockedNs
	b.RecvQueueNs += queueNs
	if blocked {
		c.stats.RecvsBlocked++
		b.RecvsBlocked++
	}
	c.statsMu.Unlock()
}

// countBarrier attributes one synchronization point's wait to the
// ambient kind.
func (c *Comm) countBarrier(waitNs int64) {
	c.statsMu.Lock()
	c.stats.BarrierWaitNs += waitNs
	c.stats.BarrierSyncs++
	b := &c.stats.ByKind[c.kind]
	b.BarrierWaitNs += waitNs
	b.BarrierSyncs++
	c.statsMu.Unlock()
}

// countExchange attributes an alltoallv-style exchange (real p2p
// counters on both sides, no modeled collective term) to kind k.
func (c *Comm) countExchange(k Kind, msgsSent, bytesSent, msgsRecv, bytesRecv int64) {
	c.statsMu.Lock()
	c.stats.MsgsSent += msgsSent
	c.stats.BytesSent += bytesSent
	c.stats.MsgsRecv += msgsRecv
	c.stats.BytesRecv += bytesRecv
	b := &c.stats.ByKind[k]
	b.MsgsSent += msgsSent
	b.BytesSent += bytesSent
	b.MsgsRecv += msgsRecv
	b.BytesRecv += bytesRecv
	c.statsMu.Unlock()
}

// Run executes fn as an SPMD program on size ranks and returns each
// rank's final Stats. It panics (with the original message) if any rank
// panics; other ranks blocked in communication are woken and unwound.
// Options (e.g. WithTimeout) apply to this world only.
func Run(size int, fn func(c *Comm), opts ...RunOpt) []Stats {
	if size < 1 {
		panic("mpi: Run with size < 1")
	}
	w := &World{
		size:    size,
		timeout: DeadlockTimeout,
		connect: DefaultConnectTimeout,
		epoch:   time.Now(),
		inboxes: make([]*inbox, size),
		barrier: newBarrier(size),
		slots:   make([][]byte, size),
		a2a:     make([][][]byte, size),
	}
	w.fail.init()
	for _, opt := range opts {
		opt(w)
	}
	if w.rec != nil && w.rec.NumRanks() != size {
		panic(fmt.Sprintf("mpi: recorder sized for %d ranks, world has %d", w.rec.NumRanks(), size))
	}
	for i := range w.inboxes {
		w.inboxes[i] = newInbox()
	}
	stats := make([]Stats, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{rank: rank, size: size, rec: w.rec}
			c.gt = goroutineTransport{rank: rank, w: w}
			c.t = &c.gt
			defer func() {
				stats[rank] = c.Stats()
				if p := recover(); p != nil {
					w.poisonWith(fmt.Errorf("rank %d: %v", rank, p))
					c.scrubOnFailure()
				}
			}()
			fn(c)
		}(r)
	}
	wg.Wait()
	if err := w.fail.failure(); err != nil {
		panic(fmt.Sprintf("mpi: world failed: %v", err))
	}
	return stats
}

// RunRank executes fn as one rank of a distributed world whose other
// ranks live elsewhere — the multi-process entry point that Run is to
// the goroutine backend. rec optionally records wait-state events for
// this rank (nil disables recording; its epoch should match the
// transport's so events and journal spans share a time base).
//
// A panic in fn (including the poison/deadlock panics of the runtime
// itself) is recovered into the returned error after aborting the
// world, so every peer unwinds with the originating cause instead of
// hanging until its watchdog fires. On clean completion the transport's
// Finish runs a final synchronization before teardown, so a rank that
// finishes early cannot poison peers still mid-algorithm.
func RunRank(t Transport, rec *Recorder, fn func(c *Comm)) (Stats, error) {
	c := &Comm{rank: t.Rank(), size: t.Size(), rec: rec, t: t}
	if rec != nil {
		if ss, ok := t.(slotStamper); ok {
			ss.StampSlotMatches(true)
			c.ss = ss
		}
	}
	var err error
	func() {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("rank %d: %v", c.rank, p)
				c.scrubOnFailure()
				t.Abort(err)
			}
		}()
		fn(c)
		t.Finish()
	}()
	if err == nil {
		err = t.Err()
	}
	return c.Stats(), err
}

// Send delivers data to rank dst with the given tag. It never blocks
// (buffered semantics). The payload is copied, so the caller may reuse
// the slice.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", dst, c.size))
	}
	c.countSend(c.kindForTag(tag), int64(len(data)))
	c.t.Send(dst, tag, data)
}

// Recv blocks until a message with matching (src, tag) arrives and
// returns its payload and actual source. src may be AnySource.
//
// The elapsed time is split into wait-state components by comparing the
// message's send stamp against this rank's ask time (ClassifyRecvWait):
// a message sent after the ask charges blocked wait (late sender), one
// queued before the ask charges queue residency (late receiver).
func (c *Comm) Recv(src, tag int) (data []byte, from int) {
	start := c.t.Now()
	data, from, sentAt := c.t.Recv(src, tag)
	end := c.t.Now()
	k := c.kindForTag(tag)
	blockedNs, queueNs, blocked := ClassifyRecvWait(start, end, sentAt)
	c.countRecv(k, int64(len(data)), blockedNs, queueNs, blocked)
	if rec := c.rec; rec != nil {
		rec.AddP2P(c.rank, P2PEvent{
			Src: from, Tag: tag, Kind: k,
			Bytes:  int64(len(data)),
			SentAt: sentAt, RecvStart: start, RecvEnd: end,
		})
	}
	return data, from
}

// TryRecv returns the first queued message matching (src, tag), or
// ok=false immediately when none is pending — the drain-available
// primitive of the asynchronous sweep mode. A hit is accounted exactly
// like a blocking Recv that found its message already queued: no
// blocked wait (the caller never waited), queue residency charged from
// the sender's stamp. A miss costs nothing.
func (c *Comm) TryRecv(src, tag int) (data []byte, from int, ok bool) {
	start := c.t.Now()
	data, from, sentAt, ok := c.t.TryRecv(src, tag)
	if !ok {
		return nil, 0, false
	}
	k := c.kindForTag(tag)
	_, queueNs, _ := ClassifyRecvWait(start, start, sentAt)
	c.countRecv(k, int64(len(data)), 0, queueNs, false)
	if rec := c.rec; rec != nil {
		rec.AddP2P(c.rank, P2PEvent{
			Src: from, Tag: tag, Kind: k,
			Bytes:  int64(len(data)),
			SentAt: sentAt, RecvStart: start, RecvEnd: c.t.Now(),
		})
	}
	return data, from, true
}

// slotStamper is an optional transport capability: a transport with a
// real wire can stamp each slot collective's per-source matches
// (send stamp, receive window) so recorded runs get p2p events for
// collective traffic too — the raw material of the merged trace's
// cross-process flow arrows. Stamping stays off unless RunRank enables
// it, keeping the hot path free of it on unrecorded runs.
type slotStamper interface {
	StampSlotMatches(on bool)
	// TakeSlotMatches returns the matches stamped since the last call.
	// The returned slice is reused by the next collective; the caller
	// consumes it before issuing one.
	TakeSlotMatches() []P2PEvent
}

// recordSlotMatches drains the transport's stamped matches of the
// collective that just completed into the recorder, attributed to the
// ambient kind. No-op unless RunRank found both a recorder and a
// stamping transport.
func (c *Comm) recordSlotMatches() {
	if c.ss == nil {
		return
	}
	for _, ev := range c.ss.TakeSlotMatches() {
		ev.Kind = c.kind
		c.rec.AddP2P(c.rank, ev)
	}
}

// collectiveCost charges the modeled recursive-doubling cost for one
// collective moving payload bytes, attributed to the ambient kind.
func (c *Comm) collectiveCost(payload int) {
	steps := int64(math.Ceil(math.Log2(float64(c.size))))
	if c.size == 1 {
		steps = 0
	}
	bytes := steps * int64(payload)
	c.statsMu.Lock()
	c.stats.Collectives++
	c.stats.CollectiveMsgs += steps
	c.stats.CollectiveBytes += bytes
	b := &c.stats.ByKind[c.kind]
	b.Collectives++
	b.CollectiveMsgs += steps
	b.CollectiveBytes += bytes
	c.statsMu.Unlock()
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.collectiveCost(0)
	arrive := c.t.Now()
	c.t.Sync()
	c.noteSync(arrive)
}

// noteSync charges one completed synchronization point that was entered
// at arrive: the arrival-to-release skew goes to BarrierWaitNs under
// the ambient kind. The last rank to arrive releases everyone, so a
// rank's skew here is exactly the time it lost waiting for its slowest
// peer. Collectives call it around each of their blocking phases so one
// logical collective contributes exactly two synchronization points on
// every backend.
func (c *Comm) noteSync(arrive time.Duration) {
	release := c.t.Now()
	c.countBarrier(int64(release - arrive))
	if rec := c.rec; rec != nil {
		rec.AddBarrier(c.rank, BarrierEvent{Arrive: arrive, Release: release})
	}
}

// barrier is a reusable generation barrier.
type barrier struct {
	mu    sync.Mutex
	size  int
	count int
	gen   chan struct{}
}

func newBarrier(size int) *barrier {
	return &barrier{size: size, gen: make(chan struct{})}
}

func (b *barrier) wait(fail *failState, rank int, timeout time.Duration) {
	b.mu.Lock()
	ch := b.gen
	b.count++
	arrived := b.count
	if b.count == b.size {
		b.count = 0
		b.gen = make(chan struct{})
		close(ch)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	began := time.Now()
	deadline := time.NewTimer(timeout)
	defer stopTimer(deadline)
	select {
	case <-ch:
	case <-fail.poison:
		panic(fmt.Sprintf("mpi: rank %d: world poisoned while waiting in Barrier after %v: cause: %v",
			rank, time.Since(began).Round(time.Microsecond), fail.failure()))
	case <-deadline.C:
		panic(fmt.Sprintf("mpi: rank %d deadlocked in Barrier after %v (%d of %d ranks had arrived)",
			rank, time.Since(began).Round(time.Millisecond), arrived, b.size))
	}
}

package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder builds binary message payloads (little-endian, fixed-width).
// All distributed-algorithm messages in this repository are serialized
// through Encoder/Decoder so byte counters reflect real wire sizes.
type Encoder struct{ buf []byte }

// NewEncoder returns an Encoder, optionally with capacity hint n.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// Bytes returns the encoded payload. The slice aliases internal storage.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current payload size in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse without reallocating.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutU64 appends a uint64.
func (e *Encoder) PutU64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// PutI64 appends an int64.
func (e *Encoder) PutI64(v int64) { e.PutU64(uint64(v)) }

// PutInt appends an int as 64 bits.
func (e *Encoder) PutInt(v int) { e.PutU64(uint64(int64(v))) }

// PutF64 appends a float64.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutRaw appends pre-encoded bytes verbatim, with no length prefix.
// The caller owns the framing: the bytes must themselves be a sequence
// of records the receiver knows how to delimit. It exists so a payload
// section built once can be stamped into many per-destination packets
// without re-encoding record by record.
func (e *Encoder) PutRaw(b []byte) { e.buf = append(e.buf, b...) }

// PutBool appends a bool as one byte.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Decoder reads payloads produced by Encoder. Reads past the end panic
// (message truncation is a programming error inside the runtime).
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps a payload for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Reset points the decoder at a new payload, reusing the Decoder value
// so steady-state decode loops allocate nothing.
func (d *Decoder) Reset(b []byte) {
	d.buf = b
	d.off = 0
}

// Remaining returns how many unread bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) need(n int) {
	if d.off+n > len(d.buf) {
		panic(fmt.Sprintf("mpi: decode past end of %d-byte message (offset %d, need %d)",
			len(d.buf), d.off, n))
	}
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	d.need(8)
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as 64 bits.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a one-byte bool.
func (d *Decoder) Bool() bool {
	d.need(1)
	v := d.buf[d.off] != 0
	d.off++
	return v
}

// The multi-process transport: each rank is an OS process, peers are
// connected in a full mesh over TCP or unix sockets, and every payload
// crosses as a length-prefixed frame in the same fixed-width
// little-endian format as the codec (codec.go) that produces the
// payloads themselves.
//
// Mesh establishment is deterministic: every rank listens on its own
// address and dials every lower-numbered rank, retrying with backoff
// until the connect budget (WithConnectTimeout) runs out; each
// connection is verified by a handshake carrying the world size, both
// rank ids, and the build version, so a mis-wired or mis-built mesh
// fails the launch instead of corrupting a run. Collective traffic
// rides the same frames under sequence-numbered control tags in the
// negative tag space, which user tags (TagFor packs kinds into
// non-negative ints) can never collide with.
//
// Failure semantics mirror the goroutine backend's poison protocol
// across process boundaries: an aborting rank broadcasts a poison frame
// carrying the originating cause before closing its sockets, and a
// peer that dies without one (kill -9, crash) is detected as a
// connection loss by its neighbors' readers — either way every healthy
// rank unwinds with a cause instead of hanging until the watchdog.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Frame layout: a fixed 24-byte header — payload length (u64), tag
// (i64), sender's epoch-relative send stamp in nanoseconds (i64) —
// followed by the payload bytes. Little-endian fixed-width, like every
// codec-encoded payload it carries.
const frameHeader = 24

// maxFrame bounds a single payload; a length beyond it means a corrupt
// or hostile stream and poisons the world instead of allocating.
const maxFrame = 1 << 31

// Control tags live in the negative tag space. Barrier tokens and
// collective frames are sequence-numbered (SPMD order makes the
// sequences identical on every rank), so early arrivals from a rank
// that ran ahead queue harmlessly in the inbox until matched.
const (
	tagPoison = -1         // payload: the originating error text
	tagHello  = -2         // handshake frame (never enters the inbox)
	tagBar    = -(1 << 30) // barrier round r of generation g: tagBar - g*64 - r
	tagGather = -(2 << 30) // allgather seq s: tagGather - s
	tagScat   = -(3 << 30) // alltoallv seq s: tagScat - s
	tagBcast  = -(4 << 30) // bcast seq s: tagBcast - s
)

// handshakeMagic identifies a dinfomap mesh peer; the low bytes spell
// "dnfomesh".
const handshakeMagic = 0x64_6e_66_6f_6d_65_73_68

// ProcConfig wires one rank of a multi-process world.
type ProcConfig struct {
	Rank int // this rank's id
	Size int // world size

	// Listener is this rank's accept endpoint, already bound (the
	// launcher binds all addresses before spawning so children never
	// race on bind). The transport owns it and closes it once the mesh
	// is complete.
	Listener net.Listener
	// Addrs[r] is rank r's listen address; len(Addrs) must equal Size.
	Addrs []string
	// Network is the dial network: "tcp" or "unix".
	Network string
	// Epoch is the shared zero point of all message stamps, chosen by
	// the launcher and passed to every rank (as a wall-clock instant,
	// so cross-process stamps are comparable). Zero means "now".
	Epoch time.Time
	// Version is this build's identity, exchanged and verified during
	// the handshake so a mesh of mismatched binaries fails the launch.
	// Empty disables the check.
	Version string
}

// peerConn is one established connection to a peer rank. The write
// side stages header+payload into one reusable buffer so each frame is
// a single Write (readers on the other end never see torn headers from
// interleaved writers; wmu serializes the rank goroutine with the
// abort path's poison broadcast).
type peerConn struct {
	c    net.Conn
	wmu  sync.Mutex
	wbuf []byte
}

func (pc *peerConn) writeFrame(tag int, sentAt time.Duration, payload []byte) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	need := frameHeader + len(payload)
	if cap(pc.wbuf) < need {
		pc.wbuf = make([]byte, need)
	}
	b := pc.wbuf[:need]
	binary.LittleEndian.PutUint64(b[0:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(b[8:], uint64(int64(tag)))
	binary.LittleEndian.PutUint64(b[16:], uint64(int64(sentAt)))
	copy(b[frameHeader:], payload)
	_, err := pc.c.Write(b)
	return err
}

// ProcTransport is the multi-process Transport: this process's endpoint
// into a world of one-process-per-rank peers. Create one with DialProc
// and run the rank with RunRank.
type ProcTransport struct {
	rank, size int
	epoch      time.Time
	timeout    time.Duration
	network    string

	fail  failState
	ib    *inbox
	conns []*peerConn // indexed by peer rank; nil at self

	barGen  int      // barrier generation counter (SPMD-consistent)
	collSeq int      // collective sequence counter (SPMD-consistent)
	views   [][]byte // per-rank views returned by the Publish methods

	tstats procCounters

	// stamps collects per-source match records of the slot collectives
	// when a recorded run enables it (see StampSlotMatches); only the
	// rank goroutine touches it.
	stamps struct {
		on  bool
		buf []P2PEvent
	}

	done    atomic.Bool // set on clean Finish: subsequent EOFs are benign
	closed  sync.Once
	readers sync.WaitGroup
}

// procCounters are the transport's wire-level counters. Atomics
// throughout: the rank goroutine counts sends, each per-peer reader
// counts its own receives, and a telemetry snapshot (Telemetry) may be
// taken from yet another goroutine mid-run.
type procCounters struct {
	connectRetries atomic.Int64
	handshakeNs    atomic.Int64
	poisonsSent    atomic.Int64
	poisonsRecv    atomic.Int64
	peers          []peerCounters
}

type peerCounters struct {
	framesSent, bytesSent atomic.Int64
	framesRecv, bytesRecv atomic.Int64
}

// PeerTraffic is one peer's share of a rank's wire traffic: whole
// frames (header included), as put on and taken off the socket. The
// frame counts are deterministic for a given run — every message,
// barrier token, and collective frame is one frame — while byte counts
// include the fixed per-frame header.
type PeerTraffic struct {
	FramesSent int64 `json:"frames_sent"`
	BytesSent  int64 `json:"bytes_sent"`
	FramesRecv int64 `json:"frames_recv"`
	BytesRecv  int64 `json:"bytes_recv"`
}

// TransportStats is a snapshot of one rank's transport-level counters:
// per-peer frame/byte traffic, mesh-establishment cost, and failure
// signals. Measured-time fields carry "wall" in their JSON names so
// report diffing classifies them as nondeterministic. Handshake frames
// themselves are not counted; the counters cover post-handshake
// traffic.
type TransportStats struct {
	Network string `json:"network"`
	// ConnectRetries counts dial attempts beyond the first across all
	// peers during mesh establishment.
	ConnectRetries int64 `json:"connect_retries"`
	// HandshakeWallNs is the full mesh-establishment time: every peer
	// dialed/accepted and handshake-verified.
	HandshakeWallNs int64 `json:"handshake_wall_ns"`
	PoisonsSent     int64 `json:"poisons_sent"`
	PoisonsRecv     int64 `json:"poisons_recv"`

	FramesSent int64 `json:"frames_sent"`
	BytesSent  int64 `json:"bytes_sent"`
	FramesRecv int64 `json:"frames_recv"`
	BytesRecv  int64 `json:"bytes_recv"`
	// Peers is indexed by peer rank; the self entry stays zero
	// (self-sends never touch a socket).
	Peers []PeerTraffic `json:"peers,omitempty"`
}

// Telemetry snapshots the transport's wire-level counters. Safe to call
// at any time, including mid-run from another goroutine.
func (t *ProcTransport) Telemetry() *TransportStats {
	ts := &TransportStats{
		Network:         t.network,
		ConnectRetries:  t.tstats.connectRetries.Load(),
		HandshakeWallNs: t.tstats.handshakeNs.Load(),
		PoisonsSent:     t.tstats.poisonsSent.Load(),
		PoisonsRecv:     t.tstats.poisonsRecv.Load(),
		Peers:           make([]PeerTraffic, len(t.tstats.peers)),
	}
	for p := range t.tstats.peers {
		pc := &t.tstats.peers[p]
		pt := PeerTraffic{
			FramesSent: pc.framesSent.Load(),
			BytesSent:  pc.bytesSent.Load(),
			FramesRecv: pc.framesRecv.Load(),
			BytesRecv:  pc.bytesRecv.Load(),
		}
		ts.Peers[p] = pt
		ts.FramesSent += pt.FramesSent
		ts.BytesSent += pt.BytesSent
		ts.FramesRecv += pt.FramesRecv
		ts.BytesRecv += pt.BytesRecv
	}
	return ts
}

// DialProc establishes this rank's corner of the full mesh — listening
// for higher-numbered ranks, dialing lower-numbered ones with
// retry/backoff, and handshaking every connection — and returns the
// ready transport. The whole phase shares one budget
// (WithConnectTimeout; DefaultConnectTimeout if unset): a peer that
// never appears fails the launch with an error, it does not consume the
// much longer deadlock window (WithTimeout), which only starts once the
// mesh is up.
func DialProc(cfg ProcConfig, opts ...RunOpt) (*ProcTransport, error) {
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("mpi: DialProc rank %d outside world of %d", cfg.Rank, cfg.Size)
	}
	if len(cfg.Addrs) != cfg.Size {
		return nil, fmt.Errorf("mpi: DialProc with %d addrs for %d ranks", len(cfg.Addrs), cfg.Size)
	}
	// RunOpts are shared with Run; a detached World is their options bag.
	bag := &World{timeout: DeadlockTimeout, connect: DefaultConnectTimeout}
	for _, opt := range opts {
		opt(bag)
	}
	epoch := cfg.Epoch
	if epoch.IsZero() {
		epoch = time.Now()
	}
	t := &ProcTransport{
		rank:    cfg.Rank,
		size:    cfg.Size,
		epoch:   epoch,
		timeout: bag.timeout,
		network: cfg.Network,
		ib:      newInbox(),
		conns:   make([]*peerConn, cfg.Size),
		views:   make([][]byte, cfg.Size),
	}
	t.tstats.peers = make([]peerCounters, cfg.Size)
	t.fail.init()
	meshStart := time.Now()
	deadline := meshStart.Add(bag.connect)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { // accept ranks above us
		defer wg.Done()
		errs[0] = t.acceptPeers(cfg, deadline)
	}()
	wg.Add(1)
	go func() { // dial ranks below us
		defer wg.Done()
		errs[1] = t.dialPeers(cfg, deadline)
	}()
	wg.Wait()
	if cfg.Listener != nil {
		//dinfomap:close-ok mesh is complete; nothing was ever written through the listener
		cfg.Listener.Close()
	}
	if err := errors.Join(errs[0], errs[1]); err != nil {
		t.closeConns()
		return nil, fmt.Errorf("mpi: rank %d mesh setup: %w", cfg.Rank, err)
	}
	t.tstats.handshakeNs.Store(time.Since(meshStart).Nanoseconds())
	for peer, pc := range t.conns {
		if pc == nil {
			continue
		}
		t.readers.Add(1)
		go t.reader(peer, pc)
	}
	return t, nil
}

func (t *ProcTransport) acceptPeers(cfg ProcConfig, deadline time.Time) error {
	want := cfg.Size - 1 - cfg.Rank // every rank above us dials in
	if want == 0 {
		return nil
	}
	l := cfg.Listener
	if l == nil {
		return fmt.Errorf("no listener but %d peers must dial in", want)
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := l.(deadliner); ok {
		if err := d.SetDeadline(deadline); err != nil {
			return fmt.Errorf("listener deadline: %w", err)
		}
	}
	for got := 0; got < want; got++ {
		conn, err := l.Accept()
		if err != nil {
			return fmt.Errorf("accepting peer %d of %d: %w", got+1, want, err)
		}
		peer, err := t.handshake(conn, cfg, AnySource, deadline)
		if err != nil {
			//dinfomap:close-ok handshake already failed; the close error cannot add anything
			conn.Close()
			return err
		}
		if peer <= cfg.Rank || peer >= cfg.Size || t.conns[peer] != nil {
			//dinfomap:close-ok rejecting a duplicate/out-of-range peer; its close error is irrelevant
			conn.Close()
			return fmt.Errorf("unexpected hello from rank %d", peer)
		}
		t.conns[peer] = &peerConn{c: conn}
	}
	return nil
}

func (t *ProcTransport) dialPeers(cfg ProcConfig, deadline time.Time) error {
	for peer := 0; peer < cfg.Rank; peer++ {
		backoff := 10 * time.Millisecond
		for {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return fmt.Errorf("connect timeout dialing rank %d at %s", peer, cfg.Addrs[peer])
			}
			conn, err := net.DialTimeout(cfg.Network, cfg.Addrs[peer], remaining)
			if err == nil {
				got, herr := t.handshake(conn, cfg, peer, deadline)
				if herr == nil && got == peer {
					t.conns[peer] = &peerConn{c: conn}
					break
				}
				//dinfomap:close-ok handshake already failed; the close error cannot add anything
				conn.Close()
				if herr == nil {
					herr = fmt.Errorf("dialed rank %d but peer claims rank %d", peer, got)
				}
				// An I/O error mid-handshake can be the peer still
				// coming up (listener bound, process not accepting
				// yet on some platforms); verification mismatches are
				// configuration bugs and fail immediately.
				var mismatch *handshakeMismatch
				if errors.As(herr, &mismatch) {
					return herr
				}
				err = herr
			}
			// Exponential backoff while the peer process starts up.
			t.tstats.connectRetries.Add(1)
			time.Sleep(backoff)
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("connect timeout dialing rank %d at %s: last error: %v", peer, cfg.Addrs[peer], err)
			}
		}
	}
	return nil
}

// handshakeMismatch is a non-retryable handshake failure: the peer is
// reachable but belongs to a different world, rank, or build.
type handshakeMismatch struct{ msg string }

func (e *handshakeMismatch) Error() string { return e.msg }

// handshake exchanges and verifies hello frames on a fresh connection.
// wantPeer is the expected remote rank, or AnySource on the accept side
// (the hello tells us who dialed). Both sides send first and then read
// — the frames cross on the wire, so there is no lock-step ordering to
// deadlock on.
func (t *ProcTransport) handshake(conn net.Conn, cfg ProcConfig, wantPeer int, deadline time.Time) (int, error) {
	if err := conn.SetDeadline(deadline); err != nil {
		return 0, fmt.Errorf("handshake deadline: %w", err)
	}
	e := NewEncoder(64)
	e.PutU64(handshakeMagic)
	e.PutInt(cfg.Size)
	e.PutInt(cfg.Rank)
	e.PutInt(len(cfg.Version))
	hello := append(e.Bytes(), cfg.Version...)
	pc := &peerConn{c: conn}
	if err := pc.writeFrame(tagHello, 0, hello); err != nil {
		return 0, fmt.Errorf("sending hello: %w", err)
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, fmt.Errorf("reading hello header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:])
	tag := int(int64(binary.LittleEndian.Uint64(hdr[8:])))
	if tag != tagHello || n > 4096 {
		return 0, &handshakeMismatch{fmt.Sprintf("bad hello frame (tag=%d, len=%d): not a dinfomap mesh peer?", tag, n)}
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return 0, fmt.Errorf("reading hello: %w", err)
	}
	d := NewDecoder(buf)
	if magic := d.U64(); magic != handshakeMagic {
		return 0, &handshakeMismatch{fmt.Sprintf("bad hello magic %#x", magic)}
	}
	size, peer := d.Int(), d.Int()
	version := string(buf[len(buf)-d.Int():])
	if size != cfg.Size {
		return 0, &handshakeMismatch{fmt.Sprintf("rank %d believes world size is %d, we have %d", peer, size, cfg.Size)}
	}
	if wantPeer != AnySource && peer != wantPeer {
		return 0, &handshakeMismatch{fmt.Sprintf("dialed rank %d but peer claims rank %d", wantPeer, peer)}
	}
	if cfg.Version != "" && version != "" && version != cfg.Version {
		return 0, &handshakeMismatch{fmt.Sprintf("build mismatch: rank %d runs %q, we run %q", peer, version, cfg.Version)}
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return 0, fmt.Errorf("clearing handshake deadline: %w", err)
	}
	return peer, nil
}

// reader drains one peer connection into the inbox for the life of the
// world. A poison frame carries a failed peer's cause; a bare
// connection loss (crash, kill) becomes one. After a clean Finish both
// are expected and ignored.
func (t *ProcTransport) reader(peer int, pc *peerConn) {
	defer t.readers.Done()
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(pc.c, hdr); err != nil {
			t.readFailed(peer, err)
			return
		}
		n := binary.LittleEndian.Uint64(hdr[0:])
		tag := int(int64(binary.LittleEndian.Uint64(hdr[8:])))
		sentAt := time.Duration(int64(binary.LittleEndian.Uint64(hdr[16:])))
		if n > maxFrame {
			t.readFailed(peer, fmt.Errorf("frame of %d bytes exceeds limit", n))
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(pc.c, data); err != nil {
			t.readFailed(peer, err)
			return
		}
		pcnt := &t.tstats.peers[peer]
		pcnt.framesRecv.Add(1)
		pcnt.bytesRecv.Add(int64(frameHeader) + int64(n))
		if tag == tagPoison {
			t.tstats.poisonsRecv.Add(1)
			t.fail.poisonWith(fmt.Errorf("poisoned by rank %d: %s", peer, data))
			return
		}
		t.ib.put(message{src: peer, tag: tag, data: data, sentAt: sentAt})
	}
}

func (t *ProcTransport) readFailed(peer int, err error) {
	if t.done.Load() {
		return // clean teardown: peers hanging up is the expected end
	}
	t.fail.poisonWith(fmt.Errorf("rank %d: connection to rank %d lost: %v", t.rank, peer, err))
}

func (t *ProcTransport) Rank() int          { return t.rank }
func (t *ProcTransport) Size() int          { return t.size }
func (t *ProcTransport) Now() time.Duration { return time.Since(t.epoch) }

// send writes one frame to peer dst, poisoning the world (and
// unwinding this rank) if the write fails — buffered semantics hold
// because the kernel socket buffer and the peer's reader goroutine
// absorb the payload without the peer's rank code receiving.
func (t *ProcTransport) send(dst, tag int, data []byte) {
	if dst == t.rank {
		// Self-sends stay local (the goroutine backend does the same
		// through its own inbox).
		cp := make([]byte, len(data))
		copy(cp, data)
		t.ib.put(message{src: t.rank, tag: tag, data: cp, sentAt: t.Now()})
		return
	}
	if err := t.conns[dst].writeFrame(tag, t.Now(), data); err != nil {
		// A failed write is usually the symptom of a peer's abort —
		// its sockets close a moment before its poison frame is
		// processed on our side. Give the real cause a moment to
		// arrive so the unwind names the disease, not the broken pipe.
		cause := t.awaitCause(fmt.Errorf("rank %d: send to rank %d failed: %v", t.rank, dst, err))
		panic(fmt.Sprintf("mpi: rank %d: world poisoned in Send(dst=%d, tag=%d): cause: %v", t.rank, dst, tag, cause))
	}
	pcnt := &t.tstats.peers[dst]
	pcnt.framesSent.Add(1)
	pcnt.bytesSent.Add(int64(frameHeader + len(data)))
}

// awaitCause resolves the failure to blame for a secondary symptom
// (like a failed write): wait briefly for the world's first recorded
// failure — a poison frame or connection-loss report in flight on
// another connection — and fall back to the symptom itself if nothing
// arrives.
func (t *ProcTransport) awaitCause(fallback error) error {
	grace := time.NewTimer(200 * time.Millisecond)
	defer stopTimer(grace)
	select {
	case <-t.fail.poison:
	case <-grace.C:
	}
	t.fail.poisonWith(fallback)
	return t.fail.failure()
}

func (t *ProcTransport) Send(dst, tag int, data []byte) { t.send(dst, tag, data) }

// StampSlotMatches turns per-source match stamping on or off for the
// slot collectives (the slotStamper capability; see Comm). Called once
// before the rank program starts.
func (t *ProcTransport) StampSlotMatches(on bool) { t.stamps.on = on }

// TakeSlotMatches returns the matches stamped since the last call and
// reclaims the backing storage for the next collective.
func (t *ProcTransport) TakeSlotMatches() []P2PEvent {
	s := t.stamps.buf
	t.stamps.buf = t.stamps.buf[:0]
	return s
}

// collectMatch is recvMatch plus an optional match stamp: the message's
// wire-carried send stamp and this rank's receive window, the raw
// material of cross-process flow arrows.
func (t *ProcTransport) collectMatch(src, tag int, op string) message {
	if !t.stamps.on {
		return t.recvMatch(src, tag, op)
	}
	start := t.Now()
	m := t.recvMatch(src, tag, op)
	t.stamps.buf = append(t.stamps.buf, P2PEvent{
		Src: src, Tag: tag,
		Bytes:  int64(len(m.data)),
		SentAt: m.sentAt, RecvStart: start, RecvEnd: t.Now(),
	})
	return m
}

// recvMatch blocks until the inbox holds a message matching (src, tag).
// Same lazy-timer loop as the goroutine backend, with op naming the
// blocking operation in failure diagnostics.
func (t *ProcTransport) recvMatch(src, tag int, op string) message {
	var deadline *time.Timer
	var began time.Duration
	for {
		if m, ok := t.ib.take(src, tag); ok {
			if deadline != nil {
				stopTimer(deadline)
			}
			return m
		}
		if deadline == nil {
			deadline = time.NewTimer(t.timeout)
			began = t.Now()
		}
		select {
		case <-t.ib.arrived:
		case <-t.fail.poison:
			poisonRecvPanic(t.rank, op, src, tag, t.Now()-began, t.fail.failure(), t.ib)
		case <-deadline.C:
			deadlockRecvPanic(t.rank, op, src, tag, t.Now()-began, t.ib)
		}
	}
}

func (t *ProcTransport) Recv(src, tag int) ([]byte, int, time.Duration) {
	m := t.recvMatch(src, tag, "Recv")
	return m.data, m.src, m.sentAt
}

// TryRecv is the non-blocking matcher: one pass over the shared inbox
// the per-peer readers feed, no timer, no wait. Frames already read off
// the wire drain even from a poisoned world; only an empty match on a
// dead world unwinds with the poison cause, mirroring recvMatch.
func (t *ProcTransport) TryRecv(src, tag int) ([]byte, int, time.Duration, bool) {
	if m, ok := t.ib.take(src, tag); ok {
		return m.data, m.src, m.sentAt, true
	}
	select {
	case <-t.fail.poison:
		poisonRecvPanic(t.rank, "TryRecv", src, tag, 0, t.fail.failure(), t.ib)
	default:
	}
	return nil, 0, 0, false
}

// Sync is a dissemination barrier: ceil(log2 p) rounds, each sending a
// generation-and-round-tagged token to rank+2^r and waiting for the
// token from rank-2^r. When the rounds complete, every rank is known to
// have entered this generation.
func (t *ProcTransport) Sync() {
	gen := t.barGen
	t.barGen++
	round := 0
	for k := 1; k < t.size; k <<= 1 {
		dst := (t.rank + k) % t.size
		src := (t.rank - k + t.size) % t.size
		tag := tagBar - gen*64 - round
		t.send(dst, tag, nil)
		t.recvMatch(src, tag, "Barrier")
		round++
	}
}

// GatherSlots is allgather as p2p: send our contribution to every peer
// under this collective's sequence tag, then collect every peer's in
// rank order. Completing the collection is itself the synchronization —
// a rank cannot pass until all have published.
func (t *ProcTransport) GatherSlots(data []byte) [][]byte {
	seq := t.collSeq
	t.collSeq++
	tag := tagGather - seq
	for dst := 0; dst < t.size; dst++ {
		if dst != t.rank {
			t.send(dst, tag, data)
		}
	}
	t.views[t.rank] = data
	for src := 0; src < t.size; src++ {
		if src == t.rank {
			continue
		}
		m := t.collectMatch(src, tag, "Allgather")
		t.views[src] = m.data
	}
	return t.views
}

func (t *ProcTransport) ScatterSlots(bufs [][]byte) [][]byte {
	seq := t.collSeq
	t.collSeq++
	tag := tagScat - seq
	for dst := 0; dst < t.size; dst++ {
		if dst != t.rank {
			t.send(dst, tag, bufs[dst])
		}
	}
	t.views[t.rank] = bufs[t.rank]
	for src := 0; src < t.size; src++ {
		if src == t.rank {
			continue
		}
		m := t.collectMatch(src, tag, "Alltoallv")
		t.views[src] = m.data
	}
	return t.views
}

func (t *ProcTransport) BcastSlot(root int, data []byte) []byte {
	seq := t.collSeq
	t.collSeq++
	tag := tagBcast - seq
	if t.rank == root {
		for dst := 0; dst < t.size; dst++ {
			if dst != root {
				t.send(dst, tag, data)
			}
		}
		return data
	}
	m := t.collectMatch(root, tag, "Bcast")
	return m.data
}

// ReleaseSlots is free on this backend: every collective's frames carry
// a unique sequence tag, so a rank that runs ahead and republishes
// cannot overwrite anything — early frames just queue in the inbox.
// The view slices themselves are reused by the next Publish, which is
// exactly the pooling contract Comm already exposes to its callers.
func (t *ProcTransport) ReleaseSlots() {}

// Abort poisons the world with err and broadcasts it to every peer as a
// poison frame, so remote ranks unwind with the originating cause
// instead of a bare connection loss. Writes are best-effort under a
// short deadline — a peer that is already gone cannot be allowed to
// block the unwind.
func (t *ProcTransport) Abort(err error) {
	t.fail.poisonWith(err)
	t.done.Store(true) // our own readers' EOFs are expected from here on
	msg := []byte(err.Error())
	for peer, pc := range t.conns {
		if pc == nil {
			continue
		}
		_ = pc.c.SetWriteDeadline(time.Now().Add(2 * time.Second))
		if werr := pc.writeFrame(tagPoison, 0, msg); werr == nil {
			t.tstats.poisonsSent.Add(1)
			pcnt := &t.tstats.peers[peer]
			pcnt.framesSent.Add(1)
			pcnt.bytesSent.Add(int64(frameHeader + len(msg)))
		}
	}
	t.closeConns()
}

func (t *ProcTransport) Err() error { return t.fail.failure() }

// Finish completes this rank cleanly: a final barrier proves every
// peer has also finished the algorithm (so closing our sockets cannot
// poison a rank still mid-sweep), then the mesh is torn down. It
// panics — like any blocked operation — if the world was poisoned
// instead.
//
// done is set before the barrier, not after: once fn has returned, the
// only frames this rank still needs are the final-barrier tokens (and
// any poison), and TCP ordering delivers a peer's tokens before its
// close — so a hangup observed from here on is a peer that finished
// and left, not a failure. The narrow cost: a peer that crashes after
// its algorithm but before its final barrier leaves us to the deadlock
// watchdog (or to a poison frame from a third rank that saw the crash
// while still working) rather than an instant connection-loss poison.
func (t *ProcTransport) Finish() {
	t.done.Store(true)
	t.Sync()
	t.closeConns()
}

func (t *ProcTransport) closeConns() {
	t.closed.Do(func() {
		for _, pc := range t.conns {
			if pc != nil {
				//dinfomap:close-ok mesh teardown; the sockets carried their last frame already
				pc.c.Close()
			}
		}
	})
}

// ListenRanks binds one listener per rank before any rank process
// starts, so children never race on bind and every address is known up
// front. network is "tcp" (loopback, kernel-assigned ports) or "unix"
// (sockets named rank<i>.sock under dir — keep dir short, unix socket
// paths are limited to ~100 bytes). The caller owns the listeners: the
// launcher passes each to its rank's process and closes its own copies.
func ListenRanks(network string, size int, dir string) ([]net.Listener, []string, error) {
	listeners := make([]net.Listener, 0, size)
	addrs := make([]string, 0, size)
	closeAll := func() {
		for _, l := range listeners {
			//dinfomap:close-ok unwinding a failed setup; the bind error is already being returned
			l.Close()
		}
	}
	for r := 0; r < size; r++ {
		var addr string
		switch network {
		case "tcp":
			addr = "127.0.0.1:0"
		case "unix":
			addr = fmt.Sprintf("%s/rank%d.sock", dir, r)
		default:
			closeAll()
			return nil, nil, fmt.Errorf("mpi: ListenRanks: unsupported network %q", network)
		}
		l, err := net.Listen(network, addr)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("mpi: ListenRanks: rank %d: %w", r, err)
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	return listeners, addrs, nil
}

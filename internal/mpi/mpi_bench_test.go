package mpi

import (
	"fmt"
	"testing"
)

func BenchmarkSendRecvPingPong(b *testing.B) {
	payload := make([]byte, 1024)
	b.ReportAllocs()
	Run(2, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, payload)
				c.Recv(1, 1)
			} else {
				c.Recv(0, 0)
				c.Send(0, 1, payload)
			}
		}
	})
}

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{2, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			Run(p, func(c *Comm) {
				for i := 0; i < b.N; i++ {
					c.Barrier()
				}
			})
		})
	}
}

func BenchmarkAllreduceF64(b *testing.B) {
	for _, p := range []int{2, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			Run(p, func(c *Comm) {
				for i := 0; i < b.N; i++ {
					c.AllreduceF64(float64(i), OpSum)
				}
			})
		})
	}
}

func BenchmarkAlltoallv(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			const p = 4
			Run(p, func(c *Comm) {
				bufs := make([][]byte, p)
				for i := range bufs {
					bufs[i] = make([]byte, size)
				}
				for i := 0; i < b.N; i++ {
					c.Alltoallv(bufs)
				}
			})
		})
	}
}

func BenchmarkEncoderDecoder(b *testing.B) {
	b.ReportAllocs()
	e := NewEncoder(4096)
	for i := 0; i < b.N; i++ {
		e.Reset()
		for j := 0; j < 64; j++ {
			e.PutInt(j)
			e.PutF64(float64(j) * 1.5)
		}
		d := NewDecoder(e.Bytes())
		for d.Remaining() > 0 {
			_ = d.Int()
			_ = d.F64()
		}
	}
}

// Multi-process fault injection: real OS processes, a real SIGKILL.
// The conformance suite exercises the proc transport's failure paths
// in-process (where -race can see them); this test is the end-to-end
// check that an actual rank process dying mid-sweep poisons the
// survivors cleanly — every survivor unwinds with the lost peer named
// in its error, promptly, not via the deadlock watchdog.
package mpi

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

const (
	helperEnv     = "DINFOMAP_MPI_HELPER"
	helperRankEnv = "DINFOMAP_MPI_RANK"
	helperSizeEnv = "DINFOMAP_MPI_SIZE"
	helperDirEnv  = "DINFOMAP_MPI_DIR"
	helperModeEnv = "DINFOMAP_MPI_MODE" // "sweep" (default) or "asyncdrain"
)

// TestMain reroutes re-executions of the test binary into the helper
// rank program before the test framework parses anything.
func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		helperRankMain()
		return
	}
	os.Exit(m.Run())
}

// helperRankMain is one rank of the fault-injection world: bind this
// rank's socket, dial the mesh, then sweep collectives until poisoned.
// Ranks print marker lines the parent test parses; a clean poison is
// the expected outcome and exits 0.
func helperRankMain() {
	rank, _ := strconv.Atoi(os.Getenv(helperRankEnv))
	size, _ := strconv.Atoi(os.Getenv(helperSizeEnv))
	dir := os.Getenv(helperDirEnv)
	addrs := make([]string, size)
	for r := range addrs {
		addrs[r] = filepath.Join(dir, fmt.Sprintf("rank%d.sock", r))
	}
	// Each rank binds its own listener; DialProc's retry loop absorbs
	// peers whose listeners come up later.
	ln, err := net.Listen("unix", addrs[rank])
	if err != nil {
		fmt.Println("HELPER-SETUP-ERR:", err)
		os.Exit(3)
	}
	tr, err := DialProc(ProcConfig{
		Rank: rank, Size: size,
		Listener: ln, Addrs: addrs, Network: "unix",
		Epoch: time.Now(),
	}, WithConnectTimeout(10*time.Second), WithTimeout(20*time.Second))
	if err != nil {
		fmt.Println("HELPER-SETUP-ERR:", err)
		os.Exit(3)
	}
	body := func(c *Comm) {
		for i := 0; ; i++ {
			c.AllreduceF64(float64(c.Rank()*i), OpSum)
			if i == 10 {
				// Round 10 completing means every rank contributed to
				// it: the whole world is provably mid-sweep. The parent
				// kills the victim on this marker.
				fmt.Println("HELPER-MIDSWEEP")
			}
			time.Sleep(time.Millisecond)
		}
	}
	if os.Getenv(helperModeEnv) == "asyncdrain" {
		// The bounded-staleness epoch pattern instead of collectives:
		// eager per-epoch sends to every peer, opportunistic TryRecv
		// drains, and a blocking gate two epochs back — the loop shape
		// of core's clusterAsync. The kill lands while survivors sit in
		// TryRecv/Recv on the victim, not in a collective.
		body = func(c *Comm) {
			payload := []byte{0xA5}
			seen := make([]int, c.Size())
			for r := range seen {
				seen[r] = -1
			}
			for e := 0; ; e++ {
				for dst := 0; dst < c.Size(); dst++ {
					if dst != c.Rank() {
						c.Send(dst, TagFor(KindModuleInfo, e), payload)
					}
				}
				for src := 0; src < c.Size(); src++ {
					if src == c.Rank() {
						continue
					}
					for {
						_, _, ok := c.TryRecv(src, TagFor(KindModuleInfo, seen[src]+1))
						if !ok {
							break
						}
						seen[src]++
					}
					// The staleness gate: epoch e may proceed only once
					// every peer's epoch e-2 has arrived.
					for seen[src] < e-2 {
						c.Recv(src, TagFor(KindModuleInfo, seen[src]+1))
						seen[src]++
					}
				}
				if e == 10 {
					// Gate e=10 passing means every peer reached epoch 8+:
					// the whole world is provably mid-drain.
					fmt.Println("HELPER-MIDSWEEP")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	_, err = RunRank(tr, nil, body)
	if err != nil {
		fmt.Println("HELPER-POISONED:", err)
		os.Exit(0)
	}
	// The sweep loop is infinite; finishing it means the test premise
	// broke.
	fmt.Println("HELPER-DONE")
	os.Exit(3)
}

// lockedBuffer is a bytes.Buffer safe for the exec stderr copier and
// the marker-scanner goroutine to share.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) contains(s string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.Contains(b.buf.Bytes(), []byte(s))
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestProcRankProcessKilledMidSweep SIGKILLs one rank process while
// the world sweeps collectives and requires every survivor to unwind
// promptly with a poison error naming the lost peer — connection-loss
// detection, not the 20s deadlock watchdog.
func TestProcRankProcessKilledMidSweep(t *testing.T) {
	testKilledRankPoison(t, "sweep")
}

// TestProcRankProcessKilledMidAsyncDrain is the same kill, landed
// while the survivors run the bounded-staleness epoch loop — eager
// sends, opportunistic TryRecv drains, and a blocking staleness gate
// on specific peers. A victim dying between epochs must poison the
// survivors out of their point-to-point waits just as cleanly as out
// of a collective.
func TestProcRankProcessKilledMidAsyncDrain(t *testing.T) {
	testKilledRankPoison(t, "asyncdrain")
}

func testKilledRankPoison(t *testing.T, mode string) {
	const size, victim = 4, 2
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := shortTempDir(t)

	cmds := make([]*exec.Cmd, size)
	outs := make([]*lockedBuffer, size)
	midsweep := make(chan struct{})
	for r := 0; r < size; r++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			helperEnv+"=1",
			fmt.Sprintf("%s=%d", helperRankEnv, r),
			fmt.Sprintf("%s=%d", helperSizeEnv, size),
			helperDirEnv+"="+dir,
			helperModeEnv+"="+mode,
		)
		buf := &lockedBuffer{}
		if r == victim {
			// Watch the victim's stdout for the mid-sweep marker.
			pr, pw, err := os.Pipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stdout = pw
			go func() {
				b := make([]byte, 4096)
				for {
					n, err := pr.Read(b)
					//dinfomap:close-ok marker scan only; short writes cannot happen on a bytes buffer
					buf.Write(b[:n])
					if buf.contains("HELPER-MIDSWEEP") {
						close(midsweep)
						break
					}
					if err != nil {
						break
					}
				}
				//dinfomap:close-ok drained marker pipe; victim is about to be killed anyway
				pr.Close()
			}()
			t.Cleanup(func() {
				//dinfomap:close-ok parent's write end; the child held its own dup
				pw.Close()
			})
		} else {
			cmd.Stdout = buf
		}
		cmd.Stderr = buf
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting rank %d: %v", r, err)
		}
		cmds[r] = cmd
		outs[r] = buf
		t.Cleanup(func() {
			//dinfomap:close-ok teardown backstop; normally already reaped by Wait
			cmd.Process.Kill()
			//dinfomap:close-ok reaping the backstop kill
			cmd.Wait()
		})
	}

	select {
	case <-midsweep:
	case <-time.After(30 * time.Second):
		t.Fatalf("world never reached mid-sweep; victim output:\n%s", outs[victim])
	}
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatalf("killing victim: %v", err)
	}
	//dinfomap:close-ok reaping the deliberately killed victim; its exit error is the point
	cmds[victim].Wait()

	// Every survivor must exit cleanly (code 0 = poison recognized) and
	// name the lost peer. The 15s bound proves connection-loss poison:
	// the deadlock watchdog would need the full 20s rank timeout.
	killedAt := time.Now()
	for r := 0; r < size; r++ {
		if r == victim {
			continue
		}
		done := make(chan error, 1)
		go func(c *exec.Cmd) { done <- c.Wait() }(cmds[r])
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("rank %d exited uncleanly: %v\noutput:\n%s", r, err, outs[r])
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("rank %d still running %v after the kill; poison did not propagate\noutput:\n%s",
				r, time.Since(killedAt), outs[r])
		}
		out := outs[r].String()
		if !strings.Contains(out, "HELPER-POISONED:") {
			t.Errorf("rank %d did not report a poisoned world:\n%s", r, out)
		}
		want := fmt.Sprintf("connection to rank %d lost", victim)
		if !strings.Contains(out, want) {
			t.Errorf("rank %d error does not name the lost peer (want %q):\n%s", r, want, out)
		}
	}
}

package mpi

import (
	"sync"
	"testing"
)

func TestTagForKindRoundTrip(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		for _, tag := range []int{0, 1, 7, 1<<kindShift - 1} {
			packed := TagFor(k, tag)
			if got := KindOfTag(packed); got != k && !(k == KindOther && got == KindOther) {
				t.Fatalf("KindOfTag(TagFor(%v, %d)) = %v", k, tag, got)
			}
		}
	}
	// Plain small tags (no kind bits) classify as KindOther.
	for _, tag := range []int{0, 1, 42, 99, 1<<kindShift - 1} {
		if got := KindOfTag(tag); got != KindOther {
			t.Fatalf("KindOfTag(%d) = %v, want KindOther", tag, got)
		}
	}
	// Out-of-range kind bits fall back to KindOther instead of indexing
	// past ByKind.
	if got := KindOfTag(NumKinds << kindShift); got != KindOther {
		t.Fatalf("KindOfTag(out of range) = %v, want KindOther", got)
	}
	if got := KindOfTag(-1); got != KindOther {
		t.Fatalf("KindOfTag(-1) = %v, want KindOther", got)
	}
}

func TestKindNamesStable(t *testing.T) {
	names := KindNames()
	if len(names) != NumKinds {
		t.Fatalf("KindNames has %d entries, want %d", len(names), NumKinds)
	}
	seen := map[string]bool{}
	for k, n := range names {
		if n == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		if seen[n] {
			t.Fatalf("duplicate kind name %q", n)
		}
		seen[n] = true
		if Kind(k).String() != n {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, Kind(k).String(), n)
		}
	}
	if KindOther.String() != "other" {
		t.Fatalf("zero kind is %q, want other", KindOther.String())
	}
}

// TestKindConservation is the per-kind conservation property test: on a
// multi-rank run mixing tagged p2p, ambient-kind p2p, collectives under
// several ambient kinds, and alltoallv exchanges, every rank's kind
// buckets must sum to its aggregate totals on every field.
func TestKindConservation(t *testing.T) {
	const p = 4
	stats := Run(p, func(c *Comm) {
		me := c.Rank()
		next := (me + 1) % p
		prev := (me + p - 1) % p

		// Tag-derived kinds.
		c.Send(next, TagFor(KindGhostUpdate, 1), make([]byte, 16+me))
		c.Recv(prev, TagFor(KindGhostUpdate, 1))

		// Ambient-kind p2p (plain tag, kind from SetKind).
		restore := c.SetKind(KindModuleInfo)
		c.Send(next, 2, make([]byte, 33))
		c.Recv(prev, 2)
		c.SetKind(restore)

		// Collectives under different ambient kinds.
		k := c.SetKind(KindCollective)
		c.Barrier()
		c.AllreduceI64(int64(me), OpSum)
		c.SetKind(KindModulePartial)
		bufs := make([][]byte, p)
		for dst := range bufs {
			if dst != me {
				bufs[dst] = make([]byte, 8*(dst+1))
			}
		}
		c.Alltoallv(bufs)
		c.SetKind(KindAssignment)
		c.AllgatherBytes(make([]byte, 24))
		c.SetKind(k)

		// Untagged traffic lands in KindOther.
		c.Send(next, 3, make([]byte, 5))
		c.Recv(prev, 3)
	})

	for r, s := range stats {
		if !s.Conserved() {
			t.Errorf("rank %d: kind buckets do not sum to totals:\nsums   %+v\ntotals %+v",
				r, s.KindSums(), s)
		}
		// Spot-check attribution: the tagged p2p went to ghost_update,
		// the ambient p2p to module_info, the alltoallv to
		// module_partial, and the plain-tag p2p to other.
		if got := s.ByKind[KindGhostUpdate].MsgsSent; got != 1 {
			t.Errorf("rank %d: ghost_update MsgsSent = %d, want 1", r, got)
		}
		if got := s.ByKind[KindModuleInfo].BytesSent; got != 33 {
			t.Errorf("rank %d: module_info BytesSent = %d, want 33", r, got)
		}
		if got := s.ByKind[KindModulePartial].MsgsSent; got != 3 {
			t.Errorf("rank %d: module_partial MsgsSent = %d, want 3", r, got)
		}
		if got := s.ByKind[KindCollective].Collectives; got != 2 {
			t.Errorf("rank %d: collective Collectives = %d, want 2 (barrier+allreduce)", r, got)
		}
		if got := s.ByKind[KindAssignment].Collectives; got != 1 {
			t.Errorf("rank %d: assignment Collectives = %d, want 1", r, got)
		}
		if got := s.ByKind[KindOther].BytesSent; got != 5 {
			t.Errorf("rank %d: other BytesSent = %d, want 5", r, got)
		}
	}
}

// TestStatsSnapshotConcurrent locks in the Comm.Stats data-race fix:
// observers snapshot a rank's counters while the rank is actively
// communicating. Run under -race this fails on any unsynchronized
// counter access; in all modes every snapshot must be conserved (a torn
// read would break the kind-sum invariant).
func TestStatsSnapshotConcurrent(t *testing.T) {
	const p = 2
	const rounds = 500
	comms := make(chan *Comm, p)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Observer: hammer Stats() on both ranks mid-run.
		seen := 0
		for c := range comms {
			for i := 0; i < 2*rounds; i++ {
				s := c.Stats()
				if !s.Conserved() {
					t.Errorf("torn snapshot: %+v", s)
					return
				}
			}
			seen++
		}
		if seen != p {
			t.Errorf("observer saw %d comms, want %d", seen, p)
		}
	}()
	Run(p, func(c *Comm) {
		comms <- c
		peer := (c.Rank() + 1) % p
		c.SetKind(KindGhostUpdate)
		for i := 0; i < rounds; i++ {
			c.Send(peer, TagFor(KindModuleInfo, i%16), make([]byte, 64))
			c.Recv(peer, TagFor(KindModuleInfo, i%16))
			c.AllreduceI64(1, OpSum)
		}
	})
	close(comms)
	wg.Wait()
}

func TestStatsSubByKind(t *testing.T) {
	var before, after Stats
	before.ByKind[KindModuleInfo] = KindStats{BytesSent: 10, MsgsSent: 1}
	before.BytesSent, before.MsgsSent = 10, 1
	after.ByKind[KindModuleInfo] = KindStats{BytesSent: 25, MsgsSent: 2}
	after.ByKind[KindGhostUpdate] = KindStats{BytesRecv: 7, MsgsRecv: 1}
	after.BytesSent, after.MsgsSent = 25, 2
	after.BytesRecv, after.MsgsRecv = 7, 1

	d := after.Sub(before)
	if got := d.ByKind[KindModuleInfo]; got != (KindStats{BytesSent: 15, MsgsSent: 1}) {
		t.Fatalf("module_info delta = %+v", got)
	}
	if got := d.ByKind[KindGhostUpdate]; got != (KindStats{BytesRecv: 7, MsgsRecv: 1}) {
		t.Fatalf("ghost_update delta = %+v", got)
	}
	if !d.Conserved() {
		t.Fatalf("delta not conserved: %+v", d)
	}
	// Sub then Add round-trips, per-kind buckets included.
	sum := before
	sum.Add(d)
	if sum != after {
		t.Fatalf("before + delta = %+v, want %+v", sum, after)
	}
}

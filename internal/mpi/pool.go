package mpi

// SendBuffers is a reusable set of per-destination encoders for
// alltoallv-style exchanges. The old idiom allocated a fresh
// []*Encoder (plus one Encoder per active destination) for every
// exchange round; a SendBuffers is created once per communicator or
// level and reused, so steady-state rounds allocate nothing:
//
//	sb.Reset()
//	sb.For(dst).PutInt(v)   // lazily marks dst active this round
//	recv := c.Alltoallv(sb.Bufs())
//
// Like the Comm it feeds, a SendBuffers may only be used by its rank's
// goroutine.
type SendBuffers struct {
	encs []*Encoder
	used []bool
	bufs [][]byte
}

// NewSendBuffers returns a SendBuffers for a p-rank world.
func NewSendBuffers(p int) *SendBuffers {
	return &SendBuffers{
		encs: make([]*Encoder, p),
		used: make([]bool, p),
		bufs: make([][]byte, p),
	}
}

// Reset starts a new exchange round: every destination becomes
// inactive and its encoder is reset on first For.
func (s *SendBuffers) Reset() {
	for i := range s.used {
		s.used[i] = false
	}
}

// For returns the encoder accumulating this round's payload for dst,
// creating (first ever use) or resetting (first use this round) it as
// needed.
func (s *SendBuffers) For(dst int) *Encoder {
	e := s.encs[dst]
	if e == nil {
		e = NewEncoder(256)
		s.encs[dst] = e
	}
	if !s.used[dst] {
		s.used[dst] = true
		e.Reset()
	}
	return e
}

// Bufs returns the per-destination payloads of the current round,
// shaped for Comm.Alltoallv: nil for destinations without one. The
// returned slice and its payloads alias the pool and stay valid until
// the next Reset.
func (s *SendBuffers) Bufs() [][]byte {
	for i, e := range s.encs {
		if s.used[i] {
			s.bufs[i] = e.Bytes()
		} else {
			s.bufs[i] = nil
		}
	}
	return s.bufs
}

// commPool holds a Comm's reusable receive-side storage. Collectives
// copy incoming payloads into slabs here instead of fresh allocations,
// which is why their results are only valid until the next collective
// on the same Comm. Only the rank goroutine touches the pool (same
// contract as the communication methods), so no locking is needed.
type commPool struct {
	pub     []byte    // outgoing publish buffer (scalar/vector reduces)
	a2aOut  [][]byte  // Alltoallv result headers
	a2aSlab []byte    // Alltoallv payload slab backing a2aOut
	agOut   [][]byte  // allgather result headers
	agSlab  []byte    // allgather payload slab backing agOut
	sumOut  []float64 // AllreduceSumF64s result
}

// pubBuf returns the pooled n-byte publish buffer, growing it if
// needed. The previous contents are not preserved.
func (c *Comm) pubBuf(n int) []byte {
	if cap(c.pool.pub) < n {
		c.pool.pub = make([]byte, n)
	}
	return c.pool.pub[:n]
}

// grow returns b resized to length n, reusing its capacity when
// possible. The previous contents are not preserved.
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

package mpi

// SendBuffers is a reusable set of per-destination encoders for
// alltoallv-style exchanges. The old idiom allocated a fresh
// []*Encoder (plus one Encoder per active destination) for every
// exchange round; a SendBuffers is created once per communicator or
// level and reused, so steady-state rounds allocate nothing:
//
//	sb.Reset()
//	sb.For(dst).PutInt(v)   // lazily marks dst active this round
//	recv := c.Alltoallv(sb.Bufs())
//
// Like the Comm it feeds, a SendBuffers may only be used by its rank's
// goroutine.
type SendBuffers struct {
	encs []*Encoder
	used []bool
	bufs [][]byte
	// stale marks the buffers as invalidated by a world failure: an
	// abort can land mid-round, leaving encoders half-written, so For
	// and Bufs refuse to serve until a Reset starts a fresh round.
	stale bool
}

// NewSendBuffers returns a SendBuffers for a p-rank world. It is not
// registered with any Comm, so a world failure does not invalidate it;
// prefer Comm.NewSendBuffers, which does.
func NewSendBuffers(p int) *SendBuffers {
	return &SendBuffers{
		encs: make([]*Encoder, p),
		used: make([]bool, p),
		bufs: make([][]byte, p),
	}
}

// NewSendBuffers returns a SendBuffers sized for this communicator's
// world and registers it with the Comm: if the world is poisoned, the
// abort path invalidates it (see scrubOnFailure) so a recovering caller
// cannot exchange the half-written payloads of the aborted round.
func (c *Comm) NewSendBuffers() *SendBuffers {
	sb := NewSendBuffers(c.size)
	if c.sendBufs == nil {
		// Sized for one SendBuffers per merge level; a run deep enough
		// to spill just regrows.
		c.sendBufs = make([]*SendBuffers, 0, 8)
	}
	c.sendBufs = append(c.sendBufs, sb)
	return sb
}

// Reset starts a new exchange round: every destination becomes
// inactive and its encoder is reset on first For. Reset also clears the
// stale mark set by a world failure — a fresh round starts from fresh
// payloads, so the invalidated contents can never be exchanged.
func (s *SendBuffers) Reset() {
	s.stale = false
	for i := range s.used {
		s.used[i] = false
	}
}

// For returns the encoder accumulating this round's payload for dst,
// creating (first ever use) or resetting (first use this round) it as
// needed.
func (s *SendBuffers) For(dst int) *Encoder {
	if s.stale {
		panic("mpi: SendBuffers used after its world failed; Reset starts a fresh round")
	}
	e := s.encs[dst]
	if e == nil {
		e = NewEncoder(256)
		s.encs[dst] = e
	}
	if !s.used[dst] {
		s.used[dst] = true
		e.Reset()
	}
	return e
}

// Bufs returns the per-destination payloads of the current round,
// shaped for Comm.Alltoallv: nil for destinations without one. The
// returned slice and its payloads alias the pool and stay valid until
// the next Reset.
func (s *SendBuffers) Bufs() [][]byte {
	if s.stale {
		panic("mpi: SendBuffers used after its world failed; Reset starts a fresh round")
	}
	for i, e := range s.encs {
		if s.used[i] {
			s.bufs[i] = e.Bytes()
		} else {
			s.bufs[i] = nil
		}
	}
	return s.bufs
}

// commPool holds a Comm's reusable receive-side storage. Collectives
// copy incoming payloads into slabs here instead of fresh allocations,
// which is why their results are only valid until the next collective
// on the same Comm. Only the rank goroutine touches the pool (same
// contract as the communication methods), so no locking is needed.
//
// Error path: when the world is poisoned, the collective that was in
// flight never completed, so the slabs may be half-written — a mix of
// this round's and the previous round's bytes. The abort path
// (scrubOnFailure) therefore zeroes the slabs and drops the result
// headers before the rank unwinds: a caller that recovers above the
// runtime and still holds an aliased result sees zeros, never a
// torn payload. The bufalias analyzer enforces the happy-path lifetime
// (results die at the next collective); the scrub closes the same
// contract over the failure path, where "the next collective" never
// comes.
type commPool struct {
	pub     []byte    // outgoing publish buffer (scalar/vector reduces)
	a2aOut  [][]byte  // Alltoallv result headers
	a2aSlab []byte    // Alltoallv payload slab backing a2aOut
	agOut   [][]byte  // allgather result headers
	agSlab  []byte    // allgather payload slab backing agOut
	sumOut  []float64 // AllreduceSumF64s result
}

// pubBuf returns the pooled n-byte publish buffer, growing it if
// needed. The previous contents are not preserved.
func (c *Comm) pubBuf(n int) []byte {
	if cap(c.pool.pub) < n {
		c.pool.pub = make([]byte, n)
	}
	return c.pool.pub[:n]
}

// grow returns b resized to length n, reusing its capacity when
// possible. The previous contents are not preserved.
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// scrub invalidates the pool after a world failure: slabs are zeroed
// over their full capacity and result headers dropped, so any collective
// result still aliased by a recovering caller reads as zeros instead of
// a half-written exchange. Capacity is kept — a retry on a fresh world
// reuses the storage.
func (p *commPool) scrub() {
	clearBytes(p.pub[:cap(p.pub)])
	clearBytes(p.a2aSlab[:cap(p.a2aSlab)])
	clearBytes(p.agSlab[:cap(p.agSlab)])
	for i := range p.a2aOut {
		p.a2aOut[i] = nil
	}
	for i := range p.agOut {
		p.agOut[i] = nil
	}
	for i := range p.sumOut[:cap(p.sumOut)] {
		p.sumOut[i] = 0
	}
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// scrubOnFailure is the pooled-storage half of the abort path: it runs
// while the rank unwinds from a poison/deadlock panic, after which the
// Comm must not be used for communication again. Registered SendBuffers
// are marked stale (their round was cut mid-write) and the receive-side
// pool is zeroed.
func (c *Comm) scrubOnFailure() {
	c.pool.scrub()
	for _, sb := range c.sendBufs {
		sb.stale = true
	}
}

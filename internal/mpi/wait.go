// Wait-state recording: the raw timing events behind cross-rank
// bottleneck analysis (package obs builds the superstep DAG, critical
// path, and lost-time attribution from them).
//
// Stats already answers "how long did this rank wait"; the Recorder
// keeps the individual events — every matched receive with its send
// stamp and every barrier arrival/release — so an analyzer can answer
// "waiting on whom": draw matched send->recv flows, find the last
// arriver of each synchronization point, and walk the straggler chain
// that bounds wall clock.
package mpi

import "time"

// ClassifyRecvWait splits one receive's timing into wait-state
// components. recvStart is when the receiver asked, recvEnd when the
// match completed, sentAt the sender's stamp; all on one clock.
//
//   - Receiver asked first (sentAt >= recvStart): the whole elapsed
//     time is blocked wait — the sender was late.
//   - Message was already queued (sentAt < recvStart): the residency
//     before the ask is queue time — the receiver was late.
//
// Exactly one component is nonzero per receive, so the two buckets
// partition all receive-side wait.
func ClassifyRecvWait(recvStart, recvEnd, sentAt time.Duration) (blockedNs, queueNs int64, blocked bool) {
	if sentAt >= recvStart {
		return int64(recvEnd - recvStart), 0, true
	}
	return 0, int64(recvStart - sentAt), false
}

// P2PEvent is one matched point-to-point receive as seen by the
// receiver, with enough timing to reconstruct the send->recv edge.
// Times are world-epoch relative (Recorder.Epoch).
type P2PEvent struct {
	Src   int   // sending rank
	Tag   int   // wire tag (kind bits included)
	Kind  Kind  // resolved traffic kind
	Bytes int64 // payload size

	SentAt    time.Duration // sender's stamp
	RecvStart time.Duration // when the receiver asked
	RecvEnd   time.Duration // when the match completed
}

// Blocked reports whether this receive blocked on a late sender.
func (e P2PEvent) Blocked() bool { return e.SentAt >= e.RecvStart }

// BarrierEvent is one rank's passage through one synchronization point:
// when it arrived and when the last arriver released everyone. Ranks
// pass synchronization points in identical order (the SPMD schedule is
// the same on every rank), so the i-th BarrierEvent of every rank
// belongs to the same logical barrier generation.
type BarrierEvent struct {
	Arrive  time.Duration
	Release time.Duration
}

// Wait returns the arrival-to-release skew.
func (e BarrierEvent) Wait() time.Duration { return e.Release - e.Arrive }

// Recorder collects per-rank wait-state events for one Run. Each rank
// appends only to its own slot (no locking, same single-writer
// discipline as Run's stats slice); read the events only after Run has
// returned. A Recorder serves one Run.
type Recorder struct {
	epoch time.Time
	p2p   [][]P2PEvent     // indexed by receiving rank
	bars  [][]BarrierEvent // indexed by rank, in sync order
}

// NewRecorder returns a Recorder for a world of the given rank count.
// epoch anchors all timestamps; pass the journal's epoch so recorder
// events and journal spans share a time base (a zero epoch means "now").
func NewRecorder(ranks int, epoch time.Time) *Recorder {
	if epoch.IsZero() {
		epoch = time.Now()
	}
	return &Recorder{
		epoch: epoch,
		p2p:   make([][]P2PEvent, ranks),
		bars:  make([][]BarrierEvent, ranks),
	}
}

// Epoch returns the zero point of all recorded timestamps.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// NumRanks returns the rank count the recorder was sized for.
func (r *Recorder) NumRanks() int { return len(r.p2p) }

// P2P returns rank's recorded receives, in receive order. The slice is
// the recorder's own; treat it as read-only.
func (r *Recorder) P2P(rank int) []P2PEvent { return r.p2p[rank] }

// Barriers returns rank's synchronization passages, in sync order.
func (r *Recorder) Barriers(rank int) []BarrierEvent { return r.bars[rank] }

// AddP2P appends a receive event to rank's log. The runtime calls it
// from the rank's own goroutine; tests use it to craft scenarios.
func (r *Recorder) AddP2P(rank int, ev P2PEvent) {
	r.p2p[rank] = append(r.p2p[rank], ev)
}

// AddBarrier appends a synchronization passage to rank's log.
func (r *Recorder) AddBarrier(rank int, ev BarrierEvent) {
	r.bars[rank] = append(r.bars[rank], ev)
}

// WithRecorder attaches rec to the run: every matched receive and every
// synchronization passage is recorded, and the world's clock is aligned
// to rec's epoch so recorded times compare directly with journal spans.
// Run panics if rec's rank count does not match the world size. A nil
// rec leaves recording off (the default; recording appends per-rank
// slices and is kept out of benchmarked paths).
func WithRecorder(rec *Recorder) RunOpt {
	return func(w *World) {
		if rec == nil {
			return
		}
		w.rec = rec
		w.epoch = rec.epoch
	}
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dinfomap/internal/graph"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNMIIdenticalPartitions(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if v := NMI(a, a); !almost(v, 1) {
		t.Fatalf("NMI(a,a) = %v, want 1", v)
	}
}

func TestNMIInvariantToRelabeling(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{9, 9, 4, 4, 7, 7}
	if v := NMI(a, b); !almost(v, 1) {
		t.Fatalf("NMI under relabeling = %v, want 1", v)
	}
}

func TestNMIIndependentPartitions(t *testing.T) {
	// a splits {0..3} as {01}{23}; b as {02}{13}: independent.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	if v := NMI(a, b); !almost(v, 0) {
		t.Fatalf("NMI of independent partitions = %v, want 0", v)
	}
}

func TestNMIDegenerate(t *testing.T) {
	all := []int{5, 5, 5, 5}
	if v := NMI(all, all); !almost(v, 1) {
		t.Fatalf("NMI of two trivial partitions = %v, want 1", v)
	}
	split := []int{0, 0, 1, 1}
	if v := NMI(all, split); !almost(v, 0) {
		t.Fatalf("NMI trivial vs split = %v, want 0", v)
	}
	if v := NMI(nil, nil); !almost(v, 1) {
		t.Fatalf("NMI of empty = %v, want 1", v)
	}
}

func TestNMIPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NMI([]int{0}, []int{0, 1})
}

func TestFMeasureAndJaccardIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 1, 2}
	if v := FMeasure(a, a); !almost(v, 1) {
		t.Fatalf("F(a,a) = %v, want 1", v)
	}
	if v := Jaccard(a, a); !almost(v, 1) {
		t.Fatalf("JI(a,a) = %v, want 1", v)
	}
}

func TestFMeasureAllSingletons(t *testing.T) {
	a := []int{0, 1, 2, 3}
	if v := FMeasure(a, a); !almost(v, 1) {
		t.Fatalf("F of identical singleton partitions = %v, want 1", v)
	}
	if v := Jaccard(a, a); !almost(v, 1) {
		t.Fatalf("JI of identical singleton partitions = %v, want 1", v)
	}
}

func TestFMeasureDisjointPairs(t *testing.T) {
	// a pairs {01}{23}; b pairs {03}{12}: no shared pairs -> F = JI = 0.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 1, 0}
	if v := FMeasure(a, b); !almost(v, 0) {
		t.Fatalf("F = %v, want 0", v)
	}
	if v := Jaccard(a, b); !almost(v, 0) {
		t.Fatalf("JI = %v, want 0", v)
	}
}

func TestJaccardHandComputed(t *testing.T) {
	// a: {0,1,2} together; b: {0,1} together, {2} alone.
	// Pairs in a: (01)(02)(12) = 3. Pairs in b: (01) = 1. Shared: 1.
	// JI = 1 / (1 + 2 + 0) = 1/3.
	a := []int{0, 0, 0}
	b := []int{0, 0, 1}
	if v := Jaccard(a, b); !almost(v, 1.0/3) {
		t.Fatalf("JI = %v, want 1/3", v)
	}
	// Precision = 1/1, recall = 1/3 -> F = 2*(1*1/3)/(1+1/3) = 0.5.
	if v := FMeasure(a, b); !almost(v, 0.5) {
		t.Fatalf("F = %v, want 0.5", v)
	}
}

func TestModularityTwoCliques(t *testing.T) {
	// Two triangles joined by one edge; the planted split is strongly
	// modular. Hand computation: W = 7, each community: in = 6 (2*3),
	// tot = 2*3+1 = 7. Q = 2*(6/14 - (7/14)^2) = 2*(3/7 - 1/4) = 5/14.
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	comm := []int{0, 0, 0, 1, 1, 1}
	if q := Modularity(g, comm); !almost(q, 5.0/14) {
		t.Fatalf("Q = %v, want %v", q, 5.0/14)
	}
}

func TestModularityAllOneCommunity(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	comm := []int{0, 0, 0, 0}
	// Q = in/2W - (tot/2W)^2 = 1 - 1 = 0.
	if q := Modularity(g, comm); !almost(q, 0) {
		t.Fatalf("Q = %v, want 0", q)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	if q := Modularity(g, []int{0, 1, 2}); q != 0 {
		t.Fatalf("Q = %v, want 0", q)
	}
}

func TestModularityWithSelfLoop(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 0)
	g := b.Build()
	// W=2. comm both separate: c0: in=2(self), tot=3+... strength(0)=3,
	// strength(1)=1. Q = [2/4 - (3/4)^2] + [0 - (1/4)^2] = 0.5-0.5625-0.0625 = -0.125.
	q := Modularity(g, []int{0, 1})
	if !almost(q, -0.125) {
		t.Fatalf("Q = %v, want -0.125", q)
	}
}

func TestCompareBundle(t *testing.T) {
	a := []int{0, 0, 1, 1}
	q := Compare(a, a)
	if !almost(q.NMI, 1) || !almost(q.FMeasure, 1) || !almost(q.Jaccard, 1) {
		t.Fatalf("Compare(a,a) = %+v, want all 1", q)
	}
	if q.String() == "" {
		t.Error("String() empty")
	}
}

// Property: all measures are symmetric and within [0,1].
func TestPropertyMeasuresSymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		for _, pair := range [][2]float64{
			{NMI(a, b), NMI(b, a)},
			{FMeasure(a, b), FMeasure(b, a)},
			{Jaccard(a, b), Jaccard(b, a)},
		} {
			if !almost(pair[0], pair[1]) {
				return false
			}
			if pair[0] < 0 || pair[0] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Jaccard <= FMeasure (JI = a11/(a11+a10+a01) vs F's harmonic
// mean structure implies JI <= F always).
func TestPropertyJaccardLeFMeasure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(5)
		}
		return Jaccard(a, b) <= FMeasure(a, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: modularity of a random partition never exceeds 1 and a
// partition into connected dense blocks beats a random one on a planted
// graph (sanity of sign conventions).
func TestPropertyModularityBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		gb := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				gb.AddEdge(u, v)
			}
		}
		g := gb.Build()
		if g.NumEdges() == 0 {
			return true
		}
		comm := make([]int, n)
		for i := range comm {
			comm[i] = rng.Intn(4)
		}
		q := Modularity(g, comm)
		return q >= -1 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package metrics implements the community-quality measures the paper
// reports: Normalized Mutual Information, pairwise F-measure, and the
// Jaccard index (Table 2), plus Newman modularity as a general-purpose
// reference measure. All comparisons are between two flat partitions of
// the same vertex set, given as per-vertex community labels.
//
// Every measure accumulates its floating-point sums in a fixed order
// (dense first-appearance label indices, joint cells ascending), so
// repeated evaluations of the same pair of partitions are bit-identical
// — no map-iteration wobble in reported quality numbers.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"dinfomap/internal/graph"
)

// cell is one non-empty entry of the contingency table between two
// partitions, in dense label indices.
type cell struct {
	ai, bi int // dense cluster indices in A and B
	n      int // number of vertices in both clusters
}

// contingency builds the contingency table between two labelings.
// Labels are compacted to dense indices in first-appearance order; the
// joint counts come back as cells sorted ascending by (ai, bi) and the
// marginal cluster sizes as dense slices. Iterating any of these is
// order-deterministic, which keeps the float summations in NMI and the
// pair counts reproducible bit-for-bit.
func contingency(a, b []int) (cells []cell, sizeA, sizeB []int) {
	da, ka := graph.Renumber(a)
	db, kb := graph.Renumber(b)
	sizeA = make([]int, ka)
	sizeB = make([]int, kb)
	keys := make([]int, len(a))
	for i := range da {
		sizeA[da[i]]++
		sizeB[db[i]]++
		keys[i] = da[i]*kb + db[i]
	}
	sort.Ints(keys)
	for i := 0; i < len(keys); {
		k := keys[i]
		j := i + 1
		for j < len(keys) && keys[j] == k {
			j++
		}
		cells = append(cells, cell{ai: k / kb, bi: k % kb, n: j - i})
		i = j
	}
	return cells, sizeA, sizeB
}

func checkSameLength(a, b []int) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: partitions over %d and %d vertices", len(a), len(b)))
	}
}

// NMI returns the normalized mutual information between two partitions,
// I(A;B) / sqrt(H(A) H(B)), in [0, 1]. Identical partitions (up to label
// renaming) score 1. By convention, two partitions that both have zero
// entropy (everything in one cluster) also score 1.
func NMI(a, b []int) float64 {
	checkSameLength(a, b)
	n := float64(len(a))
	//dinfomap:float-ok integer-valued: n is an exact float64 conversion of a small length
	if n == 0 {
		return 1
	}
	cells, sa, sb := contingency(a, b)
	var mi float64
	for _, c := range cells {
		pij := float64(c.n) / n
		pa := float64(sa[c.ai]) / n
		pb := float64(sb[c.bi]) / n
		mi += pij * math.Log2(pij/(pa*pb))
	}
	ha := entropy(sa, n)
	hb := entropy(sb, n)
	//dinfomap:float-ok entropy is a sum of strictly positive terms, exactly 0 iff one cluster
	if ha == 0 && hb == 0 {
		return 1
	}
	//dinfomap:float-ok entropy is a sum of strictly positive terms, exactly 0 iff one cluster
	if ha == 0 || hb == 0 {
		return 0
	}
	v := mi / math.Sqrt(ha*hb)
	// Clamp numerical noise.
	if v > 1 {
		v = 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

func entropy(sizes []int, n float64) float64 {
	var h float64
	for _, s := range sizes {
		p := float64(s) / n
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// pairCounts returns the pair-counting statistics between two
// partitions: a11 pairs together in both, a10 together in A only, a01
// together in B only. Uses the contingency table, O(n log n + cells).
func pairCounts(a, b []int) (a11, a10, a01 float64) {
	cells, sa, sb := contingency(a, b)
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumJoint, sumA, sumB float64
	for _, c := range cells {
		sumJoint += choose2(c.n)
	}
	for _, s := range sa {
		sumA += choose2(s)
	}
	for _, s := range sb {
		sumB += choose2(s)
	}
	return sumJoint, sumA - sumJoint, sumB - sumJoint
}

// FMeasure returns the pairwise F1 score between two partitions: the
// harmonic mean of pair precision and pair recall (treating "same
// community in a" as ground truth and "same community in b" as the
// prediction; the measure is symmetric).
func FMeasure(a, b []int) float64 {
	checkSameLength(a, b)
	a11, a10, a01 := pairCounts(a, b)
	//dinfomap:float-ok integer-valued pair counts, exact below 2^53
	if a11 == 0 {
		//dinfomap:float-ok integer-valued pair counts, exact below 2^53
		if a10 == 0 && a01 == 0 {
			return 1 // both partitions are all-singletons: identical
		}
		return 0
	}
	prec := a11 / (a11 + a01)
	rec := a11 / (a11 + a10)
	return 2 * prec * rec / (prec + rec)
}

// Jaccard returns the pairwise Jaccard index between two partitions:
// |pairs together in both| / |pairs together in either|.
func Jaccard(a, b []int) float64 {
	checkSameLength(a, b)
	a11, a10, a01 := pairCounts(a, b)
	den := a11 + a10 + a01
	//dinfomap:float-ok integer-valued pair counts, exact below 2^53
	if den == 0 {
		return 1 // no co-clustered pairs anywhere: identical singletons
	}
	return a11 / den
}

// Modularity returns the Newman modularity Q of the partition comm on g:
// Q = sum_c [ in_c/(2W) - (tot_c/(2W))^2 ], where in_c is twice the
// intra-community weight and tot_c the total strength of community c.
// Communities are renumbered densely so the final reduction over
// communities runs in first-appearance order, deterministically.
func Modularity(g *graph.Graph, comm []int) float64 {
	if len(comm) != g.NumVertices() {
		panic(fmt.Sprintf("metrics: assignment over %d vertices for graph with %d",
			len(comm), g.NumVertices()))
	}
	w2 := 2 * g.TotalWeight()
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if w2 == 0 {
		return 0
	}
	dense, k := graph.Renumber(comm)
	in := make([]float64, k)  // twice intra-community weight
	tot := make([]float64, k) // community strength
	for u := 0; u < g.NumVertices(); u++ {
		g.Neighbors(u, func(v int, w float64) {
			if v == u {
				w *= 2 // self-loop counts twice in strength
				in[dense[u]] += w
				tot[dense[u]] += w
				return
			}
			tot[dense[u]] += w
			if dense[v] == dense[u] {
				in[dense[u]] += w
			}
		})
	}
	var q float64
	for c := 0; c < k; c++ {
		q += in[c]/w2 - (tot[c]/w2)*(tot[c]/w2)
	}
	return q
}

// Quality bundles the three Table 2 measurements for one comparison.
type Quality struct {
	NMI      float64
	FMeasure float64
	Jaccard  float64
}

// Compare computes all Table 2 measures between two partitions.
func Compare(a, b []int) Quality {
	return Quality{NMI: NMI(a, b), FMeasure: FMeasure(a, b), Jaccard: Jaccard(a, b)}
}

func (q Quality) String() string {
	return fmt.Sprintf("NMI=%.2f F=%.2f JI=%.2f", q.NMI, q.FMeasure, q.Jaccard)
}

// Package digraph provides the directed CSR graph used by the directed
// Infomap extension (the paper, Section 2.2: "the Infomap algorithm can
// be applied on both undirected and directed graphs. Therefore, our
// work can be easily extended to directed graphs").
//
// Both out- and in-adjacency are materialized: the map equation's move
// deltas need a vertex's links in both directions.
package digraph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Graph is an immutable directed graph with parallel-arc merging.
type Graph struct {
	outOff []int
	outV   []int
	outW   []float64
	inOff  []int
	inV    []int
	inW    []float64

	numArcs     int
	totalWeight float64
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int {
	if len(g.outOff) == 0 {
		return 0
	}
	return len(g.outOff) - 1
}

// NumArcs returns the number of distinct directed arcs.
func (g *Graph) NumArcs() int { return g.numArcs }

// TotalWeight returns the sum of arc weights.
func (g *Graph) TotalWeight() float64 { return g.totalWeight }

// OutDegree returns the number of distinct out-neighbors of u.
func (g *Graph) OutDegree(u int) int { return g.outOff[u+1] - g.outOff[u] }

// InDegree returns the number of distinct in-neighbors of u.
func (g *Graph) InDegree(u int) int { return g.inOff[u+1] - g.inOff[u] }

// OutStrength returns the total weight of arcs leaving u.
func (g *Graph) OutStrength(u int) float64 {
	s := 0.0
	for i := g.outOff[u]; i < g.outOff[u+1]; i++ {
		s += g.outW[i]
	}
	return s
}

// OutNeighbors calls fn for every arc (u -> v, w).
func (g *Graph) OutNeighbors(u int, fn func(v int, w float64)) {
	for i := g.outOff[u]; i < g.outOff[u+1]; i++ {
		fn(g.outV[i], g.outW[i])
	}
}

// InNeighbors calls fn for every arc (v -> u, w), i.e. arcs arriving
// at u.
func (g *Graph) InNeighbors(u int, fn func(v int, w float64)) {
	for i := g.inOff[u]; i < g.inOff[u+1]; i++ {
		fn(g.inV[i], g.inW[i])
	}
}

// ArcWeight returns the weight of arc (u -> v), or 0 if absent.
func (g *Graph) ArcWeight(u, v int) float64 {
	lo, hi := g.outOff[u], g.outOff[u+1]
	adj := g.outV[lo:hi]
	i := sort.SearchInts(adj, v)
	if i < len(adj) && adj[i] == v {
		return g.outW[lo+i]
	}
	return 0
}

// Validate checks structural invariants (sorted adjacency, in/out
// consistency, counters).
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.inOff) != len(g.outOff) {
		return fmt.Errorf("digraph: in/out offset arrays differ: %d vs %d", len(g.inOff), len(g.outOff))
	}
	arcs := 0
	var w float64
	for u := 0; u < n; u++ {
		prev := -1
		for i := g.outOff[u]; i < g.outOff[u+1]; i++ {
			v := g.outV[i]
			if v < 0 || v >= n {
				return fmt.Errorf("digraph: arc (%d,%d) out of range", u, v)
			}
			if v <= prev {
				return fmt.Errorf("digraph: out-adjacency of %d not sorted", u)
			}
			prev = v
			if g.outW[i] <= 0 || math.IsNaN(g.outW[i]) {
				return fmt.Errorf("digraph: bad weight on (%d,%d)", u, v)
			}
			// The reverse view must carry the identical weight.
			found := false
			for j := g.inOff[v]; j < g.inOff[v+1]; j++ {
				if g.inV[j] == u {
					//dinfomap:float-ok invariant check: the reverse view stores a bit-identical copy of the forward weight
					if g.inW[j] != g.outW[i] {
						return fmt.Errorf("digraph: arc (%d,%d) weight mismatch in reverse view", u, v)
					}
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("digraph: arc (%d,%d) missing from reverse view", u, v)
			}
			arcs++
			w += g.outW[i]
		}
	}
	if arcs != g.numArcs {
		return fmt.Errorf("digraph: numArcs %d, counted %d", g.numArcs, arcs)
	}
	if math.Abs(w-g.totalWeight) > 1e-9*(1+w) {
		return fmt.Errorf("digraph: totalWeight %v, counted %v", g.totalWeight, w)
	}
	return nil
}

// Builder accumulates directed arcs; parallel arcs merge by summing.
type Builder struct {
	n  int
	us []int
	vs []int
	ws []float64
}

// NewBuilder returns a Builder for n vertices (auto-growing).
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddArc records the directed arc u -> v with weight 1.
func (b *Builder) AddArc(u, v int) { b.AddWeightedArc(u, v, 1) }

// AddWeightedArc records the directed arc u -> v with weight w.
// Self-arcs are allowed.
func (b *Builder) AddWeightedArc(u, v int, w float64) {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("digraph: negative vertex in arc (%d,%d)", u, v))
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("digraph: invalid weight %v on arc (%d,%d)", w, u, v))
	}
	if u >= b.n {
		b.n = u + 1
	}
	if v >= b.n {
		b.n = v + 1
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
}

// Build produces the immutable directed graph.
func (b *Builder) Build() *Graph {
	n := b.n
	outOff, outV, outW := buildCSR(n, b.us, b.vs, b.ws)
	inOff, inV, inW := buildCSR(n, b.vs, b.us, b.ws)
	g := &Graph{
		outOff: outOff, outV: outV, outW: outW,
		inOff: inOff, inV: inV, inW: inW,
	}
	g.numArcs = len(outV)
	for _, w := range outW {
		g.totalWeight += w
	}
	return g
}

// buildCSR constructs a sorted, merged CSR from arc records.
func buildCSR(n int, src, dst []int, w []float64) (off, adj []int, wt []float64) {
	deg := make([]int, n+1)
	for _, u := range src {
		deg[u]++
	}
	off = make([]int, n+1)
	for u := 0; u < n; u++ {
		off[u+1] = off[u] + deg[u]
	}
	adj = make([]int, off[n])
	wt = make([]float64, off[n])
	cursor := make([]int, n)
	copy(cursor, off[:n])
	for i := range src {
		u := src[i]
		adj[cursor[u]] = dst[i]
		wt[cursor[u]] = w[i]
		cursor[u]++
	}
	// Sort each row and merge duplicates.
	out := 0
	newOff := make([]int, n+1)
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		sortPair(adj[lo:hi], wt[lo:hi])
		start := out
		for i := lo; i < hi; i++ {
			if out > start && adj[out-1] == adj[i] {
				wt[out-1] += wt[i]
				continue
			}
			adj[out] = adj[i]
			wt[out] = wt[i]
			out++
		}
		newOff[u+1] = out
	}
	return newOff, adj[:out:out], wt[:out:out]
}

func sortPair(v []int, w []float64) {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	nv := make([]int, len(v))
	nw := make([]float64, len(w))
	for i, j := range idx {
		nv[i] = v[j]
		nw[i] = w[j]
	}
	copy(v, nv)
	copy(w, nw)
}

// ReadArcList parses "u v [w]" lines into a directed graph.
func ReadArcList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("digraph: line %d: want 2+ fields", lineno)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("digraph: line %d: %v", lineno, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("digraph: line %d: %v", lineno, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			if w, err = strconv.ParseFloat(fields[2], 64); err != nil || w <= 0 {
				return nil, fmt.Errorf("digraph: line %d: bad weight", lineno)
			}
		}
		b.AddWeightedArc(u, v, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

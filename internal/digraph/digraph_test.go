package digraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumArcs() != 0 {
		t.Fatalf("n=%d arcs=%d", g.NumVertices(), g.NumArcs())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicArcs(t *testing.T) {
	b := NewBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(2, 0)
	g := b.Build()
	if g.NumArcs() != 3 {
		t.Fatalf("NumArcs = %d, want 3", g.NumArcs())
	}
	if g.ArcWeight(0, 1) != 1 || g.ArcWeight(1, 0) != 0 {
		t.Fatal("direction not respected")
	}
	if g.OutDegree(0) != 1 || g.InDegree(0) != 1 {
		t.Fatalf("degrees of 0: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelArcsMerged(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedArc(0, 1, 2)
	b.AddWeightedArc(0, 1, 3)
	g := b.Build()
	if g.NumArcs() != 1 {
		t.Fatalf("NumArcs = %d, want 1", g.NumArcs())
	}
	if g.ArcWeight(0, 1) != 5 {
		t.Fatalf("merged weight = %v, want 5", g.ArcWeight(0, 1))
	}
}

func TestSelfArc(t *testing.T) {
	b := NewBuilder(1)
	b.AddWeightedArc(0, 0, 2)
	g := b.Build()
	if g.ArcWeight(0, 0) != 2 {
		t.Fatal("self arc lost")
	}
	if g.OutStrength(0) != 2 {
		t.Fatalf("OutStrength = %v", g.OutStrength(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInOutConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(20)
	for i := 0; i < 100; i++ {
		b.AddArc(rng.Intn(20), rng.Intn(20))
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total out-strength equals total in-flow equals total weight.
	outSum, inSum := 0.0, 0.0
	for u := 0; u < 20; u++ {
		outSum += g.OutStrength(u)
		g.InNeighbors(u, func(v int, w float64) { inSum += w })
	}
	if outSum != g.TotalWeight() || inSum != g.TotalWeight() {
		t.Fatalf("out=%v in=%v total=%v", outSum, inSum, g.TotalWeight())
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative vertex": func() { NewBuilder(1).AddArc(-1, 0) },
		"zero weight":     func() { NewBuilder(2).AddWeightedArc(0, 1, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestReadArcList(t *testing.T) {
	g, err := ReadArcList(strings.NewReader("# comment\n0 1\n1 2 2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 2 || g.ArcWeight(1, 2) != 2.5 {
		t.Fatalf("arcs=%d w=%v", g.NumArcs(), g.ArcWeight(1, 2))
	}
	if _, err := ReadArcList(strings.NewReader("0\n")); err == nil {
		t.Fatal("accepted malformed line")
	}
	if _, err := ReadArcList(strings.NewReader("0 1 -2\n")); err == nil {
		t.Fatal("accepted negative weight")
	}
}

// Property: every built digraph validates.
func TestPropertyBuildValid(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%30 + 1
		b := NewBuilder(n)
		for i := 0; i < int(mRaw); i++ {
			b.AddArc(rng.Intn(n), rng.Intn(n))
		}
		return b.Build().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

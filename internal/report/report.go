// Package report summarizes and exports community detection results:
// per-community statistics, a text report, and GraphViz DOT output of
// the community-level quotient graph. The paper lists visualization of
// community results as future work (Section 6); this is the part that
// doesn't need a display.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dinfomap/internal/graph"
)

// CommunityStat describes one detected community.
type CommunityStat struct {
	ID          int
	Size        int     // member vertices
	InternalW   float64 // total weight of internal edges
	CutW        float64 // total weight of edges leaving the community
	Conductance float64 // cut / (2*internal + cut)
	MaxDegree   int     // largest (full-graph) degree among members
}

// Summary describes a whole partition.
type Summary struct {
	NumCommunities int
	Communities    []CommunityStat // sorted by size, descending
	Modularity     float64         // filled by the caller if desired
	SizeP50        int
	SizeMax        int
	Singletons     int
	CutFraction    float64 // weight share of inter-community edges
}

// Summarize computes per-community statistics of comm on g.
func Summarize(g *graph.Graph, comm []int) *Summary {
	if len(comm) != g.NumVertices() {
		panic(fmt.Sprintf("report: %d assignments for %d vertices", len(comm), g.NumVertices()))
	}
	dense, k := graph.Renumber(comm)
	stats := make([]CommunityStat, k)
	for c := range stats {
		stats[c].ID = c
	}
	for u := 0; u < g.NumVertices(); u++ {
		c := dense[u]
		stats[c].Size++
		if d := g.Degree(u); d > stats[c].MaxDegree {
			stats[c].MaxDegree = d
		}
	}
	var cutTotal, wTotal float64
	g.Edges(func(u, v int, w float64) {
		wTotal += w
		cu, cv := dense[u], dense[v]
		if cu == cv {
			stats[cu].InternalW += w
		} else {
			stats[cu].CutW += w
			stats[cv].CutW += w
			cutTotal += w
		}
	})
	for c := range stats {
		den := 2*stats[c].InternalW + stats[c].CutW
		if den > 0 {
			stats[c].Conductance = stats[c].CutW / den
		}
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Size != stats[j].Size {
			return stats[i].Size > stats[j].Size
		}
		return stats[i].ID < stats[j].ID
	})
	s := &Summary{NumCommunities: k, Communities: stats}
	sizes := make([]int, k)
	for i, st := range stats {
		sizes[i] = st.Size
		if st.Size == 1 {
			s.Singletons++
		}
	}
	if k > 0 {
		s.SizeMax = sizes[0]
		s.SizeP50 = sizes[k/2]
	}
	if wTotal > 0 {
		s.CutFraction = cutTotal / wTotal
	}
	return s
}

// WriteText renders a human-readable report, showing the topN largest
// communities (0 = all).
func (s *Summary) WriteText(w io.Writer, topN int) error {
	fmt.Fprintf(w, "communities: %d (median size %d, max %d, %d singletons)\n",
		s.NumCommunities, s.SizeP50, s.SizeMax, s.Singletons)
	fmt.Fprintf(w, "inter-community edge weight: %.1f%%\n", 100*s.CutFraction)
	n := len(s.Communities)
	if topN > 0 && topN < n {
		n = topN
	}
	fmt.Fprintf(w, "%6s %8s %10s %10s %12s %8s\n",
		"id", "size", "internalW", "cutW", "conductance", "maxDeg")
	for _, c := range s.Communities[:n] {
		if _, err := fmt.Fprintf(w, "%6d %8d %10.1f %10.1f %12.3f %8d\n",
			c.ID, c.Size, c.InternalW, c.CutW, c.Conductance, c.MaxDegree); err != nil {
			return err
		}
	}
	return nil
}

// WriteDOT writes the community quotient graph in GraphViz DOT format:
// one node per community (sized label) and one edge per community pair
// with the aggregated weight. maxNodes caps output size (0 = 100).
func WriteDOT(w io.Writer, g *graph.Graph, comm []int, maxNodes int) error {
	if maxNodes <= 0 {
		maxNodes = 100
	}
	dense, _ := graph.Renumber(comm)
	quotient, _ := graph.Contract(g, dense)
	// Keep only the largest maxNodes communities.
	sizes := graph.CommunitySizes(dense, quotient.NumVertices())
	order := make([]int, quotient.NumVertices())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
	keep := make(map[int]bool, maxNodes)
	for i := 0; i < len(order) && i < maxNodes; i++ {
		keep[order[i]] = true
	}

	var sb strings.Builder
	sb.WriteString("graph communities {\n")
	sb.WriteString("  layout=sfdp; overlap=false; node [shape=circle style=filled fillcolor=\"#cfe3ff\"];\n")
	for c := range keep {
		fmt.Fprintf(&sb, "  c%d [label=\"%d\\n(%d)\" width=%.2f];\n",
			c, c, sizes[c], 0.4+float64(sizes[c])/float64(maxInt(1, sizes[order[0]])))
	}
	quotient.Edges(func(a, b int, wt float64) {
		if a == b || !keep[a] || !keep[b] {
			return
		}
		fmt.Fprintf(&sb, "  c%d -- c%d [penwidth=%.2f label=\"%.0f\"];\n",
			a, b, 0.5+wt/4, wt)
	})
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

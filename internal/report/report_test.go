package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
)

func twoTriangles() (*graph.Graph, []int) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	return g, []int{0, 0, 0, 1, 1, 1}
}

func TestSummarizeTwoTriangles(t *testing.T) {
	g, comm := twoTriangles()
	s := Summarize(g, comm)
	if s.NumCommunities != 2 {
		t.Fatalf("NumCommunities = %d", s.NumCommunities)
	}
	for _, c := range s.Communities {
		if c.Size != 3 {
			t.Errorf("community %d size %d, want 3", c.ID, c.Size)
		}
		if c.InternalW != 3 {
			t.Errorf("community %d internal %v, want 3", c.ID, c.InternalW)
		}
		if c.CutW != 1 {
			t.Errorf("community %d cut %v, want 1", c.ID, c.CutW)
		}
		// conductance = 1/(2*3+1) = 1/7
		if math.Abs(c.Conductance-1.0/7) > 1e-12 {
			t.Errorf("conductance = %v", c.Conductance)
		}
	}
	if math.Abs(s.CutFraction-1.0/7) > 1e-12 {
		t.Errorf("CutFraction = %v, want 1/7", s.CutFraction)
	}
	if s.Singletons != 0 {
		t.Errorf("Singletons = %d", s.Singletons)
	}
}

func TestSummarizeSingletons(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	s := Summarize(g, []int{0, 1, 2})
	if s.NumCommunities != 3 || s.Singletons != 3 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g, _ := twoTriangles()
	Summarize(g, []int{0})
}

func TestWriteText(t *testing.T) {
	g, comm := twoTriangles()
	var buf bytes.Buffer
	if err := Summarize(g, comm).WriteText(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"communities: 2", "conductance", "inter-community"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextTopN(t *testing.T) {
	g, truth := gen.PlantedPartition(3, gen.PlantedConfig{
		N: 200, NumComms: 20, AvgDegree: 6, Mixing: 0.1,
	})
	var buf bytes.Buffer
	if err := Summarize(g, truth).WriteText(&buf, 5); err != nil {
		t.Fatal(err)
	}
	// Header lines + 5 rows.
	if lines := strings.Count(buf.String(), "\n"); lines != 8 {
		t.Fatalf("got %d lines, want 8:\n%s", lines, buf.String())
	}
}

func TestWriteDOT(t *testing.T) {
	g, comm := twoTriangles()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, comm, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph communities {") {
		t.Fatalf("not DOT:\n%s", out)
	}
	if !strings.Contains(out, "c0 -- c1") && !strings.Contains(out, "c1 -- c0") {
		t.Errorf("missing inter-community edge:\n%s", out)
	}
	if !strings.Contains(out, "(3)") {
		t.Errorf("missing size labels:\n%s", out)
	}
}

func TestWriteDOTCapsNodes(t *testing.T) {
	g, truth := gen.PlantedPartition(7, gen.PlantedConfig{
		N: 300, NumComms: 30, AvgDegree: 6, Mixing: 0.1,
	})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, truth, 10); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "[label="); n > 10 {
		t.Fatalf("%d nodes written, cap was 10", n)
	}
}

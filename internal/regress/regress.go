// Package regress compares two directories of experiment/run JSON
// artifacts (the dinfomap-experiment/v1 siblings and
// dinfomap-run-report/v1 reports under results/) and flags numeric
// regressions beyond class-specific thresholds.
//
// The comparison is a generic walk over the JSON trees — no schema
// knowledge beyond path classification — so it keeps working as the
// report schema grows additive fields. Classification is by path:
//
//   - paths mentioning "wall" are host wall-clock times and are ignored
//     (they legitimately differ run to run);
//   - leaves whose final key mentions "codelength" fail on ANY relative
//     increase beyond a tiny tolerance (quality must never regress
//     silently — runs are deterministic given the seed);
//   - paths mentioning "modeled" are cost-model times and fail on
//     relative increase beyond the modeled threshold (default 10%);
//   - leaves whose final key mentions "bytes" (including the per-kind
//     comm splits) fail on relative increase beyond the bytes
//     threshold (default 10%);
//   - leaves whose final key mentions "ns_per_op" are benchmark times
//     (the dinfomap-bench/v1 reports) and fail on relative increase
//     beyond the generous time threshold (default 25%);
//   - leaves whose final key mentions "allocs_per_op" are benchmark
//     allocation counts and fail on ANY relative increase beyond the
//     allocs threshold (default 0: pooling regressions fail loudly);
//   - leaves whose final key mentions "nmi" are partition quality and
//     fail on ANY relative decrease beyond a tiny tolerance (NMI sums
//     in a fixed order, so same-seed runs reproduce it exactly);
//   - everything else that differs is recorded as an informational
//     finding, never a failure.
//
// Fields present on only one side are schema evolution (the report
// schema grows additively), reported as notes, never failures.
package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ReportSchema tags the diff report JSON.
const ReportSchema = "dinfomap-diff-report/v1"

// Default thresholds.
const (
	DefaultCodelengthTol = 1e-9
	DefaultModeledTol    = 0.10
	DefaultBytesTol      = 0.10
	DefaultTimeTol       = 0.25
	DefaultQualityTol    = 1e-9
)

// Options are the per-class regression thresholds, all relative
// ((new-old)/|old|). Zero values mean the defaults. AllocsTol defaults
// to 0: any allocs/op increase is a regression.
type Options struct {
	CodelengthTol float64 `json:"codelength_tol"`
	ModeledTol    float64 `json:"modeled_tol"`
	BytesTol      float64 `json:"bytes_tol"`
	TimeTol       float64 `json:"time_tol"`
	AllocsTol     float64 `json:"allocs_tol"`
	QualityTol    float64 `json:"quality_tol"`
}

func (o Options) withDefaults() Options {
	if o.CodelengthTol <= 0 {
		o.CodelengthTol = DefaultCodelengthTol
	}
	if o.ModeledTol <= 0 {
		o.ModeledTol = DefaultModeledTol
	}
	if o.BytesTol <= 0 {
		o.BytesTol = DefaultBytesTol
	}
	if o.TimeTol <= 0 {
		o.TimeTol = DefaultTimeTol
	}
	if o.QualityTol <= 0 {
		o.QualityTol = DefaultQualityTol
	}
	return o
}

// Classes a finding can belong to.
const (
	ClassCodelength = "codelength"
	ClassModeled    = "modeled"
	ClassBytes      = "bytes"
	ClassTime       = "time"
	ClassAllocs     = "allocs"
	ClassQuality    = "quality"
	ClassOther      = "other"
	ClassStructure  = "structure"
)

// Finding is one differing leaf (or structural mismatch) between the
// baseline and candidate trees.
type Finding struct {
	File  string `json:"file"`
	Path  string `json:"path"`
	Class string `json:"class"`
	// Old and New are the numeric values for numeric findings.
	Old float64 `json:"old,omitempty"`
	New float64 `json:"new,omitempty"`
	// Rel is (new-old)/|old|; omitted when the baseline is zero.
	Rel float64 `json:"rel,omitempty"`
	// Regression marks findings beyond their class threshold; only
	// these make the diff fail.
	Regression bool   `json:"regression,omitempty"`
	Note       string `json:"note,omitempty"`
}

func (f Finding) String() string {
	//dinfomap:float-ok zero is the exact "no numeric values" sentinel of structural findings
	if f.Note != "" && f.Old == 0 && f.New == 0 {
		return fmt.Sprintf("%s: %s: %s", f.File, f.Path, f.Note)
	}
	mark := "  "
	if f.Regression {
		mark = "!!"
	}
	return fmt.Sprintf("%s %s: %s [%s] %v -> %v (%+.2f%%)",
		mark, f.File, f.Path, f.Class, f.Old, f.New, 100*f.Rel)
}

// Report is the structured result of one directory diff.
type Report struct {
	Schema        string   `json:"schema"`
	BaselineDir   string   `json:"baseline_dir"`
	CandidateDir  string   `json:"candidate_dir"`
	Options       Options  `json:"options"`
	Files         []string `json:"files"`
	OnlyBaseline  []string `json:"only_baseline,omitempty"`
	OnlyCandidate []string `json:"only_candidate,omitempty"`
	// Compared counts numeric leaves present on both sides.
	Compared int `json:"compared"`
	// Findings lists every differing leaf, regressions first.
	Findings []Finding `json:"findings,omitempty"`
	// Regressions counts findings beyond their class threshold.
	Regressions int `json:"regressions"`
}

// Failed reports whether the diff found threshold-exceeding regressions.
func (r *Report) Failed() bool { return r.Regressions > 0 }

// Diff compares every JSON file present in both directories.
func Diff(baselineDir, candidateDir string, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	base, err := jsonFiles(baselineDir)
	if err != nil {
		return nil, err
	}
	cand, err := jsonFiles(candidateDir)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema: ReportSchema, BaselineDir: baselineDir,
		CandidateDir: candidateDir, Options: opt,
	}
	for _, f := range base {
		if contains(cand, f) {
			rep.Files = append(rep.Files, f)
		} else {
			rep.OnlyBaseline = append(rep.OnlyBaseline, f)
		}
	}
	for _, f := range cand {
		if !contains(base, f) {
			rep.OnlyCandidate = append(rep.OnlyCandidate, f)
		}
	}
	for _, f := range rep.Files {
		bb, err := os.ReadFile(filepath.Join(baselineDir, f))
		if err != nil {
			return nil, err
		}
		cb, err := os.ReadFile(filepath.Join(candidateDir, f))
		if err != nil {
			return nil, err
		}
		findings, compared, err := DiffFiles(f, bb, cb, opt)
		if err != nil {
			return nil, err
		}
		rep.Findings = append(rep.Findings, findings...)
		rep.Compared += compared
	}
	// Regressions first, then by file/path, for readable output.
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].Regression && !rep.Findings[j].Regression
	})
	for _, f := range rep.Findings {
		if f.Regression {
			rep.Regressions++
		}
	}
	return rep, nil
}

// DiffFiles compares two JSON documents and returns the findings plus
// the count of numeric leaves compared.
func DiffFiles(name string, baseline, candidate []byte, opt Options) ([]Finding, int, error) {
	opt = opt.withDefaults()
	var bv, cv any
	if err := unmarshalNumbers(baseline, &bv); err != nil {
		return nil, 0, fmt.Errorf("regress: baseline %s: %w", name, err)
	}
	if err := unmarshalNumbers(candidate, &cv); err != nil {
		return nil, 0, fmt.Errorf("regress: candidate %s: %w", name, err)
	}
	w := &walker{file: name, opt: opt}
	w.walk("$", bv, cv)
	return w.findings, w.compared, nil
}

func unmarshalNumbers(data []byte, v *any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	return dec.Decode(v)
}

type walker struct {
	file     string
	opt      Options
	findings []Finding
	compared int
}

func (w *walker) emit(f Finding) {
	f.File = w.file
	w.findings = append(w.findings, f)
}

func (w *walker) walk(path string, a, b any) {
	if ignoredPath(path) {
		return
	}
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			w.emit(Finding{Path: path, Class: ClassStructure, Note: "type mismatch"})
			return
		}
		keys := make([]string, 0, len(av)+len(bv))
		for k := range av {
			keys = append(keys, k)
		}
		for k := range bv {
			if _, dup := av[k]; !dup {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			sub := path + "." + k
			x, inA := av[k]
			y, inB := bv[k]
			switch {
			case inA && inB:
				w.walk(sub, x, y)
			case inA:
				if !ignoredPath(sub) {
					w.emit(Finding{Path: sub, Class: ClassStructure, Note: "only in baseline"})
				}
			default:
				if !ignoredPath(sub) {
					w.emit(Finding{Path: sub, Class: ClassStructure, Note: "only in candidate"})
				}
			}
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			w.emit(Finding{Path: path, Class: ClassStructure, Note: "type mismatch"})
			return
		}
		if len(av) != len(bv) {
			w.emit(Finding{Path: path, Class: ClassStructure,
				Note: fmt.Sprintf("length %d -> %d", len(av), len(bv))})
		}
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			w.walk(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i])
		}
	case json.Number:
		bn, ok := b.(json.Number)
		if !ok {
			w.emit(Finding{Path: path, Class: ClassStructure, Note: "type mismatch"})
			return
		}
		w.compared++
		if av.String() == bn.String() {
			return
		}
		x, errA := av.Float64()
		y, errB := bn.Float64()
		if errA != nil || errB != nil {
			w.emit(Finding{Path: path, Class: ClassStructure, Note: "unparseable number"})
			return
		}
		//dinfomap:float-ok both sides parsed from JSON text; equal floats mean equal leaves
		if x == y {
			return
		}
		w.number(path, x, y)
	default:
		// Strings, bools, nulls: any difference is informational.
		if !equalScalar(a, b) {
			w.emit(Finding{Path: path, Class: ClassOther,
				Note: fmt.Sprintf("value %v -> %v", a, b)})
		}
	}
}

func (w *walker) number(path string, old, new float64) {
	class := classify(path)
	f := Finding{Path: path, Class: class, Old: old, New: new}
	//dinfomap:float-ok exact zero guards the division; near-zero baselines are fine
	if old != 0 {
		f.Rel = (new - old) / abs(old)
	} else {
		f.Note = "baseline zero"
	}
	switch class {
	case ClassCodelength:
		f.Regression = increaseBeyond(old, new, w.opt.CodelengthTol)
	case ClassModeled:
		f.Regression = increaseBeyond(old, new, w.opt.ModeledTol)
	case ClassBytes:
		f.Regression = increaseBeyond(old, new, w.opt.BytesTol)
	case ClassTime:
		f.Regression = increaseBeyond(old, new, w.opt.TimeTol)
	case ClassAllocs:
		f.Regression = increaseBeyond(old, new, w.opt.AllocsTol)
	case ClassQuality:
		// Quality regresses downward: gate decreases, welcome increases.
		f.Regression = increaseBeyond(new, old, w.opt.QualityTol)
	}
	w.emit(f)
}

// increaseBeyond reports whether new exceeds old by more than the
// relative tolerance (a zero baseline treats any increase as beyond).
func increaseBeyond(old, new, tol float64) bool {
	if new <= old {
		return false
	}
	//dinfomap:float-ok exact zero guards the division; any increase from zero is beyond
	if old == 0 {
		return true
	}
	return (new-old)/abs(old) > tol
}

// ignoredPath drops host wall-clock leaves and their subtrees.
func ignoredPath(path string) bool {
	return strings.Contains(strings.ToLower(lastKey(path)), "wall")
}

// Field aliases used by the committed experiment goldens whose names
// don't contain the class substring: fig4/fig5 final codelengths
// (SeqFinal/DistFinal), table3 codelengths (OursL/BaselineL) and
// modeled times (Ours/Baseline), fig9 modeled stage totals
// (Stage1/Stage2/Total), and the fig8 per-phase modeled breakdown
// (Phases.*). Aliases match the exact final key, case-insensitively,
// so e.g. fig10's BaselineP stays unclassified.
var (
	codelengthKeys = map[string]bool{
		"seqfinal": true, "distfinal": true, "oursl": true, "baselinel": true,
	}
	modeledKeys = map[string]bool{
		"stage1": true, "stage2": true, "total": true, "ours": true, "baseline": true,
	}
)

// classify maps a JSON path to its regression class.
func classify(path string) string {
	lower := strings.ToLower(path)
	last := strings.ToLower(lastKey(path))
	switch {
	case strings.Contains(last, "codelength") || codelengthKeys[last]:
		return ClassCodelength
	case strings.Contains(lower, "modeled") ||
		strings.Contains(lower, ".phases.") || modeledKeys[last]:
		return ClassModeled
	case strings.Contains(last, "bytes"):
		return ClassBytes
	case strings.Contains(last, "ns_per_op"):
		return ClassTime
	case strings.Contains(last, "allocs_per_op"):
		return ClassAllocs
	case strings.Contains(last, "nmi"):
		return ClassQuality
	default:
		return ClassOther
	}
}

// lastKey extracts the final object key of a path, dropping array
// indices ("$.rows[2].phase_modeled_ns.Other[1]" -> "Other").
func lastKey(path string) string {
	for {
		i := strings.LastIndexByte(path, '[')
		if i < 0 || !strings.HasSuffix(path, "]") {
			break
		}
		path = path[:i]
	}
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func equalScalar(a, b any) bool {
	return fmt.Sprintf("%v", a) == fmt.Sprintf("%v", b)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func jsonFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("regress: %w", err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

package regress

import (
	"os"
	"path/filepath"
	"testing"
)

func writeDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const baseExperiment = `{
  "schema": "dinfomap-experiment/v1",
  "experiment": "table1",
  "scale": 0.3,
  "seed": 1,
  "rows": [
    {"Dataset": "amazon", "Codelength": 11.52, "Modeled": 1200000, "Bytes": 400000, "SeqNMI": 0.91},
    {"Dataset": "dblp", "Codelength": 10.10, "Modeled": 900000, "Bytes": 300000, "SeqNMI": 0.88}
  ]
}`

func TestDiffIdenticalDirs(t *testing.T) {
	files := map[string]string{"table1.json": baseExperiment}
	a := writeDir(t, files)
	b := writeDir(t, files)
	rep, err := Diff(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || rep.Regressions != 0 {
		t.Fatalf("identical dirs flagged as regression: %+v", rep.Findings)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("identical dirs produced findings: %+v", rep.Findings)
	}
	if rep.Compared == 0 {
		t.Fatal("no numeric leaves compared")
	}
}

func TestDiffCodelengthRegression(t *testing.T) {
	a := writeDir(t, map[string]string{"table1.json": baseExperiment})
	// Seeded regression: one codelength creeps up by ~0.3%.
	bad := `{
  "schema": "dinfomap-experiment/v1",
  "experiment": "table1",
  "scale": 0.3,
  "seed": 1,
  "rows": [
    {"Dataset": "amazon", "Codelength": 11.55, "Modeled": 1200000, "Bytes": 400000, "SeqNMI": 0.91},
    {"Dataset": "dblp", "Codelength": 10.10, "Modeled": 900000, "Bytes": 300000, "SeqNMI": 0.88}
  ]
}`
	b := writeDir(t, map[string]string{"table1.json": bad})
	rep, err := Diff(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("codelength increase not flagged: %+v", rep.Findings)
	}
	if rep.Regressions != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", rep.Regressions, rep.Findings)
	}
	f := rep.Findings[0]
	if f.Class != ClassCodelength || !f.Regression {
		t.Fatalf("first finding not a codelength regression: %+v", f)
	}
	// Improvements must not fail: same diff in the other direction.
	rev, err := Diff(b, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rev.Failed() {
		t.Fatalf("codelength improvement flagged as regression: %+v", rev.Findings)
	}
}

func TestDiffModeledThreshold(t *testing.T) {
	mk := func(modeled int) string {
		return `{"rows": [{"Codelength": 10.0, "Modeled": ` +
			itoa(modeled) + `, "Bytes": 1000}]}`
	}
	a := writeDir(t, map[string]string{"fig4.json": mk(1000000)})

	// +5% modeled: within the 10% threshold, reported but not failed.
	b := writeDir(t, map[string]string{"fig4.json": mk(1050000)})
	rep, err := Diff(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("+5%% modeled flagged: %+v", rep.Findings)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Class != ClassModeled {
		t.Fatalf("want one informational modeled finding, got %+v", rep.Findings)
	}

	// +15% modeled: beyond the threshold.
	c := writeDir(t, map[string]string{"fig4.json": mk(1150000)})
	rep, err = Diff(a, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || rep.Findings[0].Class != ClassModeled {
		t.Fatalf("+15%% modeled not flagged: %+v", rep.Findings)
	}

	// A looser explicit threshold lets it pass.
	rep, err = Diff(a, c, Options{ModeledTol: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("+15%% modeled flagged despite 25%% tolerance: %+v", rep.Findings)
	}
}

func TestDiffBytesByKind(t *testing.T) {
	mk := func(ghost int) string {
		return `{"comms": {"totals": {"bytes_sent": 5000},
  "by_kind": {"ghost_update": {"bytes_sent": ` + itoa(ghost) + `, "msgs_sent": 40}}}}`
	}
	a := writeDir(t, map[string]string{"report.json": mk(1000)})
	b := writeDir(t, map[string]string{"report.json": mk(1300)})
	rep, err := Diff(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("+30%% ghost_update bytes not flagged: %+v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Class != ClassBytes {
		t.Fatalf("finding class %q, want bytes: %+v", f.Class, f)
	}
}

func TestDiffIgnoresWallAndAdditiveFields(t *testing.T) {
	a := writeDir(t, map[string]string{"report.json": `{
  "codelength": 10.0, "wall_ns": 123456, "stage1_wall_ns": 111}`})
	b := writeDir(t, map[string]string{"report.json": `{
  "codelength": 10.0, "wall_ns": 999999, "stage1_wall_ns": 222,
  "comms": {"by_kind": {"setup": {"bytes_sent": 9}}}}`})
	rep, err := Diff(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("wall drift or additive field flagged: %+v", rep.Findings)
	}
	// The additive comms subtree shows up as a structural note only.
	for _, f := range rep.Findings {
		if f.Class != ClassStructure {
			t.Fatalf("unexpected non-structural finding: %+v", f)
		}
	}
}

func TestDiffFileSets(t *testing.T) {
	a := writeDir(t, map[string]string{
		"table1.json": baseExperiment,
		"old.json":    `{"x": 1}`,
	})
	b := writeDir(t, map[string]string{
		"table1.json": baseExperiment,
		"new.json":    `{"y": 2}`,
	})
	rep, err := Diff(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("disjoint extras flagged: %+v", rep.Findings)
	}
	if len(rep.Files) != 1 || rep.Files[0] != "table1.json" {
		t.Fatalf("compared files %v, want [table1.json]", rep.Files)
	}
	if len(rep.OnlyBaseline) != 1 || rep.OnlyBaseline[0] != "old.json" {
		t.Fatalf("only-baseline %v", rep.OnlyBaseline)
	}
	if len(rep.OnlyCandidate) != 1 || rep.OnlyCandidate[0] != "new.json" {
		t.Fatalf("only-candidate %v", rep.OnlyCandidate)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct{ path, want string }{
		{"$.rows[0].Codelength", ClassCodelength},
		{"$.initial_codelength", ClassCodelength},
		{"$.rows[2].Modeled", ClassModeled},
		{"$.ranks[1].phase_modeled_ns.FindBestModule", ClassModeled},
		{"$.comms.by_kind.ghost_update.bytes_sent", ClassBytes},
		{"$.rows[0].Bytes", ClassBytes},
		{"$.rows[0].SeqNMI", ClassQuality},
		{"$.rows[0].Iterations", ClassOther},
		{"$.benchmarks.SweepPass.ns_per_op", ClassTime},
		{"$.benchmarks.SweepPass.allocs_per_op", ClassAllocs},
		// Golden-file aliases: fig4/5 finals, table3, fig9, fig8 phases.
		{"$.rows[0].SeqFinal", ClassCodelength},
		{"$.rows[1].DistFinal", ClassCodelength},
		{"$.rows[0].OursL", ClassCodelength},
		{"$.rows[0].BaselineL", ClassCodelength},
		{"$.rows[0].Ours", ClassModeled},
		{"$.rows[0].Baseline", ClassModeled},
		{"$.rows[2].Stage1", ClassModeled},
		{"$.rows[2].Total", ClassModeled},
		{"$.rows[0].Phases.FindBestModule", ClassModeled},
		{"$.rows[0].BaselineP", ClassOther},
		{"$.rows[0].Sequential[2]", ClassOther},
	}
	for _, c := range cases {
		if got := classify(c.path); got != c.want {
			t.Errorf("classify(%q) = %q, want %q", c.path, got, c.want)
		}
	}
	if !ignoredPath("$.ranks[0].iterations[3].wall_ns") {
		t.Error("wall_ns not ignored")
	}
	if ignoredPath("$.rows[0].Modeled") {
		t.Error("Modeled wrongly ignored")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

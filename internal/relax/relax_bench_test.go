package relax

import (
	"fmt"
	"testing"

	"dinfomap/internal/gen"
)

func BenchmarkRunWorkers(b *testing.B) {
	g, _ := gen.PlantedPartition(3, gen.PlantedConfig{
		N: 5000, NumComms: 100, AvgDegree: 10, Mixing: 0.2,
	})
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(g, Config{Workers: w, Seed: uint64(i)})
			}
		})
	}
}

package relax

import (
	"math"
	"testing"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/infomap"
	"dinfomap/internal/metrics"
)

func TestEmptyAndEdgeless(t *testing.T) {
	if r := Run(graph.NewBuilder(0).Build(), Config{}); r.NumModules != 0 {
		t.Fatalf("empty: %+v", r)
	}
	if r := Run(graph.NewBuilder(5).Build(), Config{}); r.NumModules != 5 {
		t.Fatalf("edgeless: %+v", r)
	}
}

func TestTwoTriangles(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	r := Run(g, Config{Workers: 2, Seed: 1})
	c := r.Communities
	if r.NumModules != 2 || c[0] != c[1] || c[1] != c[2] ||
		c[3] != c[4] || c[4] != c[5] || c[0] == c[3] {
		t.Fatalf("modules=%d comms=%v", r.NumModules, c)
	}
}

func TestQualityNearSequential(t *testing.T) {
	g, truth := gen.PlantedPartition(3, gen.PlantedConfig{
		N: 800, NumComms: 16, AvgDegree: 10, Mixing: 0.15,
	})
	r := Run(g, Config{Workers: 4, Seed: 3})
	if nmi := metrics.NMI(r.Communities, truth); nmi < 0.8 {
		t.Fatalf("NMI = %.3f, want >= 0.8 (modules=%d)", nmi, r.NumModules)
	}
	seq := infomap.Run(g, infomap.Config{Seed: 3})
	if rel := (r.Codelength - seq.Codelength) / seq.Codelength; rel > 0.1 {
		t.Fatalf("relax L %.4f is %.1f%% worse than sequential %.4f",
			r.Codelength, 100*rel, seq.Codelength)
	}
}

func TestReportedCodelengthExact(t *testing.T) {
	g, _ := gen.PlantedPartition(7, gen.PlantedConfig{
		N: 400, NumComms: 8, AvgDegree: 8, Mixing: 0.2,
	})
	r := Run(g, Config{Workers: 3, Seed: 5})
	l := infomap.CodelengthOf(g, r.Communities)
	if math.Abs(l-r.Codelength) > 1e-6 {
		t.Fatalf("reported %v, actual %v", r.Codelength, l)
	}
}

func TestWorkerCountInsensitiveQuality(t *testing.T) {
	g, truth := gen.PlantedPartition(11, gen.PlantedConfig{
		N: 600, NumComms: 12, AvgDegree: 8, Mixing: 0.2,
	})
	for _, w := range []int{1, 2, 8} {
		r := Run(g, Config{Workers: w, Seed: 7})
		if nmi := metrics.NMI(r.Communities, truth); nmi < 0.7 {
			t.Errorf("workers=%d: NMI = %.3f, want >= 0.7", w, nmi)
		}
	}
}

// Package relax implements a RelaxMap-style shared-memory parallel
// Infomap (Bae et al. 2013): worker threads sweep disjoint vertex
// shards concurrently, evaluating delta-L against module statistics
// read optimistically (possibly slightly stale) and applying moves
// under striped per-module locks. This "relaxed consistency" is the
// paper's shared-memory comparator; the distributed algorithm in
// internal/core is compared against it conceptually in Table 3.
package relax

import (
	"math"
	"sync"
	"sync/atomic"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/mapeq"
)

// Config controls a RelaxMap-style run.
type Config struct {
	// Workers is the number of concurrent sweep workers; <= 0 means 4.
	Workers int
	// Theta is the outer-loop improvement threshold; <= 0 means 1e-10.
	Theta float64
	// MaxIterations bounds outer rounds; <= 0 means 25.
	MaxIterations int
	// MaxSweeps bounds parallel sweeps per level; <= 0 means 100.
	MaxSweeps int
	// Seed randomizes shard visit orders.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Theta <= 0 {
		c.Theta = 1e-10
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 25
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 100
	}
	return c
}

// Result reports a finished run.
type Result struct {
	Communities     []int
	NumModules      int
	Codelength      float64
	OuterIterations int
	Moves           int
}

const lockStripes = 64

// Run executes the parallel algorithm on g.
func Run(g *graph.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	n0 := g.NumVertices()
	res := &Result{Communities: make([]int, n0)}
	for u := range res.Communities {
		res.Communities[u] = u
	}
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if n0 == 0 || g.TotalWeight() == 0 {
		res.NumModules = n0
		return res
	}
	vertexTerm := mapeq.NewVertexFlow(g).SumPlogpP
	level := g
	prevL := math.Inf(1)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		comm, l, moves := optimizeParallel(level, cfg, uint64(iter), vertexTerm)
		res.Moves += moves
		dense, k := graph.Renumber(comm)
		res.OuterIterations++
		for u := range res.Communities {
			res.Communities[u] = dense[res.Communities[u]]
		}
		res.Codelength = l
		res.NumModules = k
		if k == level.NumVertices() || prevL-l < cfg.Theta && iter > 0 {
			break
		}
		prevL = l
		contracted, remap := graph.Contract(level, dense)
		for u := range res.Communities {
			res.Communities[u] = remap[res.Communities[u]]
		}
		level = contracted
		if level.NumVertices() <= 1 {
			break
		}
	}
	dense, k := graph.Renumber(res.Communities)
	res.Communities = dense
	res.NumModules = k
	return res
}

// sharedState is the concurrently mutated level state. Assignments are
// read with atomics (stale reads are the "relaxed" part of RelaxMap);
// module statistics are read and written under striped locks.
type sharedState struct {
	mu    [lockStripes]sync.Mutex
	comm  []atomic.Int64
	mods  []mapeq.Module // guarded by mu[id%lockStripes]
	agg   mapeq.Aggregates
	aggMu sync.Mutex
}

func (s *sharedState) readMod(m int) mapeq.Module {
	s.mu[m%lockStripes].Lock()
	v := s.mods[m]
	s.mu[m%lockStripes].Unlock()
	return v
}

func (s *sharedState) lockPair(a, b int) (unlock func()) {
	i, j := a%lockStripes, b%lockStripes
	if i > j {
		i, j = j, i
	}
	s.mu[i].Lock()
	if j != i {
		s.mu[j].Lock()
	}
	return func() {
		if j != i {
			s.mu[j].Unlock()
		}
		s.mu[i].Unlock()
	}
}

// optimizeParallel runs concurrent sweeps over one level.
func optimizeParallel(g *graph.Graph, cfg Config, salt uint64, vertexTerm float64) (comm []int, l float64, moves int) {
	n := g.NumVertices()
	flow := mapeq.NewVertexFlow(g)
	st := &sharedState{
		comm: make([]atomic.Int64, n),
		mods: make([]mapeq.Module, n),
	}
	inv2W := flow.Norm()
	for u := 0; u < n; u++ {
		st.comm[u].Store(int64(u))
		st.mods[u] = mapeq.Module{SumPr: flow.P[u], ExitPr: flow.Exit[u], Members: 1}
	}
	st.agg = mapeq.AggregateModules(st.mods, vertexTerm)

	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		var wg sync.WaitGroup
		sweptBy := make([]int, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := gen.NewRNG(cfg.Seed ^ salt<<20 ^ uint64(sweep)<<8 ^ uint64(w))
				sweptBy[w] = sweepShard(g, flow, st, inv2W, w, workers, rng)
			}(w)
		}
		wg.Wait()
		total := 0
		for _, s := range sweptBy {
			total += s
		}
		moves += total
		if total == 0 {
			break
		}
	}
	// Exact codelength of the final assignment (stale optimistic
	// aggregates are discarded).
	comm = make([]int, n)
	for u := range comm {
		comm[u] = int(st.comm[u].Load())
	}
	l = exactL(g, flow, comm, vertexTerm)
	return comm, l, moves
}

// sweepShard processes the vertices of one shard: optimistic delta-L
// evaluation, locked move application with re-validation of the source
// community (RelaxMap's relaxation: target stats may be stale).
func sweepShard(g *graph.Graph, flow *mapeq.VertexFlow, st *sharedState,
	inv2W float64, shard, workers int, rng *gen.RNG) int {

	var mine []int
	for u := shard; u < g.NumVertices(); u += workers {
		mine = append(mine, u)
	}
	rng.Shuffle(mine)
	moves := 0
	wTo := make(map[int]float64, 16)
	for _, u := range mine {
		for k := range wTo {
			delete(wTo, k)
		}
		from := int(st.comm[u].Load())
		g.Neighbors(u, func(v int, w float64) {
			if v != u {
				wTo[int(st.comm[v].Load())] += w * inv2W
			}
		})
		if len(wTo) == 0 {
			continue
		}
		mv := mapeq.Move{PU: flow.P[u], ExitU: flow.Exit[u], WToFrom: wTo[from]}
		st.aggMu.Lock()
		agg := st.agg
		st.aggMu.Unlock()
		best := 0.0
		bestC := from
		fromMod := st.readMod(from)
		for c, w := range wTo {
			if c == from {
				continue
			}
			mv.WToTo = w
			if d := mapeq.DeltaL(agg, fromMod, st.readMod(c), mv); d < best-1e-15 {
				best = d
				bestC = c
			}
		}
		if bestC == from {
			continue
		}
		unlock := st.lockPair(from, bestC)
		// Re-validate: u must still be in from, and from must still
		// hold u's probability mass.
		if int(st.comm[u].Load()) != from || st.mods[from].Members == 0 {
			unlock()
			continue
		}
		mv.WToTo = wTo[bestC]
		var nf, nt mapeq.Module
		st.aggMu.Lock()
		st.agg, nf, nt = mapeq.ApplyMove(st.agg, st.mods[from], st.mods[bestC], mv)
		st.aggMu.Unlock()
		st.mods[from] = nf
		st.mods[bestC] = nt
		st.comm[u].Store(int64(bestC))
		unlock()
		moves++
	}
	return moves
}

// exactL evaluates the two-level codelength of comm on g from scratch.
func exactL(g *graph.Graph, flow *mapeq.VertexFlow, comm []int, vertexTerm float64) float64 {
	dense, k := graph.Renumber(comm)
	mods := make([]mapeq.Module, k)
	inv2W := flow.Norm()
	for u := 0; u < g.NumVertices(); u++ {
		c := dense[u]
		mods[c].SumPr += flow.P[u]
		mods[c].Members++
		g.Neighbors(u, func(v int, w float64) {
			if v != u && dense[v] != c {
				mods[c].ExitPr += w * inv2W
			}
		})
	}
	return mapeq.AggregateModules(mods, vertexTerm).L()
}

package louvain

import (
	"math"
	"testing"

	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
	"dinfomap/internal/metrics"
)

func TestEmptyAndEdgeless(t *testing.T) {
	if r := Run(graph.NewBuilder(0).Build(), Config{}); r.NumCommunities != 0 {
		t.Fatalf("empty: %+v", r)
	}
	if r := Run(graph.NewBuilder(3).Build(), Config{}); r.NumCommunities != 3 {
		t.Fatalf("edgeless: %+v", r)
	}
}

func TestTwoTriangles(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	r := Run(g, Config{Seed: 1})
	if r.NumCommunities != 2 {
		t.Fatalf("NumCommunities = %d, want 2", r.NumCommunities)
	}
	c := r.Communities
	if c[0] != c[1] || c[1] != c[2] || c[3] != c[4] || c[4] != c[5] || c[0] == c[3] {
		t.Fatalf("wrong split: %v", c)
	}
	// Hand-computed optimum Q = 5/14 (see metrics tests).
	if math.Abs(r.Modularity-5.0/14) > 1e-9 {
		t.Fatalf("Q = %v, want %v", r.Modularity, 5.0/14)
	}
}

func TestReportedModularityMatchesPartition(t *testing.T) {
	g, _ := gen.PlantedPartition(7, gen.PlantedConfig{
		N: 500, NumComms: 10, AvgDegree: 8, Mixing: 0.2,
	})
	r := Run(g, Config{Seed: 3})
	q := metrics.Modularity(g, r.Communities)
	if math.Abs(q-r.Modularity) > 1e-9 {
		t.Fatalf("reported Q = %v, partition evaluates to %v", r.Modularity, q)
	}
}

func TestRecoversPlantedCommunities(t *testing.T) {
	g, truth := gen.PlantedPartition(11, gen.PlantedConfig{
		N: 600, NumComms: 12, AvgDegree: 10, Mixing: 0.1,
	})
	r := Run(g, Config{Seed: 5})
	if nmi := metrics.NMI(r.Communities, truth); nmi < 0.8 {
		t.Fatalf("NMI = %.3f, want >= 0.8 (found %d communities)", nmi, r.NumCommunities)
	}
	if r.Modularity < 0.5 {
		t.Fatalf("Q = %.3f, want >= 0.5", r.Modularity)
	}
}

func TestDeterministic(t *testing.T) {
	g, _ := gen.PlantedPartition(13, gen.PlantedConfig{
		N: 300, NumComms: 6, AvgDegree: 8, Mixing: 0.2,
	})
	a := Run(g, Config{Seed: 9})
	b := Run(g, Config{Seed: 9})
	if a.Modularity != b.Modularity || a.NumCommunities != b.NumCommunities {
		t.Fatalf("nondeterministic: %v/%v", a.Modularity, b.Modularity)
	}
}

func TestSelfLoopsHandled(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	r := Run(b.Build(), Config{Seed: 1})
	q := metrics.Modularity(b.Build(), r.Communities)
	if math.Abs(q-r.Modularity) > 1e-9 {
		t.Fatalf("self-loop modularity inconsistent: %v vs %v", r.Modularity, q)
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	g, _ := gen.PlantedPartition(17, gen.PlantedConfig{
		N: 400, NumComms: 8, AvgDegree: 8, Mixing: 0.3,
	})
	r := Run(g, Config{Seed: 1, MaxIterations: 1})
	if r.Levels != 1 {
		t.Fatalf("Levels = %d, want 1", r.Levels)
	}
}

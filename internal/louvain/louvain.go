// Package louvain implements the sequential Louvain algorithm (Blondel
// et al. 2008), the modularity-based community detection method the
// paper repeatedly contrasts with Infomap: easier to scale, but a
// different objective. It serves as a cross-algorithm reference in the
// examples and experiments.
package louvain

import (
	"dinfomap/internal/gen"
	"dinfomap/internal/graph"
)

// Config controls a Louvain run.
type Config struct {
	// MinGain is the modularity gain threshold for the outer loop;
	// <= 0 means 1e-9.
	MinGain float64
	// MaxIterations bounds outer (optimize + aggregate) rounds;
	// <= 0 means 25.
	MaxIterations int
	// MaxSweeps bounds inner sweeps per level; <= 0 means 100.
	MaxSweeps int
	// Seed randomizes vertex visit order.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.MinGain <= 0 {
		c.MinGain = 1e-9
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 25
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 100
	}
	return c
}

// Result reports a finished Louvain run.
type Result struct {
	// Communities assigns each original vertex its final community
	// (dense ids).
	Communities []int
	// NumCommunities is the number of final communities.
	NumCommunities int
	// Modularity is the Newman modularity Q of the final partition.
	Modularity float64
	// Levels is the number of aggregation levels executed.
	Levels int
	// Moves counts accepted vertex moves.
	Moves int
}

// Run executes Louvain on g.
func Run(g *graph.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	n0 := g.NumVertices()
	res := &Result{Communities: make([]int, n0)}
	for u := range res.Communities {
		res.Communities[u] = u
	}
	//dinfomap:float-ok exact emptiness guard: weight is a sum of strictly positive addends
	if n0 == 0 || g.TotalWeight() == 0 {
		res.NumCommunities = n0
		return res
	}
	rng := gen.NewRNG(cfg.Seed + 0x85ebca6b)
	level := g
	prevQ := -1.0
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		comm, q, moves := optimizeModularity(level, rng, cfg.MaxSweeps)
		res.Moves += moves
		dense, k := graph.Renumber(comm)
		res.Levels++
		for u := range res.Communities {
			res.Communities[u] = dense[res.Communities[u]]
		}
		res.Modularity = q
		res.NumCommunities = k
		if k == level.NumVertices() || q-prevQ < cfg.MinGain && iter > 0 {
			break
		}
		prevQ = q
		contracted, remap := graph.Contract(level, dense)
		for u := range res.Communities {
			res.Communities[u] = remap[res.Communities[u]]
		}
		level = contracted
		if level.NumVertices() <= 1 {
			break
		}
	}
	dense, k := graph.Renumber(res.Communities)
	res.Communities = dense
	res.NumCommunities = k
	return res
}

// optimizeModularity runs the Louvain inner loop on one level, starting
// from singletons. Returns the assignment, the modularity of the level
// partition, and the number of accepted moves.
func optimizeModularity(g *graph.Graph, rng *gen.RNG, maxSweeps int) (comm []int, q float64, moves int) {
	n := g.NumVertices()
	m2 := 2 * g.TotalWeight() // 2W

	strength := make([]float64, n) // k_u
	selfW := make([]float64, n)
	for u := 0; u < n; u++ {
		g.Neighbors(u, func(v int, w float64) {
			if v == u {
				strength[u] += 2 * w
				selfW[u] += w
			} else {
				strength[u] += w
			}
		})
	}
	comm = make([]int, n)
	tot := make([]float64, n) // sum of strengths per community
	in := make([]float64, n)  // twice intra weight per community
	for u := 0; u < n; u++ {
		comm[u] = u
		tot[u] = strength[u]
		in[u] = 2 * selfW[u]
	}

	wTo := make([]float64, n)
	var touched []int
	order := rng.Perm(n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		swept := 0
		rng.Shuffle(order)
		for _, u := range order {
			cu := comm[u]
			touched = touched[:0]
			g.Neighbors(u, func(v int, w float64) {
				if v == u {
					return
				}
				c := comm[v]
				//dinfomap:float-ok untouched-slot sentinel: cleared to exact 0, only positive weights added
				if wTo[c] == 0 {
					touched = append(touched, c)
				}
				wTo[c] += w
			})
			if len(touched) == 0 {
				continue
			}
			// Remove u from its community.
			tot[cu] -= strength[u]
			in[cu] -= 2*wTo[cu] + 2*selfW[u]
			// Gain of joining community c:
			//   dQ = w(u,c)/W - k_u * tot_c / (2W^2)  (up to constants)
			best := cu
			bestGain := wTo[cu] - strength[u]*tot[cu]/m2
			for _, c := range touched {
				if c == cu {
					continue
				}
				gain := wTo[c] - strength[u]*tot[c]/m2
				if gain > bestGain+1e-15 {
					bestGain = gain
					best = c
				}
			}
			// Insert u into the best community.
			tot[best] += strength[u]
			in[best] += 2*wTo[best] + 2*selfW[u]
			if best != cu {
				comm[u] = best
				swept++
			}
			for _, c := range touched {
				wTo[c] = 0
			}
		}
		moves += swept
		if swept == 0 {
			break
		}
	}
	// Modularity of the level partition.
	q = 0
	seen := make(map[int]bool)
	for u := 0; u < n; u++ {
		c := comm[u]
		if !seen[c] {
			seen[c] = true
			q += in[c]/m2 - (tot[c]/m2)*(tot[c]/m2)
		}
	}
	return comm, q, moves
}

// Package gen generates the synthetic graphs used throughout the
// reproduction: power-law graphs standing in for the paper's web crawls
// and social networks (Table 1), and planted-partition graphs with ground
// truth for the quality experiments (Table 2).
//
// All generators are deterministic given a seed, so every experiment and
// test in this repository is exactly reproducible.
package gen

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64). It is value-copyable and has no locks, which keeps
// generators allocation-free and safe to shard across ranks by giving
// each rank an independently seeded copy.
type RNG struct{ state uint64 }

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly random int in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p (number of failures before the first success). Used by
// edge-skipping samplers.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32
	}
	u := r.Float64()
	//dinfomap:float-ok Float64 can return exactly 0, which log() must not see
	if u == 0 {
		u = 0.5
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// PowerLawDegrees samples n degrees from a discrete power law with
// exponent gamma on [dmin, dmax] via inverse-CDF sampling of the
// continuous law, rounded down. This is the standard way to realize a
// scale-free degree sequence for Chung-Lu style generators.
func PowerLawDegrees(r *RNG, n int, gamma float64, dmin, dmax int) []int {
	if dmin < 1 {
		dmin = 1
	}
	if dmax < dmin {
		dmax = dmin
	}
	a, b := float64(dmin), float64(dmax)+1
	oneMinusGamma := 1 - gamma
	degs := make([]int, n)
	for i := range degs {
		u := r.Float64()
		var x float64
		if math.Abs(oneMinusGamma) < 1e-12 {
			x = a * math.Exp(u*math.Log(b/a))
		} else {
			x = math.Pow(u*(math.Pow(b, oneMinusGamma)-math.Pow(a, oneMinusGamma))+
				math.Pow(a, oneMinusGamma), 1/oneMinusGamma)
		}
		d := int(x)
		if d < dmin {
			d = dmin
		}
		if d > dmax {
			d = dmax
		}
		degs[i] = d
	}
	return degs
}

package gen

import (
	"math"

	"dinfomap/internal/graph"
)

// PlantedConfig parameterizes a planted-partition (LFR-style) graph:
// communities of heterogeneous sizes with dense intra-community and
// sparse inter-community connectivity, plus optional power-law degrees.
type PlantedConfig struct {
	N             int     // number of vertices
	NumComms      int     // number of planted communities
	AvgDegree     float64 // target average degree
	Mixing        float64 // mu: fraction of each vertex's edges leaving its community
	SizeSkew      float64 // 0 = equal community sizes; 1 = strongly skewed (power-law-ish)
	DegreeGamma   float64 // power-law exponent for desired degrees; <= 0 means uniform degrees
	MaxDegreeFrac float64 // max degree as a fraction of N (default 0.1)
}

// PlantedPartition generates a graph with ground-truth communities.
// Returns the graph and truth[u] = planted community of u.
//
// This generator plays the role of the paper's Amazon/DBLP datasets with
// ground-truth communities (Yang & Leskovec), enabling the NMI/F-measure/
// Jaccard quality comparison of Table 2.
func PlantedPartition(seed uint64, cfg PlantedConfig) (*graph.Graph, []int) {
	r := NewRNG(seed)
	n := cfg.N
	k := cfg.NumComms
	if k < 1 {
		k = 1
	}
	if n < k {
		n = k
	}
	maxDeg := int(cfg.MaxDegreeFrac * float64(n))
	if maxDeg < 3 {
		maxDeg = max(3, n/10)
	}

	// Community sizes: base share plus skew.
	sizes := communitySizes(r, n, k, cfg.SizeSkew)

	truth := make([]int, n)
	members := make([][]int, k)
	u := 0
	for c := 0; c < k; c++ {
		members[c] = make([]int, 0, sizes[c])
		for i := 0; i < sizes[c]; i++ {
			truth[u] = c
			members[c] = append(members[c], u)
			u++
		}
	}

	// Desired degrees.
	degs := make([]int, n)
	if cfg.DegreeGamma > 0 {
		dmin := maxInt(1, int(cfg.AvgDegree/3))
		raw := PowerLawDegrees(r, n, cfg.DegreeGamma, dmin, maxDeg)
		// Rescale to hit the average degree approximately.
		sum := 0
		for _, d := range raw {
			sum += d
		}
		target := cfg.AvgDegree * float64(n)
		scale := target / float64(sum)
		for i, d := range raw {
			v := int(float64(d) * scale)
			if v < 1 {
				v = 1
			}
			degs[i] = v
		}
	} else {
		for i := range degs {
			degs[i] = int(cfg.AvgDegree)
			if cfg.AvgDegree > float64(int(cfg.AvgDegree)) && r.Float64() < cfg.AvgDegree-float64(int(cfg.AvgDegree)) {
				degs[i]++
			}
			if degs[i] < 1 {
				degs[i] = 1
			}
		}
	}

	// Split each vertex's stubs into intra and inter parts by mu.
	mu := cfg.Mixing
	if mu < 0 {
		mu = 0
	}
	if mu > 1 {
		mu = 1
	}
	b := graph.NewBuilder(n)
	intraStubs := make([][]int, k) // per community: repeated vertex list
	var interStubs []int
	for v := 0; v < n; v++ {
		intra := int(float64(degs[v])*(1-mu) + 0.5)
		inter := degs[v] - intra
		c := truth[v]
		for i := 0; i < intra; i++ {
			intraStubs[c] = append(intraStubs[c], v)
		}
		for i := 0; i < inter; i++ {
			interStubs = append(interStubs, v)
		}
	}
	// Pair intra stubs within each community (configuration model).
	for c := 0; c < k; c++ {
		pairStubs(r, intraStubs[c], b, nil)
	}
	// Pair inter stubs globally, rejecting same-community pairs where
	// possible.
	pairStubs(r, interStubs, b, truth)
	return b.Build(), truth
}

// pairStubs shuffles stubs and pairs them up into edges. When truth is
// non-nil, pairs within the same community are retried a few times to keep
// the mixing parameter honest; leftover conflicting pairs are dropped.
func pairStubs(r *RNG, stubs []int, b *graph.Builder, truth []int) {
	r.Shuffle(stubs)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue // drop self-loop
		}
		if truth != nil && truth[u] == truth[v] {
			// Try to swap v with a later stub from a different community.
			swapped := false
			for attempt := 0; attempt < 8; attempt++ {
				j := i + 2 + r.Intn(maxInt(1, len(stubs)-i-2))
				if j < len(stubs) && truth[stubs[j]] != truth[u] && stubs[j] != u {
					stubs[i+1], stubs[j] = stubs[j], stubs[i+1]
					v = stubs[i+1]
					swapped = true
					break
				}
			}
			if !swapped {
				continue // drop rather than violate mixing badly
			}
		}
		b.AddEdge(u, v)
	}
}

func communitySizes(r *RNG, n, k int, skew float64) []int {
	sizes := make([]int, k)
	if skew <= 0 {
		base := n / k
		rem := n - base*k
		for c := range sizes {
			sizes[c] = base
			if c < rem {
				sizes[c]++
			}
		}
		return sizes
	}
	// Skewed: weight community c by (c+1)^(-skew*2) normalized.
	ws := make([]float64, k)
	total := 0.0
	for c := range ws {
		ws[c] = 1.0 / math.Pow(float64(c+1), skew*2)
		total += ws[c]
	}
	assigned := 0
	for c := range sizes {
		sizes[c] = int(float64(n) * ws[c] / total)
		if sizes[c] < 1 {
			sizes[c] = 1
		}
		assigned += sizes[c]
	}
	// Fix rounding drift on the largest community.
	sizes[0] += n - assigned
	if sizes[0] < 1 {
		sizes[0] = 1
	}
	return sizes
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max(a, b int) int { return maxInt(a, b) }

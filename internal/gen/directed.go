package gen

import "dinfomap/internal/digraph"

// DirectedPlantedConfig parameterizes the directed planted-partition
// generator: communities with dense internal arc flow and sparse,
// possibly asymmetric, cross-community arcs — a citation-network-like
// structure for exercising the directed Infomap extension.
type DirectedPlantedConfig struct {
	N          int     // vertices
	NumComms   int     // planted communities
	AvgOutDeg  float64 // average out-degree
	Mixing     float64 // fraction of arcs leaving the community
	Reciprocal float64 // probability a generated arc gets a reverse arc
}

// DirectedPlanted generates a directed graph with ground-truth
// communities. Returns the graph and truth[u].
func DirectedPlanted(seed uint64, cfg DirectedPlantedConfig) (*digraph.Graph, []int) {
	r := NewRNG(seed)
	n := cfg.N
	k := cfg.NumComms
	if k < 1 {
		k = 1
	}
	if n < k {
		n = k
	}
	truth := make([]int, n)
	members := make([][]int, k)
	for u := 0; u < n; u++ {
		c := u * k / n
		truth[u] = c
		members[c] = append(members[c], u)
	}
	b := digraph.NewBuilder(n)
	arcs := int(cfg.AvgOutDeg * float64(n))
	for i := 0; i < arcs; i++ {
		u := r.Intn(n)
		var v int
		if r.Float64() < cfg.Mixing {
			v = r.Intn(n) // anywhere
		} else {
			m := members[truth[u]]
			v = m[r.Intn(len(m))]
		}
		if u == v {
			continue
		}
		b.AddArc(u, v)
		if r.Float64() < cfg.Reciprocal {
			b.AddArc(v, u)
		}
	}
	return b.Build(), truth
}

// DirectedCitation generates a DAG-like citation network: vertices are
// ordered by "publication time" and cite earlier vertices, mostly
// within their own field (community), with preferential attachment
// toward highly cited vertices.
func DirectedCitation(seed uint64, n, fields int, refsPerPaper int, mixing float64) (*digraph.Graph, []int) {
	r := NewRNG(seed)
	if fields < 1 {
		fields = 1
	}
	truth := make([]int, n)
	cites := make([]int, n) // citation counts, for preferential attachment
	byField := make([][]int, fields)
	b := digraph.NewBuilder(n)
	for u := 0; u < n; u++ {
		f := r.Intn(fields)
		truth[u] = f
		for c := 0; c < refsPerPaper && u > 0; c++ {
			field := f
			if r.Float64() < mixing {
				field = r.Intn(fields)
			}
			pool := byField[field]
			var v int
			switch {
			case len(pool) == 0:
				v = r.Intn(u) // any earlier paper
			case r.Float64() < 0.5 && cites[pool[len(pool)-1]] >= 0:
				// Preferential: sample two, keep the more-cited.
				a := pool[r.Intn(len(pool))]
				c2 := pool[r.Intn(len(pool))]
				if cites[c2] > cites[a] {
					a = c2
				}
				v = a
			default:
				v = pool[r.Intn(len(pool))]
			}
			if v != u {
				b.AddArc(u, v)
				cites[v]++
			}
		}
		byField[f] = append(byField[f], u)
	}
	return b.Build(), truth
}

package gen

import (
	"math"
	"testing"
	"testing/quick"

	"dinfomap/internal/graph"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	p := NewRNG(5).Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPowerLawDegreesBounds(t *testing.T) {
	r := NewRNG(9)
	degs := PowerLawDegrees(r, 5000, 2.5, 2, 100)
	for _, d := range degs {
		if d < 2 || d > 100 {
			t.Fatalf("degree %d out of [2,100]", d)
		}
	}
	// Power law: most mass near dmin.
	low := 0
	for _, d := range degs {
		if d <= 4 {
			low++
		}
	}
	if float64(low)/float64(len(degs)) < 0.5 {
		t.Errorf("only %d/%d degrees <= 4; expected majority near dmin", low, len(degs))
	}
}

func TestChungLuShape(t *testing.T) {
	g := PowerLawGraph(11, 5000, 2.1, 2, 500)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeDegreeStats(g)
	if st.Max < 20 {
		t.Errorf("max degree %d too small; expected hubs", st.Max)
	}
	if st.HubFrac < 0.05 {
		t.Errorf("hub arc share %.2f too small for a scale-free graph", st.HubFrac)
	}
	if g.NumEdges() < 1000 {
		t.Errorf("only %d edges; generator too sparse", g.NumEdges())
	}
}

func TestChungLuEmptyWeights(t *testing.T) {
	g := ChungLu(NewRNG(1), []float64{0, 0, 0})
	if g.NumEdges() != 0 || g.NumVertices() != 3 {
		t.Fatalf("n=%d m=%d, want 3/0", g.NumVertices(), g.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(13, 2000, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d, want 2000", g.NumVertices())
	}
	// Every non-seed vertex attaches m=3 edges, so m >= 3*(n-m-1).
	if g.NumEdges() < 3*(2000-4) {
		t.Errorf("edges = %d, want >= %d", g.NumEdges(), 3*(2000-4))
	}
	// Connected by construction.
	_, comps := graph.ConnectedComponents(g)
	if comps != 1 {
		t.Errorf("components = %d, want 1", comps)
	}
	st := graph.ComputeDegreeStats(g)
	if st.Max < 30 {
		t.Errorf("max degree %d; preferential attachment should create hubs", st.Max)
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(17, 10, 8000, 0.57, 0.19, 0.19)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d, want 1024", g.NumVertices())
	}
	st := graph.ComputeDegreeStats(g)
	if st.GiniCoeff < 0.3 {
		t.Errorf("gini = %.2f; RMAT should be skewed", st.GiniCoeff)
	}
}

func TestPlantedPartitionGroundTruth(t *testing.T) {
	g, truth := PlantedPartition(19, PlantedConfig{
		N: 2000, NumComms: 40, AvgDegree: 8, Mixing: 0.2, DegreeGamma: 2.5,
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(truth) != g.NumVertices() {
		t.Fatalf("truth has %d entries for %d vertices", len(truth), g.NumVertices())
	}
	// Every community id in [0, 40); every community non-empty.
	seen := make([]int, 40)
	for _, c := range truth {
		if c < 0 || c >= 40 {
			t.Fatalf("community id %d out of range", c)
		}
		seen[c]++
	}
	for c, cnt := range seen {
		if cnt == 0 {
			t.Errorf("community %d empty", c)
		}
	}
	// Mixing honored: intra-community edges dominate.
	intra, inter := 0, 0
	g.Edges(func(u, v int, _ float64) {
		if truth[u] == truth[v] {
			intra++
		} else {
			inter++
		}
	})
	frac := float64(inter) / float64(intra+inter)
	if frac > 0.35 {
		t.Errorf("inter-community edge fraction %.2f, want near mixing 0.2", frac)
	}
	if intra+inter < 2000 {
		t.Errorf("graph too sparse: %d edges", intra+inter)
	}
}

func TestPlantedPartitionZeroMixingIsolatesCommunities(t *testing.T) {
	g, truth := PlantedPartition(23, PlantedConfig{
		N: 500, NumComms: 10, AvgDegree: 6, Mixing: 0,
	})
	g.Edges(func(u, v int, _ float64) {
		if truth[u] != truth[v] {
			t.Fatalf("edge (%d,%d) crosses communities with mixing 0", u, v)
		}
	})
}

func TestDatasetRegistry(t *testing.T) {
	if len(Registry) != 9 {
		t.Fatalf("registry has %d datasets, want 9 (Table 1)", len(Registry))
	}
	for _, name := range Names() {
		d := Registry[name]
		if d.Name == "" || d.Class == "" || d.Kind == "" {
			t.Errorf("dataset %q incompletely specified: %+v", name, d)
		}
	}
	if _, err := Lookup("amazon"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestDatasetGenerateSmall(t *testing.T) {
	for _, name := range []string{"amazon", "dblp", "ndweb"} {
		d := Registry[name]
		g, truth := d.Generate()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", name)
		}
		if d.Kind == "planted" && truth == nil {
			t.Errorf("%s: planted dataset without truth", name)
		}
	}
}

func TestByClass(t *testing.T) {
	small := ByClass("small")
	if len(small) != 3 {
		t.Fatalf("small class has %d datasets, want 3", len(small))
	}
	large := ByClass("large")
	if len(large) != 4 {
		t.Fatalf("large class has %d datasets, want 4", len(large))
	}
}

// Property: generation is deterministic for a given seed.
func TestPropertyGenerationDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		g1 := BarabasiAlbert(seed, 200, 2)
		g2 := BarabasiAlbert(seed, 200, 2)
		if g1.NumEdges() != g2.NumEdges() {
			return false
		}
		equal := true
		g1.Edges(func(u, v int, w float64) {
			if g2.EdgeWeight(u, v) != w {
				equal = false
			}
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: geometric sampler returns non-negative skips and respects
// degenerate probabilities.
func TestPropertyGeometric(t *testing.T) {
	f := func(seed uint64, pRaw uint16) bool {
		r := NewRNG(seed)
		p := float64(pRaw) / 65536.0
		g := r.Geometric(p)
		if g < 0 {
			return false
		}
		if p >= 1 && r.Geometric(1.5) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if NewRNG(1).Geometric(0) != math.MaxInt32 {
		t.Error("Geometric(0) should be effectively infinite")
	}
}

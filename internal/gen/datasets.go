package gen

import (
	"fmt"
	"sort"

	"dinfomap/internal/graph"
)

// Dataset describes one synthetic stand-in for a paper dataset (Table 1).
// Scale is reduced roughly 1000x relative to the paper so the full
// experiment suite runs in a single container; the degree-distribution
// shape (power-law exponent, hub share) and, where the paper's quality
// experiments need it, ground-truth community structure are preserved.
type Dataset struct {
	Name        string // paper dataset this stands in for
	Description string // description from Table 1
	Class       string // "small", "medium", or "large" per Section 4
	Kind        string // generator family: "planted", "ba", "chunglu", "rmat"
	Seed        uint64

	// Generator parameters (interpretation depends on Kind).
	N         int
	AvgDeg    float64
	Gamma     float64
	Mixing    float64
	NumComms  int
	SizeSkew  float64 // planted community-size skew (0 = default 0.3)
	MaxDegFr  float64 // planted max degree as fraction of N (0 = default)
	BAEdges   int
	RMATScale int
	RMATEdges int

	// DegreeSorted relabels vertices in descending-degree order, the
	// id-degree correlation real crawls and social dumps exhibit
	// (crawl order / account age). This is what exposes the 1D block
	// partitioning imbalance of Figures 6-7.
	DegreeSorted bool
}

// Generate materializes the dataset. truth is non-nil only for planted
// datasets (those used in ground-truth quality experiments).
func (d Dataset) Generate() (g *graph.Graph, truth []int) {
	g, truth = d.generate()
	if d.DegreeSorted {
		var perm []int
		g, perm = graph.RelabelByDegree(g)
		if truth != nil {
			relabeled := make([]int, len(truth))
			for old, c := range truth {
				relabeled[perm[old]] = c
			}
			truth = relabeled
		}
	}
	return g, truth
}

func (d Dataset) generate() (g *graph.Graph, truth []int) {
	switch d.Kind {
	case "planted":
		skew := d.SizeSkew
		//dinfomap:float-ok zero-value sentinel: unset config field selects the default
		if skew == 0 {
			skew = 0.3
		}
		return PlantedPartition(d.Seed, PlantedConfig{
			N:             d.N,
			NumComms:      d.NumComms,
			AvgDegree:     d.AvgDeg,
			Mixing:        d.Mixing,
			SizeSkew:      skew,
			DegreeGamma:   d.Gamma,
			MaxDegreeFrac: d.MaxDegFr,
		})
	case "ba":
		return BarabasiAlbert(d.Seed, d.N, d.BAEdges), nil
	case "chunglu":
		dmin := int(d.AvgDeg / 2)
		if dmin < 1 {
			dmin = 1
		}
		return PowerLawGraph(d.Seed, d.N, d.Gamma, dmin, d.N/10), nil
	case "rmat":
		return RMAT(d.Seed, d.RMATScale, d.RMATEdges, 0.57, 0.19, 0.19), nil
	default:
		panic(fmt.Sprintf("gen: unknown dataset kind %q", d.Kind))
	}
}

// Registry maps paper dataset names (lower-cased) to their stand-ins.
// Vertex/edge counts below are ~1/1000 of Table 1 with the same ordering
// of sizes: Amazon < DBLP < ND-Web < YouTube < LiveJournal < UK-2005 <
// WebBase-2001 < Friendster < UK-2007 by edge count.
var Registry = map[string]Dataset{
	"amazon": {
		Name: "Amazon", Class: "small", Kind: "planted", Seed: 101,
		Description: "Frequently co-purchased products (planted communities)",
		N:           3300, NumComms: 120, AvgDeg: 5.6, Mixing: 0.25, Gamma: 2.8,
	},
	"dblp": {
		Name: "DBLP", Class: "small", Kind: "planted", Seed: 102,
		Description: "Co-authorship network (planted communities)",
		N:           3100, NumComms: 100, AvgDeg: 6.7, Mixing: 0.3, Gamma: 2.6,
	},
	"ndweb": {
		Name: "ND-Web", Class: "small", Kind: "rmat", Seed: 103,
		Description: "Web network of University of Notre Dame (RMAT)",
		RMATScale:   12, RMATEdges: 15000,
		DegreeSorted: true,
	},
	"youtube": {
		Name: "YouTube", Class: "medium", Kind: "planted", Seed: 104,
		Description: "YouTube friendship network (power-law planted communities)",
		N:           22000, NumComms: 280, AvgDeg: 5.3, Mixing: 0.25, Gamma: 2.2,
		SizeSkew: 0.4, MaxDegFr: 0.05,
		DegreeSorted: true,
	},
	"livejournal": {
		Name: "LiveJournal", Class: "medium", Kind: "planted", Seed: 105,
		Description: "Virtual-community social site (power-law planted communities)",
		N:           10000, NumComms: 150, AvgDeg: 15, Mixing: 0.3, Gamma: 2.3,
		SizeSkew: 0.4, MaxDegFr: 0.05,
		DegreeSorted: true,
	},
	"uk-2005": {
		Name: "UK-2005", Class: "large", Kind: "planted", Seed: 106,
		Description: ".uk web crawl 2005 (dense hubs, power-law planted communities)",
		N:           39000, NumComms: 400, AvgDeg: 24, Mixing: 0.12, Gamma: 1.9,
		SizeSkew: 0.5, MaxDegFr: 0.08,
		DegreeSorted: true,
	},
	"webbase-2001": {
		Name: "WebBase-2001", Class: "large", Kind: "planted", Seed: 107,
		Description: "WebBase crawl graph (power-law planted communities)",
		N:           118000, NumComms: 1200, AvgDeg: 17, Mixing: 0.12, Gamma: 2.1,
		SizeSkew: 0.5, MaxDegFr: 0.04,
		DegreeSorted: true,
	},
	"friendster": {
		Name: "Friendster", Class: "large", Kind: "planted", Seed: 108,
		Description: "On-line gaming network (power-law planted communities)",
		N:           65000, NumComms: 500, AvgDeg: 28, Mixing: 0.3, Gamma: 2.2,
		SizeSkew: 0.4, MaxDegFr: 0.04,
		DegreeSorted: true,
	},
	"uk-2007": {
		Name: "UK-2007", Class: "large", Kind: "planted", Seed: 109,
		Description: ".uk web crawl 2007 (largest; power-law planted communities)",
		N:           105000, NumComms: 900, AvgDeg: 36, Mixing: 0.1, Gamma: 1.9,
		SizeSkew: 0.5, MaxDegFr: 0.06,
		DegreeSorted: true,
	},
}

// Names returns registry keys in deterministic (sorted) order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByClass returns registry keys of the given class ("small", "medium",
// "large") sorted by name.
func ByClass(class string) []string {
	var names []string
	for n, d := range Registry {
		if d.Class == class {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Lookup returns a dataset by (case-sensitive lower) name.
func Lookup(name string) (Dataset, error) {
	d, ok := Registry[name]
	if !ok {
		return Dataset{}, fmt.Errorf("gen: unknown dataset %q (known: %v)", name, Names())
	}
	return d, nil
}

package gen

import (
	"testing"
)

func TestDirectedPlantedShape(t *testing.T) {
	g, truth := DirectedPlanted(5, DirectedPlantedConfig{
		N: 1000, NumComms: 10, AvgOutDeg: 8, Mixing: 0.2, Reciprocal: 0.3,
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if len(truth) != 1000 {
		t.Fatalf("truth len %d", len(truth))
	}
	// Arc count near n*avgOutDeg (self-arc rejections and merges shave
	// a little; reciprocity adds).
	if g.NumArcs() < 6000 {
		t.Fatalf("arcs = %d, too sparse", g.NumArcs())
	}
	// Mixing honored: most arcs intra-community.
	intra, inter := 0, 0
	for u := 0; u < g.NumVertices(); u++ {
		g.OutNeighbors(u, func(v int, _ float64) {
			if truth[u] == truth[v] {
				intra++
			} else {
				inter++
			}
		})
	}
	if frac := float64(inter) / float64(intra+inter); frac > 0.3 {
		t.Fatalf("inter-community arc fraction %.2f, want < 0.3", frac)
	}
}

func TestDirectedPlantedAllCommunitiesNonEmpty(t *testing.T) {
	_, truth := DirectedPlanted(7, DirectedPlantedConfig{
		N: 100, NumComms: 10, AvgOutDeg: 5, Mixing: 0.1,
	})
	seen := make([]bool, 10)
	for _, c := range truth {
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("community %d empty", c)
		}
	}
}

func TestDirectedCitationIsAcyclicByConstruction(t *testing.T) {
	g, truth := DirectedCitation(11, 500, 5, 4, 0.1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(truth) != 500 {
		t.Fatalf("truth len %d", len(truth))
	}
	// Papers cite only earlier papers: every arc goes to a smaller id.
	for u := 0; u < g.NumVertices(); u++ {
		g.OutNeighbors(u, func(v int, _ float64) {
			if v >= u {
				t.Fatalf("arc (%d,%d) violates citation time order", u, v)
			}
		})
	}
}

func TestDirectedCitationPreferentialAttachment(t *testing.T) {
	g, _ := DirectedCitation(13, 2000, 4, 6, 0.1)
	// In-degree (citations received) should be skewed: early papers
	// accumulate many citations.
	maxIn := 0
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.InDegree(u); d > maxIn {
			maxIn = d
		}
	}
	if maxIn < 30 {
		t.Fatalf("max citations = %d, expected heavy hitters", maxIn)
	}
}

func TestDirectedDeterministic(t *testing.T) {
	a, _ := DirectedPlanted(17, DirectedPlantedConfig{N: 200, NumComms: 4, AvgOutDeg: 5, Mixing: 0.2})
	b, _ := DirectedPlanted(17, DirectedPlantedConfig{N: 200, NumComms: 4, AvgOutDeg: 5, Mixing: 0.2})
	if a.NumArcs() != b.NumArcs() || a.TotalWeight() != b.TotalWeight() {
		t.Fatal("directed generation nondeterministic")
	}
}

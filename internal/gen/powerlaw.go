package gen

import (
	"dinfomap/internal/graph"
)

// ChungLu generates an undirected graph whose expected degree sequence is
// the given weights, using the efficient "Miller-Hagberg" style sampler:
// vertices are processed in descending weight order and neighbor
// candidates are skipped geometrically. Self-loops and parallel edges are
// suppressed. Expected edge count is sum(w)^2 / (2*sum(w)) up to
// truncation of probabilities at 1.
//
// Chung-Lu graphs with power-law weights reproduce the hub structure that
// drives the paper's workload-imbalance experiments (Figures 6-7): a few
// vertices of extreme degree plus a long tail of low-degree vertices.
func ChungLu(r *RNG, weights []float64) *graph.Graph {
	n := len(weights)
	// Sort indices by descending weight; sampling assumes monotone weights.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Simple counting-free sort: insertion on mostly-sorted inputs would be
	// slow in the worst case, so use the stdlib via a sortable view.
	sortByWeightDesc(order, weights)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return graph.NewBuilder(n).Build()
	}
	b := graph.NewBuilder(n)
	for iu := 0; iu < n; iu++ {
		u := order[iu]
		wu := weights[u]
		if wu <= 0 {
			break
		}
		iv := iu + 1
		// Probability of edge to the next candidate, truncated at 1.
		for iv < n {
			v := order[iv]
			p := wu * weights[v] / total
			if p >= 1 {
				b.AddEdge(u, v)
				iv++
				continue
			}
			if p <= 0 {
				break
			}
			// Skip ahead geometrically using the current p as an upper
			// bound for subsequent candidates (weights are descending),
			// then accept with ratio correction.
			skip := r.Geometric(p)
			iv += skip
			if iv >= n {
				break
			}
			v = order[iv]
			q := wu * weights[v] / total
			if r.Float64() < q/p {
				b.AddEdge(u, v)
			}
			iv++
		}
	}
	return b.Build()
}

// PowerLawGraph generates an n-vertex Chung-Lu graph with a power-law
// expected degree sequence (exponent gamma, degrees in [dmin, dmax]).
func PowerLawGraph(seed uint64, n int, gamma float64, dmin, dmax int) *graph.Graph {
	r := NewRNG(seed)
	degs := PowerLawDegrees(r, n, gamma, dmin, dmax)
	ws := make([]float64, n)
	for i, d := range degs {
		ws[i] = float64(d)
	}
	return ChungLu(r, ws)
}

// BarabasiAlbert generates an n-vertex preferential-attachment graph where
// every new vertex attaches m edges to existing vertices with probability
// proportional to their degree. The result is scale-free with exponent
// ~3 and a guaranteed connected core, a good stand-in for social networks
// such as the paper's Friendster and LiveJournal datasets.
func BarabasiAlbert(seed uint64, n, m int) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	r := NewRNG(seed)
	// repeated[i] lists every edge endpoint; sampling uniformly from it is
	// sampling proportional to degree.
	repeated := make([]int, 0, 2*n*m)
	b := graph.NewBuilder(n)
	// Seed clique on m+1 vertices.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	chosen := make([]int, 0, m)
	for u := m + 1; u < n; u++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			v := repeated[r.Intn(len(repeated))]
			if !contains(chosen, v) {
				chosen = append(chosen, v)
			}
		}
		for _, v := range chosen {
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	return b.Build()
}

// RMAT generates a graph with 2^scale vertices and approximately edges
// edge records using the recursive matrix model with the canonical
// parameters (a, b, c, d). Duplicate records and self-loops are dropped
// by the builder's merging; the paper's web-crawl datasets (UK-2005,
// UK-2007, WebBase-2001) have RMAT-like community-of-hubs structure.
func RMAT(seed uint64, scale int, edges int, a, b, c float64) *graph.Graph {
	r := NewRNG(seed)
	n := 1 << scale
	gb := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			x := r.Float64()
			switch {
			case x < a:
				// top-left: nothing to add
			case x < a+b:
				v |= 1 << bit
			case x < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			gb.AddEdge(u, v)
		}
	}
	return gb.Build()
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func sortByWeightDesc(order []int, w []float64) {
	// Heap sort to avoid pulling in sort.Slice closures in a hot path;
	// n log n, in place, deterministic.
	less := func(i, j int) bool { // max-heap on weight
		return w[order[i]] < w[order[j]]
	}
	n := len(order)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(order, i, n, less)
	}
	for i := n - 1; i > 0; i-- {
		order[0], order[i] = order[i], order[0]
		siftDown(order, 0, i, less)
	}
	// Heap sort with a max-heap yields ascending order; reverse for
	// descending weights.
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
}

func siftDown(order []int, lo, hi int, less func(i, j int) bool) {
	root := lo
	for {
		child := 2*root + 1
		if child >= hi {
			return
		}
		if child+1 < hi && less(child, child+1) {
			child++
		}
		if !less(root, child) {
			return
		}
		order[root], order[child] = order[child], order[root]
		root = child
	}
}

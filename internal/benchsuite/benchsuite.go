// Package benchsuite enumerates the core primitive benchmarks in one
// place so they can run both under `go test -bench` (via thin wrappers)
// and under cmd/dinfomap-bench, which executes them with
// testing.Benchmark and gates the results against the committed
// results/bench-baseline.json.
package benchsuite

import (
	"testing"

	"dinfomap"
	"dinfomap/internal/core"
	"dinfomap/internal/mpi"
)

// Bench is one named benchmark runnable through testing.Benchmark.
// VolatileAllocs marks benchmarks whose allocation counts are
// timing-dependent (asynchronous runs drain a scheduling-dependent
// number of packets per epoch), so the near-strict allocs gate cannot
// apply: cmd/dinfomap-bench records their allocs/bytes under
// wall-prefixed keys the regression differ ignores by convention.
type Bench struct {
	Name           string
	F              func(b *testing.B)
	VolatileAllocs bool
}

// Suite returns the primitive benchmarks in a fixed order: the three
// end-to-end primitives from the root bench_test.go plus the sweep,
// codec, and collective micro-benches guarding the dense-index hot
// paths and the pooled message buffers.
func Suite() []Bench {
	return []Bench{
		{Name: "SequentialInfomap", F: BenchSequentialInfomap},
		{Name: "DistributedInfomapP4", F: BenchDistributedInfomapP4},
		{Name: "DelegatePartitioning", F: BenchDelegatePartitioning},
		{Name: "SweepPass", F: BenchSweepPass},
		// Both async benches have scheduling- and iteration-dependent
		// allocation profiles: the end-to-end run drains a variable
		// number of packets per epoch, and the epoch primitive's
		// amortized history appends spread differently across b.N.
		{Name: "AsyncEpoch", F: BenchAsyncEpoch, VolatileAllocs: true},
		{Name: "DistributedAsyncP4K2", F: BenchDistributedAsyncP4K2, VolatileAllocs: true},
		{Name: "CodecModuleInfo", F: BenchCodecModuleInfo},
		{Name: "AlltoallvP4", F: BenchAlltoallvP4},
	}
}

func plantedBenchGraph() dinfomap.PlantedGraph {
	return dinfomap.GeneratePlanted(dinfomap.PlantedConfig{
		N: 2000, NumComms: 40, AvgDegree: 10, Mixing: 0.2, DegreeGamma: 2.5,
	}, 11)
}

// BenchSequentialInfomap mirrors the root BenchmarkSequentialInfomap.
func BenchSequentialInfomap(b *testing.B) {
	pg := plantedBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dinfomap.RunSequential(pg.Graph, dinfomap.SequentialConfig{Seed: uint64(i)})
	}
}

// BenchDistributedInfomapP4 mirrors the root
// BenchmarkDistributedInfomapP4: the headline end-to-end primitive the
// acceptance thresholds apply to.
func BenchDistributedInfomapP4(b *testing.B) {
	pg := plantedBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dinfomap.RunDistributed(pg.Graph, dinfomap.DistributedConfig{P: 4, Seed: uint64(i)})
	}
}

// BenchDelegatePartitioning mirrors the root
// BenchmarkDelegatePartitioning.
func BenchDelegatePartitioning(b *testing.B) {
	g := dinfomap.GeneratePowerLaw(13, 20000, 2.0, 2, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dinfomap.AnalyzeDelegate(g, 16)
	}
}

// BenchSweepPass times one steady-state FindBestModule pass: the level
// is converged first so every timed pass runs the full scan +
// delta-L-evaluation path without applying moves.
func BenchSweepPass(b *testing.B) {
	pg := plantedBenchGraph()
	h := core.NewBenchLevel(pg.Graph, 7)
	for h.SweepPass() > 0 {
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SweepPass()
	}
}

// BenchAsyncEpoch times one bounded-staleness epoch exchange round
// (partial encode + epoch bookkeeping + accumulate/materialize) on a
// converged single-rank level: the hot path clusterAsync adds over the
// synchronized loop, isolated from sweep compute.
func BenchAsyncEpoch(b *testing.B) {
	pg := plantedBenchGraph()
	h := core.NewBenchLevel(pg.Graph, 7)
	for h.SweepPass() > 0 {
	}
	h.AsyncEpoch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AsyncEpoch()
	}
}

// BenchDistributedAsyncP4K2 is the end-to-end asynchronous
// counterpart of BenchDistributedInfomapP4: the same planted graph
// clustered with a staleness bound of 2.
func BenchDistributedAsyncP4K2(b *testing.B) {
	pg := plantedBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dinfomap.RunDistributed(pg.Graph, dinfomap.DistributedConfig{P: 4, Seed: uint64(i), StalenessBound: 2})
	}
}

// BenchCodecModuleInfo times one Module_Info wire round: 1024 records
// (one third short-form) encoded into a warm encoder and decoded back.
func BenchCodecModuleInfo(b *testing.B) {
	recs := make([]core.ModuleInfo, 1024)
	for i := range recs {
		recs[i] = core.ModuleInfo{
			ModID:      i * 7,
			SumPr:      float64(i) * 1e-4,
			ExitPr:     float64(i) * 1e-5,
			NumMembers: i%97 + 1,
			IsSent:     i%3 == 0,
		}
	}
	e := mpi.NewEncoder(1 << 16)
	d := mpi.NewDecoder(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := core.BenchCodecRound(e, d, recs); got != len(recs) {
			b.Fatalf("decoded %d records, want %d", got, len(recs))
		}
	}
}

// BenchAlltoallvP4 times a 4-rank Alltoallv exchange with 1 KiB per
// destination, the collective under every sweep's boundary swap and
// both Module_Info rounds.
func BenchAlltoallvP4(b *testing.B) {
	const p, chunk = 4, 1024
	b.ResetTimer()
	mpi.Run(p, func(c *mpi.Comm) {
		bufs := make([][]byte, p)
		for dst := range bufs {
			buf := make([]byte, chunk)
			for i := range buf {
				buf[i] = byte(c.Rank()*31 + dst*7 + i)
			}
			bufs[dst] = buf
		}
		for i := 0; i < b.N; i++ {
			c.Alltoallv(bufs)
		}
	})
}

// Package benchsuite enumerates the core primitive benchmarks in one
// place so they can run both under `go test -bench` (via thin wrappers)
// and under cmd/dinfomap-bench, which executes them with
// testing.Benchmark and gates the results against the committed
// results/bench-baseline.json.
package benchsuite

import (
	"testing"

	"dinfomap"
	"dinfomap/internal/core"
	"dinfomap/internal/mpi"
)

// Bench is one named benchmark runnable through testing.Benchmark.
type Bench struct {
	Name string
	F    func(b *testing.B)
}

// Suite returns the primitive benchmarks in a fixed order: the three
// end-to-end primitives from the root bench_test.go plus the sweep,
// codec, and collective micro-benches guarding the dense-index hot
// paths and the pooled message buffers.
func Suite() []Bench {
	return []Bench{
		{"SequentialInfomap", BenchSequentialInfomap},
		{"DistributedInfomapP4", BenchDistributedInfomapP4},
		{"DelegatePartitioning", BenchDelegatePartitioning},
		{"SweepPass", BenchSweepPass},
		{"CodecModuleInfo", BenchCodecModuleInfo},
		{"AlltoallvP4", BenchAlltoallvP4},
	}
}

func plantedBenchGraph() dinfomap.PlantedGraph {
	return dinfomap.GeneratePlanted(dinfomap.PlantedConfig{
		N: 2000, NumComms: 40, AvgDegree: 10, Mixing: 0.2, DegreeGamma: 2.5,
	}, 11)
}

// BenchSequentialInfomap mirrors the root BenchmarkSequentialInfomap.
func BenchSequentialInfomap(b *testing.B) {
	pg := plantedBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dinfomap.RunSequential(pg.Graph, dinfomap.SequentialConfig{Seed: uint64(i)})
	}
}

// BenchDistributedInfomapP4 mirrors the root
// BenchmarkDistributedInfomapP4: the headline end-to-end primitive the
// acceptance thresholds apply to.
func BenchDistributedInfomapP4(b *testing.B) {
	pg := plantedBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dinfomap.RunDistributed(pg.Graph, dinfomap.DistributedConfig{P: 4, Seed: uint64(i)})
	}
}

// BenchDelegatePartitioning mirrors the root
// BenchmarkDelegatePartitioning.
func BenchDelegatePartitioning(b *testing.B) {
	g := dinfomap.GeneratePowerLaw(13, 20000, 2.0, 2, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dinfomap.AnalyzeDelegate(g, 16)
	}
}

// BenchSweepPass times one steady-state FindBestModule pass: the level
// is converged first so every timed pass runs the full scan +
// delta-L-evaluation path without applying moves.
func BenchSweepPass(b *testing.B) {
	pg := plantedBenchGraph()
	h := core.NewBenchLevel(pg.Graph, 7)
	for h.SweepPass() > 0 {
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SweepPass()
	}
}

// BenchCodecModuleInfo times one Module_Info wire round: 1024 records
// (one third short-form) encoded into a warm encoder and decoded back.
func BenchCodecModuleInfo(b *testing.B) {
	recs := make([]core.ModuleInfo, 1024)
	for i := range recs {
		recs[i] = core.ModuleInfo{
			ModID:      i * 7,
			SumPr:      float64(i) * 1e-4,
			ExitPr:     float64(i) * 1e-5,
			NumMembers: i%97 + 1,
			IsSent:     i%3 == 0,
		}
	}
	e := mpi.NewEncoder(1 << 16)
	d := mpi.NewDecoder(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := core.BenchCodecRound(e, d, recs); got != len(recs) {
			b.Fatalf("decoded %d records, want %d", got, len(recs))
		}
	}
}

// BenchAlltoallvP4 times a 4-rank Alltoallv exchange with 1 KiB per
// destination, the collective under every sweep's boundary swap and
// both Module_Info rounds.
func BenchAlltoallvP4(b *testing.B) {
	const p, chunk = 4, 1024
	b.ResetTimer()
	mpi.Run(p, func(c *mpi.Comm) {
		bufs := make([][]byte, p)
		for dst := range bufs {
			buf := make([]byte, chunk)
			for i := range buf {
				buf[i] = byte(c.Rank()*31 + dst*7 + i)
			}
			bufs[dst] = buf
		}
		for i := 0; i < b.N; i++ {
			c.Alltoallv(bufs)
		}
	})
}

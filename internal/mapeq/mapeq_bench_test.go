package mapeq

import (
	"testing"

	"dinfomap/internal/graph"
)

func benchSetup() (Aggregates, Module, Module, Move) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	f := NewVertexFlow(g)
	mods := []Module{
		{SumPr: 0.5, ExitPr: 1.0 / 14, Members: 3},
		{SumPr: 0.5, ExitPr: 1.0 / 14, Members: 3},
	}
	agg := AggregateModules(mods, f.SumPlogpP)
	mv := Move{PU: f.P[2], ExitU: f.Exit[2], WToFrom: 2.0 / 14, WToTo: 1.0 / 14}
	return agg, mods[0], mods[1], mv
}

// BenchmarkDeltaL measures the inner-loop O(1) move evaluation — the
// unit of the cost model's TimePerOp constant.
func BenchmarkDeltaL(b *testing.B) {
	agg, from, to, mv := benchSetup()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += DeltaL(agg, from, to, mv)
	}
	_ = sink
}

func BenchmarkApplyMove(b *testing.B) {
	agg, from, to, mv := benchSetup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = ApplyMove(agg, from, to, mv)
	}
}

func BenchmarkNewVertexFlow(b *testing.B) {
	bld := graph.NewBuilder(10000)
	for u := 0; u < 10000; u++ {
		bld.AddEdge(u, (u+1)%10000)
		bld.AddEdge(u, (u+7)%10000)
	}
	g := bld.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewVertexFlow(g)
	}
}

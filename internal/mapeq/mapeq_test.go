package mapeq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dinfomap/internal/graph"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestPlogP(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{-0.5, 0}, // clamped
		{1, 0},
		{0.5, -0.5},
		{2, 2},
	}
	for _, c := range cases {
		if got := PlogP(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("PlogP(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVertexFlowTriangle(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	f := NewVertexFlow(g)
	for u := 0; u < 3; u++ {
		if !almostEqual(f.P[u], 1.0/3, 1e-12) {
			t.Errorf("P[%d] = %v, want 1/3", u, f.P[u])
		}
		if !almostEqual(f.Exit[u], 1.0/3, 1e-12) {
			t.Errorf("Exit[%d] = %v, want 1/3", u, f.Exit[u])
		}
	}
}

func TestVertexFlowSumsToOne(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}})
	f := NewVertexFlow(g)
	sum := 0.0
	for _, p := range f.P {
		sum += p
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("sum of visit probabilities = %v, want 1", sum)
	}
}

func TestVertexFlowSelfLoopDoesNotExit(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 0)
	g := b.Build()
	f := NewVertexFlow(g)
	// W = 2; strength(0) = 1 + 2 = 3, so p_0 = 3/4, exit_0 = (3-2)/4 = 1/4.
	if !almostEqual(f.P[0], 0.75, 1e-12) {
		t.Errorf("P[0] = %v, want 0.75", f.P[0])
	}
	if !almostEqual(f.Exit[0], 0.25, 1e-12) {
		t.Errorf("Exit[0] = %v, want 0.25", f.Exit[0])
	}
}

func TestVertexFlowEmptyGraph(t *testing.T) {
	f := NewVertexFlow(graph.NewBuilder(3).Build())
	if f.Norm() != 0 {
		t.Errorf("Norm = %v, want 0", f.Norm())
	}
	for u, p := range f.P {
		if p != 0 {
			t.Errorf("P[%d] = %v, want 0", u, p)
		}
	}
}

// buildModules constructs module stats for a given assignment, from
// scratch — the reference against which incremental updates are tested.
func buildModules(g *graph.Graph, f *VertexFlow, comm []int, k int) []Module {
	mods := make([]Module, k)
	inv2W := f.Norm()
	for u := 0; u < g.NumVertices(); u++ {
		c := comm[u]
		mods[c].SumPr += f.P[u]
		mods[c].Members++
		g.Neighbors(u, func(v int, w float64) {
			if v != u && comm[v] != c {
				mods[c].ExitPr += w * inv2W
			}
		})
	}
	return mods
}

func TestCodelengthSingletonsVsMerged(t *testing.T) {
	// Two triangles plus one bridge: merging each triangle must compress.
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{2, 3},
	})
	f := NewVertexFlow(g)

	singles := make([]int, 6)
	for i := range singles {
		singles[i] = i
	}
	aSingle := AggregateModules(buildModules(g, f, singles, 6), f.SumPlogpP)

	merged := []int{0, 0, 0, 1, 1, 1}
	aMerged := AggregateModules(buildModules(g, f, merged, 2), f.SumPlogpP)

	if aMerged.L() >= aSingle.L() {
		t.Fatalf("merged L = %v not better than singleton L = %v", aMerged.L(), aSingle.L())
	}
	if aSingle.L() <= 0 || aMerged.L() <= 0 {
		t.Fatalf("codelengths must be positive: %v, %v", aSingle.L(), aMerged.L())
	}
}

func TestCodelengthOneModuleZeroExit(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	f := NewVertexFlow(g)
	all := []int{0, 0, 0, 0}
	a := AggregateModules(buildModules(g, f, all, 1), f.SumPlogpP)
	if a.QTotal != 0 {
		t.Fatalf("QTotal = %v, want 0 when everything is one module", a.QTotal)
	}
	// L reduces to -sum plogp(p_a) = entropy of the visit distribution.
	want := -f.SumPlogpP
	if !almostEqual(a.L(), want, 1e-12) {
		t.Fatalf("L = %v, want %v", a.L(), want)
	}
}

// makeMove constructs the Move for vertex u going from comm[u] to target.
func makeMove(g *graph.Graph, f *VertexFlow, comm []int, u, target int) Move {
	mv := Move{PU: f.P[u], ExitU: f.Exit[u]}
	inv2W := f.Norm()
	g.Neighbors(u, func(v int, w float64) {
		if v == u {
			return
		}
		if comm[v] == comm[u] {
			mv.WToFrom += w * inv2W
		}
		if comm[v] == target {
			mv.WToTo += w * inv2W
		}
	})
	return mv
}

// TestDeltaLMatchesRecompute is the core correctness test: the O(1)
// DeltaL must equal the difference of full recomputations, for random
// graphs, random assignments, and random moves.
func TestDeltaLMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 5 + rng.Intn(20)
		b := graph.NewBuilder(n)
		m := n + rng.Intn(3*n)
		for i := 0; i < m; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		if g.TotalWeight() == 0 {
			continue
		}
		f := NewVertexFlow(g)
		k := 2 + rng.Intn(4)
		comm := make([]int, n)
		for i := range comm {
			comm[i] = rng.Intn(k)
		}
		mods := buildModules(g, f, comm, k)
		a := AggregateModules(mods, f.SumPlogpP)

		u := rng.Intn(n)
		target := rng.Intn(k)
		if target == comm[u] {
			continue
		}
		mv := makeMove(g, f, comm, u, target)
		delta := DeltaL(a, mods[comm[u]], mods[target], mv)

		// Reference: recompute everything after the move.
		comm2 := make([]int, n)
		copy(comm2, comm)
		comm2[u] = target
		a2 := AggregateModules(buildModules(g, f, comm2, k), f.SumPlogpP)
		want := a2.L() - a.L()
		if !almostEqual(delta, want, 1e-9) {
			t.Fatalf("trial %d: DeltaL = %v, recomputed = %v (diff %g)",
				trial, delta, want, delta-want)
		}
	}
}

func TestApplyMoveConsistentWithDeltaL(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	f := NewVertexFlow(g)
	comm := []int{0, 0, 0, 1, 1, 1}
	mods := buildModules(g, f, comm, 2)
	a := AggregateModules(mods, f.SumPlogpP)

	mv := makeMove(g, f, comm, 2, 1)
	delta := DeltaL(a, mods[0], mods[1], mv)
	a2, nf, nt := ApplyMove(a, mods[0], mods[1], mv)
	if !almostEqual(a2.L()-a.L(), delta, 1e-12) {
		t.Fatalf("ApplyMove L change %v != DeltaL %v", a2.L()-a.L(), delta)
	}
	if nf.Members != 2 || nt.Members != 4 {
		t.Fatalf("member counts after move: %d, %d", nf.Members, nt.Members)
	}
	// Cross-check against full recompute.
	comm[2] = 1
	ref := AggregateModules(buildModules(g, f, comm, 2), f.SumPlogpP)
	if !almostEqual(a2.L(), ref.L(), 1e-12) {
		t.Fatalf("ApplyMove L = %v, recompute = %v", a2.L(), ref.L())
	}
}

func TestMoveToEmptyModuleAndBack(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	f := NewVertexFlow(g)
	comm := []int{0, 0, 0}
	mods := buildModules(g, f, comm, 2) // module 1 empty
	a := AggregateModules(mods, f.SumPlogpP)
	mv := makeMove(g, f, comm, 0, 1)
	a2, nf, nt := ApplyMove(a, mods[0], mods[1], mv)
	if nt.Members != 1 || nf.Members != 2 {
		t.Fatalf("after move: from=%+v to=%+v", nf, nt)
	}
	// Moving back must restore the original codelength.
	comm[0] = 1
	mv2 := makeMove(g, f, comm, 0, 0)
	a3, _, _ := ApplyMove(a2, nt, nf, mv2)
	if !almostEqual(a3.L(), a.L(), 1e-9) {
		t.Fatalf("L after round trip = %v, want %v", a3.L(), a.L())
	}
}

func TestEmptyModuleClampsToZero(t *testing.T) {
	g := graph.FromEdges(2, [][2]int{{0, 1}})
	f := NewVertexFlow(g)
	comm := []int{0, 1}
	mods := buildModules(g, f, comm, 2)
	a := AggregateModules(mods, f.SumPlogpP)
	mv := makeMove(g, f, comm, 0, 1)
	_, nf, _ := ApplyMove(a, mods[0], mods[1], mv)
	if nf.SumPr != 0 || nf.ExitPr != 0 || nf.Members != 0 {
		t.Fatalf("emptied module not clamped: %+v", nf)
	}
}

// Property: DeltaL of a no-op-like pair of opposite moves sums to ~0.
func TestPropertyMoveReversibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		if g.TotalWeight() == 0 {
			return true
		}
		fl := NewVertexFlow(g)
		comm := make([]int, n)
		for i := range comm {
			comm[i] = rng.Intn(3)
		}
		mods := buildModules(g, fl, comm, 3)
		a := AggregateModules(mods, fl.SumPlogpP)
		u := rng.Intn(n)
		target := (comm[u] + 1) % 3
		mv := makeMove(g, fl, comm, u, target)
		a2, nf, nt := ApplyMove(a, mods[comm[u]], mods[target], mv)
		old := comm[u]
		comm[u] = target
		mvBack := makeMove(g, fl, comm, u, old)
		a3, _, _ := ApplyMove(a2, nt, nf, mvBack)
		return almostEqual(a3.L(), a.L(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: aggregates computed incrementally across a chain of random
// moves agree with a from-scratch recompute at the end.
func TestPropertyIncrementalAggregatesStayConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		if g.TotalWeight() == 0 {
			return true
		}
		fl := NewVertexFlow(g)
		k := 4
		comm := make([]int, n)
		for i := range comm {
			comm[i] = rng.Intn(k)
		}
		mods := buildModules(g, fl, comm, k)
		a := AggregateModules(mods, fl.SumPlogpP)
		for step := 0; step < 30; step++ {
			u := rng.Intn(n)
			target := rng.Intn(k)
			if target == comm[u] {
				continue
			}
			mv := makeMove(g, fl, comm, u, target)
			var nf, nt Module
			a, nf, nt = ApplyMove(a, mods[comm[u]], mods[target], mv)
			mods[comm[u]] = nf
			mods[target] = nt
			comm[u] = target
		}
		ref := AggregateModules(buildModules(g, fl, comm, k), fl.SumPlogpP)
		return almostEqual(a.L(), ref.L(), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
